// Command experiment is the systematic sweep runner of the workload layer:
// it crosses a scenario corpus (named generator families at fixed sizes and
// seeds) with every algorithm profile and both execution modes, runs each
// cell on one warm apsp.Runner per scenario (all 4 profiles x 2 exec modes
// share the scenario's network and worker fleet after a discarded warm-up
// run, so every recorded cell is uniformly warm — and the sweep doubles as
// a warm-session smoke), and emits one row per cell to EXPERIMENTS.json
// (and optionally CSV) — the empirical, regenerable counterpart of the
// paper's Table 1.
//
// Each row records the distributed cost (rounds, messages, words, max node
// congestion, blocker-set size), the host cost (wall-clock, allocations),
// and the staged executor's per-stage breakdown (stage name, charged
// rounds, wall-clock); -check additionally validates every distance matrix
// against the sequential Floyd-Warshall oracle. "sharded" execution uses
// the work-stealing worker pool (apsp.Options.Parallel, DESIGN.md §2.5),
// whose results are bit-identical to sequential execution; whenever a
// sweep runs both modes, the runner asserts the distributed columns
// (rounds, messages, words, congestion, |Q|, h, per-stage rounds) of the
// seq and sharded rows match and aborts on divergence.
//
// Examples:
//
//	experiment                                   # default corpus, EXPERIMENTS.json
//	experiment -sizes 64,128 -check              # acceptance sweep with oracle check
//	experiment -scenarios powerlaw,expander -algorithms det43 -csv out.csv
//	experiment -scenarios powerlaw-n96-s3        # one explicit scenario
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"congestapsp/internal/graph"
	"congestapsp/internal/graphio"
	"congestapsp/internal/profiling"
	"congestapsp/pkg/apsp"
)

func main() {
	var (
		scenariosFlag  = flag.String("scenarios", "random,grid,powerlaw,geometric,expander,ktree", "comma-separated scenario families or explicit names (e.g. powerlaw-n128-s7)")
		sizesFlag      = flag.String("sizes", "64,128", "comma-separated vertex counts (ignored for explicit scenario names)")
		seedsFlag      = flag.String("seeds", "1", "comma-separated generator seeds (ignored for explicit scenario names)")
		algorithmsFlag = flag.String("algorithms", "det43,det32,rand43,bcast6", "comma-separated algorithm profiles")
		execFlag       = flag.String("exec", "seq,sharded", "execution modes: seq, sharded (source-sharded worker pool), planner (per-stage seq-vs-sharded from the cost model)")
		check          = flag.Bool("check", false, "validate every distance matrix against the Floyd-Warshall oracle")
		checkSamples   = flag.Int("check-samples", 0, "with -check, validate this many sampled source rows against on-demand Dijkstra instead of the full Floyd-Warshall matrix (the O(n²)-memory oracle big-n budgeted runs cannot afford)")
		memBudget      = flag.Int64("memory-budget", 0, "resident-byte budget for result matrices: runs whose flat Dist(+LastHop) footprint exceeds it use the tiled spillable backend (0 = always flat)")
		skipLastHops   = flag.Bool("skip-lasthops", false, "skip the stage-8 last-edge pass (distances only); big-n budgeted runs use this to drop both the n² last-hop table and stage 8's L·n neighbor-distance working set")
		jsonPath       = flag.String("json", "EXPERIMENTS.json", "JSON output path (empty to skip)")
		csvPath        = flag.String("csv", "", "CSV output path (empty to skip)")
		quiet          = flag.Bool("q", false, "suppress per-cell progress on stderr")
		timeout        = flag.Duration("timeout", 0, "per-cell deadline; a cell that exceeds it is skipped with a warning (0 = none)")
		cpuProfile     = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProfile     = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}

	scenarios, err := expandScenarios(*scenariosFlag, *sizesFlag, *seedsFlag)
	if err != nil {
		log.Fatal(err)
	}
	algorithms, err := parseAlgorithms(*algorithmsFlag)
	if err != nil {
		log.Fatal(err)
	}
	execModes, err := parseExecModes(*execFlag)
	if err != nil {
		log.Fatal(err)
	}

	// SIGINT cancels the executing cell at its next round or stage boundary
	// (the ctx plumbing), and whatever rows completed are flushed atomically
	// before exiting — a half-day sweep killed at 90% keeps its 90%.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	var rows []row
	flush := func() {
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rows, *check); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%d rows)\n", *jsonPath, len(rows))
		}
		if *csvPath != "" {
			if err := writeCSV(*csvPath, rows); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%d rows)\n", *csvPath, len(rows))
		}
	}
	interrupted := func() {
		fmt.Fprintln(os.Stderr, "experiment: interrupted; flushing partial results")
		flush()
		stopProfiles()
		os.Exit(130)
	}
	// cellCtx derives one cell's context: the signal context, optionally
	// bounded by the per-cell deadline.
	cellCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(ctx, *timeout)
		}
		return context.WithCancel(ctx)
	}

	for _, sc := range scenarios {
		g, err := sc.Build()
		if err != nil {
			log.Fatal(err)
		}
		var oracle func(*apsp.Result) error
		if *check {
			oracle = oracleFor(g, *checkSamples, sc.Seed)
		}
		// One warm Runner per scenario: every profile x exec-mode cell of
		// this graph reuses the same network, arenas and worker fleet. One
		// discarded warm-up run per exec mode absorbs the dominant
		// one-time cold starts (network build, arena growth on the first
		// run, clone-fleet construction on the first sharded run), so the
		// recorded host-cost columns measure a mostly warm steady state;
		// the first cell of a profile whose parameters differ from the
		// warm-up's (e.g. det32's larger h) may still grow some
		// profile-specific pooled state. The cold-vs-warm cost itself is
		// measured separately in BENCH_apsp.json.
		runner, err := apsp.NewRunner(g)
		if err != nil {
			log.Fatal(err)
		}
		for _, mode := range execModes {
			wctx, cancel := cellCtx()
			warm, err := runner.RunContext(wctx, cellOptions(algorithms[0], mode, sc.Seed, *memBudget, *skipLastHops))
			cancel()
			switch {
			case ctx.Err() != nil:
				interrupted()
			case errors.Is(err, apsp.ErrDeadlineExceeded):
				// Warm-up blew the cell budget: every cell of this scenario
				// would too, but let the per-cell path report each skip.
			case err != nil:
				log.Fatal(err)
			default:
				warm.Release()
			}
		}
		for _, alg := range algorithms {
			byMode := make(map[string]row, len(execModes))
			for _, mode := range execModes {
				wctx, cancel := cellCtx()
				r, err := runCell(wctx, sc, runner, alg, mode, *memBudget, *skipLastHops, oracle)
				cancel()
				if err != nil {
					if ctx.Err() != nil {
						interrupted()
					}
					if errors.Is(err, apsp.ErrDeadlineExceeded) {
						var ie *apsp.InterruptError
						errors.As(err, &ie)
						fmt.Fprintf(os.Stderr, "%-24s %-18s %-8s SKIPPED: exceeded %v (in %s after %d rounds)\n",
							sc.Name(), alg, mode, *timeout, ie.Stage, ie.CompletedRounds)
						continue
					}
					log.Fatalf("%s %v %s: %v", sc.Name(), alg, mode, err)
				}
				byMode[mode] = r
				rows = append(rows, r)
				if !*quiet {
					fmt.Fprintf(os.Stderr, "%-24s %-18s %-8s rounds=%-7d wall=%.0fms\n",
						sc.Name(), alg, mode, r.Rounds, r.WallMS)
				}
			}
			// Every execution mode must be bit-identical on every distributed
			// column (DESIGN.md §2.5; the planner only re-routes host work).
			// Whenever the sweep ran more than one mode, enforce it pairwise
			// against the first mode that produced a row.
			refMode := ""
			for _, mode := range execModes {
				r, ok := byMode[mode]
				if !ok {
					continue
				}
				if refMode == "" {
					refMode = mode
					continue
				}
				if err := diffDistributedColumns(byMode[refMode], r); err != nil {
					log.Fatalf("%s %v: %s execution diverged from %s: %v", sc.Name(), alg, mode, refMode, err)
				}
			}
		}
	}

	flush()
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}

// row is one sweep cell: scenario x algorithm x execution mode.
type row struct {
	Scenario          string     `json:"scenario"`
	Family            string     `json:"family"`
	N                 int        `json:"n"`
	M                 int        `json:"m"`
	Seed              int64      `json:"seed"`
	Algorithm         string     `json:"algorithm"`
	Exec              string     `json:"exec"`
	H                 int        `json:"h"`
	BlockerSetSize    int        `json:"blocker_set_size"`
	Rounds            int        `json:"rounds"`
	Messages          int64      `json:"messages"`
	Words             int64      `json:"words"`
	MaxNodeCongestion int64      `json:"max_node_congestion"`
	WallMS            float64    `json:"wall_ms"`
	Allocs            uint64     `json:"allocs"`
	AllocBytes        uint64     `json:"alloc_bytes"`
	Checked           bool       `json:"checked"`
	Budgeted          bool       `json:"budgeted,omitempty"`
	PeakRSSKB         int64      `json:"peak_rss_kb,omitempty"`
	Stages            []stageCol `json:"stages"`
}

// stageCol is one executed pipeline stage within a row: rounds are
// deterministic (a distributed column), wall-clock is host cost, exec is
// the seq-vs-sharded decision the stage ran under.
type stageCol struct {
	Name   string  `json:"name"`
	Rounds int     `json:"rounds"`
	WallMS float64 `json:"wall_ms"`
	Exec   string  `json:"exec,omitempty"`
}

// cellOptions maps one sweep cell onto run options (shared by the warm-up
// and recorded cells so both exercise the same backend and exec mode).
func cellOptions(alg apsp.Algorithm, mode string, seed, memBudget int64, skipLastHops bool) apsp.Options {
	return apsp.Options{
		Algorithm:    alg,
		Parallel:     mode == "sharded",
		Planner:      mode == "planner",
		MemoryBudget: memBudget,
		SkipLastHops: skipLastHops,
		Seed:         seed,
	}
}

// runCell executes one sweep cell on the scenario's warm Runner under the
// cell's context (deadline and SIGINT) and, when oracle is non-nil,
// validates the distances against it.
func runCell(ctx context.Context, sc apsp.Scenario, runner *apsp.Runner, alg apsp.Algorithm, mode string, memBudget int64, skipLastHops bool, oracle func(*apsp.Result) error) (row, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := runner.RunContext(ctx, cellOptions(alg, mode, sc.Seed, memBudget, skipLastHops))
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return row{}, err
	}
	checked := false
	if oracle != nil {
		if err := oracle(res); err != nil {
			return row{}, err
		}
		checked = true
	}
	s := res.Stats
	stages := make([]stageCol, len(s.Stages))
	for i, st := range s.Stages {
		stages[i] = stageCol{Name: st.Name, Rounds: st.Rounds, WallMS: st.WallMS, Exec: st.Exec}
	}
	r := row{
		Scenario:          sc.Name(),
		Family:            sc.Family,
		N:                 s.N,
		M:                 s.M,
		Seed:              sc.Seed,
		Algorithm:         alg.String(),
		Exec:              mode,
		H:                 s.H,
		BlockerSetSize:    s.BlockerSetSize,
		Rounds:            s.Rounds,
		Messages:          s.Messages,
		Words:             s.Words,
		MaxNodeCongestion: s.MaxNodeCongestion,
		WallMS:            float64(wall.Microseconds()) / 1000,
		Allocs:            after.Mallocs - before.Mallocs,
		AllocBytes:        after.TotalAlloc - before.TotalAlloc,
		Checked:           checked,
		Budgeted:          res.Budgeted(),
		Stages:            stages,
	}
	if r.Budgeted {
		// Record the process peak RSS for budgeted cells: the scaling claim
		// is precisely that this stays under the flat matrices' footprint.
		r.PeakRSSKB = peakRSSKB()
	}
	if err := res.Release(); err != nil {
		return row{}, fmt.Errorf("release: %w", err)
	}
	return r, nil
}

// peakRSSKB reads the process's high-water resident set via getrusage
// (kilobytes on Linux).
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss)
}

// diffDistributedColumns compares the columns that must not depend on the
// execution mode.
func diffDistributedColumns(seq, sharded row) error {
	cols := []struct {
		name string
		a, b int64
	}{
		{"rounds", int64(seq.Rounds), int64(sharded.Rounds)},
		{"messages", seq.Messages, sharded.Messages},
		{"words", seq.Words, sharded.Words},
		{"max_node_congestion", seq.MaxNodeCongestion, sharded.MaxNodeCongestion},
		{"blocker_set_size", int64(seq.BlockerSetSize), int64(sharded.BlockerSetSize)},
		{"h", int64(seq.H), int64(sharded.H)},
	}
	for _, c := range cols {
		if c.a != c.b {
			return fmt.Errorf("%s: seq %d vs sharded %d", c.name, c.a, c.b)
		}
	}
	// The per-stage round decomposition is charged by the same schedules,
	// so it must not depend on the execution mode either.
	if len(seq.Stages) != len(sharded.Stages) {
		return fmt.Errorf("stage count: seq %d vs sharded %d", len(seq.Stages), len(sharded.Stages))
	}
	for i := range seq.Stages {
		a, b := seq.Stages[i], sharded.Stages[i]
		if a.Name != b.Name || a.Rounds != b.Rounds {
			return fmt.Errorf("stage %d: seq %s=%d vs sharded %s=%d", i, a.Name, a.Rounds, b.Name, b.Rounds)
		}
	}
	return nil
}

// oracleFor builds the per-scenario distance validator. The default is the
// full Floyd-Warshall matrix (exact, all pairs, all cells). With samples >
// 0 it instead draws that many sources (deterministically from the
// scenario seed) and validates their full rows against on-demand Dijkstra
// — O(samples · m log n) time and O(n) oracle memory, which is what lets a
// budgeted n=4096 run oracle-check at all where the O(n²) Floyd-Warshall
// tables would dwarf the memory budget under test. Results are read
// through the accessor surface so both the flat and tiled backends check.
func oracleFor(g *apsp.Graph, samples int, seed int64) func(*apsp.Result) error {
	og := graph.New(g.N(), g.Directed())
	g.Edges(func(u, v int, w int64) { og.MustAddEdge(u, v, w) })
	if samples <= 0 {
		oracle := graph.FloydWarshall(og)
		return func(res *apsp.Result) error {
			for x := range oracle {
				for t := range oracle[x] {
					if got := res.DistAt(x, t); got != oracle[x][t] {
						return fmt.Errorf("distance mismatch at (%d,%d): got %d, oracle %d",
							x, t, got, oracle[x][t])
					}
				}
			}
			return nil
		}
	}
	if samples > og.N {
		samples = og.N
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed0bac1e))
	srcs := rng.Perm(og.N)[:samples]
	rows := make(map[int][]int64, samples)
	return func(res *apsp.Result) error {
		for _, src := range srcs {
			want, ok := rows[src]
			if !ok {
				want = graph.Dijkstra(og, src)
				rows[src] = want
			}
			for t, w := range want {
				if got := res.DistAt(src, t); got != w {
					return fmt.Errorf("distance mismatch at sampled (%d,%d): got %d, Dijkstra %d",
						src, t, got, w)
				}
			}
		}
		return nil
	}
}

// expandScenarios turns the -scenarios/-sizes/-seeds flags into the corpus:
// explicit scenario names pass through, family names cross with every size
// and seed.
func expandScenarios(scenarios, sizes, seeds string) ([]apsp.Scenario, error) {
	sizeList, err := parseInts(sizes, "size")
	if err != nil {
		return nil, err
	}
	seedList, err := parseSeeds(seeds)
	if err != nil {
		return nil, err
	}
	var out []apsp.Scenario
	for _, tok := range splitList(scenarios) {
		if strings.Contains(tok, "-n") {
			sc, err := apsp.ParseScenario(tok)
			if err != nil {
				return nil, err
			}
			out = append(out, sc)
			continue
		}
		if apsp.FamilyDescription(tok) == "" {
			return nil, fmt.Errorf("unknown scenario family %q (have %v)", tok, apsp.Families())
		}
		for _, n := range sizeList {
			for _, s := range seedList {
				out = append(out, apsp.Scenario{Family: tok, N: n, Seed: s})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty scenario list")
	}
	return out, nil
}

func parseAlgorithms(s string) ([]apsp.Algorithm, error) {
	var out []apsp.Algorithm
	for _, tok := range splitList(s) {
		a, err := apsp.ParseAlgorithm(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty algorithm list")
	}
	return out, nil
}

func parseExecModes(s string) ([]string, error) {
	var out []string
	for _, tok := range splitList(s) {
		if tok != "seq" && tok != "sharded" && tok != "planner" {
			return nil, fmt.Errorf("unknown exec mode %q (want seq|sharded|planner)", tok)
		}
		out = append(out, tok)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty exec-mode list")
	}
	return out, nil
}

// parseSeeds parses a comma-separated seed list; unlike sizes, seeds may
// be negative (scenario names round-trip them as "s-3").
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, tok := range splitList(s) {
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty seed list")
	}
	return out, nil
}

func parseInts(s, what string) ([]int, error) {
	var out []int
	for _, tok := range splitList(s) {
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad %s %q", what, tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty %s list", what)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// report is the EXPERIMENTS.json envelope. It deliberately carries no
// timestamp: apart from the host-cost columns (wall_ms, allocs), a
// regenerated sweep should diff clean against the committed artifact.
type report struct {
	Suite   string `json:"suite"`
	Cores   int    `json:"cores"`
	Go      string `json:"go"`
	Checked bool   `json:"checked"`
	Rows    []row  `json:"rows"`
}

func writeJSON(path string, rows []row, checked bool) error {
	rep := report{
		Suite:   "experiment",
		Cores:   runtime.NumCPU(),
		Go:      runtime.Version(),
		Checked: checked,
		Rows:    rows,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return graphio.WriteFileAtomic(path, append(buf, '\n'))
}

func writeCSV(path string, rows []row) error {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	header := []string{"scenario", "family", "n", "m", "seed", "algorithm", "exec", "h",
		"blocker_set_size", "rounds", "messages", "words", "max_node_congestion",
		"wall_ms", "allocs", "alloc_bytes", "checked", "stage_rounds"}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		stages := make([]string, len(r.Stages))
		for i, st := range r.Stages {
			stages[i] = st.Name + ":" + strconv.Itoa(st.Rounds)
		}
		rec := []string{
			r.Scenario, r.Family,
			strconv.Itoa(r.N), strconv.Itoa(r.M),
			strconv.FormatInt(r.Seed, 10),
			r.Algorithm, r.Exec,
			strconv.Itoa(r.H), strconv.Itoa(r.BlockerSetSize), strconv.Itoa(r.Rounds),
			strconv.FormatInt(r.Messages, 10), strconv.FormatInt(r.Words, 10),
			strconv.FormatInt(r.MaxNodeCongestion, 10),
			strconv.FormatFloat(r.WallMS, 'f', 3, 64),
			strconv.FormatUint(r.Allocs, 10), strconv.FormatUint(r.AllocBytes, 10),
			strconv.FormatBool(r.Checked),
			strings.Join(stages, ";"),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return graphio.WriteFileAtomic(path, buf.Bytes())
}
