// Command apspload is the deterministic load generator for apspd: it
// drives a seeded request mix (cached / warmmiss / postupdate) against a
// daemon and reports latency percentiles and a status-code census as JSON.
// Everything it sends is a pure function of its flags, so a -concurrency 1
// run against a fresh daemon yields a byte-stable -transcript — the
// determinism contract the serve tests pin. Requests refused with 429
// (shed) or 503 (recovering) are retried with seeded-jitter exponential
// backoff (-retries, -retry-base), deterministic from the run seed; retry
// counts land in the report and the transcript.
//
//	apspload -selfhost -mix cached -requests 200 -json
//	apspload -addr http://127.0.0.1:8359 -wait 10s -mix postupdate \
//	         -fail-on-5xx -min-pool-hits 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"congestapsp/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8359", "daemon base URL")
		selfhost    = flag.Bool("selfhost", false, "boot an in-process daemon on a loopback port and drive that")
		scenario    = flag.String("scenario", "random-n64-s1", "graph to load and query (corpus scenario name)")
		mix         = flag.String("mix", "cached", "traffic shape: cached|warmmiss|postupdate")
		requests    = flag.Int("requests", 100, "requests after the initial load")
		concurrency = flag.Int("concurrency", 4, "in-flight workers (transcript mode forces 1)")
		seed        = flag.Int64("seed", 1, "seed for every random choice")
		transcript  = flag.String("transcript", "", "write the request/response transcript to this file")
		jsonOut     = flag.Bool("json", false, "print the report as JSON (default: human-readable)")
		wait        = flag.Duration("wait", 0, "poll /readyz for up to this long before starting")
		failOn5xx   = flag.Bool("fail-on-5xx", false, "exit non-zero if any request returned 5xx")
		minPoolHits = flag.Int64("min-pool-hits", -1, "exit non-zero if the daemon's pool hits end below this")
		retries     = flag.Int("retries", 0, "max retries per request on 429/503 (0 = default 3, negative disables)")
		retryBase   = flag.Duration("retry-base", 0, "first backoff step for retries (0 = default 25ms)")
		dataDir     = flag.String("data-dir", "", "selfhost only: run the in-process daemon durably, journaling here")
		fsync       = flag.String("fsync", "interval", "selfhost -data-dir: journal sync policy (always|interval)")
	)
	flag.Parse()

	base := *addr
	durability := ""
	if *selfhost {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		svc := serve.New(serve.Config{})
		if *dataDir != "" {
			policy, err := serve.ParseFsyncPolicy(*fsync)
			if err != nil {
				log.Fatal(err)
			}
			// Recover before serving — same order as cmd/apspd — so the
			// journaled selfhost run measures exactly what a durable daemon
			// does per request.
			if err := svc.Recover(*dataDir, serve.StoreOptions{Fsync: policy}); err != nil {
				log.Fatal(err)
			}
			durability = "fsync=" + policy.String()
		}
		go http.Serve(ln, svc.Handler())
		base = "http://" + ln.Addr().String()
	}

	if *wait > 0 {
		deadline := time.Now().Add(*wait)
		for {
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				log.Fatalf("daemon at %s not ready after %s", base, *wait)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	cfg := serve.LoadConfig{
		BaseURL:     base,
		Seed:        *seed,
		Mix:         *mix,
		Scenario:    *scenario,
		Requests:    *requests,
		Concurrency: *concurrency,
		Retries:     *retries,
		RetryBase:   *retryBase,
	}
	if *transcript != "" {
		f, err := os.Create(*transcript)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.Transcript = f
	}

	report, err := serve.RunLoad(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report.Durability = durability

	if *jsonOut {
		enc, _ := json.Marshal(report)
		fmt.Println(string(enc))
	} else {
		fmt.Printf("mix=%s scenario=%s requests=%d errors=%d 5xx=%d retries=%d (%d requests)\n",
			report.Mix, report.Scenario, report.Requests, report.Errors, report.Status5xx,
			report.Retries, report.RetriedRequests)
		fmt.Printf("latency p50=%.2fms p95=%.2fms p99=%.2fms\n", report.P50MS, report.P95MS, report.P99MS)
		fmt.Printf("pool hits=%d misses=%d\n", report.PoolHits, report.PoolMisses)
	}

	if *failOn5xx && report.Status5xx > 0 {
		log.Fatalf("FAIL: %d responses were 5xx", report.Status5xx)
	}
	if report.Errors > 0 {
		log.Fatalf("FAIL: %d requests errored at the transport layer", report.Errors)
	}
	if *minPoolHits >= 0 && report.PoolHits < *minPoolHits {
		log.Fatalf("FAIL: pool hits %d below required %d", report.PoolHits, *minPoolHits)
	}
}
