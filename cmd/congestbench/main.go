// Command congestbench regenerates the experiment tables of EXPERIMENTS.md:
// the empirical counterpart of Table 1 of the paper plus one experiment per
// quantitative lemma (blocker-set size, selection steps, construction
// rounds, reversed q-sink rounds, bottleneck elimination, good-set density,
// frame-stage shrinkage).
//
// Usage:
//
//	congestbench -exp table1 [-sizes 16,24,32,48,64] [-seeds 2]
//	congestbench -exp all [-o EXPERIMENTS.md.new] [-timeout 30s]
//
// With -o the report is written atomically (temp+rename) instead of to
// stdout, and a SIGINT flushes the rows completed so far rather than dying
// with nothing written. -timeout bounds each measured cell through the
// execution stack's context plumbing; a cell that exceeds it is skipped
// with a warning on stderr and its table row dropped.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"congestapsp/internal/bford"
	"congestapsp/internal/blocker"
	"congestapsp/internal/congest"
	"congestapsp/internal/core"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
	"congestapsp/internal/graphio"
	"congestapsp/internal/profiling"
	"congestapsp/internal/qsink"
	"congestapsp/internal/unweighted"
)

// flushPartial writes the report rows accumulated so far (atomic
// temp+rename when -o is set; a no-op when the report streams to stdout).
// It is called on normal exit, on SIGINT, and before any fatal error, so a
// long sweep never dies with nothing written.
var flushPartial = func() {}

// stopProfilesOnExit flushes the pprof profiles on the interrupt path,
// where the deferred stop in main never runs.
var stopProfilesOnExit = func() error { return nil }

// fatalf is log.Fatalf preceded by a partial-report flush.
func fatalf(format string, v ...any) {
	flushPartial()
	log.Fatalf(format, v...)
}

// interrupted handles SIGINT observed through the context plumbing: flush
// what completed, stop the profiles, and exit with the conventional 130.
func interrupted() {
	fmt.Fprintln(os.Stderr, "congestbench: interrupted; flushing partial report")
	flushPartial()
	stopProfilesOnExit()
	os.Exit(130)
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1|blockersize|selectionsteps|blockerrounds|qsink|bottleneck|goodset|frames|hsweep|bandwidth|unweighted|all")
	sizesFlag := flag.String("sizes", "16,24,32,48,64", "comma-separated node counts")
	seeds := flag.Int("seeds", 2, "seeds per configuration (results averaged)")
	verify := flag.Bool("verify", true, "cross-check distances against Floyd-Warshall")
	parallel := flag.Bool("parallel", false, "run the simulator's sharded step/delivery phases (bit-identical results)")
	outPath := flag.String("o", "", "write the report atomically to this file instead of stdout (SIGINT flushes partial rows)")
	timeout := flag.Duration("timeout", 0, "per-cell deadline; a cell that exceeds it is skipped and its row dropped (0 = none)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	stopProfilesOnExit = stopProfiles
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}

	// SIGINT cancels the executing cell at its next round or stage boundary
	// (the context plumbing); the handlers above flush whatever rows the
	// report already holds.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	var buf bytes.Buffer
	var out io.Writer = os.Stdout
	if *outPath != "" {
		out = &buf
		flushPartial = func() {
			if err := graphio.WriteFileAtomic(*outPath, buf.Bytes()); err != nil {
				log.Printf("congestbench: flush %s: %v", *outPath, err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *outPath, buf.Len())
		}
	}

	h := harness{
		sizes: sizes, seeds: *seeds, verify: *verify, parallel: *parallel,
		ctx: ctx, timeout: *timeout, out: out,
	}

	all := map[string]func(){
		"table1":         h.table1,
		"blockersize":    h.blockerSize,
		"selectionsteps": h.selectionSteps,
		"blockerrounds":  h.blockerRounds,
		"qsink":          h.qsinkRounds,
		"bottleneck":     h.bottleneck,
		"goodset":        h.goodset,
		"frames":         h.frames,
		"hsweep":         h.hSweep,
		"bandwidth":      h.bandwidthSweep,
		"unweighted":     h.unweightedRounds,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "blockersize", "selectionsteps", "blockerrounds", "qsink", "bottleneck", "goodset", "frames", "hsweep", "bandwidth", "unweighted"} {
			all[name]()
		}
	} else {
		fn, ok := all[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		fn()
	}
	flushPartial()
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 4 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

type harness struct {
	sizes    []int
	seeds    int
	verify   bool
	parallel bool
	// ctx is the signal-scoped context: canceled by SIGINT, parent of every
	// per-cell deadline.
	ctx context.Context
	// timeout bounds each measured cell (0 = unbounded).
	timeout time.Duration
	// out receives the report rows (a buffer when -o is set, else stdout).
	out io.Writer
}

// cellCtx derives one cell's context from the signal context, optionally
// bounded by the per-cell deadline.
func (h harness) cellCtx() (context.Context, context.CancelFunc) {
	if h.timeout > 0 {
		return context.WithTimeout(h.ctx, h.timeout)
	}
	return context.WithCancel(h.ctx)
}

// handle classifies a cell error: nil proceeds, SIGINT exits through
// interrupted, a blown per-cell deadline reports skip=true (the caller
// drops the affected row), anything else is fatal.
func (h harness) handle(err error, what string) (skip bool) {
	if err == nil {
		return false
	}
	if h.ctx.Err() != nil {
		interrupted()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "congestbench: %s SKIPPED: exceeded %v (%v)\n", what, h.timeout, err)
		return true
	}
	fatalf("%s: %v", what, err)
	return false
}

func (h harness) graphFor(n int, seed int64) *graph.Graph {
	return graph.RandomConnected(graph.GenConfig{N: n, Directed: true, Seed: seed, MaxWeight: 50}, 4*n)
}

// fitExponent returns the least-squares slope of log(y) against log(x).
func fitExponent(xs []int, ys []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(float64(xs[i])), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	k := float64(len(xs))
	return (k*sxy - sx*sy) / (k*sxx - sx*sx)
}

// session builds a warm core.Session for g (the CLI analogue of
// apsp.Runner). Callers keep it in a local scoped to the graph's lifetime
// — every run on the same graph shares it, and the network (with its
// grow-only arenas and clone fleet) is released with the graph instead of
// being retained for the whole process.
func (h harness) session(g *graph.Graph) *core.Session {
	s, err := core.NewSession(g)
	if err != nil {
		fatalf("%v", err)
	}
	return s
}

// runVariant runs one deadline-bounded cell on the warm session. A nil
// result means the cell blew its -timeout budget (already reported on
// stderr); the caller drops the affected row.
func (h harness) runVariant(s *core.Session, g *graph.Graph, v core.Variant, seed int64) *core.Result {
	wctx, cancel := h.cellCtx()
	res, err := s.RunContext(wctx, core.Options{Variant: v, Seed: seed, SkipLastEdges: true, Parallel: h.parallel})
	cancel()
	if h.handle(err, fmt.Sprintf("%v on n=%d", v, g.N)) {
		return nil
	}
	if h.verify {
		want := graph.FloydWarshall(g)
		for x := 0; x < g.N; x++ {
			for t := 0; t < g.N; t++ {
				if res.Dist[x][t] != want[x][t] {
					fatalf("%v: wrong distance (%d,%d)", v, x, t)
				}
			}
		}
	}
	return res
}

// table1: empirical Table 1 — full-APSP round counts per variant.
func (h harness) table1() {
	fmt.Fprintln(h.out, "## E1 (Table 1): APSP round complexity by algorithm")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| n | det n^4/3 (paper) | det n^3/2 [2] | randomized [13,1] | broadcast Step 6 | |Q| (paper) |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|--:|--:|")
	variants := []core.Variant{core.Det43, core.Det32, core.Rand43, core.BroadcastStep6}
	series := make([][]float64, len(variants))
	var used []int
	for _, n := range h.sizes {
		avg := make([]float64, len(variants))
		var qsz float64
		complete := true
		for s := 0; s < h.seeds && complete; s++ {
			g := h.graphFor(n, int64(n*1000+s))
			sess := h.session(g) // all four variants share one warm session
			for vi, v := range variants {
				res := h.runVariant(sess, g, v, int64(s))
				if res == nil {
					complete = false
					break
				}
				avg[vi] += float64(res.Stats.Rounds) / float64(h.seeds)
				if v == core.Det43 {
					qsz += float64(res.Stats.QSize) / float64(h.seeds)
				}
			}
		}
		if !complete {
			continue // a timed-out cell: the row's averages would be partial
		}
		fmt.Fprintf(h.out, "| %d | %.0f | %.0f | %.0f | %.0f | %.1f |\n", n, avg[0], avg[1], avg[2], avg[3], qsz)
		used = append(used, n)
		for vi := range variants {
			series[vi] = append(series[vi], avg[vi])
		}
	}
	fmt.Fprintln(h.out)
	fmt.Fprintf(h.out, "fitted growth exponents: det43=%.2f det32=%.2f rand43=%.2f bcast=%.2f (theory: 1.33 / 1.50 / 1.33 / 1.67, all x polylog)\n\n",
		fitExponent(used, series[0]), fitExponent(used, series[1]),
		fitExponent(used, series[2]), fitExponent(used, series[3]))

	// Per-step decomposition for the paper's variant: the clean exponents
	// live here (Step 1/7 are O(n*h) with no polylog).
	fmt.Fprintln(h.out, "### E1b: per-step rounds of the deterministic n^4/3 algorithm")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| n | step1 CSSSP | step2 blocker | step3 inSSSP | step4 bcast | step6 qsink | step7 extend |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|--:|--:|--:|")
	var s1, s7 []float64
	var usedB []int
	for _, n := range h.sizes {
		g := h.graphFor(n, int64(n*1000))
		res := h.runVariant(h.session(g), g, core.Det43, 0)
		if res == nil {
			continue
		}
		st := res.Stats.Steps
		fmt.Fprintf(h.out, "| %d | %d | %d | %d | %d | %d | %d |\n", n,
			st.Step1CSSSP, st.Step2Blocker, st.Step3InSSSP, st.Step4Bcast, st.Step6QSink, st.Step7Extend)
		usedB = append(usedB, n)
		s1 = append(s1, float64(st.Step1CSSSP))
		s7 = append(s7, float64(st.Step7Extend))
	}
	fmt.Fprintln(h.out)
	fmt.Fprintf(h.out, "fitted exponents: step1=%.2f step7=%.2f (theory: both n*h = n^1.33 exactly)\n\n",
		fitExponent(usedB, s1), fitExponent(usedB, s7))
}

// buildColl assembles the h-hop CSSSP collection one blocker/q-sink cell
// measures against, on a network armed with the cell's context. ok=false
// means the build itself blew the deadline (already reported).
func (h harness) buildColl(ctx context.Context, g *graph.Graph, hp int) (coll *csssp.Collection, nw *congest.Network, ok bool) {
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		fatalf("%v", err)
	}
	nw.SetContext(ctx)
	srcs := make([]int, g.N)
	for i := range srcs {
		srcs[i] = i
	}
	coll, err = csssp.Build(nw, g, srcs, hp, bford.Out)
	if h.handle(err, fmt.Sprintf("csssp build n=%d", g.N)) {
		return nil, nil, false
	}
	return coll, nw, true
}

func hopParam(n int) int { return int(math.Ceil(math.Pow(float64(n), 1.0/3))) }

// blockerSize: Lemma 3.10 — |Q| = O(n log n / h) for every construction.
func (h harness) blockerSize() {
	fmt.Fprintln(h.out, "## E2 (Lemma 3.10): blocker set size vs n ln(n)/h")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| n | h | n*ln(n)/h | det (Alg 2') | greedy [2] | sampled [13] |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		hp := hopParam(n)
		bound := float64(n) * math.Log(float64(n)) / float64(hp)
		var det, gre, smp float64
		complete := true
		for s := 0; s < h.seeds && complete; s++ {
			g := h.graphFor(n, int64(n*100+s))
			for _, m := range []struct {
				mode blocker.Mode
				dst  *float64
			}{{blocker.Deterministic, &det}, {blocker.Greedy, &gre}, {blocker.RandomSample, &smp}} {
				wctx, cancel := h.cellCtx()
				coll, nw, ok := h.buildColl(wctx, g, hp)
				if !ok {
					cancel()
					complete = false
					break
				}
				res, err := blocker.Compute(nw, coll, blocker.Params{Mode: m.mode, Seed: int64(s)})
				cancel()
				if h.handle(err, fmt.Sprintf("blocker %v n=%d", m.mode, n)) {
					complete = false
					break
				}
				*m.dst += float64(len(res.Q)) / float64(h.seeds)
			}
		}
		if !complete {
			continue
		}
		fmt.Fprintf(h.out, "| %d | %d | %.1f | %.1f | %.1f | %.1f |\n", n, hp, bound, det, gre, smp)
	}
	fmt.Fprintln(h.out)
}

// selectionSteps: Lemma 3.9 — the while loop runs O(log^3 n / (delta^3 eps^2)) times.
func (h harness) selectionSteps() {
	fmt.Fprintln(h.out, "## E3 (Lemma 3.9): selection steps of the deterministic construction")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| n | selection steps | single-node | good-set | fallback | log2(n)^3 |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		hp := hopParam(n)
		var steps, single, good, fall float64
		complete := true
		for s := 0; s < h.seeds && complete; s++ {
			g := h.graphFor(n, int64(n*100+s))
			wctx, cancel := h.cellCtx()
			coll, nw, ok := h.buildColl(wctx, g, hp)
			if !ok {
				cancel()
				complete = false
				break
			}
			res, err := blocker.Compute(nw, coll, blocker.Params{Mode: blocker.Deterministic})
			cancel()
			if h.handle(err, fmt.Sprintf("blocker selection n=%d", n)) {
				complete = false
				break
			}
			k := float64(h.seeds)
			steps += float64(res.Stats.SelectionSteps) / k
			single += float64(res.Stats.SingleSelections) / k
			good += float64(res.Stats.GoodSetSelections) / k
			fall += float64(res.Stats.FallbackSteps) / k
		}
		if !complete {
			continue
		}
		l := math.Log2(float64(n))
		fmt.Fprintf(h.out, "| %d | %.1f | %.1f | %.1f | %.1f | %.0f |\n", n, steps, single, good, fall, l*l*l)
	}
	fmt.Fprintln(h.out)
}

// blockerRounds: Corollary 3.13 vs the n*|Q| term of the greedy baseline.
func (h harness) blockerRounds() {
	fmt.Fprintln(h.out, "## E4 (Corollary 3.13): blocker construction rounds, set cover vs greedy")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| n | h | det rounds | greedy rounds | greedy n*|Q| term | det/nh |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|--:|--:|")
	var detR, greR []float64
	var used []int
	for _, n := range h.sizes {
		hp := hopParam(n)
		var det, gre, nq float64
		complete := true
		for s := 0; s < h.seeds && complete; s++ {
			g := h.graphFor(n, int64(n*100+s))
			wctx, cancel := h.cellCtx()
			collD, nwD, ok := h.buildColl(wctx, g, hp)
			if !ok {
				cancel()
				complete = false
				break
			}
			resD, err := blocker.Compute(nwD, collD, blocker.Params{Mode: blocker.Deterministic})
			cancel()
			if h.handle(err, fmt.Sprintf("blocker det n=%d", n)) {
				complete = false
				break
			}
			wctx, cancel = h.cellCtx()
			collG, nwG, ok := h.buildColl(wctx, g, hp)
			if !ok {
				cancel()
				complete = false
				break
			}
			resG, err := blocker.Compute(nwG, collG, blocker.Params{Mode: blocker.Greedy})
			cancel()
			if h.handle(err, fmt.Sprintf("blocker greedy n=%d", n)) {
				complete = false
				break
			}
			k := float64(h.seeds)
			det += float64(resD.Stats.Rounds) / k
			gre += float64(resG.Stats.Rounds) / k
			nq += float64(n*len(resG.Q)) / k
		}
		if !complete {
			continue
		}
		fmt.Fprintf(h.out, "| %d | %d | %.0f | %.0f | %.0f | %.1f |\n", n, hp, det, gre, nq, det/float64(n*hp))
		used = append(used, n)
		detR = append(detR, det)
		greR = append(greR, gre)
	}
	fmt.Fprintln(h.out)
	fmt.Fprintf(h.out, "fitted exponents: det=%.2f greedy=%.2f (theory: |S|h = n^1.33 x polylog vs nh + n|Q| -> n^1.67-ish as |Q| grows)\n\n",
		fitExponent(used, detR), fitExponent(used, greR))
}

// qsinkRounds: Lemmas 4.1/4.5 — Step 6 alone, pipelined vs broadcast.
func (h harness) qsinkRounds() {
	fmt.Fprintln(h.out, "## E5 (Lemmas 4.1, 4.5): reversed q-sink delivery rounds")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| n | |Q| | roundrobin | frames | broadcast n*|Q| | pipeline msgs |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		hp := hopParam(n)
		g := h.graphFor(n, int64(n*100))
		wctx, cancel := h.cellCtx()
		coll, nwb, ok := h.buildColl(wctx, g, hp)
		if !ok {
			cancel()
			continue
		}
		bres, err := blocker.Compute(nwb, coll, blocker.Params{Mode: blocker.Deterministic})
		cancel()
		if h.handle(err, fmt.Sprintf("qsink blocker n=%d", n)) {
			continue
		}
		Q := bres.Q
		if len(Q) == 0 {
			continue
		}
		delta := graph.BlockerDelta(g, Q)
		row := make(map[qsink.Scheduler]*qsink.Stats)
		complete := true
		for _, sch := range []qsink.Scheduler{qsink.RoundRobin, qsink.Frames, qsink.BroadcastAll} {
			nw, err := congest.NewNetwork(g, 1)
			if err != nil {
				fatalf("%v", err)
			}
			wctx, cancel := h.cellCtx()
			nw.SetContext(wctx)
			res, err := qsink.Run(nw, g, Q, delta, qsink.Params{Scheduler: sch})
			cancel()
			if h.handle(err, fmt.Sprintf("qsink %v n=%d", sch, n)) {
				complete = false
				break
			}
			if h.verify {
				checkQsink(g, Q, res)
			}
			st := res.Stats
			row[sch] = &st
		}
		if !complete {
			continue
		}
		fmt.Fprintf(h.out, "| %d | %d | %d | %d | %d | %d |\n", n, len(Q),
			row[qsink.RoundRobin].RoundsTotal, row[qsink.Frames].RoundsTotal,
			row[qsink.BroadcastAll].RoundsTotal, row[qsink.RoundRobin].PipelineMessages)
	}
	fmt.Fprintln(h.out)
}

func checkQsink(g *graph.Graph, Q []int, res *qsink.Result) {
	want := graph.BlockerDelta(g, Q)
	for ci := range Q {
		for x := 0; x < g.N; x++ {
			got, exp := res.AtBlocker[ci][x], want.At(x, ci)
			if exp >= graph.Inf {
				exp = graph.Inf
			}
			if got != exp && !(got >= graph.Inf && exp >= graph.Inf) {
				fatalf("qsink wrong at (c=%d, x=%d): %d vs %d", Q[ci], x, got, exp)
			}
		}
	}
}

// bottleneck: Lemmas A.15-A.17 — bottleneck count and load reduction. The
// lemma regime (mult=1: |B| <= sqrt(q), loads <= n*sqrt(q)) and a stress
// regime (mult=0.05) are reported separately.
func (h harness) bottleneck() {
	fmt.Fprintln(h.out, "## E6 (Lemmas A.15-A.17): bottleneck elimination")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| n | workload | mult | |Q| | bound | |B| | sqrt(q) cap (mult=1) | load before | load after |")
	fmt.Fprintln(h.out, "|--:|--|--:|--:|--:|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		for _, wl := range []struct {
			name string
			g    *graph.Graph
		}{
			{"star", graph.Star(graph.GenConfig{N: n, Seed: int64(n), MaxWeight: 20})},
			{"grid", gridFor(n)},
		} {
			var Q []int
			for v := 0; v < n; v += 4 {
				Q = append(Q, v)
			}
			for _, mult := range []float64{1.0, 0.05} {
				nw, err := congest.NewNetwork(wl.g, 1)
				if err != nil {
					fatalf("%v", err)
				}
				wctx, cancel := h.cellCtx()
				nw.SetContext(wctx)
				res, err := qsink.Run(nw, wl.g, Q, graph.BlockerDelta(wl.g, Q), qsink.Params{Scheduler: qsink.RoundRobin, CongestionMult: mult})
				cancel()
				if h.handle(err, fmt.Sprintf("bottleneck %s n=%d mult=%.2f", wl.name, n, mult)) {
					continue
				}
				if h.verify {
					checkQsink(wl.g, Q, res)
				}
				st := res.Stats
				cap := "-"
				if mult == 1.0 {
					cap = fmt.Sprintf("%.1f", math.Sqrt(float64(len(Q))))
					if float64(st.BottleneckCount) > math.Sqrt(float64(len(Q)))+1 {
						cap += " VIOLATED"
					}
				}
				fmt.Fprintf(h.out, "| %d | %s | %.2f | %d | %d | %d | %s | %d | %d |\n",
					n, wl.name, mult, len(Q), st.CongestionBound, st.BottleneckCount,
					cap, st.MaxLoadBefore, st.MaxLoadAfter)
			}
		}
	}
	fmt.Fprintln(h.out)
}

func gridFor(n int) *graph.Graph {
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	return graph.Grid(side, (n+side-1)/side, graph.GenConfig{Seed: int64(n), MaxWeight: 20})
}

// goodset: Lemma 3.8 — density of good sample points.
func (h harness) goodset() {
	fmt.Fprintln(h.out, "## E7 (Lemma 3.8): good sample points in the pairwise-independent space")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "(disjoint-paths workloads: no vertex covers more than ~1/k of the paths,")
	fmt.Fprintln(h.out, "so Step 9's single-node rule fails and the good-set branch must run;")
	fmt.Fprintln(h.out, "delta=0.5, full-space exhaustive search)")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| k paths x h | n | good-set selections | fallbacks | good points | scanned | fraction | Lemma 3.8 floor |")
	fmt.Fprintln(h.out, "|--|--:|--:|--:|--:|--:|--:|--:|")
	for _, cfg := range []struct{ k, h int }{{12, 3}, {16, 3}, {20, 3}, {16, 4}} {
		g := graph.DisjointPaths(cfg.k, cfg.h, 1000, graph.GenConfig{Seed: int64(cfg.k*10 + cfg.h), MaxWeight: 4})
		wctx, cancel := h.cellCtx()
		coll, nw, ok := h.buildColl(wctx, g, cfg.h)
		if !ok {
			cancel()
			continue
		}
		res, err := blocker.Compute(nw, coll, blocker.Params{
			Mode: blocker.Deterministic, Delta: 0.5, UseFullSpace: true,
		})
		cancel()
		if h.handle(err, fmt.Sprintf("goodset %dx%d", cfg.k, cfg.h)) {
			continue
		}
		frac := 0.0
		if res.Stats.PointsScanned > 0 {
			frac = float64(res.Stats.GoodPoints) / float64(res.Stats.PointsScanned)
		}
		fmt.Fprintf(h.out, "| %dx%d | %d | %d | %d | %d | %d | %.3f | 0.125 |\n",
			cfg.k, cfg.h, g.N, res.Stats.GoodSetSelections, res.Stats.FallbackSteps,
			res.Stats.GoodPoints, res.Stats.PointsScanned, frac)
	}
	fmt.Fprintln(h.out)
}

// frames: Lemma 4.8 — per-stage shrinkage of max |Q_{v,i}|. With the
// paper's quota the stage-0 budget already covers all traffic at these
// sizes, so a scaled-down quota (x0.02) is used to surface the multi-stage
// shrinkage the lemma describes.
func (h harness) frames() {
	fmt.Fprintln(h.out, "## E8 (Lemma 4.8): frame-stage shrinkage of max |Q_v,i|")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| n | |Q| | quota | stages | max|Qvi| per stage | pipeline rounds |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|--|--:|")
	for _, n := range h.sizes {
		g := h.graphFor(n, int64(n*7))
		var Q []int
		for v := 0; v < n; v += 3 {
			Q = append(Q, v)
		}
		for _, scale := range []float64{1.0, 0.02} {
			nw, err := congest.NewNetwork(g, 1)
			if err != nil {
				fatalf("%v", err)
			}
			wctx, cancel := h.cellCtx()
			nw.SetContext(wctx)
			res, err := qsink.Run(nw, g, Q, graph.BlockerDelta(g, Q), qsink.Params{Scheduler: qsink.Frames, FrameQuotaScale: scale})
			cancel()
			if h.handle(err, fmt.Sprintf("frames n=%d scale=%.2f", n, scale)) {
				continue
			}
			if h.verify {
				checkQsink(g, Q, res)
			}
			st := res.Stats
			var parts []string
			for _, m := range st.FrameQviMax {
				parts = append(parts, strconv.Itoa(m))
			}
			fmt.Fprintf(h.out, "| %d | %d | x%.2f | %d | %s | %d |\n", n, len(Q), scale, st.FrameStages, strings.Join(parts, " -> "), st.PipelineRounds)
		}
	}
	fmt.Fprintln(h.out)
}

// hSweep: ablation of the hop parameter. Theorem 1.1 balances the O~(n*h)
// cost of Steps 1/2/7 against the O~(n*sqrt(q)) = O~(n*sqrt(n log n / h))
// cost of Step 6 at h = n^(1/3); the sweep shows where the balance falls
// with real constants.
func (h harness) hSweep() {
	fmt.Fprintln(h.out, "## E10 (Theorem 1.1 ablation): total rounds vs hop parameter h")
	fmt.Fprintln(h.out)
	n := h.sizes[len(h.sizes)-1]
	g := h.graphFor(n, int64(n*1000))
	fmt.Fprintf(h.out, "(n = %d; theory balance point h = n^(1/3) = %.1f)\n\n", n, math.Pow(float64(n), 1.0/3))
	fmt.Fprintln(h.out, "| h | rounds | |Q| | step1 | step2 blocker | step6 qsink | step7 |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|--:|--:|--:|")
	maxH := int(math.Ceil(math.Sqrt(float64(n)))) + 2
	sess := h.session(g) // the whole h sweep shares one warm session
	for hp := 2; hp <= maxH; hp += 2 {
		wctx, cancel := h.cellCtx()
		res, err := sess.RunContext(wctx, core.Options{Variant: core.Det43, H: hp, SkipLastEdges: true, Parallel: h.parallel})
		cancel()
		if h.handle(err, fmt.Sprintf("hsweep h=%d", hp)) {
			continue
		}
		st := res.Stats.Steps
		fmt.Fprintf(h.out, "| %d | %d | %d | %d | %d | %d | %d |\n",
			hp, res.Stats.Rounds, res.Stats.QSize, st.Step1CSSSP, st.Step2Blocker, st.Step6QSink, st.Step7Extend)
	}
	fmt.Fprintln(h.out)
}

// bandwidthSweep: rounds vs per-link bandwidth B. The paper's model allows
// a constant number of values per edge per round; the sweep shows which
// steps are bandwidth-bound (broadcasts, pipelines) versus latency-bound
// (Bellman-Ford waves).
func (h harness) bandwidthSweep() {
	fmt.Fprintln(h.out, "## E11 (model ablation): rounds vs per-link bandwidth")
	fmt.Fprintln(h.out)
	n := h.sizes[len(h.sizes)-1]
	g := h.graphFor(n, int64(n*1000))
	fmt.Fprintf(h.out, "(n = %d, deterministic n^4/3 profile)\n\n", n)
	fmt.Fprintln(h.out, "| bandwidth | rounds | step2 blocker | step6 qsink | step1+7 BF |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|--:|")
	sess := h.session(g) // SetBandwidth reaches the warm fleet between runs
	for _, bw := range []int{1, 2, 4, 8} {
		wctx, cancel := h.cellCtx()
		res, err := sess.RunContext(wctx, core.Options{Variant: core.Det43, Bandwidth: bw, SkipLastEdges: true, Parallel: h.parallel})
		cancel()
		if h.handle(err, fmt.Sprintf("bandwidth bw=%d", bw)) {
			continue
		}
		st := res.Stats.Steps
		fmt.Fprintf(h.out, "| %d | %d | %d | %d | %d |\n",
			bw, res.Stats.Rounds, st.Step2Blocker, st.Step6QSink, st.Step1CSSSP+st.Step7Extend)
	}
	fmt.Fprintln(h.out)
}

// unweightedRounds: the O(n) unweighted regime of Table 1's context (the
// Omega(n) lower bound of [6] holds even unweighted).
func (h harness) unweightedRounds() {
	fmt.Fprintln(h.out, "## E12 (context): unweighted APSP in O(n) rounds (pipelined BFS)")
	fmt.Fprintln(h.out)
	fmt.Fprintln(h.out, "| n | rounds | rounds/n | weighted det43 rounds |")
	fmt.Fprintln(h.out, "|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		g := h.graphFor(n, int64(n*1000))
		nw, err := congest.NewNetwork(g, 1)
		if err != nil {
			fatalf("%v", err)
		}
		wctx, cancel := h.cellCtx()
		nw.SetContext(wctx)
		res, err := unweighted.Run(nw, g)
		cancel()
		if h.handle(err, fmt.Sprintf("unweighted n=%d", n)) {
			continue
		}
		if h.verify {
			unit := graph.New(g.N, g.Directed)
			for _, e := range g.Edges() {
				unit.MustAddEdge(e.U, e.V, 1)
			}
			want := graph.FloydWarshall(unit)
			for s := 0; s < g.N; s++ {
				for v := 0; v < g.N; v++ {
					if res.Dist[s][v] != want[s][v] {
						fatalf("unweighted wrong at (%d,%d)", s, v)
					}
				}
			}
		}
		det := h.runVariant(h.session(g), g, core.Det43, 0)
		if det == nil {
			continue
		}
		fmt.Fprintf(h.out, "| %d | %d | %.1f | %d |\n", n, res.Rounds, float64(res.Rounds)/float64(n), det.Stats.Rounds)
	}
	fmt.Fprintln(h.out)
}
