// Command congestbench regenerates the experiment tables of EXPERIMENTS.md:
// the empirical counterpart of Table 1 of the paper plus one experiment per
// quantitative lemma (blocker-set size, selection steps, construction
// rounds, reversed q-sink rounds, bottleneck elimination, good-set density,
// frame-stage shrinkage).
//
// Usage:
//
//	congestbench -exp table1 [-sizes 16,24,32,48,64] [-seeds 2]
//	congestbench -exp all
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"congestapsp/internal/bford"
	"congestapsp/internal/blocker"
	"congestapsp/internal/congest"
	"congestapsp/internal/core"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
	"congestapsp/internal/profiling"
	"congestapsp/internal/qsink"
	"congestapsp/internal/unweighted"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|blockersize|selectionsteps|blockerrounds|qsink|bottleneck|goodset|frames|hsweep|bandwidth|unweighted|all")
	sizesFlag := flag.String("sizes", "16,24,32,48,64", "comma-separated node counts")
	seeds := flag.Int("seeds", 2, "seeds per configuration (results averaged)")
	verify := flag.Bool("verify", true, "cross-check distances against Floyd-Warshall")
	parallel := flag.Bool("parallel", false, "run the simulator's sharded step/delivery phases (bit-identical results)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}
	h := harness{sizes: sizes, seeds: *seeds, verify: *verify, parallel: *parallel}

	all := map[string]func(){
		"table1":         h.table1,
		"blockersize":    h.blockerSize,
		"selectionsteps": h.selectionSteps,
		"blockerrounds":  h.blockerRounds,
		"qsink":          h.qsinkRounds,
		"bottleneck":     h.bottleneck,
		"goodset":        h.goodset,
		"frames":         h.frames,
		"hsweep":         h.hSweep,
		"bandwidth":      h.bandwidthSweep,
		"unweighted":     h.unweightedRounds,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "blockersize", "selectionsteps", "blockerrounds", "qsink", "bottleneck", "goodset", "frames", "hsweep", "bandwidth", "unweighted"} {
			all[name]()
		}
		return
	}
	fn, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn()
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 4 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

type harness struct {
	sizes    []int
	seeds    int
	verify   bool
	parallel bool
}

func (h harness) graphFor(n int, seed int64) *graph.Graph {
	return graph.RandomConnected(graph.GenConfig{N: n, Directed: true, Seed: seed, MaxWeight: 50}, 4*n)
}

// fitExponent returns the least-squares slope of log(y) against log(x).
func fitExponent(xs []int, ys []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(float64(xs[i])), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	k := float64(len(xs))
	return (k*sxy - sx*sy) / (k*sxx - sx*sx)
}

// session builds a warm core.Session for g (the CLI analogue of
// apsp.Runner). Callers keep it in a local scoped to the graph's lifetime
// — every run on the same graph shares it, and the network (with its
// grow-only arenas and clone fleet) is released with the graph instead of
// being retained for the whole process.
func (h harness) session(g *graph.Graph) *core.Session {
	s, err := core.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func (h harness) runVariant(s *core.Session, g *graph.Graph, v core.Variant, seed int64) *core.Result {
	res, err := s.Run(core.Options{Variant: v, Seed: seed, SkipLastEdges: true, Parallel: h.parallel})
	if err != nil {
		log.Fatalf("%v on n=%d: %v", v, g.N, err)
	}
	if h.verify {
		want := graph.FloydWarshall(g)
		for x := 0; x < g.N; x++ {
			for t := 0; t < g.N; t++ {
				if res.Dist[x][t] != want[x][t] {
					log.Fatalf("%v: wrong distance (%d,%d)", v, x, t)
				}
			}
		}
	}
	return res
}

// table1: empirical Table 1 — full-APSP round counts per variant.
func (h harness) table1() {
	fmt.Println("## E1 (Table 1): APSP round complexity by algorithm")
	fmt.Println()
	fmt.Println("| n | det n^4/3 (paper) | det n^3/2 [2] | randomized [13,1] | broadcast Step 6 | |Q| (paper) |")
	fmt.Println("|--:|--:|--:|--:|--:|--:|")
	variants := []core.Variant{core.Det43, core.Det32, core.Rand43, core.BroadcastStep6}
	series := make([][]float64, len(variants))
	for _, n := range h.sizes {
		avg := make([]float64, len(variants))
		var qsz float64
		for s := 0; s < h.seeds; s++ {
			g := h.graphFor(n, int64(n*1000+s))
			sess := h.session(g) // all four variants share one warm session
			for vi, v := range variants {
				res := h.runVariant(sess, g, v, int64(s))
				avg[vi] += float64(res.Stats.Rounds) / float64(h.seeds)
				if v == core.Det43 {
					qsz += float64(res.Stats.QSize) / float64(h.seeds)
				}
			}
		}
		fmt.Printf("| %d | %.0f | %.0f | %.0f | %.0f | %.1f |\n", n, avg[0], avg[1], avg[2], avg[3], qsz)
		for vi := range variants {
			series[vi] = append(series[vi], avg[vi])
		}
	}
	fmt.Println()
	fmt.Printf("fitted growth exponents: det43=%.2f det32=%.2f rand43=%.2f bcast=%.2f (theory: 1.33 / 1.50 / 1.33 / 1.67, all x polylog)\n\n",
		fitExponent(h.sizes, series[0]), fitExponent(h.sizes, series[1]),
		fitExponent(h.sizes, series[2]), fitExponent(h.sizes, series[3]))

	// Per-step decomposition for the paper's variant: the clean exponents
	// live here (Step 1/7 are O(n*h) with no polylog).
	fmt.Println("### E1b: per-step rounds of the deterministic n^4/3 algorithm")
	fmt.Println()
	fmt.Println("| n | step1 CSSSP | step2 blocker | step3 inSSSP | step4 bcast | step6 qsink | step7 extend |")
	fmt.Println("|--:|--:|--:|--:|--:|--:|--:|")
	var s1, s7 []float64
	for _, n := range h.sizes {
		g := h.graphFor(n, int64(n*1000))
		res := h.runVariant(h.session(g), g, core.Det43, 0)
		st := res.Stats.Steps
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %d |\n", n,
			st.Step1CSSSP, st.Step2Blocker, st.Step3InSSSP, st.Step4Bcast, st.Step6QSink, st.Step7Extend)
		s1 = append(s1, float64(st.Step1CSSSP))
		s7 = append(s7, float64(st.Step7Extend))
	}
	fmt.Println()
	fmt.Printf("fitted exponents: step1=%.2f step7=%.2f (theory: both n*h = n^1.33 exactly)\n\n",
		fitExponent(h.sizes, s1), fitExponent(h.sizes, s7))
}

func (h harness) buildColl(g *graph.Graph, hp int) (*csssp.Collection, *congest.Network) {
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	srcs := make([]int, g.N)
	for i := range srcs {
		srcs[i] = i
	}
	coll, err := csssp.Build(nw, g, srcs, hp, bford.Out)
	if err != nil {
		log.Fatal(err)
	}
	return coll, nw
}

func hopParam(n int) int { return int(math.Ceil(math.Pow(float64(n), 1.0/3))) }

// blockerSize: Lemma 3.10 — |Q| = O(n log n / h) for every construction.
func (h harness) blockerSize() {
	fmt.Println("## E2 (Lemma 3.10): blocker set size vs n ln(n)/h")
	fmt.Println()
	fmt.Println("| n | h | n*ln(n)/h | det (Alg 2') | greedy [2] | sampled [13] |")
	fmt.Println("|--:|--:|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		hp := hopParam(n)
		bound := float64(n) * math.Log(float64(n)) / float64(hp)
		var det, gre, smp float64
		for s := 0; s < h.seeds; s++ {
			g := h.graphFor(n, int64(n*100+s))
			for _, m := range []struct {
				mode blocker.Mode
				dst  *float64
			}{{blocker.Deterministic, &det}, {blocker.Greedy, &gre}, {blocker.RandomSample, &smp}} {
				coll, nw := h.buildColl(g, hp)
				res, err := blocker.Compute(nw, coll, blocker.Params{Mode: m.mode, Seed: int64(s)})
				if err != nil {
					log.Fatal(err)
				}
				*m.dst += float64(len(res.Q)) / float64(h.seeds)
			}
		}
		fmt.Printf("| %d | %d | %.1f | %.1f | %.1f | %.1f |\n", n, hp, bound, det, gre, smp)
	}
	fmt.Println()
}

// selectionSteps: Lemma 3.9 — the while loop runs O(log^3 n / (delta^3 eps^2)) times.
func (h harness) selectionSteps() {
	fmt.Println("## E3 (Lemma 3.9): selection steps of the deterministic construction")
	fmt.Println()
	fmt.Println("| n | selection steps | single-node | good-set | fallback | log2(n)^3 |")
	fmt.Println("|--:|--:|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		hp := hopParam(n)
		var steps, single, good, fall float64
		for s := 0; s < h.seeds; s++ {
			g := h.graphFor(n, int64(n*100+s))
			coll, nw := h.buildColl(g, hp)
			res, err := blocker.Compute(nw, coll, blocker.Params{Mode: blocker.Deterministic})
			if err != nil {
				log.Fatal(err)
			}
			k := float64(h.seeds)
			steps += float64(res.Stats.SelectionSteps) / k
			single += float64(res.Stats.SingleSelections) / k
			good += float64(res.Stats.GoodSetSelections) / k
			fall += float64(res.Stats.FallbackSteps) / k
		}
		l := math.Log2(float64(n))
		fmt.Printf("| %d | %.1f | %.1f | %.1f | %.1f | %.0f |\n", n, steps, single, good, fall, l*l*l)
	}
	fmt.Println()
}

// blockerRounds: Corollary 3.13 vs the n*|Q| term of the greedy baseline.
func (h harness) blockerRounds() {
	fmt.Println("## E4 (Corollary 3.13): blocker construction rounds, set cover vs greedy")
	fmt.Println()
	fmt.Println("| n | h | det rounds | greedy rounds | greedy n*|Q| term | det/nh |")
	fmt.Println("|--:|--:|--:|--:|--:|--:|")
	var detR, greR []float64
	for _, n := range h.sizes {
		hp := hopParam(n)
		var det, gre, nq float64
		for s := 0; s < h.seeds; s++ {
			g := h.graphFor(n, int64(n*100+s))
			collD, nwD := h.buildColl(g, hp)
			resD, err := blocker.Compute(nwD, collD, blocker.Params{Mode: blocker.Deterministic})
			if err != nil {
				log.Fatal(err)
			}
			collG, nwG := h.buildColl(g, hp)
			resG, err := blocker.Compute(nwG, collG, blocker.Params{Mode: blocker.Greedy})
			if err != nil {
				log.Fatal(err)
			}
			k := float64(h.seeds)
			det += float64(resD.Stats.Rounds) / k
			gre += float64(resG.Stats.Rounds) / k
			nq += float64(n*len(resG.Q)) / k
		}
		fmt.Printf("| %d | %d | %.0f | %.0f | %.0f | %.1f |\n", n, hp, det, gre, nq, det/float64(n*hp))
		detR = append(detR, det)
		greR = append(greR, gre)
	}
	fmt.Println()
	fmt.Printf("fitted exponents: det=%.2f greedy=%.2f (theory: |S|h = n^1.33 x polylog vs nh + n|Q| -> n^1.67-ish as |Q| grows)\n\n",
		fitExponent(h.sizes, detR), fitExponent(h.sizes, greR))
}

// qsinkRounds: Lemmas 4.1/4.5 — Step 6 alone, pipelined vs broadcast.
func (h harness) qsinkRounds() {
	fmt.Println("## E5 (Lemmas 4.1, 4.5): reversed q-sink delivery rounds")
	fmt.Println()
	fmt.Println("| n | |Q| | roundrobin | frames | broadcast n*|Q| | pipeline msgs |")
	fmt.Println("|--:|--:|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		hp := hopParam(n)
		g := h.graphFor(n, int64(n*100))
		coll, nwb := h.buildColl(g, hp)
		bres, err := blocker.Compute(nwb, coll, blocker.Params{Mode: blocker.Deterministic})
		if err != nil {
			log.Fatal(err)
		}
		Q := bres.Q
		if len(Q) == 0 {
			continue
		}
		delta := graph.BlockerDelta(g, Q)
		row := make(map[qsink.Scheduler]*qsink.Stats)
		for _, sch := range []qsink.Scheduler{qsink.RoundRobin, qsink.Frames, qsink.BroadcastAll} {
			nw, err := congest.NewNetwork(g, 1)
			if err != nil {
				log.Fatal(err)
			}
			res, err := qsink.Run(nw, g, Q, delta, qsink.Params{Scheduler: sch})
			if err != nil {
				log.Fatal(err)
			}
			if h.verify {
				checkQsink(g, Q, res)
			}
			st := res.Stats
			row[sch] = &st
		}
		fmt.Printf("| %d | %d | %d | %d | %d | %d |\n", n, len(Q),
			row[qsink.RoundRobin].RoundsTotal, row[qsink.Frames].RoundsTotal,
			row[qsink.BroadcastAll].RoundsTotal, row[qsink.RoundRobin].PipelineMessages)
	}
	fmt.Println()
}

func checkQsink(g *graph.Graph, Q []int, res *qsink.Result) {
	want := graph.BlockerDelta(g, Q)
	for ci := range Q {
		for x := 0; x < g.N; x++ {
			got, exp := res.AtBlocker[ci][x], want.At(x, ci)
			if exp >= graph.Inf {
				exp = graph.Inf
			}
			if got != exp && !(got >= graph.Inf && exp >= graph.Inf) {
				log.Fatalf("qsink wrong at (c=%d, x=%d): %d vs %d", Q[ci], x, got, exp)
			}
		}
	}
}

// bottleneck: Lemmas A.15-A.17 — bottleneck count and load reduction. The
// lemma regime (mult=1: |B| <= sqrt(q), loads <= n*sqrt(q)) and a stress
// regime (mult=0.05) are reported separately.
func (h harness) bottleneck() {
	fmt.Println("## E6 (Lemmas A.15-A.17): bottleneck elimination")
	fmt.Println()
	fmt.Println("| n | workload | mult | |Q| | bound | |B| | sqrt(q) cap (mult=1) | load before | load after |")
	fmt.Println("|--:|--|--:|--:|--:|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		for _, wl := range []struct {
			name string
			g    *graph.Graph
		}{
			{"star", graph.Star(graph.GenConfig{N: n, Seed: int64(n), MaxWeight: 20})},
			{"grid", gridFor(n)},
		} {
			var Q []int
			for v := 0; v < n; v += 4 {
				Q = append(Q, v)
			}
			for _, mult := range []float64{1.0, 0.05} {
				nw, err := congest.NewNetwork(wl.g, 1)
				if err != nil {
					log.Fatal(err)
				}
				res, err := qsink.Run(nw, wl.g, Q, graph.BlockerDelta(wl.g, Q), qsink.Params{Scheduler: qsink.RoundRobin, CongestionMult: mult})
				if err != nil {
					log.Fatal(err)
				}
				if h.verify {
					checkQsink(wl.g, Q, res)
				}
				st := res.Stats
				cap := "-"
				if mult == 1.0 {
					cap = fmt.Sprintf("%.1f", math.Sqrt(float64(len(Q))))
					if float64(st.BottleneckCount) > math.Sqrt(float64(len(Q)))+1 {
						cap += " VIOLATED"
					}
				}
				fmt.Printf("| %d | %s | %.2f | %d | %d | %d | %s | %d | %d |\n",
					n, wl.name, mult, len(Q), st.CongestionBound, st.BottleneckCount,
					cap, st.MaxLoadBefore, st.MaxLoadAfter)
			}
		}
	}
	fmt.Println()
}

func gridFor(n int) *graph.Graph {
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	return graph.Grid(side, (n+side-1)/side, graph.GenConfig{Seed: int64(n), MaxWeight: 20})
}

// goodset: Lemma 3.8 — density of good sample points.
func (h harness) goodset() {
	fmt.Println("## E7 (Lemma 3.8): good sample points in the pairwise-independent space")
	fmt.Println()
	fmt.Println("(disjoint-paths workloads: no vertex covers more than ~1/k of the paths,")
	fmt.Println("so Step 9's single-node rule fails and the good-set branch must run;")
	fmt.Println("delta=0.5, full-space exhaustive search)")
	fmt.Println()
	fmt.Println("| k paths x h | n | good-set selections | fallbacks | good points | scanned | fraction | Lemma 3.8 floor |")
	fmt.Println("|--|--:|--:|--:|--:|--:|--:|--:|")
	for _, cfg := range []struct{ k, h int }{{12, 3}, {16, 3}, {20, 3}, {16, 4}} {
		g := graph.DisjointPaths(cfg.k, cfg.h, 1000, graph.GenConfig{Seed: int64(cfg.k*10 + cfg.h), MaxWeight: 4})
		coll, nw := h.buildColl(g, cfg.h)
		res, err := blocker.Compute(nw, coll, blocker.Params{
			Mode: blocker.Deterministic, Delta: 0.5, UseFullSpace: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		frac := 0.0
		if res.Stats.PointsScanned > 0 {
			frac = float64(res.Stats.GoodPoints) / float64(res.Stats.PointsScanned)
		}
		fmt.Printf("| %dx%d | %d | %d | %d | %d | %d | %.3f | 0.125 |\n",
			cfg.k, cfg.h, g.N, res.Stats.GoodSetSelections, res.Stats.FallbackSteps,
			res.Stats.GoodPoints, res.Stats.PointsScanned, frac)
	}
	fmt.Println()
}

// frames: Lemma 4.8 — per-stage shrinkage of max |Q_{v,i}|. With the
// paper's quota the stage-0 budget already covers all traffic at these
// sizes, so a scaled-down quota (x0.02) is used to surface the multi-stage
// shrinkage the lemma describes.
func (h harness) frames() {
	fmt.Println("## E8 (Lemma 4.8): frame-stage shrinkage of max |Q_v,i|")
	fmt.Println()
	fmt.Println("| n | |Q| | quota | stages | max|Qvi| per stage | pipeline rounds |")
	fmt.Println("|--:|--:|--:|--:|--|--:|")
	for _, n := range h.sizes {
		g := h.graphFor(n, int64(n*7))
		var Q []int
		for v := 0; v < n; v += 3 {
			Q = append(Q, v)
		}
		for _, scale := range []float64{1.0, 0.02} {
			nw, err := congest.NewNetwork(g, 1)
			if err != nil {
				log.Fatal(err)
			}
			res, err := qsink.Run(nw, g, Q, graph.BlockerDelta(g, Q), qsink.Params{Scheduler: qsink.Frames, FrameQuotaScale: scale})
			if err != nil {
				log.Fatal(err)
			}
			if h.verify {
				checkQsink(g, Q, res)
			}
			st := res.Stats
			var parts []string
			for _, m := range st.FrameQviMax {
				parts = append(parts, strconv.Itoa(m))
			}
			fmt.Printf("| %d | %d | x%.2f | %d | %s | %d |\n", n, len(Q), scale, st.FrameStages, strings.Join(parts, " -> "), st.PipelineRounds)
		}
	}
	fmt.Println()
}

// hSweep: ablation of the hop parameter. Theorem 1.1 balances the O~(n*h)
// cost of Steps 1/2/7 against the O~(n*sqrt(q)) = O~(n*sqrt(n log n / h))
// cost of Step 6 at h = n^(1/3); the sweep shows where the balance falls
// with real constants.
func (h harness) hSweep() {
	fmt.Println("## E10 (Theorem 1.1 ablation): total rounds vs hop parameter h")
	fmt.Println()
	n := h.sizes[len(h.sizes)-1]
	g := h.graphFor(n, int64(n*1000))
	fmt.Printf("(n = %d; theory balance point h = n^(1/3) = %.1f)\n\n", n, math.Pow(float64(n), 1.0/3))
	fmt.Println("| h | rounds | |Q| | step1 | step2 blocker | step6 qsink | step7 |")
	fmt.Println("|--:|--:|--:|--:|--:|--:|--:|")
	maxH := int(math.Ceil(math.Sqrt(float64(n)))) + 2
	sess := h.session(g) // the whole h sweep shares one warm session
	for hp := 2; hp <= maxH; hp += 2 {
		res, err := sess.Run(core.Options{Variant: core.Det43, H: hp, SkipLastEdges: true, Parallel: h.parallel})
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats.Steps
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %d |\n",
			hp, res.Stats.Rounds, res.Stats.QSize, st.Step1CSSSP, st.Step2Blocker, st.Step6QSink, st.Step7Extend)
	}
	fmt.Println()
}

// bandwidthSweep: rounds vs per-link bandwidth B. The paper's model allows
// a constant number of values per edge per round; the sweep shows which
// steps are bandwidth-bound (broadcasts, pipelines) versus latency-bound
// (Bellman-Ford waves).
func (h harness) bandwidthSweep() {
	fmt.Println("## E11 (model ablation): rounds vs per-link bandwidth")
	fmt.Println()
	n := h.sizes[len(h.sizes)-1]
	g := h.graphFor(n, int64(n*1000))
	fmt.Printf("(n = %d, deterministic n^4/3 profile)\n\n", n)
	fmt.Println("| bandwidth | rounds | step2 blocker | step6 qsink | step1+7 BF |")
	fmt.Println("|--:|--:|--:|--:|--:|")
	sess := h.session(g) // SetBandwidth reaches the warm fleet between runs
	for _, bw := range []int{1, 2, 4, 8} {
		res, err := sess.Run(core.Options{Variant: core.Det43, Bandwidth: bw, SkipLastEdges: true, Parallel: h.parallel})
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats.Steps
		fmt.Printf("| %d | %d | %d | %d | %d |\n",
			bw, res.Stats.Rounds, st.Step2Blocker, st.Step6QSink, st.Step1CSSSP+st.Step7Extend)
	}
	fmt.Println()
}

// unweightedRounds: the O(n) unweighted regime of Table 1's context (the
// Omega(n) lower bound of [6] holds even unweighted).
func (h harness) unweightedRounds() {
	fmt.Println("## E12 (context): unweighted APSP in O(n) rounds (pipelined BFS)")
	fmt.Println()
	fmt.Println("| n | rounds | rounds/n | weighted det43 rounds |")
	fmt.Println("|--:|--:|--:|--:|")
	for _, n := range h.sizes {
		g := h.graphFor(n, int64(n*1000))
		nw, err := congest.NewNetwork(g, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := unweighted.Run(nw, g)
		if err != nil {
			log.Fatal(err)
		}
		if h.verify {
			unit := graph.New(g.N, g.Directed)
			for _, e := range g.Edges() {
				unit.MustAddEdge(e.U, e.V, 1)
			}
			want := graph.FloydWarshall(unit)
			for s := 0; s < g.N; s++ {
				for v := 0; v < g.N; v++ {
					if res.Dist[s][v] != want[s][v] {
						log.Fatalf("unweighted wrong at (%d,%d)", s, v)
					}
				}
			}
		}
		det := h.runVariant(h.session(g), g, core.Det43, 0)
		fmt.Printf("| %d | %d | %.1f | %d |\n", n, res.Rounds, float64(res.Rounds)/float64(n), det.Stats.Rounds)
	}
	fmt.Println()
}
