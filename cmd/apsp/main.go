// Command apsp runs one APSP computation on a generated or user-supplied
// graph and reports distances plus the CONGEST cost accounting.
//
// Examples:
//
//	apsp -graph random -n 32 -m 128 -algorithm det43
//	apsp -graph grid -rows 5 -cols 6 -algorithm det32 -print
//	apsp -edges edges.txt -directed       (file lines: "u v w")
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"congestapsp/pkg/apsp"
)

func main() {
	var (
		gtype     = flag.String("graph", "random", "random|ring|grid|layered|star|zeromix (ignored with -edges)")
		n         = flag.Int("n", 32, "number of nodes")
		m         = flag.Int("m", 0, "edge target for random graphs (default 4n)")
		rows      = flag.Int("rows", 5, "grid rows / layered layers")
		cols      = flag.Int("cols", 6, "grid cols / layered width")
		directed  = flag.Bool("directed", false, "directed edges")
		seed      = flag.Int64("seed", 1, "generator / algorithm seed")
		maxW      = flag.Int64("maxweight", 100, "maximum edge weight")
		algorithm = flag.String("algorithm", "det43", "det43|det32|rand43|bcast6")
		hopParam  = flag.Int("h", 0, "hop parameter override (0 = default)")
		parallel  = flag.Bool("parallel", false, "source-sharded worker-pool execution (bit-identical results; ignored with -trace)")
		printMat  = flag.Bool("print", false, "print the distance matrix")
		pathFrom  = flag.Int("from", -1, "print a shortest path from this node")
		pathTo    = flag.Int("to", -1, "... to this node")
		edgesFile = flag.String("edges", "", "read edges from file (lines: u v w)")
		traceFile = flag.String("trace", "", "write a per-round CSV trace (round,delivered) to this file")
	)
	flag.Parse()

	g, err := buildGraph(*edgesFile, *gtype, *n, *m, *rows, *cols, *directed, *seed, *maxW)
	if err != nil {
		log.Fatal(err)
	}

	var alg apsp.Algorithm
	switch *algorithm {
	case "det43":
		alg = apsp.Deterministic43
	case "det32":
		alg = apsp.Deterministic32
	case "rand43":
		alg = apsp.Randomized43
	case "bcast6":
		alg = apsp.BroadcastStep6
	default:
		log.Fatalf("unknown algorithm %q", *algorithm)
	}

	opts := apsp.Options{Algorithm: alg, HopParam: *hopParam, Seed: *seed, Parallel: *parallel}
	var closer func() error
	if *traceFile != "" {
		var err error
		opts.OnRound, closer, err = csvTracer(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
	}
	res, err := apsp.Run(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	if closer != nil {
		if err := closer(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round trace written to %s\n", *traceFile)
	}

	s := res.Stats
	fmt.Printf("graph: n=%d m=%d directed=%v\n", s.N, s.M, g.Directed())
	fmt.Printf("algorithm: %v (h=%d)\n", alg, s.H)
	fmt.Printf("rounds=%d messages=%d words=%d |Q|=%d max-node-congestion=%d\n",
		s.Rounds, s.Messages, s.Words, s.BlockerSetSize, s.MaxNodeCongestion)
	fmt.Printf("step rounds: csssp=%d blocker=%d in-sssp=%d bcast=%d qsink=%d extend=%d lastedge=%d\n",
		s.Steps.Step1CSSSP, s.Steps.Step2Blocker, s.Steps.Step3InSSSP,
		s.Steps.Step4Bcast, s.Steps.Step6QSink, s.Steps.Step7Extend, s.Steps.Step8LastEdge)
	if s.BottleneckCount > 0 || s.QPrimeSize > 0 {
		fmt.Printf("qsink: |Q'|=%d bottlenecks=%d pipeline-rounds=%d\n", s.QPrimeSize, s.BottleneckCount, s.PipelineRounds)
	}

	if *printMat {
		for x := 0; x < g.N(); x++ {
			var row []string
			for t := 0; t < g.N(); t++ {
				if res.Dist[x][t] >= apsp.Inf {
					row = append(row, "inf")
				} else {
					row = append(row, fmt.Sprint(res.Dist[x][t]))
				}
			}
			fmt.Println(strings.Join(row, " "))
		}
	}
	if *pathFrom >= 0 && *pathTo >= 0 {
		fmt.Printf("path %d -> %d: %v (distance %d)\n",
			*pathFrom, *pathTo, res.Path(*pathFrom, *pathTo), res.Dist[*pathFrom][*pathTo])
	}
}

// csvTracer returns an OnRound hook streaming "round,delivered" lines.
func csvTracer(path string) (func(round, delivered int), func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "round,delivered")
	hook := func(round, delivered int) {
		fmt.Fprintf(w, "%d,%d\n", round, delivered)
	}
	closer := func() error {
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Close()
	}
	return hook, closer, nil
}

func buildGraph(edgesFile, gtype string, n, m, rows, cols int, directed bool, seed, maxW int64) (*apsp.Graph, error) {
	if edgesFile != "" {
		return readEdges(edgesFile, directed)
	}
	o := apsp.GenOptions{N: n, Directed: directed, Seed: seed, MaxWeight: maxW}
	if m == 0 {
		m = 4 * n
	}
	switch gtype {
	case "random":
		return apsp.RandomGraph(o, m), nil
	case "ring":
		return apsp.RingGraph(o), nil
	case "grid":
		return apsp.GridGraph(rows, cols, o), nil
	case "layered":
		return apsp.LayeredGraph(rows, cols, o), nil
	case "star":
		return apsp.StarGraph(o), nil
	case "zeromix":
		return apsp.ZeroWeightGraph(o, m), nil
	}
	return nil, fmt.Errorf("unknown graph type %q", gtype)
}

func readEdges(path string, directed bool) (*apsp.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type edge struct {
		u, v int
		w    int64
	}
	var edges []edge
	maxID := -1
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var e edge
		if _, err := fmt.Sscanf(text, "%d %d %d", &e.u, &e.v, &e.w); err != nil {
			return nil, fmt.Errorf("%s:%d: %q: %w", path, line, text, err)
		}
		edges = append(edges, e)
		if e.u > maxID {
			maxID = e.u
		}
		if e.v > maxID {
			maxID = e.v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := apsp.NewGraph(maxID+1, directed)
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, err
		}
	}
	return g, nil
}
