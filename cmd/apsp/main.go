// Command apsp runs one APSP computation on a generated or user-supplied
// graph and reports distances plus the CONGEST cost accounting.
//
// Examples:
//
//	apsp -graph random -n 32 -m 128 -algorithm det43
//	apsp -graph grid -rows 5 -cols 6 -algorithm det32 -print
//	apsp -scenario powerlaw-n128-s7            (named workload corpus)
//	apsp -load roads.gr                        (DIMACS/TSV/gob by extension)
//	apsp -graph ring -n 64 -save ring.gob      (snapshot the generated graph)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"congestapsp/pkg/apsp"
)

func main() {
	var (
		gtype     = flag.String("graph", "random", "random|ring|grid|layered|star|zeromix (conflicts with -load/-edges/-scenario)")
		n         = flag.Int("n", 32, "number of nodes")
		m         = flag.Int("m", 0, "edge target for random graphs (default 4n)")
		rows      = flag.Int("rows", 5, "grid rows / layered layers")
		cols      = flag.Int("cols", 6, "grid cols / layered width")
		directed  = flag.Bool("directed", false, "directed edges")
		seed      = flag.Int64("seed", 1, "generator / algorithm seed (a -scenario name overrides it)")
		maxW      = flag.Int64("maxweight", 100, "maximum edge weight")
		algorithm = flag.String("algorithm", "det43", "det43|det32|rand43|bcast6")
		hopParam  = flag.Int("h", 0, "hop parameter override (0 = default)")
		parallel  = flag.Bool("parallel", false, "source-sharded worker-pool execution (bit-identical results; ignored with -trace)")
		printMat  = flag.Bool("print", false, "print the distance matrix")
		pathFrom  = flag.Int("from", -1, "print a shortest path from this node")
		pathTo    = flag.Int("to", -1, "... to this node")
		edgesFile = flag.String("edges", "", "read edges from file; alias of -load: recognized extensions parse as that format, others as headerless \"u v w\" lists")
		loadFile  = flag.String("load", "", "load a graph file (.gr/.dimacs, .tsv/.txt/.el/.edges, .gob/.snap)")
		saveFile  = flag.String("save", "", "save the input graph to this file before running (format by extension)")
		noRun     = flag.Bool("norun", false, "exit after building/saving the graph without running APSP (format conversion)")
		scenario  = flag.String("scenario", "", "build a named workload scenario, e.g. powerlaw-n128-s7 (overrides -graph)")
		traceFile = flag.String("trace", "", "write a per-round CSV trace (round,delivered) to this file")
		updFile   = flag.String("update", "", "apply an update stream (lines: \"w u v weight\", \"a u v weight\", \"d u v\") after a first run, then re-run warm")
	)
	flag.Parse()

	if *loadFile != "" && *edgesFile != "" {
		log.Fatal("use -load or -edges, not both")
	}
	fromEdges := *edgesFile != ""
	if *loadFile == "" {
		*loadFile = *edgesFile
	}
	var g *apsp.Graph
	var err error
	switch {
	case *scenario != "":
		if *loadFile != "" {
			log.Fatal("use -scenario or -load/-edges, not both")
		}
		// A scenario fully determines its graph; generator flags that it
		// would silently override are conflicts, not no-ops.
		rejectFlagConflicts("-scenario (the scenario name fixes the graph)",
			"directed", "maxweight", "seed", "n", "m", "rows", "cols", "graph")
		sc, perr := apsp.ParseScenario(*scenario)
		if perr != nil {
			log.Fatal(perr)
		}
		// A scenario name pins the generator AND algorithm seed: rand43
		// runs must be regenerable from the name alone, matching the rows
		// cmd/experiment records.
		*seed = sc.Seed
		g, err = sc.Build()
	case *loadFile != "":
		// Same principle for loaded files; -directed is legitimately
		// consumed (headerless reinterpretation) and -seed drives the
		// randomized algorithm profiles, so both stay allowed.
		rejectFlagConflicts("-load/-edges (the file fixes the graph)",
			"maxweight", "n", "m", "rows", "cols", "graph")
		g, err = loadGraphCLI(*loadFile, *directed, fromEdges)
	default:
		g, err = buildGraph(*gtype, *n, *m, *rows, *cols, *directed, *seed, *maxW)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *saveFile != "" {
		if err := apsp.SaveGraph(*saveFile, g); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("graph written to %s\n", *saveFile)
	}
	if *noRun {
		if *updFile != "" {
			log.Fatal("-update conflicts with -norun")
		}
		// Format conversion (`apsp -load big.gr -save big.gob -norun`)
		// must not pay for a full APSP simulation.
		fmt.Printf("graph: n=%d m=%d directed=%v (no run)\n", g.N(), g.M(), g.Directed())
		return
	}

	alg, err := apsp.ParseAlgorithm(*algorithm)
	if err != nil {
		log.Fatal(err)
	}

	opts := apsp.Options{Algorithm: alg, HopParam: *hopParam, Seed: *seed, Parallel: *parallel}
	var closer func() error
	if *traceFile != "" {
		if *updFile != "" {
			// The trace hook spans every run on the session; two runs'
			// rounds interleaved in one CSV is never what the caller wants.
			log.Fatal("-update conflicts with -trace")
		}
		var err error
		opts.OnRound, closer, err = csvTracer(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
	}
	var res *apsp.Result
	if *updFile != "" {
		res, err = runWithUpdates(g, opts, *updFile)
	} else {
		res, err = apsp.Run(g, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	if closer != nil {
		if err := closer(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round trace written to %s\n", *traceFile)
	}

	s := res.Stats
	fmt.Printf("graph: n=%d m=%d directed=%v\n", s.N, s.M, g.Directed())
	fmt.Printf("algorithm: %v (h=%d)\n", alg, s.H)
	fmt.Printf("rounds=%d messages=%d words=%d |Q|=%d max-node-congestion=%d\n",
		s.Rounds, s.Messages, s.Words, s.BlockerSetSize, s.MaxNodeCongestion)
	fmt.Printf("step rounds: csssp=%d blocker=%d in-sssp=%d bcast=%d qsink=%d extend=%d lastedge=%d\n",
		s.Steps.Step1CSSSP, s.Steps.Step2Blocker, s.Steps.Step3InSSSP,
		s.Steps.Step4Bcast, s.Steps.Step6QSink, s.Steps.Step7Extend, s.Steps.Step8LastEdge)
	if s.BottleneckCount > 0 || s.QPrimeSize > 0 {
		fmt.Printf("qsink: |Q'|=%d bottlenecks=%d pipeline-rounds=%d\n", s.QPrimeSize, s.BottleneckCount, s.PipelineRounds)
	}

	if *printMat {
		for x := 0; x < g.N(); x++ {
			var row []string
			for t := 0; t < g.N(); t++ {
				if res.Dist[x][t] >= apsp.Inf {
					row = append(row, "inf")
				} else {
					row = append(row, fmt.Sprint(res.Dist[x][t]))
				}
			}
			fmt.Println(strings.Join(row, " "))
		}
	}
	if *pathFrom >= 0 && *pathTo >= 0 {
		if *pathFrom >= g.N() || *pathTo >= g.N() {
			log.Fatalf("-from/-to out of range: graph has vertices 0..%d", g.N()-1)
		}
		fmt.Printf("path %d -> %d: %v (distance %d)\n",
			*pathFrom, *pathTo, res.Path(*pathFrom, *pathTo), res.Dist[*pathFrom][*pathTo])
	}
}

// runWithUpdates is the -update flow: a first (cold) run on a warm Runner,
// the update stream applied through ApplyUpdates, and a second run that
// re-computes incrementally where the damage report allows. The returned
// Result — what -print/-from/-to render — reflects the updated graph.
func runWithUpdates(g *apsp.Graph, opts apsp.Options, path string) (*apsp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ups, err := apsp.ReadUpdates(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r, err := apsp.NewRunner(g)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := r.Run(opts); err != nil {
		return nil, err
	}
	coldWall := time.Since(start)
	st, err := r.ApplyUpdates(ups)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	start = time.Now()
	res, err := r.Run(opts)
	if err != nil {
		return nil, err
	}
	updWall := time.Since(start)
	fmt.Printf("updates: applied %d from %s: reused=%d recomputed=%d fellback=%v\n",
		len(ups), path, st.Reused, st.Recomputed, st.FellBack)
	speedup := float64(coldWall) / float64(updWall)
	fmt.Printf("updates: cold run %.2fms, post-update run %.2fms (%.1fx)\n",
		float64(coldWall.Microseconds())/1000, float64(updWall.Microseconds())/1000, speedup)
	return res, nil
}

// rejectFlagConflicts aborts when any of the named flags was explicitly
// set: the graph source named in `with` would silently override it.
func rejectFlagConflicts(with string, names ...string) {
	flag.Visit(func(f *flag.Flag) {
		for _, n := range names {
			if f.Name == n {
				log.Fatalf("-%s conflicts with %s", f.Name, with)
			}
		}
	})
}

// csvTracer returns an OnRound hook streaming "round,delivered" lines.
func csvTracer(path string) (func(round, delivered int), func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "round,delivered")
	hook := func(round, delivered int) {
		fmt.Fprintf(w, "%d,%d\n", round, delivered)
	}
	closer := func() error {
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Close()
	}
	return hook, closer, nil
}

func buildGraph(gtype string, n, m, rows, cols int, directed bool, seed, maxW int64) (*apsp.Graph, error) {
	o := apsp.GenOptions{N: n, Directed: directed, Seed: seed, MaxWeight: maxW}
	if m == 0 {
		m = 4 * n
	}
	switch gtype {
	case "random":
		return apsp.RandomGraph(o, m), nil
	case "ring":
		return apsp.RingGraph(o), nil
	case "grid":
		return apsp.GridGraph(rows, cols, o), nil
	case "layered":
		return apsp.LayeredGraph(rows, cols, o), nil
	case "star":
		return apsp.StarGraph(o), nil
	case "zeromix":
		return apsp.ZeroWeightGraph(o, m), nil
	}
	return nil, fmt.Errorf("unknown graph type %q", gtype)
}

// loadGraphCLI loads a graph file for -load/-edges. For -edges
// (fromEdges), unrecognized extensions fall back to the historical
// headerless "u v w" edge-list shape — now strictly validated: exactly
// three fields per line, so annotated lines that the old reader silently
// truncated fail loudly with the offending line number. -load requires a
// recognized extension. The -directed flag reinterprets each line of a
// *headerless* list as a one-way arc (again the historical semantics);
// self-describing files — DIMACS, gob, TSV with a metadata header —
// carry their own directedness and win over the flag.
func loadGraphCLI(path string, directed, fromEdges bool) (*apsp.Graph, error) {
	format, err := apsp.DetectGraphFormat(path)
	if err != nil {
		if !fromEdges {
			return nil, err
		}
		format = apsp.FormatTSV // historical -edges contract
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, meta, err := apsp.ReadGraphWithMeta(f, format)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !directed || g.Directed() {
		return g, nil
	}
	if meta.SelfDescribed {
		log.Printf("%s declares itself undirected; ignoring -directed", path)
		return g, nil
	}
	dg := apsp.NewGraph(g.N(), true)
	var addErr error
	g.Edges(func(u, v int, w int64) {
		if err := dg.AddEdge(u, v, w); err != nil && addErr == nil {
			addErr = err
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	return dg, nil
}
