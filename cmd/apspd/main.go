// Command apspd is the APSP query daemon: it serves shortest-path queries,
// graph updates and blocker-set constructions over HTTP JSON, against a
// content-addressed pool of warm apsp.Runners (internal/serve). Concurrent
// requests per graph are coalesced into single warm-session batches, and
// answers are linearizable per graph: each response names the graph
// version (update count) it reflects.
//
// With -data-dir the daemon is durable: every load and accepted update
// batch is journaled (write-ahead, CRC-framed) before the caller sees
// success, checkpoint snapshots bound replay length, and a restart
// recovers every graph to its last acknowledged version — /readyz returns
// 503 with replay progress until recovery proves the state, then flips to
// 200. DESIGN.md §12 documents the format and the recovery contract.
//
//	apspd -addr :8359 -pool 8 -data-dir /var/lib/apspd -fsync always
//	curl -s localhost:8359/v1/graphs -d '{"scenario":"random-n64-s1"}'
//	curl -s localhost:8359/v1/graphs/<key>/query -d '{"pairs":[[0,5]]}'
//	curl -s localhost:8359/readyz
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"congestapsp/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8359", "listen address")
		pool     = flag.Int("pool", 8, "max warm Runners pooled (LRU beyond)")
		maxQueue = flag.Int("max-queue", 256, "per-graph batch queue depth (shed with 429 beyond)")
		maxBatch = flag.Int("max-batch", 4096, "max pairs/updates per request")
		maxN     = flag.Int("max-n", 4096, "max vertices per loaded graph")
		parallel = flag.Bool("parallel", false, "run pooled computations on the parallel execution mode")
		planner  = flag.Bool("planner", false, "pick seq vs sharded per pipeline stage from the execution planner's cost model (overrides -parallel per stage)")
		maxBytes = flag.Int64("max-bytes", 0, "approximate pool byte budget: evict warm Runners beyond it (0 = entry-count LRU only)")
		dataDir  = flag.String("data-dir", "", "durability root: journal + checkpoint graphs here, recover on boot (empty = in-memory only)")
		fsync    = flag.String("fsync", "always", "journal sync policy: always (sync before ack) or interval (timer-batched)")
		fsyncInt = flag.Duration("fsync-interval", 100*time.Millisecond, "sync period under -fsync interval")
		ckptN    = flag.Int("checkpoint-every", 64, "checkpoint a graph after this many journaled update batches")
	)
	flag.Parse()

	svc := serve.New(serve.Config{
		PoolSize:  *pool,
		MaxQueue:  *maxQueue,
		MaxBatch:  *maxBatch,
		MaxGraphN: *maxN,
		Parallel:  *parallel,
		Planner:   *planner,
		MaxBytes:  *maxBytes,
	})

	var storeOpt serve.StoreOptions
	if *dataDir != "" {
		policy, err := serve.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		storeOpt = serve.StoreOptions{
			Fsync:           policy,
			FsyncInterval:   *fsyncInt,
			CheckpointEvery: *ckptN,
			MaxGraphN:       *maxN,
			// APSPD_CRASH arms the seeded crash-point instrument — used by
			// the crash-recovery test harness, never in normal operation.
			CrashSpec: os.Getenv("APSPD_CRASH"),
		}
		// Gate /v1 before the listener opens: no request can observe
		// pre-recovery state, only 503 + progress.
		svc.BeginRecovery()
	}

	server := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address line is load-bearing: the crash-recovery harness
	// parses it to find a daemon bound to port 0.
	log.Printf("apspd listening on %s (pool %d, queue %d)", ln.Addr(), *pool, *maxQueue)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		server.Shutdown(shutdownCtx)
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	if *dataDir != "" {
		start := time.Now()
		if err := svc.Recover(*dataDir, storeOpt); err != nil {
			log.Fatalf("apspd: recovery failed, refusing to serve: %v", err)
		}
		p := svc.Progress()
		log.Printf("apspd recovered %d graph(s), %d update record(s) replayed in %s; ready",
			p.GraphsDone, p.RecordsReplayed, time.Since(start).Round(time.Millisecond))
	}

	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		log.Printf("apspd: closing store: %v", err)
	}
}
