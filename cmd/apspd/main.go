// Command apspd is the APSP query daemon: it serves shortest-path queries,
// graph updates and blocker-set constructions over HTTP JSON, against a
// content-addressed pool of warm apsp.Runners (internal/serve). Concurrent
// requests per graph are coalesced into single warm-session batches, and
// answers are linearizable per graph: each response names the graph
// version (update count) it reflects.
//
//	apspd -addr :8359 -pool 8
//	curl -s localhost:8359/v1/graphs -d '{"scenario":"random-n64-s1"}'
//	curl -s localhost:8359/v1/graphs/<key>/query -d '{"pairs":[[0,5]]}'
//	curl -s localhost:8359/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"congestapsp/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8359", "listen address")
		pool     = flag.Int("pool", 8, "max warm Runners pooled (LRU beyond)")
		maxQueue = flag.Int("max-queue", 256, "per-graph batch queue depth (shed with 429 beyond)")
		maxBatch = flag.Int("max-batch", 4096, "max pairs/updates per request")
		maxN     = flag.Int("max-n", 4096, "max vertices per loaded graph")
		parallel = flag.Bool("parallel", false, "run pooled computations on the parallel execution mode")
	)
	flag.Parse()

	svc := serve.New(serve.Config{
		PoolSize:  *pool,
		MaxQueue:  *maxQueue,
		MaxBatch:  *maxBatch,
		MaxGraphN: *maxN,
		Parallel:  *parallel,
	})
	server := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		server.Shutdown(shutdownCtx)
	}()

	log.Printf("apspd listening on %s (pool %d, queue %d)", *addr, *pool, *maxQueue)
	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
