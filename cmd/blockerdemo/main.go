// Command blockerdemo runs the blocker-set constructions of Section 3 on a
// chosen workload and prints what each one did: set size, CONGEST rounds,
// selection-step anatomy (single-node rule vs derandomized good sets), and
// a verification that every full-length h-hop tree path is covered.
package main

import (
	"flag"
	"fmt"
	"log"

	"congestapsp/internal/bford"
	"congestapsp/internal/blocker"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
)

func main() {
	var (
		gtype = flag.String("graph", "layered", "random|ring|grid|layered|star|disjoint")
		n     = flag.Int("n", 40, "node count (random/ring/star)")
		k     = flag.Int("k", 12, "paths/layers/rows for structured graphs")
		width = flag.Int("width", 4, "width/cols for structured graphs")
		h     = flag.Int("h", 3, "hop parameter")
		seed  = flag.Int64("seed", 7, "seed")
		delta = flag.Float64("delta", 1.0/12, "Algorithm 2 delta (paper: <= 1/12)")
		eps   = flag.Float64("eps", 1.0/12, "Algorithm 2 epsilon (paper: <= 1/12)")
		full  = flag.Bool("fullspace", false, "exhaustive full-sample-space search")
	)
	flag.Parse()

	g := pick(*gtype, *n, *k, *width, *h, *seed)
	fmt.Printf("workload %q: n=%d m=%d, h=%d\n\n", *gtype, g.N, g.M(), *h)

	build := func() (*csssp.Collection, *congest.Network) {
		nw, err := congest.NewNetwork(g, 1)
		if err != nil {
			log.Fatal(err)
		}
		srcs := make([]int, g.N)
		for i := range srcs {
			srcs[i] = i
		}
		coll, err := csssp.Build(nw, g, srcs, *h, bford.Out)
		if err != nil {
			log.Fatal(err)
		}
		return coll, nw
	}

	coll0, _ := build()
	paths := 0
	for i := range coll0.Sources {
		paths += len(coll0.FullLengthLeaves(i))
	}
	fmt.Printf("full-length h-hop tree paths to cover: %d\n\n", paths)

	fmt.Printf("%-22s %6s %9s %9s %8s %9s %9s %9s\n",
		"mode", "|Q|", "rounds", "steps", "single", "goodsets", "fallbacks", "covered")
	for _, mode := range []blocker.Mode{blocker.Deterministic, blocker.Randomized, blocker.Greedy, blocker.RandomSample} {
		coll, nw := build()
		res, err := blocker.Compute(nw, coll, blocker.Params{
			Mode: mode, Seed: *seed, Delta: *delta, Eps: *eps, UseFullSpace: *full,
		})
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		fresh, _ := build()
		covered := "yes"
		if err := blocker.Verify(fresh, res.InQ); err != nil {
			covered = "NO: " + err.Error()
		}
		st := res.Stats
		fmt.Printf("%-22s %6d %9d %9d %8d %9d %9d %9s\n",
			mode, len(res.Q), st.Rounds, st.SelectionSteps, st.SingleSelections,
			st.GoodSetSelections, st.FallbackSteps, covered)
	}
}

func pick(gtype string, n, k, width, h int, seed int64) *graph.Graph {
	cfg := graph.GenConfig{N: n, Seed: seed, MaxWeight: 20}
	switch gtype {
	case "random":
		return graph.RandomConnected(cfg, 4*n)
	case "ring":
		return graph.Ring(cfg)
	case "grid":
		return graph.Grid(k, width, cfg)
	case "layered":
		return graph.Layered(k, width, cfg)
	case "star":
		return graph.Star(cfg)
	case "disjoint":
		return graph.DisjointPaths(k, h, 1000, cfg)
	}
	log.Fatalf("unknown graph type %q", gtype)
	return nil
}
