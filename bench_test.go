// Package bench is the benchmark harness required by DESIGN.md: one
// testing.B benchmark per experiment table (E1-E8, see EXPERIMENTS.md),
// each reporting the simulated CONGEST round counts as custom metrics
// ("rounds", "qsize", ...) alongside wall-clock time. The richer sweeps
// with markdown output live in cmd/congestbench; these benches pin the same
// quantities into `go test -bench`.
package bench

import (
	"fmt"
	"math"
	"sort"
	"syscall"
	"testing"

	"congestapsp/internal/bford"
	"congestapsp/internal/blocker"
	"congestapsp/internal/congest"
	"congestapsp/internal/core"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
	"congestapsp/internal/qsink"
	"congestapsp/internal/unweighted"
	"congestapsp/pkg/apsp"
)

var benchSizes = []int{16, 24, 32}

func benchGraph(n int) *graph.Graph {
	return graph.RandomConnected(graph.GenConfig{N: n, Directed: true, Seed: int64(n), MaxWeight: 50}, 4*n)
}

func hopParam(n int) int { return int(math.Ceil(math.Pow(float64(n), 1.0/3))) }

func buildColl(b *testing.B, g *graph.Graph, h int) (*csssp.Collection, *congest.Network) {
	b.Helper()
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	srcs := make([]int, g.N)
	for i := range srcs {
		srcs[i] = i
	}
	coll, err := csssp.Build(nw, g, srcs, h, bford.Out)
	if err != nil {
		b.Fatal(err)
	}
	return coll, nw
}

// BenchmarkTable1RoundComparison reproduces Table 1 empirically: full APSP
// round counts for the paper's algorithm and the baselines (experiment E1).
func BenchmarkTable1RoundComparison(b *testing.B) {
	variants := []struct {
		name string
		v    core.Variant
	}{
		{"det43-paper", core.Det43},
		{"det32-podc18", core.Det32},
		{"rand43", core.Rand43},
		{"broadcast-step6", core.BroadcastStep6},
	}
	for _, n := range benchSizes {
		g := benchGraph(n)
		for _, vt := range variants {
			b.Run(fmt.Sprintf("%s/n=%d", vt.name, n), func(b *testing.B) {
				var rounds, msgs float64
				for i := 0; i < b.N; i++ {
					res, err := core.Run(g, core.Options{Variant: vt.v, SkipLastEdges: true})
					if err != nil {
						b.Fatal(err)
					}
					rounds = float64(res.Stats.Rounds)
					msgs = float64(res.Stats.Messages)
				}
				b.ReportMetric(rounds, "rounds")
				b.ReportMetric(msgs, "messages")
			})
		}
	}
}

// BenchmarkStepDecomposition reports the per-step rounds of the paper's
// algorithm (E1b): Steps 1 and 7 carry the clean n^(4/3) exponent.
func BenchmarkStepDecomposition(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var st core.StepRounds
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.Options{Variant: core.Det43, SkipLastEdges: true})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats.Steps
			}
			b.ReportMetric(float64(st.Step1CSSSP), "step1-rounds")
			b.ReportMetric(float64(st.Step2Blocker), "step2-rounds")
			b.ReportMetric(float64(st.Step6QSink), "step6-rounds")
			b.ReportMetric(float64(st.Step7Extend), "step7-rounds")
		})
	}
}

// BenchmarkBlockerSetSize is experiment E2 (Lemma 3.10): |Q| against the
// n*ln(n)/h bound for each construction.
func BenchmarkBlockerSetSize(b *testing.B) {
	modes := []struct {
		name string
		mode blocker.Mode
	}{
		{"deterministic", blocker.Deterministic},
		{"greedy", blocker.Greedy},
		{"sampled", blocker.RandomSample},
	}
	for _, n := range benchSizes {
		g := benchGraph(n)
		h := hopParam(n)
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/n=%d", m.name, n), func(b *testing.B) {
				var size, rounds float64
				for i := 0; i < b.N; i++ {
					coll, nw := buildColl(b, g, h)
					res, err := blocker.Compute(nw, coll, blocker.Params{Mode: m.mode, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
					size = float64(len(res.Q))
					rounds = float64(res.Stats.Rounds)
				}
				b.ReportMetric(size, "qsize")
				b.ReportMetric(rounds, "rounds")
				b.ReportMetric(float64(n)*math.Log(float64(n))/float64(h), "bound")
			})
		}
	}
}

// BenchmarkBlockerRounds is experiment E4 (Corollary 3.13): construction
// rounds of the derandomized set cover vs the greedy baseline, whose n*|Q|
// cleanup term the paper removes.
func BenchmarkBlockerRounds(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		h := hopParam(n)
		for _, m := range []struct {
			name string
			mode blocker.Mode
		}{{"setcover", blocker.Deterministic}, {"greedy", blocker.Greedy}} {
			b.Run(fmt.Sprintf("%s/n=%d", m.name, n), func(b *testing.B) {
				var rounds, steps float64
				for i := 0; i < b.N; i++ {
					coll, nw := buildColl(b, g, h)
					res, err := blocker.Compute(nw, coll, blocker.Params{Mode: m.mode})
					if err != nil {
						b.Fatal(err)
					}
					rounds = float64(res.Stats.Rounds)
					steps = float64(res.Stats.SelectionSteps)
				}
				b.ReportMetric(rounds, "rounds")
				b.ReportMetric(steps, "selection-steps")
			})
		}
	}
}

// BenchmarkQSinkRounds is experiment E5 (Lemmas 4.1/4.5): the reversed
// q-sink delivery under each scheduler, including the trivial broadcast
// baseline whose O~(n^(5/3)) cost Section 4 beats.
func BenchmarkQSinkRounds(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		var Q []int
		for v := 0; v < n; v += 3 {
			Q = append(Q, v)
		}
		delta := graph.BlockerDelta(g, Q)
		for _, sch := range []qsink.Scheduler{qsink.RoundRobin, qsink.Frames, qsink.BroadcastAll} {
			b.Run(fmt.Sprintf("%v/n=%d", sch, n), func(b *testing.B) {
				var rounds, msgs float64
				for i := 0; i < b.N; i++ {
					nw, err := congest.NewNetwork(g, 1)
					if err != nil {
						b.Fatal(err)
					}
					res, err := qsink.Run(nw, g, Q, delta, qsink.Params{Scheduler: sch})
					if err != nil {
						b.Fatal(err)
					}
					rounds = float64(res.Stats.RoundsTotal)
					msgs = float64(res.Stats.PipelineMessages)
				}
				b.ReportMetric(rounds, "rounds")
				b.ReportMetric(msgs, "pipeline-msgs")
			})
		}
	}
}

// BenchmarkBottleneck is experiment E6 (Lemmas A.15-A.17): bottleneck-node
// elimination on the hub-heavy star workload.
func BenchmarkBottleneck(b *testing.B) {
	for _, n := range benchSizes {
		g := graph.Star(graph.GenConfig{N: n, Seed: int64(n), MaxWeight: 20})
		var Q []int
		for v := 0; v < n; v += 4 {
			Q = append(Q, v)
		}
		delta := graph.BlockerDelta(g, Q)
		b.Run(fmt.Sprintf("star/n=%d", n), func(b *testing.B) {
			var bc, before, after float64
			for i := 0; i < b.N; i++ {
				nw, err := congest.NewNetwork(g, 1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := qsink.Run(nw, g, Q, delta, qsink.Params{Scheduler: qsink.RoundRobin, CongestionMult: 0.05})
				if err != nil {
					b.Fatal(err)
				}
				bc = float64(res.Stats.BottleneckCount)
				before = float64(res.Stats.MaxLoadBefore)
				after = float64(res.Stats.MaxLoadAfter)
			}
			b.ReportMetric(bc, "bottlenecks")
			b.ReportMetric(before, "load-before")
			b.ReportMetric(after, "load-after")
		})
	}
}

// BenchmarkGoodSetDensity is experiment E7 (Lemma 3.8): the fraction of
// pairwise-independent sample points that form good sets, on the
// disjoint-paths workload that forces the good-set branch.
func BenchmarkGoodSetDensity(b *testing.B) {
	for _, k := range []int{16, 20} {
		g := graph.DisjointPaths(k, 3, 1000, graph.GenConfig{Seed: int64(k), MaxWeight: 4})
		b.Run(fmt.Sprintf("paths=%d", k), func(b *testing.B) {
			var frac, goodsets float64
			for i := 0; i < b.N; i++ {
				coll, nw := buildColl(b, g, 3)
				res, err := blocker.Compute(nw, coll, blocker.Params{
					Mode: blocker.Deterministic, Delta: 0.5, UseFullSpace: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.PointsScanned > 0 {
					frac = float64(res.Stats.GoodPoints) / float64(res.Stats.PointsScanned)
				}
				goodsets = float64(res.Stats.GoodSetSelections)
			}
			b.ReportMetric(frac, "good-fraction")
			b.ReportMetric(goodsets, "goodset-selections")
			b.ReportMetric(0.125, "lemma38-floor")
		})
	}
}

// BenchmarkFrameShrinkage is experiment E8 (Lemma 4.8): stages used by the
// frame scheduler and the shrinkage of max |Q_{v,i}|.
func BenchmarkFrameShrinkage(b *testing.B) {
	for _, n := range benchSizes {
		g := benchGraph(n)
		var Q []int
		for v := 0; v < n; v += 3 {
			Q = append(Q, v)
		}
		delta := graph.BlockerDelta(g, Q)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var stages, first, last float64
			for i := 0; i < b.N; i++ {
				nw, err := congest.NewNetwork(g, 1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := qsink.Run(nw, g, Q, delta, qsink.Params{Scheduler: qsink.Frames})
				if err != nil {
					b.Fatal(err)
				}
				stages = float64(res.Stats.FrameStages)
				if m := res.Stats.FrameQviMax; len(m) > 0 {
					first, last = float64(m[0]), float64(m[len(m)-1])
				}
			}
			b.ReportMetric(stages, "stages")
			b.ReportMetric(first, "qvi-stage0")
			b.ReportMetric(last, "qvi-final")
		})
	}
}

// --- Microbenchmarks of the substrates (wall-clock oriented) ---

// BenchmarkSimulatorRound measures the raw cost of one simulated CONGEST
// round across all nodes (idle protocol).
func BenchmarkSimulatorRound(b *testing.B) {
	g := benchGraph(64)
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	idle := congest.ProtoFunc(func(v, round int, in []congest.Message, send func(congest.Message)) bool {
		return false
	})
	b.ResetTimer()
	if _, err := nw.Run(idle, b.N); err == nil {
		b.Fatal("idle protocol unexpectedly terminated")
	}
}

// BenchmarkDistributedBellmanFord measures one h-hop SSSP on the simulator.
func BenchmarkDistributedBellmanFord(b *testing.B) {
	for _, n := range []int{32, 64, 512} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nw, err := congest.NewNetwork(g, 1)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := bford.Run(nw, g, i%n, hopParam(n), bford.Out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFloydWarshallOracle calibrates the sequential oracle used in
// verification.
func BenchmarkFloydWarshallOracle(b *testing.B) {
	g := benchGraph(64)
	for i := 0; i < b.N; i++ {
		graph.FloydWarshall(g)
	}
}

// BenchmarkUnweightedAPSP is experiment E12: the O(n)-round unweighted
// baseline (pipelined BFS) that matches the Omega(n) lower bound of [6].
func BenchmarkUnweightedAPSP(b *testing.B) {
	for _, n := range []int{32, 64} {
		g := benchGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rounds float64
			for i := 0; i < b.N; i++ {
				nw, err := congest.NewNetwork(g, 1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := unweighted.Run(nw, g)
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(res.Rounds)
			}
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(rounds/float64(n), "rounds-per-n")
		})
	}
}

// BenchmarkHSweep is experiment E10: the Theorem 1.1 balance between the
// O(n*h) steps and the blocker/q-sink machinery.
func BenchmarkHSweep(b *testing.B) {
	n := 32
	g := benchGraph(n)
	for _, h := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			var rounds, qsize float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.Options{Variant: core.Det43, H: h, SkipLastEdges: true})
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(res.Stats.Rounds)
				qsize = float64(res.Stats.QSize)
			}
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(qsize, "qsize")
		})
	}
}

// BenchmarkBandwidthSweep is experiment E11: latency-bound vs
// bandwidth-bound steps.
func BenchmarkBandwidthSweep(b *testing.B) {
	n := 32
	g := benchGraph(n)
	for _, bw := range []int{1, 4} {
		b.Run(fmt.Sprintf("B=%d", bw), func(b *testing.B) {
			var rounds float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.Options{Variant: core.Det43, Bandwidth: bw, SkipLastEdges: true})
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(res.Stats.Rounds)
			}
			b.ReportMetric(rounds, "rounds")
		})
	}
}

// BenchmarkAPSPPipeline measures the full apsp.Run wall clock (and
// allocations) at production-leaning sizes, sequential vs source-sharded —
// the headline number of the sharded execution layer. scripts/bench.sh
// turns these into BENCH_apsp.json so the perf trajectory covers the whole
// pipeline, not just the engine. Every iteration is a cold start (network
// build + arena growth); BenchmarkAPSPPipelineWarm measures the same
// configuration on a warm apsp.Runner for the cold-vs-warm comparison.
func BenchmarkAPSPPipeline(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		g := apsp.RandomGraph(apsp.GenOptions{N: n, Directed: true, Seed: int64(n), MaxWeight: 50}, 4*n)
		for _, m := range []struct {
			name     string
			parallel bool
		}{{"seq", false}, {"sharded", true}} {
			b.Run(fmt.Sprintf("%s/n=%d", m.name, n), func(b *testing.B) {
				b.ReportAllocs()
				var rounds float64
				for i := 0; i < b.N; i++ {
					res, err := apsp.Run(g, apsp.Options{SkipLastHops: true, Parallel: m.parallel})
					if err != nil {
						b.Fatal(err)
					}
					rounds = float64(res.Stats.Rounds)
				}
				b.ReportMetric(rounds, "rounds")
			})
		}
	}
}

// BenchmarkAPSPUpdate measures the dynamic-graph steady state: a warm
// Runner absorbing one single-edge weight update per iteration through
// ApplyUpdates and re-converging with a damage-scoped incremental run.
// Each iteration is ApplyUpdates + Run, so ns/op is the full
// update-to-answer latency; updates/sec and the speedup over the cold
// BenchmarkAPSPPipeline rows at the same n are derived by scripts/bench.sh
// into BENCH_update.json. The toggled edge is chosen (outside the timer) so
// the damage stays narrow enough for the incremental path — the steady
// state this benchmark exists to measure.
func BenchmarkAPSPUpdate(b *testing.B) {
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := apsp.RandomGraph(apsp.GenOptions{N: n, Directed: true, Seed: int64(n), MaxWeight: 50}, 4*n)
			opt := apsp.Options{SkipLastHops: true}
			r, edge, err := updatableRunner(g, opt)
			if err != nil {
				b.Fatal(err)
			}
			var st apsp.UpdateStats
			var rounds float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := edge.W + int64(1+i%2) // toggle w+1 / w+2: never a no-op
				st, err = r.ApplyUpdates([]apsp.EdgeUpdate{{Op: apsp.SetWeight, U: edge.U, V: edge.V, W: w}})
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run(opt)
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(res.Stats.Rounds)
			}
			b.StopTimer()
			if st.FellBack {
				b.Fatal("update benchmark fell out of the incremental path")
			}
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(float64(st.Recomputed), "recomputed")
			b.ReportMetric(float64(st.Reused), "reused")
		})
	}
}

// updatableRunner warms one Runner on g and deterministically picks an
// edge whose weight toggle keeps the session on the incremental path
// (narrow damage, no adaptive fallback) in both toggle directions. The
// runner is reused across candidates — a fallback verdict just costs the
// cold re-arm run the fallback implies anyway.
func updatableRunner(g *apsp.Graph, opt apsp.Options) (*apsp.Runner, apsp.EdgeUpdate, error) {
	var edges []apsp.EdgeUpdate
	g.Edges(func(u, v int, w int64) {
		edges = append(edges, apsp.EdgeUpdate{U: u, V: v, W: w})
	})
	r, err := apsp.NewRunner(g)
	if err != nil {
		return nil, apsp.EdgeUpdate{}, err
	}
	cold, err := r.Run(opt)
	if err != nil {
		return nil, apsp.EdgeUpdate{}, err
	}
	coldMsgs := cold.Stats.Messages
	// Pre-rank candidates by full-metric slack: an edge tight in some
	// shortest path (slack <= 0) almost surely changes an h-hop tree when
	// toggled, cascading into the expensive stages — skip those outright.
	// Among the rest, the near-tie edges (small positive slack) are the
	// interesting ones: flagged by the conservative damage test, refuted on
	// re-run. Ranking keeps the expensive run-based verification below to a
	// handful of candidates.
	type cand struct {
		e     apsp.EdgeUpdate
		slack int64
	}
	var cands []cand
	for _, e := range edges {
		slack := int64(1 << 62)
		for x := 0; x < g.N(); x++ {
			du, dv := cold.Dist[x][e.U], cold.Dist[x][e.V]
			if du >= apsp.Inf || dv >= apsp.Inf {
				continue
			}
			if s := du + e.W - dv; s < slack {
				slack = s
			}
		}
		if slack > 0 {
			cands = append(cands, cand{e, slack})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].slack < cands[j].slack })
	set := func(u, v int, w int64) (apsp.UpdateStats, *apsp.Result, error) {
		st, err := r.ApplyUpdates([]apsp.EdgeUpdate{{Op: apsp.SetWeight, U: u, V: v, W: w}})
		if err != nil {
			return st, nil, err
		}
		res, err := r.Run(opt)
		return st, res, err
	}
	for _, c := range cands {
		e := c.e
		ok := true
		for _, w := range []int64{e.W + 1, e.W + 2} {
			st, res, err := set(e.U, e.V, w)
			if err != nil {
				return nil, apsp.EdgeUpdate{}, err
			}
			// Suitable means: damage was flagged (the refresh machinery is
			// exercised, not a provable no-op), no adaptive fallback, and the
			// reused stages actually dominated — a cascade back into the
			// expensive stages shows up as a near-cold message count.
			if st.FellBack || st.Recomputed == 0 || res.Stats.Messages*4 > coldMsgs {
				ok = false
				break
			}
		}
		// Restore the original weight (and re-arm the snapshot) so either
		// the timed loop or the next candidate starts clean.
		if _, _, err := set(e.U, e.V, e.W); err != nil {
			return nil, apsp.EdgeUpdate{}, err
		}
		if ok {
			return r, e, nil
		}
	}
	return nil, apsp.EdgeUpdate{}, fmt.Errorf("no edge keeps the incremental path at n=%d", g.N())
}

// BenchmarkAPSPPipelineWarm is the warm-session counterpart of
// BenchmarkAPSPPipeline: the Runner (network, engine arenas, scratch,
// worker fleet) is built and warmed outside the timer, so the measured
// iterations are pure re-runs — the steady state a session serving
// repeated traffic on one graph lives in. Compare against the cold
// BenchmarkAPSPPipeline rows at the same n for the cold-start cost. The
// mode axis covers the planner: the discarded warm-up run doubles as its
// calibration run, so the measured planner iterations execute the
// cost-model plan — on a multi-core host the acceptance bar is planner ≤
// best of {seq, sharded} at the same n.
func BenchmarkAPSPPipelineWarm(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		g := apsp.RandomGraph(apsp.GenOptions{N: n, Directed: true, Seed: int64(n), MaxWeight: 50}, 4*n)
		for _, m := range []struct {
			name string
			opt  apsp.Options
		}{
			{"seq", apsp.Options{SkipLastHops: true}},
			{"sharded", apsp.Options{SkipLastHops: true, Parallel: true}},
			{"planner", apsp.Options{SkipLastHops: true, Planner: true}},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", m.name, n), func(b *testing.B) {
				r, err := apsp.NewRunner(g)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.Run(m.opt); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var rounds float64
				for i := 0; i < b.N; i++ {
					res, err := r.Run(m.opt)
					if err != nil {
						b.Fatal(err)
					}
					rounds = float64(res.Stats.Rounds)
				}
				b.ReportMetric(rounds, "rounds")
			})
		}
	}
}

// BenchmarkAPSPPipelineTiled is the budgeted counterpart of the warm seq
// rows: the same graph computed with a MemoryBudget at a quarter of the
// flat distance matrix's footprint, forcing the tiled spillable backend
// (LRU-resident row tiles, CRC-framed spill file). Alongside wall and
// allocs it reports the process peak RSS — the quantity the budget caps —
// so BENCH_apsp.json records what tiling costs and what it saves.
func BenchmarkAPSPPipelineTiled(b *testing.B) {
	for _, n := range []int{256, 512} {
		g := apsp.RandomGraph(apsp.GenOptions{N: n, Directed: true, Seed: int64(n), MaxWeight: 50}, 4*n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r, err := apsp.NewRunner(g)
			if err != nil {
				b.Fatal(err)
			}
			opt := apsp.Options{
				SkipLastHops: true,
				MemoryBudget: int64(n) * int64(n) * 8 / 4,
				SpillDir:     b.TempDir(),
			}
			warm, err := r.Run(opt)
			if err != nil {
				b.Fatal(err)
			}
			if !warm.Budgeted() {
				b.Fatal("budget did not select the tiled backend")
			}
			warm.Release()
			b.ReportAllocs()
			b.ResetTimer()
			var rounds float64
			for i := 0; i < b.N; i++ {
				res, err := r.Run(opt)
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(res.Stats.Rounds)
				if err := res.Release(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(rounds, "rounds")
			var ru syscall.Rusage
			if syscall.Getrusage(syscall.RUSAGE_SELF, &ru) == nil {
				b.ReportMetric(float64(ru.Maxrss), "peak-rss-kb")
			}
		})
	}
}
