// Centrality: betweenness centrality on top of distributed APSP — the
// application that motivates round-efficient APSP in the paper's reference
// [12] (Hoang et al., PPoPP 2019). The distributed algorithm computes the
// exact distance matrix; Brandes-style shortest-path counting over the
// matrix then yields exact betweenness scores. Positive edge weights keep
// path counts finite.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"congestapsp/pkg/apsp"
)

func main() {
	const n = 30
	g := apsp.NewGraph(n, false)
	rng := rand.New(rand.NewSource(99))
	// Connected random graph with strictly positive weights.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		mustAdd(g, perm[rng.Intn(i)], perm[i], 1+rng.Int63n(9))
	}
	for g.M() < 3*n {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			mustAdd(g, u, v, 1+rng.Int63n(9))
		}
	}

	res, err := apsp.Run(g, apsp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d; APSP in %d CONGEST rounds\n\n", g.N(), g.M(), res.Stats.Rounds)

	bc := betweenness(g, res.Dist)
	type scored struct {
		v  int
		bc float64
	}
	ranked := make([]scored, n)
	for v := 0; v < n; v++ {
		ranked[v] = scored{v, bc[v]}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].bc > ranked[j].bc })

	fmt.Println("top-8 nodes by betweenness centrality:")
	fmt.Printf("%6s %12s\n", "node", "betweenness")
	for _, s := range ranked[:8] {
		fmt.Printf("%6d %12.2f\n", s.v, s.bc)
	}
}

func mustAdd(g *apsp.Graph, u, v int, w int64) {
	if err := g.AddEdge(u, v, w); err != nil {
		log.Fatal(err)
	}
}

// arc is an out-edge used by the centrality accumulation.
type arc struct {
	to int
	w  int64
}

// betweenness computes exact betweenness centrality from the distance
// matrix: per source, count shortest paths in distance order, then
// accumulate pair dependencies (Brandes 2001 over the shortest-path DAG).
func betweenness(g *apsp.Graph, dist [][]int64) []float64 {
	n := g.N()
	adj := make([][]arc, n) // out-arcs, parallel edges kept
	g.Edges(func(u, v int, w int64) {
		adj[u] = append(adj[u], arc{v, w})
		if !g.Directed() {
			adj[v] = append(adj[v], arc{u, w})
		}
	})
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		// Order nodes by distance from s; zero-distance plateau cannot
		// occur because weights are positive.
		order := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if dist[s][v] < apsp.Inf {
				order = append(order, v)
			}
		}
		sort.Slice(order, func(i, j int) bool { return dist[s][order[i]] < dist[s][order[j]] })
		sigma := make([]float64, n)
		sigma[s] = 1
		for _, u := range order {
			if u == s {
				continue
			}
			// sum sigma over shortest-path predecessors
			for v := 0; v < n; v++ {
				if dist[s][v] >= apsp.Inf {
					continue
				}
				for _, a := range arcsFrom(adj, v, u) {
					if dist[s][v]+a == dist[s][u] {
						sigma[u] += sigma[v]
						break
					}
				}
			}
		}
		// dependency accumulation in reverse distance order
		delta := make([]float64, n)
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			if w == s || sigma[w] == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || dist[s][v] >= apsp.Inf || sigma[v] == 0 {
					continue
				}
				for _, a := range arcsFrom(adj, v, w) {
					if dist[s][v]+a == dist[s][w] {
						delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
						break
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			if v != s {
				bc[v] += delta[v]
			}
		}
	}
	if !g.Directed() {
		for v := range bc {
			bc[v] /= 2
		}
	}
	return bc
}

// arcsFrom lists the weights of arcs v->u (usually zero or one entry).
func arcsFrom(adj [][]arc, v, u int) []int64 {
	var out []int64
	for _, a := range adj[v] {
		if a.to == u {
			out = append(out, a.w)
		}
	}
	return out
}
