// Quickstart: build a small weighted graph, run the paper's deterministic
// O~(n^(4/3)) APSP algorithm on the CONGEST simulator through a warm
// apsp.Runner session, and print distances, a reconstructed path, the
// distributed cost accounting, and a warm re-run with a baseline profile.
package main

import (
	"fmt"
	"log"

	"congestapsp/pkg/apsp"
)

func main() {
	// A small directed road sketch: 6 intersections, weighted one-way
	// streets (weights = travel seconds).
	g := apsp.NewGraph(6, true)
	type edge struct {
		u, v int
		w    int64
	}
	for _, e := range []edge{
		{0, 1, 4}, {1, 2, 3}, {2, 3, 2}, {3, 4, 5}, {4, 5, 1},
		{5, 0, 7}, {0, 2, 9}, {1, 4, 12}, {2, 5, 11}, {3, 0, 6},
	} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			log.Fatal(err)
		}
	}

	// A Runner pins a warm session to the graph: the simulation network is
	// built once here and reused by every Run below.
	r, err := apsp.NewRunner(g)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Run(apsp.Options{}) // default: Deterministic43
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("all-pairs shortest path distances:")
	for x := 0; x < g.N(); x++ {
		for t := 0; t < g.N(); t++ {
			if res.Dist[x][t] >= apsp.Inf {
				fmt.Printf("  %4s", "inf")
			} else {
				fmt.Printf("  %4d", res.Dist[x][t])
			}
		}
		fmt.Println()
	}

	fmt.Printf("\nshortest 0 -> 4 path: %v (distance %d)\n", res.Path(0, 4), res.Dist[0][4])

	s := res.Stats
	fmt.Printf("\nCONGEST cost: %d rounds, %d messages, blocker set size %d (h = %d)\n",
		s.Rounds, s.Messages, s.BlockerSetSize, s.H)
	fmt.Printf("per-step rounds: CSSSP=%d blocker=%d inSSSP=%d bcast=%d qsink=%d extend=%d lastedge=%d\n",
		s.Steps.Step1CSSSP, s.Steps.Step2Blocker, s.Steps.Step3InSSSP,
		s.Steps.Step4Bcast, s.Steps.Step6QSink, s.Steps.Step7Extend, s.Steps.Step8LastEdge)

	// Warm re-run on the same Runner with the PODC'18 baseline profile:
	// same exact distances, different round complexity, no network rebuild.
	base, err := r.Run(apsp.Options{Algorithm: apsp.Deterministic32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwarm re-run, O~(n^(3/2)) baseline: %d rounds (same distances: %v)\n",
		base.Stats.Rounds, base.Dist[0][4] == res.Dist[0][4])
}
