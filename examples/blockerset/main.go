// Blockerset: the paper's first technical contribution in isolation. A
// blocker set must hit every h-hop shortest path of the h-hop tree
// collection; this example builds one with each of the four constructions
// (the paper's derandomized set cover, its randomized form, the PODC'18
// greedy baseline, and classic random sampling) on a deep layered graph and
// compares sizes, selection behavior, and CONGEST round costs.
package main

import (
	"fmt"
	"log"

	"congestapsp/pkg/apsp"
)

func main() {
	// Layered graphs maximize the number of full-length h-hop paths, which
	// is exactly what a blocker set must cover.
	g := apsp.LayeredGraph(8, 5, apsp.GenOptions{Seed: 7, MaxWeight: 20})
	h := 4
	fmt.Printf("layered graph: n=%d m=%d, hop parameter h=%d\n\n", g.N(), g.M(), h)

	modes := []struct {
		name string
		mode apsp.BlockerMode
	}{
		{"deterministic (Alg 2', paper)", apsp.BlockerDeterministic},
		{"randomized (Alg 2)", apsp.BlockerRandomized},
		{"greedy (PODC'18 [2])", apsp.BlockerGreedy},
		{"random sampling [13]", apsp.BlockerSampled},
	}
	fmt.Printf("%-32s %6s %10s %10s %10s\n", "construction", "|Q|", "rounds", "selections", "goodsets")
	for _, m := range modes {
		// Parallel: the underlying per-source SSSPs are source-sharded
		// across a worker pool; sizes and round counts are bit-identical to
		// a sequential run.
		q, stats, err := apsp.BlockerSet(g, apsp.BlockerOptions{HopParam: h, Mode: m.mode, Seed: 42, Parallel: true})
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		fmt.Printf("%-32s %6d %10d %10d %10d\n", m.name, len(q), stats.Rounds, stats.SelectionSteps, stats.GoodSets)
	}

	fmt.Println("\nnote: the deterministic and randomized set-cover constructions avoid")
	fmt.Println("the n*|Q| cleanup term of the greedy baseline (Corollary 3.13), which")
	fmt.Println("is what drops the overall APSP bound from O~(n^(3/2)) to O~(n^(4/3)).")
}
