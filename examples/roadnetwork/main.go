// Roadnetwork: the paper's motivating distributed-routing scenario on a
// grid "city": every intersection (node) ends up knowing its distance from
// every other intersection, computed purely by rounds of message passing —
// no node ever sees the whole map. The example compares the paper's
// deterministic pipeline against the O~(n^(3/2)) deterministic baseline and
// prints the round savings.
package main

import (
	"fmt"
	"log"

	"congestapsp/pkg/apsp"
)

func main() {
	const rows, cols = 6, 8
	g := apsp.GridGraph(rows, cols, apsp.GenOptions{Seed: 2024, MaxWeight: 30})
	n := g.N()
	fmt.Printf("city grid: %dx%d intersections (n=%d, m=%d edges)\n\n", rows, cols, n, g.M())

	fast, err := apsp.Run(g, apsp.Options{Algorithm: apsp.Deterministic43})
	if err != nil {
		log.Fatal(err)
	}
	base, err := apsp.Run(g, apsp.Options{Algorithm: apsp.Deterministic32})
	if err != nil {
		log.Fatal(err)
	}

	// Sanity: the two deterministic algorithms must agree everywhere.
	for x := 0; x < n; x++ {
		for t := 0; t < n; t++ {
			if fast.Dist[x][t] != base.Dist[x][t] {
				log.Fatalf("algorithms disagree at (%d,%d)", x, t)
			}
		}
	}

	corner := func(r, c int) int { return r*cols + c }
	a, b := corner(0, 0), corner(rows-1, cols-1)
	fmt.Printf("corner-to-corner route %d -> %d: distance %d\n", a, b, fast.Dist[a][b])
	fmt.Printf("route: %v\n\n", fast.Path(a, b))

	fmt.Printf("%-28s %10s %12s %8s\n", "algorithm", "rounds", "messages", "|Q|")
	fmt.Printf("%-28s %10d %12d %8d\n", "deterministic n^(4/3) (paper)", fast.Stats.Rounds, fast.Stats.Messages, fast.Stats.BlockerSetSize)
	fmt.Printf("%-28s %10d %12d %8d\n", "deterministic n^(3/2) [2]", base.Stats.Rounds, base.Stats.Messages, base.Stats.BlockerSetSize)
	ratio := float64(base.Stats.Rounds) / float64(fast.Stats.Rounds)
	fmt.Printf("\nround ratio baseline/paper: %.2fx\n", ratio)
	if ratio < 1 {
		fmt.Println("(at this small n the baseline's lighter polylog constants win;")
		fmt.Println(" the paper's asymptotic advantage shows in the component scaling —")
		fmt.Println(" see EXPERIMENTS.md)")
	}
}
