// Example workloads tours the workload layer: build a named scenario from
// the corpus, snapshot it to disk in all three formats, reload it, and
// compare the APSP cost of one scenario per family at a fixed size — the
// miniature version of what cmd/experiment automates.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"congestapsp/pkg/apsp"
)

func main() {
	// A scenario name is a complete, reproducible workload description.
	sc, err := apsp.ParseScenario("powerlaw-n64-s7")
	if err != nil {
		log.Fatal(err)
	}
	g, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: n=%d m=%d (%s)\n", sc.Name(), g.N(), g.M(), apsp.FamilyDescription(sc.Family))

	// Round-trip the graph through every on-disk format.
	dir, err := os.MkdirTemp("", "workloads")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for _, name := range []string{"graph.gr", "graph.tsv", "graph.gob"} {
		path := filepath.Join(dir, name)
		if err := apsp.SaveGraph(path, g); err != nil {
			log.Fatal(err)
		}
		loaded, err := apsp.LoadGraph(path)
		if err != nil {
			log.Fatal(err)
		}
		info, _ := os.Stat(path)
		fmt.Printf("  %-10s %6d bytes  reload: n=%d m=%d\n", name, info.Size(), loaded.N(), loaded.M())
	}

	// One corpus row per family: how topology shapes the round count.
	fmt.Printf("\n%-20s %8s %8s %8s %6s\n", "scenario", "rounds", "messages", "words", "|Q|")
	for _, family := range apsp.Families() {
		fsc := apsp.Scenario{Family: family, N: 64, Seed: 7}
		fg, err := fsc.Build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := apsp.Run(fg, apsp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("%-20s %8d %8d %8d %6d\n", fsc.Name(), s.Rounds, s.Messages, s.Words, s.BlockerSetSize)
	}
}
