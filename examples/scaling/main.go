// Scaling: an empirical look at Theorem 1.1. Runs the paper's algorithm
// and the baselines over a sweep of graph sizes and prints measured CONGEST
// rounds next to the theoretical growth exponents (4/3 vs 3/2 vs 5/3),
// reproducing the shape of Table 1 of the paper.
package main

import (
	"fmt"
	"log"
	"math"

	"congestapsp/pkg/apsp"
)

func main() {
	sizes := []int{16, 24, 32, 48, 64}
	type row struct {
		n                  int
		det43, det32, bc56 int
	}
	var rows []row
	for _, n := range sizes {
		g := apsp.RandomGraph(apsp.GenOptions{N: n, Seed: int64(n), MaxWeight: 50}, 4*n)
		// Parallel: the per-source sub-runs shard across a worker pool;
		// every reported round count is bit-identical to a sequential run.
		r43, err := apsp.Run(g, apsp.Options{Algorithm: apsp.Deterministic43, SkipLastHops: true, Parallel: true})
		if err != nil {
			log.Fatal(err)
		}
		r32, err := apsp.Run(g, apsp.Options{Algorithm: apsp.Deterministic32, SkipLastHops: true, Parallel: true})
		if err != nil {
			log.Fatal(err)
		}
		r56, err := apsp.Run(g, apsp.Options{Algorithm: apsp.BroadcastStep6, SkipLastHops: true, Parallel: true})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{n, r43.Stats.Rounds, r32.Stats.Rounds, r56.Stats.Rounds})
	}

	fmt.Printf("%6s %14s %14s %16s\n", "n", "det n^(4/3)", "det n^(3/2)", "broadcast step6")
	for _, r := range rows {
		fmt.Printf("%6d %14d %14d %16d\n", r.n, r.det43, r.det32, r.bc56)
	}

	// Log-log growth exponents between consecutive sizes.
	fmt.Printf("\nempirical growth exponents (round ratio / size ratio, log-log):\n")
	fmt.Printf("%12s %10s %10s %10s   (paper: 1.33 / 1.50 / 1.67)\n", "n range", "det43", "det32", "bcast")
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		ln := math.Log(float64(b.n) / float64(a.n))
		e43 := math.Log(float64(b.det43)/float64(a.det43)) / ln
		e32 := math.Log(float64(b.det32)/float64(a.det32)) / ln
		e56 := math.Log(float64(b.bc56)/float64(a.bc56)) / ln
		fmt.Printf("%5d->%-5d %10.2f %10.2f %10.2f\n", a.n, b.n, e43, e32, e56)
	}
}
