package qsink

import (
	"fmt"
	"math"
	"sync/atomic"

	"congestapsp/internal/bford"
	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
	"congestapsp/internal/mat"
)

// runCase2 implements Algorithm 9: values for pairs with hops(x, c) <= h2
// travel up the (pruned) in-CSSSP trees of CQ under a deterministic
// schedule; values cut off by bottleneck removal are recovered through B
// exactly as case (i) recovers through Q'.
func runCase2(nw *congest.Network, g *graph.Graph, tree *broadcast.Tree, cq *csssp.Collection,
	Q []int, delta *mat.Matrix, st *Stats, par Params, relax func(ci, x int, val int64)) error {

	n := g.N
	q := len(Q)

	// Step 1 (Algorithm 13): bottleneck set B.
	bound := int64(par.CongestionMult * float64(n) * math.Sqrt(float64(q)))
	st.CongestionBound = bound
	B, loadBefore, loadAfter, err := computeBottlenecks(nw, cq, tree, bound)
	if err != nil {
		return err
	}
	st.BottleneckCount = len(B)
	st.MaxLoadBefore = loadBefore
	st.MaxLoadAfter = loadAfter

	if len(B) > 0 {
		// Step 2: in-SSSP and out-SSSP per bottleneck node (independent
		// runs; source-sharded when nw.Parallel is set).
		inD, outD, err := pairedSSSPs(nw, g, B)
		if err != nil {
			return err
		}
		if par.Capture != nil {
			par.Capture.addMatrix(bford.In, inD)
			par.Capture.addMatrix(bford.Out, outD)
		}
		// Step 3: every x broadcasts delta(x, b) for each b in B.
		itemCnt := make([]int32, n)
		for x := 0; x < n; x++ {
			for k := range B {
				if inD.At(k, x) < graph.Inf {
					itemCnt[x]++
				}
			}
		}
		items := broadcast.CarveItems(itemCnt)
		for x := 0; x < n; x++ {
			for k := range B {
				if d := inD.At(k, x); d < graph.Inf {
					items[x] = append(items[x], broadcast.Item{A: int64(x), B: int64(k), C: d})
				}
			}
		}
		all, err := broadcast.AllToAll(nw, tree, items)
		if err != nil {
			return err
		}
		// Step 4 (local at blockers): delta^(B)(x, c) = min_b delta(x, b) +
		// delta(b, c).
		for _, it := range all {
			x, k, dxb := int(it.A), int(it.B), it.C
			row := outD.Row(int(k))
			for ci, c := range Q {
				if row[c] < graph.Inf {
					relax(ci, x, dxb+row[c])
				}
			}
		}
		// Step 5: prune B's subtrees from CQ (Algorithm 6; roots included —
		// a bottleneck that IS a blocker already has its values handled via
		// the broadcast above).
		inZ := make([]bool, n)
		for _, b := range B {
			inZ[b] = true
		}
		if err := cq.RemoveSubtrees(nw, inZ, false); err != nil {
			return err
		}
	}

	// Steps 6-9: deliver the surviving values up the pruned trees.
	switch par.Scheduler {
	case Frames:
		return runFrames(nw, cq, Q, delta, st, par, relax)
	default:
		return runRoundRobin(nw, cq, Q, delta, st, relax)
	}
}

// pipeMsg is one in-flight value (source x, blocker index ci).
type pipeMsg struct {
	x    int32
	ci   int32
	dist int64
}

const kindPipe uint8 = 40

// pipeState is the shared plumbing of the two schedulers. Queues are FIFO
// with an explicit head cursor: dequeuing advances heads[v*q+ci] instead of
// re-slicing, so the hot forwarding path never copies slice headers, and a
// fully drained queue resets to its start so its backing array is reused by
// later appends instead of growing without bound.
//
// The whole structure is pooled on the Network (congest.ScratchState): the
// spines are flat n*q arrays reallocated only when the shape grows, and the
// per-queue backing arrays keep their grown capacity across runs, so a
// warm re-run allocates almost nothing.
//
// All per-node state (queues, heads, pending, sent, the at-matrix rows the
// deliver closure writes — row ci is only written by blocker node Q[ci])
// is owned by exactly one node's Step, per the engine's parallel contract.
// The one genuinely global value, the undelivered-message count, is an
// atomic: blocker nodes on different engine shards decrement it in the
// same round, and an atomic add is order-independent, so the value each
// round boundary observes is bit-identical to sequential execution.
type pipeState struct {
	cq      *csssp.Collection
	Q       []int
	q       int          // len(Q); row stride of the flat spines
	queues  [][]pipeMsg  // queues[v*q+ci]: messages at v for blocker ci
	heads   []int32      // heads[v*q+ci]: first unsent index
	pending []int64      // total unsent messages at v
	total   atomic.Int64 // undelivered messages across all nodes
	deliver func(ci, x int, val int64)
	sent    []int64 // per-node forwarded count (congestion accounting)
	cursor  []int32 // round-robin position in the cyclic order O per node

	rr roundRobinProto
}

type pipeKey struct{}

func newPipeState(nw *congest.Network, cq *csssp.Collection, Q []int, delta *mat.Matrix, deliver func(ci, x int, val int64)) *pipeState {
	n := cq.G.N
	q := len(Q)
	ps := congest.ScratchState(nw.Scratch(), pipeKey{}, func() *pipeState { return new(pipeState) })
	ps.cq, ps.Q, ps.q, ps.deliver = cq, Q, q, deliver
	if cap(ps.queues) < n*q {
		ps.queues = make([][]pipeMsg, n*q)
	} else {
		ps.queues = ps.queues[:n*q]
		for s := range ps.queues {
			ps.queues[s] = ps.queues[s][:0]
		}
	}
	ps.heads = congest.Grow(ps.heads, n*q)
	ps.pending = congest.Grow(ps.pending, n)
	ps.sent = congest.Grow(ps.sent, n)
	ps.cursor = congest.Grow(ps.cursor, n)
	ps.total.Store(0)
	// Seed: every alive node x in pruned tree T_ci sends its own value.
	for ci := range Q {
		for x := 0; x < n; x++ {
			if x == Q[ci] || !cq.InTree(ci, x) {
				continue
			}
			if d := delta.At(x, ci); d < graph.Inf {
				s := x*q + ci
				ps.queues[s] = append(ps.queues[s], pipeMsg{x: int32(x), ci: int32(ci), dist: d})
				ps.pending[x]++
				ps.total.Add(1)
			}
		}
	}
	return ps
}

// receive ingests this round's messages at node v.
func (ps *pipeState) receive(v int, in []congest.Message) {
	for _, m := range in {
		if m.Kind != kindPipe {
			continue
		}
		ci := int(m.B)
		if ps.Q[ci] == v {
			ps.deliver(ci, int(m.A), m.C)
			ps.total.Add(-1)
			continue
		}
		s := v*ps.q + ci
		ps.queues[s] = append(ps.queues[s], pipeMsg{x: int32(m.A), ci: int32(ci), dist: m.C})
		ps.pending[v]++
	}
}

// queued returns the number of unsent messages at v for blocker ci.
func (ps *pipeState) queued(v, ci int) int {
	s := v*ps.q + ci
	return len(ps.queues[s]) - int(ps.heads[s])
}

// forward emits the head message of queue ci at v toward Q[ci]'s tree
// parent.
func (ps *pipeState) forward(v, ci int, send func(congest.Message)) {
	s := v*ps.q + ci
	h := ps.heads[s]
	msg := ps.queues[s][h]
	if int(h)+1 == len(ps.queues[s]) {
		ps.queues[s] = ps.queues[s][:0]
		ps.heads[s] = 0
	} else {
		ps.heads[s] = h + 1
	}
	ps.pending[v]--
	send(congest.Message{To: ps.cq.Parent[ci][v], Kind: kindPipe, A: int64(msg.x), B: int64(msg.ci), C: msg.dist})
	ps.sent[v]++
}

// runRoundRobin is Steps 7-9 of Algorithm 9: the nodes cycle through the
// blocker sequence O, forwarding one unsent message per round toward the
// next blocker with pending traffic.
func runRoundRobin(nw *congest.Network, cq *csssp.Collection, Q []int, delta *mat.Matrix,
	st *Stats, relax func(ci, x int, val int64)) error {

	n := cq.G.N
	ps := newPipeState(nw, cq, Q, delta, relax)
	st.PipelineMessages = ps.total.Load()
	if ps.total.Load() == 0 {
		return nil
	}

	// Lemma 4.3 budget with slack; the protocol stops at global delivery.
	budget := pipelineBudget(n, len(Q), ps.total.Load())
	ps.rr = roundRobinProto{ps: ps}
	rounds, err := nw.Run(&ps.rr, budget)
	if err != nil {
		return fmt.Errorf("qsink: round-robin pipeline: %w", err)
	}
	if left := ps.total.Load(); left != 0 {
		return fmt.Errorf("qsink: pipeline finished with %d undelivered messages", left)
	}
	st.PipelineRounds = rounds
	return nil
}

// roundRobinProto is the Steps 7-9 forwarding discipline as a reusable
// protocol object: each node advances its cyclic cursor to the next blocker
// with pending traffic and forwards one message per round.
type roundRobinProto struct {
	ps *pipeState
}

// Step implements congest.Proto.
func (p *roundRobinProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	ps := p.ps
	ps.receive(v, in)
	if ps.pending[v] > 0 {
		q := ps.q
		for k := 0; k < q; k++ {
			ci := (int(ps.cursor[v]) + k) % q
			if ps.queued(v, ci) > 0 {
				ps.forward(v, ci, send)
				ps.cursor[v] = int32((ci + 1) % q)
				break
			}
		}
	}
	return ps.pending[v] == 0
}

// runFrames is the stage/frame scheduler of Algorithm 10, used to observe
// the progress measure of Section 4.3: in stage i, each node serves the
// blockers in Q_{v,i} (those it still has traffic for) one frame slot at a
// time; Lemma 4.8 predicts |Q_{v,i}| shrinks geometrically with i.
func runFrames(nw *congest.Network, cq *csssp.Collection, Q []int, delta *mat.Matrix,
	st *Stats, par Params, relax func(ci, x int, val int64)) error {

	n := cq.G.N
	ps := newPipeState(nw, cq, Q, delta, relax)
	st.PipelineMessages = ps.total.Load()
	if ps.total.Load() == 0 {
		return nil
	}
	budget := pipelineBudget(n, len(Q), ps.total.Load())
	totalRounds := 0
	logn := math.Log2(float64(n) + 1)
	quotaScale := par.FrameQuotaScale
	if quotaScale <= 0 {
		quotaScale = 1
	}
	for stage := 0; ps.total.Load() > 0; stage++ {
		st.FrameStages = stage + 1
		// Q_{v,i}: the blockers each node still serves, fixed per stage.
		qvi := make([][]int, n)
		maxQvi := 0
		for v := 0; v < n; v++ {
			for ci := range Q {
				if ps.queued(v, ci) > 0 {
					qvi[v] = append(qvi[v], ci)
				}
			}
			if len(qvi[v]) > maxQvi {
				maxQvi = len(qvi[v])
			}
		}
		if maxQvi == 0 {
			maxQvi = 1
		}
		st.FrameQviMax = append(st.FrameQviMax, maxQvi)
		// Stage length: enough frames for n^(2/3) log^(i+1) n messages per
		// served blocker (the Corollary 4.7 quota), capped by the global
		// budget; each frame has one slot per blocker in Q_{v,i}.
		quota := quotaScale * math.Ceil(math.Pow(float64(n), 2.0/3)) * math.Pow(logn, float64(stage+1))
		frames := int(quota) + 1
		stageRounds := frames * maxQvi
		if stageRounds > budget-totalRounds {
			stageRounds = budget - totalRounds
		}
		if stageRounds <= 0 {
			return fmt.Errorf("qsink: frame scheduler exceeded budget with %d messages left", ps.total.Load())
		}
		p := congest.ProtoFunc(func(v, round int, in []congest.Message, send func(congest.Message)) bool {
			ps.receive(v, in)
			// The final round of each stage is receive-only so no message
			// is left in flight across the stage boundary.
			if round < stageRounds && len(qvi[v]) > 0 {
				slot := round % maxQvi
				if slot < len(qvi[v]) {
					ci := qvi[v][slot]
					if ps.queued(v, ci) > 0 {
						ps.forward(v, ci, send)
					}
				}
			}
			return round >= stageRounds
		})
		rounds, err := nw.Run(p, stageRounds+2)
		if err != nil {
			return fmt.Errorf("qsink: frame stage %d: %w", stage, err)
		}
		totalRounds += rounds
		if left := ps.total.Load(); left > 0 && totalRounds >= budget {
			return fmt.Errorf("qsink: frame scheduler: %d messages left at budget", left)
		}
	}
	st.PipelineRounds = totalRounds
	return nil
}

// pipelineBudget is the Lemma 4.3 bound with engineering slack:
// (n^(4/3) log n + n^(4/3)) * ((1/3) log n / log log n) rounds, at least
// enough for the degenerate small-n cases.
func pipelineBudget(n, q int, msgs int64) int {
	nf := float64(n)
	logn := math.Log2(nf + 2)
	loglog := math.Log2(logn + 2)
	b := math.Pow(nf, 4.0/3) * (logn + 1) * (logn/loglog/3 + 1)
	min := float64(msgs)*float64(q+1) + 16*nf
	if b < min {
		b = min
	}
	return int(b) + 64
}
