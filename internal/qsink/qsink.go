// Package qsink implements Step 6 of the paper's Algorithm 1: the reversed
// q-sink shortest path problem. Every source node x holds shortest-path
// distance values delta(x, c) for every blocker node c in Q (computed
// locally in Step 5), and each value must reach its blocker node c. The
// trivial solution broadcasts all O~(n^(5/3)) values in O~(n^(5/3)) rounds;
// Section 4 gives the first deterministic O~(n^(4/3))-round algorithm:
//
//   - Case (i), hops(x, c) > n^(2/3) (Algorithm 8): build an n^(2/3)-hop
//     in-CSSSP for Q, construct a second-level blocker set Q' of size
//     O~(n^(1/3)) for it, compute full SSSPs from each c' in Q', and
//     broadcast the n*|Q'| values delta(x, c'); each c recovers
//     delta(x, c) = min_c' delta(x, c') + delta(c', c).
//
//   - Case (ii), hops(x, c) <= n^(2/3) (Algorithm 9): identify a set B of
//     at most sqrt(|Q|) bottleneck nodes whose removal caps every node's
//     forwarding load at n*sqrt(|Q|) (Algorithm 13 with the Compute-Count
//     convergecast of Algorithm 14), handle values passing through B like
//     case (i), prune B's subtrees, and deliver the remaining values up the
//     pruned CSSSP trees with the round-robin pipeline of Steps 8-9
//     (analyzed via stages and frames in Section 4.3, Algorithm 10).
//
// Both cases produce upper bounds that are exact for the pairs they are
// responsible for, so each blocker takes the minimum over all candidates.
package qsink

import (
	"fmt"
	"math"

	"congestapsp/internal/bford"
	"congestapsp/internal/blocker"
	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
	"congestapsp/internal/mat"
)

// Scheduler selects the delivery discipline for case (ii).
type Scheduler int

const (
	// RoundRobin is the simple scheme of Steps 8-9 of Algorithm 9: each
	// node forwards, per round, one unsent message for the next blocker in
	// cyclic order.
	RoundRobin Scheduler = iota
	// Frames is the stage/frame-structured restatement (Algorithm 10) used
	// by the analysis in Section 4.3; it is provided to measure the frame
	// progress bounds (Lemmas 4.6-4.8) directly.
	Frames
	// BroadcastAll is the trivial O~(n^(5/3)) baseline: broadcast every
	// delta(x, c) value to everyone.
	BroadcastAll
)

// String names the scheduler as it appears in experiment tables.
func (s Scheduler) String() string {
	switch s {
	case RoundRobin:
		return "roundrobin"
	case Frames:
		return "frames"
	default:
		return "broadcastall"
	}
}

// Params configures the q-sink algorithm.
type Params struct {
	Scheduler Scheduler
	// H2 overrides the case-split hop bound (0 = ceil(n^(2/3))).
	H2 int
	// Blocker configures the second-level blocker-set construction for Q'.
	Blocker blocker.Params
	// CongestionMult scales the bottleneck threshold n*sqrt(|Q|) (default 1).
	CongestionMult float64
	// SkipCase1 disables Algorithm 8 (valid when the instance has no pair
	// with hops(x, c) > H2; used by ablation benches).
	SkipCase1 bool
	// FrameQuotaScale shrinks the per-stage message quota of the Frames
	// scheduler (default 1 = the Corollary 4.7 quota n^(2/3) log^(i+1) n).
	// At simulable sizes the stage-0 quota already exceeds all traffic, so
	// the multi-stage shrinkage of Lemma 4.8 is invisible; the E8
	// experiment scales the quota down to observe it.
	FrameQuotaScale float64
	// Capture, when non-nil, records every internal Bellman-Ford fixed
	// point the run materializes (the CQ in-collection labels and the
	// paired full SSSPs for Q' and B) so a warm session can later decide
	// whether a graph update invalidates this step without re-running it.
	// The snapshot is Reset at the start of Run and owned by the caller.
	Capture *Snapshot
}

// Snapshot is the update-damage interface of one q-sink run: the distance
// rows of every internal label system, each tagged with the relaxation
// direction it was computed under. A graph update leaves the whole q-sink
// output unchanged whenever no row admits a relaxation improvement across
// any updated edge (see core's damage model; DESIGN.md §10). Row storage
// is carved from one grow-only arena so steady-state re-captures on a warm
// session allocate nothing.
type Snapshot struct {
	Rows      []SnapRow
	arena     []int64
	hopsArena []int
}

// SnapRow is one captured label system: the relaxation mode it ran under
// and its final distance row (graph.Inf for unreached nodes). Hop-BOUNDED
// systems (the CQ collection labels) additionally carry their root, hop
// bound, and the per-node hop count realizing each distance (the label's
// convergence level): the plain relaxation test is not sound for them, and
// core's damage model needs the extra fields to run its hop-bound test
// (core/hops.go). Hops == nil marks a full (n-1)-hop SSSP row, for which
// the relaxation test alone is sound.
type SnapRow struct {
	Mode  bford.Mode
	Root  int
	Bound int
	Dist  []int64
	Hops  []int
}

// Reset empties the snapshot, keeping the arenas for reuse.
func (s *Snapshot) Reset() {
	s.Rows = s.Rows[:0]
	s.arena = s.arena[:0]
	s.hopsArena = s.hopsArena[:0]
}

// add copies dist into the arena and records it under mode. Earlier rows
// may keep pointing into a superseded arena block after growth; their
// copied contents stay valid, which is all readers need.
func (s *Snapshot) add(mode bford.Mode, dist []int64) {
	start := len(s.arena)
	s.arena = append(s.arena, dist...)
	s.Rows = append(s.Rows, SnapRow{Mode: mode, Root: -1, Dist: s.arena[start:len(s.arena):len(s.arena)]})
}

// addBounded records a hop-bounded label system with its damage metadata.
func (s *Snapshot) addBounded(mode bford.Mode, root, bound int, dist []int64, hops []int) {
	s.add(mode, dist)
	start := len(s.hopsArena)
	s.hopsArena = append(s.hopsArena, hops...)
	row := &s.Rows[len(s.Rows)-1]
	row.Root, row.Bound = root, bound
	row.Hops = s.hopsArena[start:len(s.hopsArena):len(s.hopsArena)]
}

// addMatrix records every row of m under mode.
func (s *Snapshot) addMatrix(mode bford.Mode, m *mat.Matrix) {
	for i := 0; i < m.Rows(); i++ {
		s.add(mode, m.Row(i))
	}
}

// Stats decomposes the round cost; the benchmark harness reports these as
// the per-step series of Lemmas 4.1 and 4.5.
type Stats struct {
	H2              int
	QSize           int
	QPrimeSize      int
	BottleneckCount int
	CongestionBound int64
	// MaxLoadBefore/After: the maximum per-node forwarding load (the
	// congestion measure of Section 4) before and after removing B.
	MaxLoadBefore, MaxLoadAfter int64
	PipelineMessages            int64
	PipelineRounds              int
	FrameStages                 int
	// FrameQviMax[i] is max_v |Q_{v,i}| at the start of frame stage i
	// (Lemma 4.8 predicts geometric shrinkage).
	FrameQviMax []int
	RoundsTotal int
}

// Result carries the values now known at each blocker node.
type Result struct {
	// AtBlocker[ci][x] is the value blocker Q[ci] holds for source x
	// (graph.Inf if nothing was received; unreachable pairs stay Inf).
	// The rows are zero-copy views of one flat |Q| x n matrix.
	AtBlocker [][]int64
	Stats     Stats
}

// Run delivers delta(x, Q[ci]) — element (x, ci) of the n x |Q| Step-5
// matrix — to the blocker nodes. delta must be exact for every pair with a
// finite distance; unreachable pairs carry graph.Inf.
func Run(nw *congest.Network, g *graph.Graph, Q []int, delta *mat.Matrix, par Params) (*Result, error) {
	n := g.N
	q := len(Q)
	if par.Capture != nil {
		par.Capture.Reset()
	}
	if q == 0 {
		return &Result{AtBlocker: nil}, nil
	}
	if delta.Rows() != n || delta.Cols() != q {
		return nil, fmt.Errorf("qsink: delta is %dx%d, want %dx%d", delta.Rows(), delta.Cols(), n, q)
	}
	st := Stats{QSize: q}
	roundsBefore := nw.Stats.Rounds

	h2 := par.H2
	if h2 == 0 {
		h2 = int(math.Ceil(math.Pow(float64(n), 2.0/3)))
	}
	st.H2 = h2
	if par.CongestionMult <= 0 {
		par.CongestionMult = 1
	}

	at := mat.NewFilled(q, n, graph.Inf)
	for ci := range Q {
		at.Set(ci, Q[ci], delta.At(Q[ci], ci)) // a blocker knows its own value
	}
	relax := func(ci, x int, val int64) {
		if val < at.At(ci, x) {
			at.Set(ci, x, val)
		}
	}

	tree, err := broadcast.BuildBFS(nw, 0)
	if err != nil {
		return nil, err
	}

	if par.Scheduler == BroadcastAll {
		// Trivial baseline: every x broadcasts all |Q| values (Lemma A.2
		// generalized: O(n + n|Q|) rounds = O~(n^(5/3)) for |Q| =
		// O~(n^(2/3))).
		itemCnt := make([]int32, n)
		for x := 0; x < n; x++ {
			row := delta.Row(x)
			for ci := 0; ci < q; ci++ {
				if row[ci] < graph.Inf {
					itemCnt[x]++
				}
			}
		}
		items := broadcast.CarveItems(itemCnt)
		for x := 0; x < n; x++ {
			row := delta.Row(x)
			for ci := 0; ci < q; ci++ {
				if row[ci] < graph.Inf {
					items[x] = append(items[x], broadcast.Item{A: int64(x), B: int64(ci), C: row[ci]})
				}
			}
		}
		all, err := broadcast.AllToAll(nw, tree, items)
		if err != nil {
			return nil, err
		}
		for _, it := range all {
			relax(int(it.B), int(it.A), it.C)
		}
		st.RoundsTotal = nw.Stats.Rounds - roundsBefore
		return &Result{AtBlocker: at.RowViews(), Stats: st}, nil
	}

	// Shared substrate for both cases: the n^(2/3)-hop in-CSSSP collection
	// for source set Q (Step 1 of Algorithm 8 / input CQ of Algorithm 9).
	cq, err := csssp.Build(nw, g, Q, h2, bford.In)
	if err != nil {
		return nil, err
	}
	if par.Capture != nil {
		// The truncated CQ trees, the bottleneck loads, and the delivery
		// schedules are all functions of these raw 2*h2-hop labels plus
		// topology, so the labels are the complete damage interface of the
		// collection.
		for i := range Q {
			par.Capture.addBounded(bford.In, Q[i], 2*cq.H, cq.Label[i], cq.LabelHops[i])
		}
	}

	// ---- Case (i): hops(x, c) > n^(2/3) (Algorithm 8) ----
	if !par.SkipCase1 {
		if err := runCase1(nw, g, tree, cq, Q, delta, &st, par, relax); err != nil {
			return nil, err
		}
		// The blocker construction for Q' pruned CQ's trees; restore them
		// for case (ii), which routes on the full collection.
		cq.ResetRemovals()
	}

	// ---- Case (ii): hops(x, c) <= n^(2/3) (Algorithm 9) ----
	if err := runCase2(nw, g, tree, cq, Q, delta, &st, par, relax); err != nil {
		return nil, err
	}

	st.RoundsTotal = nw.Stats.Rounds - roundsBefore
	return &Result{AtBlocker: at.RowViews(), Stats: st}, nil
}

// runCase1 implements Algorithm 8. Exactness argument (Lemma 4.1): if the
// minimum-hop shortest path from x to c has more than h2 hops, walking it
// backward from c the min-hop-to-c value decreases by at most one per step,
// so some y on it has min-hop exactly h2; y is then a depth-h2 leaf of T_c
// and the blocker Q' hits the tree path below it, placing some c' in Q' on
// a shortest x->c path.
func runCase1(nw *congest.Network, g *graph.Graph, tree *broadcast.Tree, cq *csssp.Collection,
	Q []int, delta *mat.Matrix, st *Stats, par Params, relax func(ci, x int, val int64)) error {

	n := g.N
	// Step 2: second-level blocker set Q' over CQ.
	bp := par.Blocker
	qp, err := blocker.Compute(nw, cq, bp)
	if err != nil {
		return fmt.Errorf("qsink: Q' construction: %w", err)
	}
	st.QPrimeSize = len(qp.Q)
	if len(qp.Q) == 0 {
		return nil // no long-hop pairs exist
	}

	// Step 3: full in-SSSP and out-SSSP per c' (Bellman-Ford, O(n) rounds
	// each). The 2|Q'| runs are independent, so they dispatch across the
	// work-stealing worker clones; each index owns one row of each matrix.
	inD, outD, err := pairedSSSPs(nw, g, qp.Q)
	if err != nil {
		return err
	}
	if par.Capture != nil {
		par.Capture.addMatrix(bford.In, inD)
		par.Capture.addMatrix(bford.Out, outD)
	}

	// Step 4: every x broadcasts (x, c', delta(x, c')) for each c' in Q'
	// (n*|Q'| items, O(n + n|Q'|) rounds).
	itemCnt := make([]int32, n)
	for x := 0; x < n; x++ {
		for k := range qp.Q {
			if inD.At(k, x) < graph.Inf {
				itemCnt[x]++
			}
		}
	}
	items := broadcast.CarveItems(itemCnt)
	for x := 0; x < n; x++ {
		for k := range qp.Q {
			if d := inD.At(k, x); d < graph.Inf {
				items[x] = append(items[x], broadcast.Item{A: int64(x), B: int64(k), C: d})
			}
		}
	}
	all, err := broadcast.AllToAll(nw, tree, items)
	if err != nil {
		return err
	}

	// Step 5 (local at each blocker): delta(x, c) <= delta(x, c') +
	// delta(c', c).
	for _, it := range all {
		x, k, dxc := int(it.A), int(it.B), it.C
		row := outD.Row(int(k))
		for ci, c := range Q {
			if row[c] < graph.Inf {
				relax(ci, x, dxc+row[c])
			}
		}
	}
	return nil
}

// pairedSSSPs runs, for each node in set, a full in-SSSP and out-SSSP
// (Bellman-Ford over n-1 hops each), source-sharded when nw.Parallel is
// set. inD row k holds delta(., set[k]); outD row k holds delta(set[k], .).
// Both Algorithm 8 (Q') and the bottleneck recovery of Algorithm 9 (B) use
// this primitive.
func pairedSSSPs(nw *congest.Network, g *graph.Graph, set []int) (inD, outD *mat.Matrix, err error) {
	n := g.N
	inD = mat.New(len(set), n)
	outD = mat.New(len(set), n)
	err = nw.ShardRuns(len(set), func(w *congest.Network, k int) error {
		rin, err := bford.Run(w, g, set[k], n-1, bford.In)
		if err != nil {
			return err
		}
		copy(inD.Row(k), rin.Dist)
		rout, err := bford.Run(w, g, set[k], n-1, bford.Out)
		if err != nil {
			return err
		}
		copy(outD.Row(k), rout.Dist)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return inD, outD, nil
}
