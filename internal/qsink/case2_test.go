package qsink

import (
	"testing"

	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
)

func TestFrameQuotaScaleForcesStages(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 36, Seed: 21, MaxWeight: 9}, 110)
	var Q []int
	for v := 0; v < g.N; v += 3 {
		Q = append(Q, v)
	}
	delta := graph.BlockerDelta(g, Q)
	run := func(scale float64) *Result {
		nw, err := congest.NewNetwork(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(nw, g, Q, delta, Params{Scheduler: Frames, FrameQuotaScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(1.0)
	tiny := run(0.02)
	checkExact(t, g, Q, full)
	checkExact(t, g, Q, tiny)
	if tiny.Stats.FrameStages <= full.Stats.FrameStages {
		t.Errorf("scaled quota stages %d not larger than full-quota stages %d",
			tiny.Stats.FrameStages, full.Stats.FrameStages)
	}
	// Lemma 4.8 direction: max |Q_{v,i}| must not grow across stages.
	m := tiny.Stats.FrameQviMax
	for i := 1; i < len(m); i++ {
		if m[i] > m[i-1] {
			t.Errorf("|Qvi| grew across stages: %v", m)
		}
	}
}

func TestQEqualsAllNodes(t *testing.T) {
	// Degenerate stress: every node is a blocker.
	g := graph.RandomConnected(graph.GenConfig{N: 18, Seed: 22, MaxWeight: 9}, 54)
	Q := make([]int, g.N)
	for i := range Q {
		Q[i] = i
	}
	res := run(t, g, Q, Params{Scheduler: RoundRobin})
	checkExact(t, g, Q, res)
}

func TestSingleBlocker(t *testing.T) {
	g := graph.Grid(3, 5, graph.GenConfig{Seed: 23, MaxWeight: 9})
	res := run(t, g, []int{7}, Params{Scheduler: RoundRobin})
	checkExact(t, g, []int{7}, res)
}

func TestHigherBandwidth(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 24, Seed: 24, MaxWeight: 9}, 72)
	Q := []int{1, 8, 15, 22}
	delta := graph.BlockerDelta(g, Q)
	rounds := func(bw int) int {
		nw, err := congest.NewNetwork(g, bw)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(nw, g, Q, delta, Params{Scheduler: RoundRobin})
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, g, Q, res)
		return res.Stats.RoundsTotal
	}
	r1, r4 := rounds(1), rounds(4)
	if r4 > r1 {
		t.Errorf("bandwidth 4 slower than 1: %d vs %d", r4, r1)
	}
}

func TestPipelineCongestionAccounting(t *testing.T) {
	// The per-node forwarded counts must sum to at least the seeded
	// message count minus direct-to-root deliveries (every message is
	// forwarded at least once unless its seed is a root child... every
	// seeded message is sent at least once by its origin).
	g := graph.Ring(graph.GenConfig{N: 16, Seed: 25, MaxWeight: 9})
	Q := []int{0, 8}
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, g, Q, graph.BlockerDelta(g, Q), Params{Scheduler: RoundRobin, SkipCase1: true, H2: g.N})
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, g, Q, res)
	if res.Stats.PipelineMessages <= 0 {
		t.Error("no pipeline messages on a ring with H2 = n")
	}
}

func TestSubtreeSizesLocalMatchesUpcast(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 20, Seed: 26, MaxWeight: 9}, 60)
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := buildCQ(t, nw, g, []int{3, 9, 17}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]int64, g.N)
	for i := range ones {
		ones[i] = 1
	}
	orders := depthOrders(cq)
	for i := range cq.Sources {
		viaNet, err := cq.UpcastSum(nw, i, ones)
		if err != nil {
			t.Fatal(err)
		}
		local := make([]int64, g.N)
		subtreeSizesInto(cq, i, orders[i], local)
		for v := 0; v < g.N; v++ {
			want := viaNet[v]
			if !cq.InTree(i, v) {
				want = 0
			}
			if local[v] != want {
				t.Fatalf("tree %d node %d: local %d != upcast %d", i, v, local[v], want)
			}
		}
	}
}
