package qsink

import (
	"math"
	"testing"

	"congestapsp/internal/bford"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
	"congestapsp/internal/mat"
)

func checkExact(t *testing.T, g *graph.Graph, Q []int, res *Result) {
	t.Helper()
	delta := graph.BlockerDelta(g, Q)
	for ci := range Q {
		for x := 0; x < g.N; x++ {
			want := delta.At(x, ci)
			got := res.AtBlocker[ci][x]
			if want >= graph.Inf {
				if got < graph.Inf {
					t.Errorf("blocker %d (node %d): source %d unreachable but got %d", ci, Q[ci], x, got)
				}
				continue
			}
			if got != want {
				t.Errorf("blocker %d (node %d): delta(%d,.) = %d, want %d", ci, Q[ci], x, got, want)
			}
		}
	}
}

func run(t *testing.T, g *graph.Graph, Q []int, par Params) *Result {
	t.Helper()
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, g, Q, graph.BlockerDelta(g, Q), par)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRoundRobinExactAllFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		Q    []int
	}{
		{"random-undir", graph.RandomConnected(graph.GenConfig{N: 26, Seed: 1, MaxWeight: 9}, 70), []int{2, 7, 19}},
		{"random-dir", graph.RandomConnected(graph.GenConfig{N: 24, Directed: true, Seed: 2, MaxWeight: 9}, 80), []int{0, 11, 17, 23}},
		{"ring", graph.Ring(graph.GenConfig{N: 20, Seed: 3, MaxWeight: 9}), []int{0, 9}},
		{"grid", graph.Grid(4, 6, graph.GenConfig{Seed: 4, MaxWeight: 9}), []int{5, 13, 21}},
		{"star", graph.Star(graph.GenConfig{N: 18, Seed: 5, MaxWeight: 9}), []int{0, 4, 9}},
		{"zeromix", graph.ZeroWeightMix(graph.GenConfig{N: 22, Seed: 6, MaxWeight: 9}, 66), []int{1, 8, 14}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := run(t, tc.g, tc.Q, Params{Scheduler: RoundRobin})
			checkExact(t, tc.g, tc.Q, res)
		})
	}
}

func TestFramesExact(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 24, Seed: 7, MaxWeight: 9}, 70)
	Q := []int{3, 9, 15, 21}
	res := run(t, g, Q, Params{Scheduler: Frames})
	checkExact(t, g, Q, res)
	if res.Stats.FrameStages == 0 && res.Stats.PipelineMessages > 0 {
		t.Error("frame scheduler delivered messages without recording stages")
	}
}

func TestBroadcastBaselineExact(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 24, Directed: true, Seed: 8, MaxWeight: 9}, 80)
	Q := []int{1, 6, 12, 18}
	res := run(t, g, Q, Params{Scheduler: BroadcastAll})
	checkExact(t, g, Q, res)
}

func TestCase1ExercisedOnLongRing(t *testing.T) {
	// A ring of 30 nodes with H2 = 4 forces many pairs into case (i):
	// hops(x, c) up to 15 >> 4. Exactness then depends on Algorithm 8's Q'
	// machinery.
	g := graph.Ring(graph.GenConfig{N: 30, Seed: 9, MaxWeight: 9})
	Q := []int{0, 14}
	res := run(t, g, Q, Params{Scheduler: RoundRobin, H2: 4})
	checkExact(t, g, Q, res)
	if res.Stats.QPrimeSize == 0 {
		t.Error("long-hop instance produced an empty Q'")
	}
}

func TestCase1SkipIsExactWhenDiameterSmall(t *testing.T) {
	// H2 >= diameter: case (ii) alone must already be exact.
	g := graph.RandomConnected(graph.GenConfig{N: 20, Seed: 10, MaxWeight: 9}, 70)
	Q := []int{2, 11}
	res := run(t, g, Q, Params{Scheduler: RoundRobin, H2: 19, SkipCase1: true})
	checkExact(t, g, Q, res)
}

func TestBottlenecksOnStar(t *testing.T) {
	// Star: the hub relays every message; with a tight congestion bound it
	// must be picked as a bottleneck and the result stays exact.
	g := graph.Star(graph.GenConfig{N: 24, Seed: 11, MaxWeight: 9})
	Q := []int{3, 8, 13, 18, 21}
	res := run(t, g, Q, Params{Scheduler: RoundRobin, CongestionMult: 0.02})
	checkExact(t, g, Q, res)
	if res.Stats.BottleneckCount == 0 {
		t.Error("tight bound on a star selected no bottleneck nodes")
	}
	if res.Stats.MaxLoadAfter > res.Stats.MaxLoadBefore {
		t.Errorf("load grew: before %d after %d", res.Stats.MaxLoadBefore, res.Stats.MaxLoadAfter)
	}
}

func TestBottleneckLoadBound(t *testing.T) {
	// Lemma A.15: after Compute-Bottleneck, every load is at most the bound.
	g := graph.Grid(5, 6, graph.GenConfig{Seed: 12, MaxWeight: 9})
	Q := []int{0, 7, 14, 21, 28}
	res := run(t, g, Q, Params{Scheduler: RoundRobin, CongestionMult: 0.05})
	checkExact(t, g, Q, res)
	if res.Stats.MaxLoadAfter > res.Stats.CongestionBound {
		t.Errorf("post-removal load %d exceeds bound %d", res.Stats.MaxLoadAfter, res.Stats.CongestionBound)
	}
}

func TestEmptyQ(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 8, Seed: 13, MaxWeight: 5})
	nw, _ := congest.NewNetwork(g, 1)
	res, err := Run(nw, g, nil, graph.BlockerDelta(g, nil), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AtBlocker) != 0 {
		t.Error("empty Q produced blocker rows")
	}
}

func TestInputValidation(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 8, Seed: 14, MaxWeight: 5})
	nw, _ := congest.NewNetwork(g, 1)
	if _, err := Run(nw, g, []int{1}, mat.New(3, 1), Params{}); err == nil {
		t.Error("short delta accepted")
	}
	if _, err := Run(nw, g, []int{1}, mat.New(8, 5), Params{}); err == nil {
		t.Error("wrong-width delta accepted")
	}
}

func TestRoundRobinVsBroadcastRounds(t *testing.T) {
	// The whole point of Section 4: the pipelined delivery must beat the
	// broadcast baseline once |Q| is sizable.
	g := graph.RandomConnected(graph.GenConfig{N: 40, Seed: 15, MaxWeight: 9}, 120)
	var Q []int
	for v := 0; v < g.N; v += 3 {
		Q = append(Q, v)
	}
	rr := run(t, g, Q, Params{Scheduler: RoundRobin})
	bc := run(t, g, Q, Params{Scheduler: BroadcastAll})
	checkExact(t, g, Q, rr)
	if rr.Stats.RoundsTotal <= 0 || bc.Stats.RoundsTotal <= 0 {
		t.Fatal("missing round accounting")
	}
	t.Logf("roundrobin=%d broadcast=%d", rr.Stats.RoundsTotal, bc.Stats.RoundsTotal)
}

func TestDeterministicRepeat(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 26, Directed: true, Seed: 16, MaxWeight: 9}, 90)
	Q := []int{4, 13, 22}
	a := run(t, g, Q, Params{Scheduler: RoundRobin})
	b := run(t, g, Q, Params{Scheduler: RoundRobin})
	if a.Stats.RoundsTotal != b.Stats.RoundsTotal {
		t.Errorf("rounds differ: %d vs %d", a.Stats.RoundsTotal, b.Stats.RoundsTotal)
	}
	for ci := range Q {
		for x := 0; x < g.N; x++ {
			if a.AtBlocker[ci][x] != b.AtBlocker[ci][x] {
				t.Fatalf("values differ at (%d,%d)", ci, x)
			}
		}
	}
}

func TestPipelineBudgetSane(t *testing.T) {
	if pipelineBudget(10, 3, 5) <= 0 {
		t.Error("non-positive budget")
	}
	big := pipelineBudget(100, 20, 1000)
	if float64(big) < math.Pow(100, 4.0/3) {
		t.Errorf("budget %d below n^(4/3)", big)
	}
}

// buildCQ is a test helper constructing an in-CSSSP for the given sources.
func buildCQ(t testing.TB, nw *congest.Network, g *graph.Graph, sources []int, h int) (*csssp.Collection, error) {
	t.Helper()
	return csssp.Build(nw, g, sources, h, bford.In)
}
