package qsink

import (
	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
)

// computeBottlenecks implements Compute-Bottleneck (Algorithm 13): it
// returns the set B of nodes whose removal (with their subtrees, across all
// trees of cq) brings every node's total forwarding load down to the given
// bound. The per-tree loads count_{v,c} are computed with the Compute-Count
// convergecast (Algorithm 14, h+1 rounds per tree); each elimination round
// broadcasts the load values (O(n), Lemma A.2) and picks the maximum,
// breaking ties toward the smaller id; the post-pick load update runs on
// the CSSSP union trees in O(n) rounds ([2, 1], charged), mirrored locally.
//
// Lemma A.15: on return every load is at most bound. Lemma A.16: |B| <=
// sqrt(|Q|) when bound = n*sqrt(|Q|), because each pick removes more than
// bound nodes from trees holding at most n*|Q| nodes in total.
func computeBottlenecks(nw *congest.Network, cq *csssp.Collection, tree *broadcast.Tree, bound int64) (B []int, loadBefore, loadAfter int64, err error) {
	n := cq.G.N
	q := cq.NumTrees()

	// Step 1: count_{v,c} for every tree (simulated convergecasts), summed
	// into total_count_v locally (Step 2). The per-tree counts are consumed
	// immediately, so one reused buffer serves all q upcasts.
	ones := make([]int64, n)
	for v := range ones {
		ones[v] = 1
	}
	total := make([]int64, n)
	counts := make([]int64, n)
	for i := 0; i < q; i++ {
		if err := cq.UpcastSumInto(nw, i, ones, counts); err != nil {
			return nil, 0, 0, err
		}
		root := cq.Sources[i]
		for v := 0; v < n; v++ {
			if v != root && cq.InTree(i, v) {
				total[v] += counts[v]
			}
		}
	}
	loadBefore = maxOf(total)
	loadAfter = loadBefore

	// Tree depths never change, so the decreasing-depth traversal order of
	// each tree — which every post-pick local size recomputation walks — is
	// computed once and shared across elimination rounds.
	var orders [][]int32
	itemBuf := make([]broadcast.Item, n)
	items := make([][]broadcast.Item, n)

	// Steps 3-6: eliminate until no node exceeds the bound.
	for {
		// Step 4: broadcast the load values (only overloaded nodes need to
		// speak; O(n) rounds either way).
		for v := 0; v < n; v++ {
			if total[v] > bound {
				itemBuf[v] = broadcast.Item{A: int64(v), B: total[v]}
				items[v] = itemBuf[v : v+1 : v+1]
			} else {
				items[v] = nil
			}
		}
		if _, err := broadcast.AllToAll(nw, tree, items); err != nil {
			return nil, 0, 0, err
		}
		best, bestVal := -1, bound
		for v := 0; v < n; v++ {
			if total[v] > bestVal {
				best, bestVal = v, total[v]
			}
		}
		if best < 0 {
			break
		}
		B = append(B, best)
		// Step 6: remove best's subtrees everywhere and refresh loads. [2,1]
		// do this along the union in-/out-trees in O(n) rounds; we apply the
		// identical update locally and charge those rounds.
		inZ := make([]bool, n)
		inZ[best] = true
		cq.RemoveSubtreesLocal(inZ, false)
		nw.ChargeRounds(n)
		if orders == nil {
			orders = depthOrders(cq)
		}
		clear(total)
		for i := 0; i < q; i++ {
			subtreeSizesInto(cq, i, orders[i], counts)
			root := cq.Sources[i]
			for v := 0; v < n; v++ {
				if v != root && cq.InTree(i, v) {
					total[v] += counts[v]
				}
			}
		}
		loadAfter = maxOf(total)
	}
	// The eliminations above marked removals in the local mirror only; the
	// caller performs the actual distributed pruning (Step 5 of Algorithm
	// 9) after the via-B distances are in place, so restore the trees.
	cq.ResetRemovals()
	return B, loadBefore, loadAfter, nil
}

// depthOrders returns, per tree, the as-built tree nodes in decreasing
// depth (children before parents), carved from one flat arena. Depths are
// static, so the orders stay valid across removals; traversals filter the
// dynamic InTree state.
func depthOrders(cq *csssp.Collection) [][]int32 {
	n := cq.G.N
	q := cq.NumTrees()
	sizes := 0
	for i := 0; i < q; i++ {
		for v := 0; v < n; v++ {
			if cq.Depth[i][v] >= 0 {
				sizes++
			}
		}
	}
	flat := make([]int32, 0, sizes)
	orders := make([][]int32, q)
	for i := 0; i < q; i++ {
		start := len(flat)
		for d := cq.H; d >= 0; d-- {
			for v := 0; v < n; v++ {
				if cq.Depth[i][v] == d {
					flat = append(flat, int32(v))
				}
			}
		}
		orders[i] = flat[start:len(flat):len(flat)]
	}
	return orders
}

// subtreeSizesInto computes, without network traffic, the current subtree
// size of every node of tree i into size (the local mirror used inside the
// O(n) charged update). order lists the tree's as-built nodes in
// decreasing depth, so children accumulate before parents.
func subtreeSizesInto(cq *csssp.Collection, i int, order []int32, size []int64) {
	clear(size)
	for _, v32 := range order {
		if cq.InTree(i, int(v32)) {
			size[v32] = 1
		}
	}
	for _, v32 := range order {
		v := int(v32)
		if !cq.InTree(i, v) {
			continue
		}
		if p := cq.Parent[i][v]; p >= 0 && cq.InTree(i, p) {
			size[p] += size[v]
		}
	}
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
