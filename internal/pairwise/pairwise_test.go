package pairwise

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSmallestIrreducibleKnownValues(t *testing.T) {
	// Degree 2: x^2+x+1 (0b111); degree 3: x^3+x+1 (0b1011);
	// degree 4: x^4+x+1 (0b10011); degree 8: x^8+x^4+x^3+x+1 would be
	// 0b100011011 but the lexicographically smallest is x^8+x^4+x^3+x^2+1
	// = 0b100011101. Verify degrees 2-4 against the classic minimal polys.
	want := map[uint]uint64{2: 0b111, 3: 0b1011, 4: 0b10011}
	for k, w := range want {
		got, err := smallestIrreducible(k)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("degree %d: got %#b, want %#b", k, got, w)
		}
	}
}

func TestIrreducibleRejectsComposites(t *testing.T) {
	// x^2 (0b100), x^2+1 = (x+1)^2 (0b101), x^2+x = x(x+1) (0b110).
	for _, f := range []uint64{0b100, 0b101, 0b110} {
		if isIrreducible(f, 2) {
			t.Errorf("%#b wrongly reported irreducible", f)
		}
	}
	if !isIrreducible(0b111, 2) {
		t.Error("x^2+x+1 wrongly reported reducible")
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, k := range []uint{3, 5, 8} {
		f, err := NewField(k)
		if err != nil {
			t.Fatal(err)
		}
		n := f.Size()
		r := rand.New(rand.NewSource(int64(k)))
		for trial := 0; trial < 200; trial++ {
			a, b, c := r.Uint64()%n, r.Uint64()%n, r.Uint64()%n
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("k=%d: multiplication not commutative at (%d,%d)", k, a, b)
			}
			if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
				t.Fatalf("k=%d: multiplication not associative", k)
			}
			if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
				t.Fatalf("k=%d: distributivity fails", k)
			}
			if f.Mul(a, 1) != a {
				t.Fatalf("k=%d: 1 is not the multiplicative identity", k)
			}
		}
		// No zero divisors: a*b = 0 implies a = 0 or b = 0 (full check for
		// the small field).
		if k == 3 {
			for a := uint64(1); a < n; a++ {
				for b := uint64(1); b < n; b++ {
					if f.Mul(a, b) == 0 {
						t.Fatalf("zero divisors: %d * %d = 0", a, b)
					}
				}
			}
		}
	}
}

func TestXORSpaceSizeBounds(t *testing.T) {
	for _, n := range []int{1, 5, 16, 100, 1000} {
		s, err := NewXORSpace(n)
		if err != nil {
			t.Fatal(err)
		}
		size := s.Size()
		if size <= uint64(2*n) || size > uint64(4*n) {
			t.Errorf("n=%d: space size %d not in (2n, 4n] = (%d, %d]", n, size, 2*n, 4*n)
		}
	}
}

func TestXORSpaceUniformAndPairwiseIndependent(t *testing.T) {
	// Exact enumeration: every variable is 1 on exactly half the points and
	// every pair agrees on being (1,1) on exactly a quarter.
	n := 13
	s, err := NewXORSpace(n)
	if err != nil {
		t.Fatal(err)
	}
	size := s.Size()
	ones := make([]uint64, n)
	both := make([][]uint64, n)
	for i := range both {
		both[i] = make([]uint64, n)
	}
	for z := uint64(0); z < size; z++ {
		for i := 0; i < n; i++ {
			if !s.Bit(i, z) {
				continue
			}
			ones[i]++
			for j := i + 1; j < n; j++ {
				if s.Bit(j, z) {
					both[i][j]++
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if ones[i] != size/2 {
			t.Errorf("var %d: %d ones over %d points, want %d", i, ones[i], size, size/2)
		}
		for j := i + 1; j < n; j++ {
			if both[i][j] != size/4 {
				t.Errorf("pair (%d,%d): %d joint ones, want %d", i, j, both[i][j], size/4)
			}
		}
	}
}

func TestAffineSpaceExactPairwiseIndependence(t *testing.T) {
	// For every pair u != v, count over the FULL space: P[X_u & X_v] must
	// equal p^2 exactly (threshold^2 / 2^(2K) points).
	n := 7
	s, err := NewAffineSpace(n, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.FullEnum()
	thr := s.Threshold
	size := s.F.Size()
	wantSingle := thr * size // #points with X_v = 1
	wantPair := thr * thr    // #points with X_u = X_v = 1
	singles := make([]uint64, n)
	pairs := make([][]uint64, n)
	for i := range pairs {
		pairs[i] = make([]uint64, n)
	}
	for _, p := range pts {
		for v := 0; v < n; v++ {
			if !s.Bit(v, p.A, p.B) {
				continue
			}
			singles[v]++
			for u := v + 1; u < n; u++ {
				if s.Bit(u, p.A, p.B) {
					pairs[v][u]++
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if singles[v] != wantSingle {
			t.Errorf("var %d: %d ones, want %d", v, singles[v], wantSingle)
		}
		for u := v + 1; u < n; u++ {
			if pairs[v][u] != wantPair {
				t.Errorf("pair (%d,%d): %d joint ones, want %d", v, u, pairs[v][u], wantPair)
			}
		}
	}
}

func TestAffineSpaceProbClamping(t *testing.T) {
	s, err := NewAffineSpace(10, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold != 1 {
		t.Errorf("threshold = %d, want clamped to 1", s.Threshold)
	}
	s2, _ := NewAffineSpace(10, 2.0)
	if s2.Threshold != s2.F.Size() {
		t.Errorf("threshold = %d, want clamped to field size %d", s2.Threshold, s2.F.Size())
	}
}

func TestLinearEnumDeterministicAndBounded(t *testing.T) {
	s, err := NewAffineSpace(50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a := s.LinearEnum(64)
	b := s.LinearEnum(64)
	if len(a) != 64 {
		t.Fatalf("enum length %d, want 64", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("enumeration not deterministic at %d", i)
		}
		if a[i].A >= s.F.Size() || a[i].B >= s.F.Size() {
			t.Fatalf("point %d out of field range: %+v", i, a[i])
		}
	}
	// Requesting more points than the full space clamps.
	tiny, _ := NewAffineSpace(2, 0.5)
	if got := tiny.LinearEnum(1 << 20); uint64(len(got)) != tiny.FullSize() {
		t.Errorf("clamped enum length %d, want %d", len(got), tiny.FullSize())
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewXORSpace(0); err == nil {
		t.Error("XOR space with n=0 accepted")
	}
	if _, err := NewAffineSpace(0, 0.5); err == nil {
		t.Error("affine space with n=0 accepted")
	}
	if _, err := NewField(0); err == nil {
		t.Error("field degree 0 accepted")
	}
	if _, err := NewField(31); err == nil {
		t.Error("field degree 31 accepted")
	}
}

// Property: fields of every supported small degree have no zero divisors on
// random samples and multiplication by a nonzero constant permutes elements.
func TestQuickFieldNoZeroDivisors(t *testing.T) {
	f := func(kRaw uint8, aRaw, bRaw uint64) bool {
		k := uint(2 + kRaw%12)
		fld, err := NewField(k)
		if err != nil {
			return false
		}
		mask := fld.Size() - 1
		a, b := aRaw&mask, bRaw&mask
		if a != 0 && b != 0 && fld.Mul(a, b) == 0 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: XOR-space variables are pairwise independent for random pairs
// at arbitrary n (exact counting over the space).
func TestQuickXORPairwise(t *testing.T) {
	f := func(nRaw uint8, iRaw, jRaw uint16) bool {
		n := 2 + int(nRaw%40)
		s, err := NewXORSpace(n)
		if err != nil {
			return false
		}
		i := int(iRaw) % n
		j := int(jRaw) % n
		if i == j {
			return true
		}
		var joint uint64
		for z := uint64(0); z < s.Size(); z++ {
			if s.Bit(i, z) && s.Bit(j, z) {
				joint++
			}
		}
		return joint == s.Size()/4
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAffineBitConsistency(t *testing.T) {
	// Bit must be a pure function of (v, a, b).
	s, err := NewAffineSpace(20, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.LinearEnum(10) {
		for v := 0; v < 20; v++ {
			if s.Bit(v, p.A, p.B) != s.Bit(v, p.A, p.B) {
				t.Fatal("Bit not deterministic")
			}
		}
	}
}

func TestAffineMarginalFrequencies(t *testing.T) {
	// Over the full space every variable is 1 exactly Threshold*2^K times;
	// over the linear slice the frequency should be near p (sanity, not
	// exact).
	s, err := NewAffineSpace(12, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pts := s.LinearEnum(64)
	for v := 0; v < 12; v++ {
		ones := 0
		for _, p := range pts {
			if s.Bit(v, p.A, p.B) {
				ones++
			}
		}
		frac := float64(ones) / float64(len(pts))
		if frac < 0.05 || frac > 0.6 {
			t.Errorf("var %d: slice frequency %.2f wildly off p=0.25", v, frac)
		}
	}
}

func TestFieldDegreeCoversUniverse(t *testing.T) {
	for _, n := range []int{2, 3, 17, 100, 1000} {
		s, err := NewAffineSpace(n, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if s.F.Size() < uint64(n) {
			t.Errorf("n=%d: field size %d too small", n, s.F.Size())
		}
	}
}
