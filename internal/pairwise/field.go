// Package pairwise implements the small sample spaces of pairwise
// independent random variables used to derandomize the blocker-set
// selection step (Section 3.2 and Appendix A.3 of the paper, following
// Luby [17] and Luby-Wigderson [18]).
//
// Two constructions are provided:
//
//   - XORSpace: the construction quoted verbatim in Appendix A.3 — a
//     {0,1}^l sample space with 2n < 2^l <= 4n, X_i(z) = XOR_k (i_k * z_k)
//     with the index encoding forced to end in a 1-bit. It yields unbiased
//     (p = 1/2) pairwise-independent bits over a linear-size space.
//
//   - AffineSpace: the affine family Y_v = a*e_v + b over GF(2^k) with
//     X_v = [Y_v < threshold], which supports the arbitrary selection
//     probabilities p = delta/(1+eps)^j that Step 12 of Algorithm 2 needs,
//     with exact pairwise independence. Its full sample space has 2^(2k)
//     points; the blocker algorithm enumerates a deterministic linear-size
//     slice of it (see DESIGN.md for the discussion of this substitution).
package pairwise

import "fmt"

// Field is GF(2^K) represented by polynomials over GF(2) modulo an
// irreducible polynomial of degree K (found at construction time by
// deterministic search, so no hard-coded table can be wrong).
type Field struct {
	K    uint
	Poly uint64 // the reduction polynomial including the x^K term
}

// NewField constructs GF(2^K) for 1 <= K <= 30.
func NewField(k uint) (*Field, error) {
	if k < 1 || k > 30 {
		return nil, fmt.Errorf("pairwise: field degree %d out of range [1,30]", k)
	}
	poly, err := smallestIrreducible(k)
	if err != nil {
		return nil, err
	}
	return &Field{K: k, Poly: poly}, nil
}

// Size returns |GF(2^K)| = 2^K.
func (f *Field) Size() uint64 { return 1 << f.K }

// Add is addition in GF(2^K) (XOR).
func (f *Field) Add(a, b uint64) uint64 { return a ^ b }

// Mul multiplies in GF(2^K): carry-less product reduced mod Poly.
func (f *Field) Mul(a, b uint64) uint64 {
	var acc uint64
	for b != 0 {
		if b&1 != 0 {
			acc ^= a
		}
		b >>= 1
		a <<= 1
		if a&(1<<f.K) != 0 {
			a ^= f.Poly
		}
	}
	return acc
}

// polyMulMod multiplies two GF(2)[x] polynomials modulo f (bit i of a value
// is the coefficient of x^i). Used only by the irreducibility search, where
// degrees stay below 2K <= 60 bits after reduction.
func polyMulMod(a, b, mod uint64, deg uint) uint64 {
	var acc uint64
	for b != 0 {
		if b&1 != 0 {
			acc ^= a
		}
		b >>= 1
		a <<= 1
		if a&(1<<deg) != 0 {
			a ^= mod
		}
	}
	return acc
}

// smallestIrreducible returns the lexicographically smallest irreducible
// polynomial of degree k over GF(2), including the leading x^k term.
// Irreducibility is established with the standard criterion:
// x^(2^k) == x (mod f), and gcd(x^(2^(k/d)) - x, f) == 1 for every prime
// divisor d of k.
func smallestIrreducible(k uint) (uint64, error) {
	if k == 1 {
		return 0b10, nil // x
	}
	for low := uint64(1); low < 1<<k; low += 2 { // constant term must be 1
		f := (uint64(1) << k) | low
		if isIrreducible(f, k) {
			return f, nil
		}
	}
	return 0, fmt.Errorf("pairwise: no irreducible polynomial of degree %d found", k)
}

func isIrreducible(f uint64, k uint) bool {
	// t = x^(2^i) mod f, computed by repeated squaring of x.
	t := uint64(0b10) // x
	for i := uint(0); i < k; i++ {
		t = polyMulMod(t, t, f, k)
		// Composite-order check at proper divisors: for each i < k dividing
		// k such that k/i is prime, gcd(x^(2^i) - x, f) must be 1.
		step := i + 1
		if step < k && k%step == 0 && isPrime(k/step) {
			if polyGCD(t^0b10, f) != 1 {
				return false
			}
		}
	}
	return t == 0b10 // x^(2^k) == x (mod f)
}

func isPrime(n uint) bool {
	if n < 2 {
		return false
	}
	for d := uint(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func polyGCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, polyMod(a, b)
	}
	return a
}

func polyMod(a, b uint64) uint64 {
	db := bitLen(b)
	for {
		da := bitLen(a)
		if da < db {
			return a
		}
		a ^= b << (da - db)
	}
}

func bitLen(x uint64) uint {
	var n uint
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}
