package pairwise

import "fmt"

// XORSpace is the sample space described verbatim in Appendix A.3 of the
// paper: l is chosen with 2n < 2^l <= 4n; sample points are the 2^l strings
// z in {0,1}^l; variable i takes value X_i(z) = XOR_k (enc(i)_k AND z_k),
// where enc(i) = 2i+1 forces the low bit to 1 (the paper's "last bit is 1").
// The variables are uniform (p = 1/2) and pairwise independent.
type XORSpace struct {
	N int
	L uint
}

// NewXORSpace builds the space for n variables.
func NewXORSpace(n int) (*XORSpace, error) {
	if n < 1 {
		return nil, fmt.Errorf("pairwise: XOR space needs n >= 1, got %d", n)
	}
	l := uint(1)
	for 1<<l <= 2*n {
		l++
	}
	return &XORSpace{N: n, L: l}, nil
}

// Size returns the number of sample points, 2^L in (2n, 4n].
func (s *XORSpace) Size() uint64 { return 1 << s.L }

// Bit returns X_i(z) for variable i in [0, N) and sample point z in
// [0, Size()).
func (s *XORSpace) Bit(i int, z uint64) bool {
	enc := uint64(2*i + 1)
	return parity(enc&z) == 1
}

func parity(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// AffineSpace generates pairwise-independent biased bits over GF(2^K):
// a sample point is a pair (a, b) of field elements, Y_v = a*e_v + b with
// e_v = v, and X_v = [Y_v < Threshold]. For u != v the pair (Y_u, Y_v) is
// uniform over F^2, so the X's are exactly pairwise independent with
// Pr[X_v = 1] = Threshold / 2^K.
type AffineSpace struct {
	F         *Field
	N         int
	Threshold uint64
}

// NewAffineSpace builds a space for n variables with success probability
// prob (clamped to [1/2^K, 1]); K is the smallest degree with 2^K >= n.
func NewAffineSpace(n int, prob float64) (*AffineSpace, error) {
	if n < 1 {
		return nil, fmt.Errorf("pairwise: affine space needs n >= 1, got %d", n)
	}
	k := uint(1)
	for 1<<k < uint64(n) {
		k++
	}
	f, err := NewField(k)
	if err != nil {
		return nil, err
	}
	size := float64(f.Size())
	thr := uint64(prob * size)
	if thr < 1 {
		thr = 1
	}
	if thr > f.Size() {
		thr = f.Size()
	}
	return &AffineSpace{F: f, N: n, Threshold: thr}, nil
}

// Prob returns the exact success probability Threshold / 2^K.
func (s *AffineSpace) Prob() float64 {
	return float64(s.Threshold) / float64(s.F.Size())
}

// FullSize returns the size of the full sample space, 2^(2K).
func (s *AffineSpace) FullSize() uint64 { return s.F.Size() * s.F.Size() }

// Bit returns X_v for the sample point (a, b).
func (s *AffineSpace) Bit(v int, a, b uint64) bool {
	y := s.F.Add(s.F.Mul(a, uint64(v)), b)
	return y < s.Threshold
}

// Point is one enumerated sample point of the linear-size search slice.
type Point struct {
	A, B uint64
}

// LinearEnum returns the deterministic linear-size slice of the sample
// space that the distributed derandomization enumerates: m points
// (a_mu, b_mu) with a_mu ranging over distinct field elements and b_mu a
// splitmix-style scrambled element. The full affine space guarantees a good
// point exists (Lemma 3.8); the algorithm searches this slice first and
// falls back to the single-best-node rule when (rarely) no enumerated point
// is good — see DESIGN.md and the goodset experiment.
func (s *AffineSpace) LinearEnum(m int) []Point {
	if um := s.FullSize(); uint64(m) > um {
		m = int(um)
	}
	mask := s.F.Size() - 1
	pts := make([]Point, m)
	for mu := 0; mu < m; mu++ {
		pts[mu] = Point{
			A: uint64(mu) & mask,
			B: splitmix(uint64(mu)) & mask,
		}
	}
	return pts
}

// FullEnum returns every point of the affine space; usable only for small
// fields (tests and the goodset experiment).
func (s *AffineSpace) FullEnum() []Point {
	size := s.F.Size()
	pts := make([]Point, 0, size*size)
	for a := uint64(0); a < size; a++ {
		for b := uint64(0); b < size; b++ {
			pts = append(pts, Point{A: a, B: b})
		}
	}
	return pts
}

// splitmix is the SplitMix64 finalizer, used as a deterministic scrambler.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
