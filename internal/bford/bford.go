// Package bford implements the distributed hop-bounded Bellman-Ford
// algorithm [Bellman 1958] in the CONGEST model, the workhorse of Steps 1,
// 3 and 7 of the paper's Algorithm 1 (Lemma A.4: an h-hop SSSP costs O(h)
// rounds per source).
//
// Both orientations are provided:
//
//   - Out: shortest paths FROM the root along edge directions (out-SSSP);
//     node v learns delta_h(root, v).
//   - In: shortest paths TO the root along edge directions (in-SSSP); node v
//     learns delta_h(v, root). Messages travel against edge direction, which
//     is legal because CONGEST communication uses the underlying undirected
//     graph (paper Section 1.1).
//
// Labels are (dist, hops) compared lexicographically, so the tree realizes,
// for every node, the minimum-hop path among minimum-weight paths within the
// hop horizon; parents break remaining ties by smallest id. This is the
// deterministic tie-breaking that the CSSSP construction of [1] relies on.
package bford

import (
	"fmt"
	"slices"
	"sync"

	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
)

// Mode selects the tree orientation.
type Mode int

const (
	// Out computes shortest paths from the root (out-SSSP).
	Out Mode = iota
	// In computes shortest paths to the root (in-SSSP).
	In
)

// String names the relaxation direction for logs and errors.
func (m Mode) String() string {
	if m == In {
		return "in"
	}
	return "out"
}

// Result is the outcome of one hop-bounded SSSP computation.
type Result struct {
	Root int
	Mode Mode
	// Dist[v] is the hop-bounded shortest-path distance (graph.Inf if no
	// path within the hop bound). For Out it is delta_h(root, v); for In it
	// is delta_h(v, root).
	Dist []int64
	// Hops[v] is the hop count of the tree path realizing Dist[v], -1 if
	// unreachable.
	Hops []int
	// Parent[v] is v's neighbor toward the root in the tree (-1 for the
	// root and for unreachable nodes). For Out trees the parent is the
	// predecessor on the path root->v; for In trees it is the successor on
	// the path v->root.
	Parent []int
	// Confirmed[v] reports that v's label composes through a confirmed
	// parent chain back to a seed, i.e. v genuinely belongs to the SSSP
	// tree. Hop-limited fringe labels can fail to compose (see the
	// confirmation wave in RunWithInit); their Dist values are still valid
	// hop-bounded distances but they carry no tree position.
	Confirmed []bool
}

// relAdj describes, for the chosen mode, the relaxation structure in CSR
// form: row v of (relOff, relNbr, relW) lists the arcs (u, w) such that
// dist(v) can improve to dist(u)+w, sorted by u for binary-searched lookup,
// and row u of (ntfOff, ntf) lists the nodes v that must hear about u's
// label changes, sorted by v. Parallel edges are collapsed to their minimum
// weight: a node learns a neighbor's label once per round and applies its
// locally known minimum incident edge weight.
type relAdj struct {
	relOff []int32
	relNbr []int32
	relW   []int64
	ntfOff []int32
	ntf    []int32
}

// weight returns the relaxation weight of arc u~>v, or -1 when v has no
// relaxation arc from u.
func (ra *relAdj) weight(v, u int) int64 {
	if i := ra.arcIndex(v, u); i >= 0 {
		return ra.relW[i]
	}
	return -1
}

// arcIndex returns the absolute index of arc u~>v in relNbr/relW, or -1.
func (ra *relAdj) arcIndex(v, u int) int {
	off := int(ra.relOff[v])
	if i, ok := slices.BinarySearch(ra.relNbr[off:ra.relOff[v+1]], int32(u)); ok {
		return off + i
	}
	return -1
}

// notify returns the nodes that must hear about v's label changes.
func (ra *relAdj) notify(v int) []int32 {
	return ra.ntf[ra.ntfOff[v]:ra.ntfOff[v+1]]
}

type relArc struct {
	v, u int32
	w    int64
}

func buildRelAdj(g *graph.Graph, mode Mode) *relAdj {
	n := g.N
	pairs := make([]relArc, 0, 2*g.M())
	for _, e := range g.Edges() {
		switch {
		case mode == Out && g.Directed:
			pairs = append(pairs, relArc{int32(e.V), int32(e.U), e.W}) // dist(e.V) <- dist(e.U) + w
		case mode == In && g.Directed:
			pairs = append(pairs, relArc{int32(e.U), int32(e.V), e.W}) // dist(e.U) <- dist(e.V) + w
		default: // undirected: both
			pairs = append(pairs, relArc{int32(e.V), int32(e.U), e.W}, relArc{int32(e.U), int32(e.V), e.W})
		}
	}
	slices.SortFunc(pairs, func(a, b relArc) int {
		if a.v != b.v {
			return int(a.v - b.v)
		}
		if a.u != b.u {
			return int(a.u - b.u)
		}
		switch {
		case a.w < b.w:
			return -1
		case a.w > b.w:
			return 1
		}
		return 0
	})
	// Collapse parallel arcs: after the sort the minimum weight comes first.
	w := 0
	for i := range pairs {
		if i == 0 || pairs[i].v != pairs[w-1].v || pairs[i].u != pairs[w-1].u {
			pairs[w] = pairs[i]
			w++
		}
	}
	pairs = pairs[:w]

	ra := &relAdj{
		relOff: make([]int32, n+1),
		relNbr: make([]int32, w),
		relW:   make([]int64, w),
		ntfOff: make([]int32, n+1),
		ntf:    make([]int32, w),
	}
	for _, p := range pairs {
		ra.relOff[p.v+1]++
		ra.ntfOff[p.u+1]++
	}
	for v := 0; v < n; v++ {
		ra.relOff[v+1] += ra.relOff[v]
		ra.ntfOff[v+1] += ra.ntfOff[v]
	}
	relFill := append([]int32(nil), ra.relOff[:n]...)
	ntfFill := append([]int32(nil), ra.ntfOff[:n]...)
	// pairs are sorted by (v, u), so both fills emit sorted rows.
	for _, p := range pairs {
		ra.relNbr[relFill[p.v]] = p.u
		ra.relW[relFill[p.v]] = p.w
		relFill[p.v]++
		ra.ntf[ntfFill[p.u]] = p.v
		ntfFill[p.u]++
	}
	return ra
}

// The relaxation structure depends only on (graph, mode) and is rebuilt for
// every SSSP otherwise — Step 1 alone runs n of them on the same graph — so
// a small cache keyed by graph identity pays for itself immediately. The
// graph's mutation counter is part of the key: any API-level mutation —
// AddEdge, SetEdgeWeight, RemoveEdge (the session update path mutates
// weights in place) — bumps it, so a stale entry can never be confused
// with the current topology or weights. Note the pointer keys pin the
// cached graphs (and their CSR arenas) until eviction; the cache is kept
// small so a process churning through many transient graphs retains at
// most a handful of them.
type adjKey struct {
	g       *graph.Graph
	mode    Mode
	version uint64
}

// The cache is shared by the source-sharded pipeline: every worker clone
// running an SSSP on the same (graph, mode) resolves to the same immutable
// relAdj, so the CSR relaxation structure is built once and read
// concurrently. The read path takes only an RLock; a miss upgrades to the
// write lock and re-checks, so concurrent first touches build at most once.
var (
	adjMu    sync.RWMutex
	adjCache = map[adjKey]*relAdj{}
)

func getRelAdj(g *graph.Graph, mode Mode) *relAdj {
	key := adjKey{g, mode, g.Version()}
	adjMu.RLock()
	ra, ok := adjCache[key]
	adjMu.RUnlock()
	if ok {
		return ra
	}
	adjMu.Lock()
	defer adjMu.Unlock()
	if ra, ok = adjCache[key]; ok {
		return ra // raced with another builder; reuse its structure
	}
	ra = buildRelAdj(g, mode)
	if len(adjCache) >= 8 {
		clear(adjCache) // bound retained memory; entries rebuild on demand
	}
	adjCache[key] = ra
	return ra
}

// stateKey keys the pooled per-network run state in the network's scratch
// registry.
type stateKey struct{}

// runState is the reusable per-network state of runBF: the Result whose
// vectors every run refills, the per-arc confirmation-wave labels, and the
// two protocol objects. Pooling it takes a warm-network SSSP re-run to zero
// allocations — the pipeline executes thousands of them per Network.
type runState struct {
	res       Result
	confirmed []bool     // pooled Confirmed backing (nil in label-only runs)
	nbrLabel  [][2]int64 // per-arc neighbor labels, aligned with ra.relNbr
	haveLabel []bool
	main      mainProto
	wave      waveProto
}

func (rs *runState) ensure(n, arcs int) {
	if len(rs.res.Dist) < n {
		rs.res.Dist = make([]int64, n)
		rs.res.Hops = make([]int, n)
		rs.res.Parent = make([]int, n)
		rs.confirmed = make([]bool, n)
	}
	rs.res.Dist = rs.res.Dist[:n]
	rs.res.Hops = rs.res.Hops[:n]
	rs.res.Parent = rs.res.Parent[:n]
	rs.confirmed = rs.confirmed[:n]
	if len(rs.nbrLabel) < arcs {
		rs.nbrLabel = make([][2]int64, arcs)
		rs.haveLabel = make([]bool, arcs)
	}
	rs.nbrLabel = rs.nbrLabel[:arcs]
	rs.haveLabel = rs.haveLabel[:arcs]
}

// Run computes the h-hop SSSP rooted at root, consuming exactly hops rounds
// on nw (the fixed schedule of Lemma A.4).
//
// The returned Result aliases per-network pooled storage: it is valid until
// the next bford run on the same Network (or worker clone). Callers that
// need the vectors longer copy them out, which every consumer in this
// repository already does. Run also resets nw's scratch arena, so it must
// not be called while slab checkouts from the same arena are still live;
// the *WithInit variants leave the arena alone for exactly that reason.
func Run(nw *congest.Network, g *graph.Graph, root, hops int, mode Mode) (*Result, error) {
	nw.Scratch().Reset()
	init := nw.Scratch().Int64sFilled(g.N, graph.Inf)
	init[root] = 0
	res, err := RunWithInit(nw, g, init, hops, mode)
	if err != nil {
		return nil, err
	}
	res.Root = root
	return res, nil
}

// RunLabels is Run without the tree-confirmation wave: only the distance
// labels are guaranteed (Parent pointers may be stale near the hop
// horizon, Confirmed is nil). Steps that consume distances but not tree
// structure (the per-blocker in-SSSPs of Step 3, the extension SSSPs of
// Step 7) use this cheaper schedule: hops+1 rounds. The result lifetime
// and scratch-reset behavior match Run.
func RunLabels(nw *congest.Network, g *graph.Graph, root, hops int, mode Mode) (*Result, error) {
	nw.Scratch().Reset()
	init := nw.Scratch().Int64sFilled(g.N, graph.Inf)
	init[root] = 0
	res, err := RunLabelsWithInit(nw, g, init, hops, mode)
	if err != nil {
		return nil, err
	}
	res.Root = root
	return res, nil
}

// RunWithInit computes hop-bounded shortest paths from the virtual source
// defined by the initial distance labels: init[v] < graph.Inf seeds node v.
// This is exactly the "extended h-hop shortest paths" primitive of Step 7
// (Section 5): blocker nodes are seeded with delta(x, c) and Bellman-Ford
// runs for the given number of hops. Root is -1 in the result.
//
// init may be backed by nw's scratch arena (the arena is not reset here),
// and the returned Result aliases pooled per-network storage valid until
// the next bford run on the same Network.
func RunWithInit(nw *congest.Network, g *graph.Graph, init []int64, hops int, mode Mode) (*Result, error) {
	return runBF(nw, g, init, hops, mode, true)
}

// RunLabelsWithInit is RunWithInit without the tree-confirmation wave; see
// RunLabels.
func RunLabelsWithInit(nw *congest.Network, g *graph.Graph, init []int64, hops int, mode Mode) (*Result, error) {
	return runBF(nw, g, init, hops, mode, false)
}

func runBF(nw *congest.Network, g *graph.Graph, init []int64, hops int, mode Mode, confirm bool) (*Result, error) {
	if len(init) != g.N {
		return nil, fmt.Errorf("bford: init length %d != n %d", len(init), g.N)
	}
	ra := getRelAdj(g, mode)
	n := g.N
	rs := congest.ScratchState(nw.Scratch(), stateKey{}, func() *runState { return new(runState) })
	rs.ensure(n, len(ra.relNbr))
	res := &rs.res
	res.Root = -1
	res.Mode = mode
	res.Confirmed = nil
	for v := 0; v < n; v++ {
		res.Dist[v] = init[v]
		res.Parent[v] = -1
		if init[v] < graph.Inf {
			res.Hops[v] = 0
		} else {
			res.Hops[v] = -1
		}
	}

	rs.main = mainProto{res: res, ra: ra, hops: hops}
	// The schedule takes hops+1 rounds: seeds send at round 0, labels at hop
	// distance r settle at round r, and the final round only receives.
	if err := nw.RunFor(&rs.main, hops+1); err != nil {
		return nil, fmt.Errorf("bford: %s-SSSP: %w", mode, err)
	}
	if !confirm {
		return res, nil
	}

	// Tree confirmation wave (hops+2 extra rounds). Near the hop horizon,
	// final lexicographic labels need not compose into a tree: a node's
	// recorded parent may have since improved to a smaller-distance,
	// larger-hop label whose own extension was cut off by the horizon.
	// The wave retains exactly the nodes whose label composes through a
	// confirmed parent chain back to a seed: every node announces its final
	// label, seeds confirm first, and a node at hop level k confirms at
	// round k+1 through the smallest-id confirmed neighbor u with
	// (dist_u + w, hops_u + 1) equal to its own label. Nodes realizing
	// true shortest paths within the horizon always confirm (shortest-path
	// prefixes are shortest and their minimum hop counts telescope), which
	// is the containment property CSSSP needs; hop-limited fringe labels
	// that no longer compose are left out of the tree (their Dist values
	// remain valid hop-bounded distances).
	res.Confirmed = rs.confirmed
	clear(res.Confirmed)
	// Neighbor labels are stored per relaxation arc in a flat arena aligned
	// with ra.relNbr (the sender of a kindFinal/kindConfirm message always
	// has an arc into the receiver: that is exactly who notify() reaches).
	clear(rs.haveLabel)
	rs.wave = waveProto{rs: rs, ra: ra, hops: hops}
	if err := nw.RunFor(&rs.wave, hops+2); err != nil {
		return nil, fmt.Errorf("bford: %s-SSSP confirmation wave: %w", mode, err)
	}
	for v := 0; v < n; v++ {
		if !res.Confirmed[v] && res.Hops[v] > 0 {
			res.Parent[v] = -1
		}
	}
	return res, nil
}

const (
	kindLabel   uint8 = 7
	kindFinal   uint8 = 8
	kindConfirm uint8 = 9
)

// mainProto is the relaxation schedule of runBF as a reusable protocol
// object (one per pooled runState, so repeated runs allocate nothing).
type mainProto struct {
	res  *Result
	ra   *relAdj
	hops int
}

// Step implements congest.Proto: relax labels received this round (sent by
// neighbors last round), then forward our label in the same round if it
// improved, so each hop costs one round. Relaxation is order-independent;
// parent tie-breaks are resolved explicitly by (dist, hops, id).
func (p *mainProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	res, ra := p.res, p.ra
	improved := round == 0 && res.Hops[v] == 0 // seeds announce at round 0
	for _, m := range in {
		if m.Kind != kindLabel {
			continue
		}
		w := ra.weight(v, m.From)
		if w < 0 {
			continue // label from a neighbor with no relaxation arc to v
		}
		nd, nh := m.A+w, int(m.B)+1
		if better(nd, nh, m.From, res.Dist[v], res.Hops[v], res.Parent[v]) {
			res.Dist[v], res.Hops[v], res.Parent[v] = nd, nh, m.From
			improved = true
		}
	}
	if improved && round < p.hops {
		for _, u := range ra.notify(v) {
			send(congest.Message{To: int(u), Kind: kindLabel, A: res.Dist[v], B: int64(res.Hops[v])})
		}
	}
	return round >= p.hops
}

// waveProto is the tree-confirmation wave of runBF (see the comment in
// runBF for the protocol's correctness argument).
type waveProto struct {
	rs   *runState
	ra   *relAdj
	hops int
}

// Step implements congest.Proto.
func (p *waveProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	rs, ra := p.rs, p.ra
	res := &rs.res
	for _, m := range in {
		switch m.Kind {
		case kindFinal:
			if ai := ra.arcIndex(v, m.From); ai >= 0 {
				rs.nbrLabel[ai] = [2]int64{m.A, m.B}
				rs.haveLabel[ai] = true
			}
		case kindConfirm:
			if res.Hops[v] == round-1 {
				ai := ra.arcIndex(v, m.From)
				if ai < 0 || !rs.haveLabel[ai] {
					continue
				}
				lbl, w := rs.nbrLabel[ai], ra.relW[ai]
				if lbl[0]+w == res.Dist[v] && int(lbl[1])+1 == res.Hops[v] {
					if !res.Confirmed[v] || m.From < res.Parent[v] {
						res.Confirmed[v] = true
						res.Parent[v] = m.From
					}
				}
			}
		}
	}
	// Messages within one round arrive together, so re-scan for the
	// smallest-id confirming sender (the loop above may have set a
	// larger id first); handled by the m.From < Parent check.
	switch {
	case round == 0:
		if res.Hops[v] >= 0 {
			for _, u := range ra.notify(v) {
				send(congest.Message{To: int(u), Kind: kindFinal, A: res.Dist[v], B: int64(res.Hops[v])})
			}
		}
	case round == 1 && res.Hops[v] == 0:
		res.Confirmed[v] = true
		res.Parent[v] = -1
		for _, u := range ra.notify(v) {
			send(congest.Message{To: int(u), Kind: kindConfirm})
		}
	case round >= 2 && res.Confirmed[v] && res.Hops[v] == round-1:
		for _, u := range ra.notify(v) {
			send(congest.Message{To: int(u), Kind: kindConfirm})
		}
	}
	return round >= p.hops+1
}

// better reports whether label (d1,h1) with parent p1 beats (d2,h2,p2)
// lexicographically: smaller distance, then fewer hops, then smaller parent
// id. Unreachable labels (h == -1) always lose to reachable ones.
func better(d1 int64, h1 int, p1 int, d2 int64, h2 int, p2 int) bool {
	if d1 != d2 {
		return d1 < d2
	}
	if h2 == -1 {
		return h1 != -1
	}
	if h1 == -1 {
		return false
	}
	if h1 != h2 {
		return h1 < h2
	}
	// Equal (dist, hops): prefer the smaller parent id. A node with hops 0
	// is a seed and never re-parents (incoming labels have hops >= 1, so
	// they differ in the hop component and are handled above).
	return p1 < p2
}
