package bford

import (
	"math/rand"
	"testing"
	"testing/quick"

	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
)

func newNet(t *testing.T, g *graph.Graph) *congest.Network {
	t.Helper()
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestOutSSSPMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for _, dir := range []bool{false, true} {
			g := graph.RandomConnected(graph.GenConfig{N: 25, Directed: dir, Seed: seed, MaxWeight: 12}, 70)
			nw := newNet(t, g)
			for _, h := range []int{1, 3, g.N - 1} {
				for src := 0; src < g.N; src += 7 {
					res, err := Run(nw, g, src, h, Out)
					if err != nil {
						t.Fatal(err)
					}
					want := graph.BellmanFordHops(g, src, h)
					for v := 0; v < g.N; v++ {
						if res.Dist[v] != want[v] {
							t.Fatalf("seed=%d dir=%v h=%d src=%d: dist[%d]=%d, want %d",
								seed, dir, h, src, v, res.Dist[v], want[v])
						}
					}
				}
			}
		}
	}
}

func TestInSSSPMatchesReversedOracle(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.RandomConnected(graph.GenConfig{N: 20, Directed: true, Seed: seed, MaxWeight: 9}, 60)
		rev := g.Reverse()
		nw := newNet(t, g)
		for _, h := range []int{2, 5, g.N - 1} {
			for root := 0; root < g.N; root += 5 {
				res, err := Run(nw, g, root, h, In)
				if err != nil {
					t.Fatal(err)
				}
				// delta_h(v, root) in g equals delta_h(root, v) in reverse(g).
				want := graph.BellmanFordHops(rev, root, h)
				for v := 0; v < g.N; v++ {
					if res.Dist[v] != want[v] {
						t.Fatalf("seed=%d h=%d root=%d: in-dist[%d]=%d, want %d",
							seed, h, root, v, res.Dist[v], want[v])
					}
				}
			}
		}
	}
}

func TestHopBoundRespected(t *testing.T) {
	// 0 -> 1 -> 2 (1+1) vs direct 0 -> 2 (10).
	g := graph.New(3, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 10)
	nw := newNet(t, g)
	r1, err := Run(nw, g, 0, 1, Out)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Dist[2] != 10 {
		t.Errorf("1-hop dist[2] = %d, want 10", r1.Dist[2])
	}
	r2, _ := Run(nw, g, 0, 2, Out)
	if r2.Dist[2] != 2 {
		t.Errorf("2-hop dist[2] = %d, want 2", r2.Dist[2])
	}
}

func TestParentTreeRealizesDistances(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 30, Directed: true, Seed: 7, MaxWeight: 15}, 90)
	nw := newNet(t, g)
	h := 6
	res, err := Run(nw, g, 0, h, Out)
	if err != nil {
		t.Fatal(err)
	}
	// Edge-weight lookup (min over parallel edges u->v).
	wOf := func(u, v int) int64 {
		best := graph.Inf
		g.OutNeighbors(u, func(x int, w int64) {
			if x == v && w < best {
				best = w
			}
		})
		return best
	}
	for v := 0; v < g.N; v++ {
		if res.Hops[v] <= 0 {
			continue
		}
		p := res.Parent[v]
		if p < 0 {
			t.Fatalf("node %d reachable (hops %d) but no parent", v, res.Hops[v])
		}
		if res.Hops[p] != res.Hops[v]-1 {
			t.Errorf("hops[%d]=%d but parent %d has hops %d", v, res.Hops[v], p, res.Hops[p])
		}
		if res.Dist[p]+wOf(p, v) != res.Dist[v] {
			t.Errorf("dist[%d]=%d != dist[parent %d]=%d + w=%d", v, res.Dist[v], p, res.Dist[p], wOf(p, v))
		}
	}
}

func TestMinHopAmongMinWeight(t *testing.T) {
	// Two shortest 0->3 paths of weight 2: 0-1-3 (2 hops) and 0-1-2-3 with a
	// zero-weight edge (3 hops). The label must report 2 hops.
	g := graph.New(4, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(1, 2, 0)
	g.MustAddEdge(2, 3, 1)
	nw := newNet(t, g)
	res, err := Run(nw, g, 0, 3, Out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[3] != 2 || res.Hops[3] != 2 {
		t.Errorf("label at 3 = (%d,%d), want (2,2)", res.Dist[3], res.Hops[3])
	}
}

func TestZeroWeightEdges(t *testing.T) {
	g := graph.ZeroWeightMix(graph.GenConfig{N: 22, Directed: true, Seed: 13, MaxWeight: 8}, 66)
	nw := newNet(t, g)
	h := 5
	for src := 0; src < g.N; src += 3 {
		res, err := Run(nw, g, src, h, Out)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.BellmanFordHops(g, src, h)
		for v := 0; v < g.N; v++ {
			if res.Dist[v] != want[v] {
				t.Fatalf("src=%d dist[%d]=%d, want %d", src, v, res.Dist[v], want[v])
			}
		}
	}
}

func TestRunWithInitSeedsMultipleSources(t *testing.T) {
	// Virtual-source BF: seeding nodes 0 and 4 with given offsets must give
	// min over seeds of (offset + distance).
	g := graph.Ring(graph.GenConfig{N: 8, Seed: 3, MaxWeight: 5})
	nw := newNet(t, g)
	init := make([]int64, g.N)
	for i := range init {
		init[i] = graph.Inf
	}
	init[0] = 7
	init[4] = 0
	res, err := RunWithInit(nw, g, init, g.N, Out)
	if err != nil {
		t.Fatal(err)
	}
	d0 := graph.Dijkstra(g, 0)
	d4 := graph.Dijkstra(g, 4)
	for v := 0; v < g.N; v++ {
		want := min64(7+d0[v], d4[v])
		if res.Dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, res.Dist[v], want)
		}
	}
}

func TestRunWithInitLengthMismatch(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 5, Seed: 1, MaxWeight: 2})
	nw := newNet(t, g)
	if _, err := RunWithInit(nw, g, make([]int64, 3), 2, Out); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRoundBudgetLinearInHops(t *testing.T) {
	// The fixed schedule is (hops+1) relaxation rounds plus a (hops+2)-round
	// tree-confirmation wave: 2*hops+3 total (still O(h), Lemma A.4).
	g := graph.Ring(graph.GenConfig{N: 10, Seed: 1, MaxWeight: 3})
	nw := newNet(t, g)
	if _, err := Run(nw, g, 0, 7, Out); err != nil {
		t.Fatal(err)
	}
	if nw.Stats.Rounds != 2*7+3 {
		t.Errorf("rounds = %d, want 2*hops+3 = 17", nw.Stats.Rounds)
	}
}

func TestDeterministicRepeatRuns(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 35, Directed: true, Seed: 21, MaxWeight: 10}, 100)
	run := func() *Result {
		nw := newNet(t, g)
		res, err := Run(nw, g, 4, 6, Out)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for v := 0; v < g.N; v++ {
		if a.Dist[v] != b.Dist[v] || a.Hops[v] != b.Hops[v] || a.Parent[v] != b.Parent[v] {
			t.Fatalf("node %d: runs differ: (%d,%d,%d) vs (%d,%d,%d)",
				v, a.Dist[v], a.Hops[v], a.Parent[v], b.Dist[v], b.Hops[v], b.Parent[v])
		}
	}
}

// Property test: distributed h-hop distances always match the sequential
// oracle on random graphs.
func TestQuickDistributedMatchesOracle(t *testing.T) {
	f := func(seed int64, nRaw, hRaw uint8, directed bool) bool {
		n := 6 + int(nRaw%20)
		h := 1 + int(hRaw%uint8(n))
		g := graph.RandomConnected(graph.GenConfig{N: n, Directed: directed, Seed: seed, MaxWeight: 20}, 3*n)
		nw, err := congest.NewNetwork(g, 1)
		if err != nil {
			return false
		}
		src := int(uint(seed) % uint(n))
		res, err := Run(nw, g, src, h, Out)
		if err != nil {
			return false
		}
		want := graph.BellmanFordHops(g, src, h)
		for v := 0; v < n; v++ {
			if res.Dist[v] != want[v] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestRunLabelsSkipsWave(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 10, Seed: 2, MaxWeight: 3})
	nw := newNet(t, g)
	res, err := RunLabels(nw, g, 0, 5, Out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed != nil {
		t.Error("RunLabels populated Confirmed")
	}
	if nw.Stats.Rounds != 6 {
		t.Errorf("label-only rounds = %d, want hops+1 = 6", nw.Stats.Rounds)
	}
	want := graph.BellmanFordHops(g, 0, 5)
	for v := 0; v < g.N; v++ {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
}

func TestConfirmedChainsAlwaysTelescope(t *testing.T) {
	// The confirmation wave's contract: every confirmed node's parent chain
	// telescopes exactly in both dist and hops.
	for seed := int64(0); seed < 6; seed++ {
		g := graph.RandomConnected(graph.GenConfig{N: 28, Directed: true, Seed: seed, MaxWeight: 10}, 90)
		nw := newNet(t, g)
		res, err := Run(nw, g, int(seed)%g.N, 6, Out)
		if err != nil {
			t.Fatal(err)
		}
		wOf := func(u, v int) int64 {
			best := graph.Inf
			g.OutNeighbors(u, func(x int, w int64) {
				if x == v && w < best {
					best = w
				}
			})
			return best
		}
		for v := 0; v < g.N; v++ {
			if !res.Confirmed[v] || res.Hops[v] <= 0 {
				continue
			}
			p := res.Parent[v]
			if p < 0 || !res.Confirmed[p] {
				t.Fatalf("seed %d: confirmed node %d has unconfirmed parent %d", seed, v, p)
			}
			if res.Hops[p] != res.Hops[v]-1 || res.Dist[p]+wOf(p, v) != res.Dist[v] {
				t.Fatalf("seed %d: chain broken at %d", seed, v)
			}
		}
	}
}

func TestConfirmedCoversTrueShortestWithinHorizon(t *testing.T) {
	// Nodes whose true shortest path fits in the horizon must confirm.
	g := graph.RandomConnected(graph.GenConfig{N: 24, Seed: 7, MaxWeight: 8}, 70)
	nw := newNet(t, g)
	h := 5
	src := 3
	res, err := Run(nw, g, src, h, Out)
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Dijkstra(g, src)
	minhop := graph.HopsOnShortestPath(g, src)
	for v := 0; v < g.N; v++ {
		if full[v] < graph.Inf && minhop[v] >= 0 && minhop[v] <= h {
			if !res.Confirmed[v] {
				t.Errorf("node %d (minhop %d <= %d) not confirmed", v, minhop[v], h)
			}
			if res.Dist[v] != full[v] {
				t.Errorf("node %d dist %d != true %d", v, res.Dist[v], full[v])
			}
		}
	}
}

func TestInModeParentIsForwardEdge(t *testing.T) {
	// In-tree parents are successors: v -> Parent[v] must be a real edge.
	g := graph.RandomConnected(graph.GenConfig{N: 20, Directed: true, Seed: 8, MaxWeight: 8}, 70)
	nw := newNet(t, g)
	res, err := Run(nw, g, 5, 6, In)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		if res.Confirmed == nil || !res.Confirmed[v] || res.Hops[v] <= 0 {
			continue
		}
		ok := false
		g.OutNeighbors(v, func(u int, _ int64) {
			if u == res.Parent[v] {
				ok = true
			}
		})
		if !ok {
			t.Errorf("in-tree parent %d of %d is not a forward edge", res.Parent[v], v)
		}
	}
}
