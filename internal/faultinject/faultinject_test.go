package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestErrorRuleMatchesStageRoundSubRun(t *testing.T) {
	in := New(1, Rule{Hook: HookRound, Stage: "step3-insssp", Round: 2, SubRun: 1})

	in.SetStage("step1-csssp")
	if err := in.FireRound(1, 2); err != nil {
		t.Fatalf("fired in wrong stage: %v", err)
	}
	in.SetStage("step3-insssp")
	if err := in.FireRound(1, 1); err != nil {
		t.Fatalf("fired on wrong round: %v", err)
	}
	if err := in.FireRound(0, 2); err != nil {
		t.Fatalf("fired on wrong sub-run: %v", err)
	}
	err := in.FireRound(1, 2)
	if err == nil {
		t.Fatal("matching hook did not fire")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InjectedError, got %T: %v", err, err)
	}
	if ie.Stage != "step3-insssp" || ie.Round != 2 || ie.SubRun != 1 || ie.Hook != HookRound {
		t.Fatalf("bad tags: %+v", ie)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("does not unwrap to ErrInjected: %v", err)
	}
	if got := in.Fired(); got != 1 {
		t.Fatalf("Fired() = %d, want 1", got)
	}
}

func TestCustomErrUnwrap(t *testing.T) {
	boom := errors.New("boom")
	in := New(1, Rule{Hook: HookSubRun, SubRun: RoundAny, Err: boom})
	err := in.FireSubRun(7)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom via Unwrap, got %v", err)
	}
	if errors.Is(err, ErrInjected) {
		t.Fatalf("custom Err should replace ErrInjected: %v", err)
	}
}

func TestOnceDisarmsAndResetRearms(t *testing.T) {
	in := New(1, Rule{Hook: HookRound, Round: RoundAny, SubRun: RoundAny, Once: true})
	if err := in.FireRound(-1, 0); err == nil {
		t.Fatal("first match did not fire")
	}
	if err := in.FireRound(-1, 1); err != nil {
		t.Fatalf("Once rule fired twice: %v", err)
	}
	in.Reset()
	if in.Fired() != 0 {
		t.Fatal("Reset did not zero the fired counter")
	}
	if err := in.FireRound(-1, 0); err == nil {
		t.Fatal("Reset did not re-arm the Once rule")
	}
}

func TestPanicRule(t *testing.T) {
	in := New(1, Rule{Hook: HookSubRun, Kind: Panic, SubRun: 3})
	if err := in.FireSubRun(2); err != nil {
		t.Fatalf("fired on wrong sub-run: %v", err)
	}
	defer func() {
		v := recover()
		ip, ok := v.(*InjectedPanic)
		if !ok {
			t.Fatalf("want *InjectedPanic, got %T (%v)", v, v)
		}
		if ip.SubRun != 3 || ip.Hook != HookSubRun {
			t.Fatalf("bad panic tags: %+v", ip)
		}
	}()
	in.SetStage("step7-extend")
	in.FireSubRun(3)
	t.Fatal("unreachable: FireSubRun should have panicked")
}

func TestDelayRule(t *testing.T) {
	in := New(1, Rule{Hook: HookRound, Round: RoundAny, SubRun: RoundAny, Kind: Delay, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := in.FireRound(-1, 0); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delay too short: %v", elapsed)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestProbabilisticRuleIsSeeded(t *testing.T) {
	fires := func(seed int64) []bool {
		in := New(seed, Rule{Hook: HookRound, Round: RoundAny, SubRun: RoundAny, Prob: 0.5})
		var got []bool
		for i := 0; i < 32; i++ {
			got = append(got, in.FireRound(-1, i) != nil)
		}
		return got
	}
	a, b := fires(42), fires(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	any := false
	for _, f := range a {
		any = any || f
	}
	if !any {
		t.Fatal("p=0.5 rule never fired in 32 draws")
	}
}
