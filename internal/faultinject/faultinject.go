// Package faultinject is a deterministic fault-injection harness for the
// CONGEST execution stack. A seeded Injector holds trigger rules keyed on
// (stage, round, sub-run); the engine's round loop and the ShardRuns
// dispatcher consult an explicitly-armed injector (one nil-check when
// disarmed — see congest.FaultInjector) and a matching rule then fires a
// forced error, a panic, or a synthetic delay at exactly that point of the
// computation. Because the pipeline's stage schedule, round counts, and
// sub-run dispatch order are deterministic, a rule fires at the same place
// on every run: the fault matrix in internal/core sweeps these rules across
// every profile and exec mode and asserts bit-identical recovery.
//
// The injector is a test instrument. Production code never arms one, so the
// only cost it imposes on a real run is the disarmed nil-check.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Hook identifies the instrumentation point a rule attaches to.
type Hook int

const (
	// HookRound fires inside the engine's round loop, before the round
	// executes (the same point that observes context cancellation).
	HookRound Hook = iota
	// HookSubRun fires at the start of a ShardRuns sub-run, before the
	// sub-run body executes.
	HookSubRun
)

func (h Hook) String() string {
	if h == HookSubRun {
		return "subrun"
	}
	return "round"
}

// Kind selects what a triggered rule does.
type Kind int

const (
	// Error makes the hook return a forced error (Rule.Err, or ErrInjected
	// when unset) wrapped in *InjectedError.
	Error Kind = iota
	// Panic makes the hook panic with *InjectedPanic (or Rule.Value when
	// set), exercising the recovery paths.
	Panic
	// Delay makes the hook sleep for Rule.Delay and then continue; paired
	// with a context deadline it bounds cancellation latency in tests.
	Delay
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	}
	return "error"
}

// ErrInjected is the sentinel under every forced error whose rule did not
// supply its own Err: errors.Is(err, ErrInjected) identifies synthetic
// failures.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule is one trigger: it matches an instrumentation point by
// (stage, round, sub-run) and fires its Kind there. "" / RoundAny / -1 are
// wildcards for the three match fields respectively; note the zero-value
// Round and SubRun match index 0 exactly, not any index.
type Rule struct {
	// Hook is the instrumentation point (HookRound or HookSubRun).
	Hook Hook
	// Stage matches the executing pipeline stage name ("" = any stage).
	Stage string
	// Round matches the engine round index within the current protocol
	// execution (RoundAny = any round). Only HookRound rules see rounds.
	Round int
	// SubRun matches the ShardRuns sub-run index (-1 = any). For HookRound
	// rules this is the sub-run the executing network is serving, or -1
	// outside sharded dispatch.
	SubRun int
	// Kind is the fault to fire.
	Kind Kind
	// Err overrides the forced error for Kind Error (nil = ErrInjected).
	Err error
	// Value overrides the panic value for Kind Panic (nil = *InjectedPanic).
	Value any
	// Delay is the sleep duration for Kind Delay.
	Delay time.Duration
	// Prob, when in (0, 1), fires the rule with that probability per match,
	// drawn from the injector's seeded generator (0 or 1 = always fire).
	// Probabilistic rules are only deterministic under sequential dispatch,
	// where the draw order is fixed.
	Prob float64
	// Once disarms the rule after its first firing, so a recovered session
	// can re-run clean without rebuilding the injector.
	Once bool
}

// RoundAny is the wildcard Round value (any round). -1 works too; the named
// constant reads better in rule tables.
const RoundAny = -1

// InjectedError is the error returned by a fired Error rule, tagged with
// where it fired. It unwraps to Rule.Err (or ErrInjected).
type InjectedError struct {
	Stage  string
	Round  int
	SubRun int
	Hook   Hook
	err    error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: forced error at %s hook (stage %q, round %d, sub-run %d): %v",
		e.Hook, e.Stage, e.Round, e.SubRun, e.err)
}

func (e *InjectedError) Unwrap() error { return e.err }

// InjectedPanic is the default panic value of a fired Panic rule.
type InjectedPanic struct {
	Stage  string
	Round  int
	SubRun int
	Hook   Hook
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s hook (stage %q, round %d, sub-run %d)",
		p.Hook, p.Stage, p.Round, p.SubRun)
}

// rule pairs a Rule with its runtime disarm state. The atomic flag makes
// Once exact even when several workers match the same wildcard rule
// concurrently: exactly one CompareAndSwap wins.
type rule struct {
	Rule
	disarmed atomic.Bool
}

// Injector is a set of armed rules plus the stage cursor the executor
// advances. It satisfies congest.FaultInjector. One Injector may be shared
// by a whole clone fleet: FireRound/FireSubRun are safe for concurrent use,
// and SetStage is called only between stages (the executor's goroutine-
// start/join edges order it against every worker).
type Injector struct {
	rules []*rule
	stage string
	fired atomic.Int64

	mu  sync.Mutex // guards rng (only taken for probabilistic rules)
	rng *rand.Rand
}

// New returns an Injector armed with rules. The seed drives probabilistic
// rules only; rule matching itself is exact and deterministic.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		rc := &rule{Rule: r}
		in.rules = append(in.rules, rc)
	}
	return in
}

// SetStage records the pipeline stage about to execute; subsequent hook
// firings match against it. Called by the executor between stages.
func (in *Injector) SetStage(stage string) { in.stage = stage }

// Stage returns the current stage cursor (test introspection).
func (in *Injector) Stage() string { return in.stage }

// Fired returns how many rules have fired so far (test assertions).
func (in *Injector) Fired() int64 { return in.fired.Load() }

// Reset re-arms every Once rule and zeroes the fired counter, so one
// injector can be reused across fault-matrix cells.
func (in *Injector) Reset() {
	for _, r := range in.rules {
		r.disarmed.Store(false)
	}
	in.fired.Store(0)
	in.stage = ""
}

// FireRound implements congest.FaultInjector: called by the engine before
// each round with the executing network's sub-run index (-1 outside sharded
// dispatch) and the round index within the current protocol execution.
func (in *Injector) FireRound(subrun, round int) error {
	return in.fire(HookRound, subrun, round)
}

// FireSubRun implements congest.FaultInjector: called by ShardRuns at the
// start of sub-run i, before its body runs.
func (in *Injector) FireSubRun(subrun int) error {
	return in.fire(HookSubRun, subrun, RoundAny)
}

func (in *Injector) fire(h Hook, subrun, round int) error {
	for _, r := range in.rules {
		if r.Hook != h || r.disarmed.Load() {
			continue
		}
		if r.Stage != "" && r.Stage != in.stage {
			continue
		}
		if r.Round >= 0 && h == HookRound && r.Round != round {
			continue
		}
		if r.SubRun >= 0 && r.SubRun != subrun {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && !in.draw(r.Prob) {
			continue
		}
		if r.Once && !r.disarmed.CompareAndSwap(false, true) {
			continue // another worker won the disarm race
		}
		in.fired.Add(1)
		switch r.Kind {
		case Panic:
			if r.Value != nil {
				panic(r.Value)
			}
			panic(&InjectedPanic{Stage: in.stage, Round: round, SubRun: subrun, Hook: h})
		case Delay:
			time.Sleep(r.Delay)
		default:
			cause := r.Err
			if cause == nil {
				cause = ErrInjected
			}
			return &InjectedError{Stage: in.stage, Round: round, SubRun: subrun, Hook: h, err: cause}
		}
	}
	return nil
}

// draw samples the seeded generator under the mutex (probabilistic rules
// only, never on the exact-match fast path).
func (in *Injector) draw(p float64) bool {
	in.mu.Lock()
	ok := in.rng.Float64() < p
	in.mu.Unlock()
	return ok
}
