package blocker

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
)

// computeGreedy is the blocker construction of Agarwal et al. [2]: after an
// O(|S|*h)-round score computation, repeatedly add the globally
// max-score node. [2] shows the per-pick cleanup (removing the covered
// paths and updating every score along the union in-/out-trees of the pick,
// Lemmas A.5/A.6) costs O(n) rounds; we apply the update locally and charge
// those rounds, while the per-pick score broadcast is simulated. The result
// has the optimal-greedy size Theta(n ln p / h) (Lemma 3.10) but costs
// O(|S|*h + n*|Q|) rounds — the n*|Q| term this paper's Algorithm 2'
// removes.
func computeGreedy(nw *congest.Network, coll *csssp.Collection) (*Result, error) {
	n := nw.N()
	roundsBefore := nw.Stats.Rounds
	tree, err := broadcast.BuildBFS(nw, 0)
	if err != nil {
		return nil, err
	}
	// Initial scores: one upcast per tree (O(|S|*h) rounds).
	score := make([]int64, n)
	init := make([]int64, n)
	for i := range coll.Sources {
		for v := 0; v < n; v++ {
			if coll.InTree(i, v) && coll.Depth[i][v] == coll.H {
				init[v] = 1
			} else {
				init[v] = 0
			}
		}
		counts, err := coll.UpcastSum(nw, i, init)
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			if v != coll.Sources[i] && coll.InTree(i, v) {
				score[v] += counts[v]
			}
		}
	}
	inQ := make([]bool, n)
	var q []int
	stats := Stats{}
	for countFullPaths(coll) > 0 {
		// Broadcast scores, pick the max (ties to the smaller id).
		perNode := make([][]broadcast.Item, n)
		for v := 0; v < n; v++ {
			if score[v] > 0 {
				perNode[v] = []broadcast.Item{{A: int64(v), B: score[v]}}
			}
		}
		if _, err := broadcast.AllToAll(nw, tree, perNode); err != nil {
			return nil, err
		}
		best, bestVal := -1, int64(0)
		for v := 0; v < n; v++ {
			if score[v] > bestVal {
				best, bestVal = v, score[v]
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("blocker: greedy stuck with %d paths uncovered", countFullPaths(coll))
		}
		inQ[best] = true
		q = append(q, best)
		stats.SelectionSteps++
		// Cleanup: remove the pick's subtrees and refresh scores. [2]
		// implements this in O(n) rounds per pick via the CSSSP union-tree
		// structure; we apply the same update locally and charge n rounds.
		inZ := make([]bool, n)
		inZ[best] = true
		coll.RemoveSubtreesLocal(inZ, true)
		nw.ChargeRounds(n)
		recomputeScoresLocal(coll, score)
	}
	stats.Rounds = nw.Stats.Rounds - roundsBefore
	sort.Ints(q)
	return &Result{Q: q, InQ: inQ, Stats: stats}, nil
}

// recomputeScoresLocal refreshes score from the collection's current state
// (the local mirror of the O(n)-round update of [2]).
func recomputeScoresLocal(coll *csssp.Collection, score []int64) {
	for v := range score {
		score[v] = 0
	}
	for i := range coll.Sources {
		for _, leaf := range coll.FullLengthLeaves(i) {
			for _, u := range coll.PathVertices(i, leaf) {
				score[u]++
			}
		}
	}
}

// computeRandomSample is the classic sampling construction used by the
// randomized APSP algorithms [13, 20]: include each node with probability
// min(1, c*ln(n)/h), verify coverage with one downcast per tree, and patch
// any uncovered path by adding its leaf. O(|S|*h + n) rounds; |Q| =
// O((n/h) log n) w.h.p.
func computeRandomSample(nw *congest.Network, coll *csssp.Collection, par Params) (*Result, error) {
	n := nw.N()
	roundsBefore := nw.Stats.Rounds
	tree, err := broadcast.BuildBFS(nw, 0)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(par.Seed))
	p := math.Log(float64(n)+1) / float64(coll.H)
	if p > 1 {
		p = 1
	}
	inQ := make([]bool, n)
	for v := 0; v < n; v++ {
		if rng.Float64() < p {
			inQ[v] = true
		}
	}
	// Members broadcast their ids (O(n)).
	items := make([][]broadcast.Item, n)
	for v := 0; v < n; v++ {
		if inQ[v] {
			items[v] = []broadcast.Item{{A: int64(v)}}
		}
	}
	if _, err := broadcast.AllToAll(nw, tree, items); err != nil {
		return nil, err
	}
	// Coverage check: Compute-Pi downcast per tree with V_i := Q; leaves
	// with beta == 0 are uncovered and patch themselves in.
	var patched [][]broadcast.Item
	patched = make([][]broadcast.Item, n)
	stats := Stats{}
	for i := range coll.Sources {
		beta, err := computePijDowncast(nw, coll, i, inQ)
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			if coll.InTree(i, v) && coll.Depth[i][v] == coll.H && beta[v] == 0 && !inQ[v] {
				inQ[v] = true
				patched[v] = []broadcast.Item{{A: int64(v)}}
				stats.FallbackSteps++
			}
		}
	}
	if _, err := broadcast.AllToAll(nw, tree, patched); err != nil {
		return nil, err
	}
	var q []int
	for v := 0; v < n; v++ {
		if inQ[v] {
			q = append(q, v)
		}
	}
	stats.Rounds = nw.Stats.Rounds - roundsBefore
	return &Result{Q: q, InQ: inQ, Stats: stats}, nil
}
