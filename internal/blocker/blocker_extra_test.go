package blocker

import (
	"math/rand"
	"testing"
	"testing/quick"

	"congestapsp/internal/bford"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
)

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Eps != 1.0/12 || p.Delta != 1.0/12 {
		t.Errorf("defaults eps=%v delta=%v, want 1/12", p.Eps, p.Delta)
	}
	if p.SampleMult != 4 {
		t.Errorf("default SampleMult = %d, want 4", p.SampleMult)
	}
	// Out-of-range values reset to the paper defaults.
	p = Params{Eps: 0.9, Delta: -1}.withDefaults()
	if p.Eps != 1.0/12 || p.Delta != 1.0/12 {
		t.Errorf("out-of-range not clamped: eps=%v delta=%v", p.Eps, p.Delta)
	}
	// In-range experimentation values survive.
	p = Params{Eps: 0.25, Delta: 0.5}.withDefaults()
	if p.Eps != 0.25 || p.Delta != 0.5 {
		t.Errorf("valid values clobbered: eps=%v delta=%v", p.Eps, p.Delta)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		Deterministic: "deterministic",
		Randomized:    "randomized",
		Greedy:        "greedy",
		RandomSample:  "randomsample",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestHEqualsOne(t *testing.T) {
	// h = 1: every edge of a tree is a full-length path; the blocker must
	// be a "dominating-ish" set covering every depth-1 child.
	g := graph.RandomConnected(graph.GenConfig{N: 14, Seed: 31, MaxWeight: 5}, 40)
	coll, nw := buildColl(t, g, 1, bford.Out)
	res, err := Compute(nw, coll, Params{Mode: Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstFresh(t, g, 1, bford.Out, res)
}

func TestMaxSelectionStepsCap(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 16, Seed: 32, MaxWeight: 5})
	coll, nw := buildColl(t, g, 3, bford.Out)
	_, err := Compute(nw, coll, Params{Mode: Deterministic, MaxSelectionSteps: -1})
	// A negative cap cannot be hit the normal way because withDefaults only
	// replaces 0; -1 trips on the first step.
	if err == nil {
		t.Error("negative selection-step cap not enforced")
	}
}

func TestInQMatchesQ(t *testing.T) {
	g := graph.Grid(3, 6, graph.GenConfig{Seed: 33, MaxWeight: 8})
	coll, nw := buildColl(t, g, 3, bford.Out)
	res, err := Compute(nw, coll, Params{Mode: Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for v, in := range res.InQ {
		if in {
			count++
			found := false
			for _, q := range res.Q {
				if q == v {
					found = true
				}
			}
			if !found {
				t.Errorf("InQ[%d] set but %d not in Q", v, v)
			}
		}
	}
	if count != len(res.Q) {
		t.Errorf("InQ count %d != |Q| %d", count, len(res.Q))
	}
	for i := 1; i < len(res.Q); i++ {
		if res.Q[i-1] >= res.Q[i] {
			t.Errorf("Q not sorted: %v", res.Q)
		}
	}
}

func TestRandomizedDifferentSeedsBothValid(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 22, Seed: 34, MaxWeight: 9}, 66)
	for _, seed := range []int64{1, 2, 99} {
		coll, nw := buildColl(t, g, 3, bford.Out)
		res, err := Compute(nw, coll, Params{Mode: Randomized, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		verifyAgainstFresh(t, g, 3, bford.Out, res)
	}
}

func TestGoodSetBranchProducesValidBlocker(t *testing.T) {
	// The disjoint-paths workload forces the good-set branch (E7); the
	// resulting Q must still be a valid blocker, and the good-set stats
	// must be populated.
	g := graph.DisjointPaths(16, 3, 1000, graph.GenConfig{Seed: 35, MaxWeight: 4})
	coll, nw := buildColl(t, g, 3, bford.Out)
	res, err := Compute(nw, coll, Params{Mode: Deterministic, Delta: 0.5, UseFullSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstFresh(t, g, 3, bford.Out, res)
	if res.Stats.GoodSetSelections == 0 {
		t.Error("good-set branch not taken on the forcing workload")
	}
	if res.Stats.PointsScanned == 0 {
		t.Error("no sample points recorded")
	}
	if res.Stats.GoodPoints*8 < res.Stats.PointsScanned {
		t.Errorf("good-point fraction %d/%d below the Lemma 3.8 floor",
			res.Stats.GoodPoints, res.Stats.PointsScanned)
	}
}

func TestLinearSliceAlsoFindsGoodSets(t *testing.T) {
	// The O(n)-point enumerated slice (the distributed default) should
	// find good points on the same workload without needing the fallback.
	g := graph.DisjointPaths(16, 3, 1000, graph.GenConfig{Seed: 36, MaxWeight: 4})
	coll, nw := buildColl(t, g, 3, bford.Out)
	res, err := Compute(nw, coll, Params{Mode: Deterministic, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstFresh(t, g, 3, bford.Out, res)
	if res.Stats.GoodSetSelections == 0 && res.Stats.FallbackSteps == 0 {
		t.Error("neither good set nor fallback recorded on forcing workload")
	}
	if res.Stats.FallbackSteps > res.Stats.GoodSetSelections {
		t.Logf("note: fallbacks (%d) exceed good sets (%d) on this instance",
			res.Stats.FallbackSteps, res.Stats.GoodSetSelections)
	}
}

func TestStatsRoundsPositiveAllModes(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 15, Seed: 37, MaxWeight: 5})
	for _, mode := range []Mode{Deterministic, Randomized, Greedy, RandomSample} {
		coll, nw := buildColl(t, g, 3, bford.Out)
		res, err := Compute(nw, coll, Params{Mode: mode, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Stats.Rounds <= 0 {
			t.Errorf("%v: rounds = %d", mode, res.Stats.Rounds)
		}
	}
}

// Property: on arbitrary connected random graphs, the deterministic
// construction always yields a valid blocker set.
func TestQuickDeterministicAlwaysCovers(t *testing.T) {
	f := func(seed int64, nRaw, hRaw uint8, directed bool) bool {
		n := 8 + int(nRaw%16)
		h := 2 + int(hRaw%3)
		g := graph.RandomConnected(graph.GenConfig{N: n, Directed: directed, Seed: seed, MaxWeight: 12}, 3*n)
		coll, nw := buildCollQuick(g, h)
		if coll == nil {
			return false
		}
		res, err := Compute(nw, coll, Params{Mode: Deterministic})
		if err != nil {
			return false
		}
		fresh, _ := buildCollQuick(g, h)
		return Verify(fresh, res.InQ) == nil
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func buildCollQuick(g *graph.Graph, h int) (*csssp.Collection, *congest.Network) {
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		return nil, nil
	}
	srcs := make([]int, g.N)
	for i := range srcs {
		srcs[i] = i
	}
	coll, err := csssp.Build(nw, g, srcs, h, bford.Out)
	if err != nil {
		return nil, nil
	}
	return coll, nw
}
