package blocker

import (
	"math"
	"testing"

	"congestapsp/internal/bford"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
)

func buildColl(t testing.TB, g *graph.Graph, h int, mode bford.Mode) (*csssp.Collection, *congest.Network) {
	t.Helper()
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]int, g.N)
	for i := range srcs {
		srcs[i] = i
	}
	coll, err := csssp.Build(nw, g, srcs, h, mode)
	if err != nil {
		t.Fatal(err)
	}
	return coll, nw
}

// verifyAgainstFresh rebuilds the collection and checks q covers every
// full-length path (Compute consumes the collection via removals).
func verifyAgainstFresh(t *testing.T, g *graph.Graph, h int, mode bford.Mode, res *Result) {
	t.Helper()
	fresh, _ := buildColl(t, g, h, mode)
	if err := Verify(fresh, res.InQ); err != nil {
		t.Errorf("blocker invalid: %v", err)
	}
}

func TestDeterministicCoversAllFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		h    int
	}{
		{"random-undir", graph.RandomConnected(graph.GenConfig{N: 28, Seed: 1, MaxWeight: 9}, 80), 3},
		{"random-dir", graph.RandomConnected(graph.GenConfig{N: 24, Directed: true, Seed: 2, MaxWeight: 9}, 80), 3},
		{"grid", graph.Grid(4, 6, graph.GenConfig{Seed: 3, MaxWeight: 9}), 3},
		{"ring", graph.Ring(graph.GenConfig{N: 20, Seed: 4, MaxWeight: 9}), 4},
		{"layered", graph.Layered(6, 3, graph.GenConfig{Seed: 5, MaxWeight: 9}), 3},
		{"star", graph.Star(graph.GenConfig{N: 18, Seed: 6, MaxWeight: 9}), 2},
		{"zeromix", graph.ZeroWeightMix(graph.GenConfig{N: 22, Seed: 7, MaxWeight: 9}, 60), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coll, nw := buildColl(t, tc.g, tc.h, bford.Out)
			res, err := Compute(nw, coll, Params{Mode: Deterministic})
			if err != nil {
				t.Fatal(err)
			}
			verifyAgainstFresh(t, tc.g, tc.h, bford.Out, res)
			if res.Stats.Rounds <= 0 {
				t.Error("no rounds recorded")
			}
		})
	}
}

func TestDeterministicIsDeterministic(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 26, Directed: true, Seed: 11, MaxWeight: 12}, 90)
	run := func() *Result {
		coll, nw := buildColl(t, g, 3, bford.Out)
		res, err := Compute(nw, coll, Params{Mode: Deterministic})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Q) != len(b.Q) {
		t.Fatalf("|Q| differs across runs: %d vs %d", len(a.Q), len(b.Q))
	}
	for i := range a.Q {
		if a.Q[i] != b.Q[i] {
			t.Fatalf("Q differs at %d: %d vs %d", i, a.Q[i], b.Q[i])
		}
	}
	if a.Stats.Rounds != b.Stats.Rounds {
		t.Errorf("round counts differ: %d vs %d", a.Stats.Rounds, b.Stats.Rounds)
	}
}

func TestRandomizedCovers(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 24, Seed: 21, MaxWeight: 9}, 70)
	coll, nw := buildColl(t, g, 3, bford.Out)
	res, err := Compute(nw, coll, Params{Mode: Randomized, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstFresh(t, g, 3, bford.Out, res)
}

func TestGreedyCovers(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 26, Directed: true, Seed: 31, MaxWeight: 9}, 90)
	coll, nw := buildColl(t, g, 3, bford.Out)
	res, err := Compute(nw, coll, Params{Mode: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstFresh(t, g, 3, bford.Out, res)
	if res.Stats.SelectionSteps != len(res.Q) {
		t.Errorf("greedy picks %d != |Q| %d", res.Stats.SelectionSteps, len(res.Q))
	}
}

func TestRandomSampleCovers(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 30, Seed: 41, MaxWeight: 9}, 90)
	coll, nw := buildColl(t, g, 3, bford.Out)
	res, err := Compute(nw, coll, Params{Mode: RandomSample, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstFresh(t, g, 3, bford.Out, res)
}

func TestSizeBoundLemma310(t *testing.T) {
	// Lemma 3.10: |Q| = O(n log n / h). Check a generous constant on a
	// path-heavy workload for all four modes.
	g := graph.Layered(8, 4, graph.GenConfig{Seed: 51, MaxWeight: 9})
	h := 4
	bound := 8.0 * float64(g.N) * math.Log(float64(g.N)) / float64(h)
	for _, mode := range []Mode{Deterministic, Randomized, Greedy, RandomSample} {
		coll, nw := buildColl(t, g, h, bford.Out)
		res, err := Compute(nw, coll, Params{Mode: mode, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if float64(len(res.Q)) > bound {
			t.Errorf("%v: |Q| = %d exceeds bound %.0f", mode, len(res.Q), bound)
		}
	}
}

func TestEmptyWhenNoFullPaths(t *testing.T) {
	// h larger than any tree height: nothing to cover, Q must be empty.
	g := graph.Star(graph.GenConfig{N: 10, Seed: 61, MaxWeight: 5})
	coll, nw := buildColl(t, g, 5, bford.Out)
	for i := range coll.Sources {
		if leaves := coll.FullLengthLeaves(i); len(leaves) != 0 {
			t.Fatalf("star with h=5 has full-length leaves %v in tree %d", leaves, i)
		}
	}
	res, err := Compute(nw, coll, Params{Mode: Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Q) != 0 {
		t.Errorf("Q = %v, want empty", res.Q)
	}
}

func TestInTreeCollectionBlocker(t *testing.T) {
	// Algorithms 8/9 build blockers over in-CSSSP collections; exercise
	// that orientation.
	g := graph.RandomConnected(graph.GenConfig{N: 22, Directed: true, Seed: 71, MaxWeight: 9}, 70)
	coll, nw := buildColl(t, g, 3, bford.In)
	res, err := Compute(nw, coll, Params{Mode: Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstFresh(t, g, 3, bford.In, res)
}

func TestSelectionPathsExercised(t *testing.T) {
	// With the paper's tiny delta, single-node selection dominates at small
	// n; a larger delta drives the good-set machinery. Both must cover.
	g := graph.Layered(7, 4, graph.GenConfig{Seed: 81, MaxWeight: 9})
	coll, nw := buildColl(t, g, 3, bford.Out)
	res, err := Compute(nw, coll, Params{Mode: Deterministic, Eps: 0.25, Delta: 0.45, UseFullSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstFresh(t, g, 3, bford.Out, res)
	if res.Stats.GoodSetSelections+res.Stats.FallbackSteps == 0 {
		t.Logf("warning: good-set path not exercised (singles=%d)", res.Stats.SingleSelections)
	}
	if res.Stats.SelectionSteps == 0 {
		t.Error("no selection steps recorded despite full-length paths")
	}
}

func TestVerifyDetectsUncovered(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 12, Seed: 91, MaxWeight: 5})
	coll, _ := buildColl(t, g, 3, bford.Out)
	inQ := make([]bool, g.N) // empty set cannot cover a ring's paths
	if err := Verify(coll, inQ); err == nil {
		t.Error("Verify accepted an empty blocker for a ring")
	}
}

func TestScoreBroadcastKnowledge(t *testing.T) {
	// After Compute, the collection must have no alive full-length leaves.
	g := graph.Grid(3, 7, graph.GenConfig{Seed: 95, MaxWeight: 6})
	coll, nw := buildColl(t, g, 3, bford.Out)
	if _, err := Compute(nw, coll, Params{Mode: Deterministic}); err != nil {
		t.Fatal(err)
	}
	if c := countFullPaths(coll); c != 0 {
		t.Errorf("%d full-length paths alive after Compute", c)
	}
}

func TestDeterministicRoundsScaleWithSh(t *testing.T) {
	// Corollary 3.13: O~(|S|*h) rounds. Sanity-check that the round count
	// stays within a polylog factor of |S|*h on a mid-size instance.
	g := graph.RandomConnected(graph.GenConfig{N: 32, Seed: 97, MaxWeight: 9}, 100)
	h := 3
	coll, nw := buildColl(t, g, h, bford.Out)
	res, err := Compute(nw, coll, Params{Mode: Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	sh := float64(g.N * h)
	logn := math.Log2(float64(g.N))
	if float64(res.Stats.Rounds) > 60*sh*logn {
		t.Errorf("rounds = %d, want within polylog of |S|h = %.0f", res.Stats.Rounds, sh)
	}
}
