// Package blocker implements the paper's deterministic blocker-set
// construction (Section 3: Algorithms 2-7 and the helper Algorithms 11-12),
// its randomized pairwise-independence variant, and two baselines (the
// greedy construction of Agarwal et al. PODC'18 [2] and random sampling).
//
// A blocker set Q for an h-hop tree collection C is a set of nodes hitting
// every root-to-leaf path of length exactly h in every tree (Definition
// 2.2). The deterministic algorithm runs in O~(|S| * h) rounds
// (Corollary 3.13), removing the n*|Q| term of the earlier greedy
// constructions.
package blocker

import (
	"fmt"

	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
)

// Message kinds for the per-tree protocols.
const (
	kindAncestor uint8 = iota + 20
	kindBeta
)

// collectAncestors runs the pipelined Ancestors protocol of [2] (Step 1 of
// Algorithm 7) on tree i: every node learns the ids of its proper ancestors
// up to but excluding the root, ordered nearest-first. Cost: H+1 rounds
// (each node sends its own id at round 0 and forwards received ids FIFO).
func collectAncestors(nw *congest.Network, coll *csssp.Collection, i int) ([][]int32, error) {
	n := nw.N()
	h := coll.H
	root := coll.Sources[i]
	ch := coll.Children(i)
	anc := make([][]int32, n)
	fwd := make([]int, n) // ids forwarded so far: anc[v][:fwd[v]] (FIFO cursor)
	p := congest.ProtoFunc(func(v, round int, in []congest.Message, send func(congest.Message)) bool {
		for _, m := range in {
			if m.Kind == kindAncestor {
				anc[v] = append(anc[v], int32(m.A))
			}
		}
		if coll.InTree(i, v) && round <= h {
			if round == 0 && v != root {
				// Send own id to children (the root's id is excluded from
				// ancestor lists: hyperedges drop the root).
				for _, c := range ch[v] {
					send(congest.Message{To: c, Kind: kindAncestor, A: int64(v)})
				}
			} else if fwd[v] < len(anc[v]) {
				id := anc[v][fwd[v]]
				fwd[v]++
				for _, c := range ch[v] {
					send(congest.Message{To: c, Kind: kindAncestor, A: int64(id)})
				}
			}
		}
		return round >= h
	})
	if err := nw.RunFor(p, h+1); err != nil {
		return nil, fmt.Errorf("blocker: ancestors tree %d: %w", i, err)
	}
	return anc, nil
}

// computePijDowncast runs Compute-Pij (Algorithm 4): a downcast through
// tree i accumulating the number of marked (in-Vi) nodes on each
// root-to-node path, root excluded. It returns beta[v] for every tree node.
// Compute-Pi (Algorithm 3) is the special case "beta >= 1". Cost: H+1
// rounds.
func computePijDowncast(nw *congest.Network, coll *csssp.Collection, i int, inVi []bool) ([]int64, error) {
	n := nw.N()
	h := coll.H
	root := coll.Sources[i]
	ch := coll.Children(i)
	beta := make([]int64, n)
	have := make([]bool, n)
	p := congest.ProtoFunc(func(v, round int, in []congest.Message, send func(congest.Message)) bool {
		if round == 0 && v == root && coll.InTree(i, v) {
			// The root's own membership is not counted (hyperedges exclude
			// the root), so it forwards beta = 0.
			have[v] = true
			for _, c := range ch[v] {
				send(congest.Message{To: c, Kind: kindBeta, A: 0})
			}
			return true
		}
		for _, m := range in {
			if m.Kind != kindBeta || have[v] || !coll.InTree(i, v) {
				continue
			}
			have[v] = true
			beta[v] = m.A
			if inVi[v] {
				beta[v]++
			}
			for _, c := range ch[v] {
				send(congest.Message{To: c, Kind: kindBeta, A: beta[v]})
			}
		}
		return round >= 1 // runs until the fixed budget; done flags are advisory
	})
	if err := nw.RunFor(p, h+1); err != nil {
		return nil, fmt.Errorf("blocker: compute-Pij tree %d: %w", i, err)
	}
	return beta, nil
}
