// Package blocker implements the paper's deterministic blocker-set
// construction (Section 3: Algorithms 2-7 and the helper Algorithms 11-12),
// its randomized pairwise-independence variant, and two baselines (the
// greedy construction of Agarwal et al. PODC'18 [2] and random sampling).
//
// A blocker set Q for an h-hop tree collection C is a set of nodes hitting
// every root-to-leaf path of length exactly h in every tree (Definition
// 2.2). The deterministic algorithm runs in O~(|S| * h) rounds
// (Corollary 3.13), removing the n*|Q| term of the earlier greedy
// constructions.
package blocker

import (
	"fmt"

	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
)

// Message kinds for the per-tree protocols.
const (
	kindAncestor uint8 = iota + 20
	kindBeta
)

// collectAncestors runs the pipelined Ancestors protocol of [2] (Step 1 of
// Algorithm 7) on tree i: every node learns the ids of its proper ancestors
// up to but excluding the root, ordered nearest-first. Cost: H+1 rounds
// (each node sends its own id at round 0 and forwards received ids FIFO).
//
// The lists come back in CSR form (off, ids), presized exactly from the
// tree depths: a node at depth d has d-1 proper non-root ancestors. The
// protocol object is pooled per worker network, and the transient cursors
// come from nw's scratch arena (the caller runs this under ShardRuns,
// which resets it before every sub-run).
func collectAncestors(nw *congest.Network, coll *csssp.Collection, i int) (off, ids []int32, err error) {
	n := nw.N()
	h := coll.H
	sc := nw.Scratch()
	proto := congest.ScratchState(sc, ancKey{}, func() *ancProto { return new(ancProto) })
	off = make([]int32, n+1) // retained by the caller for the whole Compute
	for v := 0; v < n; v++ {
		if d := coll.Depth[i][v]; d > 1 {
			off[v+1] = int32(d - 1)
		}
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	ids = make([]int32, off[n])
	recv := sc.Int32s(n)
	copy(recv, off[:n])
	*proto = ancProto{coll: coll, i: i, root: coll.Sources[i], h: h, off: off, ids: ids, recv: recv, fwd: sc.Int32s(n)}
	err = nw.RunFor(proto, h+1)
	proto.coll, proto.off, proto.ids, proto.recv, proto.fwd = nil, nil, nil, nil, nil
	if err != nil {
		return nil, nil, fmt.Errorf("blocker: ancestors tree %d: %w", i, err)
	}
	return off, ids, nil
}

type ancKey struct{}

// ancProto is the pipelined Ancestors protocol as a reusable object.
type ancProto struct {
	coll     *csssp.Collection
	i, root  int
	h        int
	off, ids []int32 // ancestor CSR under construction
	recv     []int32 // next write slot in ids for v
	fwd      []int32 // ids forwarded so far: ids[off[v]:off[v]+fwd[v]]
}

// Step implements congest.Proto. Children are walked via the collection's
// static child CSR with a Removed filter; no removals happen while this
// protocol runs, so the walk matches a materialized snapshot exactly.
func (p *ancProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	coll, i := p.coll, p.i
	for _, m := range in {
		if m.Kind == kindAncestor {
			p.ids[p.recv[v]] = int32(m.A)
			p.recv[v]++
		}
	}
	if coll.InTree(i, v) && round <= p.h {
		if round == 0 && v != p.root {
			// Send own id to children (the root's id is excluded from
			// ancestor lists: hyperedges drop the root).
			for _, c := range coll.ChildIDs(i, v) {
				if !coll.Removed[i][c] {
					send(congest.Message{To: int(c), Kind: kindAncestor, A: int64(v)})
				}
			}
		} else if p.off[v]+p.fwd[v] < p.recv[v] {
			id := p.ids[p.off[v]+p.fwd[v]]
			p.fwd[v]++
			for _, c := range coll.ChildIDs(i, v) {
				if !coll.Removed[i][c] {
					send(congest.Message{To: int(c), Kind: kindAncestor, A: int64(id)})
				}
			}
		}
	}
	return round >= p.h
}

// computePijDowncastInto runs Compute-Pij (Algorithm 4): a downcast through
// tree i accumulating the number of marked (in-Vi) nodes on each
// root-to-node path, root excluded, written into beta (length n, zeroed by
// the caller). Compute-Pi (Algorithm 3) is the special case "beta >= 1".
// Cost: H+1 rounds. The protocol object is pooled per worker network.
func computePijDowncastInto(nw *congest.Network, coll *csssp.Collection, i int, inVi []bool, beta []int64) error {
	proto := congest.ScratchState(nw.Scratch(), pijKey{}, func() *pijProto { return new(pijProto) })
	*proto = pijProto{coll: coll, i: i, root: coll.Sources[i], inVi: inVi, beta: beta, have: nw.Scratch().Bools(nw.N())}
	err := nw.RunFor(proto, coll.H+1)
	proto.coll, proto.inVi, proto.beta, proto.have = nil, nil, nil, nil
	if err != nil {
		return fmt.Errorf("blocker: compute-Pij tree %d: %w", i, err)
	}
	return nil
}

// computePijDowncast is computePijDowncastInto with freshly allocated
// outputs, for callers outside the pooled set-cover loop (the random-sample
// baseline's coverage check).
func computePijDowncast(nw *congest.Network, coll *csssp.Collection, i int, inVi []bool) ([]int64, error) {
	beta := make([]int64, nw.N())
	if err := computePijDowncastInto(nw, coll, i, inVi, beta); err != nil {
		return nil, err
	}
	return beta, nil
}

type pijKey struct{}

// pijProto is the Compute-Pij downcast as a reusable protocol object.
type pijProto struct {
	coll    *csssp.Collection
	i, root int
	inVi    []bool
	beta    []int64
	have    []bool
}

// Step implements congest.Proto.
func (p *pijProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	coll, i := p.coll, p.i
	if round == 0 && v == p.root && coll.InTree(i, v) {
		// The root's own membership is not counted (hyperedges exclude
		// the root), so it forwards beta = 0.
		p.have[v] = true
		for _, c := range coll.ChildIDs(i, v) {
			if !coll.Removed[i][c] {
				send(congest.Message{To: int(c), Kind: kindBeta, A: 0})
			}
		}
		return true
	}
	for _, m := range in {
		if m.Kind != kindBeta || p.have[v] || !coll.InTree(i, v) {
			continue
		}
		p.have[v] = true
		p.beta[v] = m.A
		if p.inVi[v] {
			p.beta[v]++
		}
		for _, c := range coll.ChildIDs(i, v) {
			if !coll.Removed[i][c] {
				send(congest.Message{To: int(c), Kind: kindBeta, A: p.beta[v]})
			}
		}
	}
	return round >= 1 // runs until the fixed budget; done flags are advisory
}
