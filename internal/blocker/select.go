package blocker

import (
	"fmt"
	"math/rand"

	"congestapsp/internal/broadcast"
	"congestapsp/internal/pairwise"
)

// selectGoodSet implements Steps 11-14 of Algorithm 2: choose a good set A
// (Definition 3.1) of V_i nodes, either by derandomized exhaustive search
// over the pairwise-independent sample space (Algorithm 7, Deterministic
// mode) or by repeated pairwise-independent sampling (Randomized mode).
//
// stageHi is (1+eps)^i, the stage's score upper bound; fallbackBest is the
// max-scoreij node used when no enumerated point is good (a progress
// guarantee the enumerated linear slice of the space cannot give by itself;
// see DESIGN.md). The returned slice is pooled (consumed by commit before
// the next selection).
func (st *state) selectGoodSet(stage, phase int, stageHi float64, pijLeaf [][]bool, pijSize int, scoreij []int64, fallbackBest int) ([]int, error) {
	onePlusEps := 1 + st.par.Eps
	prob := st.par.Delta
	for k := 0; k < phase; k++ {
		prob /= onePlusEps
	}
	space, err := pairwise.NewAffineSpace(st.n, prob)
	if err != nil {
		return nil, err
	}

	if st.par.Mode == Randomized {
		return st.selectGoodSetRandomized(space, stageHi, pijLeaf, pijSize, fallbackBest)
	}

	// Algorithm 7, deterministic exhaustive search.
	var pts []pairwise.Point
	if st.par.UseFullSpace {
		pts = space.FullEnum()
	} else {
		pts = space.LinearEnum(st.par.SampleMult * st.n)
	}
	m := len(pts)

	// Step 3 (Algorithm 7): each node v computes its sigma contributions
	// for every sample point locally (free local computation), namely the
	// number of its paths in P_i (resp. P_ij) covered by A_mu. Then the
	// nu totals are aggregated at the leader by the pipelined Algorithms
	// 11 and 12 (O(n + m) rounds each). The two n x m count matrices live
	// in one pooled arena, re-carved per call (m varies with the phase).
	if cap(st.nuBuf) < 2*st.n*m {
		st.nuBuf = make([]int64, 2*st.n*m)
	}
	st.nuBuf = st.nuBuf[:2*st.n*m]
	clear(st.nuBuf)
	if cap(st.nuPi) < st.n {
		st.nuPi = make([][]int64, st.n)
		st.nuPij = make([][]int64, st.n)
	}
	st.nuPi = st.nuPi[:st.n]
	st.nuPij = st.nuPij[:st.n]
	for v := 0; v < st.n; v++ {
		st.nuPi[v] = st.nuBuf[v*m : (v+1)*m : (v+1)*m]
		st.nuPij[v] = st.nuBuf[(st.n+v)*m : (st.n+v+1)*m : (st.n+v+1)*m]
	}
	for i := range st.coll.Sources {
		for _, v32 := range st.coll.HLeaves(i) {
			v := int(v32)
			if st.coll.Removed[i][v] {
				continue
			}
			inPi := st.leafBeta[i][v] > 0
			inPij := pijLeaf[i][v]
			if !inPi && !inPij {
				continue
			}
			anc := st.ancRow(i, v)
			for mu, pt := range pts {
				covered := st.inVi[v] && space.Bit(v, pt.A, pt.B)
				if !covered {
					for _, u := range anc {
						if st.inVi[u] && space.Bit(int(u), pt.A, pt.B) {
							covered = true
							break
						}
					}
				}
				if covered {
					if inPi {
						st.nuPi[v][mu]++
					}
					if inPij {
						st.nuPij[v][mu]++
					}
				}
			}
		}
	}
	totPi, err := broadcast.GatherSum(st.nw, st.tree, st.nuPi)
	if err != nil {
		return nil, err
	}
	totPij, err := broadcast.GatherSum(st.nw, st.tree, st.nuPij)
	if err != nil {
		return nil, err
	}

	// Step 4: the leader picks the first sample point that is good. |A_mu|
	// is global knowledge (V_i and the sample space are shared), so only
	// the chosen index needs broadcasting (Step 5; O(n) rounds).
	goodMu := -1
	for mu := 0; mu < m; mu++ {
		sz := st.setSize(space, pts[mu])
		if st.isGood(sz, totPi[mu], totPij[mu], stageHi, pijSize) {
			if goodMu < 0 {
				goodMu = mu
			}
			st.stats.GoodPoints++ // keep counting for the Lemma 3.8 series
		}
	}
	st.stats.PointsScanned += int64(m)
	if _, err := broadcast.Broadcast(st.nw, st.tree, []broadcast.Item{{A: int64(goodMu)}}); err != nil {
		return nil, err
	}
	if goodMu < 0 {
		// No enumerated point was good: fall back to the highest-coverage
		// single node, which always makes progress.
		st.stats.FallbackSteps++
		if fallbackBest < 0 {
			return nil, fmt.Errorf("blocker: no good set and no fallback node")
		}
		return append(st.members[:0], fallbackBest), nil
	}
	st.stats.GoodSetSelections++
	return st.setMembers(space, pts[goodMu]), nil
}

// selectGoodSetRandomized implements Steps 12-14 as written: draw a
// pairwise-independent A, verify goodness (one aggregation + broadcast per
// attempt), retry on failure. Lemma 3.8 gives success probability >= 1/8
// per attempt; a deterministic fallback guards the tail.
func (st *state) selectGoodSetRandomized(space *pairwise.AffineSpace, stageHi float64, pijLeaf [][]bool, pijSize int, fallbackBest int) ([]int, error) {
	rng := rand.New(rand.NewSource(st.par.Seed + int64(st.stats.SelectionSteps)*7919))
	const maxAttempts = 64
	fieldSize := space.F.Size()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		pt := pairwise.Point{A: rng.Uint64() % fieldSize, B: rng.Uint64() % fieldSize}
		members := st.setMembers(space, pt)
		// Step 13: members broadcast their ids (O(n) rounds, Lemma A.2).
		inA := st.inZ // borrow the commit scratch: rewritten there anyway
		clear(inA)
		for _, v := range members {
			inA[v] = true
		}
		items := st.singleItems(func(v int) (broadcast.Item, bool) {
			return broadcast.Item{A: int64(v)}, inA[v]
		})
		if _, err := broadcast.AllToAll(st.nw, st.tree, items); err != nil {
			return nil, err
		}
		// Goodness check: per-leaf coverage counts aggregated to the leader
		// (two slots), verdict broadcast back.
		if cap(st.nuBuf) < 2*st.n {
			st.nuBuf = make([]int64, 2*st.n)
		}
		st.nuBuf = st.nuBuf[:2*st.n]
		clear(st.nuBuf)
		if cap(st.nuPi) < st.n {
			st.nuPi = make([][]int64, st.n)
			st.nuPij = make([][]int64, st.n)
		}
		cov := st.nuPi[:st.n]
		for v := 0; v < st.n; v++ {
			cov[v] = st.nuBuf[2*v : 2*v+2 : 2*v+2]
		}
		for i := range st.coll.Sources {
			for _, v32 := range st.coll.HLeaves(i) {
				v := int(v32)
				if st.coll.Removed[i][v] {
					continue
				}
				inPi := st.leafBeta[i][v] > 0
				inPij := pijLeaf[i][v]
				if !inPi && !inPij {
					continue
				}
				covered := st.inVi[v] && inA[v]
				if !covered {
					for _, u := range st.ancRow(i, v) {
						if st.inVi[u] && inA[u] {
							covered = true
							break
						}
					}
				}
				if covered {
					if inPi {
						cov[v][0]++
					}
					if inPij {
						cov[v][1]++
					}
				}
			}
		}
		tot, err := broadcast.GatherSum(st.nw, st.tree, cov)
		if err != nil {
			return nil, err
		}
		good := st.isGood(len(members), tot[0], tot[1], stageHi, pijSize)
		verdict := int64(0)
		if good {
			verdict = 1
		}
		if _, err := broadcast.Broadcast(st.nw, st.tree, []broadcast.Item{{A: verdict}}); err != nil {
			return nil, err
		}
		if good {
			st.stats.GoodSetSelections++
			return members, nil
		}
		st.stats.RandomRetries++
	}
	st.stats.FallbackSteps++
	if fallbackBest < 0 {
		return nil, fmt.Errorf("blocker: randomized selection exhausted retries with no fallback")
	}
	return append(st.members[:0], fallbackBest), nil
}

// isGood evaluates Definition 3.1 for a set of size sz covering covPi
// paths of P_i and covPij paths of P_ij.
func (st *state) isGood(sz int, covPi, covPij int64, stageHi float64, pijSize int) bool {
	if sz == 0 {
		return false
	}
	d, e := st.par.Delta, st.par.Eps
	needPi := float64(sz) * stageHi * (1 - 3*d - e)
	needPij := d / 2 * float64(pijSize)
	return float64(covPi) >= needPi && float64(covPij) >= needPij
}

// setSize returns |A_mu| for a sample point: the number of V_i nodes the
// point selects (global knowledge at every node).
func (st *state) setSize(space *pairwise.AffineSpace, pt pairwise.Point) int {
	sz := 0
	for v := 0; v < st.n; v++ {
		if st.inVi[v] && space.Bit(v, pt.A, pt.B) {
			sz++
		}
	}
	return sz
}

// setMembers lists the V_i nodes selected by a sample point, into the
// pooled members buffer (valid until the next selection).
func (st *state) setMembers(space *pairwise.AffineSpace, pt pairwise.Point) []int {
	out := st.members[:0]
	for v := 0; v < st.n; v++ {
		if st.inVi[v] && space.Bit(v, pt.A, pt.B) {
			out = append(out, v)
		}
	}
	st.members = out
	return out
}
