package blocker

import (
	"fmt"
	"math"
	"sort"

	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
)

// Mode selects the blocker-set construction algorithm.
type Mode int

const (
	// Deterministic is Algorithm 2' of the paper: the stage/phase selection
	// loop of Algorithm 2 with Steps 12-14 replaced by the derandomized
	// good-set search of Algorithm 7. O~(|S|*h) rounds (Corollary 3.13).
	Deterministic Mode = iota
	// Randomized is Algorithm 2 as written: good sets are drawn from the
	// pairwise-independent sample space and retried until good (Lemma 3.8:
	// success probability >= 1/8 per attempt).
	Randomized
	// Greedy is the baseline of Agarwal et al. [2]: repeatedly take the
	// node covering the most paths. O(|S|*h + n*|Q|) rounds.
	Greedy
	// RandomSample is the classic randomized baseline (Ullman-Yannakakis /
	// Huang et al. [13]): sample each node with probability ~ln(n)/h and
	// patch any uncovered path. O(|S|*h + n) rounds.
	RandomSample
)

// String names the mode as it appears in benchmark tables and logs.
func (m Mode) String() string {
	switch m {
	case Deterministic:
		return "deterministic"
	case Randomized:
		return "randomized"
	case Greedy:
		return "greedy"
	default:
		return "randomsample"
	}
}

// Params configures the construction. Zero values select the paper's
// defaults (eps = delta = 1/12, linear-size sample enumeration).
type Params struct {
	Mode Mode
	// Eps and Delta are the constants of Algorithm 2, both required to be
	// in (0, 1/12] by the analysis; the implementation accepts up to 1/2
	// for experimentation.
	Eps, Delta float64
	// SampleMult: the deterministic search enumerates SampleMult*n sample
	// points of the affine space (default 4), unless UseFullSpace is set.
	SampleMult int
	// UseFullSpace enumerates the entire 2^(2K)-point affine space
	// (exhaustive search; small n only).
	UseFullSpace bool
	// Seed drives the Randomized and RandomSample modes.
	Seed int64
	// MaxSelectionSteps caps the selection loop (safety net); 0 means
	// automatic (16n + 1024).
	MaxSelectionSteps int
}

func (p Params) withDefaults() Params {
	if p.Eps <= 0 || p.Eps > 0.5 {
		p.Eps = 1.0 / 12
	}
	if p.Delta <= 0 || p.Delta > 0.5 {
		p.Delta = 1.0 / 12
	}
	if p.SampleMult <= 0 {
		p.SampleMult = 4
	}
	return p
}

// Stats reports what the construction did; the benchmark harness turns
// these into the EXPERIMENTS.md series.
type Stats struct {
	SelectionSteps    int // iterations of the while loop (Steps 6-16)
	SingleSelections  int // Step 9/10 firings (one high-coverage node)
	GoodSetSelections int // Steps 11-14 / Algorithm 7 firings
	FallbackSteps     int // enumerated slice had no good point; single-best used
	RandomRetries     int // Randomized mode: re-drawn sets that were not good
	StagesVisited     int // stages with nonempty V_i
	PhasesVisited     int // phases entered within visited stages
	Rounds            int // CONGEST rounds consumed by the construction
	// GoodPoints / PointsScanned measure Lemma 3.8 empirically: across all
	// deterministic good-set searches, how many enumerated sample points
	// satisfied Definition 3.1 (the lemma predicts a >= 1/8 fraction over
	// the full pairwise-independent space).
	GoodPoints, PointsScanned int64
}

// Result is a computed blocker set.
type Result struct {
	Q     []int  // blocker node ids, ascending
	InQ   []bool // membership indicator
	Stats Stats
}

// Compute builds a blocker set for the full-length (depth-H) paths of coll.
// It consumes rounds on nw according to the selected algorithm.
func Compute(nw *congest.Network, coll *csssp.Collection, par Params) (*Result, error) {
	par = par.withDefaults()
	switch par.Mode {
	case Greedy:
		return computeGreedy(nw, coll)
	case RandomSample:
		return computeRandomSample(nw, coll, par)
	default:
		return computeSetCover(nw, coll, par)
	}
}

// state carries the shared knowledge of the set-cover algorithm. Fields
// marked "global knowledge" are values that every node holds identical
// copies of after the corresponding broadcast; keeping one copy is the
// simulator's equivalent.
type state struct {
	nw   *congest.Network
	coll *csssp.Collection
	par  Params
	n, h int
	tree *broadcast.Tree // BFS tree rooted at the leader (node 0)

	anc [][][]int32 // anc[i][v]: proper ancestors of v in tree i, root excluded

	score    []int64 // global knowledge after broadcastScores
	inVi     []bool  // current V_i (derived locally from score)
	viSize   int
	leafBeta [][]int64 // leafBeta[i][v]: |V_i ∩ path(i,v)| for alive full-length leaves; global knowledge
	inQ      []bool
	q        []int
	stats    Stats
}

func computeSetCover(nw *congest.Network, coll *csssp.Collection, par Params) (*Result, error) {
	n := nw.N()
	st := &state{
		nw: nw, coll: coll, par: par,
		n: n, h: coll.H,
		inQ: make([]bool, n),
	}
	maxSteps := par.MaxSelectionSteps
	if maxSteps == 0 {
		maxSteps = 16*n + 1024
	}

	roundsBefore := nw.Stats.Rounds
	var err error
	st.tree, err = broadcast.BuildBFS(nw, 0)
	if err != nil {
		return nil, err
	}
	// Step 1 of Algorithm 7: every node collects the ids on each of its
	// tree paths (pipelined Ancestors of [2]; O(|S|*h) rounds). Removals
	// only delete whole paths, so the lists stay valid throughout. The
	// per-tree protocols are independent and source-shard across worker
	// clones (each index owns st.anc[i]).
	st.anc = make([][][]int32, coll.NumTrees())
	err = nw.ShardRuns(coll.NumTrees(), func(w *congest.Network, i int) error {
		a, err := collectAncestors(w, coll, i)
		if err != nil {
			return err
		}
		st.anc[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Step 1 of Algorithm 2: compute score(v) ([2], O(|S|*h) rounds), then
	// broadcast all scores so V_i construction is local at every stage
	// (one all-to-all replaces the per-stage id broadcast of Lemma 3.2).
	if err := st.recomputeScores(); err != nil {
		return nil, err
	}

	onePlusEps := 1 + st.par.Eps
	maxStage := int(math.Ceil(math.Log(float64(n)*float64(n))/math.Log(onePlusEps))) + 1
	maxPhase := int(math.Ceil(math.Log(float64(st.h))/math.Log(onePlusEps))) + 1
	if maxPhase < 1 {
		maxPhase = 1
	}

	for i := maxStage; i >= 1; i-- {
		stageLo := math.Pow(onePlusEps, float64(i-1))
		stageHi := math.Pow(onePlusEps, float64(i))
		if !st.rebuildVi(stageLo) {
			continue // V_i empty: known locally from the score broadcast
		}
		st.stats.StagesVisited++
		needRefresh := true
		for j := maxPhase; j >= 1; j-- {
			phaseLo := math.Pow(onePlusEps, float64(j-1))
			st.stats.PhasesVisited++
			for {
				if st.stats.SelectionSteps > maxSteps {
					return nil, fmt.Errorf("blocker: selection steps exceeded safety cap %d", maxSteps)
				}
				if needRefresh {
					// Steps 3-4 / 7(a): Compute-Pi/Pij downcasts per tree,
					// then one all-to-all of per-leaf beta values so that
					// every node can evaluate |P_ij| for every j locally
					// (Algorithm 5).
					if err := st.refreshBetas(); err != nil {
						return nil, err
					}
					needRefresh = false
				}
				pijLeaf, pijSize := st.pijLeaves(phaseLo)
				if pijSize == 0 {
					break // phase done
				}
				st.stats.SelectionSteps++
				// Step 8: scoreij via per-tree upcasts + broadcast.
				scoreij, err := st.computeScoreij(pijLeaf)
				if err != nil {
					return nil, err
				}
				// Step 9: a single node covering > delta^3/(1+eps) of P_ij?
				thr := st.par.Delta * st.par.Delta * st.par.Delta / onePlusEps * float64(pijSize)
				best, bestVal := -1, int64(0)
				for v := 0; v < n; v++ {
					if st.inVi[v] && (scoreij[v] > bestVal || (scoreij[v] == bestVal && bestVal > 0 && best >= 0 && v < best)) {
						best, bestVal = v, scoreij[v]
					}
				}
				var chosen []int
				if best >= 0 && float64(bestVal) > thr {
					chosen = []int{best} // Step 10
					st.stats.SingleSelections++
				} else {
					chosen, err = st.selectGoodSet(i, j, stageHi, pijLeaf, pijSize, scoreij, best)
					if err != nil {
						return nil, err
					}
				}
				if err := st.commit(chosen); err != nil {
					return nil, err
				}
				st.rebuildVi(stageLo)
				needRefresh = true
			}
		}
	}
	// Sanity: the set-cover loop must have covered everything (Lemma A.7).
	if remaining := countFullPaths(coll); remaining != 0 {
		return nil, fmt.Errorf("blocker: %d full-length paths remain uncovered", remaining)
	}
	st.stats.Rounds = nw.Stats.Rounds - roundsBefore
	sort.Ints(st.q)
	return &Result{Q: st.q, InQ: st.inQ, Stats: st.stats}, nil
}

// rebuildVi recomputes V_i = {v : score(v) >= lo} locally (scores are
// global knowledge). It reports whether V_i is nonempty.
func (st *state) rebuildVi(lo float64) bool {
	st.inVi = make([]bool, st.n)
	st.viSize = 0
	for v := 0; v < st.n; v++ {
		if float64(st.score[v]) >= lo {
			st.inVi[v] = true
			st.viSize++
		}
	}
	return st.viSize > 0
}

// recomputeScores runs the per-tree subtree-count upcasts ([2]'s score
// algorithm; O(|S|*h) rounds) and broadcasts all scores (O(n)). The
// upcasts are independent per-tree protocols: they source-shard across
// worker clones, each writing only its tree's count vector, and the score
// accumulation happens afterwards in tree order (int64 sums are exact, so
// the result is bit-identical to the sequential loop).
func (st *state) recomputeScores() error {
	n := st.n
	counts := make([][]int64, st.coll.NumTrees())
	err := st.nw.ShardRuns(st.coll.NumTrees(), func(w *congest.Network, i int) error {
		init := make([]int64, n)
		for _, v := range st.coll.HLeaves(i) {
			if !st.coll.Removed[i][v] {
				init[v] = 1
			}
		}
		c, err := st.coll.UpcastSum(w, i, init)
		if err != nil {
			return err
		}
		counts[i] = c
		return nil
	})
	if err != nil {
		return err
	}
	score := make([]int64, n)
	for i := range st.coll.Sources {
		root := st.coll.Sources[i]
		for v := 0; v < n; v++ {
			if v != root && st.coll.InTree(i, v) {
				score[v] += counts[i][v]
			}
		}
	}
	// All-to-all broadcast of (id, score) items: O(n) rounds (Lemma A.2).
	perNode := make([][]broadcast.Item, n)
	for v := 0; v < n; v++ {
		if score[v] > 0 {
			perNode[v] = []broadcast.Item{{A: int64(v), B: score[v]}}
		}
	}
	if _, err := broadcast.AllToAll(st.nw, st.tree, perNode); err != nil {
		return err
	}
	st.score = score
	return nil
}

// refreshBetas recomputes leafBeta (the |V_i ∩ path| counts) with the
// Compute-Pij downcast per tree, then shares the per-leaf values by one
// all-to-all broadcast so every node can evaluate any |P_ij| locally.
func (st *state) refreshBetas() error {
	// Per-tree downcasts, source-sharded (index i owns leafBeta[i]); the
	// broadcast item lists are then assembled sequentially in tree order so
	// each leaf's item sequence matches the sequential schedule exactly.
	st.leafBeta = make([][]int64, st.coll.NumTrees())
	err := st.nw.ShardRuns(st.coll.NumTrees(), func(w *congest.Network, i int) error {
		beta, err := computePijDowncast(w, st.coll, i, st.inVi)
		if err != nil {
			return err
		}
		lb := make([]int64, st.n)
		for _, v := range st.coll.HLeaves(i) {
			if !st.coll.Removed[i][v] {
				lb[v] = beta[v]
			}
		}
		st.leafBeta[i] = lb
		return nil
	})
	if err != nil {
		return err
	}
	items := make([][]broadcast.Item, st.n)
	for i := range st.coll.Sources {
		for _, v := range st.coll.HLeaves(i) {
			if b := st.leafBeta[i][v]; b > 0 {
				items[v] = append(items[v], broadcast.Item{A: int64(v), B: int64(i), C: b})
			}
		}
	}
	// Per-leaf betas: at most one item per (leaf, tree) pair with a V_i
	// node; the all-to-all is O(n + K) rounds for K items (Lemma A.2).
	if _, err := broadcast.AllToAll(st.nw, st.tree, items); err != nil {
		return err
	}
	return nil
}

// pijLeaves returns the indicator of alive full-length paths with at least
// phaseLo V_i-nodes, keyed (tree, leaf), plus their count.
func (st *state) pijLeaves(phaseLo float64) ([][]bool, int) {
	out := make([][]bool, st.coll.NumTrees())
	size := 0
	for i := range st.coll.Sources {
		out[i] = make([]bool, st.n)
		for _, v := range st.coll.HLeaves(i) {
			if !st.coll.Removed[i][v] && float64(st.leafBeta[i][v]) >= phaseLo {
				out[i][v] = true
				size++
			}
		}
	}
	return out, size
}

// computeScoreij computes scoreij(v) = #paths of P_ij containing v via one
// upcast per tree (a result from [2], Step 8 of Algorithm 2), then
// broadcasts the values (O(n)).
func (st *state) computeScoreij(pijLeaf [][]bool) ([]int64, error) {
	// Same sharding shape as recomputeScores: independent per-tree upcasts
	// into per-tree slots, accumulated in tree order afterwards. Trees with
	// no P_ij leaf skip their upcast (and its round charge) exactly as the
	// sequential loop did.
	n := st.n
	counts := make([][]int64, st.coll.NumTrees())
	err := st.nw.ShardRuns(st.coll.NumTrees(), func(w *congest.Network, i int) error {
		any := false
		init := make([]int64, n)
		for _, v := range st.coll.HLeaves(i) {
			if pijLeaf[i][v] {
				init[v] = 1
				any = true
			}
		}
		if !any {
			return nil
		}
		c, err := st.coll.UpcastSum(w, i, init)
		if err != nil {
			return err
		}
		counts[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	scoreij := make([]int64, n)
	for i := range st.coll.Sources {
		if counts[i] == nil {
			continue
		}
		root := st.coll.Sources[i]
		for v := 0; v < n; v++ {
			if v != root && st.coll.InTree(i, v) {
				scoreij[v] += counts[i][v]
			}
		}
	}
	perNode := make([][]broadcast.Item, n)
	for v := 0; v < n; v++ {
		if scoreij[v] > 0 {
			perNode[v] = []broadcast.Item{{A: int64(v), B: scoreij[v]}}
		}
	}
	if _, err := broadcast.AllToAll(st.nw, st.tree, perNode); err != nil {
		return nil, err
	}
	return scoreij, nil
}

// commit adds the chosen nodes to Q, removes the subtrees they root
// (Step 15, Algorithm 6), and recomputes scores (Step 16).
func (st *state) commit(chosen []int) error {
	if len(chosen) == 0 {
		return fmt.Errorf("blocker: empty selection committed")
	}
	inZ := make([]bool, st.n)
	for _, v := range chosen {
		if !st.inQ[v] {
			st.inQ[v] = true
			st.q = append(st.q, v)
		}
		inZ[v] = true
	}
	if err := st.coll.RemoveSubtrees(st.nw, inZ, true); err != nil {
		return err
	}
	return st.recomputeScores()
}

// countFullPaths counts the alive full-length paths of the collection.
func countFullPaths(coll *csssp.Collection) int {
	total := 0
	for i := range coll.Sources {
		total += len(coll.FullLengthLeaves(i))
	}
	return total
}

// Verify checks that q hits every full-length root-to-leaf path of a
// (freshly built, unremoved) collection; used by tests and by the
// RandomSample patch-up. Root nodes do not count as coverage (hyperedges
// exclude the root).
func Verify(coll *csssp.Collection, inQ []bool) error {
	for i := range coll.Sources {
		for _, leaf := range coll.FullLengthLeaves(i) {
			pv := coll.PathVertices(i, leaf)
			covered := false
			for _, u := range pv {
				if inQ[u] {
					covered = true
					break
				}
			}
			if !covered {
				return fmt.Errorf("blocker: path (tree %d, leaf %d) uncovered", i, leaf)
			}
		}
	}
	return nil
}
