package blocker

import (
	"fmt"
	"math"
	"sort"

	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
)

// Mode selects the blocker-set construction algorithm.
type Mode int

const (
	// Deterministic is Algorithm 2' of the paper: the stage/phase selection
	// loop of Algorithm 2 with Steps 12-14 replaced by the derandomized
	// good-set search of Algorithm 7. O~(|S|*h) rounds (Corollary 3.13).
	Deterministic Mode = iota
	// Randomized is Algorithm 2 as written: good sets are drawn from the
	// pairwise-independent sample space and retried until good (Lemma 3.8:
	// success probability >= 1/8 per attempt).
	Randomized
	// Greedy is the baseline of Agarwal et al. [2]: repeatedly take the
	// node covering the most paths. O(|S|*h + n*|Q|) rounds.
	Greedy
	// RandomSample is the classic randomized baseline (Ullman-Yannakakis /
	// Huang et al. [13]): sample each node with probability ~ln(n)/h and
	// patch any uncovered path. O(|S|*h + n) rounds.
	RandomSample
)

// String names the mode as it appears in benchmark tables and logs.
func (m Mode) String() string {
	switch m {
	case Deterministic:
		return "deterministic"
	case Randomized:
		return "randomized"
	case Greedy:
		return "greedy"
	default:
		return "randomsample"
	}
}

// Params configures the construction. Zero values select the paper's
// defaults (eps = delta = 1/12, linear-size sample enumeration).
type Params struct {
	Mode Mode
	// Eps and Delta are the constants of Algorithm 2, both required to be
	// in (0, 1/12] by the analysis; the implementation accepts up to 1/2
	// for experimentation.
	Eps, Delta float64
	// SampleMult: the deterministic search enumerates SampleMult*n sample
	// points of the affine space (default 4), unless UseFullSpace is set.
	SampleMult int
	// UseFullSpace enumerates the entire 2^(2K)-point affine space
	// (exhaustive search; small n only).
	UseFullSpace bool
	// Seed drives the Randomized and RandomSample modes.
	Seed int64
	// MaxSelectionSteps caps the selection loop (safety net); 0 means
	// automatic (16n + 1024).
	MaxSelectionSteps int
}

func (p Params) withDefaults() Params {
	if p.Eps <= 0 || p.Eps > 0.5 {
		p.Eps = 1.0 / 12
	}
	if p.Delta <= 0 || p.Delta > 0.5 {
		p.Delta = 1.0 / 12
	}
	if p.SampleMult <= 0 {
		p.SampleMult = 4
	}
	return p
}

// Stats reports what the construction did; the benchmark harness turns
// these into the EXPERIMENTS.md series.
type Stats struct {
	SelectionSteps    int // iterations of the while loop (Steps 6-16)
	SingleSelections  int // Step 9/10 firings (one high-coverage node)
	GoodSetSelections int // Steps 11-14 / Algorithm 7 firings
	FallbackSteps     int // enumerated slice had no good point; single-best used
	RandomRetries     int // Randomized mode: re-drawn sets that were not good
	StagesVisited     int // stages with nonempty V_i
	PhasesVisited     int // phases entered within visited stages
	Rounds            int // CONGEST rounds consumed by the construction
	// GoodPoints / PointsScanned measure Lemma 3.8 empirically: across all
	// deterministic good-set searches, how many enumerated sample points
	// satisfied Definition 3.1 (the lemma predicts a >= 1/8 fraction over
	// the full pairwise-independent space).
	GoodPoints, PointsScanned int64
}

// Result is a computed blocker set.
type Result struct {
	Q     []int  // blocker node ids, ascending
	InQ   []bool // membership indicator
	Stats Stats
}

// Compute builds a blocker set for the full-length (depth-H) paths of coll.
// It consumes rounds on nw according to the selected algorithm.
func Compute(nw *congest.Network, coll *csssp.Collection, par Params) (*Result, error) {
	par = par.withDefaults()
	switch par.Mode {
	case Greedy:
		return computeGreedy(nw, coll)
	case RandomSample:
		return computeRandomSample(nw, coll, par)
	default:
		return computeSetCover(nw, coll, par)
	}
}

// stateKey keys the pooled set-cover state in the network's scratch
// registry: the selection loop runs per-tree protocol fleets and per-step
// broadcasts hundreds of times, so its working vectors — V_i indicators,
// upcast count matrices, per-leaf betas, broadcast item arenas — are pooled
// on the Network and resized (never reallocated) per Compute call.
type stateKey struct{}

// state carries the shared knowledge of the set-cover algorithm. Fields
// marked "global knowledge" are values that every node holds identical
// copies of after the corresponding broadcast; keeping one copy is the
// simulator's equivalent.
type state struct {
	nw   *congest.Network
	coll *csssp.Collection
	par  Params
	n, h int
	tree *broadcast.Tree // BFS tree rooted at the leader (node 0)

	// Ancestor CSR per tree (Step 1 of Algorithm 7): ancIds[i][ancOff[i][v]
	// : ancOff[i][v+1]] lists the proper ancestors of v in tree i, root
	// excluded, nearest-first. Removals only delete whole paths, so the
	// lists stay valid throughout one Compute.
	ancOff [][]int32
	ancIds [][]int32

	score    []int64 // global knowledge after broadcastScores
	inVi     []bool  // current V_i (derived locally from score)
	viSize   int
	leafBeta [][]int64 // leafBeta[i][v]: |V_i ∩ path(i,v)| for alive full-length leaves; global knowledge
	inQ      []bool
	q        []int
	stats    Stats

	// Pooled work buffers (see ensure/reinit).
	leafBetaBuf []int64            // flat backing of leafBeta
	counts      []int64            // trees x n upcast results (one shared matrix)
	countUsed   []bool             // per-tree: counts row was filled this pass
	pijLeafBuf  []bool             // flat backing of pijLeaf
	pijLeaf     [][]bool           // row views, rebuilt per ensure
	scoreij     []int64            // per-step coverage scores
	inZ         []bool             // commit scratch
	items       [][]broadcast.Item // per-node broadcast item spine
	itemBuf     []broadcast.Item   // flat arena carved into items
	nuBuf       []int64            // 2 x n x m good-set aggregation backing
	nuPi, nuPij [][]int64          // row views into nuBuf
	members     []int              // selected good-set members
}

// reinit points the pooled state at a new (collection, params) pair and
// sizes every buffer, clearing the ones whose previous contents could leak
// into this run.
func (st *state) reinit(nw *congest.Network, coll *csssp.Collection, par Params) {
	st.nw, st.coll, st.par = nw, coll, par
	st.n, st.h = nw.N(), coll.H
	st.tree = nil
	st.stats = Stats{}
	n, trees := st.n, coll.NumTrees()

	st.score = congest.Grow(st.score, n)
	st.inVi = congest.Grow(st.inVi, n)
	st.inQ = congest.Grow(st.inQ, n)
	st.scoreij = congest.Grow(st.scoreij, n)
	st.inZ = congest.Grow(st.inZ, n)
	st.q = st.q[:0]

	st.counts = congest.Grow(st.counts, trees*n)
	st.countUsed = congest.Grow(st.countUsed, trees)
	st.leafBetaBuf = congest.Grow(st.leafBetaBuf, trees*n)
	st.pijLeafBuf = congest.Grow(st.pijLeafBuf, trees*n)
	if cap(st.leafBeta) < trees {
		st.leafBeta = make([][]int64, trees)
		st.pijLeaf = make([][]bool, trees)
	}
	st.leafBeta = st.leafBeta[:trees]
	st.pijLeaf = st.pijLeaf[:trees]
	for i := 0; i < trees; i++ {
		st.leafBeta[i] = st.leafBetaBuf[i*n : (i+1)*n : (i+1)*n]
		st.pijLeaf[i] = st.pijLeafBuf[i*n : (i+1)*n : (i+1)*n]
	}
	if cap(st.ancOff) < trees {
		st.ancOff = make([][]int32, trees)
		st.ancIds = make([][]int32, trees)
	}
	st.ancOff = st.ancOff[:trees]
	st.ancIds = st.ancIds[:trees]
	if cap(st.items) < n {
		st.items = make([][]broadcast.Item, n)
	}
	st.items = st.items[:n]
}

// countsRow returns row i of the pooled trees x n upcast matrix.
func (st *state) countsRow(i int) []int64 {
	return st.counts[i*st.n : (i+1)*st.n : (i+1)*st.n]
}

// ancRow returns the proper ancestors of v in tree i (root excluded,
// nearest-first).
func (st *state) ancRow(i, v int) []int32 {
	off := st.ancOff[i]
	return st.ancIds[i][off[v]:off[v+1]]
}

// singleItems populates the pooled per-node item lists with at most one
// item per node: fill returns the item for v and whether v contributes.
// The returned spine is valid until the next items-buffer use.
func (st *state) singleItems(fill func(v int) (broadcast.Item, bool)) [][]broadcast.Item {
	n := st.n
	if cap(st.itemBuf) < n {
		st.itemBuf = make([]broadcast.Item, n)
	}
	buf := st.itemBuf[:n]
	for v := 0; v < n; v++ {
		if it, ok := fill(v); ok {
			buf[v] = it
			st.items[v] = buf[v : v+1 : v+1]
		} else {
			st.items[v] = nil
		}
	}
	return st.items
}

func computeSetCover(nw *congest.Network, coll *csssp.Collection, par Params) (*Result, error) {
	st := congest.ScratchState(nw.Scratch(), stateKey{}, func() *state { return new(state) })
	st.reinit(nw, coll, par)
	n := st.n
	maxSteps := par.MaxSelectionSteps
	if maxSteps == 0 {
		maxSteps = 16*n + 1024
	}

	roundsBefore := nw.Stats.Rounds
	var err error
	st.tree, err = broadcast.BuildBFS(nw, 0)
	if err != nil {
		return nil, err
	}
	// Step 1 of Algorithm 7: every node collects the ids on each of its
	// tree paths (pipelined Ancestors of [2]; O(|S|*h) rounds). Removals
	// only delete whole paths, so the lists stay valid throughout. The
	// per-tree protocols are independent and dispatch across the
	// work-stealing worker clones (each index owns st.ancOff[i]/ancIds[i]).
	err = nw.ShardRuns(coll.NumTrees(), func(w *congest.Network, i int) error {
		off, ids, err := collectAncestors(w, coll, i)
		if err != nil {
			return err
		}
		st.ancOff[i], st.ancIds[i] = off, ids
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Step 1 of Algorithm 2: compute score(v) ([2], O(|S|*h) rounds), then
	// broadcast all scores so V_i construction is local at every stage
	// (one all-to-all replaces the per-stage id broadcast of Lemma 3.2).
	if err := st.recomputeScores(); err != nil {
		return nil, err
	}

	onePlusEps := 1 + st.par.Eps
	maxStage := int(math.Ceil(math.Log(float64(n)*float64(n))/math.Log(onePlusEps))) + 1
	maxPhase := int(math.Ceil(math.Log(float64(st.h))/math.Log(onePlusEps))) + 1
	if maxPhase < 1 {
		maxPhase = 1
	}

	for i := maxStage; i >= 1; i-- {
		stageLo := math.Pow(onePlusEps, float64(i-1))
		stageHi := math.Pow(onePlusEps, float64(i))
		if !st.rebuildVi(stageLo) {
			continue // V_i empty: known locally from the score broadcast
		}
		st.stats.StagesVisited++
		needRefresh := true
		for j := maxPhase; j >= 1; j-- {
			phaseLo := math.Pow(onePlusEps, float64(j-1))
			st.stats.PhasesVisited++
			for {
				if st.stats.SelectionSteps > maxSteps {
					return nil, fmt.Errorf("blocker: selection steps exceeded safety cap %d", maxSteps)
				}
				if needRefresh {
					// Steps 3-4 / 7(a): Compute-Pi/Pij downcasts per tree,
					// then one all-to-all of per-leaf beta values so that
					// every node can evaluate |P_ij| for every j locally
					// (Algorithm 5).
					if err := st.refreshBetas(); err != nil {
						return nil, err
					}
					needRefresh = false
				}
				pijLeaf, pijSize := st.pijLeaves(phaseLo)
				if pijSize == 0 {
					break // phase done
				}
				st.stats.SelectionSteps++
				// Step 8: scoreij via per-tree upcasts + broadcast.
				scoreij, err := st.computeScoreij(pijLeaf)
				if err != nil {
					return nil, err
				}
				// Step 9: a single node covering > delta^3/(1+eps) of P_ij?
				thr := st.par.Delta * st.par.Delta * st.par.Delta / onePlusEps * float64(pijSize)
				best, bestVal := -1, int64(0)
				for v := 0; v < n; v++ {
					if st.inVi[v] && (scoreij[v] > bestVal || (scoreij[v] == bestVal && bestVal > 0 && best >= 0 && v < best)) {
						best, bestVal = v, scoreij[v]
					}
				}
				var chosen []int
				if best >= 0 && float64(bestVal) > thr {
					st.members = append(st.members[:0], best) // Step 10
					chosen = st.members
					st.stats.SingleSelections++
				} else {
					chosen, err = st.selectGoodSet(i, j, stageHi, pijLeaf, pijSize, scoreij, best)
					if err != nil {
						return nil, err
					}
				}
				if err := st.commit(chosen); err != nil {
					return nil, err
				}
				st.rebuildVi(stageLo)
				needRefresh = true
			}
		}
	}
	// Sanity: the set-cover loop must have covered everything (Lemma A.7).
	if remaining := countFullPaths(coll); remaining != 0 {
		return nil, fmt.Errorf("blocker: %d full-length paths remain uncovered", remaining)
	}
	st.stats.Rounds = nw.Stats.Rounds - roundsBefore
	sort.Ints(st.q)
	// Copy the set out of the pooled state: the caller retains Q/InQ for
	// the rest of the pipeline while this state gets reused.
	return &Result{
		Q:     append([]int(nil), st.q...),
		InQ:   append([]bool(nil), st.inQ...),
		Stats: st.stats,
	}, nil
}

// rebuildVi recomputes V_i = {v : score(v) >= lo} locally (scores are
// global knowledge). It reports whether V_i is nonempty.
func (st *state) rebuildVi(lo float64) bool {
	st.viSize = 0
	for v := 0; v < st.n; v++ {
		if float64(st.score[v]) >= lo {
			st.inVi[v] = true
			st.viSize++
		} else {
			st.inVi[v] = false
		}
	}
	return st.viSize > 0
}

// recomputeScores runs the per-tree subtree-count upcasts ([2]'s score
// algorithm; O(|S|*h) rounds) and broadcasts all scores (O(n)). The
// upcasts are independent per-tree protocols: they source-shard across
// worker clones, each writing only its tree's row of the pooled count
// matrix, and the score accumulation happens afterwards in tree order
// (int64 sums are exact, so the result is bit-identical to the sequential
// loop).
func (st *state) recomputeScores() error {
	n := st.n
	err := st.nw.ShardRuns(st.coll.NumTrees(), func(w *congest.Network, i int) error {
		init := w.Scratch().Int64s(n)
		for _, v := range st.coll.HLeaves(i) {
			if !st.coll.Removed[i][v] {
				init[v] = 1
			}
		}
		return st.coll.UpcastSumInto(w, i, init, st.countsRow(i))
	})
	if err != nil {
		return err
	}
	score := st.score
	clear(score)
	for i := range st.coll.Sources {
		root := st.coll.Sources[i]
		counts := st.countsRow(i)
		for v := 0; v < n; v++ {
			if v != root && st.coll.InTree(i, v) {
				score[v] += counts[v]
			}
		}
	}
	// All-to-all broadcast of (id, score) items: O(n) rounds (Lemma A.2).
	perNode := st.singleItems(func(v int) (broadcast.Item, bool) {
		return broadcast.Item{A: int64(v), B: score[v]}, score[v] > 0
	})
	if _, err := broadcast.AllToAll(st.nw, st.tree, perNode); err != nil {
		return err
	}
	return nil
}

// refreshBetas recomputes leafBeta (the |V_i ∩ path| counts) with the
// Compute-Pij downcast per tree, then shares the per-leaf values by one
// all-to-all broadcast so every node can evaluate any |P_ij| locally.
func (st *state) refreshBetas() error {
	// Per-tree downcasts, source-sharded (index i owns leafBeta[i]); the
	// broadcast item lists are then assembled sequentially in tree order so
	// each leaf's item sequence matches the sequential schedule exactly.
	err := st.nw.ShardRuns(st.coll.NumTrees(), func(w *congest.Network, i int) error {
		beta := w.Scratch().Int64s(st.n)
		if err := computePijDowncastInto(w, st.coll, i, st.inVi, beta); err != nil {
			return err
		}
		lb := st.leafBeta[i]
		clear(lb)
		for _, v := range st.coll.HLeaves(i) {
			if !st.coll.Removed[i][v] {
				lb[v] = beta[v]
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Per-leaf betas: at most one item per (leaf, tree) pair with a V_i
	// node; the all-to-all is O(n + K) rounds for K items (Lemma A.2).
	// Count, carve from the pooled arena, then fill in tree order (the
	// per-leaf item sequence matches the sequential append schedule).
	cnt := st.scoreij // borrow: rewritten by the next computeScoreij anyway
	clear(cnt)
	total := 0
	for i := range st.coll.Sources {
		for _, v := range st.coll.HLeaves(i) {
			if st.leafBeta[i][v] > 0 {
				cnt[v]++
				total++
			}
		}
	}
	if cap(st.itemBuf) < total {
		st.itemBuf = make([]broadcast.Item, total)
	}
	buf := st.itemBuf[:total]
	off := 0
	for v := 0; v < st.n; v++ {
		if cnt[v] > 0 {
			end := off + int(cnt[v])
			st.items[v] = buf[off:off:end]
			off = end
		} else {
			st.items[v] = nil
		}
	}
	for i := range st.coll.Sources {
		for _, v := range st.coll.HLeaves(i) {
			if b := st.leafBeta[i][v]; b > 0 {
				st.items[v] = append(st.items[v], broadcast.Item{A: int64(v), B: int64(i), C: b})
			}
		}
	}
	if _, err := broadcast.AllToAll(st.nw, st.tree, st.items); err != nil {
		return err
	}
	return nil
}

// pijLeaves returns the indicator of alive full-length paths with at least
// phaseLo V_i-nodes, keyed (tree, leaf), plus their count. The rows are
// pooled and valid until the next pijLeaves call.
func (st *state) pijLeaves(phaseLo float64) ([][]bool, int) {
	clear(st.pijLeafBuf)
	size := 0
	for i := range st.coll.Sources {
		row := st.pijLeaf[i]
		for _, v := range st.coll.HLeaves(i) {
			if !st.coll.Removed[i][v] && float64(st.leafBeta[i][v]) >= phaseLo {
				row[v] = true
				size++
			}
		}
	}
	return st.pijLeaf, size
}

// computeScoreij computes scoreij(v) = #paths of P_ij containing v via one
// upcast per tree (a result from [2], Step 8 of Algorithm 2), then
// broadcasts the values (O(n)). The returned vector is pooled (valid until
// the next computeScoreij call).
func (st *state) computeScoreij(pijLeaf [][]bool) ([]int64, error) {
	// Same sharding shape as recomputeScores: independent per-tree upcasts
	// into per-tree rows, accumulated in tree order afterwards. Trees with
	// no P_ij leaf skip their upcast (and its round charge) exactly as the
	// sequential loop did.
	n := st.n
	err := st.nw.ShardRuns(st.coll.NumTrees(), func(w *congest.Network, i int) error {
		any := false
		init := w.Scratch().Int64s(n)
		for _, v := range st.coll.HLeaves(i) {
			if pijLeaf[i][v] {
				init[v] = 1
				any = true
			}
		}
		st.countUsed[i] = any
		if !any {
			return nil
		}
		return st.coll.UpcastSumInto(w, i, init, st.countsRow(i))
	})
	if err != nil {
		return nil, err
	}
	scoreij := st.scoreij
	clear(scoreij)
	for i := range st.coll.Sources {
		if !st.countUsed[i] {
			continue
		}
		root := st.coll.Sources[i]
		counts := st.countsRow(i)
		for v := 0; v < n; v++ {
			if v != root && st.coll.InTree(i, v) {
				scoreij[v] += counts[v]
			}
		}
	}
	perNode := st.singleItems(func(v int) (broadcast.Item, bool) {
		return broadcast.Item{A: int64(v), B: scoreij[v]}, scoreij[v] > 0
	})
	if _, err := broadcast.AllToAll(st.nw, st.tree, perNode); err != nil {
		return nil, err
	}
	return scoreij, nil
}

// commit adds the chosen nodes to Q, removes the subtrees they root
// (Step 15, Algorithm 6), and recomputes scores (Step 16).
func (st *state) commit(chosen []int) error {
	if len(chosen) == 0 {
		return fmt.Errorf("blocker: empty selection committed")
	}
	clear(st.inZ)
	for _, v := range chosen {
		if !st.inQ[v] {
			st.inQ[v] = true
			st.q = append(st.q, v)
		}
		st.inZ[v] = true
	}
	if err := st.coll.RemoveSubtrees(st.nw, st.inZ, true); err != nil {
		return err
	}
	return st.recomputeScores()
}

// countFullPaths counts the alive full-length paths of the collection.
func countFullPaths(coll *csssp.Collection) int {
	total := 0
	for i := range coll.Sources {
		for _, v := range coll.HLeaves(i) {
			if !coll.Removed[i][v] {
				total++
			}
		}
	}
	return total
}

// Verify checks that q hits every full-length root-to-leaf path of a
// (freshly built, unremoved) collection; used by tests and by the
// RandomSample patch-up. Root nodes do not count as coverage (hyperedges
// exclude the root).
func Verify(coll *csssp.Collection, inQ []bool) error {
	for i := range coll.Sources {
		for _, leaf := range coll.FullLengthLeaves(i) {
			pv := coll.PathVertices(i, leaf)
			covered := false
			for _, u := range pv {
				if inQ[u] {
					covered = true
					break
				}
			}
			if !covered {
				return fmt.Errorf("blocker: path (tree %d, leaf %d) uncovered", i, leaf)
			}
		}
	}
	return nil
}
