// Package frame is the length-prefixed, checksummed record codec shared by
// the serving layer's write-ahead journal / checkpoint snapshots
// (internal/serve via internal/graphio, DESIGN.md §12) and the tiled
// matrix backend's spill files (internal/mat, DESIGN.md §13). A frame is:
//
//	[4B big-endian payload length][4B big-endian CRC32C(payload)][payload]
//
// The CRC is Castagnoli (the polynomial storage systems standardize on,
// hardware-accelerated on amd64/arm64). Frames are self-delimiting, so a
// reader can walk a buffer record by record and — critically for crash
// recovery — distinguish a clean end (io.EOF exactly at a frame boundary)
// from a torn or corrupt tail (ErrTorn): a partial header, a length beyond
// the cap, a payload cut short by the crash, or a checksum mismatch.
// Appends are a single contiguous write, so a crashed writer can tear at
// most the final frame.
//
// The package sits below both graphio and mat on purpose: graphio depends
// on graph, graph's oracles depend on mat, and mat's spill path needs the
// codec — only a leaf package serves all three without a cycle.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxPayload caps a single frame's payload (64 MiB). The bound turns a
// corrupt or hostile length word into ErrTorn instead of an attempted
// multi-gigabyte allocation.
const MaxPayload = 1 << 26

// HeaderSize is the fixed per-frame overhead (length + CRC words).
const HeaderSize = 8

// ErrTorn reports a frame that does not parse: truncated mid-header or
// mid-payload (the torn tail a crash leaves), an implausible length, or a
// payload failing its checksum. Everything before the torn frame is
// intact; recovery truncates the file there and carries on.
var ErrTorn = errors.New("frame: torn or corrupt frame")

// crcTable is the Castagnoli CRC32C table shared by writer and reader.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Append appends the framed form of payload to dst and returns the
// extended slice (append-style). The frame is laid out contiguously so a
// caller can hand it to a single Write call — the property that bounds
// crash damage to one torn tail frame.
func Append(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, fmt.Errorf("frame: payload %d exceeds cap %d", len(payload), MaxPayload)
	}
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// Next parses the first frame in data. It returns the payload (aliasing
// data — copy it to retain past the buffer's lifetime) and the total
// encoded size consumed. An empty input returns io.EOF (the clean end of a
// well-formed stream); anything else that does not parse — short header,
// length over the cap, truncated payload, CRC mismatch — returns ErrTorn.
func Next(data []byte) (payload []byte, n int, err error) {
	if len(data) == 0 {
		return nil, 0, io.EOF
	}
	if len(data) < HeaderSize {
		return nil, 0, ErrTorn
	}
	length := binary.BigEndian.Uint32(data[0:4])
	if length > MaxPayload {
		return nil, 0, ErrTorn
	}
	end := HeaderSize + int(length)
	if len(data) < end {
		return nil, 0, ErrTorn
	}
	payload = data[HeaderSize:end]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(data[4:8]) {
		return nil, 0, ErrTorn
	}
	return payload, end, nil
}
