//go:build matcheck

package mat

import "testing"

// These tests only exist under the matcheck tag: they pin that a
// misindexed access — which the flat layout would otherwise satisfy
// silently from a neighboring row — panics loudly in checked builds.

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected bounds panic", name)
		}
	}()
	f()
}

func TestBoundsChecksPanic(t *testing.T) {
	m := New(2, 3)
	mustPanic(t, "At col", func() { m.At(0, 3) })
	mustPanic(t, "At row", func() { m.At(2, 0) })
	mustPanic(t, "At negative", func() { m.At(-1, 0) })
	mustPanic(t, "Set col", func() { m.Set(1, 3, 9) })
	mustPanic(t, "Row", func() { m.Row(2) })

	mi := NewInt(2, 3)
	mustPanic(t, "Int At col", func() { mi.At(1, 3) })
	mustPanic(t, "Int Set row", func() { mi.Set(2, 0, 9) })
	mustPanic(t, "Int Row", func() { mi.Row(-1) })

	// In-bounds accesses still work in checked builds.
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("checked Set/At round trip failed")
	}
}
