//go:build matcheck

package mat

import "testing"

// These tests only exist under the matcheck tag: they pin that a
// misindexed access — which the flat layout would otherwise satisfy
// silently from a neighboring row — panics loudly in checked builds.

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected bounds panic", name)
		}
	}()
	f()
}

func TestBoundsChecksPanic(t *testing.T) {
	m := New(2, 3)
	mustPanic(t, "At col", func() { m.At(0, 3) })
	mustPanic(t, "At row", func() { m.At(2, 0) })
	mustPanic(t, "At negative", func() { m.At(-1, 0) })
	mustPanic(t, "Set col", func() { m.Set(1, 3, 9) })
	mustPanic(t, "Row", func() { m.Row(2) })

	mi := NewInt(2, 3)
	mustPanic(t, "Int At col", func() { mi.At(1, 3) })
	mustPanic(t, "Int Set row", func() { mi.Set(2, 0, 9) })
	mustPanic(t, "Int Row", func() { mi.Row(-1) })

	// In-bounds accesses still work in checked builds.
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("checked Set/At round trip failed")
	}
}

func TestTiledBoundsChecksPanic(t *testing.T) {
	td := NewTiledInt64(4, 3, 0, TileConfig{TileRows: 2, MaxResident: 2, Dir: t.TempDir()})
	defer td.Release()
	mustPanic(t, "tiled At col", func() { td.At(0, 3) })
	mustPanic(t, "tiled At row", func() { td.At(4, 0) })
	mustPanic(t, "tiled Set negative", func() { td.Set(-1, 0, 9) })
	mustPanic(t, "tiled SetRow", func() { td.SetRow(4, make([]int64, 3)) })
	mustPanic(t, "tiled CopyRow", func() { td.CopyRow(make([]int64, 3), -1) })

	ti := NewTiledInt(4, 3, 0, TileConfig{TileRows: 2, MaxResident: 2, Dir: t.TempDir()})
	defer ti.Release()
	mustPanic(t, "tiled Int At", func() { ti.At(1, 3) })
	mustPanic(t, "tiled Int Set", func() { ti.Set(4, 0, 9) })

	// In-bounds accesses still work in checked builds.
	td.Set(3, 2, 5)
	if td.At(3, 2) != 5 {
		t.Fatal("checked tiled Set/At round trip failed")
	}
}
