package mat

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"congestapsp/internal/frame"
)

// Tiled matrix backend: the rows x cols surface is split into fixed-size
// row-tile blocks (tileRows consecutive rows per tile), of which at most
// maxResident are held in memory at once. When a miss would exceed the
// budget, the least-recently-used tile is evicted — written to an
// append-only spill file as a CRC-framed record (internal/frame, the same
// codec under the serving journal) if it is dirty, or simply dropped if the
// on-disk copy is current. Reloads validate the frame checksum before
// trusting a byte. Tiles that have never been written spill nothing and
// reload as fill-initialized — a zero-cost lazy zero.
//
// The spill file is append-only: rewriting a dirty tile appends a fresh
// frame and repoints the tile's offset table entry, leaving the stale frame
// as garbage. That trades disk for the crash-simplicity of never seeking a
// writer, and matrices here live for one Run — the file is deleted by
// Release.
//
// All operations are mutex-guarded, so shard workers writing disjoint rows
// remain safe (they serialize, which is the price of spilled storage; the
// flat backend keeps its lock-free disjoint-row property). Spill I/O
// failures panic with a descriptive error — the pipeline's per-stage panic
// isolation converts that into a *congest.PanicError for the caller.

// tileTargetBytes is the geometry target: tile row counts are chosen so one
// tile's payload is about this size — large enough to amortize frame and
// syscall overhead, small enough that a handful fit in tight budgets.
const tileTargetBytes = 1 << 20

// elemSize is the on-disk (and in-memory, on 64-bit hosts) size of one
// element; both int64 and int encode as 8-byte little-endian words.
const elemSize = 8

// TileConfig sizes a tiled matrix. Zero values derive sane geometry.
type TileConfig struct {
	// Budget is the resident-byte target for this one matrix; the resident
	// tile count is derived from it when MaxResident is 0.
	Budget int64
	// TileRows overrides rows-per-tile (0 = derive from tileTargetBytes).
	TileRows int
	// MaxResident overrides the resident tile cap (0 = derive from Budget).
	MaxResident int
	// Dir is where the spill file is created ("" = os.TempDir()).
	Dir string
}

// SpillStats reports a tiled matrix's geometry and spill activity.
type SpillStats struct {
	Tiles       int   // total tiles covering the matrix
	TileRows    int   // rows per tile (last tile may be ragged)
	MaxResident int   // resident tile cap
	Evictions   int64 // tiles evicted (dirty or clean)
	Spills      int64 // dirty evictions that wrote a frame
	Reloads     int64 // tiles re-read and checksum-validated from disk
	SpillBytes  int64 // total bytes appended to the spill file
}

// tileLoc is a tile's current frame in the spill file; size 0 means the
// tile has never been spilled (reloads as fill).
type tileLoc struct {
	off  int64
	size int
}

// tile is one resident block of tileRows*cols elements plus LRU links.
type tile[T int64 | int] struct {
	idx        int
	data       []T
	dirty      bool
	prev, next *tile[T]
}

type tiled[T int64 | int] struct {
	mu          sync.Mutex
	rows, cols  int
	tileRows    int
	maxResident int
	fill        T
	resident    []*tile[T] // by tile index; nil = not resident
	loc         []tileLoc  // by tile index
	nResident   int
	head, tail  *tile[T] // LRU: head = most recent, tail = eviction victim
	free        []T      // one recycled data slab from the last eviction
	f           *os.File
	fsize       int64
	dir         string
	buf         []byte // scratch payload encode buffer
	fbuf        []byte // scratch framed-record buffer (write and read side)
	stats       SpillStats
}

// tileGeometry derives (tileRows, maxResident) from a byte budget. The
// resident cap is at least 2 so a row copy plus a concurrent reader cannot
// thrash a single slot, and at most the total tile count.
func tileGeometry(rows, cols int, cfg TileConfig) (int, int) {
	tr := cfg.TileRows
	if tr <= 0 {
		rowBytes := cols * elemSize
		if rowBytes <= 0 {
			rowBytes = elemSize
		}
		tr = tileTargetBytes / rowBytes
		if tr < 1 {
			tr = 1
		}
	}
	if tr > rows && rows > 0 {
		tr = rows
	}
	// Keep a tile's frame payload far under the codec's 64 MiB cap.
	for tr > 1 && tr*cols*elemSize > frame.MaxPayload/4 {
		tr /= 2
	}
	if cfg.TileRows <= 0 && cfg.Budget > 0 {
		// A derived tile must be at most a quarter of the budget, so the LRU
		// can hold several tiles and actually rotate instead of thrashing
		// one oversized slot.
		maxTileBytes := cfg.Budget / 4
		for tr > 1 && int64(tr)*int64(cols)*elemSize > maxTileBytes {
			tr /= 2
		}
	}
	tiles := (rows + tr - 1) / tr
	mr := cfg.MaxResident
	if mr <= 0 {
		tileBytes := int64(tr) * int64(cols) * elemSize
		if cfg.Budget > 0 && tileBytes > 0 {
			mr = int(cfg.Budget / tileBytes)
		} else {
			mr = tiles
		}
	}
	if mr < 2 {
		mr = 2
	}
	if tiles > 0 && mr > tiles {
		mr = tiles
	}
	return tr, mr
}

func newTiled[T int64 | int](rows, cols int, fill T, cfg TileConfig) *tiled[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	tr, mr := tileGeometry(rows, cols, cfg)
	tiles := 0
	if rows > 0 {
		tiles = (rows + tr - 1) / tr
	}
	m := &tiled[T]{
		rows: rows, cols: cols,
		tileRows: tr, maxResident: mr,
		fill:     fill,
		resident: make([]*tile[T], tiles),
		loc:      make([]tileLoc, tiles),
		dir:      cfg.Dir,
	}
	m.stats.Tiles = tiles
	m.stats.TileRows = tr
	m.stats.MaxResident = mr
	return m
}

// tileSpan returns the element count of tile t (the last tile is ragged
// when tileRows does not divide rows).
func (m *tiled[T]) tileSpan(t int) int {
	r := m.tileRows
	if (t+1)*m.tileRows > m.rows {
		r = m.rows - t*m.tileRows
	}
	return r * m.cols
}

// lruFront moves tl to the head of the LRU list, linking it if new.
func (m *tiled[T]) lruFront(tl *tile[T]) {
	if m.head == tl {
		return
	}
	// Unlink if already in the list.
	if tl.prev != nil || tl.next != nil || m.tail == tl {
		if tl.prev != nil {
			tl.prev.next = tl.next
		}
		if tl.next != nil {
			tl.next.prev = tl.prev
		}
		if m.tail == tl {
			m.tail = tl.prev
		}
	}
	tl.prev = nil
	tl.next = m.head
	if m.head != nil {
		m.head.prev = tl
	}
	m.head = tl
	if m.tail == nil {
		m.tail = tl
	}
}

// evictTail spills (if dirty) and drops the least-recently-used tile,
// recycling its data slab for the next load.
func (m *tiled[T]) evictTail() {
	victim := m.tail
	if victim == nil {
		panic("mat: tiled eviction with empty LRU")
	}
	if victim.dirty {
		m.spill(victim)
	}
	if victim.prev != nil {
		victim.prev.next = nil
	}
	m.tail = victim.prev
	if m.head == victim {
		m.head = nil
	}
	m.resident[victim.idx] = nil
	m.nResident--
	m.free = victim.data
	victim.data = nil
	victim.prev, victim.next = nil, nil
	m.stats.Evictions++
}

// spill appends tile tl as one framed record and repoints its location.
func (m *tiled[T]) spill(tl *tile[T]) {
	if m.f == nil {
		f, err := os.CreateTemp(m.dir, "congestapsp-tiles-*.spill")
		if err != nil {
			panic(fmt.Errorf("mat: create spill file: %w", err))
		}
		m.f = f
	}
	span := m.tileSpan(tl.idx)
	need := 8 + span*elemSize
	if cap(m.buf) < need {
		m.buf = make([]byte, 0, need)
	}
	payload := m.buf[:need]
	binary.LittleEndian.PutUint64(payload[:8], uint64(tl.idx))
	for i, v := range tl.data[:span] {
		binary.LittleEndian.PutUint64(payload[8+i*8:], uint64(int64(v)))
	}
	framed, err := frame.Append(m.fbuf[:0], payload)
	if err != nil {
		panic(fmt.Errorf("mat: frame tile %d: %w", tl.idx, err))
	}
	m.fbuf = framed[:0]
	if _, err := m.f.WriteAt(framed, m.fsize); err != nil {
		panic(fmt.Errorf("mat: spill tile %d: %w", tl.idx, err))
	}
	m.loc[tl.idx] = tileLoc{off: m.fsize, size: len(framed)}
	m.fsize += int64(len(framed))
	m.stats.Spills++
	m.stats.SpillBytes += int64(len(framed))
	tl.dirty = false
}

// reload reads tile t's frame back, validating the checksum and index.
func (m *tiled[T]) reload(t int, dst []T) {
	lc := m.loc[t]
	if cap(m.fbuf) < lc.size {
		m.fbuf = make([]byte, 0, lc.size)
	}
	raw := m.fbuf[:lc.size]
	if _, err := m.f.ReadAt(raw, lc.off); err != nil {
		panic(fmt.Errorf("mat: reload tile %d: %w", t, err))
	}
	payload, _, err := frame.Next(raw)
	if err != nil {
		panic(fmt.Errorf("mat: reload tile %d: %w", t, err))
	}
	span := m.tileSpan(t)
	if len(payload) != 8+span*elemSize {
		panic(fmt.Errorf("mat: reload tile %d: payload %d bytes, want %d", t, len(payload), 8+span*elemSize))
	}
	if got := int(binary.LittleEndian.Uint64(payload[:8])); got != t {
		panic(fmt.Errorf("mat: reload tile %d: frame tagged %d", t, got))
	}
	for i := range dst[:span] {
		dst[i] = T(int64(binary.LittleEndian.Uint64(payload[8+i*8:])))
	}
	m.stats.Reloads++
}

// tileFor returns the resident tile covering row i, loading (and evicting)
// as needed. Caller holds m.mu.
func (m *tiled[T]) tileFor(i int) *tile[T] {
	t := i / m.tileRows
	if tl := m.resident[t]; tl != nil {
		m.lruFront(tl)
		return tl
	}
	if m.nResident >= m.maxResident {
		m.evictTail()
	}
	span := m.tileSpan(t)
	data := m.free
	m.free = nil
	if cap(data) < span {
		data = make([]T, span)
		if m.fill != 0 {
			for j := range data {
				data[j] = m.fill
			}
		}
	} else {
		data = data[:span]
		for j := range data {
			data[j] = m.fill
		}
	}
	tl := &tile[T]{idx: t, data: data}
	if m.loc[t].size > 0 {
		m.reload(t, tl.data)
	}
	m.resident[t] = tl
	m.nResident++
	m.lruFront(tl)
	return tl
}

func (m *tiled[T]) Rows() int { return m.rows }
func (m *tiled[T]) Cols() int { return m.cols }

func (m *tiled[T]) At(i, j int) T {
	check(i, j, m.rows, m.cols)
	m.mu.Lock()
	tl := m.tileFor(i)
	v := tl.data[(i-tl.idx*m.tileRows)*m.cols+j]
	m.mu.Unlock()
	return v
}

func (m *tiled[T]) Set(i, j int, v T) {
	check(i, j, m.rows, m.cols)
	m.mu.Lock()
	tl := m.tileFor(i)
	tl.data[(i-tl.idx*m.tileRows)*m.cols+j] = v
	tl.dirty = true
	m.mu.Unlock()
}

func (m *tiled[T]) SetRow(i int, src []T) {
	checkRow(i, m.rows)
	m.mu.Lock()
	tl := m.tileFor(i)
	off := (i - tl.idx*m.tileRows) * m.cols
	copy(tl.data[off:off+m.cols], src)
	tl.dirty = true
	m.mu.Unlock()
}

func (m *tiled[T]) CopyRow(dst []T, i int) {
	checkRow(i, m.rows)
	m.mu.Lock()
	tl := m.tileFor(i)
	off := (i - tl.idx*m.tileRows) * m.cols
	copy(dst, tl.data[off:off+m.cols])
	m.mu.Unlock()
}

// Dense returns nil: the tiled backend exists precisely because the full
// surface does not fit the budget. Callers must fall back to At/CopyRow.
func (m *tiled[T]) Dense() [][]T { return nil }

// Stats snapshots geometry and spill counters.
func (m *tiled[T]) Stats() SpillStats {
	m.mu.Lock()
	s := m.stats
	m.mu.Unlock()
	return s
}

// Release closes and deletes the spill file. Safe to call more than once;
// the matrix must not be used afterward.
func (m *tiled[T]) Release() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	name := m.f.Name()
	errClose := m.f.Close()
	m.f = nil
	if err := os.Remove(name); err != nil && errClose == nil {
		errClose = err
	}
	return errClose
}

// TiledInt64 is the spillable int64 backend (distance tables).
type TiledInt64 struct{ tiled[int64] }

// NewTiledInt64 returns a rows x cols tiled matrix with every element fill.
func NewTiledInt64(rows, cols int, fill int64, cfg TileConfig) *TiledInt64 {
	return &TiledInt64{*newTiled[int64](rows, cols, fill, cfg)}
}

// TiledInt is the spillable int backend (last-hop tables).
type TiledInt struct{ tiled[int] }

// NewTiledInt returns a rows x cols tiled int matrix with every element fill.
func NewTiledInt(rows, cols int, fill int, cfg TileConfig) *TiledInt {
	return &TiledInt{*newTiled[int](rows, cols, fill, cfg)}
}
