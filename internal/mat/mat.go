// Package mat provides the flat row-major matrix storage used for all of
// the pipeline's n x n and n x |Q| state (distance matrices, last-hop
// tables, the Step-3/Step-5 blocker matrices, the q-sink result, and the
// sequential oracles).
//
// A Matrix is one contiguous backing slice; Row(i) returns a zero-copy,
// capacity-capped view of row i. The layout buys three things over
// [][]T-of-separate-allocations:
//
//   - one allocation and one pointer indirection instead of rows+1, so the
//     min-plus closures and row scans in core.Run walk memory linearly;
//   - disjoint-row writes are safe from concurrent goroutines, which is what
//     lets the source-sharded pipeline write Dist/deltaH rows from worker
//     clones without locks (each source owns exactly one row);
//   - row views can be handed out as a [][]T surface (RowViews) without
//     copying, which is how pkg/apsp keeps its public [][]int64 contract.
//
// Invariants: Row(i) aliases the backing slice but is capacity-capped to the
// row, so appends to a view can never spill into the next row; a Matrix is
// never resized after construction.
//
// Because the storage is flat, a misindexed At/Set/Row would silently read
// or write a neighboring row where the old [][]int64 representation
// panicked. Builds tagged `matcheck` (CI runs the race suite with it) turn
// every access into a bounds-asserted one that fails loudly instead; the
// default build keeps the checks compiled out of the hot loops.
package mat

import "fmt"

// check panics when (i, j) is outside a rows x cols matrix; it compiles to
// nothing unless the matcheck build tag is set.
func check(i, j, rows, cols int) {
	if checkEnabled {
		if uint(i) >= uint(rows) || uint(j) >= uint(cols) {
			panic(fmt.Sprintf("mat: index (%d, %d) out of range for %dx%d matrix", i, j, rows, cols))
		}
	}
}

// checkRow panics when i is not a valid row index; compiled out without
// the matcheck build tag.
func checkRow(i, rows int) {
	if checkEnabled {
		if uint(i) >= uint(rows) {
			panic(fmt.Sprintf("mat: row %d out of range for %d rows", i, rows))
		}
	}
}

// Matrix is a flat row-major rows x cols matrix of int64.
type Matrix struct {
	rows, cols int
	data       []int64
}

// New returns a zero-filled rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]int64, rows*cols)}
}

// NewFilled returns a rows x cols matrix with every element set to fill.
func NewFilled(rows, cols int, fill int64) *Matrix {
	m := New(rows, cols)
	if fill != 0 {
		m.Fill(fill)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns a zero-copy view of row i, capacity-capped to the row so an
// append can never overwrite the next row. Distinct rows may be written
// concurrently.
func (m *Matrix) Row(i int) []int64 {
	checkRow(i, m.rows)
	off := i * m.cols
	return m.data[off : off+m.cols : off+m.cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) int64 {
	check(i, j, m.rows, m.cols)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v int64) {
	check(i, j, m.rows, m.cols)
	m.data[i*m.cols+j] = v
}

// Fill sets every element to v.
func (m *Matrix) Fill(v int64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// RowViews materializes the [][]int64 surface: a slice of zero-copy row
// views. Mutating an element through a view mutates the matrix.
func (m *Matrix) RowViews() [][]int64 {
	out := make([][]int64, m.rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// SetRow copies src into row i (src must be exactly one row long).
func (m *Matrix) SetRow(i int, src []int64) {
	copy(m.Row(i), src)
}

// CopyRow copies row i into dst (dst must be exactly one row long).
func (m *Matrix) CopyRow(dst []int64, i int) {
	copy(dst, m.Row(i))
}

// Dense returns the zero-copy [][]int64 surface: the flat backend always
// materializes (it IS the dense storage), so callers on the fast path can
// index rows directly instead of going through the interface.
func (m *Matrix) Dense() [][]int64 { return m.RowViews() }

// Release is a no-op on the flat backend (it holds no external resources);
// it exists so *Matrix satisfies Int64M.
func (m *Matrix) Release() error { return nil }

// Int is a flat row-major rows x cols matrix of int (last-hop and parent
// tables).
type Int struct {
	rows, cols int
	data       []int
}

// NewInt returns a zero-filled rows x cols int matrix.
func NewInt(rows, cols int) *Int {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Int{rows: rows, cols: cols, data: make([]int, rows*cols)}
}

// NewIntFilled returns a rows x cols int matrix with every element fill.
func NewIntFilled(rows, cols int, fill int) *Int {
	m := NewInt(rows, cols)
	if fill != 0 {
		for i := range m.data {
			m.data[i] = fill
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Int) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Int) Cols() int { return m.cols }

// Row returns a zero-copy, capacity-capped view of row i.
func (m *Int) Row(i int) []int {
	checkRow(i, m.rows)
	off := i * m.cols
	return m.data[off : off+m.cols : off+m.cols]
}

// At returns element (i, j).
func (m *Int) At(i, j int) int {
	check(i, j, m.rows, m.cols)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Int) Set(i, j int, v int) {
	check(i, j, m.rows, m.cols)
	m.data[i*m.cols+j] = v
}

// RowViews materializes the [][]int surface of zero-copy row views.
func (m *Int) RowViews() [][]int {
	out := make([][]int, m.rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// SetRow copies src into row i (src must be exactly one row long).
func (m *Int) SetRow(i int, src []int) {
	copy(m.Row(i), src)
}

// CopyRow copies row i into dst (dst must be exactly one row long).
func (m *Int) CopyRow(dst []int, i int) {
	copy(dst, m.Row(i))
}

// Dense returns the zero-copy [][]int surface (see Matrix.Dense).
func (m *Int) Dense() [][]int { return m.RowViews() }

// Release is a no-op on the flat backend; it exists so *Int satisfies IntM.
func (m *Int) Release() error { return nil }
