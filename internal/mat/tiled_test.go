package mat

import (
	"math/rand"
	"os"
	"strings"
	"testing"
)

// TestTiledEvictReloadRoundTrip forces heavy eviction traffic with a
// 2-tile budget and checks every cell survives the spill/reload cycle.
func TestTiledEvictReloadRoundTrip(t *testing.T) {
	const rows, cols = 64, 48
	dir := t.TempDir()
	m := NewTiledInt64(rows, cols, 0, TileConfig{TileRows: 4, MaxResident: 2, Dir: dir})
	want := make([][]int64, rows)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		want[i] = make([]int64, cols)
		for j := 0; j < cols; j++ {
			want[i][j] = rng.Int63n(1 << 40)
		}
		m.SetRow(i, want[i])
	}
	// Strided reads touch every tile repeatedly in an LRU-hostile order.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < rows; i++ {
			r := (i*17 + pass) % rows
			for j := 0; j < cols; j += 7 {
				if got := m.At(r, j); got != want[r][j] {
					t.Fatalf("pass %d: At(%d,%d) = %d, want %d", pass, r, j, got, want[r][j])
				}
			}
		}
	}
	// Row copies after churn.
	buf := make([]int64, cols)
	for i := 0; i < rows; i++ {
		m.CopyRow(buf, i)
		for j := range buf {
			if buf[j] != want[i][j] {
				t.Fatalf("CopyRow(%d)[%d] = %d, want %d", i, j, buf[j], want[i][j])
			}
		}
	}
	st := m.Stats()
	if st.Evictions == 0 || st.Spills == 0 || st.Reloads == 0 {
		t.Fatalf("expected spill traffic, got %+v", st)
	}
	if st.Tiles != 16 || st.MaxResident != 2 {
		t.Fatalf("geometry: %+v", st)
	}
	if m.Dense() != nil {
		t.Fatal("tiled Dense() must be nil")
	}
	// Release removes the spill file.
	if err := m.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".spill") {
			t.Fatalf("spill file %s survived Release", e.Name())
		}
	}
	if err := m.Release(); err != nil {
		t.Fatalf("second Release: %v", err)
	}
}

// TestTiledMatchesFlat drives the same random op sequence through both
// backends (int64 and int) and demands bit-identical state.
func TestTiledMatchesFlat(t *testing.T) {
	const rows, cols = 37, 29 // ragged last tile
	const fill = int64(1 << 50)
	flat := NewFilled(rows, cols, fill)
	td := NewTiledInt64(rows, cols, fill, TileConfig{TileRows: 5, MaxResident: 3, Dir: t.TempDir()})
	defer td.Release()

	flatI := NewIntFilled(rows, cols, -1)
	tdI := NewTiledInt(rows, cols, -1, TileConfig{TileRows: 5, MaxResident: 3, Dir: t.TempDir()})
	defer tdI.Release()

	rng := rand.New(rand.NewSource(11))
	row := make([]int64, cols)
	rowI := make([]int, cols)
	for op := 0; op < 5000; op++ {
		i, j := rng.Intn(rows), rng.Intn(cols)
		switch rng.Intn(4) {
		case 0:
			v := rng.Int63n(1 << 30)
			flat.Set(i, j, v)
			td.Set(i, j, v)
			flatI.Set(i, j, int(v))
			tdI.Set(i, j, int(v))
		case 1:
			for k := range row {
				row[k] = rng.Int63n(1 << 30)
				rowI[k] = int(row[k])
			}
			flat.SetRow(i, row)
			td.SetRow(i, row)
			flatI.SetRow(i, rowI)
			tdI.SetRow(i, rowI)
		case 2:
			if flat.At(i, j) != td.At(i, j) {
				t.Fatalf("op %d: int64 At(%d,%d): flat %d tiled %d", op, i, j, flat.At(i, j), td.At(i, j))
			}
			if flatI.At(i, j) != tdI.At(i, j) {
				t.Fatalf("op %d: int At(%d,%d): flat %d tiled %d", op, i, j, flatI.At(i, j), tdI.At(i, j))
			}
		case 3:
			var a, b [cols]int64
			flat.CopyRow(a[:], i)
			td.CopyRow(b[:], i)
			if a != b {
				t.Fatalf("op %d: int64 row %d mismatch", op, i)
			}
			var ai, bi [cols]int
			flatI.CopyRow(ai[:], i)
			tdI.CopyRow(bi[:], i)
			if ai != bi {
				t.Fatalf("op %d: int row %d mismatch", op, i)
			}
		}
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if flat.At(i, j) != td.At(i, j) {
				t.Fatalf("final: At(%d,%d): flat %d tiled %d", i, j, flat.At(i, j), td.At(i, j))
			}
		}
	}
}

// TestTiledGeometryFromBudget checks budget-derived geometry: tiny budgets
// clamp to 2 resident tiles, generous budgets keep everything resident.
func TestTiledGeometryFromBudget(t *testing.T) {
	tr, mr := tileGeometry(4096, 4096, TileConfig{Budget: 64 << 20})
	if tr < 1 || mr < 2 {
		t.Fatalf("geometry %d/%d", tr, mr)
	}
	tileBytes := int64(tr) * 4096 * elemSize
	if int64(mr)*tileBytes > 64<<20 {
		t.Fatalf("resident set %d bytes exceeds budget", int64(mr)*tileBytes)
	}
	// Budget larger than the matrix: never evicts.
	trBig, mrBig := tileGeometry(64, 64, TileConfig{Budget: 1 << 30})
	if tiles := (64 + trBig - 1) / trBig; mrBig > tiles {
		t.Fatalf("maxResident %d > tiles %d", mrBig, tiles)
	}
	m := NewTiledInt64(64, 64, 0, TileConfig{Budget: 1 << 30, Dir: t.TempDir()})
	defer m.Release()
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			m.Set(i, j, int64(i*64+j))
		}
	}
	if st := m.Stats(); st.Evictions != 0 || st.Spills != 0 {
		t.Fatalf("generous budget spilled: %+v", st)
	}
}
