//go:build matcheck

package mat

// checkEnabled: this build carries the matcheck tag, so every At/Set/Row
// asserts its indices and panics on a misindexed access instead of
// silently touching a neighboring row. CI runs the race test suite with
// this tag.
const checkEnabled = true
