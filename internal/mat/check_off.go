//go:build !matcheck

package mat

// checkEnabled gates the At/Set/Row bounds assertions. In the default
// build it is a false constant, so the checks fold away entirely and the
// accessors keep their raw-indexing cost. Build (or test) with
// `-tags matcheck` to turn misindexed accesses into loud panics.
const checkEnabled = false
