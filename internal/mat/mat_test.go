package mat

import (
	"sync"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewFilled(3, 4, 7)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 7 {
				t.Fatalf("At(%d,%d) = %d, want 7", i, j, m.At(i, j))
			}
		}
	}
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatalf("Set/At round trip failed")
	}
	if m.Row(1)[2] != 42 {
		t.Fatalf("Row view does not alias the backing store")
	}
	m.Row(2)[0] = -1
	if m.At(2, 0) != -1 {
		t.Fatalf("write through Row view not visible via At")
	}
}

func TestRowViewsAliasAndCap(t *testing.T) {
	m := New(2, 3)
	rows := m.RowViews()
	rows[0][1] = 5
	if m.At(0, 1) != 5 {
		t.Fatalf("RowViews rows must alias the matrix")
	}
	r0 := m.Row(0)
	if cap(r0) != 3 {
		t.Fatalf("row view cap = %d, want 3 (capacity-capped)", cap(r0))
	}
	// An append to a full row view must reallocate, never spill into row 1.
	r0 = append(r0, 99)
	if m.At(1, 0) != 0 {
		t.Fatalf("append to a row view overwrote the next row: %d", m.At(1, 0))
	}
	_ = r0
}

func TestIntMatrix(t *testing.T) {
	m := NewIntFilled(2, 2, -1)
	if m.At(0, 0) != -1 || m.At(1, 1) != -1 {
		t.Fatal("NewIntFilled did not fill")
	}
	m.Set(0, 1, 9)
	if m.Row(0)[1] != 9 {
		t.Fatal("Int Row view does not alias")
	}
	views := m.RowViews()
	views[1][0] = 4
	if m.At(1, 0) != 4 {
		t.Fatal("Int RowViews must alias")
	}
	if c := cap(m.Row(0)); c != 2 {
		t.Fatalf("Int row cap = %d, want 2", c)
	}
}

// TestConcurrentDisjointRowWrites pins the invariant the source-sharded
// pipeline relies on: goroutines writing disjoint rows of one Matrix never
// race (run under -race in CI).
func TestConcurrentDisjointRowWrites(t *testing.T) {
	const rows, cols = 64, 128
	m := New(rows, cols)
	var wg sync.WaitGroup
	for i := 0; i < rows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := m.Row(i)
			for j := range r {
				r[j] = int64(i*cols + j)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if m.At(i, j) != int64(i*cols+j) {
				t.Fatalf("m[%d][%d] = %d, want %d", i, j, m.At(i, j), i*cols+j)
			}
		}
	}
}
