package mat

// Int64M and IntM are the backend-agnostic matrix surfaces the pipeline,
// the snapshot layer, and the serving result cache consume (DESIGN.md §13).
// Two backends satisfy each: the flat contiguous Matrix/Int (the zero-cost
// default — Dense() hands back zero-copy row views and every accessor
// compiles to an index into one slice) and the tiled spillable backend
// (TiledInt64/TiledInt), selected by Options.MemoryBudget, whose Dense()
// returns nil because materializing the full surface is exactly what the
// backend exists to avoid.
//
// Callers on hot paths should try Dense() first and fall back to At/SetRow
// only when it returns nil; that keeps the flat path free of per-element
// interface dispatch.

// Int64M is a rows x cols matrix of int64 (distance tables).
type Int64M interface {
	Rows() int
	Cols() int
	At(i, j int) int64
	Set(i, j int, v int64)
	// SetRow copies src (exactly Cols() long) into row i.
	SetRow(i int, src []int64)
	// CopyRow copies row i into dst (exactly Cols() long).
	CopyRow(dst []int64, i int)
	// Dense returns the [][]int64 surface as zero-copy row views, or nil
	// when the backend cannot materialize it (tiled/spilled storage).
	Dense() [][]int64
	// Release frees external resources (spill files); no-op for flat.
	Release() error
}

// IntM is a rows x cols matrix of int (last-hop / parent tables).
type IntM interface {
	Rows() int
	Cols() int
	At(i, j int) int
	Set(i, j int, v int)
	SetRow(i int, src []int)
	CopyRow(dst []int, i int)
	Dense() [][]int
	Release() error
}

// Compile-time conformance of both backends.
var (
	_ Int64M = (*Matrix)(nil)
	_ IntM   = (*Int)(nil)
	_ Int64M = (*TiledInt64)(nil)
	_ IntM   = (*TiledInt)(nil)
)
