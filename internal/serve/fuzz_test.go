package serve

import (
	"encoding/json"
	"testing"

	"congestapsp/internal/graphio"
	"congestapsp/pkg/apsp"
)

// FuzzQueryRequest hammers the HTTP query decoder with arbitrary bytes.
// The decoder's contract is totality plus validated output: any input
// either errors or yields a request whose invariants hold (exactly one
// selector, every vertex in range, batch within cap, non-negative
// deadline) — never a panic, and never an accepted request that would
// index out of bounds downstream. The committed corpus under
// testdata/fuzz/FuzzQueryRequest pins the malformed shapes the serving
// layer must reject: conflicting selectors, negative deadlines, oversized
// batches, out-of-range vertices, unknown fields and algorithms.
func FuzzQueryRequest(f *testing.F) {
	f.Add([]byte(`{"pairs":[[0,5],[3,3]],"paths":true}`))
	f.Add([]byte(`{"full":true,"algorithm":"det32","hop_param":4}`))
	f.Add([]byte(`{"source":7,"deadline_ms":250}`))
	f.Add([]byte(`{"full":true,"pairs":[[0,1]]}`))
	f.Add([]byte(`{"full":true,"deadline_ms":-1}`))
	f.Add([]byte(`{"pairs":[[15,16]]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"algorithm":"dijkstra","full":true}`))
	f.Add([]byte(`{"full":true,"hop_param":-3}`))
	f.Add([]byte(`{"source":-1}`))
	f.Add([]byte(`{"paths":true}`))
	const n, maxBatch = 16, 8
	f.Fuzz(func(t *testing.T, data []byte) {
		q, opt, err := decodeQueryRequest(data, n, maxBatch)
		if err != nil {
			if q != nil {
				t.Fatal("error return must not carry a request")
			}
			return
		}
		selectors := 0
		if len(q.Pairs) > 0 {
			selectors++
		}
		if q.Source != nil {
			selectors++
		}
		if q.Full {
			selectors++
		}
		if selectors != 1 {
			t.Fatalf("accepted request with %d selectors: %+v", selectors, q)
		}
		if len(q.Pairs) > maxBatch {
			t.Fatalf("accepted oversized batch of %d pairs", len(q.Pairs))
		}
		for _, p := range q.Pairs {
			if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
				t.Fatalf("accepted out-of-range pair %v", p)
			}
		}
		if q.Source != nil && (*q.Source < 0 || *q.Source >= n) {
			t.Fatalf("accepted out-of-range source %d", *q.Source)
		}
		if q.Paths && len(q.Pairs) == 0 {
			t.Fatal("accepted paths without pairs")
		}
		if q.DeadlineMS < 0 {
			t.Fatalf("accepted negative deadline %d", q.DeadlineMS)
		}
		if opt.HopParam < 0 || opt.HopParam > n {
			t.Fatalf("accepted out-of-range hop_param %d", opt.HopParam)
		}
		if opt.Bandwidth < 0 {
			t.Fatalf("accepted negative bandwidth %d", opt.Bandwidth)
		}
	})
}

// fuzzJournalImage builds a well-formed journal byte image — an inline
// load record plus two update records, each with the correct post-apply
// digest — the shape every real journal has. Fuzz mutations of it explore
// the interesting neighborhood: bit-flipped digests, reordered versions,
// spliced frames, torn tails.
func fuzzJournalImage(f *testing.F) []byte {
	g := apsp.NewGraph(4, false)
	for _, e := range [][3]int64{{0, 1, 3}, {1, 2, 5}, {2, 3, 2}, {0, 3, 9}} {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			f.Fatal(err)
		}
	}
	var buf []byte
	appendRec := func(rec *journalRecord) {
		payload, err := json.Marshal(rec)
		if err != nil {
			f.Fatal(err)
		}
		if buf, err = graphio.AppendFrame(buf, payload); err != nil {
			f.Fatal(err)
		}
	}
	load := loadRecord(g, "")
	appendRec(load)
	for i, up := range []apsp.EdgeUpdate{
		{Op: apsp.SetWeight, U: 0, V: 1, W: 11},
		{Op: apsp.InsertEdge, U: 1, V: 3, W: 4},
	} {
		if err := g.ApplyUpdate(up); err != nil {
			f.Fatal(err)
		}
		appendRec(&journalRecord{
			Kind:    recordKindUpdate,
			Version: uint64(i + 1),
			Digest:  Key(g.Digest()),
			Updates: toRecordUpdates([]apsp.EdgeUpdate{up}),
		})
	}
	return buf
}

// FuzzJournalReplay hammers the recovery read path with arbitrary journal
// byte images. The contract is totality and containment: decoding never
// panics, the reported intact-prefix boundary always lies inside the
// input, a clean decode consumes every byte, a torn tail is reported as
// torn (recovery truncates it) and never as a fatal error, and a replay
// that succeeds yields a real graph within the vertex cap whose digest
// matched every record — a hostile journal can fail recovery, but can
// never crash it or smuggle in unverified state.
func FuzzJournalReplay(f *testing.F) {
	intact := fuzzJournalImage(f)
	f.Add(intact)
	f.Add(intact[:len(intact)-3])               // torn final frame
	f.Add(intact[:12])                          // torn first frame
	f.Add([]byte{})                             // empty journal
	f.Add([]byte("\x00\x00\x00\x05garbage"))    // plausible length, bad CRC
	f.Add([]byte("\xff\xff\xff\xffxxxxxxxxxx")) // absurd length word
	corrupt := append([]byte(nil), intact...)
	corrupt[len(corrupt)/2] ^= 0x40 // likely lands in a digest or version
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, torn, err := decodeJournalBytes(data)
		if good < 0 || good > len(data) {
			t.Fatalf("intact boundary %d outside input of %d bytes", good, len(data))
		}
		if err == nil && !torn && good != len(data) {
			t.Fatalf("clean decode stopped at %d of %d bytes", good, len(data))
		}
		if torn && err != nil {
			t.Fatalf("torn tail reported as fatal: %v", err)
		}
		if err != nil {
			return
		}
		const maxN = 64
		g, _, applied, rerr := replayJournal(recs, nil, 0, maxN)
		if rerr != nil {
			return
		}
		if g == nil {
			t.Fatal("successful replay returned no graph")
		}
		if g.N() < 1 || g.N() > maxN {
			t.Fatalf("replay accepted graph with n=%d outside [1,%d]", g.N(), maxN)
		}
		if applied > len(recs) {
			t.Fatalf("replayed %d update records from %d records", applied, len(recs))
		}
		// Per-record digest verification is internal to replayJournal: any
		// record it applies whose post-apply digest disagrees with what was
		// journaled is a returned error, so reaching here means every
		// applied record proved itself.
	})
}
