package serve

import (
	"testing"
)

// FuzzQueryRequest hammers the HTTP query decoder with arbitrary bytes.
// The decoder's contract is totality plus validated output: any input
// either errors or yields a request whose invariants hold (exactly one
// selector, every vertex in range, batch within cap, non-negative
// deadline) — never a panic, and never an accepted request that would
// index out of bounds downstream. The committed corpus under
// testdata/fuzz/FuzzQueryRequest pins the malformed shapes the serving
// layer must reject: conflicting selectors, negative deadlines, oversized
// batches, out-of-range vertices, unknown fields and algorithms.
func FuzzQueryRequest(f *testing.F) {
	f.Add([]byte(`{"pairs":[[0,5],[3,3]],"paths":true}`))
	f.Add([]byte(`{"full":true,"algorithm":"det32","hop_param":4}`))
	f.Add([]byte(`{"source":7,"deadline_ms":250}`))
	f.Add([]byte(`{"full":true,"pairs":[[0,1]]}`))
	f.Add([]byte(`{"full":true,"deadline_ms":-1}`))
	f.Add([]byte(`{"pairs":[[15,16]]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"algorithm":"dijkstra","full":true}`))
	f.Add([]byte(`{"full":true,"hop_param":-3}`))
	f.Add([]byte(`{"source":-1}`))
	f.Add([]byte(`{"paths":true}`))
	const n, maxBatch = 16, 8
	f.Fuzz(func(t *testing.T, data []byte) {
		q, opt, err := decodeQueryRequest(data, n, maxBatch)
		if err != nil {
			if q != nil {
				t.Fatal("error return must not carry a request")
			}
			return
		}
		selectors := 0
		if len(q.Pairs) > 0 {
			selectors++
		}
		if q.Source != nil {
			selectors++
		}
		if q.Full {
			selectors++
		}
		if selectors != 1 {
			t.Fatalf("accepted request with %d selectors: %+v", selectors, q)
		}
		if len(q.Pairs) > maxBatch {
			t.Fatalf("accepted oversized batch of %d pairs", len(q.Pairs))
		}
		for _, p := range q.Pairs {
			if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
				t.Fatalf("accepted out-of-range pair %v", p)
			}
		}
		if q.Source != nil && (*q.Source < 0 || *q.Source >= n) {
			t.Fatalf("accepted out-of-range source %d", *q.Source)
		}
		if q.Paths && len(q.Pairs) == 0 {
			t.Fatal("accepted paths without pairs")
		}
		if q.DeadlineMS < 0 {
			t.Fatalf("accepted negative deadline %d", q.DeadlineMS)
		}
		if opt.HopParam < 0 || opt.HopParam > n {
			t.Fatalf("accepted out-of-range hop_param %d", opt.HopParam)
		}
		if opt.Bandwidth < 0 {
			t.Fatalf("accepted negative bandwidth %d", opt.Bandwidth)
		}
	})
}
