// Package serve is the APSP-as-a-service layer: a content-addressed pool
// of warm apsp.Runners, a per-graph batcher that coalesces concurrent
// query/update traffic into single warm-session calls, and an HTTP JSON
// front end (cmd/apspd) with a deterministic load generator (cmd/apspload)
// driving it. DESIGN.md §11 is the architecture note.
package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Metrics is the daemon's instrumentation registry: counters and gauges
// keyed by their full Prometheus series name (labels inlined, e.g.
// `apspd_batches_total{kind="query"}`), rendered as the standard text
// exposition format. It is deliberately hand-rolled — the repo takes no
// dependencies — but keeps the two properties scrapers rely on: monotone
// counters and a stable, sorted rendering (byte-identical for identical
// states, so transcript tests can cover it).
type Metrics struct {
	mu     sync.Mutex
	ints   map[string]int64
	floats map[string]float64
	gauges map[string]int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		ints:   make(map[string]int64),
		floats: make(map[string]float64),
		gauges: make(map[string]int64),
	}
}

// Add increments counter series by v.
func (m *Metrics) Add(series string, v int64) {
	m.mu.Lock()
	m.ints[series] += v
	m.mu.Unlock()
}

// AddFloat increments a float counter series (stage wall-clock seconds).
func (m *Metrics) AddFloat(series string, v float64) {
	m.mu.Lock()
	m.floats[series] += v
	m.mu.Unlock()
}

// Set sets gauge series to v.
func (m *Metrics) Set(series string, v int64) {
	m.mu.Lock()
	m.gauges[series] = v
	m.mu.Unlock()
}

// SetMax raises gauge series to v if v is larger (high-water marks).
func (m *Metrics) SetMax(series string, v int64) {
	m.mu.Lock()
	if v > m.gauges[series] {
		m.gauges[series] = v
	}
	m.mu.Unlock()
}

// Get reads a counter (0 when the series never fired).
func (m *Metrics) Get(series string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ints[series]
}

// GetGauge reads a gauge (0 when the series was never set).
func (m *Metrics) GetGauge(series string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[series]
}

// family strips the label block: `a_total{kind="x"}` -> `a_total`.
func family(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// familyHelp documents each metric family for the # HELP line. Families
// absent from the table still render (with a generic help line), so adding
// a series never silently breaks the endpoint.
var familyHelp = map[string]string{
	"apspd_pool_hits_total":           "graph loads and lookups answered by an already-warm Runner",
	"apspd_pool_misses_total":         "graph loads that had to build a new Runner",
	"apspd_pool_evictions_total":      "warm Runners evicted by the pool's LRU cap or byte budget",
	"apspd_pool_size":                 "warm Runners currently pooled",
	"apspd_pool_bytes":                "approximate bytes held by pooled entries (n^2 result matrices plus warm-arena high water)",
	"apspd_shed_total":                "requests shed by the per-graph queue-depth cap (HTTP 429)",
	"apspd_queue_depth_max":           "high-water mark of a per-graph batch queue",
	"apspd_batches_total":             "coalesced batches drained, by request kind",
	"apspd_batched_requests_total":    "requests served through coalesced batches, by kind",
	"apspd_batch_size_max":            "largest coalesced batch drained",
	"apspd_result_cache_hits_total":   "queries answered from the per-version result cache",
	"apspd_runs_total":                "warm APSP runs executed on pooled Runners",
	"apspd_update_reused_total":       "label systems reused across served update batches",
	"apspd_update_recomputed_total":   "label systems recomputed across served update batches",
	"apspd_update_fallbacks_total":    "served update batches that fell back to full recompute",
	"apspd_http_requests_total":       "HTTP requests served, by status code",
	"apspd_ready":                     "1 once boot recovery finished and /v1 traffic is accepted",
	"apspd_journal_appends_total":     "journal records appended, by record kind",
	"apspd_journal_bytes_total":       "bytes appended to write-ahead journals (framing included)",
	"apspd_journal_fsyncs_total":      "journal fsyncs issued (per-append or interval, by policy)",
	"apspd_journal_errors_total":      "journal append, fsync, checkpoint, or truncate failures",
	"apspd_checkpoints_total":         "checkpoint snapshots written (each truncates its journal)",
	"apspd_recovery_graphs_total":     "graph lineages recovered from durable state",
	"apspd_recovery_records_total":    "journal update records replayed during recovery",
	"apspd_recovery_torn_tails_total": "torn or corrupt journal tails truncated during recovery",
	"apspd_stage_rounds_total":        "simulated CONGEST rounds charged, by pipeline stage",
	"apspd_stage_wall_seconds_total":  "host wall-clock spent, by pipeline stage",
	"apspd_stage_allocs_total":        "heap allocations performed, by pipeline stage",
	"apspd_stage_exec_total":          "per-stage execution decisions (seq vs sharded), by pipeline stage",
}

// WriteText renders the registry in Prometheus text exposition format,
// families sorted, series sorted within each family.
func (m *Metrics) WriteText(w io.Writer) error {
	m.mu.Lock()
	type series struct {
		name  string
		val   string
		gauge bool
	}
	all := make([]series, 0, len(m.ints)+len(m.floats)+len(m.gauges))
	for k, v := range m.ints {
		all = append(all, series{k, fmt.Sprintf("%d", v), false})
	}
	for k, v := range m.floats {
		all = append(all, series{k, fmt.Sprintf("%g", v), false})
	}
	for k, v := range m.gauges {
		all = append(all, series{k, fmt.Sprintf("%d", v), true})
	}
	m.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	lastFam := ""
	for _, s := range all {
		fam := family(s.name)
		if fam != lastFam {
			help := familyHelp[fam]
			if help == "" {
				help = "apspd metric"
			}
			typ := "counter"
			if s.gauge {
				typ = "gauge"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam, help, fam, typ); err != nil {
				return err
			}
			lastFam = fam
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", s.name, s.val); err != nil {
			return err
		}
	}
	return nil
}
