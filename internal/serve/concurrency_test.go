package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"congestapsp/pkg/apsp"
)

// TestServeLinearizable is the concurrency contract test (run under
// -race in CI): one pooled Runner takes mixed query/update traffic from
// many goroutines, and every answer must be a linearizable snapshot —
// bit-identical to a cold apsp.Run on the exact graph version the
// response names. The updater applies batches sequentially (so version k
// is a known edge state); query workers hammer concurrently and record
// (version, matrix) observations, verified against cold oracles after the
// fact.
func TestServeLinearizable(t *testing.T) {
	const scen = "random-n24-s3"
	_, srv := testDaemon(t, Config{})
	key := loadScenario(t, srv, scen)

	sc, _ := apsp.ParseScenario(scen)
	g, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	type edge struct {
		u, v int
		w    int64
	}
	var mirror []edge
	g.Edges(func(u, v int, w int64) { mirror = append(mirror, edge{u, v, w}) })
	n := g.N()

	// states[v] is the edge list after update batch v (0 = as loaded).
	states := map[uint64][]edge{0: append([]edge(nil), mirror...)}
	var statesMu sync.Mutex

	updates := 6
	queriesPerWorker := 8
	workers := 3
	if testing.Short() {
		updates, queriesPerWorker, workers = 3, 4, 2
	}

	type obs struct {
		version uint64
		matrix  [][]int64
	}
	observed := make([][]obs, workers)

	var wg sync.WaitGroup
	// Updater: sequential seeded set-weight batches; version k recorded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for k := 0; k < updates; k++ {
			i := rng.Intn(len(mirror))
			w := int64(1 + rng.Intn(50))
			body := fmt.Sprintf(`{"updates":[{"op":"set","u":%d,"v":%d,"w":%d}]}`, mirror[i].u, mirror[i].v, w)
			code, out := postRaw(t, srv, "/v1/graphs/"+key+"/update", body)
			if code != http.StatusOK {
				t.Errorf("update %d: status %d: %s", k, code, out)
				return
			}
			var ur updateResponse
			if err := jsonUnmarshal(out, &ur); err != nil {
				t.Error(err)
				return
			}
			// SetWeight patches the FIRST matching edge (either
			// orientation on undirected graphs) — mirror the same rule.
			for j := range mirror {
				if (mirror[j].u == mirror[i].u && mirror[j].v == mirror[i].v) ||
					(mirror[j].u == mirror[i].v && mirror[j].v == mirror[i].u) {
					mirror[j].w = w
					break
				}
			}
			statesMu.Lock()
			states[ur.Version] = append([]edge(nil), mirror...)
			statesMu.Unlock()
		}
	}()
	// Query workers: concurrent full-matrix queries, observations recorded.
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for q := 0; q < queriesPerWorker; q++ {
				var qr queryResponse
				if code := post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Full: true}, &qr); code != http.StatusOK {
					t.Errorf("worker %d query %d: status %d", wk, q, code)
					return
				}
				observed[wk] = append(observed[wk], obs{qr.Version, qr.Matrix})
			}
		}(wk)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Verify every observation against a cold run on its named version.
	oracles := map[uint64][][]int64{}
	oracle := func(v uint64) [][]int64 {
		if m, ok := oracles[v]; ok {
			return m
		}
		es, ok := states[v]
		if !ok {
			t.Fatalf("response named version %d, but no update batch produced it", v)
		}
		og := apsp.NewGraph(n, false)
		for _, e := range es {
			og.AddEdge(e.u, e.v, e.w)
		}
		res, err := apsp.Run(og, apsp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := make([][]int64, n)
		for x := range m {
			m[x] = make([]int64, n)
			for y := range m[x] {
				m[x][y] = wireDist(res.Dist[x][y])
			}
		}
		oracles[v] = m
		return m
	}
	checked := 0
	for wk := range observed {
		for _, o := range observed[wk] {
			want := oracle(o.version)
			for x := range o.matrix {
				for y := range o.matrix[x] {
					if o.matrix[x][y] != want[x][y] {
						t.Fatalf("worker %d at version %d: matrix[%d][%d] = %d, cold run says %d",
							wk, o.version, x, y, o.matrix[x][y], want[x][y])
					}
				}
			}
			checked++
		}
	}
	if checked != workers*queriesPerWorker {
		t.Fatalf("verified %d observations, want %d", checked, workers*queriesPerWorker)
	}
}

func jsonUnmarshal(s string, v any) error {
	return json.Unmarshal([]byte(s), v)
}

// TestServeEviction checks the LRU cap end to end: the pool sheds the
// least-recently-used Runner, evicted keys 404, and a reload (content
// addressing) lands back on the same key.
func TestServeEviction(t *testing.T) {
	svc, srv := testDaemon(t, Config{PoolSize: 2})
	keyA := loadScenario(t, srv, "ring-n16-s1")
	keyB := loadScenario(t, srv, "ring-n16-s2")
	post(t, srv, "/v1/graphs/"+keyA+"/query", queryRequest{Full: true}, nil) // A is now MRU
	keyC := loadScenario(t, srv, "ring-n16-s3")                              // evicts B

	if code, _ := postRaw(t, srv, "/v1/graphs/"+keyB+"/query", `{"full":true}`); code != http.StatusNotFound {
		t.Errorf("evicted graph: got %d want 404", code)
	}
	for _, k := range []string{keyA, keyC} {
		if code, out := postRaw(t, srv, "/v1/graphs/"+k+"/query", `{"full":true}`); code != http.StatusOK {
			t.Errorf("surviving graph %s: got %d (%s)", k, code, out)
		}
	}
	if keyB2 := loadScenario(t, srv, "ring-n16-s2"); keyB2 != keyB {
		t.Errorf("reload landed on %s, want original key %s", keyB2, keyB)
	}
	if got := svc.Metrics().Get("apspd_pool_evictions_total"); got < 2 {
		t.Errorf("evictions counter %d, want >= 2", got)
	}
	if svc.Pool().Len() != 2 {
		t.Errorf("pool size %d, want 2", svc.Pool().Len())
	}
}

// TestServeByteBudgetEviction checks the -max-bytes budget: with a byte
// budget that admits one n=16 graph (16²·16 = 4096 approximate bytes cold)
// but not two, loading a second graph evicts the first even though the
// entry-count cap would hold both, and the apspd_pool_bytes gauge tracks
// the surviving footprint (result matrices plus warm-arena high water).
func TestServeByteBudgetEviction(t *testing.T) {
	svc, srv := testDaemon(t, Config{PoolSize: 8, MaxBytes: 6000})
	keyA := loadScenario(t, srv, "ring-n16-s1")
	keyB := loadScenario(t, srv, "ring-n16-s2") // 8192 > 6000: evicts A
	if code, _ := postRaw(t, srv, "/v1/graphs/"+keyA+"/query", `{"full":true}`); code != http.StatusNotFound {
		t.Errorf("byte-budget-evicted graph: got %d want 404", code)
	}
	if svc.Pool().Len() != 1 {
		t.Fatalf("pool size %d, want 1 (entry cap is 8; the byte budget must evict)", svc.Pool().Len())
	}
	if got := svc.Metrics().Get("apspd_pool_evictions_total"); got < 1 {
		t.Errorf("evictions counter %d, want >= 1", got)
	}
	if got := svc.Metrics().GetGauge("apspd_pool_bytes"); got < 4096 || got > 6000 {
		t.Errorf("pool bytes gauge %d, want within (4096, 6000] after eviction", got)
	}
	// A warm run grows the Runner's arenas; the drain cycle republishes the
	// footprint, so the gauge must rise past the cold matrix-only estimate.
	// The republish happens just after the waiter is released, hence the
	// bounded wait.
	post(t, srv, "/v1/graphs/"+keyB+"/query", queryRequest{Full: true}, nil)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Metrics().GetGauge("apspd_pool_bytes") <= 4096 {
		if time.Now().After(deadline) {
			t.Fatalf("pool bytes gauge %d after a warm run, want > 4096 (arena high water uncounted?)",
				svc.Metrics().GetGauge("apspd_pool_bytes"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeEvictionUnderLoad checks that eviction is non-disruptive: a
// batch in flight on an evicted entry drains normally on the warm Runner
// (eviction only unlinks the key), and only later lookups 404.
func TestServeEvictionUnderLoad(t *testing.T) {
	svc, srv := testDaemon(t, Config{PoolSize: 1})
	const scen = "random-n24-s1"
	keyA := loadScenario(t, srv, scen)
	e, err := svc.Pool().Get(keyA)
	if err != nil {
		t.Fatal(err)
	}
	// Evict A by loading B into the size-1 pool.
	loadScenario(t, srv, "ring-n16-s1")
	if _, err := svc.Pool().Get(keyA); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("expected ErrUnknownGraph after eviction, got %v", err)
	}
	// The held entry still serves, bit-identical to cold.
	req := &request{kind: kindQuery, ctx: context.Background(), done: make(chan struct{})}
	if err := e.submit(req); err != nil {
		t.Fatalf("in-flight query on evicted entry: %v", err)
	}
	cold := coldResult(t, scen, apsp.Options{})
	for x := range cold.Dist {
		for y := range cold.Dist[x] {
			if req.res.Dist[x][y] != cold.Dist[x][y] {
				t.Fatalf("evicted-entry answer diverges at [%d][%d]", x, y)
			}
		}
	}
}

// TestServeShedding checks the 429 path: with a queue cap of 1 and the
// drain goroutine busy, excess concurrent traffic is shed, and shed
// requests were never executed (the version clock does not move).
func TestServeShedding(t *testing.T) {
	svc, srv := testDaemon(t, Config{MaxQueue: 1})
	key := loadScenario(t, srv, "random-n32-s1")

	var wg sync.WaitGroup
	var got429 int
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds defeat the result cache so each query is a
			// real run, keeping the drain goroutine busy long enough for
			// the queue to fill.
			body := fmt.Sprintf(`{"full":true,"seed":%d}`, i)
			code, _ := postRaw(t, srv, "/v1/graphs/"+key+"/query", body)
			mu.Lock()
			defer mu.Unlock()
			switch code {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				got429++
			default:
				t.Errorf("unexpected status %d", code)
			}
		}(i)
	}
	wg.Wait()
	if got429 == 0 {
		t.Skip("scheduler never filled the 1-deep queue (single-CPU timing); shed path covered by metrics test")
	}
	if shed := svc.Metrics().Get("apspd_shed_total"); shed != int64(got429) {
		t.Errorf("shed counter %d, clients saw %d 429s", shed, got429)
	}
}

// TestBatcherBlameSplit pins the lowest-failing-index contract of
// coalesced updates, white-box: three callers' batches concatenate into
// one ApplyUpdates call; the failure in the middle caller's batch is
// rebased into its own index space, callers before it succeed with their
// updates applied, callers after it are aborted untouched.
func TestBatcherBlameSplit(t *testing.T) {
	g := apsp.NewGraph(4, false)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 7)
	g.AddEdge(2, 3, 9)
	p := NewPool(2, 16, 0, false, false, NewMetrics())
	key, _, err := p.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ups ...apsp.EdgeUpdate) *request {
		return &request{kind: kindUpdate, ctx: context.Background(), ups: ups, done: make(chan struct{})}
	}
	set := func(u, v int, w int64) apsp.EdgeUpdate {
		return apsp.EdgeUpdate{Op: apsp.SetWeight, U: u, V: v, W: w}
	}
	a := mk(set(0, 1, 50))
	b := mk(set(1, 2, 70), set(0, 3, 1), set(2, 3, 90)) // (0,3) does not exist
	c := mk(set(2, 3, 99))
	e.applyCoalesced([]*request{a, b, c})

	if a.err != nil {
		t.Errorf("caller A (before the failure) must succeed, got %v", a.err)
	}
	var ue *apsp.UpdateError
	if !errors.As(b.err, &ue) {
		t.Fatalf("caller B must get *apsp.UpdateError, got %v", b.err)
	}
	if ue.Index != 1 {
		t.Errorf("B's error index must be rebased to 1 (its own batch), got %d", ue.Index)
	}
	if !errors.Is(c.err, ErrAborted) {
		t.Errorf("caller C (after the failure) must get ErrAborted, got %v", c.err)
	}

	// Applied prefix: A's update and B's first; nothing after the failure.
	want := map[[2]int]int64{{0, 1}: 50, {1, 2}: 70, {2, 3}: 9}
	e.runner.Graph().Edges(func(u, v int, w int64) {
		if exp := want[[2]int{u, v}]; w != exp {
			t.Errorf("edge (%d,%d) weight %d, want %d", u, v, w, exp)
		}
	})

	// The runner must still serve, consistently with the partial prefix.
	q := &request{kind: kindQuery, ctx: context.Background(), done: make(chan struct{})}
	if err := e.submit(q); err != nil {
		t.Fatalf("query after failed batch: %v", err)
	}
	og := apsp.NewGraph(4, false)
	og.AddEdge(0, 1, 50)
	og.AddEdge(1, 2, 70)
	og.AddEdge(2, 3, 9)
	cold, err := apsp.Run(og, apsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x := range cold.Dist {
		for y := range cold.Dist[x] {
			if q.res.Dist[x][y] != cold.Dist[x][y] {
				t.Fatalf("post-failure answer diverges at [%d][%d]", x, y)
			}
		}
	}
}
