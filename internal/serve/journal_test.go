package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"congestapsp/pkg/apsp"
)

// durableDaemon boots an httptest server over a durable Service rooted at
// dir (recovery included). Close the returned server before reopening the
// same dir.
func durableDaemon(t *testing.T, cfg Config, dir string, opt StoreOptions) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	svc.BeginRecovery()
	if err := svc.Recover(dir, opt); err != nil {
		t.Fatalf("recover %s: %v", dir, err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

// scenarioEdges builds a scenario locally and returns its graph and edges
// (the update targets the tests mutate).
func scenarioEdges(t *testing.T, name string) (*apsp.Graph, [][3]int64) {
	t.Helper()
	sc, err := apsp.ParseScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	var edges [][3]int64
	g.Edges(func(u, v int, w int64) { edges = append(edges, [3]int64{int64(u), int64(v), w}) })
	return g, edges
}

// setWeight posts one set-weight update and returns the response version.
func setWeight(t *testing.T, srv *httptest.Server, key string, u, v int, w int64) uint64 {
	t.Helper()
	body := fmt.Sprintf(`{"updates":[{"op":"set","u":%d,"v":%d,"w":%d}]}`, u, v, w)
	code, out := postRaw(t, srv, "/v1/graphs/"+key+"/update", body)
	if code != http.StatusOK {
		t.Fatalf("update (%d,%d)->%d: status %d: %s", u, v, w, code, out)
	}
	var ur updateResponse
	if err := jsonUnmarshal(out, &ur); err != nil {
		t.Fatalf("bad update response %q: %v", out, err)
	}
	return ur.Version
}

// graphStats fetches the per-graph snapshot.
func graphStats(t *testing.T, srv *httptest.Server, key string) EntryStats {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/v1/graphs/" + key + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats %s: status %d: %s", key, resp.StatusCode, buf.String())
	}
	var st EntryStats
	if err := jsonUnmarshal(buf.String(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// fullMatrix fetches the full distance matrix.
func fullMatrix(t *testing.T, srv *httptest.Server, key string) [][]int64 {
	t.Helper()
	var qr queryResponse
	if code := post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Full: true}, &qr); code != http.StatusOK {
		t.Fatalf("full query: status %d", code)
	}
	return qr.Matrix
}

// TestDurableRestartRecoversState is the in-process end of the crash
// contract: load, mutate, tear the daemon down, recover the same data dir
// — version, digest, and every matrix cell must come back bit-identical,
// and match a cold oracle on the same update prefix.
func TestDurableRestartRecoversState(t *testing.T) {
	dir := t.TempDir()
	const scen = "random-n24-s1"
	oracle, edges := scenarioEdges(t, scen)

	svc1 := New(Config{})
	if err := svc1.Recover(dir, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(svc1.Handler())
	key := loadScenario(t, srv1, scen)
	for i := 0; i < 3; i++ {
		e := edges[i]
		w := int64(100 + i)
		setWeight(t, srv1, key, int(e[0]), int(e[1]), w)
		if err := oracle.ApplyUpdate(apsp.EdgeUpdate{Op: apsp.SetWeight, U: int(e[0]), V: int(e[1]), W: w}); err != nil {
			t.Fatal(err)
		}
	}
	st1 := graphStats(t, srv1, key)
	mat1 := fullMatrix(t, srv1, key)
	srv1.Close()
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}
	if st1.Version != 3 {
		t.Fatalf("pre-restart version %d, want 3", st1.Version)
	}
	if st1.Digest != Key(oracle.Digest()) {
		t.Fatalf("pre-restart digest %s, oracle %s", st1.Digest, Key(oracle.Digest()))
	}

	_, srv2 := durableDaemon(t, Config{}, dir, StoreOptions{})
	st2 := graphStats(t, srv2, key)
	if st2.Version != st1.Version || st2.Digest != st1.Digest || st2.M != st1.M {
		t.Fatalf("recovered stats %+v, want %+v", st2, st1)
	}
	mat2 := fullMatrix(t, srv2, key)
	cold, err := apsp.Run(oracle, apsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := range mat2 {
		for v := range mat2[u] {
			if mat2[u][v] != mat1[u][v] {
				t.Fatalf("matrix[%d][%d] %d after recovery, %d before", u, v, mat2[u][v], mat1[u][v])
			}
			if mat2[u][v] != wireDist(cold.Dist[u][v]) {
				t.Fatalf("matrix[%d][%d] %d, cold oracle %d", u, v, mat2[u][v], wireDist(cold.Dist[u][v]))
			}
		}
	}

	// Re-loading the ORIGINAL content must converge on the recovered
	// lineage, not reset it: the version clock never goes backwards.
	var lr loadResponse
	if code := post(t, srv2, "/v1/graphs", loadRequest{Scenario: scen}, &lr); code != http.StatusOK {
		t.Fatalf("reload: status %d", code)
	}
	if lr.Graph != key {
		t.Fatalf("reload landed on %s, want %s", lr.Graph, key)
	}
	if st := graphStats(t, srv2, key); st.Version != st1.Version {
		t.Fatalf("version regressed to %d after reload (was %d)", st.Version, st1.Version)
	}
}

// TestDurableEvictionRecoversFromDisk pins the evict-then-reaccess path: a
// durably evicted graph comes back from its journal at the version it had,
// not at zero.
func TestDurableEvictionRecoversFromDisk(t *testing.T) {
	dir := t.TempDir()
	svc, srv := durableDaemon(t, Config{PoolSize: 1}, dir, StoreOptions{})
	const scenA, scenB = "random-n16-s1", "random-n16-s2"
	_, edgesA := scenarioEdges(t, scenA)
	keyA := loadScenario(t, srv, scenA)
	setWeight(t, srv, keyA, int(edgesA[0][0]), int(edgesA[0][1]), 77)
	stA := graphStats(t, srv, keyA)

	// Wait for A's drain goroutine to go idle so the durable pool can evict
	// it when B loads (durable eviction refuses busy entries).
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.pool.mu.Lock()
		e := svc.pool.entries[keyA]
		svc.pool.mu.Unlock()
		if e != nil && e.idle() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("entry never went idle")
		}
		time.Sleep(5 * time.Millisecond)
	}
	loadScenario(t, srv, scenB)
	if n := svc.pool.Len(); n != 1 {
		t.Fatalf("pool holds %d entries, want 1 (A evicted)", n)
	}

	// Querying A recovers it from disk, version intact.
	st := graphStats(t, srv, keyA)
	if st.Version != stA.Version || st.Digest != stA.Digest {
		t.Fatalf("recovered %+v, want %+v", st, stA)
	}
	if got := svc.Metrics().Get("apspd_recovery_graphs_total"); got < 1 {
		t.Fatalf("recovery_graphs_total %d, want >= 1", got)
	}
}

// TestCheckpointTruncatesJournal drives past the checkpoint cadence and
// checks the protocol's observable state: a durable checkpoint file, a
// truncated journal holding only the post-checkpoint tail, and a recovery
// that lands on the identical graph.
func TestCheckpointTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	const scen = "random-n16-s1"
	oracle, edges := scenarioEdges(t, scen)
	svc1 := New(Config{})
	if err := svc1.Recover(dir, StoreOptions{CheckpointEvery: 2}); err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(svc1.Handler())
	key := loadScenario(t, srv1, scen)
	for i := 0; i < 5; i++ {
		e := edges[i%len(edges)]
		w := int64(10 + i)
		setWeight(t, srv1, key, int(e[0]), int(e[1]), w)
		oracle.ApplyUpdate(apsp.EdgeUpdate{Op: apsp.SetWeight, U: int(e[0]), V: int(e[1]), W: w})
	}
	// Checkpointing runs after the response is released; wait for cadence
	// (5 updates, every 2 -> 2 checkpoints) to land.
	deadline := time.Now().Add(5 * time.Second)
	for svc1.Metrics().Get("apspd_checkpoints_total") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("checkpoints_total stuck at %d", svc1.Metrics().Get("apspd_checkpoints_total"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Close()
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, key, checkpointFile)); err != nil {
		t.Fatalf("no checkpoint file: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, key, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, torn, derr := decodeJournalBytes(data)
	if derr != nil || torn {
		t.Fatalf("journal after checkpoint: torn=%v err=%v", torn, derr)
	}
	if len(recs) != 1 || recs[0].Kind != recordKindUpdate {
		t.Fatalf("journal holds %d records after truncation, want exactly the 1 post-checkpoint update", len(recs))
	}

	_, srv2 := durableDaemon(t, Config{}, dir, StoreOptions{CheckpointEvery: 2})
	st := graphStats(t, srv2, key)
	if st.Version != 5 {
		t.Fatalf("recovered version %d, want 5", st.Version)
	}
	if st.Digest != Key(oracle.Digest()) {
		t.Fatalf("recovered digest %s, oracle %s", st.Digest, Key(oracle.Digest()))
	}
}

// TestTornTailTruncatedOnRecovery simulates the one kind of damage a crash
// can leave — a torn final record — and checks recovery truncates it away
// and lands on the last intact version.
func TestTornTailTruncatedOnRecovery(t *testing.T) {
	for _, tail := range []struct {
		name string
		junk []byte
	}{
		{"garbage", []byte("\x00\x00\x00\x30garbage-that-is-not-a-frame")},
		{"half-frame", nil}, // filled below: a real frame cut in half
	} {
		t.Run(tail.name, func(t *testing.T) {
			dir := t.TempDir()
			const scen = "random-n16-s1"
			_, edges := scenarioEdges(t, scen)
			svc1 := New(Config{})
			if err := svc1.Recover(dir, StoreOptions{}); err != nil {
				t.Fatal(err)
			}
			srv1 := httptest.NewServer(svc1.Handler())
			key := loadScenario(t, srv1, scen)
			setWeight(t, srv1, key, int(edges[0][0]), int(edges[0][1]), 41)
			setWeight(t, srv1, key, int(edges[1][0]), int(edges[1][1]), 42)
			want := graphStats(t, srv1, key)
			srv1.Close()
			if err := svc1.Close(); err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(dir, key, journalFile)
			intact, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			junk := tail.junk
			if junk == nil {
				// The journal's own first frame cut off mid-payload: a
				// byte-exact torn record, exactly what a crashed append
				// leaves.
				junk = intact[:12]
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(junk)
			f.Close()

			svc2, srv2 := durableDaemon(t, Config{}, dir, StoreOptions{})
			st := graphStats(t, srv2, key)
			if st.Version != want.Version || st.Digest != want.Digest {
				t.Fatalf("recovered %+v, want %+v", st, want)
			}
			if got := svc2.Metrics().Get("apspd_recovery_torn_tails_total"); got != 1 {
				t.Fatalf("torn_tails_total %d, want 1", got)
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(after) != len(intact) {
				t.Fatalf("journal %d bytes after recovery, want truncated back to %d", len(after), len(intact))
			}
		})
	}
}

// TestReadinessGate pins the health-endpoint split: /healthz answers
// during recovery (liveness), /readyz and every /v1 route refuse with 503
// until recovery completes.
func TestReadinessGate(t *testing.T) {
	svc := New(Config{})
	svc.BeginRecovery()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during recovery: %d, want 200", code)
	}
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during recovery: %d, want 503", code)
	}
	if !strings.Contains(body, `"ready":false`) {
		t.Fatalf("/readyz body %q lacks ready:false", body)
	}
	if code, _ := postRaw(t, srv, "/v1/graphs", `{"scenario":"random-n16-s1"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("/v1 during recovery: %d, want 503", code)
	}

	if err := svc.Recover(t.TempDir(), StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d, want 200", code)
	}
	if code, _ := postRaw(t, srv, "/v1/graphs", `{"scenario":"random-n16-s1"}`); code != http.StatusOK {
		t.Fatalf("/v1 after recovery: %d, want 200", code)
	}
}

// TestLoadRetryBackoff drives RunLoad through a proxy that sheds the first
// two query attempts with 429: the seeded retry layer must absorb them and
// account for every attempt.
func TestLoadRetryBackoff(t *testing.T) {
	svc := New(Config{})
	inner := svc.Handler()
	var shed int
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/query") && shed < 2 {
			shed++
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"synthetic shed"}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	var transcript bytes.Buffer
	report, err := RunLoad(LoadConfig{
		BaseURL:    proxy.URL,
		Seed:       1,
		Mix:        "cached",
		Scenario:   "random-n16-s1",
		Requests:   3,
		Transcript: &transcript,
		RetryBase:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Retries != 2 || report.RetriedRequests != 1 {
		t.Fatalf("retries=%d retried_requests=%d, want 2/1", report.Retries, report.RetriedRequests)
	}
	if report.Status["200"] != 3 || report.Status["429"] != 0 {
		t.Fatalf("status census %v, want all three requests to end 200", report.Status)
	}
	if !strings.Contains(transcript.String(), "RETRIED 2\n") {
		t.Fatalf("transcript lacks RETRIED line:\n%s", transcript.String())
	}
}

// TestRetryDelayDeterministic pins the backoff schedule: a pure function
// of (seed, request, attempt), exponential in the attempt, never below the
// base step.
func TestRetryDelayDeterministic(t *testing.T) {
	base := 25 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		a := retryDelay(7, 3, attempt, base)
		b := retryDelay(7, 3, attempt, base)
		if a != b {
			t.Fatalf("attempt %d: %v vs %v (not deterministic)", attempt, a, b)
		}
		shift := attempt
		if shift > 6 {
			shift = 6
		}
		lo, hi := base<<shift, base<<shift+base
		if a < lo || a >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, a, lo, hi)
		}
	}
	if retryDelay(1, 0, 0, base) == retryDelay(2, 0, 0, base) &&
		retryDelay(1, 1, 0, base) == retryDelay(2, 1, 0, base) {
		t.Fatal("jitter ignores the seed")
	}
}
