package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"time"

	"congestapsp/internal/graphio"
	"congestapsp/pkg/apsp"
)

// This file is the durability half of the serving layer (DESIGN.md §12):
// a per-graph append-only write-ahead journal of accepted mutations plus
// periodic checkpoint snapshots, laid out under one data directory:
//
//	<data-dir>/<key>/journal.wal      framed journal records (graphio frames)
//	<data-dir>/<key>/checkpoint.ckpt  meta frame + gob graph snapshot frame
//
// <key> is the pool's content-addressed handle (the 16-hex load-time
// digest), so the on-disk namespace IS the pool's namespace. Journal
// records carry the graph version and content digest AFTER the record
// applies, which makes recovery self-verifying: replay re-derives the
// state and refuses to serve a graph whose digest disagrees with what was
// journaled. Append ordering is the WAL contract the batcher enforces: a
// batch's journal append (and, under FsyncAlways, its fsync) happens
// before any of the batch's waiters are released, so every version a
// client has ever been shown is recoverable — client-visible versions are
// monotonic across restarts. recover.go is the boot-time consumer.

// FsyncPolicy selects when journal appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs the journal after every appended record, before
	// the batch's waiters are released: an acknowledged version survives
	// even power loss. This is the default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval batches fsyncs on a timer (StoreOptions.FsyncInterval).
	// A SIGKILLed or crashed process loses nothing (the bytes are in the
	// page cache), but a power loss or kernel panic may lose the last
	// interval's acknowledged records; recovery still lands on a
	// self-consistent earlier version via torn-tail truncation.
	FsyncInterval
)

func (p FsyncPolicy) String() string {
	if p == FsyncInterval {
		return "interval"
	}
	return "always"
}

// ParseFsyncPolicy maps the -fsync flag spellings onto the policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	}
	return 0, fmt.Errorf("serve: unknown fsync policy %q (want always|interval)", s)
}

// StoreOptions configures a Store. The zero value picks the documented
// defaults (fsync always, checkpoint every 64 update records).
type StoreOptions struct {
	// Fsync is the journal sync policy.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval timer period (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery writes a checkpoint snapshot and truncates the
	// journal after this many journaled update records per graph
	// (default 64).
	CheckpointEvery int
	// MaxGraphN bounds the vertex count recovery will rebuild (default
	// 4096, matching Config.MaxGraphN): a corrupt or hostile record cannot
	// force an arbitrary allocation.
	MaxGraphN int
	// CrashSpec is a test-only instrument ("<point>:<n>", e.g.
	// "mid-record:2"): the store hard-kills the process (SIGKILL) at the
	// n-th occurrence of the named crash point, leaving the file system in
	// exactly the state a crash there would. Points: mid-record (half a
	// journal frame written), post-record (frame written, fsync skipped),
	// mid-checkpoint (half the checkpoint temp file written), post-truncate
	// (checkpoint durable, journal truncated). Empty disarms.
	CrashSpec string
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64
	}
	if o.MaxGraphN <= 0 {
		o.MaxGraphN = 4096
	}
	return o
}

// journalFile and checkpointFile are the fixed names inside a graph dir.
const (
	journalFile    = "journal.wal"
	checkpointFile = "checkpoint.ckpt"
)

// keyRE matches the pool's 16-hex graph handles; Store.Keys ignores
// anything else in the data dir (temp files, stray artifacts).
var keyRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// Store is the durability root: it owns the data directory, the open
// per-graph journals, the fsync timer (FsyncInterval policy), and the
// seeded crash-point instrument. One Store serves one daemon.
type Store struct {
	dir string
	opt StoreOptions
	met *Metrics

	mu       sync.Mutex
	journals map[string]*Journal
	closed   bool

	stop   chan struct{}
	syncWG sync.WaitGroup

	crashMu    sync.Mutex
	crashPoint string
	crashAt    int
	crashSeen  int
}

// OpenStore opens (creating if needed) the durability root at dir.
func OpenStore(dir string, opt StoreOptions, met *Metrics) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: OpenStore: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		opt:      opt.withDefaults(),
		met:      met,
		journals: make(map[string]*Journal),
		stop:     make(chan struct{}),
	}
	if spec := s.opt.CrashSpec; spec != "" {
		point, at, ok := strings.Cut(spec, ":")
		s.crashPoint, s.crashAt = point, 1
		if ok {
			fmt.Sscanf(at, "%d", &s.crashAt)
		}
	}
	if s.opt.Fsync == FsyncInterval {
		s.syncWG.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

// Dir returns the durability root directory.
func (s *Store) Dir() string { return s.dir }

// Options returns the store's effective (defaulted) options.
func (s *Store) Options() StoreOptions { return s.opt }

// Close stops the fsync timer and syncs + closes every open journal. The
// store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	journals := make([]*Journal, 0, len(s.journals))
	for _, j := range s.journals {
		journals = append(journals, j)
	}
	s.mu.Unlock()
	close(s.stop)
	s.syncWG.Wait()
	var first error
	for _, j := range journals {
		if err := j.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// syncLoop is the FsyncInterval timer: every period it syncs the journals
// with unsynced appends.
func (s *Store) syncLoop() {
	defer s.syncWG.Done()
	tick := time.NewTicker(s.opt.FsyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.mu.Lock()
			journals := make([]*Journal, 0, len(s.journals))
			for _, j := range s.journals {
				journals = append(journals, j)
			}
			s.mu.Unlock()
			for _, j := range journals {
				j.syncIfPending()
			}
		}
	}
}

// Keys lists the graph handles with on-disk state, sorted by directory
// iteration order of os.ReadDir (lexicographic, hence deterministic).
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		if e.IsDir() && keyRE.MatchString(e.Name()) {
			keys = append(keys, e.Name())
		}
	}
	return keys, nil
}

// HasGraph reports whether key has recoverable on-disk state (a checkpoint
// or a non-empty journal). A bare empty directory does not count.
func (s *Store) HasGraph(key string) bool {
	dir := filepath.Join(s.dir, key)
	if info, err := os.Stat(filepath.Join(dir, checkpointFile)); err == nil && info.Size() > 0 {
		return true
	}
	if info, err := os.Stat(filepath.Join(dir, journalFile)); err == nil && info.Size() > 0 {
		return true
	}
	return false
}

// journal returns the open Journal for key, opening (and creating) the
// journal file if needed. Callers hold no store lock.
func (s *Store) journal(key string) (*Journal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalLocked(key)
}

func (s *Store) journalLocked(key string) (*Journal, error) {
	if s.closed {
		return nil, fmt.Errorf("serve: store closed")
	}
	if j, ok := s.journals[key]; ok {
		return j, nil
	}
	dir := filepath.Join(s.dir, key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// Make the journal's directory entry durable before anything is
	// appended: a record fsync is worthless if the file itself vanishes
	// with the directory's page-cache state.
	if err := graphio.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	if err := graphio.SyncDir(s.dir); err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{key: key, store: s, f: f}
	s.journals[key] = j
	return j, nil
}

// CreateGraph initializes durable state for a freshly loaded graph: it
// opens the journal and appends the load record (the lineage's first
// entry) under the append fsync policy. If the journal is already open —
// a racing load of the same content — the existing lineage wins untouched.
func (s *Store) CreateGraph(key string, rec *journalRecord) (*Journal, error) {
	// The load record is appended while s.mu is still held: a racing load
	// of the same content blocks here and then finds the journal open, so
	// exactly one load record exists and it precedes every update record.
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.journals[key]; ok {
		return j, nil
	}
	j, err := s.journalLocked(key)
	if err != nil {
		return nil, err
	}
	if err := j.append(rec); err != nil {
		delete(s.journals, key)
		j.close()
		return nil, err
	}
	return j, nil
}

// crashArmed reports whether the named crash point should fire now (the
// occurrence counter matching the armed spec). The caller performs the
// point's partial-write behavior and then calls die.
func (s *Store) crashArmed(point string) bool {
	if s.crashPoint != point {
		return false
	}
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	s.crashSeen++
	return s.crashSeen == s.crashAt
}

// ---- journal ---------------------------------------------------------------

// journalRecord is one framed journal entry: what happened (a load or an
// accepted update batch) plus the graph version and 16-hex content digest
// AFTER the record applied — the self-verification recovery replays
// against. Load records carry the loaded content by scenario name (the
// deterministic corpus reproduces it) or inline edges; update records
// carry the accepted prefix of a coalesced batch.
type journalRecord struct {
	Kind     string         `json:"kind"` // "load" | "update"
	Version  uint64         `json:"version"`
	Digest   string         `json:"digest"`
	Scenario string         `json:"scenario,omitempty"`
	N        int            `json:"n,omitempty"`
	Directed bool           `json:"directed,omitempty"`
	Edges    [][3]int64     `json:"edges,omitempty"`
	Updates  []recordUpdate `json:"updates,omitempty"`
}

// recordUpdate is the journal form of one apsp.EdgeUpdate.
type recordUpdate struct {
	Op string `json:"op"` // set | insert | delete
	U  int    `json:"u"`
	V  int    `json:"v"`
	W  int64  `json:"w,omitempty"`
}

const (
	recordKindLoad   = "load"
	recordKindUpdate = "update"
)

// loadRecord builds the journal record for a freshly loaded graph: by
// scenario name when the client loaded one (compact, the corpus is
// deterministic), inline edges otherwise.
func loadRecord(g *apsp.Graph, scenario string) *journalRecord {
	rec := &journalRecord{
		Kind:    recordKindLoad,
		Version: 0,
		Digest:  Key(g.Digest()),
	}
	if scenario != "" {
		rec.Scenario = scenario
		return rec
	}
	rec.N = g.N()
	rec.Directed = g.Directed()
	rec.Edges = make([][3]int64, 0, g.M())
	g.Edges(func(u, v int, w int64) {
		rec.Edges = append(rec.Edges, [3]int64{int64(u), int64(v), w})
	})
	return rec
}

// toRecordUpdates maps an accepted update prefix onto the journal form.
func toRecordUpdates(ups []apsp.EdgeUpdate) []recordUpdate {
	out := make([]recordUpdate, len(ups))
	for i, u := range ups {
		op := "set"
		switch u.Op {
		case apsp.InsertEdge:
			op = "insert"
		case apsp.DeleteEdge:
			op = "delete"
		}
		out[i] = recordUpdate{Op: op, U: u.U, V: u.V, W: u.W}
	}
	return out
}

// parseRecordOp is the inverse of toRecordUpdates' op naming.
func parseRecordOp(op string) (apsp.UpdateOp, error) {
	switch op {
	case "set":
		return apsp.SetWeight, nil
	case "insert":
		return apsp.InsertEdge, nil
	case "delete":
		return apsp.DeleteEdge, nil
	}
	return 0, fmt.Errorf("serve: journal: unknown update op %q", op)
}

// Journal is one graph's append-only write-ahead log. Appends come from
// the graph's single drain goroutine (and, once, from the load path before
// the entry is reachable), but the mutex also serializes them against the
// interval fsync timer and against recovery reads of a live file.
type Journal struct {
	key   string
	store *Store

	mu               sync.Mutex
	f                *os.File
	pending          bool // appended bytes not yet fsynced (FsyncInterval)
	updatesSinceCkpt int
}

// append frames rec and appends it to the journal in one contiguous write
// (a crash can tear at most this one record), then applies the fsync
// policy. It returns only after the record is as durable as the policy
// promises — the caller releases the batch's waiters on success.
func (j *Journal) append(rec *journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal %s: %w", j.key, err)
	}
	frame, err := graphio.AppendFrame(nil, payload)
	if err != nil {
		return fmt.Errorf("serve: journal %s: %w", j.key, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: journal %s: closed", j.key)
	}
	if rec.Kind == recordKindUpdate && j.store.crashArmed("mid-record") {
		j.f.Write(frame[:len(frame)/2])
		j.store.die()
	}
	if _, err := j.f.Write(frame); err != nil {
		j.store.met.Add("apspd_journal_errors_total", 1)
		return fmt.Errorf("serve: journal %s: append: %w", j.key, err)
	}
	j.store.met.Add(fmt.Sprintf("apspd_journal_appends_total{kind=%q}", rec.Kind), 1)
	j.store.met.Add("apspd_journal_bytes_total", int64(len(frame)))
	if rec.Kind == recordKindUpdate && j.store.crashArmed("post-record") {
		j.store.die()
	}
	if j.store.opt.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			j.store.met.Add("apspd_journal_errors_total", 1)
			return fmt.Errorf("serve: journal %s: fsync: %w", j.key, err)
		}
		j.store.met.Add("apspd_journal_fsyncs_total", 1)
	} else {
		j.pending = true
	}
	if rec.Kind == recordKindUpdate {
		j.updatesSinceCkpt++
	}
	return nil
}

// syncIfPending flushes interval-policy appends to stable storage.
func (j *Journal) syncIfPending() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.pending || j.f == nil {
		return
	}
	if err := j.f.Sync(); err != nil {
		j.store.met.Add("apspd_journal_errors_total", 1)
		return
	}
	j.pending = false
	j.store.met.Add("apspd_journal_fsyncs_total", 1)
}

// maybeCheckpoint writes a checkpoint snapshot of g (at version) and
// truncates the journal once CheckpointEvery update records have
// accumulated since the last one. The caller is the graph's drain
// goroutine, which owns g between batches. The protocol order is what
// makes a crash anywhere harmless: the checkpoint lands durably (temp +
// fsync + rename + dir fsync) BEFORE the journal is truncated, and replay
// skips journal records at or below the checkpoint's version — so a crash
// between the two simply replays a prefix the checkpoint already covers.
func (j *Journal) maybeCheckpoint(g *apsp.Graph, version uint64) error {
	j.mu.Lock()
	due := j.updatesSinceCkpt >= j.store.opt.CheckpointEvery
	j.mu.Unlock()
	if !due {
		return nil
	}
	if err := j.store.writeCheckpoint(j.key, g, version); err != nil {
		j.store.met.Add("apspd_journal_errors_total", 1)
		return fmt.Errorf("serve: checkpoint %s: %w", j.key, err)
	}
	if err := j.truncate(); err != nil {
		j.store.met.Add("apspd_journal_errors_total", 1)
		return fmt.Errorf("serve: journal %s: truncate: %w", j.key, err)
	}
	j.store.met.Add("apspd_checkpoints_total", 1)
	if j.store.crashArmed("post-truncate") {
		j.store.die()
	}
	return nil
}

// truncate empties the journal after a durable checkpoint superseded it.
func (j *Journal) truncate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: journal %s: closed", j.key)
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.pending = false
	j.updatesSinceCkpt = 0
	return nil
}

// close syncs and closes the journal file.
func (j *Journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// ---- checkpoint ------------------------------------------------------------

// checkpointMeta is the first frame of a checkpoint file: which lineage
// this snapshot belongs to, the version it captures, and the content
// digest the decoded graph must reproduce.
type checkpointMeta struct {
	Key     string `json:"key"`
	Version uint64 `json:"version"`
	Digest  string `json:"digest"`
}

// writeCheckpoint lands a durable snapshot of g at version: a meta frame
// plus a gob graph frame, written through the temp+fsync+rename+dirsync
// discipline so the checkpoint file is always either the old complete
// snapshot or the new complete snapshot. The mid-checkpoint crash point
// abandons a half-written temp file, which recovery ignores and removes.
func (s *Store) writeCheckpoint(key string, g *apsp.Graph, version uint64) error {
	meta, err := json.Marshal(checkpointMeta{Key: key, Version: version, Digest: Key(g.Digest())})
	if err != nil {
		return err
	}
	var gob bytes.Buffer
	if err := apsp.WriteGraph(&gob, g, apsp.FormatGob); err != nil {
		return err
	}
	buf, err := graphio.AppendFrame(nil, meta)
	if err != nil {
		return err
	}
	if buf, err = graphio.AppendFrame(buf, gob.Bytes()); err != nil {
		return err
	}
	dir := filepath.Join(s.dir, key)
	path := filepath.Join(dir, checkpointFile)
	if s.crashArmed("mid-checkpoint") {
		// Simulate dying halfway through the temp write: the abandoned
		// temp is all a crash there leaves behind.
		tmp, terr := os.CreateTemp(dir, ".ckpt-*")
		if terr == nil {
			tmp.Write(buf[:len(buf)/2])
		}
		s.die()
	}
	return graphio.WriteFileAtomic(path, buf)
}

// readCheckpoint loads and verifies key's checkpoint snapshot. It returns
// (nil, 0, nil) when no checkpoint exists. Any malformed or
// digest-divergent checkpoint is an error — checkpoints are written
// atomically, so unlike a journal tail there is no innocent way for one
// to be torn.
func (s *Store) readCheckpoint(key string) (*apsp.Graph, uint64, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, key, checkpointFile))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	metaRaw, n, err := graphio.NextFrame(data)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: checkpoint %s: meta frame: %w", key, err)
	}
	var meta checkpointMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, 0, fmt.Errorf("serve: checkpoint %s: meta: %w", key, err)
	}
	if meta.Key != key {
		return nil, 0, fmt.Errorf("serve: checkpoint %s: names lineage %s", key, meta.Key)
	}
	snap, n2, err := graphio.NextFrame(data[n:])
	if err != nil {
		return nil, 0, fmt.Errorf("serve: checkpoint %s: snapshot frame: %w", key, err)
	}
	if n+n2 != len(data) {
		return nil, 0, fmt.Errorf("serve: checkpoint %s: %d trailing bytes", key, len(data)-n-n2)
	}
	g, err := apsp.ReadGraph(bytes.NewReader(snap), apsp.FormatGob)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: checkpoint %s: %w", key, err)
	}
	if g.N() > s.opt.MaxGraphN {
		return nil, 0, fmt.Errorf("serve: checkpoint %s: n %d exceeds cap %d", key, g.N(), s.opt.MaxGraphN)
	}
	if got := Key(g.Digest()); got != meta.Digest {
		return nil, 0, fmt.Errorf("serve: checkpoint %s: digest %s, recorded %s", key, got, meta.Digest)
	}
	return g, meta.Version, nil
}
