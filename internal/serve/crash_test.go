package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"congestapsp/pkg/apsp"
)

// This file is the crash-recovery harness: it SIGKILLs a REAL apspd
// process (not an in-process service) at seeded crash points inside the
// durability layer and proves that a restart recovers bit-identical state
// — the recovered version is at least the last version any client was
// acked, the recovered digest matches the journal's accepted prefix, and
// the full distance matrix is cell-identical to a cold apsp.Run on the
// same prefix. The crash points (StoreOptions.CrashSpec, armed via the
// APSPD_CRASH env var) cover the four distinct on-disk states a crash can
// leave: half a journal frame, a full frame not yet acked, a half-written
// checkpoint temp, and a truncated journal just after a checkpoint.

const crashScenario = "random-n16-s1"

// crashUpdateList is the deterministic single-update batches the harness
// feeds the daemon — weight changes on the scenario's first real edges, so
// version k is the state after the first k of them.
func crashUpdateList(t *testing.T) []apsp.EdgeUpdate {
	t.Helper()
	sc, err := apsp.ParseScenario(crashScenario)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	var ups []apsp.EdgeUpdate
	g.Edges(func(u, v int, w int64) {
		if len(ups) < 6 {
			ups = append(ups, apsp.EdgeUpdate{Op: apsp.SetWeight, U: u, V: v, W: w + 7 + int64(len(ups))})
		}
	})
	if len(ups) < 6 {
		t.Fatalf("scenario %s has only %d edges", crashScenario, len(ups))
	}
	return ups
}

// graphAtVersion rebuilds the oracle graph: the scenario content plus the
// first v crash-harness updates, applied through the same addressing the
// journal replay uses.
func graphAtVersion(t *testing.T, v uint64) *apsp.Graph {
	t.Helper()
	sc, err := apsp.ParseScenario(crashScenario)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	ups := crashUpdateList(t)
	if v > uint64(len(ups)) {
		t.Fatalf("recovered version %d beyond the %d updates ever sent", v, len(ups))
	}
	for i := uint64(0); i < v; i++ {
		if err := g.ApplyUpdate(ups[i]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// coldMatrix runs full APSP cold on g and returns the flattened distances
// in wire form (unreachable mapped to -1, as the daemon serves them).
func coldMatrix(t *testing.T, g *apsp.Graph) []int64 {
	t.Helper()
	res, err := apsp.Run(g, apsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]int64, 0, g.N()*g.N())
	for _, row := range res.Dist {
		for _, d := range row {
			if d >= apsp.Inf {
				d = -1
			}
			flat = append(flat, d)
		}
	}
	return flat
}

// buildApspd compiles the real daemon binary once per test run.
func buildApspd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "apspd")
	cmd := exec.Command("go", "build", "-o", bin, "congestapsp/cmd/apspd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building apspd: %v\n%s", err, out)
	}
	return bin
}

// apspdProc is one running daemon under harness control. done closes when
// the process has been reaped; the reaper goroutine is the ONLY Wait
// caller (a second concurrent Wait races inside os/exec).
type apspdProc struct {
	cmd  *exec.Cmd
	base string
	done chan struct{}
}

// startApspd boots bin against dataDir on a kernel-chosen port, parsing
// the daemon's "listening on" log line for the address, and waits for
// /readyz. crashSpec arms APSPD_CRASH (empty runs normally).
func startApspd(t *testing.T, bin, dataDir, crashSpec string) *apspdProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-fsync", "always",
		"-checkpoint-every", "2",
	)
	cmd.Env = append(os.Environ(), "APSPD_CRASH="+crashSpec)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &apspdProc{cmd: cmd, done: make(chan struct{})}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-p.done
	})

	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addr <- rest:
				default:
				}
			}
		}
	}()
	go func() {
		cmd.Wait()
		close(p.done)
	}()

	select {
	case a := <-addr:
		p.base = "http://" + a
	case <-p.done:
		t.Fatalf("apspd exited before announcing its address")
	case <-time.After(20 * time.Second):
		t.Fatalf("apspd never announced its address")
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(p.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("apspd at %s never became ready", p.base)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitExit blocks until the daemon process is gone (the crash instrument
// fired) so the harness reads quiescent on-disk state.
func (p *apspdProc) waitExit(t *testing.T) {
	t.Helper()
	select {
	case <-p.done:
	case <-time.After(20 * time.Second):
		t.Fatalf("apspd did not die within 20s of the armed crash point")
	}
}

// postCrash POSTs a JSON body; a transport error (the daemon died mid
// request) returns status 0.
func postCrash(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// copyDataDir clones the data directory so the in-process oracle recovery
// cannot perturb the state the restarted daemon will see.
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestCrashRecoveryBitIdentity is the end-to-end crash matrix. For each
// crash point it boots a real durable daemon, loads a graph, feeds
// single-update batches until the armed SIGKILL fires, then proves:
//
//  1. an in-process Store.Recover on a copy of the data dir lands on a
//     version >= the last version any client was acked, with the digest
//     and full distance matrix of exactly that update prefix;
//  2. a restarted real daemon reports the same version and digest via
//     /v1/graphs/<key>/stats and serves the identical full matrix.
func TestCrashRecoveryBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real daemons")
	}
	bin := buildApspd(t)

	cases := []struct {
		name string
		spec string
	}{
		// The 2nd update-batch append dies after half a frame: the torn
		// tail must be truncated, recovering version 1.
		{"mid-record", "mid-record:2"},
		// The 2nd append is fully written but never acked: recovery may
		// land one version PAST the last ack — allowed, never behind.
		{"post-record", "post-record:2"},
		// checkpoint-every=2, so the checkpoint after update 2 dies with
		// half a temp file: journal alone must still recover version 2.
		{"mid-checkpoint", "mid-checkpoint:1"},
		// The checkpoint landed and the journal was truncated, then death:
		// the checkpoint alone must recover version 2.
		{"post-truncate", "post-truncate:1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dataDir := t.TempDir()
			p := startApspd(t, bin, dataDir, tc.spec)

			code, body := postCrash(t, p.base+"/v1/graphs", map[string]any{"scenario": crashScenario})
			if code != http.StatusOK {
				t.Fatalf("load: status %d, body %s", code, body)
			}
			var loaded struct {
				Graph string `json:"graph"`
			}
			if err := json.Unmarshal(body, &loaded); err != nil {
				t.Fatal(err)
			}
			key := loaded.Graph

			// Feed single-update batches until the armed SIGKILL fires.
			// mid-record/post-record kill inside an append (that request
			// errors); mid-checkpoint/post-truncate kill in the drain
			// goroutine after the batch was acked (the NEXT request errors).
			var lastAcked uint64
			for i, up := range crashUpdateList(t) {
				code, body := postCrash(t, p.base+"/v1/graphs/"+key+"/update", map[string]any{
					"updates": []map[string]any{{"op": "set", "u": up.U, "v": up.V, "w": up.W}},
				})
				if code == 0 {
					break
				}
				if code != http.StatusOK {
					t.Fatalf("update %d: status %d, body %s", i, code, body)
				}
				var ack struct {
					Version uint64 `json:"version"`
				}
				if err := json.Unmarshal(body, &ack); err != nil {
					t.Fatal(err)
				}
				if ack.Version != uint64(i+1) {
					t.Fatalf("update %d acked version %d, want %d", i, ack.Version, i+1)
				}
				lastAcked = ack.Version
			}
			p.waitExit(t)

			// Oracle recovery on a pristine copy of the damaged state.
			oracleDir := copyDataDir(t, dataDir)
			st, err := OpenStore(oracleDir, StoreOptions{}, NewMetrics())
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			g, version, _, err := st.Recover(key)
			if err != nil {
				t.Fatalf("oracle recovery: %v", err)
			}
			if version < lastAcked {
				t.Fatalf("recovered version %d regressed below last acked %d", version, lastAcked)
			}
			oracle := graphAtVersion(t, version)
			wantDigest := Key(oracle.Digest())
			if got := Key(g.Digest()); got != wantDigest {
				t.Fatalf("recovered digest %s, oracle prefix digest %s", got, wantDigest)
			}
			wantMatrix := coldMatrix(t, oracle)
			if gotMatrix := coldMatrix(t, g); !matrixEqual(gotMatrix, wantMatrix) {
				t.Fatalf("recovered full matrix diverges from cold run on the accepted prefix")
			}

			// Restart the REAL daemon on the original (damaged) dir.
			p2 := startApspd(t, bin, dataDir, "")
			code, body = getCrash(t, p2.base+"/v1/graphs/"+key+"/stats")
			if code != http.StatusOK {
				t.Fatalf("stats after restart: status %d, body %s", code, body)
			}
			var st2 EntryStats
			if err := json.Unmarshal(body, &st2); err != nil {
				t.Fatal(err)
			}
			if st2.Version != version {
				t.Fatalf("restarted daemon at version %d, oracle recovered %d", st2.Version, version)
			}
			if st2.Digest != wantDigest {
				t.Fatalf("restarted daemon digest %s, want %s", st2.Digest, wantDigest)
			}

			code, body = postCrash(t, p2.base+"/v1/graphs/"+key+"/query", map[string]any{"full": true})
			if code != http.StatusOK {
				t.Fatalf("full query after restart: status %d, body %s", code, body)
			}
			var full struct {
				Version uint64    `json:"version"`
				Matrix  [][]int64 `json:"matrix"`
			}
			if err := json.Unmarshal(body, &full); err != nil {
				t.Fatal(err)
			}
			if full.Version != version {
				t.Fatalf("full query at version %d, want %d", full.Version, version)
			}
			var served []int64
			for _, row := range full.Matrix {
				served = append(served, row...)
			}
			if !matrixEqual(served, wantMatrix) {
				t.Fatalf("restarted daemon serves a matrix diverging from the cold oracle")
			}
		})
	}
}

func matrixEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// getCrash GETs a URL; transport errors return status 0.
func getCrash(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// TestCrashPointsActuallyFire guards the instrument itself: an armed spec
// must kill the process (exit code 137 / SIGKILL, never a clean exit), so
// the matrix above cannot silently degrade into testing nothing.
func TestCrashPointsActuallyFire(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real daemons")
	}
	bin := buildApspd(t)
	dataDir := t.TempDir()
	p := startApspd(t, bin, dataDir, "post-record:1")

	code, body := postCrash(t, p.base+"/v1/graphs", map[string]any{"scenario": crashScenario})
	if code != http.StatusOK {
		t.Fatalf("load: status %d, body %s", code, body)
	}
	var loaded struct {
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(body, &loaded); err != nil {
		t.Fatal(err)
	}
	up := crashUpdateList(t)[0]
	if code, _ := postCrash(t, p.base+"/v1/graphs/"+loaded.Graph+"/update", map[string]any{
		"updates": []map[string]any{{"op": "set", "u": up.U, "v": up.V, "w": up.W}},
	}); code != 0 {
		t.Fatalf("armed update returned status %d; the crash point did not fire", code)
	}
	p.waitExit(t)
	if state := p.cmd.ProcessState; state != nil && state.Success() {
		t.Fatalf("daemon exited cleanly; expected SIGKILL")
	}
}
