//go:build unix

package serve

import (
	"os"
	"syscall"
)

// die hard-kills the process at an armed crash point: SIGKILL to self, no
// deferred functions, no flushes — exactly the state a real crash leaves.
// The select blocks the goroutine forever in the unkillable-signal window
// so no code after a crash point can observably run.
func (s *Store) die() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {}
}
