package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"congestapsp/internal/faultinject"
	"congestapsp/pkg/apsp"
)

// TestServeFaultIsolation pins the daemon-path fault contract: a fault
// armed on one pooled Runner surfaces as a typed 5xx to the request whose
// batch hit it — and ONLY that request. Other pooled graphs are untouched,
// and the next run on the faulted Runner is bit-identical to cold (the
// session's panic isolation holds through the serving stack).
func TestServeFaultIsolation(t *testing.T) {
	svc, srv := testDaemon(t, Config{})
	const scen1, scen2 = "ring-n16-s1", "ring-n16-s2"
	key1 := loadScenario(t, srv, scen1)
	key2 := loadScenario(t, srv, scen2)

	inj := faultinject.New(0, faultinject.Rule{
		Hook: faultinject.HookRound, Round: 2, SubRun: -1,
		Kind: faultinject.Panic, Once: true,
	})
	if !svc.Pool().SetFaultInjector(key1, inj) {
		t.Fatal("key1 not pooled")
	}

	code, out := postRaw(t, srv, "/v1/graphs/"+key1+"/query", `{"full":true}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("faulted query: got %d (%s) want 500", code, strings.TrimSpace(out))
	}
	if !strings.Contains(out, "recovered panic") {
		t.Errorf("faulted query error should name the recovered panic, got %s", strings.TrimSpace(out))
	}
	if inj.Fired() != 1 {
		t.Fatalf("injector fired %d times, want 1", inj.Fired())
	}

	// The neighboring graph was never in the blast radius.
	cold2 := coldResult(t, scen2, apsp.Options{})
	var qr queryResponse
	if code := post(t, srv, "/v1/graphs/"+key2+"/query", queryRequest{Full: true}, &qr); code != http.StatusOK {
		t.Fatalf("other graph query: status %d", code)
	}
	for x := range qr.Matrix {
		for y, got := range qr.Matrix[x] {
			if want := wantWire(cold2.Dist[x][y]); got != want {
				t.Fatalf("other graph diverges at [%d][%d]", x, y)
			}
		}
	}

	// The faulted Runner's next batch is bit-identical to cold.
	cold1 := coldResult(t, scen1, apsp.Options{})
	if code := post(t, srv, "/v1/graphs/"+key1+"/query", queryRequest{Full: true}, &qr); code != http.StatusOK {
		t.Fatalf("recovery query: status %d", code)
	}
	if qr.Rounds != cold1.Stats.Rounds {
		t.Errorf("recovery rounds %d, cold %d", qr.Rounds, cold1.Stats.Rounds)
	}
	for x := range qr.Matrix {
		for y, got := range qr.Matrix[x] {
			if want := wantWire(cold1.Dist[x][y]); got != want {
				t.Fatalf("recovery answer diverges at [%d][%d]", x, y)
			}
		}
	}
}

// TestServeFaultBlamesOnlyItsCallers pins "exactly its callers"
// white-box: a coalesced query run holds two options groups; the fault
// fires during the first group's run, the second group's run is clean —
// so the first caller errors and the second gets its bit-exact answer
// from the SAME drained batch.
func TestServeFaultBlamesOnlyItsCallers(t *testing.T) {
	g := apsp.NewGraph(8, false)
	for i := 0; i < 8; i++ {
		g.AddEdge(i, (i+1)%8, int64(i+1))
	}
	p := NewPool(2, 16, 0, false, false, NewMetrics())
	key, _, err := p.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	e.runner.SetFaultInjector(faultinject.New(0, faultinject.Rule{
		Hook: faultinject.HookRound, Round: 1, SubRun: -1,
		Kind: faultinject.Panic, Once: true,
	}))

	a := &request{kind: kindQuery, ctx: context.Background(), opts: apsp.Options{Seed: 1}, done: make(chan struct{})}
	b := &request{kind: kindQuery, ctx: context.Background(), opts: apsp.Options{Seed: 2}, done: make(chan struct{})}
	e.serveQueries([]*request{a, b})

	var pe *apsp.PanicError
	if !errors.As(a.err, &pe) {
		t.Fatalf("first caller must get *apsp.PanicError, got %v", a.err)
	}
	if b.err != nil {
		t.Fatalf("second caller must be untouched by its batch-mate's fault, got %v", b.err)
	}
	cold, err := apsp.Run(mustCloneViaEdges(t, g), apsp.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for x := range cold.Dist {
		for y := range cold.Dist[x] {
			if b.res.Dist[x][y] != cold.Dist[x][y] {
				t.Fatalf("second caller's answer diverges at [%d][%d]", x, y)
			}
		}
	}
}

// TestServeFaultMatrixDaemon sweeps the fault matrix through the daemon
// path: error and panic faults at assorted stages each surface as one
// typed 5xx, after which the same Runner serves a bit-exact answer. This
// extends the core TestFaultMatrix contract (internal/core/fault_test.go)
// to the HTTP serving stack.
func TestServeFaultMatrixDaemon(t *testing.T) {
	cases := []faultinject.Rule{
		{Hook: faultinject.HookRound, Stage: "step1-csssp", Round: 3, SubRun: -1, Kind: faultinject.Panic, Once: true},
		{Hook: faultinject.HookRound, Stage: "step6-qsink", Round: faultinject.RoundAny, SubRun: -1, Kind: faultinject.Panic, Once: true},
		{Hook: faultinject.HookRound, Stage: "step3-insssp", Round: 0, SubRun: -1, Kind: faultinject.Error, Once: true},
		{Hook: faultinject.HookRound, Round: 10, SubRun: -1, Kind: faultinject.Error, Once: true},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	const scen = "random-n24-s1"
	cold := coldResult(t, scen, apsp.Options{})
	for i, rule := range cases {
		svc, srv := testDaemon(t, Config{})
		key := loadScenario(t, srv, scen)
		if !svc.Pool().SetFaultInjector(key, faultinject.New(0, rule)) {
			t.Fatalf("case %d: key not pooled", i)
		}
		code, out := postRaw(t, srv, "/v1/graphs/"+key+"/query", `{"full":true}`)
		if code != http.StatusInternalServerError {
			t.Fatalf("case %d (%s at %s): got %d (%s) want 500", i, rule.Kind, rule.Stage, code, strings.TrimSpace(out))
		}
		var qr queryResponse
		if code := post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Full: true}, &qr); code != http.StatusOK {
			t.Fatalf("case %d recovery: status %d", i, code)
		}
		if qr.Rounds != cold.Stats.Rounds {
			t.Errorf("case %d recovery rounds %d, cold %d", i, qr.Rounds, cold.Stats.Rounds)
		}
		for x := range qr.Matrix {
			for y, got := range qr.Matrix[x] {
				if want := wantWire(cold.Dist[x][y]); got != want {
					t.Fatalf("case %d recovery diverges at [%d][%d]", i, x, y)
				}
			}
		}
	}
}

// mustCloneViaEdges rebuilds a graph through the public surface (the
// original is pinned to a Runner and must not be shared with apsp.Run).
func mustCloneViaEdges(t *testing.T, g *apsp.Graph) *apsp.Graph {
	t.Helper()
	c := apsp.NewGraph(g.N(), g.Directed())
	g.Edges(func(u, v int, w int64) {
		if err := c.AddEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	})
	return c
}
