//go:build !unix

package serve

import "os"

// die is the non-unix fallback for the crash-point instrument: os.Exit
// skips deferred functions and flushes, which is as close to a hard kill
// as a portable call gets.
func (s *Store) die() {
	os.Exit(137)
}
