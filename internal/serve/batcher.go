package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"congestapsp/pkg/apsp"
)

// reqKind partitions the batch queue: consecutive requests of the same
// kind coalesce into one warm-session call.
type reqKind int

const (
	kindQuery reqKind = iota
	kindUpdate
	kindBlocker
)

func (k reqKind) String() string {
	switch k {
	case kindUpdate:
		return "update"
	case kindBlocker:
		return "blocker"
	}
	return "query"
}

// request is one queued unit of work against a pooled graph. The caller
// fills the input fields for its kind, enqueues, and blocks on done; the
// drain goroutine fills the output fields before closing done.
type request struct {
	kind reqKind
	ctx  context.Context

	opts apsp.Options        // kindQuery
	ups  []apsp.EdgeUpdate   // kindUpdate
	bopt apsp.BlockerOptions // kindBlocker

	res     *apsp.Result     // kindQuery output
	cached  bool             // query answered without running this batch
	ustats  apsp.UpdateStats // kindUpdate output
	q       []int            // kindBlocker output
	bstats  apsp.BlockerStats
	version uint64 // graph version the answer reflects
	err     error

	done chan struct{}
}

// entry is one pooled graph: its warm Runner, the FIFO batch queue, and
// the per-version result cache. A single drain goroutine (spawned on
// demand, exits when the queue empties) owns the Runner, which is what
// makes the daemon linearizable per graph: every answer reflects exactly
// the prefix of updates the FIFO order put before it, and the version
// counter names that prefix.
type entry struct {
	key    string
	pool   *Pool
	runner *apsp.Runner

	// journal is the entry's write-ahead log on a durable pool (nil
	// otherwise): applyCoalesced appends each accepted batch before any
	// waiter is released.
	journal *Journal

	lastUse uint64 // LRU slot, guarded by pool.mu

	mu       sync.Mutex // guards queue, draining, closed, cache
	queue    []*request
	draining bool
	// closed marks a durably-evicted entry: stale pointers must stop
	// enqueueing (ErrUnknownGraph) so the evicted twin cannot append to
	// the journal a recovered replacement now owns.
	closed bool

	version atomic.Uint64
	edges   atomic.Int64  // current edge count, maintained by the drain goroutine
	digest  atomic.Uint64 // current content digest, maintained by the drain goroutine
	// arenaBytes is the Runner's last observed warm-arena footprint,
	// published by the drain goroutine after each batch cycle (the Runner
	// may not be probed concurrently with a run, so the pool's byte
	// accounting reads this atomic instead of the live network).
	arenaBytes atomic.Int64

	// cache maps an options key to the Result computed for it at the
	// current version; cleared on every version bump. Queries run full
	// APSP, so one cached Result answers every pair/row/matrix question
	// asked under the same options. Touched only by the drain goroutine
	// and by Stats (under lock).
	cache map[string]*apsp.Result
}

func newEntry(key string, r *apsp.Runner, p *Pool) *entry {
	e := &entry{
		key:    key,
		pool:   p,
		runner: r,
		cache:  make(map[string]*apsp.Result),
	}
	e.edges.Store(int64(r.Graph().M()))
	e.digest.Store(r.Graph().Digest())
	return e
}

// approxBytes estimates the entry's resident footprint for the pool's byte
// budget: the n²-proportional result matrices a cached full-APSP answer
// pins (8 bytes of Dist plus 8 of LastHop per cell) plus the high-water
// arena footprint of the warm Runner's simulation network.
func (e *entry) approxBytes() int64 {
	n := int64(e.runner.Graph().N())
	return n*n*16 + e.arenaBytes.Load()
}

// idle reports whether the entry has no queued or in-flight work — the
// durable pool's eviction precondition.
func (e *entry) idle() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue) == 0 && !e.draining
}

// markClosed retires a durably-evicted entry: subsequent enqueues fail
// with ErrUnknownGraph and callers re-resolve the key (which recovers the
// lineage from disk).
func (e *entry) markClosed() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
}

// enqueue admits r to the batch queue (shedding at the depth cap) and
// ensures a drain goroutine is running. The caller then waits on r.done.
func (e *entry) enqueue(r *request) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrUnknownGraph
	}
	if len(e.queue) >= e.pool.maxQueue {
		e.mu.Unlock()
		e.pool.met.Add("apspd_shed_total", 1)
		return ErrOverloaded
	}
	e.queue = append(e.queue, r)
	depth := int64(len(e.queue))
	start := !e.draining
	if start {
		e.draining = true
	}
	e.mu.Unlock()
	e.pool.met.SetMax("apspd_queue_depth_max", depth)
	if start {
		go e.drain()
	}
	return nil
}

// submit is enqueue + wait: it blocks until the drain goroutine answered
// r. The wait is NOT cut short by r.ctx — the batcher owns cancellation
// (a merged context per coalesced run) and always answers, so a canceled
// caller still gets its typed interrupt error rather than an abandoned
// request mutating state behind its back.
func (e *entry) submit(r *request) error {
	if err := e.enqueue(r); err != nil {
		return err
	}
	<-r.done
	return r.err
}

// drain is the entry's single consumer: it repeatedly swaps out the whole
// queue, splits it into maximal same-kind runs (FIFO order preserved), and
// serves each run with one warm-session call.
func (e *entry) drain() {
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			e.draining = false
			e.mu.Unlock()
			return
		}
		batch := e.queue
		e.queue = nil
		e.mu.Unlock()
		for i := 0; i < len(batch); {
			j := i + 1
			for j < len(batch) && batch[j].kind == batch[i].kind {
				j++
			}
			run := batch[i:j]
			met := e.pool.met
			met.Add(fmt.Sprintf("apspd_batches_total{kind=%q}", run[0].kind), 1)
			met.Add(fmt.Sprintf("apspd_batched_requests_total{kind=%q}", run[0].kind), int64(len(run)))
			met.SetMax("apspd_batch_size_max", int64(len(run)))
			switch run[0].kind {
			case kindQuery:
				e.serveQueries(run)
			case kindUpdate:
				e.applyCoalesced(run)
			case kindBlocker:
				e.serveBlockers(run)
			}
			i = j
		}
		// Publish the arenas' (grow-only) footprint and let the pool
		// re-check its byte budget: warm runs are where entries get bigger.
		e.arenaBytes.Store(e.runner.ArenaFootprint())
		e.pool.noteFootprint()
	}
}

// optionsKey canonicalizes the result-affecting options fields into the
// cache key. Execution knobs (Parallel, RetrySequential) are the server's
// choice and bit-identical in results, so they are not part of identity.
func optionsKey(o apsp.Options) string {
	return fmt.Sprintf("%d/%d/%d/%d", o.Algorithm, o.HopParam, o.Bandwidth, o.Seed)
}

// serveQueries answers a run of queries: each distinct options key is
// computed at most once (first-appearance order), everything else is
// served from the per-version cache.
func (e *entry) serveQueries(run []*request) {
	version := e.version.Load()
	byKey := make(map[string][]*request)
	var order []string
	for _, r := range run {
		k := optionsKey(r.opts)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], r)
	}
	for _, k := range order {
		group := byKey[k]
		e.mu.Lock()
		res, hit := e.cache[k]
		e.mu.Unlock()
		if hit {
			e.pool.met.Add("apspd_result_cache_hits_total", int64(len(group)))
			for _, r := range group {
				r.res, r.cached, r.version = res, true, version
				close(r.done)
			}
			continue
		}
		ctx, cancel := mergedContext(group)
		opts := group[0].opts
		opts.Parallel = e.pool.parallel
		opts.Planner = e.pool.planner
		res, err := e.runner.RunContext(ctx, opts)
		cancel()
		e.pool.met.Add("apspd_runs_total", 1)
		if err == nil {
			e.recordRun(res)
			e.mu.Lock()
			e.cache[k] = res
			e.mu.Unlock()
		}
		for _, r := range group {
			r.res, r.err, r.version = res, err, version
			close(r.done)
		}
	}
}

// applyCoalesced serves a run of update requests with ONE ApplyUpdates
// call over the concatenated batches, then splits the outcome back across
// the callers by the lowest failing index: callers whose slice lies
// entirely before a failure succeeded (their updates are applied), the
// caller owning the failing index gets the UpdateError rebased into its
// own batch, and callers after it get ErrAborted untouched.
func (e *entry) applyCoalesced(run []*request) {
	var all []apsp.EdgeUpdate
	starts := make([]int, len(run))
	for i, r := range run {
		starts[i] = len(all)
		all = append(all, r.ups...)
	}
	stats, err := e.runner.ApplyUpdates(all)
	failAt := len(all) // first never-attempted global index
	var ue *apsp.UpdateError
	if err != nil && errors.As(err, &ue) {
		failAt = ue.Index
	} else if err != nil {
		failAt = 0 // non-indexed failure: nothing is known applied
	}
	var jerr error
	if err == nil || failAt > 0 {
		// Some prefix (possibly all) of the concatenated updates applied:
		// the served graph moved, so bump the version and drop the cache.
		e.version.Add(1)
		e.mu.Lock()
		clear(e.cache)
		e.mu.Unlock()
		e.edges.Store(int64(e.runner.Graph().M()))
		e.digest.Store(e.runner.Graph().Digest())
		if e.journal != nil {
			// WAL contract: the accepted prefix must be journaled (and, under
			// FsyncAlways, synced) before any waiter learns its updates
			// applied. A journal failure does not undo the in-memory apply —
			// it fails the would-be-successful callers instead, below.
			accepted := all
			if err != nil {
				accepted = all[:failAt]
			}
			jerr = e.journal.append(&journalRecord{
				Kind:    recordKindUpdate,
				Version: e.version.Load(),
				Digest:  Key(e.digest.Load()),
				Updates: toRecordUpdates(accepted),
			})
		}
	}
	version := e.version.Load()
	met := e.pool.met
	met.Add("apspd_update_reused_total", int64(stats.Reused))
	met.Add("apspd_update_recomputed_total", int64(stats.Recomputed))
	if stats.FellBack {
		met.Add("apspd_update_fallbacks_total", 1)
	}
	for i, r := range run {
		start, end := starts[i], starts[i]+len(r.ups)
		r.ustats, r.version = stats, version
		switch {
		case err == nil || end <= failAt:
			// fully applied; jerr (nil in the durable happy path and always
			// when no journal is attached) surfaces a journal failure to the
			// callers whose durability it broke.
			r.err = jerr
		case ue != nil && start <= failAt:
			r.err = &apsp.UpdateError{Index: failAt - start, Err: ue.Err}
		case err != nil && start == 0 && ue == nil:
			r.err = err // non-indexed failure blames the whole batch head
		default:
			r.err = ErrAborted
		}
		close(r.done)
	}
	if e.journal != nil && jerr == nil && (err == nil || failAt > 0) {
		// Checkpoint cadence runs after the waiters are released — it is
		// maintenance, not part of any request's latency. A checkpoint
		// failure is counted (apspd_journal_errors_total) and leaves the
		// journal intact, which recovery handles fine; it never fails
		// requests.
		e.journal.maybeCheckpoint(e.runner.Graph(), version)
	}
}

// serveBlockers runs blocker-set constructions one by one (they are rare,
// read-only, and have no result cache).
func (e *entry) serveBlockers(run []*request) {
	version := e.version.Load()
	for _, r := range run {
		opt := r.bopt
		opt.Parallel = e.pool.parallel
		r.q, r.bstats, r.err = e.runner.BlockerSetContext(r.ctx, opt)
		r.version = version
		close(r.done)
	}
}

// recordRun folds a run's per-stage cost into the stage metrics, including
// the execution planner's seq-vs-sharded decision trace.
func (e *entry) recordRun(res *apsp.Result) {
	met := e.pool.met
	for _, st := range res.Stats.Stages {
		met.Add(fmt.Sprintf("apspd_stage_rounds_total{stage=%q}", st.Name), int64(st.Rounds))
		met.AddFloat(fmt.Sprintf("apspd_stage_wall_seconds_total{stage=%q}", st.Name), st.WallMS/1000)
		met.Add(fmt.Sprintf("apspd_stage_allocs_total{stage=%q}", st.Name), int64(st.Allocs))
		if st.Exec != "" {
			met.Add(fmt.Sprintf("apspd_stage_exec_total{stage=%q,exec=%q}", st.Name, st.Exec), 1)
		}
	}
}

// mergedContext builds the context a coalesced computation runs under: it
// carries the LATEST deadline among the waiters (none if any waiter is
// deadline-free) and is canceled only when EVERY waiter's context is done
// — one impatient caller must not kill a run other callers still want.
func mergedContext(group []*request) (context.Context, context.CancelFunc) {
	base, cancel := context.WithCancel(context.Background())
	ctx := context.Context(base)
	var dl time.Time
	bounded := true
	for _, r := range group {
		d, ok := r.ctx.Deadline()
		if !ok {
			bounded = false
			break
		}
		if d.After(dl) {
			dl = d
		}
	}
	dcancel := context.CancelFunc(func() {})
	if bounded {
		// Every waiter carries a deadline: the latest one alone governs
		// the run. No cancel watcher — racing it against the identical
		// deadline instant would non-deterministically report "canceled"
		// where "deadline exceeded" is the truth.
		ctx, dcancel = context.WithDeadline(base, dl)
	} else {
		// Some waiter is deadline-free: watch for every waiter going
		// away (client disconnects) and only then cancel the run.
		go func() {
			for _, r := range group {
				select {
				case <-r.ctx.Done():
				case <-base.Done():
					return
				}
			}
			cancel()
		}()
	}
	return ctx, func() { dcancel(); cancel() }
}

// EntryStats is the per-graph snapshot served by the stats endpoint.
// Digest is the CURRENT content digest (16 hex digits, same rendering as
// the load-time key): the crash-recovery harness compares it across a
// kill/restart to prove bit-identical state.
type EntryStats struct {
	Key     string `json:"graph"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	Version uint64 `json:"version"`
	Digest  string `json:"digest"`
	Cached  int    `json:"cached_results"`
}

// Stats snapshots the entry. N and directedness are immutable; M and the
// cache size are maintained by the drain goroutine and read atomically /
// under the queue lock, so the snapshot is safe against in-flight batches.
func (e *entry) Stats() EntryStats {
	e.mu.Lock()
	cached := len(e.cache)
	e.mu.Unlock()
	return EntryStats{
		Key:     e.key,
		N:       e.runner.Graph().N(),
		M:       int(e.edges.Load()),
		Version: e.version.Load(),
		Digest:  Key(e.digest.Load()),
		Cached:  cached,
	}
}
