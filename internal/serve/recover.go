package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"congestapsp/internal/graphio"
	"congestapsp/pkg/apsp"
)

// This file is the read side of the durability layer: decoding a journal
// byte image, replaying it (on top of a checkpoint when one exists) into
// the graph state the last acknowledged version had, and the boot-time
// sweep that re-registers every recovered lineage in the pool before the
// daemon reports ready. The replay is self-verifying — every journal
// record carries the content digest the graph must have after it applies,
// and a mismatch is fatal for that lineage rather than silently served.

// decodeJournalBytes walks a journal byte image frame by frame. It returns
// the decoded records, the byte offset of the last intact frame boundary
// (goodLen), and whether the image ends in a torn or corrupt frame — the
// state a crash mid-append leaves, which recovery handles by truncating
// the file at goodLen. A frame that passes its checksum but does not parse
// as a record is NOT torn — appends are contiguous single writes, so an
// intact frame with garbage inside means real corruption or a software
// bug, and that is a returned error, never a silent truncation.
//
// The function is total over arbitrary input (the FuzzJournalReplay
// contract): any byte slice returns records, a boundary, and flags —
// never a panic.
func decodeJournalBytes(data []byte) (recs []*journalRecord, goodLen int, torn bool, err error) {
	off := 0
	for {
		payload, n, ferr := graphio.NextFrame(data[off:])
		if errors.Is(ferr, io.EOF) {
			return recs, off, false, nil
		}
		if ferr != nil {
			return recs, off, true, nil
		}
		rec := new(journalRecord)
		if jerr := json.Unmarshal(payload, rec); jerr != nil {
			return recs, off, false, fmt.Errorf("record %d: %w", len(recs), jerr)
		}
		off += n
		recs = append(recs, rec)
	}
}

// buildLoadRecord reconstructs the graph content a load record named:
// by re-generating the deterministic scenario, or from the inline edges.
func buildLoadRecord(rec *journalRecord, maxN int) (*apsp.Graph, error) {
	if rec.Scenario != "" {
		sc, err := apsp.ParseScenario(rec.Scenario)
		if err != nil {
			return nil, err
		}
		if sc.N > maxN {
			return nil, fmt.Errorf("scenario n %d exceeds cap %d", sc.N, maxN)
		}
		return sc.Build()
	}
	if rec.N < 1 || rec.N > maxN {
		return nil, fmt.Errorf("n %d out of range [1, %d]", rec.N, maxN)
	}
	g := apsp.NewGraph(rec.N, rec.Directed)
	for i, e := range rec.Edges {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	return g, nil
}

// replayJournal folds decoded journal records into a graph, starting from
// ckpt (at ckptVersion) when a checkpoint exists, nil otherwise. Records
// at or below the checkpoint's version are skipped — that is what makes a
// crash between "checkpoint durable" and "journal truncated" harmless.
// Every applied record's resulting digest is checked against the digest
// the record journaled; any disagreement (also: a missing load record,
// non-contiguous versions, out-of-range endpoints, unknown ops) is an
// error. applied counts replayed UPDATE records, which is exactly the
// journal's distance past the checkpoint (the checkpoint-cadence counter
// resumes from it).
func replayJournal(recs []*journalRecord, ckpt *apsp.Graph, ckptVersion uint64, maxN int) (g *apsp.Graph, version uint64, applied int, err error) {
	g, version = ckpt, ckptVersion
	for i, rec := range recs {
		if g != nil && rec.Version <= version {
			continue
		}
		switch rec.Kind {
		case recordKindLoad:
			if g != nil {
				return nil, 0, 0, fmt.Errorf("record %d: duplicate load record", i)
			}
			if rec.Version != 0 {
				return nil, 0, 0, fmt.Errorf("record %d: load record at version %d", i, rec.Version)
			}
			if g, err = buildLoadRecord(rec, maxN); err != nil {
				return nil, 0, 0, fmt.Errorf("record %d: %w", i, err)
			}
			version = 0
		case recordKindUpdate:
			if g == nil {
				return nil, 0, 0, fmt.Errorf("record %d: update record before any load", i)
			}
			if rec.Version != version+1 {
				return nil, 0, 0, fmt.Errorf("record %d: version %d after %d (journal gap)", i, rec.Version, version)
			}
			n := g.N()
			for j, ru := range rec.Updates {
				op, perr := parseRecordOp(ru.Op)
				if perr != nil {
					return nil, 0, 0, fmt.Errorf("record %d update %d: %w", i, j, perr)
				}
				if ru.U < 0 || ru.U >= n || ru.V < 0 || ru.V >= n {
					return nil, 0, 0, fmt.Errorf("record %d update %d: edge (%d,%d) out of range [0,%d)", i, j, ru.U, ru.V, n)
				}
				if aerr := g.ApplyUpdate(apsp.EdgeUpdate{Op: op, U: ru.U, V: ru.V, W: ru.W}); aerr != nil {
					return nil, 0, 0, fmt.Errorf("record %d update %d: %w", i, j, aerr)
				}
			}
			version = rec.Version
			applied++
		default:
			return nil, 0, 0, fmt.Errorf("record %d: unknown kind %q", i, rec.Kind)
		}
		if got := Key(g.Digest()); got != rec.Digest {
			return nil, 0, 0, fmt.Errorf("record %d: digest %s, journaled %s", i, got, rec.Digest)
		}
	}
	if g == nil {
		return nil, 0, 0, fmt.Errorf("no checkpoint and no load record")
	}
	return g, version, applied, nil
}

// Recover rebuilds key's graph from its durable state: latest checkpoint
// (if any) plus the journal tail beyond it. A torn or corrupt final frame
// — the damage a crash mid-append can leave — is truncated away, not
// fatal; everything before it is intact by CRC. The journal is left open
// for appends with its checkpoint-cadence counter resumed, and abandoned
// temp files (a crash mid-checkpoint) are swept.
func (s *Store) Recover(key string) (*apsp.Graph, uint64, *Journal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, nil, fmt.Errorf("serve: store closed")
	}
	dir := filepath.Join(s.dir, key)
	for _, pat := range []string{".ckpt-*", ".graphio-*"} {
		if stray, _ := filepath.Glob(filepath.Join(dir, pat)); stray != nil {
			for _, p := range stray {
				os.Remove(p)
			}
		}
	}
	ckpt, ckptVersion, err := s.readCheckpoint(key)
	if err != nil {
		return nil, 0, nil, err
	}
	// If the journal is already open in-process (the key was evicted and is
	// being re-recovered), freeze it while reading; eviction requires the
	// entry idle and closed, so no appender is mid-write, but the lock makes
	// that invariant local.
	j := s.journals[key]
	path := filepath.Join(dir, journalFile)
	if j != nil {
		j.mu.Lock()
	}
	data, rerr := os.ReadFile(path)
	if j != nil {
		j.mu.Unlock()
	}
	if rerr != nil && !os.IsNotExist(rerr) {
		return nil, 0, nil, rerr
	}
	recs, good, torn, derr := decodeJournalBytes(data)
	if derr != nil {
		return nil, 0, nil, fmt.Errorf("serve: journal %s: %w", key, derr)
	}
	if torn {
		if j != nil {
			j.mu.Lock()
			terr := j.f.Truncate(int64(good))
			j.mu.Unlock()
			if terr != nil {
				return nil, 0, nil, fmt.Errorf("serve: journal %s: truncating torn tail: %w", key, terr)
			}
		} else if terr := os.Truncate(path, int64(good)); terr != nil {
			return nil, 0, nil, fmt.Errorf("serve: journal %s: truncating torn tail: %w", key, terr)
		}
		s.met.Add("apspd_recovery_torn_tails_total", 1)
	}
	g, version, applied, err := replayJournal(recs, ckpt, ckptVersion, s.opt.MaxGraphN)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("serve: journal %s: %w", key, err)
	}
	if j == nil {
		if j, err = s.journalLocked(key); err != nil {
			return nil, 0, nil, err
		}
	}
	j.mu.Lock()
	j.updatesSinceCkpt = applied
	j.mu.Unlock()
	s.met.Add("apspd_recovery_records_total", int64(applied))
	return g, version, j, nil
}

// recoverFromStore rebuilds key's entry from disk and registers it in the
// pool at the recovered version — the client-visible version clock carries
// on exactly where the acknowledged history left it.
func (p *Pool) recoverFromStore(key string) (*entry, error) {
	p.mu.Lock()
	store := p.store
	p.mu.Unlock()
	if store == nil {
		return nil, ErrUnknownGraph
	}
	g, version, j, err := store.Recover(key)
	if err != nil {
		return nil, err
	}
	r, err := apsp.NewRunner(g)
	if err != nil {
		return nil, err
	}
	e := newEntry(key, r, p)
	e.journal = j
	e.version.Store(version)
	p.mu.Lock()
	if prior, ok := p.entries[key]; ok {
		// A racing recovery (or load) registered the key first: one winner,
		// same on-disk lineage either way.
		p.clock++
		prior.lastUse = p.clock
		p.mu.Unlock()
		return prior, nil
	}
	p.clock++
	e.lastUse = p.clock
	p.entries[key] = e
	for len(p.entries) > p.max {
		if !p.evictLRULocked() {
			break
		}
	}
	size := len(p.entries)
	p.mu.Unlock()
	p.met.Set("apspd_pool_size", int64(size))
	p.met.Add("apspd_recovery_graphs_total", 1)
	return e, nil
}

// RecoveryProgress is the /readyz payload: whether the daemon serves
// traffic yet and, during boot recovery, how far the replay has come.
type RecoveryProgress struct {
	Ready           bool   `json:"ready"`
	GraphsTotal     int    `json:"graphs_total"`
	GraphsDone      int    `json:"graphs_done"`
	RecordsReplayed int64  `json:"records_replayed"`
	Current         string `json:"current,omitempty"`
}

// BeginRecovery flips the service to not-ready (every /v1/* request gets
// 503 with recovery progress) ahead of Recover. Call it before the HTTP
// listener starts serving so no request can slip through pre-recovery
// state; Recover calls it again harmlessly.
func (s *Service) BeginRecovery() {
	s.ready.Store(false)
	s.met.Set("apspd_ready", 0)
}

// Recover opens the durability store at dataDir and replays every on-disk
// lineage into the pool, then marks the service ready. Any lineage that
// fails its self-verification (digest mismatch, journal gap, malformed
// record beyond a torn tail) fails recovery outright — the daemon refuses
// to start rather than serve state it cannot prove. Call once, before
// serving /v1 traffic; with no data dir configured, skip it (New starts
// ready).
func (s *Service) Recover(dataDir string, opt StoreOptions) error {
	s.BeginRecovery()
	if opt.MaxGraphN <= 0 {
		opt.MaxGraphN = s.cfg.MaxGraphN
	}
	st, err := OpenStore(dataDir, opt, s.met)
	if err != nil {
		return err
	}
	s.store = st
	s.pool.setStore(st)
	keys, err := st.Keys()
	if err != nil {
		return err
	}
	s.setProgress(func(p *RecoveryProgress) { p.GraphsTotal = len(keys) })
	for _, key := range keys {
		if !st.HasGraph(key) {
			// An empty directory (e.g. a crash after mkdir, before the load
			// record landed) has nothing to recover and nothing to lose.
			s.setProgress(func(p *RecoveryProgress) { p.GraphsDone++ })
			continue
		}
		s.setProgress(func(p *RecoveryProgress) { p.Current = key })
		if _, err := s.pool.recoverFromStore(key); err != nil {
			return fmt.Errorf("recovering graph %s: %w", key, err)
		}
		s.setProgress(func(p *RecoveryProgress) {
			p.GraphsDone++
			p.Current = ""
			p.RecordsReplayed = s.met.Get("apspd_recovery_records_total")
		})
	}
	s.ready.Store(true)
	s.met.Set("apspd_ready", 1)
	return nil
}

func (s *Service) setProgress(f func(*RecoveryProgress)) {
	s.recMu.Lock()
	f(&s.prog)
	s.recMu.Unlock()
}

// Progress snapshots recovery state for /readyz.
func (s *Service) Progress() RecoveryProgress {
	s.recMu.Lock()
	p := s.prog
	s.recMu.Unlock()
	p.Ready = s.ready.Load()
	return p
}

// Ready reports whether the service accepts /v1 traffic.
func (s *Service) Ready() bool { return s.ready.Load() }

// Close releases the durability store (fsync + close every journal). The
// HTTP server must be drained first.
func (s *Service) Close() error {
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Store exposes the durability root (tests); nil without -data-dir.
func (s *Service) Store() *Store { return s.store }
