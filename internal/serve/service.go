package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"congestapsp/pkg/apsp"
)

// Config sizes the daemon. The zero value picks the documented defaults.
type Config struct {
	// PoolSize caps the warm-Runner pool (default 8).
	PoolSize int
	// MaxQueue caps each graph's batch queue; requests beyond it are shed
	// with HTTP 429 (default 256).
	MaxQueue int
	// MaxBatch caps client-controlled list sizes — query pairs, updates
	// per request, edges per loaded graph is MaxBatch*8 (default 4096).
	MaxBatch int
	// MaxGraphN caps loaded graph sizes (default 4096).
	MaxGraphN int
	// Parallel runs pooled computations on the worker-pool execution mode
	// (bit-identical results; a throughput knob only).
	Parallel bool
	// Planner resolves seq-vs-sharded per pipeline stage from the core
	// execution planner's cost model instead of the global Parallel flag
	// (bit-identical results; decisions land in apspd_stage_exec_total).
	Planner bool
	// MaxBytes, when > 0, is a second pool-eviction budget over the
	// approximate per-entry byte footprint (n² result matrices + warm-arena
	// high water), enforced alongside the PoolSize entry-count LRU and
	// exported as the apspd_pool_bytes gauge.
	MaxBytes int64
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxGraphN <= 0 {
		c.MaxGraphN = 4096
	}
	return c
}

// Service is the HTTP front end: a mux over the pool and its batchers.
//
//	POST /v1/graphs                  load a graph (inline edges or scenario)
//	POST /v1/graphs/{key}/query      distances / paths (batched + cached)
//	POST /v1/graphs/{key}/update     ApplyUpdates (coalesced)
//	POST /v1/graphs/{key}/blocker    blocker-set construction
//	GET  /v1/graphs/{key}/stats      per-graph snapshot
//	GET  /metrics                    Prometheus text format
//	GET  /healthz                    liveness (process up; nothing else)
//	GET  /readyz                     readiness (503 + progress during recovery)
type Service struct {
	cfg  Config
	pool *Pool
	met  *Metrics
	mux  *http.ServeMux

	// Durability state (nil/true without -data-dir): the store is opened by
	// Recover, and ready gates /v1 traffic while boot recovery replays.
	store *Store
	ready atomic.Bool
	recMu sync.Mutex
	prog  RecoveryProgress
}

// New builds a Service with its own pool and metrics registry. The service
// starts ready; a durable daemon calls BeginRecovery + Recover before
// serving /v1 traffic.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	met := NewMetrics()
	s := &Service{
		cfg:  cfg,
		pool: NewPool(cfg.PoolSize, cfg.MaxQueue, cfg.MaxBytes, cfg.Parallel, cfg.Planner, met),
		met:  met,
		mux:  http.NewServeMux(),
	}
	s.ready.Store(true)
	met.Set("apspd_ready", 1)
	s.mux.HandleFunc("POST /v1/graphs", s.handleLoad)
	s.mux.HandleFunc("POST /v1/graphs/{key}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/graphs/{key}/update", s.handleUpdate)
	s.mux.HandleFunc("POST /v1/graphs/{key}/blocker", s.handleBlocker)
	s.mux.HandleFunc("GET /v1/graphs/{key}/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Pure liveness: answers as long as the process serves HTTP, even
		// mid-recovery. Readiness lives at /readyz.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		p := s.Progress()
		code := http.StatusOK
		if !p.Ready {
			code = http.StatusServiceUnavailable
		}
		s.writeJSON(w, code, p)
	})
	return s
}

// Handler is the daemon's root handler: status-code accounting, plus the
// readiness gate — while boot recovery replays, every /v1 request is
// refused with 503 and the recovery progress (the state the request would
// observe is not yet proven), while /healthz, /readyz and /metrics stay up.
func (s *Service) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &codeRecorder{ResponseWriter: w, code: http.StatusOK}
		if !s.ready.Load() && strings.HasPrefix(r.URL.Path, "/v1/") {
			s.writeJSON(rec, http.StatusServiceUnavailable, s.Progress())
		} else {
			s.mux.ServeHTTP(rec, r)
		}
		s.met.Add(fmt.Sprintf("apspd_http_requests_total{code=\"%d\"}", rec.code), 1)
	})
}

// Pool exposes the warm-Runner pool (tests and the fault-matrix suites).
func (s *Service) Pool() *Pool { return s.pool }

// Metrics exposes the instrumentation registry.
func (s *Service) Metrics() *Metrics { return s.met }

type codeRecorder struct {
	http.ResponseWriter
	code    int
	written bool
}

func (c *codeRecorder) WriteHeader(code int) {
	if !c.written {
		c.code = code
		c.written = true
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *codeRecorder) Write(b []byte) (int, error) {
	c.written = true
	return c.ResponseWriter.Write(b)
}

// ---- wire shapes ----------------------------------------------------------

// loadRequest loads a graph into the pool: either an inline edge list or a
// named scenario from the deterministic corpus (exactly one of the two).
type loadRequest struct {
	Scenario string     `json:"scenario,omitempty"`
	N        int        `json:"n,omitempty"`
	Directed bool       `json:"directed,omitempty"`
	Edges    [][3]int64 `json:"edges,omitempty"`
}

type loadResponse struct {
	Graph    string `json:"graph"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	Directed bool   `json:"directed"`
	Created  bool   `json:"created"`
}

// queryRequest asks for shortest-path answers under one options set.
// Exactly one selector — pairs, source, or full — must be present.
type queryRequest struct {
	Algorithm  string   `json:"algorithm,omitempty"` // det43|det32|rand43|bcast6 ("" = det43)
	HopParam   int      `json:"hop_param,omitempty"`
	Bandwidth  int      `json:"bandwidth,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	Pairs      [][2]int `json:"pairs,omitempty"`
	Source     *int     `json:"source,omitempty"`
	Full       bool     `json:"full,omitempty"`
	Paths      bool     `json:"paths,omitempty"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
}

type queryResponse struct {
	Graph     string    `json:"graph"`
	Version   uint64    `json:"version"`
	Cached    bool      `json:"cached"`
	Algorithm string    `json:"algorithm"`
	Rounds    int       `json:"rounds"`
	HopParam  int       `json:"h"`
	Blocker   int       `json:"blocker_size"`
	Dist      []int64   `json:"dist,omitempty"`
	Paths     [][]int   `json:"paths,omitempty"`
	Row       []int64   `json:"row,omitempty"`
	Matrix    [][]int64 `json:"matrix,omitempty"`
}

type updateRequestWire struct {
	Updates []struct {
		Op string `json:"op"` // set | insert | delete
		U  int    `json:"u"`
		V  int    `json:"v"`
		W  int64  `json:"w,omitempty"`
	} `json:"updates"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

type updateResponse struct {
	Graph      string `json:"graph"`
	Version    uint64 `json:"version"`
	Applied    int    `json:"applied"`
	Reused     int    `json:"reused"`
	Recomputed int    `json:"recomputed"`
	FellBack   bool   `json:"fell_back"`
}

type blockerRequestWire struct {
	HopParam   int    `json:"hop_param,omitempty"`
	Mode       string `json:"mode,omitempty"` // deterministic | random | greedy
	Seed       int64  `json:"seed,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

type blockerResponse struct {
	Graph   string `json:"graph"`
	Version uint64 `json:"version"`
	Q       []int  `json:"q"`
	Rounds  int    `json:"rounds"`
}

type errorResponse struct {
	Error       string `json:"error"`
	UpdateIndex *int   `json:"update_index,omitempty"`
}

// wireDist maps internal distances onto the wire: unreachable (graph.Inf)
// becomes -1, so clients never parse a 62-bit sentinel.
func wireDist(d int64) int64 {
	if d >= apsp.Inf {
		return -1
	}
	return d
}

// ---- decoding + validation ------------------------------------------------

// decodeQueryRequest parses and validates a query body against a graph of
// n vertices and the service's batch cap. It is the FuzzQueryRequest
// target: pure, deterministic, and total (any input returns a request or
// an error, never a panic).
func decodeQueryRequest(body []byte, n, maxBatch int) (*queryRequest, apsp.Options, error) {
	var q queryRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return nil, apsp.Options{}, fmt.Errorf("bad query body: %w", err)
	}
	var opt apsp.Options
	if q.Algorithm != "" {
		alg, err := apsp.ParseAlgorithm(q.Algorithm)
		if err != nil {
			return nil, apsp.Options{}, err
		}
		opt.Algorithm = alg
	}
	if q.HopParam < 0 || q.HopParam > n {
		return nil, apsp.Options{}, fmt.Errorf("hop_param %d out of range [0, %d]", q.HopParam, n)
	}
	if q.Bandwidth < 0 || q.Bandwidth > 1<<20 {
		return nil, apsp.Options{}, fmt.Errorf("bandwidth %d out of range", q.Bandwidth)
	}
	if q.DeadlineMS < 0 {
		return nil, apsp.Options{}, fmt.Errorf("deadline_ms %d is negative", q.DeadlineMS)
	}
	opt.HopParam, opt.Bandwidth, opt.Seed = q.HopParam, q.Bandwidth, q.Seed
	selectors := 0
	if len(q.Pairs) > 0 {
		selectors++
	}
	if q.Source != nil {
		selectors++
	}
	if q.Full {
		selectors++
	}
	if selectors != 1 {
		return nil, apsp.Options{}, fmt.Errorf("exactly one of pairs, source, full must be set (got %d)", selectors)
	}
	if len(q.Pairs) > maxBatch {
		return nil, apsp.Options{}, fmt.Errorf("pairs batch %d exceeds cap %d", len(q.Pairs), maxBatch)
	}
	for i, p := range q.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return nil, apsp.Options{}, fmt.Errorf("pair %d (%d,%d) out of range [0,%d)", i, p[0], p[1], n)
		}
	}
	if q.Source != nil && (*q.Source < 0 || *q.Source >= n) {
		return nil, apsp.Options{}, fmt.Errorf("source %d out of range [0,%d)", *q.Source, n)
	}
	if q.Paths && len(q.Pairs) == 0 {
		return nil, apsp.Options{}, fmt.Errorf("paths requires pairs")
	}
	return &q, opt, nil
}

func decodeUpdateRequest(body []byte, n, maxBatch int) ([]apsp.EdgeUpdate, int64, error) {
	var u updateRequestWire
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&u); err != nil {
		return nil, 0, fmt.Errorf("bad update body: %w", err)
	}
	if u.DeadlineMS < 0 {
		return nil, 0, fmt.Errorf("deadline_ms %d is negative", u.DeadlineMS)
	}
	if len(u.Updates) == 0 {
		return nil, 0, fmt.Errorf("empty update batch")
	}
	if len(u.Updates) > maxBatch {
		return nil, 0, fmt.Errorf("update batch %d exceeds cap %d", len(u.Updates), maxBatch)
	}
	ups := make([]apsp.EdgeUpdate, len(u.Updates))
	for i, w := range u.Updates {
		var op apsp.UpdateOp
		switch w.Op {
		case "set", "set-weight", "w":
			op = apsp.SetWeight
		case "insert", "a":
			op = apsp.InsertEdge
		case "delete", "d":
			op = apsp.DeleteEdge
		default:
			return nil, 0, fmt.Errorf("update %d: unknown op %q (want set|insert|delete)", i, w.Op)
		}
		if w.U < 0 || w.U >= n || w.V < 0 || w.V >= n {
			return nil, 0, fmt.Errorf("update %d: edge (%d,%d) out of range [0,%d)", i, w.U, w.V, n)
		}
		if op != apsp.DeleteEdge && w.W < 0 {
			return nil, 0, fmt.Errorf("update %d: negative weight %d", i, w.W)
		}
		ups[i] = apsp.EdgeUpdate{Op: op, U: w.U, V: w.V, W: w.W}
	}
	return ups, u.DeadlineMS, nil
}

// ---- handlers -------------------------------------------------------------

func (s *Service) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc, _ := json.Marshal(v)
	w.Write(append(enc, '\n'))
}

// writeErr maps the serving error taxonomy onto status codes: shed → 429,
// unknown graph → 404, batch-mate abort → 409, bad update → 400 (with the
// caller-relative index), deadline → 504, panic/internal → 500.
func (s *Service) writeErr(w http.ResponseWriter, err error) {
	resp := errorResponse{Error: err.Error()}
	code := http.StatusInternalServerError
	var ue *apsp.UpdateError
	switch {
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownGraph):
		code = http.StatusNotFound
	case errors.Is(err, ErrAborted):
		code = http.StatusConflict
	case errors.As(err, &ue):
		code = http.StatusBadRequest
		resp.UpdateIndex = &ue.Index
	case errors.Is(err, apsp.ErrDeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, apsp.ErrCanceled):
		code = 499 // client closed request (nginx convention)
	}
	s.writeJSON(w, code, resp)
}

func (s *Service) badRequest(w http.ResponseWriter, err error) {
	s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

func (s *Service) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	var buf bytes.Buffer
	limited := http.MaxBytesReader(w, r.Body, 16<<20)
	if _, err := buf.ReadFrom(limited); err != nil {
		s.badRequest(w, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return buf.Bytes(), true
}

func (s *Service) handleLoad(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req loadRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, fmt.Errorf("bad load body: %w", err))
		return
	}
	var g *apsp.Graph
	switch {
	case req.Scenario != "" && (req.N != 0 || len(req.Edges) != 0):
		s.badRequest(w, fmt.Errorf("scenario and inline edges are mutually exclusive"))
		return
	case req.Scenario != "":
		sc, err := apsp.ParseScenario(req.Scenario)
		if err != nil {
			s.badRequest(w, err)
			return
		}
		if sc.N > s.cfg.MaxGraphN {
			s.badRequest(w, fmt.Errorf("scenario n %d exceeds cap %d", sc.N, s.cfg.MaxGraphN))
			return
		}
		g, err = sc.Build()
		if err != nil {
			s.badRequest(w, err)
			return
		}
	default:
		if req.N < 1 || req.N > s.cfg.MaxGraphN {
			s.badRequest(w, fmt.Errorf("n %d out of range [1, %d]", req.N, s.cfg.MaxGraphN))
			return
		}
		if len(req.Edges) > s.cfg.MaxBatch*8 {
			s.badRequest(w, fmt.Errorf("edge list %d exceeds cap %d", len(req.Edges), s.cfg.MaxBatch*8))
			return
		}
		g = apsp.NewGraph(req.N, req.Directed)
		for i, e := range req.Edges {
			u, v, wt := int(e[0]), int(e[1]), e[2]
			if err := g.AddEdge(u, v, wt); err != nil {
				s.badRequest(w, fmt.Errorf("edge %d: %w", i, err))
				return
			}
		}
	}
	key, created, err := s.pool.LoadOrigin(g, req.Scenario)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	e, err := s.pool.Get(key)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	st := e.Stats()
	s.writeJSON(w, http.StatusOK, loadResponse{
		Graph: key, N: st.N, M: st.M, Directed: g.Directed(), Created: created,
	})
}

// requestContext applies the wire deadline to the HTTP request context.
func requestContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	if deadlineMS > 0 {
		return context.WithTimeout(r.Context(), time.Duration(deadlineMS)*time.Millisecond)
	}
	return r.Context(), func() {}
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	e, err := s.pool.Get(r.PathValue("key"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	q, opt, err := decodeQueryRequest(body, e.Stats().N, s.cfg.MaxBatch)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	ctx, cancel := requestContext(r, q.DeadlineMS)
	defer cancel()
	req := &request{kind: kindQuery, ctx: ctx, opts: opt, done: make(chan struct{})}
	if err := e.submit(req); err != nil {
		s.writeErr(w, err)
		return
	}
	res := req.res
	resp := queryResponse{
		Graph:     e.key,
		Version:   req.version,
		Cached:    req.cached,
		Algorithm: opt.Algorithm.String(),
		Rounds:    res.Stats.Rounds,
		HopParam:  res.Stats.H,
		Blocker:   res.Stats.BlockerSetSize,
	}
	// All reads go through the Result accessors, never res.Dist directly:
	// a budgeted run stores its matrices in the tiled spillable backend and
	// leaves the flat slices nil.
	n := res.Stats.N
	switch {
	case len(q.Pairs) > 0:
		resp.Dist = make([]int64, len(q.Pairs))
		for i, p := range q.Pairs {
			resp.Dist[i] = wireDist(res.DistAt(p[0], p[1]))
		}
		if q.Paths {
			resp.Paths = make([][]int, len(q.Pairs))
			for i, p := range q.Pairs {
				resp.Paths[i] = res.Path(p[0], p[1])
			}
		}
	case q.Source != nil:
		resp.Row = make([]int64, n)
		res.CopyDistRow(resp.Row, *q.Source)
		for i, d := range resp.Row {
			resp.Row[i] = wireDist(d)
		}
	default:
		resp.Matrix = make([][]int64, n)
		for x := range resp.Matrix {
			row := make([]int64, n)
			res.CopyDistRow(row, x)
			for i, d := range row {
				row[i] = wireDist(d)
			}
			resp.Matrix[x] = row
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request) {
	e, err := s.pool.Get(r.PathValue("key"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	ups, deadlineMS, err := decodeUpdateRequest(body, e.Stats().N, s.cfg.MaxBatch)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	ctx, cancel := requestContext(r, deadlineMS)
	defer cancel()
	req := &request{kind: kindUpdate, ctx: ctx, ups: ups, done: make(chan struct{})}
	if err := e.submit(req); err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, updateResponse{
		Graph:      e.key,
		Version:    req.version,
		Applied:    len(ups),
		Reused:     req.ustats.Reused,
		Recomputed: req.ustats.Recomputed,
		FellBack:   req.ustats.FellBack,
	})
}

func (s *Service) handleBlocker(w http.ResponseWriter, r *http.Request) {
	e, err := s.pool.Get(r.PathValue("key"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var b blockerRequestWire
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		s.badRequest(w, fmt.Errorf("bad blocker body: %w", err))
		return
	}
	n := e.Stats().N
	if b.HopParam < 0 || b.HopParam > n {
		s.badRequest(w, fmt.Errorf("hop_param %d out of range [0, %d]", b.HopParam, n))
		return
	}
	if b.DeadlineMS < 0 {
		s.badRequest(w, fmt.Errorf("deadline_ms %d is negative", b.DeadlineMS))
		return
	}
	var mode apsp.BlockerMode
	switch b.Mode {
	case "", "deterministic":
		mode = apsp.BlockerDeterministic
	case "random":
		mode = apsp.BlockerRandomized
	case "greedy":
		mode = apsp.BlockerGreedy
	default:
		s.badRequest(w, fmt.Errorf("unknown blocker mode %q", b.Mode))
		return
	}
	ctx, cancel := requestContext(r, b.DeadlineMS)
	defer cancel()
	req := &request{
		kind: kindBlocker,
		ctx:  ctx,
		bopt: apsp.BlockerOptions{HopParam: b.HopParam, Mode: mode, Seed: b.Seed},
		done: make(chan struct{}),
	}
	if err := e.submit(req); err != nil {
		s.writeErr(w, err)
		return
	}
	q := req.q
	if q == nil {
		q = []int{}
	}
	s.writeJSON(w, http.StatusOK, blockerResponse{
		Graph: e.key, Version: req.version, Q: q, Rounds: req.bstats.Rounds,
	})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	e, err := s.pool.Get(r.PathValue("key"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, e.Stats())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WriteText(w)
}
