package serve

import (
	"errors"
	"fmt"
	"sync"

	"congestapsp/internal/congest"
	"congestapsp/pkg/apsp"
)

// ErrOverloaded is returned (and mapped to HTTP 429) when a graph's batch
// queue is at its depth cap: the daemon sheds load instead of queueing
// unboundedly. The request was not executed; retry after backoff.
var ErrOverloaded = errors.New("serve: queue full, request shed")

// ErrUnknownGraph is returned (HTTP 404) for a graph key the pool does not
// hold — never loaded, or evicted by the LRU cap. The graph must be
// (re)loaded via the load endpoint; content addressing makes the reload
// land on the same key.
var ErrUnknownGraph = errors.New("serve: unknown graph (not loaded, or evicted)")

// ErrAborted is returned (HTTP 409) to an update request whose coalesced
// batch was stopped by an EARLIER caller's failing update: none of this
// request's updates were attempted, and the graph advanced only by the
// batch prefix that preceded the failure.
var ErrAborted = errors.New("serve: update batch aborted by an earlier failure in its coalesced batch")

// Pool is a content-addressed LRU cache of warm Runners. The key is the
// graph's SplitMix64 digest (apsp.Graph.Digest) rendered as 16 hex digits,
// taken AT LOAD TIME: it names the graph the client loaded, and stays the
// handle for the entry's whole lifetime even as ApplyUpdates mutates the
// served graph away from the loaded content (re-keying on every update
// would invalidate clients' handles mid-conversation; the per-entry
// version count is the mutation clock instead).
//
// Eviction removes the entry from the map and nothing else: in-flight
// batches hold the entry pointer and drain normally on the warm Runner;
// later lookups get ErrUnknownGraph and the Runner is collected once the
// last batch lets go.
type Pool struct {
	mu       sync.Mutex
	max      int
	maxQueue int
	parallel bool
	clock    uint64
	entries  map[string]*entry
	met      *Metrics
}

// NewPool builds a pool holding at most max warm Runners, each with a
// batch queue capped at maxQueue requests. parallel selects the execution
// mode of every pooled run (results are bit-identical either way).
func NewPool(max, maxQueue int, parallel bool, met *Metrics) *Pool {
	if max < 1 {
		max = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	return &Pool{
		max:      max,
		maxQueue: maxQueue,
		parallel: parallel,
		entries:  make(map[string]*entry),
		met:      met,
	}
}

// Key renders a graph digest as the pool's 16-hex-digit handle.
func Key(digest uint64) string { return fmt.Sprintf("%016x", digest) }

// Load warms a Runner for g and returns its key. Loading content the pool
// already holds is a hit: the existing entry is reused (and its LRU slot
// refreshed) — the caller's graph value is discarded, so "load the same
// edges twice" converges on one warm Runner no matter which client sent
// them. created reports whether a new Runner was built.
func (p *Pool) Load(g *apsp.Graph) (key string, created bool, err error) {
	key = Key(g.Digest())
	p.mu.Lock()
	if e, ok := p.entries[key]; ok {
		p.clock++
		e.lastUse = p.clock
		p.mu.Unlock()
		p.met.Add("apspd_pool_hits_total", 1)
		return key, false, nil
	}
	p.mu.Unlock()
	// Build the Runner outside the pool lock: NewRunner constructs the
	// whole CONGEST network, and concurrent loads of other graphs must not
	// serialize behind it. A racing load of the SAME content is resolved
	// at insert (first one in wins, the loser's Runner is dropped).
	r, err := apsp.NewRunner(g)
	if err != nil {
		return "", false, err
	}
	e := newEntry(key, r, p)
	p.mu.Lock()
	if prior, ok := p.entries[key]; ok {
		p.clock++
		prior.lastUse = p.clock
		p.mu.Unlock()
		p.met.Add("apspd_pool_hits_total", 1)
		return key, false, nil
	}
	p.clock++
	e.lastUse = p.clock
	p.entries[key] = e
	for len(p.entries) > p.max {
		p.evictLRULocked()
	}
	size := len(p.entries)
	p.mu.Unlock()
	p.met.Add("apspd_pool_misses_total", 1)
	p.met.Set("apspd_pool_size", int64(size))
	return key, true, nil
}

// evictLRULocked removes the least-recently-used entry. Callers hold p.mu.
func (p *Pool) evictLRULocked() {
	var victim string
	var oldest uint64
	first := true
	for k, e := range p.entries {
		if first || e.lastUse < oldest {
			victim, oldest, first = k, e.lastUse, false
		}
	}
	delete(p.entries, victim)
	p.met.Add("apspd_pool_evictions_total", 1)
}

// Get returns the warm entry for key, refreshing its LRU slot.
func (p *Pool) Get(key string) (*entry, error) {
	p.mu.Lock()
	e, ok := p.entries[key]
	if ok {
		p.clock++
		e.lastUse = p.clock
	}
	p.mu.Unlock()
	if !ok {
		p.met.Add("apspd_pool_misses_total", 1)
		return nil, ErrUnknownGraph
	}
	p.met.Add("apspd_pool_hits_total", 1)
	return e, nil
}

// Len reports the number of pooled Runners.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// SetFaultInjector arms fi (nil disarms) on the pooled Runner for key —
// the serving end of the session's deterministic fault-injection
// instrument, used by the daemon fault-matrix suites. It reports whether
// the key was pooled.
func (p *Pool) SetFaultInjector(key string, fi congest.FaultInjector) bool {
	p.mu.Lock()
	e, ok := p.entries[key]
	p.mu.Unlock()
	if !ok {
		return false
	}
	e.runner.SetFaultInjector(fi)
	return true
}
