package serve

import (
	"errors"
	"fmt"
	"sync"

	"congestapsp/internal/congest"
	"congestapsp/pkg/apsp"
)

// ErrOverloaded is returned (and mapped to HTTP 429) when a graph's batch
// queue is at its depth cap: the daemon sheds load instead of queueing
// unboundedly. The request was not executed; retry after backoff.
var ErrOverloaded = errors.New("serve: queue full, request shed")

// ErrUnknownGraph is returned (HTTP 404) for a graph key the pool does not
// hold — never loaded, or evicted by the LRU cap. The graph must be
// (re)loaded via the load endpoint; content addressing makes the reload
// land on the same key.
var ErrUnknownGraph = errors.New("serve: unknown graph (not loaded, or evicted)")

// ErrAborted is returned (HTTP 409) to an update request whose coalesced
// batch was stopped by an EARLIER caller's failing update: none of this
// request's updates were attempted, and the graph advanced only by the
// batch prefix that preceded the failure.
var ErrAborted = errors.New("serve: update batch aborted by an earlier failure in its coalesced batch")

// Pool is a content-addressed LRU cache of warm Runners. The key is the
// graph's SplitMix64 digest (apsp.Graph.Digest) rendered as 16 hex digits,
// taken AT LOAD TIME: it names the graph the client loaded, and stays the
// handle for the entry's whole lifetime even as ApplyUpdates mutates the
// served graph away from the loaded content (re-keying on every update
// would invalidate clients' handles mid-conversation; the per-entry
// version count is the mutation clock instead).
//
// Eviction removes the entry from the map and nothing else: in-flight
// batches hold the entry pointer and drain normally on the warm Runner;
// later lookups get ErrUnknownGraph and the Runner is collected once the
// last batch lets go.
type Pool struct {
	mu       sync.Mutex
	max      int
	maxQueue int
	maxBytes int64
	parallel bool
	planner  bool
	clock    uint64
	entries  map[string]*entry
	met      *Metrics

	// store is the durability root when the daemon runs with -data-dir
	// (nil otherwise). A durable pool journals every load and accepted
	// update batch, recovers evicted-or-restarted lineages from disk on
	// demand, and restricts eviction to idle entries (see evictLRULocked).
	store *Store
}

// NewPool builds a pool holding at most max warm Runners, each with a
// batch queue capped at maxQueue requests. parallel and planner select the
// execution mode of every pooled run (results are bit-identical in any
// mode; planner resolves seq-vs-sharded per pipeline stage). maxBytes, when
// positive, is a second eviction budget over the pool's approximate byte
// footprint (entry.approxBytes) enforced alongside the entry-count LRU.
func NewPool(max, maxQueue int, maxBytes int64, parallel, planner bool, met *Metrics) *Pool {
	if max < 1 {
		max = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	return &Pool{
		max:      max,
		maxQueue: maxQueue,
		maxBytes: maxBytes,
		parallel: parallel,
		planner:  planner,
		entries:  make(map[string]*entry),
		met:      met,
	}
}

// Key renders a graph digest as the pool's 16-hex-digit handle.
func Key(digest uint64) string { return fmt.Sprintf("%016x", digest) }

// setStore attaches the durability root. Called once, before the pool
// serves traffic (boot-time recovery precedes readiness).
func (p *Pool) setStore(st *Store) {
	p.mu.Lock()
	p.store = st
	p.mu.Unlock()
}

// Load warms a Runner for g and returns its key. Loading content the pool
// already holds is a hit: the existing entry is reused (and its LRU slot
// refreshed) — the caller's graph value is discarded, so "load the same
// edges twice" converges on one warm Runner no matter which client sent
// them. created reports whether a new Runner was built.
func (p *Pool) Load(g *apsp.Graph) (key string, created bool, err error) {
	return p.LoadOrigin(g, "")
}

// LoadOrigin is Load plus journal provenance: when the client loaded a
// named scenario, the durable load record stores the name instead of the
// edge list (the deterministic corpus reproduces the content on replay).
// On a durable pool, a key whose lineage already exists on disk — loaded
// in a previous process life, or evicted earlier in this one — is
// recovered from disk rather than re-created: the journaled lineage is
// authoritative, so the client's handle lands on the recovered version and
// client-visible versions stay monotonic even though the caller supplied
// the original (version-0) content.
func (p *Pool) LoadOrigin(g *apsp.Graph, scenario string) (key string, created bool, err error) {
	key = Key(g.Digest())
	p.mu.Lock()
	if e, ok := p.entries[key]; ok {
		p.clock++
		e.lastUse = p.clock
		p.mu.Unlock()
		p.met.Add("apspd_pool_hits_total", 1)
		return key, false, nil
	}
	store := p.store
	p.mu.Unlock()
	if store != nil && store.HasGraph(key) {
		if _, err := p.recoverFromStore(key); err != nil {
			return "", false, err
		}
		return key, true, nil
	}
	// Build the Runner outside the pool lock: NewRunner constructs the
	// whole CONGEST network, and concurrent loads of other graphs must not
	// serialize behind it. A racing load of the SAME content is resolved
	// at insert (first one in wins, the loser's Runner is dropped).
	r, err := apsp.NewRunner(g)
	if err != nil {
		return "", false, err
	}
	var j *Journal
	if store != nil {
		// Journal the load BEFORE the entry becomes reachable: once any
		// client can reach the entry and mutate it, the lineage's first
		// record is already durable, so no accepted update can ever precede
		// its load record on disk.
		if j, err = store.CreateGraph(key, loadRecord(g, scenario)); err != nil {
			return "", false, err
		}
	}
	e := newEntry(key, r, p)
	e.journal = j
	p.mu.Lock()
	if prior, ok := p.entries[key]; ok {
		p.clock++
		prior.lastUse = p.clock
		p.mu.Unlock()
		p.met.Add("apspd_pool_hits_total", 1)
		return key, false, nil
	}
	p.clock++
	e.lastUse = p.clock
	p.entries[key] = e
	size, bytes := p.enforceLocked()
	p.mu.Unlock()
	p.met.Add("apspd_pool_misses_total", 1)
	p.met.Set("apspd_pool_size", int64(size))
	p.met.Set("apspd_pool_bytes", bytes)
	return key, true, nil
}

// bytesLocked sums the approximate byte footprint of every pooled entry.
// Callers hold p.mu.
func (p *Pool) bytesLocked() int64 {
	var b int64
	for _, e := range p.entries {
		b += e.approxBytes()
	}
	return b
}

// enforceLocked applies both eviction budgets — the entry-count cap and,
// when configured, the approximate-byte budget — and returns the surviving
// totals. The byte loop never evicts the last entry: a single graph larger
// than the budget still gets served (the budget bounds accumulation, not
// admission). Callers hold p.mu.
func (p *Pool) enforceLocked() (size int, bytes int64) {
	for len(p.entries) > p.max {
		if !p.evictLRULocked() {
			break
		}
	}
	bytes = p.bytesLocked()
	for p.maxBytes > 0 && bytes > p.maxBytes && len(p.entries) > 1 {
		if !p.evictLRULocked() {
			break
		}
		bytes = p.bytesLocked()
	}
	return len(p.entries), bytes
}

// noteFootprint re-applies the byte budget and refreshes the size/bytes
// gauges. Drain goroutines call it after serving a batch cycle: warm runs
// grow a Runner's arenas, so the pool's footprint moves between loads, not
// just at them.
func (p *Pool) noteFootprint() {
	p.mu.Lock()
	size, bytes := p.enforceLocked()
	p.mu.Unlock()
	p.met.Set("apspd_pool_size", int64(size))
	p.met.Set("apspd_pool_bytes", bytes)
}

// evictLRULocked removes the least-recently-used evictable entry and
// reports whether one was found. Callers hold p.mu.
//
// On a durable pool only IDLE entries (empty queue, not draining) are
// evictable, and the victim is marked closed so stale entry pointers get
// ErrUnknownGraph instead of enqueueing: an evicted-but-still-draining
// twin appending to the same journal as a freshly recovered replacement
// would fork the lineage. A transient nothing-evictable state just lets
// the pool run over its cap until entries go idle.
func (p *Pool) evictLRULocked() bool {
	var victim *entry
	var vkey string
	var oldest uint64
	for k, e := range p.entries {
		if p.store != nil && !e.idle() {
			continue
		}
		if victim == nil || e.lastUse < oldest {
			victim, vkey, oldest = e, k, e.lastUse
		}
	}
	if victim == nil {
		return false
	}
	if p.store != nil {
		victim.markClosed()
	}
	delete(p.entries, vkey)
	p.met.Add("apspd_pool_evictions_total", 1)
	return true
}

// Get returns the warm entry for key, refreshing its LRU slot. On a
// durable pool a miss with on-disk state recovers the lineage instead of
// failing: eviction (or a restart) is invisible to clients beyond latency.
func (p *Pool) Get(key string) (*entry, error) {
	p.mu.Lock()
	e, ok := p.entries[key]
	if ok {
		p.clock++
		e.lastUse = p.clock
	}
	store := p.store
	p.mu.Unlock()
	if !ok {
		if store != nil && store.HasGraph(key) {
			e, err := p.recoverFromStore(key)
			if err != nil {
				return nil, err
			}
			p.met.Add("apspd_pool_misses_total", 1)
			return e, nil
		}
		p.met.Add("apspd_pool_misses_total", 1)
		return nil, ErrUnknownGraph
	}
	p.met.Add("apspd_pool_hits_total", 1)
	return e, nil
}

// Len reports the number of pooled Runners.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// SetFaultInjector arms fi (nil disarms) on the pooled Runner for key —
// the serving end of the session's deterministic fault-injection
// instrument, used by the daemon fault-matrix suites. It reports whether
// the key was pooled.
func (p *Pool) SetFaultInjector(key string, fi congest.FaultInjector) bool {
	p.mu.Lock()
	e, ok := p.entries[key]
	p.mu.Unlock()
	if !ok {
		return false
	}
	e.runner.SetFaultInjector(fi)
	return true
}
