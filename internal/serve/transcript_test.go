package serve

import (
	"bytes"
	"net/http/httptest"
	"runtime"
	"testing"
)

// loadTranscript runs the seeded load generator at concurrency 1 against
// a FRESH daemon and returns the transcript bytes.
func loadTranscript(t *testing.T, mix string) []byte {
	t.Helper()
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	var buf bytes.Buffer
	_, err := RunLoad(LoadConfig{
		BaseURL:    srv.URL,
		Client:     srv.Client(),
		Seed:       5,
		Mix:        mix,
		Scenario:   "random-n16-s2",
		Requests:   12,
		Transcript: &buf,
	})
	if err != nil {
		t.Fatalf("mix %s: %v", mix, err)
	}
	return buf.Bytes()
}

// TestLoadgenTranscriptDeterministic is the end-to-end determinism
// contract: a fixed-seed apspload run against a fresh daemon produces a
// byte-stable transcript — across repeated runs AND across GOMAXPROCS
// values, because every wire answer is a pure function of the request
// sequence, never of scheduling.
func TestLoadgenTranscriptDeterministic(t *testing.T) {
	mixes := Mixes()
	if testing.Short() {
		mixes = mixes[:1]
	}
	for _, mix := range mixes {
		t.Run(mix, func(t *testing.T) {
			base := loadTranscript(t, mix)
			if len(base) == 0 {
				t.Fatal("empty transcript")
			}
			if again := loadTranscript(t, mix); !bytes.Equal(base, again) {
				t.Fatalf("transcript differs between two identical runs:\n--- first\n%s\n--- second\n%s", base, again)
			}
			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)
			for _, gm := range []int{1, 2, 4} {
				runtime.GOMAXPROCS(gm)
				if got := loadTranscript(t, mix); !bytes.Equal(base, got) {
					t.Fatalf("transcript differs at GOMAXPROCS=%d", gm)
				}
			}
		})
	}
}
