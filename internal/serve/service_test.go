package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"congestapsp/pkg/apsp"
)

// testDaemon boots an httptest server over a fresh Service.
func testDaemon(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

// post sends a JSON body and decodes the JSON response into out.
func post(t *testing.T, srv *httptest.Server, path string, body any, out any) int {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding %s response %q: %v", path, buf.String(), err)
		}
	}
	return resp.StatusCode
}

func postRaw(t *testing.T, srv *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// loadScenario loads a corpus graph into the daemon and returns its key.
func loadScenario(t *testing.T, srv *httptest.Server, name string) string {
	t.Helper()
	var lr loadResponse
	if code := post(t, srv, "/v1/graphs", loadRequest{Scenario: name}, &lr); code != http.StatusOK {
		t.Fatalf("load %s: status %d", name, code)
	}
	return lr.Graph
}

// coldResult computes the oracle answer for a scenario graph.
func coldResult(t *testing.T, name string, opt apsp.Options) *apsp.Result {
	t.Helper()
	sc, err := apsp.ParseScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := apsp.Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func wantWire(d int64) int64 { return wireDist(d) }

// TestServeQueryMatchesCold checks the core serving contract: every wire
// answer is bit-identical to a cold apsp.Run on the served graph.
func TestServeQueryMatchesCold(t *testing.T) {
	_, srv := testDaemon(t, Config{})
	const scen = "random-n24-s1"
	key := loadScenario(t, srv, scen)
	cold := coldResult(t, scen, apsp.Options{})

	var qr queryResponse
	if code := post(t, srv, "/v1/graphs/"+key+"/query",
		queryRequest{Pairs: [][2]int{{0, 5}, {3, 3}, {7, 19}}, Paths: true}, &qr); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	wantPairs := []int64{wantWire(cold.Dist[0][5]), wantWire(cold.Dist[3][3]), wantWire(cold.Dist[7][19])}
	for i, got := range qr.Dist {
		if got != wantPairs[i] {
			t.Errorf("pair %d: got %d want %d", i, got, wantPairs[i])
		}
	}
	if qr.Rounds != cold.Stats.Rounds {
		t.Errorf("rounds: got %d want %d", qr.Rounds, cold.Stats.Rounds)
	}
	for i, p := range [][2]int{{0, 5}, {3, 3}, {7, 19}} {
		want := cold.Path(p[0], p[1])
		if fmt.Sprint(qr.Paths[i]) != fmt.Sprint(want) {
			t.Errorf("path %d: got %v want %v", i, qr.Paths[i], want)
		}
	}

	src := 11
	if code := post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Source: &src}, &qr); code != http.StatusOK {
		t.Fatalf("row query status %d", code)
	}
	if !qr.Cached {
		t.Error("second query with same options should be served from the result cache")
	}
	for v, got := range qr.Row {
		if want := wantWire(cold.Dist[src][v]); got != want {
			t.Errorf("row[%d]: got %d want %d", v, got, want)
		}
	}

	if code := post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Full: true}, &qr); code != http.StatusOK {
		t.Fatalf("matrix query status %d", code)
	}
	for x := range qr.Matrix {
		for v, got := range qr.Matrix[x] {
			if want := wantWire(cold.Dist[x][v]); got != want {
				t.Fatalf("matrix[%d][%d]: got %d want %d", x, v, got, want)
			}
		}
	}
}

// TestServeUpdateThenQuery pushes a weight update through the daemon and
// checks the next answer equals a cold run on the mutated graph.
func TestServeUpdateThenQuery(t *testing.T) {
	_, srv := testDaemon(t, Config{})
	key := loadScenario(t, srv, "ring-n16-s1")

	// Mirror the scenario locally and mutate the same edge.
	sc, _ := apsp.ParseScenario("ring-n16-s1")
	g, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	var first [3]int64
	got := false
	g.Edges(func(u, v int, w int64) {
		if !got {
			first = [3]int64{int64(u), int64(v), w}
			got = true
		}
	})
	mirror := apsp.NewGraph(g.N(), g.Directed())
	i := 0
	g.Edges(func(u, v int, w int64) {
		if i == 0 {
			w = 37
		}
		mirror.AddEdge(u, v, w)
		i++
	})
	cold, err := apsp.Run(mirror, apsp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var ur updateResponse
	body := fmt.Sprintf(`{"updates":[{"op":"set","u":%d,"v":%d,"w":37}]}`, first[0], first[1])
	code, out := postRaw(t, srv, "/v1/graphs/"+key+"/update", body)
	if code != http.StatusOK {
		t.Fatalf("update status %d: %s", code, out)
	}
	if err := json.Unmarshal([]byte(out), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Version != 1 {
		t.Errorf("version after first update: got %d want 1", ur.Version)
	}

	var qr queryResponse
	if code := post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Full: true}, &qr); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if qr.Version != 1 {
		t.Errorf("query version: got %d want 1", qr.Version)
	}
	if qr.Cached {
		t.Error("post-update query must not reuse the pre-update cache")
	}
	for x := range qr.Matrix {
		for v, gotD := range qr.Matrix[x] {
			if want := wantWire(cold.Dist[x][v]); gotD != want {
				t.Fatalf("post-update matrix[%d][%d]: got %d want %d", x, v, gotD, want)
			}
		}
	}
}

// TestServeErrors exercises the HTTP error taxonomy.
func TestServeErrors(t *testing.T) {
	_, srv := testDaemon(t, Config{})
	key := loadScenario(t, srv, "ring-n16-s1")

	if code, _ := postRaw(t, srv, "/v1/graphs/ffffffffffffffff/query", `{"full":true}`); code != http.StatusNotFound {
		t.Errorf("unknown graph: got %d want 404", code)
	}
	for name, body := range map[string]string{
		"malformed json":     `{`,
		"conflicting fields": `{"full":true,"pairs":[[0,1]]}`,
		"no selector":        `{}`,
		"negative deadline":  `{"full":true,"deadline_ms":-5}`,
		"vertex range":       `{"pairs":[[0,99]]}`,
		"unknown field":      `{"full":true,"bogus":1}`,
		"unknown algorithm":  `{"full":true,"algorithm":"dijkstra"}`,
	} {
		if code, out := postRaw(t, srv, "/v1/graphs/"+key+"/query", body); code != http.StatusBadRequest {
			t.Errorf("%s: got %d (%s) want 400", name, code, strings.TrimSpace(out))
		}
	}
	if code, out := postRaw(t, srv, "/v1/graphs/"+key+"/update", `{"updates":[{"op":"set","u":0,"v":9,"w":1}]}`); code != http.StatusBadRequest {
		// ring-n16 has no (0,9) edge: the runner reports it as update 0.
		t.Errorf("missing edge update: got %d (%s) want 400", code, strings.TrimSpace(out))
	} else if !strings.Contains(out, `"update_index":0`) {
		t.Errorf("missing edge update should carry update_index 0, got %s", strings.TrimSpace(out))
	}
}

// TestServeMetricsEndpoint checks the exposition format basics and that
// serving traffic moves the counters it should.
func TestServeMetricsEndpoint(t *testing.T) {
	svc, srv := testDaemon(t, Config{})
	key := loadScenario(t, srv, "ring-n16-s1")
	post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Full: true}, nil)
	post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Full: true}, nil)

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"# HELP apspd_pool_misses_total",
		"# TYPE apspd_pool_misses_total counter",
		"apspd_pool_misses_total 1",
		"apspd_runs_total 1",
		"apspd_result_cache_hits_total 1",
		`apspd_stage_rounds_total{stage="step1-csssp"}`,
		`apspd_http_requests_total{code="200"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
	if svc.Metrics().Get("apspd_runs_total") != 1 {
		t.Errorf("two identical queries should have executed exactly one run")
	}

	// Rendering is deterministic: two reads, identical bytes.
	var again bytes.Buffer
	svc.Metrics().WriteText(&again)
	var again2 bytes.Buffer
	svc.Metrics().WriteText(&again2)
	if !bytes.Equal(again.Bytes(), again2.Bytes()) {
		t.Error("metrics rendering is not byte-stable")
	}
}

// TestServeStatsEndpoint checks the per-graph snapshot.
func TestServeStatsEndpoint(t *testing.T) {
	_, srv := testDaemon(t, Config{})
	key := loadScenario(t, srv, "ring-n16-s1")
	post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Full: true}, nil)

	resp, err := srv.Client().Get(srv.URL + "/v1/graphs/" + key + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st EntryStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Key != key || st.N != 16 || st.M != 16 || st.Version != 0 || st.Cached != 1 {
		t.Errorf("unexpected stats %+v", st)
	}
}

// TestServeBlockerEndpoint checks the blocker path against the direct API.
func TestServeBlockerEndpoint(t *testing.T) {
	_, srv := testDaemon(t, Config{})
	const scen = "random-n24-s1"
	key := loadScenario(t, srv, scen)
	sc, _ := apsp.ParseScenario(scen)
	g, _ := sc.Build()
	wantQ, _, err := apsp.BlockerSet(g, apsp.BlockerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var br blockerResponse
	if code := post(t, srv, "/v1/graphs/"+key+"/blocker", blockerRequestWire{}, &br); code != http.StatusOK {
		t.Fatalf("blocker status %d", code)
	}
	if fmt.Sprint(br.Q) != fmt.Sprint(wantQ) {
		t.Errorf("blocker set: got %v want %v", br.Q, wantQ)
	}
}

// TestServeContentAddressing checks that loading identical content twice
// converges on one warm Runner and that the inline and scenario paths
// agree on the key.
func TestServeContentAddressing(t *testing.T) {
	svc, srv := testDaemon(t, Config{})
	var a, b loadResponse
	post(t, srv, "/v1/graphs", loadRequest{Scenario: "ring-n16-s1"}, &a)
	post(t, srv, "/v1/graphs", loadRequest{Scenario: "ring-n16-s1"}, &b)
	if a.Graph != b.Graph {
		t.Errorf("same scenario loaded twice got different keys %s vs %s", a.Graph, b.Graph)
	}
	if !a.Created || b.Created {
		t.Errorf("created flags: got %v/%v want true/false", a.Created, b.Created)
	}
	if svc.Pool().Len() != 1 {
		t.Errorf("pool holds %d entries, want 1", svc.Pool().Len())
	}

	// The same edges sent inline land on the same key.
	sc, _ := apsp.ParseScenario("ring-n16-s1")
	g, _ := sc.Build()
	req := loadRequest{N: g.N()}
	g.Edges(func(u, v int, w int64) { req.Edges = append(req.Edges, [3]int64{int64(u), int64(v), w}) })
	var c loadResponse
	post(t, srv, "/v1/graphs", req, &c)
	if c.Graph != a.Graph {
		t.Errorf("inline edges keyed %s, scenario keyed %s (want equal)", c.Graph, a.Graph)
	}
}

// TestServeDeadline checks that a hopeless per-request deadline surfaces
// as 504 and leaves the Runner serviceable.
func TestServeDeadline(t *testing.T) {
	_, srv := testDaemon(t, Config{})
	const scen = "random-n64-s1"
	key := loadScenario(t, srv, scen)
	code, out := postRaw(t, srv, "/v1/graphs/"+key+"/query", `{"full":true,"deadline_ms":1}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: got %d (%s) want 504", code, strings.TrimSpace(out))
	}
	// The entry still answers, bit-identically to cold.
	cold := coldResult(t, scen, apsp.Options{})
	var qr queryResponse
	if code := post(t, srv, "/v1/graphs/"+key+"/query", queryRequest{Full: true}, &qr); code != http.StatusOK {
		t.Fatalf("post-deadline query status %d", code)
	}
	for x := range qr.Matrix {
		for v, got := range qr.Matrix[x] {
			if want := wantWire(cold.Dist[x][v]); got != want {
				t.Fatalf("post-deadline matrix[%d][%d]: got %d want %d", x, v, got, want)
			}
		}
	}
}
