package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"congestapsp/pkg/apsp"
)

// LoadConfig drives one load-generation run against a daemon. Everything
// the generator sends is a pure function of (Seed, Mix, Scenario,
// Requests): request i is the same bytes on every run, so a concurrency-1
// run against a fresh daemon produces a byte-stable transcript — the
// end-to-end determinism contract cmd/apspload and the serve tests pin.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8359".
	BaseURL string
	// Client is the HTTP client (http.DefaultClient when nil).
	Client *http.Client
	// Seed drives every random choice (pairs, edges, weights).
	Seed int64
	// Mix selects the traffic shape: "cached" (one options set, result
	// cache absorbs everything after the first run), "warmmiss" (each
	// query cycles Options.Seed, forcing a fresh warm run per request), or
	// "postupdate" (seeded weight updates interleaved with queries).
	Mix string
	// Scenario is the graph, by corpus name (e.g. "random-n128-s1").
	Scenario string
	// Requests is the number of requests after the initial load.
	Requests int
	// Concurrency is the number of in-flight workers (forced to 1 when a
	// Transcript is set).
	Concurrency int
	// Transcript, when set, receives the deterministic request/response
	// log (method, path, request body, status, response body per entry).
	// Retried attempts each get their own entry, followed by a single
	// "RETRIED <n>" line; a run with no retries is byte-identical to one
	// generated before retries existed.
	Transcript io.Writer
	// Retries caps retry attempts per request on 429 (shed) and 503
	// (recovering) responses: 0 means the default (3), negative disables
	// retrying. Backoff is exponential with deterministic seeded jitter —
	// a pure function of (Seed, request index, attempt) — so retry
	// schedules reproduce run to run like everything else the generator
	// does.
	Retries int
	// RetryBase is the first backoff step (default 25ms); attempt k waits
	// RetryBase<<k plus jitter in [0, RetryBase).
	RetryBase time.Duration
}

// LoadReport summarizes a run: status-code census and latency percentiles
// over the post-load requests, plus the daemon-side pool counters scraped
// from /metrics after the run.
type LoadReport struct {
	Mix       string         `json:"mix"`
	Scenario  string         `json:"scenario"`
	Requests  int            `json:"requests"`
	Errors    int            `json:"errors"`
	Status    map[string]int `json:"status"`
	Status5xx int            `json:"status_5xx"`
	// Retries counts retry attempts across the run; RetriedRequests counts
	// requests that needed at least one. Latency percentiles include the
	// backoff a retried request waited through — the client-observed truth.
	Retries         int     `json:"retries"`
	RetriedRequests int     `json:"retried_requests"`
	P50MS           float64 `json:"p50_ms"`
	P95MS           float64 `json:"p95_ms"`
	P99MS           float64 `json:"p99_ms"`
	PoolHits        int64   `json:"pool_hits"`
	PoolMisses      int64   `json:"pool_misses"`
	// Durability labels the daemon's journaling mode for benchmark rows
	// ("" = in-memory, e.g. "fsync=interval"); set by the caller, carried
	// through to the JSON report.
	Durability string `json:"durability,omitempty"`
}

// genRequest is one pre-generated wire request.
type genRequest struct {
	path string
	body []byte
}

// Mixes lists the load shapes RunLoad accepts.
func Mixes() []string { return []string{"cached", "warmmiss", "postupdate"} }

// generate builds the deterministic request list for a mix. The graph's
// edge list (from building the scenario locally) seeds the update choices,
// so the generator never has to query the daemon for structure.
func generate(cfg LoadConfig, key string, n int, edges [][3]int64) ([]genRequest, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	queryPath := "/v1/graphs/" + key + "/query"
	updatePath := "/v1/graphs/" + key + "/update"
	randPairs := func(k int) [][2]int {
		ps := make([][2]int, k)
		for i := range ps {
			ps[i] = [2]int{rng.Intn(n), rng.Intn(n)}
		}
		return ps
	}
	marshal := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err) // wire shapes are always marshalable
		}
		return b
	}
	reqs := make([]genRequest, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		switch cfg.Mix {
		case "cached":
			reqs = append(reqs, genRequest{queryPath, marshal(queryRequest{Pairs: randPairs(4)})})
		case "warmmiss":
			// Seed is result-irrelevant for the deterministic default
			// profile but part of the cache key, so cycling it forces a
			// full warm run per request — the warm-miss latency floor.
			reqs = append(reqs, genRequest{queryPath, marshal(queryRequest{Seed: int64(i + 1), Pairs: randPairs(4)})})
		case "postupdate":
			if i%3 == 2 {
				e := edges[rng.Intn(len(edges))]
				var w updateRequestWire
				w.Updates = append(w.Updates, struct {
					Op string `json:"op"`
					U  int    `json:"u"`
					V  int    `json:"v"`
					W  int64  `json:"w,omitempty"`
				}{Op: "set", U: int(e[0]), V: int(e[1]), W: int64(1 + rng.Intn(50))})
				reqs = append(reqs, genRequest{updatePath, marshal(w)})
			} else {
				reqs = append(reqs, genRequest{queryPath, marshal(queryRequest{Pairs: randPairs(4)})})
			}
		default:
			return nil, fmt.Errorf("serve: unknown mix %q (want %s)", cfg.Mix, strings.Join(Mixes(), "|"))
		}
	}
	return reqs, nil
}

// RunLoad executes the configured load against the daemon and reports.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Transcript != nil {
		cfg.Concurrency = 1
	}
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Scenario == "" {
		cfg.Scenario = "random-n64-s1"
	}
	post := func(path string, body []byte) (int, []byte, error) {
		resp, err := client.Post(cfg.BaseURL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp.StatusCode, out, err
	}

	// Build the scenario locally: the edge list parameterizes updates, and
	// the load request goes by name so daemon and generator agree on bytes.
	sc, err := apsp.ParseScenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	g, err := sc.Build()
	if err != nil {
		return nil, err
	}
	n := g.N()
	var edges [][3]int64
	g.Edges(func(u, v int, w int64) { edges = append(edges, [3]int64{int64(u), int64(v), w}) })
	loadBody, _ := json.Marshal(loadRequest{Scenario: cfg.Scenario})
	code, out, err := post("/v1/graphs", loadBody)
	if err != nil {
		return nil, fmt.Errorf("serve: load request: %w", err)
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("serve: load returned %d: %s", code, bytes.TrimSpace(out))
	}
	var lr loadResponse
	if err := json.Unmarshal(out, &lr); err != nil {
		return nil, fmt.Errorf("serve: bad load response: %w", err)
	}
	if cfg.Transcript != nil {
		fmt.Fprintf(cfg.Transcript, "LOAD %s\n%s\n%d %s\n", cfg.Scenario, loadBody, code, out)
	}

	reqs, err := generate(cfg, lr.Graph, n, edges)
	if err != nil {
		return nil, err
	}

	report := &LoadReport{
		Mix:      cfg.Mix,
		Scenario: cfg.Scenario,
		Requests: len(reqs),
		Status:   make(map[string]int),
	}
	maxRetries := cfg.Retries
	if maxRetries == 0 {
		maxRetries = 3
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	retryBase := cfg.RetryBase
	if retryBase <= 0 {
		retryBase = 25 * time.Millisecond
	}
	durations := make([]float64, len(reqs))
	codes := make([]int, len(reqs))
	errorsAt := make([]error, len(reqs))
	retriesAt := make([]int, len(reqs))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(reqs); i += cfg.Concurrency {
				t0 := time.Now()
				attempt := 0
				var code int
				var out []byte
				var err error
				for {
					code, out, err = post(reqs[i].path, reqs[i].body)
					if cfg.Transcript != nil {
						fmt.Fprintf(cfg.Transcript, "POST %s\n%s\n%d %s\n", reqs[i].path, reqs[i].body, code, out)
					}
					// Retry only what the daemon told us to come back for:
					// 429 (shed) and 503 (recovering). Transport errors and
					// every other status are final.
					if err != nil || (code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable) || attempt >= maxRetries {
						break
					}
					time.Sleep(retryDelay(cfg.Seed, i, attempt, retryBase))
					attempt++
				}
				durations[i] = float64(time.Since(t0).Microseconds()) / 1000
				codes[i], errorsAt[i], retriesAt[i] = code, err, attempt
				if attempt > 0 && cfg.Transcript != nil {
					fmt.Fprintf(cfg.Transcript, "RETRIED %d\n", attempt)
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range reqs {
		report.Retries += retriesAt[i]
		if retriesAt[i] > 0 {
			report.RetriedRequests++
		}
		if errorsAt[i] != nil {
			report.Errors++
			continue
		}
		report.Status[strconv.Itoa(codes[i])]++
		if codes[i] >= 500 && codes[i] != 504 {
			report.Status5xx++
		}
	}
	sort.Float64s(durations)
	report.P50MS = percentile(durations, 0.50)
	report.P95MS = percentile(durations, 0.95)
	report.P99MS = percentile(durations, 0.99)

	// Scrape the daemon's pool counters.
	if resp, err := client.Get(cfg.BaseURL + "/metrics"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		report.PoolHits = scrapeCounter(body, "apspd_pool_hits_total")
		report.PoolMisses = scrapeCounter(body, "apspd_pool_misses_total")
	}
	return report, nil
}

// retryDelay is the backoff before retry attempt k of request i:
// base<<k plus a deterministic jitter in [0, base) hashed from
// (seed, i, k) — a pure function, so a seeded run's retry schedule (and
// therefore its latency distribution under overload) reproduces exactly.
// The shift caps at 6 (64× base) to bound the wait however many attempts
// are configured.
func retryDelay(seed int64, i, attempt int, base time.Duration) time.Duration {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + uint64(attempt)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return base<<shift + time.Duration(h%uint64(base))
}

// percentile reads the q-quantile from an ascending slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.9999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeCounter pulls one un-labeled series value out of Prometheus text.
func scrapeCounter(body []byte, series string) int64 {
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}
