package broadcast

import (
	"testing"

	"congestapsp/internal/graph"
)

func TestGatherSumCorrectTotals(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 40, Seed: 2, MaxWeight: 4}, 100)
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := 17
	vec := make([][]int64, g.N)
	want := make([]int64, m)
	for v := 0; v < g.N; v++ {
		vec[v] = make([]int64, m)
		for mu := 0; mu < m; mu++ {
			vec[v][mu] = int64(v*31 + mu*7)
			want[mu] += vec[v][mu]
		}
	}
	got, err := GatherSum(nw, tr, vec)
	if err != nil {
		t.Fatal(err)
	}
	for mu := 0; mu < m; mu++ {
		if got[mu] != want[mu] {
			t.Errorf("slot %d: %d, want %d", mu, got[mu], want[mu])
		}
	}
}

func TestGatherSumPipelinedRounds(t *testing.T) {
	// Schedule: height + m + 1 rounds exactly (Lemmas A.13/A.14 O(n)).
	L, m := 12, 25
	g := graph.New(L+1, false)
	for i := 0; i < L; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw.ResetStats()
	vec := make([][]int64, g.N)
	for v := range vec {
		vec[v] = make([]int64, m)
		for mu := range vec[v] {
			vec[v][mu] = 1
		}
	}
	got, err := GatherSum(nw, tr, vec)
	if err != nil {
		t.Fatal(err)
	}
	for mu := range got {
		if got[mu] != int64(g.N) {
			t.Fatalf("slot %d: %d, want %d", mu, got[mu], g.N)
		}
	}
	if want := tr.Height + m + 1; nw.Stats.Rounds != want {
		t.Errorf("rounds = %d, want %d (pipelined schedule)", nw.Stats.Rounds, want)
	}
}

func TestGatherSumUnevenVectors(t *testing.T) {
	// Vectors of differing lengths are padded with zeros.
	g := graph.Ring(graph.GenConfig{N: 6, Seed: 1, MaxWeight: 2})
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([][]int64, g.N)
	vec[0] = []int64{1, 2, 3}
	vec[3] = []int64{10}
	got, err := GatherSum(nw, tr, vec)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestGatherSumEmptyAndValidation(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 4, Seed: 1, MaxWeight: 2})
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := GatherSum(nw, tr, make([][]int64, g.N)); err != nil || out != nil {
		t.Errorf("empty vectors: %v, %v", out, err)
	}
	if _, err := GatherSum(nw, tr, make([][]int64, 2)); err == nil {
		t.Error("wrong vector count accepted")
	}
}

func TestGatherSumStarShape(t *testing.T) {
	// A star's BFS tree has height 1: every leaf feeds the root directly;
	// the root's incident links each carry one slot per round.
	g := graph.Star(graph.GenConfig{N: 20, Seed: 3, MaxWeight: 2})
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([][]int64, g.N)
	m := 9
	for v := range vec {
		vec[v] = make([]int64, m)
		for mu := range vec[v] {
			vec[v][mu] = int64(v)
		}
	}
	got, err := GatherSum(nw, tr, vec)
	if err != nil {
		t.Fatal(err)
	}
	var wantPer int64
	for v := 0; v < g.N; v++ {
		wantPer += int64(v)
	}
	for mu := 0; mu < m; mu++ {
		if got[mu] != wantPer {
			t.Fatalf("slot %d: %d, want %d", mu, got[mu], wantPer)
		}
	}
}
