// Package broadcast implements the communication primitives of Appendix A.1
// of the paper on top of the CONGEST simulator:
//
//   - Lemma A.1: a node can broadcast k values to all nodes in O(n+k) rounds.
//   - Lemma A.2: all nodes can broadcast one value each to all nodes in O(n)
//     rounds.
//
// Both are realized by pipelining items over a BFS spanning tree of the
// communication graph: a convergecast ("gather") moves items to the root in
// O(depth + K) rounds and a pipelined flood ("broadcast") moves them from
// the root to everyone in O(depth + K) rounds, where K is the total number
// of items. The package also exposes the BFS-tree construction itself
// (flooding, O(diameter) rounds), which Step 2 of Algorithm 7 uses.
package broadcast

import (
	"fmt"
	"sort"

	"congestapsp/internal/congest"
)

// Item is one pipelined value: three machine words of payload. By
// convention A carries a node id when the item is attributed to a source.
// An Item costs one bandwidth unit on a link, matching the paper's
// "constant number of ids and distance values per edge per round".
type Item struct {
	A, B, C int64
}

// Tree is a rooted BFS spanning tree of the communication graph.
type Tree struct {
	Root     int
	Parent   []int // Parent[root] = -1
	Depth    []int
	Children [][]int
	Height   int
}

// Message kinds used by the protocols in this package.
const (
	kindBFSExplore uint8 = iota + 1
	kindGather
	kindFlood
)

// BuildBFS constructs a BFS spanning tree rooted at root by distributed
// flooding. It consumes O(diameter) rounds on nw and returns the tree. An
// error is returned if the communication graph is disconnected.
//
// The returned Tree aliases pooled per-network storage: it is valid until
// the next BuildBFS on the same Network. Every consumer in this repository
// builds one tree per network (or rebuilds the identical root-0 tree), so
// the pipeline's repeated constructions reuse one footprint.
func BuildBFS(nw *congest.Network, root int) (*Tree, error) {
	n := nw.N()
	st := getState(nw)
	t := &st.tree
	t.Root = root
	t.Height = 0
	if cap(t.Parent) < n {
		t.Parent = make([]int, n)
		t.Depth = make([]int, n)
		t.Children = make([][]int, n)
	}
	t.Parent = t.Parent[:n]
	t.Depth = t.Depth[:n]
	t.Children = t.Children[:n]
	if cap(st.bfsJoined) < n {
		st.bfsJoined = make([]bool, n)
	}
	st.bfsJoined = st.bfsJoined[:n]
	clear(st.bfsJoined)
	for v := 0; v < n; v++ {
		t.Parent[v] = -1
		t.Depth[v] = -1
	}
	st.bfsJoined[root] = true
	t.Depth[root] = 0

	st.bfs = bfsProto{nw: nw, st: st, root: root}
	if _, err := nw.Run(&st.bfs, n+2); err != nil {
		return nil, fmt.Errorf("broadcast: BFS construction: %w", err)
	}
	// Child lists come out of one pooled arena via a counting pass; rows
	// are ascending because v ascends.
	st.childFill = congest.Grow(st.childFill, n)
	fill := st.childFill
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		if !st.bfsJoined[v] {
			return nil, fmt.Errorf("broadcast: node %d unreachable from root %d (communication graph disconnected)", v, root)
		}
		fill[t.Parent[v]]++
		if t.Depth[v] > t.Height {
			t.Height = t.Depth[v]
		}
	}
	if cap(st.childArena) < n {
		st.childArena = make([]int, n)
	}
	arena := st.childArena[:n]
	off := 0
	for v := 0; v < n; v++ {
		c := int(fill[v])
		t.Children[v] = arena[off : off : off+c]
		off += c
	}
	for v := 0; v < n; v++ {
		if v != root {
			p := t.Parent[v]
			t.Children[p] = append(t.Children[p], v)
		}
	}
	return t, nil
}

// bfsProto is the BFS flood of BuildBFS as a reusable protocol object.
type bfsProto struct {
	nw   *congest.Network
	st   *bcastState
	root int
}

// Step implements congest.Proto.
func (p *bfsProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	nw, t := p.nw, &p.st.tree
	if round == 0 {
		if v == p.root {
			for _, u := range nw.Neighbors(v) {
				send(congest.Message{To: u, Kind: kindBFSExplore, A: int64(t.Depth[v])})
			}
		}
		return v != p.root
	}
	if p.st.bfsJoined[v] {
		return true
	}
	// First round with an explore message: join under the smallest-id
	// sender (deterministic), then propagate.
	best := -1
	var d int64
	for _, m := range in {
		if m.Kind != kindBFSExplore {
			continue
		}
		if best == -1 || m.From < best {
			best = m.From
			d = m.A
		}
	}
	if best == -1 {
		return false
	}
	p.st.bfsJoined[v] = true
	t.Parent[v] = best
	t.Depth[v] = int(d) + 1
	for _, u := range nw.Neighbors(v) {
		if u != best {
			send(congest.Message{To: u, Kind: kindBFSExplore, A: int64(t.Depth[v])})
		}
	}
	return true
}

// bcastKey keys the pooled per-network state of this package's primitives
// in the network's scratch registry. The pipeline runs thousands of
// gathers, floods and aggregation waves per Network; pooling their queue
// arenas and protocol objects makes a steady-state call allocation-free.
type bcastKey struct{}

type bcastState struct {
	// Gather state: per-node totals, depth-descending order (counting sort
	// buckets), FIFO queue views carved from one grow-only item arena, and
	// the result buffer.
	totalBelow []int32
	bucket     []int32
	order      []int32
	queue      [][]Item
	arena      []Item
	head, sent []int32
	collected  []Item
	gather     gatherProto

	// Broadcast (flood) state: the per-node receive arena and views, plus
	// the canonical-order result buffer (distinct from Gather's collected,
	// whose contents are often this call's input).
	recvd  [][]Item
	flood  []Item
	fwd    []int32
	outBuf []Item
	bcast  floodProto

	// GatherSum state: the flat n x m accumulator.
	acc []int64
	sum sumProto

	// BuildBFS state: the pooled tree (returned by pointer) and its
	// construction scratch.
	tree       Tree
	bfsJoined  []bool
	childArena []int
	childFill  []int32
	bfs        bfsProto
}

func getState(nw *congest.Network) *bcastState {
	return congest.ScratchState(nw.Scratch(), bcastKey{}, func() *bcastState { return new(bcastState) })
}

// growItems returns buf with length exactly n, reallocating only when the
// capacity has never been this large before.
func growItems(buf []Item, n int) []Item {
	if cap(buf) < n {
		return make([]Item, n)
	}
	return buf[:n]
}

// Gather convergecasts all items to the tree root, pipelined at the
// network bandwidth. perNode[v] is the list of items originating at v. The
// returned slice is the collection now known at the root, sorted
// canonically; it aliases pooled per-network storage and is valid until
// the next broadcast-package call on the same Network (callers consume it
// immediately). Rounds consumed: O(height + K/bandwidth), K total items.
func Gather(nw *congest.Network, t *Tree, perNode [][]Item) ([]Item, error) {
	n := nw.N()
	st := getState(nw)
	// Compute per-node totals bottom-up (local knowledge in a real system
	// would be a convergecast of counts; the schedule below does not depend
	// on these values, they only drive the done flags and presize the
	// queues — every item passing through v is known up front, so the hot
	// loop never regrows a queue). Nodes are ordered by decreasing depth
	// with a pooled counting sort.
	st.bucket = congest.Grow(st.bucket, t.Height+2)
	bucket := st.bucket
	for v := 0; v < n; v++ {
		bucket[t.Height-t.Depth[v]+1]++
	}
	for d := 1; d < len(bucket); d++ {
		bucket[d] += bucket[d-1]
	}
	st.order = congest.Grow(st.order, n)
	order := st.order
	for v := 0; v < n; v++ {
		d := t.Height - t.Depth[v]
		order[bucket[d]] = int32(v)
		bucket[d]++
	}
	st.totalBelow = congest.Grow(st.totalBelow, n)
	totalBelow := st.totalBelow
	for _, v32 := range order {
		v := int(v32)
		totalBelow[v] += int32(len(perNode[v]))
		if v != t.Root {
			totalBelow[t.Parent[v]] += totalBelow[v]
		}
	}
	// Carve the per-node FIFO queues out of one pooled arena; capacities
	// are exact, so the hot loop never regrows a queue.
	arenaLen := 0
	for v := 0; v < n; v++ {
		if v != t.Root {
			arenaLen += int(totalBelow[v])
		}
	}
	st.arena = growItems(st.arena, arenaLen)
	if cap(st.queue) < n {
		st.queue = make([][]Item, n)
	}
	st.queue = st.queue[:n]
	off := 0
	for v := 0; v < n; v++ {
		st.queue[v] = nil
		if v != t.Root && totalBelow[v] > 0 {
			end := off + int(totalBelow[v])
			st.queue[v] = append(st.arena[off:off:end], perNode[v]...)
			off = end
		}
	}
	st.head = congest.Grow(st.head, n)
	st.sent = congest.Grow(st.sent, n)
	total := int(totalBelow[t.Root])
	if cap(st.collected) < total {
		st.collected = make([]Item, 0, total)
	}
	st.collected = st.collected[:0]

	st.gather = gatherProto{nw: nw, t: t, st: st, rootOwn: len(perNode[t.Root])}
	budget := t.Height + total + 4
	_, err := nw.Run(&st.gather, budget+n)
	if err != nil {
		return nil, fmt.Errorf("broadcast: gather: %w", err)
	}
	st.collected = append(st.collected, perNode[t.Root]...)
	sortItems(st.collected)
	return st.collected, nil
}

// gatherProto is the pipelined convergecast of Gather as a reusable
// protocol object.
type gatherProto struct {
	nw      *congest.Network
	t       *Tree
	st      *bcastState
	rootOwn int
}

// Step implements congest.Proto.
func (p *gatherProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	st, t := p.st, p.t
	for _, m := range in {
		if m.Kind != kindGather {
			continue
		}
		it := Item{m.A, m.B, m.C}
		if v == t.Root {
			st.collected = append(st.collected, it)
		} else {
			st.queue[v] = append(st.queue[v], it)
		}
	}
	if v == t.Root {
		// The root's own items never travel; it waits only for the
		// strict-descendant items.
		return len(st.collected) >= int(st.totalBelow[v])-p.rootOwn
	}
	b := p.nw.Bandwidth
	for b > 0 && int(st.head[v]) < len(st.queue[v]) {
		it := st.queue[v][st.head[v]]
		st.head[v]++
		send(congest.Message{To: t.Parent[v], Kind: kindGather, A: it.A, B: it.B, C: it.C})
		st.sent[v]++
		b--
	}
	return st.sent[v] >= st.totalBelow[v]
}

// Broadcast floods the root's items to every node, pipelined. After it
// returns, every node knows all items (Lemma A.1: O(n + k) rounds; with the
// BFS tree it is O(height + k) here). The items are returned in canonical
// order as the view every node now holds; like Gather's result, the slice
// aliases pooled per-network storage valid until the next broadcast call.
func Broadcast(nw *congest.Network, t *Tree, items []Item) ([]Item, error) {
	n := nw.N()
	st := getState(nw)
	k := len(items)
	// Every non-root node receives exactly k items; one arena sliced into
	// capacity-capped per-node views keeps the flood's hot loop free of
	// append regrowth (and of n separate allocations).
	if cap(st.recvd) < n {
		st.recvd = make([][]Item, n)
	}
	st.recvd = st.recvd[:n]
	for v := range st.recvd {
		st.recvd[v] = nil
	}
	if k > 0 {
		st.flood = growItems(st.flood, n*k)
		for v := 0; v < n; v++ {
			if v != t.Root {
				off := v * k
				st.recvd[v] = st.flood[off : off : off+k]
			}
		}
	}
	st.fwd = congest.Grow(st.fwd, n)

	st.bcast = floodProto{nw: nw, t: t, st: st, items: items, k: k}
	_, err := nw.Run(&st.bcast, t.Height+k+4+n)
	st.bcast.items = nil
	if err != nil {
		return nil, fmt.Errorf("broadcast: broadcast: %w", err)
	}
	if cap(st.outBuf) < k {
		st.outBuf = make([]Item, 0, k)
	}
	out := append(st.outBuf[:0], items...)
	st.outBuf = out
	sortItems(out)
	return out, nil
}

// floodProto is the pipelined flood of Broadcast as a reusable protocol
// object.
type floodProto struct {
	nw    *congest.Network
	t     *Tree
	st    *bcastState
	items []Item
	k     int
}

// Step implements congest.Proto.
func (p *floodProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	st, t := p.st, p.t
	for _, m := range in {
		if m.Kind != kindFlood {
			continue
		}
		st.recvd[v] = append(st.recvd[v], Item{m.A, m.B, m.C})
	}
	var src []Item
	if v == t.Root {
		src = p.items
	} else {
		src = st.recvd[v]
	}
	b := p.nw.Bandwidth
	for b > 0 && int(st.fwd[v]) < len(src) {
		it := src[st.fwd[v]]
		st.fwd[v]++
		for _, c := range t.Children[v] {
			send(congest.Message{To: c, Kind: kindFlood, A: it.A, B: it.B, C: it.C})
		}
		b--
	}
	return int(st.fwd[v]) >= p.k && (v == t.Root || len(st.recvd[v]) >= p.k)
}

// AllToAll implements Lemma A.2 generalized to multiple items per node:
// every node contributes perNode[v] and afterwards every node knows the
// union. Rounds: O(height + K/bandwidth) for gather plus the same for the
// downward flood, i.e. O(n + K) in the worst case, matching O(n) for one
// item per node.
func AllToAll(nw *congest.Network, t *Tree, perNode [][]Item) ([]Item, error) {
	up, err := Gather(nw, t, perNode)
	if err != nil {
		return nil, err
	}
	return Broadcast(nw, t, up)
}

// CarveItems builds per-node item lists with exact capacities carved from
// one backing arena: cnt[v] is the number of items node v will append.
// Callers count first, carve, then append — two allocations instead of one
// per contributing node.
func CarveItems(cnt []int32) [][]Item {
	total := 0
	for _, c := range cnt {
		total += int(c)
	}
	arena := make([]Item, total)
	out := make([][]Item, len(cnt))
	off := 0
	for v, c := range cnt {
		if c > 0 {
			end := off + int(c)
			out[v] = arena[off:off:end]
			off = end
		}
	}
	return out
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].A != items[j].A {
			return items[i].A < items[j].A
		}
		if items[i].B != items[j].B {
			return items[i].B < items[j].B
		}
		return items[i].C < items[j].C
	})
}
