// Package broadcast implements the communication primitives of Appendix A.1
// of the paper on top of the CONGEST simulator:
//
//   - Lemma A.1: a node can broadcast k values to all nodes in O(n+k) rounds.
//   - Lemma A.2: all nodes can broadcast one value each to all nodes in O(n)
//     rounds.
//
// Both are realized by pipelining items over a BFS spanning tree of the
// communication graph: a convergecast ("gather") moves items to the root in
// O(depth + K) rounds and a pipelined flood ("broadcast") moves them from
// the root to everyone in O(depth + K) rounds, where K is the total number
// of items. The package also exposes the BFS-tree construction itself
// (flooding, O(diameter) rounds), which Step 2 of Algorithm 7 uses.
package broadcast

import (
	"fmt"
	"sort"

	"congestapsp/internal/congest"
)

// Item is one pipelined value: three machine words of payload. By
// convention A carries a node id when the item is attributed to a source.
// An Item costs one bandwidth unit on a link, matching the paper's
// "constant number of ids and distance values per edge per round".
type Item struct {
	A, B, C int64
}

// Tree is a rooted BFS spanning tree of the communication graph.
type Tree struct {
	Root     int
	Parent   []int // Parent[root] = -1
	Depth    []int
	Children [][]int
	Height   int
}

// Message kinds used by the protocols in this package.
const (
	kindBFSExplore uint8 = iota + 1
	kindGather
	kindFlood
)

// BuildBFS constructs a BFS spanning tree rooted at root by distributed
// flooding. It consumes O(diameter) rounds on nw and returns the tree. An
// error is returned if the communication graph is disconnected.
func BuildBFS(nw *congest.Network, root int) (*Tree, error) {
	n := nw.N()
	parent := make([]int, n)
	depth := make([]int, n)
	joined := make([]bool, n)
	for v := range parent {
		parent[v] = -1
		depth[v] = -1
	}
	joined[root] = true
	depth[root] = 0

	p := congest.ProtoFunc(func(v, round int, in []congest.Message, send func(congest.Message)) bool {
		if round == 0 {
			if v == root {
				for _, u := range nw.Neighbors(v) {
					send(congest.Message{To: u, Kind: kindBFSExplore, A: int64(depth[v])})
				}
			}
			return v != root
		}
		if joined[v] {
			return true
		}
		// First round with an explore message: join under the smallest-id
		// sender (deterministic), then propagate.
		best := -1
		var d int64
		for _, m := range in {
			if m.Kind != kindBFSExplore {
				continue
			}
			if best == -1 || m.From < best {
				best = m.From
				d = m.A
			}
		}
		if best == -1 {
			return false
		}
		joined[v] = true
		parent[v] = best
		depth[v] = int(d) + 1
		for _, u := range nw.Neighbors(v) {
			if u != best {
				send(congest.Message{To: u, Kind: kindBFSExplore, A: int64(depth[v])})
			}
		}
		return true
	})
	if _, err := nw.Run(p, n+2); err != nil {
		return nil, fmt.Errorf("broadcast: BFS construction: %w", err)
	}
	t := &Tree{Root: root, Parent: parent, Depth: depth, Children: make([][]int, n)}
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		if !joined[v] {
			return nil, fmt.Errorf("broadcast: node %d unreachable from root %d (communication graph disconnected)", v, root)
		}
		t.Children[parent[v]] = append(t.Children[parent[v]], v)
		if depth[v] > t.Height {
			t.Height = depth[v]
		}
	}
	for v := range t.Children {
		sort.Ints(t.Children[v])
	}
	return t, nil
}

// Gather convergecasts all items to the tree root, pipelined at the
// network bandwidth. perNode[v] is the list of items originating at v. The
// returned slice is the collection now known at the root, sorted
// canonically. Rounds consumed: O(height + K/bandwidth), K total items.
func Gather(nw *congest.Network, t *Tree, perNode [][]Item) ([]Item, error) {
	n := nw.N()
	// Compute per-node totals bottom-up (local knowledge in a real system
	// would be a convergecast of counts; the schedule below does not depend
	// on these values, they only drive the done flags and presize the
	// queues — every item passing through v is known up front, so the hot
	// loop never regrows a queue).
	totalBelow := make([]int, n) // items that must pass through v (own + strict descendants)
	order := byDepthDesc(t)
	for _, v := range order {
		totalBelow[v] += len(perNode[v])
		if v != t.Root {
			totalBelow[t.Parent[v]] += totalBelow[v]
		}
	}
	queue := make([][]Item, n)
	head := make([]int, n) // first unsent index in queue[v] (FIFO cursor)
	for v := 0; v < n; v++ {
		if v != t.Root && totalBelow[v] > 0 {
			queue[v] = append(make([]Item, 0, totalBelow[v]), perNode[v]...)
		}
	}
	sent := make([]int, n)
	collected := make([]Item, 0, totalBelow[t.Root])

	p := congest.ProtoFunc(func(v, round int, in []congest.Message, send func(congest.Message)) bool {
		for _, m := range in {
			if m.Kind != kindGather {
				continue
			}
			it := Item{m.A, m.B, m.C}
			if v == t.Root {
				collected = append(collected, it)
			} else {
				queue[v] = append(queue[v], it)
			}
		}
		if v == t.Root {
			// The root's own items never travel; it waits only for the
			// strict-descendant items.
			return len(collected) >= totalBelow[v]-len(perNode[v])
		}
		b := nw.Bandwidth
		for b > 0 && head[v] < len(queue[v]) {
			it := queue[v][head[v]]
			head[v]++
			send(congest.Message{To: t.Parent[v], Kind: kindGather, A: it.A, B: it.B, C: it.C})
			sent[v]++
			b--
		}
		return sent[v] >= totalBelow[v]
	})
	total := totalBelow[t.Root]
	budget := t.Height + total + 4
	if _, err := nw.Run(p, budget+n); err != nil {
		return nil, fmt.Errorf("broadcast: gather: %w", err)
	}
	collected = append(collected, perNode[t.Root]...)
	sortItems(collected)
	return collected, nil
}

// Broadcast floods the root's items to every node, pipelined. After it
// returns, every node knows all items (Lemma A.1: O(n + k) rounds; with the
// BFS tree it is O(height + k) here). The items are returned in canonical
// order as the view every node now holds.
func Broadcast(nw *congest.Network, t *Tree, items []Item) ([]Item, error) {
	n := nw.N()
	k := len(items)
	// Every non-root node receives exactly k items; one arena sliced into
	// capacity-capped per-node views keeps the flood's hot loop free of
	// append regrowth (and of n separate allocations).
	recvd := make([][]Item, n)
	if k > 0 {
		arena := make([]Item, n*k)
		for v := 0; v < n; v++ {
			if v != t.Root {
				off := v * k
				recvd[v] = arena[off : off : off+k]
			}
		}
	}
	fwd := make([]int, n) // next index to forward to children

	p := congest.ProtoFunc(func(v, round int, in []congest.Message, send func(congest.Message)) bool {
		for _, m := range in {
			if m.Kind != kindFlood {
				continue
			}
			recvd[v] = append(recvd[v], Item{m.A, m.B, m.C})
		}
		var src []Item
		if v == t.Root {
			src = items
		} else {
			src = recvd[v]
		}
		b := nw.Bandwidth
		for b > 0 && fwd[v] < len(src) {
			it := src[fwd[v]]
			fwd[v]++
			for _, c := range t.Children[v] {
				send(congest.Message{To: c, Kind: kindFlood, A: it.A, B: it.B, C: it.C})
			}
			b--
		}
		return fwd[v] >= k && (v == t.Root || len(recvd[v]) >= k)
	})
	if _, err := nw.Run(p, t.Height+k+4+n); err != nil {
		return nil, fmt.Errorf("broadcast: broadcast: %w", err)
	}
	out := append([]Item(nil), items...)
	sortItems(out)
	return out, nil
}

// AllToAll implements Lemma A.2 generalized to multiple items per node:
// every node contributes perNode[v] and afterwards every node knows the
// union. Rounds: O(height + K/bandwidth) for gather plus the same for the
// downward flood, i.e. O(n + K) in the worst case, matching O(n) for one
// item per node.
func AllToAll(nw *congest.Network, t *Tree, perNode [][]Item) ([]Item, error) {
	up, err := Gather(nw, t, perNode)
	if err != nil {
		return nil, err
	}
	return Broadcast(nw, t, up)
}

func byDepthDesc(t *Tree) []int {
	order := make([]int, len(t.Parent))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return t.Depth[order[i]] > t.Depth[order[j]] })
	return order
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].A != items[j].A {
			return items[i].A < items[j].A
		}
		if items[i].B != items[j].B {
			return items[i].B < items[j].B
		}
		return items[i].C < items[j].C
	})
}
