package broadcast

import (
	"testing"

	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
)

func newNet(t *testing.T, g *graph.Graph, bw int) *congest.Network {
	t.Helper()
	nw, err := congest.NewNetwork(g, bw)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildBFSPath(t *testing.T) {
	g := graph.New(5, false)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height != 4 {
		t.Errorf("height = %d, want 4", tr.Height)
	}
	for v := 1; v < 5; v++ {
		if tr.Parent[v] != v-1 {
			t.Errorf("parent[%d] = %d, want %d", v, tr.Parent[v], v-1)
		}
		if tr.Depth[v] != v {
			t.Errorf("depth[%d] = %d, want %d", v, tr.Depth[v], v)
		}
	}
	if nw.Stats.Rounds == 0 || nw.Stats.Rounds > g.N+2 {
		t.Errorf("BFS rounds = %d, want O(diameter) <= %d", nw.Stats.Rounds, g.N+2)
	}
}

func TestBuildBFSDepthsAreShortest(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 50, Seed: 3, MaxWeight: 5}, 120)
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 7)
	if err != nil {
		t.Fatal(err)
	}
	// BFS depth must equal unweighted shortest hop distance in UG.
	ug := g.UnderlyingUndirected()
	unit := graph.New(ug.N, false)
	for _, e := range ug.Edges() {
		unit.MustAddEdge(e.U, e.V, 1)
	}
	d := graph.Dijkstra(unit, 7)
	for v := 0; v < g.N; v++ {
		if int64(tr.Depth[v]) != d[v] {
			t.Errorf("depth[%d] = %d, want %d", v, tr.Depth[v], d[v])
		}
	}
}

func TestBuildBFSDisconnected(t *testing.T) {
	g := graph.New(4, false)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	nw := newNet(t, g, 1)
	if _, err := BuildBFS(nw, 0); err == nil {
		t.Error("disconnected graph not reported")
	}
}

func TestGatherCollectsAll(t *testing.T) {
	g := graph.Grid(4, 5, graph.GenConfig{Seed: 1, MaxWeight: 3})
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	perNode := make([][]Item, g.N)
	want := 0
	for v := 0; v < g.N; v++ {
		for j := 0; j <= v%3; j++ {
			perNode[v] = append(perNode[v], Item{A: int64(v), B: int64(j), C: int64(v * j)})
			want++
		}
	}
	got, err := Gather(nw, tr, perNode)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("gathered %d items, want %d", len(got), want)
	}
	// Spot-check presence and canonical sorting.
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.A > b.A || (a.A == b.A && a.B > b.B) {
			t.Fatalf("items not sorted at %d: %v %v", i, a, b)
		}
	}
}

func TestGatherRoundsPipelined(t *testing.T) {
	// On a path of length L with K items at the far end, pipelined gather
	// must take O(L + K), not O(L * K).
	L, K := 20, 30
	g := graph.New(L+1, false)
	for i := 0; i < L; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw.ResetStats()
	perNode := make([][]Item, g.N)
	for j := 0; j < K; j++ {
		perNode[L] = append(perNode[L], Item{A: int64(L), B: int64(j)})
	}
	if _, err := Gather(nw, tr, perNode); err != nil {
		t.Fatal(err)
	}
	if nw.Stats.Rounds > L+K+6 {
		t.Errorf("gather rounds = %d, want <= %d (pipelining)", nw.Stats.Rounds, L+K+6)
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 30, Seed: 5, MaxWeight: 4}, 60)
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 3)
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{{A: 1}, {A: 2}, {A: 3, B: 9}}
	got, err := Broadcast(nw, tr, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("broadcast returned %d items, want %d", len(got), len(items))
	}
}

func TestAllToAllLemmaA2Bound(t *testing.T) {
	// Lemma A.2: n nodes broadcasting one value each completes in O(n).
	g := graph.RandomConnected(graph.GenConfig{N: 64, Seed: 8, MaxWeight: 4}, 150)
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw.ResetStats()
	perNode := make([][]Item, g.N)
	for v := 0; v < g.N; v++ {
		perNode[v] = []Item{{A: int64(v), B: int64(100 + v)}}
	}
	all, err := AllToAll(nw, tr, perNode)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != g.N {
		t.Fatalf("got %d items, want %d", len(all), g.N)
	}
	for v := 0; v < g.N; v++ {
		if all[v].A != int64(v) || all[v].B != int64(100+v) {
			t.Fatalf("item %d corrupted: %+v", v, all[v])
		}
	}
	// Constant * n with generous slack for tree height.
	if nw.Stats.Rounds > 5*g.N {
		t.Errorf("all-to-all rounds = %d, want O(n) <= %d", nw.Stats.Rounds, 5*g.N)
	}
}

func TestBroadcastEmpty(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 6, Seed: 2, MaxWeight: 3})
	nw := newNet(t, g, 1)
	tr, err := BuildBFS(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Broadcast(nw, tr, nil); err != nil {
		t.Fatalf("empty broadcast failed: %v", err)
	}
	if got, err := Gather(nw, tr, make([][]Item, g.N)); err != nil || len(got) != 0 {
		t.Fatalf("empty gather: %v, %v", got, err)
	}
}

func TestGatherHigherBandwidthFaster(t *testing.T) {
	L, K := 10, 40
	g := graph.New(L+1, false)
	for i := 0; i < L; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	rounds := func(bw int) int {
		nw := newNet(t, g, bw)
		tr, err := BuildBFS(nw, 0)
		if err != nil {
			t.Fatal(err)
		}
		nw.ResetStats()
		perNode := make([][]Item, g.N)
		for j := 0; j < K; j++ {
			perNode[L] = append(perNode[L], Item{A: int64(j)})
		}
		if _, err := Gather(nw, tr, perNode); err != nil {
			t.Fatal(err)
		}
		return nw.Stats.Rounds
	}
	r1, r4 := rounds(1), rounds(4)
	if r4 >= r1 {
		t.Errorf("bandwidth 4 rounds %d not faster than bandwidth 1 rounds %d", r4, r1)
	}
}
