package broadcast

import (
	"fmt"

	"congestapsp/internal/congest"
)

// GatherSum implements the pipelined aggregation of Algorithms 11 and 12 of
// the paper (computing the nu_Pi / nu_Pij totals at the leader): every node
// v holds a vector vec[v] of m values; after the protocol the tree root
// knows the element-wise sum over all nodes. Slot mu flows up the tree on a
// fixed schedule — a node at depth d forwards slot mu at round
// (height - d) + mu, having received its children's slot-mu partial sums in
// the same round — so the whole aggregation completes in height + m + 1
// rounds (Lemmas A.13/A.14: O(n) rounds for m = O(n)).
func GatherSum(nw *congest.Network, t *Tree, vec [][]int64) ([]int64, error) {
	n := nw.N()
	if len(vec) != n {
		return nil, fmt.Errorf("broadcast: GatherSum: %d vectors for %d nodes", len(vec), n)
	}
	m := 0
	for v := range vec {
		if len(vec[v]) > m {
			m = len(vec[v])
		}
	}
	if m == 0 {
		return nil, nil
	}
	// acc[v] accumulates v's own values plus received partial sums.
	acc := make([][]int64, n)
	for v := 0; v < n; v++ {
		acc[v] = make([]int64, m)
		copy(acc[v], vec[v])
	}
	const kindSum uint8 = 13
	h := t.Height
	p := congest.ProtoFunc(func(v, round int, in []congest.Message, send func(congest.Message)) bool {
		for _, msg := range in {
			if msg.Kind == kindSum {
				acc[v][int(msg.A)] += msg.B
			}
		}
		if v != t.Root {
			mu := round - (h - t.Depth[v])
			if mu >= 0 && mu < m {
				send(congest.Message{To: t.Parent[v], Kind: kindSum, A: int64(mu), B: acc[v][mu]})
			}
		}
		return round >= h+m
	})
	if err := nw.RunFor(p, h+m+1); err != nil {
		return nil, fmt.Errorf("broadcast: GatherSum: %w", err)
	}
	return acc[t.Root], nil
}
