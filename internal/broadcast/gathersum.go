package broadcast

import (
	"fmt"

	"congestapsp/internal/congest"
)

// GatherSum implements the pipelined aggregation of Algorithms 11 and 12 of
// the paper (computing the nu_Pi / nu_Pij totals at the leader): every node
// v holds a vector vec[v] of m values; after the protocol the tree root
// knows the element-wise sum over all nodes. Slot mu flows up the tree on a
// fixed schedule — a node at depth d forwards slot mu at round
// (height - d) + mu, having received its children's slot-mu partial sums in
// the same round — so the whole aggregation completes in height + m + 1
// rounds (Lemmas A.13/A.14: O(n) rounds for m = O(n)).
func GatherSum(nw *congest.Network, t *Tree, vec [][]int64) ([]int64, error) {
	n := nw.N()
	if len(vec) != n {
		return nil, fmt.Errorf("broadcast: GatherSum: %d vectors for %d nodes", len(vec), n)
	}
	m := 0
	for v := range vec {
		if len(vec[v]) > m {
			m = len(vec[v])
		}
	}
	if m == 0 {
		return nil, nil
	}
	// acc row v accumulates v's own values plus received partial sums; the
	// rows live in one pooled flat arena (n*m can be large — the good-set
	// search aggregates one slot per sample point — so reallocating it per
	// call was a top allocation site).
	st := getState(nw)
	if cap(st.acc) < n*m {
		st.acc = make([]int64, n*m)
	}
	st.acc = st.acc[:n*m]
	clear(st.acc)
	for v := 0; v < n; v++ {
		copy(st.acc[v*m:(v+1)*m], vec[v])
	}
	st.sum = sumProto{t: t, acc: st.acc, m: m}
	err := nw.RunFor(&st.sum, t.Height+m+1)
	st.sum.acc = nil
	if err != nil {
		return nil, fmt.Errorf("broadcast: GatherSum: %w", err)
	}
	// The root row is copied out: callers aggregate twice back to back (the
	// nu_Pi / nu_Pij pair) and read both results together, so the returned
	// slice must survive the next GatherSum on the same network.
	out := make([]int64, m)
	copy(out, st.acc[t.Root*m:(t.Root+1)*m])
	return out, nil
}

const kindSum uint8 = 13

// sumProto is the fixed-schedule aggregation of GatherSum as a reusable
// protocol object: slot mu of node v lives at acc[v*m+mu].
type sumProto struct {
	t   *Tree
	acc []int64
	m   int
}

// Step implements congest.Proto.
func (p *sumProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	t, m, h := p.t, p.m, p.t.Height
	for _, msg := range in {
		if msg.Kind == kindSum {
			p.acc[v*m+int(msg.A)] += msg.B
		}
	}
	if v != t.Root {
		mu := round - (h - t.Depth[v])
		if mu >= 0 && mu < m {
			send(congest.Message{To: t.Parent[v], Kind: kindSum, A: int64(mu), B: p.acc[v*m+mu]})
		}
	}
	return round >= h+m
}
