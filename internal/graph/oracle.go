package graph

import (
	"container/heap"

	"congestapsp/internal/mat"
)

// This file contains the sequential reference ("oracle") shortest-path
// algorithms against which the distributed algorithms are validated.

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist int64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra returns the shortest-path distances from src to every vertex.
// Unreachable vertices get Inf.
func Dijkstra(g *Graph, src int) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		g.OutNeighbors(it.v, func(w int, wt int64) {
			if nd := it.dist + wt; nd < dist[w] {
				dist[w] = nd
				heap.Push(h, pqItem{w, nd})
			}
		})
	}
	return dist
}

// BellmanFordHops returns, for each vertex v, the minimum weight of a path
// from src to v using at most h edges (Inf if none). This is the sequential
// reference for the distributed h-hop SSSP.
func BellmanFordHops(g *Graph, src, h int) []int64 {
	cur := make([]int64, g.N)
	for i := range cur {
		cur[i] = Inf
	}
	cur[src] = 0
	next := make([]int64, g.N)
	for r := 0; r < h; r++ {
		copy(next, cur)
		changed := false
		for _, e := range g.edges {
			relax := func(u, v int, w int64) {
				if cur[u] < Inf && cur[u]+w < next[v] {
					next[v] = cur[u] + w
					changed = true
				}
			}
			relax(e.U, e.V, e.W)
			if !g.Directed {
				relax(e.V, e.U, e.W)
			}
		}
		cur, next = next, cur
		if !changed {
			break
		}
	}
	return cur
}

// FloydWarshall returns the full n x n distance matrix as row views of one
// flat row-major matrix; D[u][v] is the shortest-path distance from u to v
// (Inf if unreachable, 0 on the diagonal).
func FloydWarshall(g *Graph) [][]int64 {
	n := g.N
	m := mat.NewFilled(n, n, Inf)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
	}
	for _, e := range g.edges {
		if e.W < m.At(e.U, e.V) {
			m.Set(e.U, e.V, e.W)
		}
		if !g.Directed && e.W < m.At(e.V, e.U) {
			m.Set(e.V, e.U, e.W)
		}
	}
	for k := 0; k < n; k++ {
		dk := m.Row(k)
		for i := 0; i < n; i++ {
			dik := m.At(i, k)
			if dik >= Inf {
				continue
			}
			di := m.Row(i)
			for j := 0; j < n; j++ {
				if nd := dik + dk[j]; nd < di[j] {
					di[j] = nd
				}
			}
		}
	}
	return m.RowViews()
}

// HopsOnShortestPath returns, for each vertex v, the minimum number of edges
// over all shortest (minimum-weight) paths from src to v, or -1 if v is
// unreachable. It is the sequential reference for hops(x, c) used by the
// reversed q-sink case split (Section 4 of the paper).
func HopsOnShortestPath(g *Graph, src int) []int {
	dist := Dijkstra(g, src)
	n := g.N
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	// Bellman-Ford style relaxation on the shortest-path DAG: at most n-1
	// sweeps, each sweep settles at least the next hop level.
	for r := 0; r < n; r++ {
		changed := false
		for _, e := range g.edges {
			step := func(u, v int, w int64) {
				if dist[u] < Inf && hops[u] >= 0 && dist[u]+w == dist[v] {
					if hops[v] == -1 || hops[u]+1 < hops[v] {
						hops[v] = hops[u] + 1
						changed = true
					}
				}
			}
			step(e.U, e.V, e.W)
			if !g.Directed {
				step(e.V, e.U, e.W)
			}
		}
		if !changed {
			break
		}
	}
	return hops
}

// ReachableFrom returns the set of vertices reachable from src following
// edge directions (all incident edges if undirected) as a boolean slice.
func ReachableFrom(g *Graph, src int) []bool {
	seen := make([]bool, g.N)
	seen[src] = true
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.OutNeighbors(u, func(v int, _ int64) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		})
	}
	return seen
}

// IsConnectedUG reports whether the underlying undirected graph is
// connected. CONGEST algorithms assume a connected communication network.
func IsConnectedUG(g *Graph) bool {
	if g.N == 0 {
		return true
	}
	u := g.UnderlyingUndirected()
	seen := ReachableFrom(u, 0)
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

// BlockerDelta builds the exact Step-5 input of the q-sink machinery:
// element (x, ci) = dist(x, Q[ci]) in g, computed as dist(Q[ci], x) in the
// reversed graph. It is the shared oracle of the qsink tests, benchmarks,
// and cmd/congestbench.
func BlockerDelta(g *Graph, Q []int) *mat.Matrix {
	rev := g
	if g.Directed {
		rev = g.Reverse()
	}
	delta := mat.New(g.N, len(Q))
	for ci, c := range Q {
		d := Dijkstra(rev, c)
		for x := 0; x < g.N; x++ {
			delta.Set(x, ci, d[x])
		}
	}
	return delta
}
