// Package graph provides the weighted-graph substrate used by the CONGEST
// APSP algorithms: graph construction, generators, and exact sequential
// reference algorithms (Dijkstra, Bellman-Ford, Floyd-Warshall) used as
// oracles in tests and benchmarks.
//
// Vertices are dense integers 0..N-1. Edge weights are non-negative int64
// (the paper allows arbitrary non-negative weights; integers keep arithmetic
// exact). A Graph may be directed or undirected; in the CONGEST model the
// communication network is always the underlying undirected graph.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Inf is the distance value used for "unreachable". It is chosen so that
// Inf+maxWeight cannot overflow int64 when a single relaxation adds one edge.
const Inf int64 = math.MaxInt64 / 4

// Edge is a weighted edge from U to V. For undirected graphs an Edge
// represents both directions.
type Edge struct {
	U, V int
	W    int64
}

// Graph is a weighted graph over vertices 0..N-1.
type Graph struct {
	N        int
	Directed bool
	edges    []Edge
	// out[u] lists indices into edges of edges leaving u (for undirected
	// graphs, edges incident to u, in either orientation).
	out [][]int
	// in[v] lists indices into edges of edges entering v. For undirected
	// graphs in == out.
	in [][]int
	// version counts mutations made through the Graph API (AddEdge,
	// SetEdgeWeight, RemoveEdge). Consumers that cache structure derived
	// from the edge list key their caches on it, and warm sessions use it
	// as an O(1) staleness guard. Direct writes through the Edges() slice
	// bypass it — that is exactly the class of mutation the -tags matcheck
	// paranoid re-verify exists to catch.
	version uint64
}

// New returns an empty graph with n vertices.
func New(n int, directed bool) *Graph {
	g := &Graph{
		N:        n,
		Directed: directed,
		out:      make([][]int, n),
	}
	if directed {
		g.in = make([][]int, n)
	} else {
		g.in = g.out
	}
	return g
}

// AddEdge adds an edge u->v with weight w (both directions if undirected).
// Self-loops are rejected: they never appear on shortest paths with
// non-negative weights and the CONGEST model has no self-links.
func (g *Graph) AddEdge(u, v int, w int64) error {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.N)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d rejected", u)
	}
	if w < 0 {
		return fmt.Errorf("graph: negative weight %d on edge (%d,%d)", w, u, v)
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.out[u] = append(g.out[u], idx)
	if g.Directed {
		g.in[v] = append(g.in[v], idx)
	} else {
		g.out[v] = append(g.out[v], idx)
	}
	g.version++
	return nil
}

// Version returns the mutation counter: it increments on every successful
// AddEdge, SetEdgeWeight, or RemoveEdge, so two reads returning the same
// value bracket a window with no API-level mutation. It says nothing about
// direct writes into the Edges() slice.
func (g *Graph) Version() uint64 { return g.version }

// SetEdgeWeight changes the weight of edge idx (an index into Edges()) in
// place. The adjacency structure is untouched — only the weight changes —
// so this is O(1).
func (g *Graph) SetEdgeWeight(idx int, w int64) error {
	if idx < 0 || idx >= len(g.edges) {
		return fmt.Errorf("graph: edge index %d out of range [0,%d)", idx, len(g.edges))
	}
	if w < 0 {
		return fmt.Errorf("graph: negative weight %d on edge %d", w, idx)
	}
	g.edges[idx].W = w
	g.version++
	return nil
}

// RemoveEdge deletes edge idx (an index into Edges()), preserving the
// insertion order of the remaining edges. Every later edge shifts down one
// index and the incidence lists are rebuilt, so this is O(m).
func (g *Graph) RemoveEdge(idx int) error {
	if idx < 0 || idx >= len(g.edges) {
		return fmt.Errorf("graph: edge index %d out of range [0,%d)", idx, len(g.edges))
	}
	g.edges = append(g.edges[:idx], g.edges[idx+1:]...)
	for u := range g.out {
		g.out[u] = g.out[u][:0]
	}
	if g.Directed {
		for v := range g.in {
			g.in[v] = g.in[v][:0]
		}
	}
	for i, e := range g.edges {
		g.out[e.U] = append(g.out[e.U], i)
		if g.Directed {
			g.in[e.V] = append(g.in[e.V], i)
		} else {
			g.out[e.V] = append(g.out[e.V], i)
		}
	}
	g.version++
	return nil
}

// FindEdge returns the index of the first edge u->v (for undirected graphs,
// the first edge {u,v} in either orientation), or -1 if none exists. With
// parallel edges, "first" means lowest insertion index.
func (g *Graph) FindEdge(u, v int) int {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		return -1
	}
	best := -1
	for _, idx := range g.out[u] {
		e := g.edges[idx]
		if e.U == u && e.V == v || !g.Directed && e.U == v && e.V == u {
			if best < 0 || idx < best {
				best = idx
			}
		}
	}
	return best
}

// MustAddEdge is AddEdge that panics on error; for use in tests and
// generators where inputs are known valid.
func (g *Graph) MustAddEdge(u, v int, w int64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// M returns the number of edges (undirected edges counted once).
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// OutNeighbors calls f(v, w) for every edge u->v with weight w.
// For undirected graphs this enumerates all incident edges.
func (g *Graph) OutNeighbors(u int, f func(v int, w int64)) {
	for _, idx := range g.out[u] {
		e := g.edges[idx]
		if e.U == u {
			f(e.V, e.W)
		} else {
			f(e.U, e.W)
		}
	}
}

// InNeighbors calls f(u, w) for every edge u->v with weight w.
// For undirected graphs this enumerates all incident edges.
func (g *Graph) InNeighbors(v int, f func(u int, w int64)) {
	for _, idx := range g.in[v] {
		e := g.edges[idx]
		if g.Directed {
			f(e.U, e.W)
		} else if e.U == v {
			f(e.V, e.W)
		} else {
			f(e.U, e.W)
		}
	}
}

// OutDegree returns the number of outgoing edges of u.
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// Reverse returns the graph with all edges reversed. For undirected graphs
// it returns a copy.
func (g *Graph) Reverse() *Graph {
	r := New(g.N, g.Directed)
	for _, e := range g.edges {
		r.MustAddEdge(e.V, e.U, e.W)
	}
	return r
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.N, g.Directed)
	for _, e := range g.edges {
		c.MustAddEdge(e.U, e.V, e.W)
	}
	return c
}

// UnderlyingUndirected returns the communication topology: the undirected
// graph with an edge {u,v} wherever g has u->v or v->u. Parallel edges are
// collapsed; the weight recorded is the minimum over collapsed edges (weights
// on the communication graph are irrelevant to the CONGEST round structure
// but kept for convenience).
func (g *Graph) UnderlyingUndirected() *Graph {
	if !g.Directed {
		return g.Clone()
	}
	type key struct{ a, b int }
	best := make(map[key]int64)
	for _, e := range g.edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		k := key{a, b}
		if w, ok := best[k]; !ok || e.W < w {
			best[k] = e.W
		}
	}
	keys := make([]key, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	u := New(g.N, false)
	for _, k := range keys {
		u.MustAddEdge(k.a, k.b, best[k])
	}
	return u
}

// Validate checks internal consistency; it is used by failure-injection
// tests.
func (g *Graph) Validate() error {
	for i, e := range g.edges {
		if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N {
			return fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range", i, e.U, e.V)
		}
		if e.W < 0 {
			return fmt.Errorf("graph: edge %d has negative weight %d", i, e.W)
		}
	}
	return nil
}
