package graph

import (
	"encoding/binary"
	"hash/fnv"
	"testing"
)

// hashGraph digests (N, edge list) into one value; identical hashes mean
// identical vertex counts, edge order, endpoints, and weights.
func hashGraph(g *Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(g.N))
	for _, e := range g.Edges() {
		put(int64(e.U))
		put(int64(e.V))
		put(e.W)
	}
	return h.Sum64()
}

// connected reports whether g's underlying undirected graph is connected.
func connected(g *Graph) bool {
	if g.N == 0 {
		return true
	}
	u := g.UnderlyingUndirected()
	seen := make([]bool, u.N)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		u.OutNeighbors(v, func(w int, _ int64) {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		})
	}
	return count == u.N
}

var familyCases = []struct {
	name string
	gen  func(c GenConfig) *Graph
	// pinned is hashGraph of the generator's output at N=64, Seed=7,
	// MaxWeight=50. A change here means the generator's output changed
	// for existing seeds — every named scenario built on it silently
	// becomes a different workload, so treat a mismatch as a breaking
	// change, not a test to update casually.
	pinned uint64
}{
	{"powerlaw", func(c GenConfig) *Graph { return PowerLaw(c, 3) }, 0xcbd6e0bc7a07fb29},
	{"geometric", func(c GenConfig) *Graph { return RandomGeometric(c, 0) }, 0x3733a8251e755a67},
	{"expander", func(c GenConfig) *Graph { return Expander(c, 3) }, 0x6f8708b24173e681},
	{"ktree", func(c GenConfig) *Graph { return KTree(c, 4) }, 0x62cf7050484b1d68},
}

func TestFamiliesDeterministicAndPinned(t *testing.T) {
	for _, tc := range familyCases {
		t.Run(tc.name, func(t *testing.T) {
			c := GenConfig{N: 64, Seed: 7, MaxWeight: 50}
			a, b := tc.gen(c), tc.gen(c)
			ha, hb := hashGraph(a), hashGraph(b)
			if ha != hb {
				t.Fatalf("two builds with the same seed differ: %#x vs %#x", ha, hb)
			}
			if ha != tc.pinned {
				t.Fatalf("pinned output changed: got %#x, want %#x (this silently changes every named scenario)", ha, tc.pinned)
			}
			c.Seed = 8
			if h := hashGraph(tc.gen(c)); h == ha {
				t.Fatalf("seed 8 reproduced seed 7's graph (%#x): generator ignores the seed", h)
			}
		})
	}
}

func TestFamiliesConnected(t *testing.T) {
	for _, tc := range familyCases {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{2, 5, 16, 63, 128} {
				for seed := int64(0); seed < 3; seed++ {
					g := tc.gen(GenConfig{N: n, Seed: seed, MaxWeight: 20})
					if !connected(g) {
						t.Fatalf("n=%d seed=%d: disconnected", n, seed)
					}
					if err := g.Validate(); err != nil {
						t.Fatalf("n=%d seed=%d: %v", n, seed, err)
					}
				}
			}
		})
	}
}

func TestFamiliesDirectedStayConnected(t *testing.T) {
	for _, tc := range familyCases {
		g := tc.gen(GenConfig{N: 32, Directed: true, Seed: 3, MaxWeight: 10})
		if !g.Directed {
			t.Fatalf("%s: directed config produced undirected graph", tc.name)
		}
		if !connected(g) {
			t.Fatalf("%s: directed variant disconnected", tc.name)
		}
	}
}

func TestPowerLawEdgeCount(t *testing.T) {
	// After the initial (attach+1)-clique, every vertex attaches exactly
	// `attach` edges.
	const n, attach = 100, 3
	g := PowerLaw(GenConfig{N: n, Seed: 1}, attach)
	want := attach*(attach+1)/2 + (n-attach-1)*attach
	if g.M() != want {
		t.Fatalf("m = %d, want %d", g.M(), want)
	}
}

func TestKTreeEdgeCount(t *testing.T) {
	// A k-tree on n > k vertices has C(k+1,2) + (n-k-1)*k edges.
	const n, k = 80, 4
	g := KTree(GenConfig{N: n, Seed: 2}, k)
	want := k*(k+1)/2 + (n-k-1)*k
	if g.M() != want {
		t.Fatalf("m = %d, want %d", g.M(), want)
	}
}

func TestExpanderRegular(t *testing.T) {
	const n, cycles = 50, 3
	g := Expander(GenConfig{N: n, Seed: 4}, cycles)
	if g.M() != cycles*n {
		t.Fatalf("m = %d, want %d", g.M(), cycles*n)
	}
}

func TestGeometricWeightsFollowDistance(t *testing.T) {
	g := RandomGeometric(GenConfig{N: 60, Seed: 5, MaxWeight: 50}, 0)
	for _, e := range g.Edges() {
		if e.W < 1 || e.W > 50 {
			t.Fatalf("edge (%d,%d) weight %d outside [1,50]", e.U, e.V, e.W)
		}
	}
}
