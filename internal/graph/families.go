package graph

import "math"

// Scenario-corpus generator families beyond the original synthetic set:
// heavy-tailed (PowerLaw), geometric/road-like (RandomGeometric), sparse
// high-conductance (Expander), and bounded-treewidth (KTree) graphs. Like
// the generators in gen.go, every family is deterministic in the seed and
// always yields a connected communication network; directed configs add
// each edge in both orientations to preserve strong connectivity.

// PowerLaw generates a Barabási–Albert preferential-attachment graph: an
// initial (attach+1)-clique, then each new vertex attaches `attach` edges
// to existing vertices chosen proportionally to their current degree
// (duplicate targets per new vertex are re-drawn). The degree sequence is
// heavy-tailed — the hub-dominated regime that stresses the
// bottleneck-elimination machinery on realistic topologies.
func PowerLaw(c GenConfig, attach int) *Graph {
	r := c.rng()
	if attach < 1 {
		attach = 1
	}
	seedN := attach + 1
	if seedN > c.N {
		seedN = c.N
	}
	g := New(c.N, c.Directed)
	addBoth := func(u, v int) {
		g.MustAddEdge(u, v, c.weight(r))
		if c.Directed {
			g.MustAddEdge(v, u, c.weight(r))
		}
	}
	// targets holds one entry per edge endpoint, so uniform draws from it
	// are degree-proportional (the classic BA sampling trick).
	var targets []int
	for u := 0; u < seedN; u++ {
		for v := u + 1; v < seedN; v++ {
			addBoth(u, v)
			targets = append(targets, u, v)
		}
	}
	for v := seedN; v < c.N; v++ {
		picked := make(map[int]bool, attach)
		for len(picked) < attach && len(picked) < v {
			t := targets[r.Intn(len(targets))]
			if t == v || picked[t] {
				continue
			}
			picked[t] = true
		}
		// Attach in ascending target order so edge insertion order (and
		// therefore the serialized graph) is independent of map iteration.
		for t := 0; t < v; t++ {
			if picked[t] {
				addBoth(v, t)
				targets = append(targets, v, t)
			}
		}
	}
	return g
}

// RandomGeometric generates a random geometric graph: n points placed
// uniformly in the unit square, an edge between every pair within the
// given radius, weights proportional to Euclidean distance (road-network
// style). Components beyond the first are stitched to their nearest
// already-connected point, so the result is always connected; radius <= 0
// selects the standard connectivity threshold ~ sqrt(2 ln n / n).
func RandomGeometric(c GenConfig, radius float64) *Graph {
	r := c.rng()
	n := c.N
	if radius <= 0 {
		radius = math.Sqrt(2 * math.Log(float64(n)+2) / float64(n))
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	// Distances are computed with explicit float64 conversions on each
	// product: the Go spec lets compilers fuse a*b+c into an FMA (single
	// rounding) unless intermediate results are explicitly converted, and
	// a fused distance could flip threshold-adjacent edges between
	// architectures — breaking the cross-host regenerability the scenario
	// corpus promises (math.Sqrt itself is IEEE-exact, so it is safe).
	dist := func(u, v int) float64 {
		dx, dy := xs[u]-xs[v], ys[u]-ys[v]
		return math.Sqrt(float64(dx*dx) + float64(dy*dy))
	}
	g := New(n, c.Directed)
	addBoth := func(u, v int, d float64) {
		w := c.geoWeight(d, radius)
		g.MustAddEdge(u, v, w)
		if c.Directed {
			g.MustAddEdge(v, u, w)
		}
	}
	uf := newUnionFind(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if d := dist(u, v); d <= radius {
				addBoth(u, v, d)
				uf.union(u, v)
			}
		}
	}
	// Stitch stray components: connect each unreached vertex set to its
	// nearest vertex in the component of vertex 0, in ascending id order.
	for v := 1; v < n; v++ {
		if uf.find(v) == uf.find(0) {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for u := 0; u < n; u++ {
			if uf.find(u) == uf.find(0) && dist(u, v) < bestD {
				best, bestD = u, dist(u, v)
			}
		}
		addBoth(best, v, bestD)
		uf.union(best, v)
	}
	return g
}

// geoWeight maps a Euclidean distance to an edge weight: distances scale
// linearly into [1, MaxWeight] (unit weights when MaxWeight <= 0), so
// shortest paths follow geometry rather than hop count.
func (c GenConfig) geoWeight(d, radius float64) int64 {
	if c.MaxWeight <= 0 {
		return 1
	}
	w := int64(math.Ceil(d / radius * float64(c.MaxWeight)))
	if w < 1 {
		w = 1
	}
	if w > c.MaxWeight {
		w = c.MaxWeight
	}
	return w
}

// Expander generates the union of `cycles` random Hamiltonian cycles (a
// 2*cycles-regular multigraph). Unions of independent random cycles are
// expanders with high probability: low diameter, no sparse cuts — the
// regime in which broadcast trees are shallow and blocker sets small.
func Expander(c GenConfig, cycles int) *Graph {
	r := c.rng()
	if cycles < 1 {
		cycles = 1
	}
	g := New(c.N, c.Directed)
	for k := 0; k < cycles; k++ {
		perm := r.Perm(c.N)
		for i := 0; i < c.N; i++ {
			u, v := perm[i], perm[(i+1)%c.N]
			g.MustAddEdge(u, v, c.weight(r))
			if c.Directed {
				g.MustAddEdge(v, u, c.weight(r))
			}
		}
	}
	return g
}

// KTree generates a k-tree: a (k+1)-clique grown by repeatedly attaching a
// new vertex to a uniformly chosen existing k-clique. k-trees are exactly
// the maximal graphs of treewidth k, giving a workload family whose
// separators stay bounded as n grows (the structured counterpoint to the
// expander family).
func KTree(c GenConfig, k int) *Graph {
	r := c.rng()
	if k < 1 {
		k = 1
	}
	if k >= c.N {
		k = c.N - 1
	}
	g := New(c.N, c.Directed)
	addBoth := func(u, v int) {
		g.MustAddEdge(u, v, c.weight(r))
		if c.Directed {
			g.MustAddEdge(v, u, c.weight(r))
		}
	}
	base := k + 1
	for u := 0; u < base; u++ {
		for v := u + 1; v < base; v++ {
			addBoth(u, v)
		}
	}
	// cliques lists the k-cliques available for attachment.
	var cliques [][]int
	for drop := 0; drop < base; drop++ {
		cl := make([]int, 0, k)
		for u := 0; u < base; u++ {
			if u != drop {
				cl = append(cl, u)
			}
		}
		cliques = append(cliques, cl)
	}
	for v := base; v < c.N; v++ {
		cl := cliques[r.Intn(len(cliques))]
		for _, u := range cl {
			addBoth(v, u)
		}
		for drop := 0; drop < k; drop++ {
			next := make([]int, 0, k)
			for i, u := range cl {
				if i != drop {
					next = append(next, u)
				}
			}
			next = append(next, v)
			cliques = append(cliques, next)
		}
	}
	return g
}

// unionFind is a tiny path-halving union-find for generator connectivity
// bookkeeping.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }
