package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3, true)
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := g.AddEdge(1, 1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 1, -5); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.AddEdge(0, 1, 5); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestOutInNeighborsDirected(t *testing.T) {
	g := New(4, true)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 20)
	g.MustAddEdge(3, 0, 30)

	var outs []int
	g.OutNeighbors(0, func(v int, w int64) { outs = append(outs, v) })
	if len(outs) != 2 {
		t.Fatalf("out-neighbors of 0: %v, want 2 entries", outs)
	}
	var ins []int
	g.InNeighbors(0, func(u int, w int64) { ins = append(ins, u) })
	if len(ins) != 1 || ins[0] != 3 {
		t.Fatalf("in-neighbors of 0: %v, want [3]", ins)
	}
}

func TestOutInNeighborsUndirected(t *testing.T) {
	g := New(3, false)
	g.MustAddEdge(0, 1, 7)
	var fromZero, fromOne []int
	g.OutNeighbors(0, func(v int, w int64) { fromZero = append(fromZero, v) })
	g.OutNeighbors(1, func(v int, w int64) { fromOne = append(fromOne, v) })
	if len(fromZero) != 1 || fromZero[0] != 1 {
		t.Errorf("neighbors of 0: %v", fromZero)
	}
	if len(fromOne) != 1 || fromOne[0] != 0 {
		t.Errorf("neighbors of 1: %v", fromOne)
	}
}

func TestReverse(t *testing.T) {
	g := New(3, true)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 6)
	r := g.Reverse()
	d := Dijkstra(r, 2)
	if d[0] != 11 || d[1] != 6 {
		t.Errorf("reverse distances from 2: %v", d)
	}
}

func TestUnderlyingUndirectedCollapsesParallel(t *testing.T) {
	g := New(2, true)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 0, 3)
	u := g.UnderlyingUndirected()
	if u.M() != 1 {
		t.Fatalf("UG edges = %d, want 1", u.M())
	}
	if u.Edges()[0].W != 3 {
		t.Errorf("UG weight = %d, want min 3", u.Edges()[0].W)
	}
}

func TestDijkstraSmall(t *testing.T) {
	g := New(5, true)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(2, 1, 4)
	g.MustAddEdge(1, 3, 2)
	g.MustAddEdge(2, 3, 8)
	g.MustAddEdge(3, 4, 0)
	d := Dijkstra(g, 0)
	want := []int64{0, 7, 3, 9, 9}
	for v, w := range want {
		if d[v] != w {
			t.Errorf("dist[%d] = %d, want %d", v, d[v], w)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 1, 1)
	d := Dijkstra(g, 0)
	if d[2] != Inf {
		t.Errorf("dist[2] = %d, want Inf", d[2])
	}
}

func TestBellmanFordHopsRespectsBound(t *testing.T) {
	// 0 -> 1 -> 2 (weight 1+1) vs direct 0 -> 2 (weight 10).
	g := New(3, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 10)
	if d := BellmanFordHops(g, 0, 1); d[2] != 10 {
		t.Errorf("1-hop dist[2] = %d, want 10", d[2])
	}
	if d := BellmanFordHops(g, 0, 2); d[2] != 2 {
		t.Errorf("2-hop dist[2] = %d, want 2", d[2])
	}
}

func TestFloydWarshallMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, dir := range []bool{false, true} {
			g := RandomConnected(GenConfig{N: 30, Directed: dir, Seed: seed, MaxWeight: 20}, 90)
			fw := FloydWarshall(g)
			for src := 0; src < g.N; src++ {
				dj := Dijkstra(g, src)
				for v := 0; v < g.N; v++ {
					if fw[src][v] != dj[v] {
						t.Fatalf("seed=%d dir=%v: FW[%d][%d]=%d, Dijkstra=%d", seed, dir, src, v, fw[src][v], dj[v])
					}
				}
			}
		}
	}
}

func TestHopsOnShortestPath(t *testing.T) {
	// Two shortest paths 0->3 of weight 2: via 1 (2 hops) and via 1,2 (3 hops).
	g := New(4, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(1, 2, 0)
	g.MustAddEdge(2, 3, 1)
	h := HopsOnShortestPath(g, 0)
	if h[3] != 2 {
		t.Errorf("hops[3] = %d, want 2 (min hops over shortest paths)", h[3])
	}
	if h[0] != 0 {
		t.Errorf("hops[0] = %d, want 0", h[0])
	}
}

func TestHopsUnreachable(t *testing.T) {
	g := New(2, true)
	h := HopsOnShortestPath(g, 0)
	if h[1] != -1 {
		t.Errorf("hops[1] = %d, want -1", h[1])
	}
}

func TestGeneratorsConnected(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"random-undir", RandomConnected(GenConfig{N: 40, Seed: 1, MaxWeight: 9}, 80)},
		{"random-dir", RandomConnected(GenConfig{N: 40, Directed: true, Seed: 2, MaxWeight: 9}, 120)},
		{"ring", Ring(GenConfig{N: 25, Seed: 3, MaxWeight: 9})},
		{"ring-dir", Ring(GenConfig{N: 25, Directed: true, Seed: 3, MaxWeight: 9})},
		{"grid", Grid(5, 8, GenConfig{Seed: 4, MaxWeight: 9})},
		{"layered", Layered(6, 4, GenConfig{Seed: 5, MaxWeight: 9})},
		{"layered-dir", Layered(6, 4, GenConfig{Directed: true, Seed: 5, MaxWeight: 9})},
		{"star", Star(GenConfig{N: 20, Seed: 6, MaxWeight: 9})},
		{"zeromix", ZeroWeightMix(GenConfig{N: 30, Seed: 7, MaxWeight: 9}, 60)},
	}
	for _, tc := range cases {
		if err := tc.g.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", tc.name, err)
		}
		if !IsConnectedUG(tc.g) {
			t.Errorf("%s: underlying undirected graph disconnected", tc.name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomConnected(GenConfig{N: 30, Directed: true, Seed: 42, MaxWeight: 50}, 90)
	b := RandomConnected(GenConfig{N: 30, Directed: true, Seed: 42, MaxWeight: 50}, 90)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestDirectedRingStronglyConnected(t *testing.T) {
	g := Ring(GenConfig{N: 12, Directed: true, Seed: 1, MaxWeight: 5})
	for src := 0; src < g.N; src++ {
		seen := ReachableFrom(g, src)
		for v, s := range seen {
			if !s {
				t.Fatalf("node %d unreachable from %d in directed ring", v, src)
			}
		}
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over edges,
// and BellmanFordHops is monotone non-increasing in the hop bound.
func TestQuickShortestPathProperties(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8, directed bool) bool {
		n := 5 + int(nRaw%25)
		m := n + int(mRaw)%(3*n)
		g := RandomConnected(GenConfig{N: n, Directed: directed, Seed: seed, MaxWeight: 30}, m)
		src := int(uint(seed) % uint(n))
		d := Dijkstra(g, src)
		ok := true
		for _, e := range g.Edges() {
			check := func(u, v int, w int64) {
				if d[u] < Inf && d[u]+w < d[v] {
					ok = false
				}
			}
			check(e.U, e.V, e.W)
			if !directed {
				check(e.V, e.U, e.W)
			}
		}
		prev := BellmanFordHops(g, src, 1)
		for h := 2; h <= 5; h++ {
			cur := BellmanFordHops(g, src, h)
			for v := range cur {
				if cur[v] > prev[v] {
					ok = false
				}
			}
			prev = cur
		}
		// At hop bound n-1 the bounded distances equal the true distances.
		full := BellmanFordHops(g, src, n-1)
		for v := range full {
			if full[v] != d[v] {
				ok = false
			}
		}
		return ok
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDisjointPathsStructure(t *testing.T) {
	k, plen := 5, 3
	g := DisjointPaths(k, plen, 500, GenConfig{Seed: 9, MaxWeight: 4})
	if g.N != k*(plen+1) {
		t.Fatalf("n = %d, want %d", g.N, k*(plen+1))
	}
	if !IsConnectedUG(g) {
		t.Fatal("disjoint-paths graph disconnected")
	}
	// Path-internal distances must use the light path edges, never the
	// heavy connectors: dist(head, tail) within one path <= plen*MaxWeight.
	d := Dijkstra(g, 0)
	if d[plen] > int64(plen)*4 {
		t.Errorf("within-path distance %d uses heavy connectors", d[plen])
	}
	// Crossing to another path must pay at least one heavy connector.
	if d[plen+1] < 500 {
		t.Errorf("cross-path distance %d cheaper than a connector", d[plen+1])
	}
}

func TestDisjointPathsDirected(t *testing.T) {
	g := DisjointPaths(4, 2, 100, GenConfig{Directed: true, Seed: 3, MaxWeight: 5})
	for src := 0; src < g.N; src += 3 {
		seen := ReachableFrom(g, src)
		for v, s := range seen {
			if !s {
				t.Fatalf("node %d unreachable from %d in directed disjoint-paths", v, src)
			}
		}
	}
}

func TestParallelEdgesCollapse(t *testing.T) {
	g := New(2, true)
	g.MustAddEdge(0, 1, 9)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(0, 1, 7)
	d := Dijkstra(g, 0)
	if d[1] != 3 {
		t.Errorf("parallel-edge dist = %d, want min 3", d[1])
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3, false)
	g.MustAddEdge(0, 1, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2, 1)
	if g.M() != 1 || c.M() != 2 {
		t.Errorf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
}

func TestOutDegree(t *testing.T) {
	g := New(3, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 0 {
		t.Errorf("out-degrees: %d, %d", g.OutDegree(0), g.OutDegree(1))
	}
	u := New(2, false)
	u.MustAddEdge(0, 1, 1)
	if u.OutDegree(0) != 1 || u.OutDegree(1) != 1 {
		t.Error("undirected incident counts wrong")
	}
}
