package graph

import "math/rand"

// Generators for the workload families used by the tests and the benchmark
// harness. All generators are deterministic given the seed and always return
// graphs whose underlying undirected communication network is connected
// (CONGEST requires connectivity).

// GenConfig controls random generation.
type GenConfig struct {
	N         int
	Directed  bool
	Seed      int64
	MaxWeight int64 // weights are drawn uniformly from [0, MaxWeight]
}

func (c GenConfig) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

func (c GenConfig) weight(r *rand.Rand) int64 {
	if c.MaxWeight <= 0 {
		return 1
	}
	return r.Int63n(c.MaxWeight + 1)
}

// RandomConnected generates a random graph with roughly m edges. It first
// builds a random spanning backbone (guaranteeing connectivity of the
// underlying undirected graph), then adds random extra edges. For directed
// graphs the backbone edges are added in both directions so that every
// vertex is reachable from every other, which keeps APSP outputs dense and
// interesting.
func RandomConnected(c GenConfig, m int) *Graph {
	r := c.rng()
	g := New(c.N, c.Directed)
	perm := r.Perm(c.N)
	for i := 1; i < c.N; i++ {
		u := perm[r.Intn(i)]
		v := perm[i]
		g.MustAddEdge(u, v, c.weight(r))
		if c.Directed {
			g.MustAddEdge(v, u, c.weight(r))
		}
	}
	for g.M() < m {
		u := r.Intn(c.N)
		v := r.Intn(c.N)
		if u == v {
			continue
		}
		g.MustAddEdge(u, v, c.weight(r))
	}
	return g
}

// Ring generates a cycle 0-1-...-n-1-0; the diameter-n/2 workload that
// stresses hop bounds. Directed rings get edges in both directions around
// the cycle to preserve strong connectivity.
func Ring(c GenConfig) *Graph {
	r := c.rng()
	g := New(c.N, c.Directed)
	for i := 0; i < c.N; i++ {
		j := (i + 1) % c.N
		g.MustAddEdge(i, j, c.weight(r))
		if c.Directed {
			g.MustAddEdge(j, i, c.weight(r))
		}
	}
	return g
}

// Grid generates a rows x cols grid graph (n = rows*cols vertices). Grids
// model the road-network-style workloads that motivate distributed APSP.
func Grid(rows, cols int, c GenConfig) *Graph {
	r := c.rng()
	n := rows * cols
	g := New(n, c.Directed)
	id := func(i, j int) int { return i*cols + j }
	add := func(u, v int) {
		g.MustAddEdge(u, v, c.weight(r))
		if c.Directed {
			g.MustAddEdge(v, u, c.weight(r))
		}
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				add(id(i, j), id(i, j+1))
			}
			if i+1 < rows {
				add(id(i, j), id(i+1, j))
			}
		}
	}
	return g
}

// Layered generates a graph of L layers with width w (n = L*w), dense
// forward edges between consecutive layers, and a single spine connecting
// layer entry points. Long layered graphs maximize the number of full-length
// h-hop paths and therefore stress the blocker-set and pipelining machinery.
func Layered(layers, width int, c GenConfig) *Graph {
	r := c.rng()
	n := layers * width
	g := New(n, c.Directed)
	id := func(l, k int) int { return l*width + k }
	for l := 0; l+1 < layers; l++ {
		for a := 0; a < width; a++ {
			for b := 0; b < width; b++ {
				g.MustAddEdge(id(l, a), id(l+1, b), c.weight(r))
			}
		}
	}
	// Spine keeps the underlying undirected graph connected and, for
	// directed graphs, provides a route back toward earlier layers.
	for l := 0; l+1 < layers; l++ {
		g.MustAddEdge(id(l+1, 0), id(l, 0), c.weight(r))
	}
	for k := 0; k+1 < width; k++ {
		g.MustAddEdge(id(0, k+1), id(0, k), c.weight(r))
		if c.Directed {
			g.MustAddEdge(id(0, k), id(0, k+1), c.weight(r))
		}
	}
	return g
}

// Star generates a hub-and-spoke graph: vertex 0 connected to all others.
// Stars maximize congestion at the hub, exercising the bottleneck-node
// machinery of Algorithm 9.
func Star(c GenConfig) *Graph {
	r := c.rng()
	g := New(c.N, c.Directed)
	for i := 1; i < c.N; i++ {
		g.MustAddEdge(0, i, c.weight(r))
		if c.Directed {
			g.MustAddEdge(i, 0, c.weight(r))
		}
	}
	return g
}

// DisjointPaths generates k vertex-disjoint directed-agnostic paths of
// pathLen edges each, their tails linked into a cycle by heavy connector
// edges (weight connectorW) to keep the communication graph connected.
// With light path weights and heavy connectors, shortest-path trees are
// dominated by the k disjoint paths, so no single vertex covers more than
// ~1/k of the full-length tree paths — the regime in which Algorithm 2
// must take its good-set branch rather than the single-node branch.
func DisjointPaths(k, pathLen int, connectorW int64, c GenConfig) *Graph {
	r := c.rng()
	n := k * (pathLen + 1)
	g := New(n, c.Directed)
	id := func(p, j int) int { return p*(pathLen+1) + j }
	for p := 0; p < k; p++ {
		for j := 0; j < pathLen; j++ {
			w := c.weight(r)
			g.MustAddEdge(id(p, j), id(p, j+1), w)
			if c.Directed {
				g.MustAddEdge(id(p, j+1), id(p, j), w)
			}
		}
	}
	for p := 0; p < k; p++ {
		u, v := id(p, 0), id((p+1)%k, 0)
		g.MustAddEdge(u, v, connectorW)
		if c.Directed {
			g.MustAddEdge(v, u, connectorW)
		}
	}
	return g
}

// ZeroWeightMix generates a connected random graph in which roughly half
// the edges have weight zero. Zero-weight edges are explicitly supported by
// the paper and are a classic source of tie-breaking bugs.
func ZeroWeightMix(c GenConfig, m int) *Graph {
	g := RandomConnected(c, m)
	r := rand.New(rand.NewSource(c.Seed + 1))
	for i := range g.edges {
		if r.Intn(2) == 0 {
			g.edges[i].W = 0
		}
	}
	return g
}
