package graphio

import (
	"congestapsp/internal/frame"
)

// This file is graphio's surface over the framed-record codec underneath
// the serving layer's write-ahead journal and checkpoint snapshots
// (internal/serve, DESIGN.md §12). The codec itself lives in
// internal/frame — a leaf package, because the tiled matrix backend
// (internal/mat) spills tiles through the same framing and mat sits below
// graph, which graphio depends on. The wrappers here keep the serving
// layer's import graph unchanged.

// MaxFramePayload caps a single frame's payload (64 MiB). The bound turns
// a corrupt or hostile length word into ErrTornFrame instead of an
// attempted multi-gigabyte allocation.
const MaxFramePayload = frame.MaxPayload

// frameHeaderSize is the fixed per-frame overhead (length + CRC words).
const frameHeaderSize = frame.HeaderSize

// ErrTornFrame reports a frame that does not parse: truncated mid-header
// or mid-payload (the torn tail a crash leaves), an implausible length, or
// a payload failing its checksum. Everything before the torn frame is
// intact; recovery truncates the file there and carries on.
var ErrTornFrame = frame.ErrTorn

// AppendFrame appends the framed form of payload to dst and returns the
// extended slice (append-style). The frame is laid out contiguously so a
// caller can hand it to a single Write call — the property that bounds
// crash damage to one torn tail frame.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	return frame.Append(dst, payload)
}

// NextFrame parses the first frame in data. It returns the payload
// (aliasing data — copy it to retain past the buffer's lifetime) and the
// total encoded size consumed. An empty input returns io.EOF (the clean
// end of a well-formed stream); anything else that does not parse returns
// ErrTornFrame.
func NextFrame(data []byte) (payload []byte, n int, err error) {
	return frame.Next(data)
}
