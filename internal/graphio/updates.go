package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the update-stream format: a newline-delimited list of graph
// mutations consumed by apsp.Runner.ApplyUpdates (the `apsp -update` flag).
// One update per line, '#'-prefixed comments and blank lines ignored:
//
//	w u v weight    set the weight of the first existing u-v edge
//	a u v weight    insert a new u->v edge
//	d u v           delete the first existing u-v edge
//
// Endpoints are 0-indexed vertex ids. The reader validates shape, bounds
// and weights with line-numbered errors; existence of the named edges is
// the applier's concern (it depends on the graph the stream is applied to).

// UpdateKind selects what one Update line does.
type UpdateKind int

const (
	UpdateSetWeight UpdateKind = iota
	UpdateInsert
	UpdateDelete
)

// Update is one parsed update-stream line.
type Update struct {
	Kind UpdateKind
	U, V int
	W    int64 // meaningless for UpdateDelete
}

// ReadUpdates parses an update stream. Errors carry 1-based line numbers.
// The stream length is capped like edge lists (updates accumulate in
// memory), and every weight obeys the same bound the graph readers enforce.
func ReadUpdates(r io.Reader) ([]Update, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var ups []Update
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if len(ups) >= maxEdges {
			return nil, fmt.Errorf("updates line %d: more than %d updates", line, maxEdges)
		}
		fields := strings.Fields(text)
		var (
			up      Update
			withW   bool
			wantLen int
		)
		switch fields[0] {
		case "w":
			up.Kind, withW, wantLen = UpdateSetWeight, true, 4
		case "a":
			up.Kind, withW, wantLen = UpdateInsert, true, 4
		case "d":
			up.Kind, withW, wantLen = UpdateDelete, false, 3
		default:
			return nil, fmt.Errorf("updates line %d: unknown op %q (want w, a or d)", line, fields[0])
		}
		if len(fields) != wantLen {
			return nil, fmt.Errorf("updates line %d: malformed update %q (want %q)",
				line, text, map[bool]string{true: fields[0] + " u v weight", false: "d u v"}[withW])
		}
		u, err1 := strconv.Atoi(fields[1])
		v, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("updates line %d: bad vertex id in %q", line, text)
		}
		if u < 0 || v < 0 || u >= maxVertices || v >= maxVertices {
			return nil, fmt.Errorf("updates line %d: vertex id out of range in %q (max %d)", line, text, maxVertices-1)
		}
		up.U, up.V = u, v
		if withW {
			w, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("updates line %d: bad weight in %q", line, text)
			}
			if w < 0 {
				return nil, fmt.Errorf("updates line %d: negative weight in %q", line, text)
			}
			if err := checkWeight(w); err != nil {
				return nil, fmt.Errorf("updates line %d: %w", line, err)
			}
			up.W = w
		}
		ups = append(ups, up)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ups, nil
}

// WriteUpdates emits the stream form of ups — the fixed point ReadUpdates
// parses back verbatim.
func WriteUpdates(w io.Writer, ups []Update) error {
	bw := bufio.NewWriter(w)
	for _, up := range ups {
		switch up.Kind {
		case UpdateSetWeight:
			fmt.Fprintf(bw, "w %d %d %d\n", up.U, up.V, up.W)
		case UpdateInsert:
			fmt.Fprintf(bw, "a %d %d %d\n", up.U, up.V, up.W)
		case UpdateDelete:
			fmt.Fprintf(bw, "d %d %d\n", up.U, up.V)
		default:
			return fmt.Errorf("updates: unknown kind %d", int(up.Kind))
		}
	}
	return bw.Flush()
}
