package graphio

import (
	"bytes"
	"reflect"
	"testing"

	"congestapsp/internal/graph"
)

// fuzzRoundTrip is the shared property both text-reader fuzz targets pin:
// any stream a reader accepts must survive a write→read→write cycle with
// the graph (vertex count, directedness, ordered edge list) unchanged and
// the second serialization byte-identical to the first — the package's
// load→save→load contract, exercised on adversarial rather than
// generator-produced inputs.
func fuzzRoundTrip(t *testing.T, data []byte, f Format) {
	// Lower the reader caps for this input: a fuzz-generated header may
	// declare any vertex count up to the real 2^28 cap, and the reader's
	// by-design O(n) allocation at that scale OOM-kills the fuzz worker
	// before any property is checked.
	defer func(v, e int) { maxVertices, maxEdges = v, e }(maxVertices, maxEdges)
	maxVertices, maxEdges = 1<<16, 1<<16

	g, err := Read(bytes.NewReader(data), f)
	if err != nil {
		return // invalid input rejected with an error: the other contract
	}
	var first bytes.Buffer
	if err := Write(&first, g, f); err != nil {
		t.Fatalf("accepted graph does not serialize: %v", err)
	}
	g2, err := Read(bytes.NewReader(first.Bytes()), f)
	if err != nil {
		t.Fatalf("written stream does not read back: %v\n%q", err, first.String())
	}
	if g2.N != g.N || g2.Directed != g.Directed || !reflect.DeepEqual(g2.Edges(), g.Edges()) {
		t.Fatalf("round trip changed the graph:\n  read:   n=%d directed=%v edges=%v\n  reread: n=%d directed=%v edges=%v",
			g.N, g.Directed, g.Edges(), g2.N, g2.Directed, g2.Edges())
	}
	var second bytes.Buffer
	if err := Write(&second, g2, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("serialization is not a fixed point:\n  first:  %q\n  second: %q", first.String(), second.String())
	}
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add([]byte("p sp 3 2\na 1 2 5\na 2 3 7\n"))
	f.Add([]byte("c congestapsp undirected\np sp 2 1\na 1 2 1\n"))
	f.Add([]byte("c comment\np sp 4 0\n"))
	f.Add([]byte("p sp 3 2\na 1 2 5\n"))         // arc-count mismatch
	f.Add([]byte("a 1 2 5\n"))                   // arc before header
	f.Add([]byte("p sp 3 1\na 1 1 5\n"))         // self-loop
	f.Add([]byte("p sp 3 1\na 1 2 -5\n"))        // negative weight
	f.Add([]byte("p sp 999999999999999999 1\n")) // vertex-count overflow
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRoundTrip(t, data, FormatDIMACS)
	})
}

func FuzzReadTSV(f *testing.F) {
	f.Add([]byte("0 1 5\n1 2 7\n"))
	f.Add([]byte("# congestapsp n=3 directed=false\n0 1 5\n1 2 7\n"))
	f.Add([]byte("# congestapsp n=4 directed=true\n"))
	f.Add([]byte("0 0 5\n"))                                   // self-loop
	f.Add([]byte("0 1 -5\n"))                                  // negative weight
	f.Add([]byte("0 1\n"))                                     // short record
	f.Add([]byte("0 1 5 9\n"))                                 // long record
	f.Add([]byte("# congestapsp n=2 directed=false\n0 5 1\n")) // vertex out of range
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRoundTrip(t, data, FormatTSV)
	})
}

// FuzzParseUpdates pins the update-stream contract on adversarial inputs:
// any stream ReadUpdates accepts must survive a write→read→write cycle
// unchanged, with the second serialization byte-identical to the first —
// the same load→save→load property the graph readers hold.
func FuzzParseUpdates(f *testing.F) {
	f.Add([]byte("w 0 1 5\na 2 3 7\nd 1 2\n"))
	f.Add([]byte("# comment\n\nw 0 1 0\n"))
	f.Add([]byte("d 0 1\n"))
	f.Add([]byte("x 0 1 5\n"))                  // unknown op
	f.Add([]byte("w 0 1\n"))                    // short record
	f.Add([]byte("d 0 1 5\n"))                  // long record
	f.Add([]byte("w 0 1 -5\n"))                 // negative weight
	f.Add([]byte("w -1 1 5\n"))                 // negative vertex id
	f.Add([]byte("a 999999999999999999 0 1\n")) // id overflow
	f.Fuzz(func(t *testing.T, data []byte) {
		defer func(v, e int) { maxVertices, maxEdges = v, e }(maxVertices, maxEdges)
		maxVertices, maxEdges = 1<<16, 1<<16

		ups, err := ReadUpdates(bytes.NewReader(data))
		if err != nil {
			return // invalid input rejected with an error: the other contract
		}
		var first bytes.Buffer
		if err := WriteUpdates(&first, ups); err != nil {
			t.Fatalf("accepted stream does not serialize: %v", err)
		}
		back, err := ReadUpdates(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("written stream does not read back: %v\n%q", err, first.String())
		}
		if !reflect.DeepEqual(back, ups) {
			t.Fatalf("round trip changed the stream:\n  read:   %+v\n  reread: %+v", ups, back)
		}
		var second bytes.Buffer
		if err := WriteUpdates(&second, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization is not a fixed point:\n  first:  %q\n  second: %q", first.String(), second.String())
		}
	})
}

// FuzzScenarioGraphBuild guards the workload generators behind the corpus
// names: every accepted (family, n, seed) cell must build a valid graph
// (validated invariants, no panic) at fuzz-chosen sizes within the corpus
// range. It complements FuzzParseScenario in pkg/apsp, which owns the
// name-string round trip.
func FuzzScenarioGraphBuild(f *testing.F) {
	f.Add(8, int64(1))
	f.Add(17, int64(-3))
	f.Add(2, int64(0))
	f.Fuzz(func(t *testing.T, n int, seed int64) {
		if n < 2 || n > 128 {
			return // generator cost grows superlinearly; the corpus range suffices
		}
		g := graph.RandomConnected(graph.GenConfig{N: n, Seed: seed, MaxWeight: 50}, 4*n)
		if err := g.Validate(); err != nil {
			t.Fatalf("RandomConnected(n=%d, seed=%d) built an invalid graph: %v", n, seed, err)
		}
	})
}
