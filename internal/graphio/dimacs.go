package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"congestapsp/internal/graph"
)

// undirectedMarker is the comment the DIMACS writer emits (before the
// problem line) for undirected graphs. Plain DIMACS .gr files describe
// directed arcs, so files without the marker read back as directed.
const undirectedMarker = "congestapsp undirected"

// readDIMACS streams a DIMACS shortest-path file: "c" comment lines, one
// "p sp <n> <m>" problem line, then <m> "a <u> <v> <w>" arc lines with
// 1-indexed endpoints.
func readDIMACS(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var g *graph.Graph
	directed := true
	declaredM := -1
	arcs := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "c":
			// Exactly the marker comment the writer emits — a comment
			// merely *mentioning* the phrase must not flip directedness.
			if len(fields) == 3 && fields[1]+" "+fields[2] == undirectedMarker {
				if g != nil {
					return nil, fmt.Errorf("dimacs line %d: %q marker must precede the p line", line, undirectedMarker)
				}
				directed = false
			}
		case "p":
			if g != nil {
				return nil, fmt.Errorf("dimacs line %d: duplicate problem line", line)
			}
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line %q (want \"p sp <n> <m>\")", line, text)
			}
			n, err1 := strconv.Atoi(fields[2])
			m, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || n < 0 || m < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad problem-line counts %q", line, text)
			}
			if n > maxVertices {
				return nil, fmt.Errorf("dimacs line %d: implausible vertex count %d (max %d)", line, n, maxVertices)
			}
			if m > maxEdges {
				return nil, fmt.Errorf("dimacs line %d: implausible arc count %d (max %d)", line, m, maxEdges)
			}
			g = graph.New(n, directed)
			declaredM = m
		case "a":
			if g == nil {
				return nil, fmt.Errorf("dimacs line %d: arc before problem line", line)
			}
			if arcs >= declaredM {
				// Fail at the first excess arc: a corrupt file must not
				// stream unbounded edges into memory before the EOF
				// count check.
				return nil, fmt.Errorf("dimacs line %d: more arcs than the declared %d", line, declaredM)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("dimacs line %d: malformed arc %q (want \"a <u> <v> <w>\")", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dimacs line %d: bad arc %q", line, text)
			}
			if err := checkWeight(w); err != nil {
				return nil, fmt.Errorf("dimacs line %d: %w", line, err)
			}
			if err := g.AddEdge(u-1, v-1, w); err != nil {
				return nil, fmt.Errorf("dimacs line %d: %w", line, err)
			}
			arcs++
		default:
			return nil, fmt.Errorf("dimacs line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dimacs: no problem line")
	}
	if arcs != declaredM {
		return nil, fmt.Errorf("dimacs: problem line declares %d arcs, file has %d", declaredM, arcs)
	}
	return g, nil
}

// writeDIMACS emits g in DIMACS .gr form, edges in insertion order.
func writeDIMACS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if !g.Directed {
		fmt.Fprintf(bw, "c %s\n", undirectedMarker)
	}
	fmt.Fprintf(bw, "p sp %d %d\n", g.N, g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "a %d %d %d\n", e.U+1, e.V+1, e.W)
	}
	return bw.Flush()
}
