package graphio

import (
	"fmt"
	"os"
	"path/filepath"
)

// SyncDir fsyncs a directory, making its entries (renames, creates,
// unlinks) durable. POSIX rename is atomic with respect to concurrent
// observers but says nothing about power loss: the new directory entry
// lives in the page cache until the directory inode itself is synced, so
// the temp+rename pattern is only crash-durable when followed by a parent
// fsync. Exported for the serving layer's journal/checkpoint writers,
// which share this discipline.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("graphio: fsync %s: %w", dir, err)
	}
	return d.Close()
}

// WriteFileAtomic lands data at path via a temporary file in the same
// directory plus a rename — the Save pattern, exported for artifact writers
// (EXPERIMENTS.json, benchmark reports, checkpoint snapshots) whose partial
// flushes must replace the destination completely or not at all, never
// leave it torn. The temp file is fsynced before the rename and the parent
// directory after it, so the swap is durable, not merely atomic: after a
// power loss the destination holds either the old bytes or the new bytes,
// never a mix and never a successfully-renamed-but-empty file.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".graphio-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%s: %w", path, err)
	}
	// CreateTemp hardcodes 0600. Preserve an existing destination's
	// permissions (overwriting must neither widen nor narrow them);
	// otherwise use the conventional data-file mode.
	mode := os.FileMode(0o644)
	if info, statErr := os.Stat(path); statErr == nil {
		mode = info.Mode().Perm()
	}
	if err := os.Chmod(tmp.Name(), mode); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return SyncDir(filepath.Dir(path))
}
