package graphio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic lands data at path via a temporary file in the same
// directory plus a rename — the Save pattern, exported for artifact writers
// (EXPERIMENTS.json, benchmark reports) whose partial flushes on SIGINT must
// replace the destination completely or not at all, never leave it torn.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".graphio-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%s: %w", path, err)
	}
	// CreateTemp hardcodes 0600. Preserve an existing destination's
	// permissions (overwriting must neither widen nor narrow them);
	// otherwise use the conventional data-file mode.
	mode := os.FileMode(0o644)
	if info, statErr := os.Stat(path); statErr == nil {
		mode = info.Mode().Perm()
	}
	if err := os.Chmod(tmp.Name(), mode); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
