package graphio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReadUpdates(t *testing.T) {
	in := "# comment\n\nw 0 1 5\na 2 3 7\nd 1 2\n  w 4 5 0  \n"
	got, err := ReadUpdates(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Update{
		{Kind: UpdateSetWeight, U: 0, V: 1, W: 5},
		{Kind: UpdateInsert, U: 2, V: 3, W: 7},
		{Kind: UpdateDelete, U: 1, V: 2},
		{Kind: UpdateSetWeight, U: 4, V: 5, W: 0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestReadUpdatesErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"unknown-op", "x 0 1 5\n", "line 1: unknown op"},
		{"short-w", "w 0 1\n", "line 1: malformed update"},
		{"long-d", "d 0 1 5\n", "line 1: malformed update"},
		{"bad-id", "w zero 1 5\n", "line 1: bad vertex id"},
		{"neg-id", "w -1 1 5\n", "line 1: vertex id out of range"},
		{"bad-weight", "w 0 1 five\n", "line 1: bad weight"},
		{"neg-weight", "w 0 1 -5\n", "line 1: negative weight"},
		{"later-line", "w 0 1 5\nd 0\n", "line 2: malformed update"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadUpdates(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantSub)
			}
		})
	}
}

func TestWriteUpdatesRoundTrip(t *testing.T) {
	ups := []Update{
		{Kind: UpdateSetWeight, U: 0, V: 1, W: 5},
		{Kind: UpdateInsert, U: 2, V: 3, W: 7},
		{Kind: UpdateDelete, U: 1, V: 2},
	}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUpdates(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ups) {
		t.Fatalf("round trip changed the stream: %+v != %+v", back, ups)
	}
}
