package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"congestapsp/internal/graph"
)

// TSVHeaderPrefix introduces the metadata header the TSV writer emits.
// Files without it are accepted (plain edge lists are common in the wild):
// n is then inferred as maxID+1 and the graph defaults to undirected —
// Meta.SelfDescribed reports which case a read hit.
const TSVHeaderPrefix = "# congestapsp"

// readTSV streams a whitespace-separated edge list: "u v w" per line with
// 0-indexed endpoints, '#'-prefixed comments, and an optional
// "# congestapsp n=<n> directed=<bool>" metadata header (which may follow
// plain comments but must precede the first edge). hasHeader reports
// whether the header was present — i.e. whether the file's directedness
// is self-described rather than the headerless default.
func readTSV(r io.Reader) (g *graph.Graph, hasHeader bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	// Headerless fallback: buffer edges (with their source lines for
	// error reporting) until EOF fixes n.
	type edge struct {
		u, v, line int
		w          int64
	}
	var pending []edge
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if isTSVHeader(text) {
				if hasHeader || maxID >= 0 {
					return nil, false, fmt.Errorf("tsv line %d: metadata header must be the first record", line)
				}
				n, directed, err := parseTSVHeader(text)
				if err != nil {
					return nil, false, fmt.Errorf("tsv line %d: %w", line, err)
				}
				g = graph.New(n, directed)
				hasHeader = true
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, false, fmt.Errorf("tsv line %d: malformed edge %q (want \"u v w\")", line, text)
		}
		if (g != nil && g.M() >= maxEdges) || len(pending) >= maxEdges {
			return nil, false, fmt.Errorf("tsv line %d: more than %d edges", line, maxEdges)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		w, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, false, fmt.Errorf("tsv line %d: bad edge %q", line, text)
		}
		if err := checkWeight(w); err != nil {
			return nil, false, fmt.Errorf("tsv line %d: %w", line, err)
		}
		if g != nil {
			if err := g.AddEdge(u, v, w); err != nil {
				return nil, false, fmt.Errorf("tsv line %d: %w", line, err)
			}
			continue
		}
		if u < 0 || v < 0 {
			return nil, false, fmt.Errorf("tsv line %d: negative vertex id in %q", line, text)
		}
		if u >= maxVertices || v >= maxVertices {
			// Headerless n is inferred as maxID+1, so the id bound IS the
			// vertex-count bound here.
			return nil, false, fmt.Errorf("tsv line %d: implausible vertex id in %q (max %d)", line, text, maxVertices-1)
		}
		pending = append(pending, edge{u: u, v: v, line: line, w: w})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, false, err
	}
	if g == nil {
		g = graph.New(maxID+1, false)
		for _, e := range pending {
			if err := g.AddEdge(e.u, e.v, e.w); err != nil {
				return nil, false, fmt.Errorf("tsv line %d: %w", e.line, err)
			}
		}
	}
	return g, hasHeader, nil
}

// isTSVHeader recognizes the metadata header by its exact "congestapsp"
// token (with or without a space after '#' — hand-authored headers drop
// it) plus at least one metadata field — a comment that merely mentions
// the word (or a foreign "congestapspX" token) stays a plain comment
// rather than hijacking or failing the parse.
func isTSVHeader(text string) bool {
	fields := strings.Fields(text)
	var rest []string
	switch {
	case len(fields) >= 2 && fields[0] == "#" && fields[1] == "congestapsp":
		rest = fields[2:]
	case len(fields) >= 1 && fields[0] == "#congestapsp":
		rest = fields[1:]
	default:
		return false
	}
	for _, f := range rest {
		if strings.HasPrefix(f, "n=") || strings.HasPrefix(f, "directed=") {
			return true
		}
	}
	return false
}

func parseTSVHeader(text string) (n int, directed bool, err error) {
	n = -1
	for _, field := range strings.Fields(strings.TrimPrefix(text, "#")) {
		switch {
		case field == "congestapsp":
			// the marker token itself
		case strings.HasPrefix(field, "n="):
			n, err = strconv.Atoi(field[2:])
			if err != nil || n < 0 {
				return 0, false, fmt.Errorf("bad header field %q", field)
			}
			if n > maxVertices {
				return 0, false, fmt.Errorf("implausible vertex count %d (max %d)", n, maxVertices)
			}
		case strings.HasPrefix(field, "directed="):
			directed, err = strconv.ParseBool(field[len("directed="):])
			if err != nil {
				return 0, false, fmt.Errorf("bad header field %q", field)
			}
		default:
			// This package is the header's only writer, so an unknown
			// key is always a mistake (e.g. a typo'd "direction=") that
			// would otherwise silently change graph semantics.
			return 0, false, fmt.Errorf("unknown header field %q", field)
		}
	}
	if n < 0 {
		return 0, false, fmt.Errorf("header %q missing n=<count>", text)
	}
	return n, directed, nil
}

// writeTSV emits g as a tab-separated edge list preceded by the metadata
// header, edges in insertion order.
func writeTSV(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s n=%d directed=%v\n", TSVHeaderPrefix, g.N, g.Directed)
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d\t%d\t%d\n", e.U, e.V, e.W)
	}
	return bw.Flush()
}
