package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xAB}, 1<<16),
		{0x00},
	}
	var buf []byte
	for _, p := range payloads {
		var err error
		if buf, err = AppendFrame(buf, p); err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i, want := range payloads {
		got, n, err := NextFrame(buf[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
		if n != frameHeaderSize+len(want) {
			t.Fatalf("frame %d: consumed %d, want %d", i, n, frameHeaderSize+len(want))
		}
		off += n
	}
	if _, _, err := NextFrame(buf[off:]); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}
}

func TestFrameOversizedPayloadRejected(t *testing.T) {
	big := make([]byte, MaxFramePayload+1)
	if _, err := AppendFrame(nil, big); err == nil {
		t.Fatal("AppendFrame accepted an over-cap payload")
	}
}

// TestFrameTornVariants checks that every way a crash can damage the final
// frame — truncation at any byte boundary, a flipped payload bit, an
// implausible length word — reads back as ErrTornFrame, never a bogus
// payload and never a panic.
func TestFrameTornVariants(t *testing.T) {
	frame, err := AppendFrame(nil, []byte("journal record"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		if _, _, err := NextFrame(frame[:cut]); !errors.Is(err, ErrTornFrame) {
			t.Fatalf("truncation at %d: got %v, want ErrTornFrame", cut, err)
		}
	}
	for i := range frame {
		corrupt := bytes.Clone(frame)
		corrupt[i] ^= 0x01
		payload, _, err := NextFrame(corrupt)
		if err == nil && !bytes.Equal(payload, []byte("journal record")) {
			t.Fatalf("bit flip at %d: accepted altered payload %q", i, payload)
		}
		if err != nil && !errors.Is(err, ErrTornFrame) {
			t.Fatalf("bit flip at %d: got %v, want ErrTornFrame", i, err)
		}
	}
	var huge [frameHeaderSize]byte
	binary.BigEndian.PutUint32(huge[0:4], MaxFramePayload+1)
	if _, _, err := NextFrame(huge[:]); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("over-cap length: got %v, want ErrTornFrame", err)
	}
}
