package graphio

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"congestapsp/internal/graph"
)

// corpus returns representative graphs: directed and undirected, zero
// weights, heavy-tailed degrees, a single-edge graph.
func corpus() map[string]*graph.Graph {
	tiny := graph.New(2, false)
	tiny.MustAddEdge(0, 1, 42)
	return map[string]*graph.Graph{
		"undirected-random": graph.RandomConnected(graph.GenConfig{N: 40, Seed: 3, MaxWeight: 50}, 160),
		"directed-random":   graph.RandomConnected(graph.GenConfig{N: 30, Directed: true, Seed: 4, MaxWeight: 9}, 120),
		"zero-weights":      graph.ZeroWeightMix(graph.GenConfig{N: 25, Seed: 5, MaxWeight: 7}, 80),
		"powerlaw":          graph.PowerLaw(graph.GenConfig{N: 50, Seed: 6, MaxWeight: 100}, 3),
		"tiny":              tiny,
	}
}

func graphsEqual(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.N != b.N || a.Directed != b.Directed || a.M() != b.M() {
		t.Fatalf("shape differs: (n=%d directed=%v m=%d) vs (n=%d directed=%v m=%d)",
			a.N, a.Directed, a.M(), b.N, b.Directed, b.M())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

// TestRoundTrip: for every corpus graph and format, write→read must
// reproduce the graph exactly, and a second write must reproduce the first
// byte stream exactly (the bit-identical round-trip guarantee).
func TestRoundTrip(t *testing.T) {
	for name, g := range corpus() {
		for _, f := range []Format{FormatDIMACS, FormatTSV, FormatGob} {
			t.Run(name+"/"+f.String(), func(t *testing.T) {
				var first bytes.Buffer
				if err := Write(&first, g, f); err != nil {
					t.Fatal(err)
				}
				got, err := Read(bytes.NewReader(first.Bytes()), f)
				if err != nil {
					t.Fatal(err)
				}
				graphsEqual(t, g, got)
				var second bytes.Buffer
				if err := Write(&second, got, f); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(first.Bytes(), second.Bytes()) {
					t.Fatalf("second serialization differs from first (%d vs %d bytes)",
						first.Len(), second.Len())
				}
			})
		}
	}
}

func TestLoadSaveFiles(t *testing.T) {
	dir := t.TempDir()
	g := graph.RandomConnected(graph.GenConfig{N: 20, Seed: 9, MaxWeight: 30}, 60)
	for _, ext := range []string{".gr", ".tsv", ".gob"} {
		path := filepath.Join(dir, "g"+ext)
		if err := Save(path, g); err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		graphsEqual(t, g, got)
	}
}

func TestDetectFormat(t *testing.T) {
	cases := map[string]Format{
		"a.gr": FormatDIMACS, "b.DIMACS": FormatDIMACS,
		"c.tsv": FormatTSV, "d.txt": FormatTSV, "e.el": FormatTSV, "f.edges": FormatTSV,
		"g.gob": FormatGob, "h.snap": FormatGob,
	}
	for path, want := range cases {
		got, err := DetectFormat(path)
		if err != nil || got != want {
			t.Fatalf("DetectFormat(%q) = %v, %v; want %v", path, got, err, want)
		}
	}
	if _, err := DetectFormat("graph.xyz"); err == nil {
		t.Fatal("unknown extension accepted")
	}
}

// TestHeaderlessTSV: plain edge lists (no metadata header) infer n from
// the max id and default to undirected.
func TestHeaderlessTSV(t *testing.T) {
	in := "# a comment\n0 1 5\n1 2 3\n\n2 0 1\n"
	g, err := Read(strings.NewReader(in), FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.Directed || g.M() != 3 {
		t.Fatalf("got n=%d directed=%v m=%d", g.N, g.Directed, g.M())
	}
}

// TestTSVHeaderAfterComments: the metadata header may follow plain
// comment lines (it must only precede the first edge).
func TestTSVHeaderAfterComments(t *testing.T) {
	in := "# exported by tool\n# congestapsp n=5 directed=true\n0 1 2\n"
	g, err := Read(strings.NewReader(in), FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 5 || !g.Directed || g.M() != 1 {
		t.Fatalf("got n=%d directed=%v m=%d", g.N, g.Directed, g.M())
	}
}

func TestReadWithMetaSelfDescribed(t *testing.T) {
	cases := []struct {
		format Format
		input  string
		want   bool
	}{
		{FormatTSV, "# congestapsp n=3 directed=true\n0 1 2\n", true},
		{FormatTSV, "# exported\n# congestapsp n=3 directed=true\n0 1 2\n", true},
		{FormatTSV, "#congestapsp n=3 directed=true\n0 1 2\n", true},
		{FormatTSV, "# just a comment\n0 1 2\n", false},
		{FormatTSV, "# congestapsp edge list exported 2026\n0 1 2\n", false},
		{FormatTSV, "# congestapspX n=3 directed=false\n0 1 2\n", false},
		{FormatTSV, "0 1 2\n", false},
		{FormatDIMACS, "p sp 3 1\na 1 2 4\n", true},
	}
	for _, tc := range cases {
		_, meta, err := ReadWithMeta(strings.NewReader(tc.input), tc.format)
		if err != nil || meta.SelfDescribed != tc.want {
			t.Fatalf("ReadWithMeta(%q, %v) meta=%+v err=%v; want SelfDescribed=%v",
				tc.input, tc.format, meta, err, tc.want)
		}
	}
}

// TestPlainDIMACSIsDirected: files without the undirected marker read as
// directed arc lists (standard DIMACS semantics).
func TestPlainDIMACSIsDirected(t *testing.T) {
	in := "c road network\np sp 3 2\na 1 2 10\na 2 3 4\n"
	g, err := Read(strings.NewReader(in), FormatDIMACS)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed || g.N != 3 || g.M() != 2 {
		t.Fatalf("got n=%d directed=%v m=%d", g.N, g.Directed, g.M())
	}
	if e := g.Edges()[0]; e.U != 0 || e.V != 1 || e.W != 10 {
		t.Fatalf("1-indexed conversion broken: %+v", e)
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		input  string
		substr string // expected error fragment
	}{
		{"dimacs-no-p-line", FormatDIMACS, "c only comments\n", "no problem line"},
		{"dimacs-arc-before-p", FormatDIMACS, "a 1 2 3\np sp 2 1\n", "arc before problem line"},
		{"dimacs-duplicate-p", FormatDIMACS, "p sp 2 1\np sp 2 1\na 1 2 3\n", "duplicate problem line"},
		{"dimacs-count-mismatch", FormatDIMACS, "p sp 2 2\na 1 2 3\n", "declares 2 arcs, file has 1"},
		{"dimacs-excess-arcs", FormatDIMACS, "p sp 2 1\na 1 2 3\na 2 1 3\n", "more arcs than the declared 1"},
		{"dimacs-out-of-range", FormatDIMACS, "p sp 2 1\na 1 5 3\n", "out of range"},
		{"dimacs-self-loop", FormatDIMACS, "p sp 2 1\na 1 1 3\n", "self-loop"},
		{"dimacs-negative-weight", FormatDIMACS, "p sp 2 1\na 1 2 -3\n", "negative weight"},
		{"dimacs-bad-arc", FormatDIMACS, "p sp 2 1\na 1 two 3\n", "bad arc"},
		{"dimacs-short-arc", FormatDIMACS, "p sp 2 1\na 1 2\n", "malformed arc"},
		{"dimacs-unknown-record", FormatDIMACS, "p sp 2 1\nz 1 2 3\n", "unknown record"},
		{"dimacs-bad-p", FormatDIMACS, "p max 2 1\n", "malformed problem line"},
		{"dimacs-huge-n", FormatDIMACS, "p sp 9000000000000000000 0\n", "implausible vertex count"},
		{"dimacs-overflow-n", FormatDIMACS, "p sp 99999999999999999999 0\n", "bad problem-line counts"},
		{"dimacs-implausible-n", FormatDIMACS, "p sp 999999999 0\n", "implausible vertex count"},
		{"tsv-implausible-n", FormatTSV, "# congestapsp n=999999999 directed=false\n", "implausible vertex count"},
		{"tsv-headerless-implausible-id", FormatTSV, "0 999999999 1\n", "implausible vertex id"},
		{"dimacs-late-marker", FormatDIMACS, "p sp 2 1\nc congestapsp undirected\na 1 2 3\n", "must precede"},
		{"tsv-short-line", FormatTSV, "0 1\n", "malformed edge"},
		{"tsv-headerless-late-self-loop", FormatTSV, "# comment\n0 1 2\n\n3 3 1\n", "tsv line 4"},
		{"tsv-bad-weight", FormatTSV, "0 1 x\n", "bad edge"},
		{"tsv-self-loop", FormatTSV, "# congestapsp n=2 directed=false\n0 0 1\n", "self-loop"},
		{"tsv-out-of-range", FormatTSV, "# congestapsp n=2 directed=false\n0 7 1\n", "out of range"},
		{"tsv-negative-id", FormatTSV, "-1 1 1\n", "negative vertex id"},
		{"tsv-late-header", FormatTSV, "0 1 1\n# congestapsp n=2 directed=false\n", "first record"},
		{"tsv-bad-header-n", FormatTSV, "# congestapsp n=x directed=false\n", "bad header field"},
		{"tsv-header-missing-n", FormatTSV, "# congestapsp directed=false\n", "missing n="},
		{"tsv-header-typo-field", FormatTSV, "# congestapsp n=4 direction=true\n0 1 2\n", "unknown header field"},
		{"gob-garbage", FormatGob, "this is not gob", "gob"},
		{"dimacs-overflow-weight", FormatDIMACS, "p sp 2 1\na 1 2 4611686018427387904\n", "exceeds the supported maximum"},
		{"dimacs-implausible-m", FormatDIMACS, "p sp 4 999999999999\n", "implausible arc count"},
		{"tsv-overflow-weight", FormatTSV, "0 1 4611686018427387904\n", "exceeds the supported maximum"},
		{"tsv-near-header-rejected-fields", FormatTSV, "# congestapsp n=x directed=false\n0 1 2\n", "bad header field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.input), tc.format)
			if err == nil {
				t.Fatalf("malformed input accepted")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
}

// TestGobVersionGuard: a snapshot with a foreign version must be rejected.
func TestGobVersionGuard(t *testing.T) {
	g := graph.New(2, false)
	g.MustAddEdge(0, 1, 1)
	var buf bytes.Buffer
	if err := Write(&buf, g, FormatGob); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version by decoding into the raw struct.
	var snap gobSnapshot
	if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = snapshotVersion + 1
	var tampered bytes.Buffer
	if err := gob.NewEncoder(&tampered).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&tampered, FormatGob); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("tampered version accepted: %v", err)
	}
}

func TestGobRaggedColumns(t *testing.T) {
	snap := gobSnapshot{Version: snapshotVersion, N: 3, U: []int32{0}, V: []int32{1, 2}, W: []int64{1}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf, FormatGob); err == nil || !strings.Contains(err.Error(), "ragged") {
		t.Fatalf("ragged columns accepted: %v", err)
	}
}

// TestGobImplausibleN: a corrupt vertex count must error, not abort on
// allocation.
func TestGobImplausibleN(t *testing.T) {
	snap := gobSnapshot{Version: snapshotVersion, N: 1 << 40}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf, FormatGob); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("implausible N accepted: %v", err)
	}
}

// TestTSVNearMissComments: comments that merely mention the tool name
// stay comments — the file parses headerless.
func TestTSVNearMissComments(t *testing.T) {
	in := "# congestapsp edge list exported 2026\n0 1 2\n"
	g, err := Read(strings.NewReader(in), FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 || g.Directed || g.M() != 1 {
		t.Fatalf("got n=%d directed=%v m=%d", g.N, g.Directed, g.M())
	}
}

// TestSavePreservesMode: overwriting an existing file keeps its
// permissions; fresh files get the conventional 0644.
func TestSavePreservesMode(t *testing.T) {
	dir := t.TempDir()
	g := graph.New(2, false)
	g.MustAddEdge(0, 1, 3)
	private := filepath.Join(dir, "private.tsv")
	if err := os.WriteFile(private, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := Save(private, g); err != nil {
		t.Fatal(err)
	}
	if info, _ := os.Stat(private); info.Mode().Perm() != 0o600 {
		t.Fatalf("existing 0600 file widened to %v", info.Mode().Perm())
	}
	fresh := filepath.Join(dir, "fresh.tsv")
	if err := Save(fresh, g); err != nil {
		t.Fatal(err)
	}
	if info, _ := os.Stat(fresh); info.Mode().Perm() != 0o644 {
		t.Fatalf("fresh file mode %v, want 0644", info.Mode().Perm())
	}
}
