package graphio

import (
	"encoding/gob"
	"fmt"
	"io"

	"congestapsp/internal/graph"
)

// snapshotVersion guards against decoding snapshots written by an
// incompatible layout; bump it when gobSnapshot changes.
const snapshotVersion = 1

// gobSnapshot is the compact columnar on-disk form: int32 endpoint columns
// plus an int64 weight column, ~16 bytes/edge before gob framing.
type gobSnapshot struct {
	Version  int
	N        int
	Directed bool
	U, V     []int32
	W        []int64
}

// readGob decodes a snapshot and rebuilds the graph through the same
// validation path as the text readers (range, self-loop, weight checks).
func readGob(r io.Reader) (*graph.Graph, error) {
	var snap gobSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("gob: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("gob: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.N < 0 || snap.N > maxVertices {
		// The upper bound turns a corrupt/hostile N (graph.New allocates
		// O(N)) into a validation error instead of an out-of-memory abort.
		return nil, fmt.Errorf("gob: implausible vertex count %d (max %d)", snap.N, maxVertices)
	}
	if len(snap.U) != len(snap.V) || len(snap.U) != len(snap.W) {
		return nil, fmt.Errorf("gob: ragged edge columns (%d/%d/%d)", len(snap.U), len(snap.V), len(snap.W))
	}
	if len(snap.U) > maxEdges {
		return nil, fmt.Errorf("gob: implausible edge count %d (max %d)", len(snap.U), maxEdges)
	}
	g := graph.New(snap.N, snap.Directed)
	for i := range snap.U {
		if err := checkWeight(snap.W[i]); err != nil {
			return nil, fmt.Errorf("gob edge %d: %w", i, err)
		}
		if err := g.AddEdge(int(snap.U[i]), int(snap.V[i]), snap.W[i]); err != nil {
			return nil, fmt.Errorf("gob edge %d: %w", i, err)
		}
	}
	return g, nil
}

// writeGob encodes g as a snapshot, edges in insertion order.
func writeGob(w io.Writer, g *graph.Graph) error {
	if g.N > maxVertices {
		return fmt.Errorf("gob: %d vertices exceed the snapshot cap %d", g.N, maxVertices)
	}
	edges := g.Edges()
	snap := gobSnapshot{
		Version:  snapshotVersion,
		N:        g.N,
		Directed: g.Directed,
		U:        make([]int32, len(edges)),
		V:        make([]int32, len(edges)),
		W:        make([]int64, len(edges)),
	}
	for i, e := range edges {
		snap.U[i] = int32(e.U)
		snap.V[i] = int32(e.V)
		snap.W[i] = e.W
	}
	return gob.NewEncoder(w).Encode(snap)
}
