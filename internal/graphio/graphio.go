// Package graphio reads and writes the weighted graphs of the workload
// layer in three interchangeable formats:
//
//   - DIMACS ".gr" (the 9th DIMACS shortest-path challenge format:
//     "p sp n m" header plus 1-indexed "a u v w" arc lines),
//   - whitespace edge-list TSV ("u v w" per line, 0-indexed, with an
//     optional "# congestapsp ..." metadata header), and
//   - a compact gob binary snapshot for fast reload of large graphs.
//
// All readers stream (bufio line scanning / gob decoding; headerless TSV
// buffers its edge records — bounded by the same edge-count cap as every
// reader — until EOF fixes the vertex count), validate every record
// (vertex range, self-loops, negative weights, count mismatches) with
// the offending line in the error, and
// preserve edge order, so a load→save→load cycle reproduces the input
// byte-for-byte for files written by this package. Writers emit edges in
// insertion order, which makes snapshots of the deterministic generators
// themselves deterministic.
//
// Directedness travels with the file: the DIMACS writer marks undirected
// graphs with a "c congestapsp undirected" comment (plain DIMACS files,
// which list arcs, read back as directed), the TSV writer with the
// metadata header, and the gob snapshot stores it natively.
package graphio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"congestapsp/internal/graph"
)

// maxVertices bounds the vertex count any reader accepts (2^28 ≈ 268M
// vertices, far beyond any single-host simulation): every format
// allocates O(n) at graph construction, so an unbounded count from a
// corrupt or hostile file would abort the process on allocation instead
// of returning the validation error this package promises. A variable
// (not a const) only so the fuzz harness can lower it per-input: below
// the cap a reader legitimately allocates O(n) at header parse, which at
// the full bound is gigabytes — acceptable for a real load, fatal for a
// memory-limited fuzz worker.
var maxVertices = 1 << 28

// maxEdges bounds the edge count any reader accepts (2^28, matching
// maxVertices): edges accumulate in memory as a file streams, so an
// unbounded count from a hostile or corrupt file would OOM-abort before
// any validation error could be returned. A variable for the same fuzz
// override as maxVertices.
var maxEdges = 1 << 28

// maxWeight bounds the edge weight any reader accepts. The engine's
// distance arithmetic treats graph.Inf (MaxInt64/4) as unreachable and
// sums up to maxVertices-1 weights along a path; capping weights at 2^32
// keeps every simple-path sum below Inf ((2^28)·(2^32) = 2^60 < 2^61),
// so a loaded file can never cause silent int64 overflow or forge the
// Inf sentinel.
const maxWeight = 1 << 32

// checkWeight validates an edge weight against the overflow bound
// (negative weights are rejected downstream by graph.AddEdge).
func checkWeight(w int64) error {
	if w > maxWeight {
		return fmt.Errorf("weight %d exceeds the supported maximum %d", w, int64(maxWeight))
	}
	return nil
}

// Format identifies a serialization format.
type Format int

const (
	// FormatUnknown is the zero Format; Read and Write reject it.
	FormatUnknown Format = iota
	// FormatDIMACS is the DIMACS shortest-path ".gr" text format.
	FormatDIMACS
	// FormatTSV is a whitespace-separated edge list ("u v w" per line).
	FormatTSV
	// FormatGob is the compact binary snapshot (encoding/gob).
	FormatGob
)

func (f Format) String() string {
	switch f {
	case FormatDIMACS:
		return "dimacs"
	case FormatTSV:
		return "tsv"
	case FormatGob:
		return "gob"
	}
	return "unknown"
}

// DetectFormat maps a file name to a Format by extension: ".gr"/".dimacs"
// → DIMACS, ".tsv"/".txt"/".el"/".edges" → TSV, ".gob"/".snap" → gob.
func DetectFormat(path string) (Format, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".gr", ".dimacs":
		return FormatDIMACS, nil
	case ".tsv", ".txt", ".el", ".edges":
		return FormatTSV, nil
	case ".gob", ".snap":
		return FormatGob, nil
	}
	return FormatUnknown, fmt.Errorf("graphio: cannot infer format from %q (want .gr/.dimacs, .tsv/.txt/.el/.edges, or .gob/.snap)", path)
}

// Meta reports how a parsed stream described its graph.
type Meta struct {
	// SelfDescribed reports whether the stream declared its own
	// directedness: DIMACS and gob always do, TSV only when the
	// "# congestapsp ..." metadata header is present. Callers use it to
	// decide whether a file's directedness is authoritative or merely the
	// headerless default.
	SelfDescribed bool
}

// Read parses a graph from r in the given format.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	g, _, err := ReadWithMeta(r, f)
	return g, err
}

// ReadWithMeta is Read plus provenance about the stream itself.
func ReadWithMeta(r io.Reader, f Format) (*graph.Graph, Meta, error) {
	switch f {
	case FormatDIMACS:
		g, err := readDIMACS(r)
		return g, Meta{SelfDescribed: true}, err
	case FormatTSV:
		g, hasHeader, err := readTSV(r)
		return g, Meta{SelfDescribed: hasHeader}, err
	case FormatGob:
		g, err := readGob(r)
		return g, Meta{SelfDescribed: true}, err
	}
	return nil, Meta{}, fmt.Errorf("graphio: read: unsupported format %v", f)
}

// Write serializes g to w in the given format. Graphs that could not be
// read back (weights beyond the overflow bound) are rejected up front so
// every written file round-trips.
func Write(w io.Writer, g *graph.Graph, f Format) error {
	if g == nil {
		return fmt.Errorf("graphio: write: nil graph")
	}
	for i, e := range g.Edges() {
		if err := checkWeight(e.W); err != nil {
			return fmt.Errorf("graphio: write: edge %d: %w", i, err)
		}
	}
	switch f {
	case FormatDIMACS:
		return writeDIMACS(w, g)
	case FormatTSV:
		return writeTSV(w, g)
	case FormatGob:
		return writeGob(w, g)
	}
	return fmt.Errorf("graphio: write: unsupported format %v", f)
}

// Load reads a graph from path, inferring the format from the extension.
func Load(path string) (*graph.Graph, error) {
	f, err := DetectFormat(path)
	if err != nil {
		return nil, err
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	g, err := Read(file, f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// Save writes g to path, inferring the format from the extension. The
// write goes to a temporary file in the destination directory and renames
// over path on success, so a failed or interrupted save never leaves a
// truncated file behind (a short TSV would otherwise reload silently as a
// smaller graph — TSV carries no edge count). The temp file is fsynced
// before the rename and the parent directory after it, so a completed Save
// also survives power loss (see WriteFileAtomic).
func Save(path string, g *graph.Graph) error {
	f, err := DetectFormat(path)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".graphio-*")
	if err != nil {
		return err
	}
	if err := Write(tmp, g, f); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%s: %w", path, err)
	}
	// CreateTemp hardcodes 0600. Preserve an existing destination's
	// permissions (overwriting must neither widen nor narrow them);
	// otherwise use the conventional data-file mode so saved datasets
	// stay shareable across users/CI steps.
	mode := os.FileMode(0o644)
	if info, statErr := os.Stat(path); statErr == nil {
		mode = info.Mode().Perm()
	}
	if err := os.Chmod(tmp.Name(), mode); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return SyncDir(filepath.Dir(path))
}
