// Package profiling wires the -cpuprofile / -memprofile flags of the
// command-line tools (cmd/experiment, cmd/congestbench) to runtime/pprof.
// It exists so the perf work on the simulator can be driven the same way
// it was measured: run a sweep under -cpuprofile, feed the output to
// `go tool pprof`, attack the top of the list (DESIGN.md §7 was built
// exactly this way).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The returned stop is never nil and must be
// called exactly once, after the workload of interest; profiles from a run
// that dies early via log.Fatal are simply not written.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
