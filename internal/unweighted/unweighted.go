// Package unweighted implements the classic O(n)-round unweighted APSP
// algorithm in the CONGEST model (Holzer & Wattenhofer, PODC 2012 —
// pipelined BFS from every source, started one after another by a token
// walking a spanning tree). The paper's Table 1 cites the Omega(n) lower
// bound of [6] that holds even for unweighted APSP; this package provides
// the matching unweighted upper bound as context for the weighted
// algorithms, and doubles as a stress test of the simulator's pipelining.
//
// The implementation is robust rather than schedule-fragile: BFS waves
// carry explicit (source, dist) labels and every node forwards queued
// announcements at the per-link bandwidth, so delayed messages still relax
// correctly; the token staggering keeps the load low enough that the total
// round count stays O(n) on the tested families (asserted empirically).
package unweighted

import (
	"fmt"
	"slices"

	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
	"congestapsp/internal/mat"
)

// Result is the unweighted APSP output.
type Result struct {
	// Dist[src][v] is the minimum number of edges on a src->v path
	// (graph.Inf if unreachable). For directed graphs edges are followed
	// forward; communication still uses the underlying undirected graph.
	// The rows alias pooled per-network storage: they are valid until the
	// next unweighted.Run on the same Network.
	Dist   [][]int64
	Rounds int
}

const (
	kindToken uint8 = 60
	kindWave  uint8 = 61
)

// stateKey keys the pooled per-network state: the distance matrix, the
// forward-edge CSR and the wave queues all keep their footprint across
// runs, so a warm re-run allocates nothing.
type stateKey struct{}

type ann struct {
	src  int32
	dist int64
}

type runState struct {
	res        Result
	dist       *mat.Matrix
	startRound []int32
	outOff     []int32 // forward-edge CSR: outIds[outOff[v]:outOff[v+1]]
	outIds     []int32
	queue      [][]ann // per-node pending announcements (FIFO by head cursor)
	head       []int32
	proto      waveProto
}

// Run computes hop-count APSP for all sources. It consumes O(n) rounds on
// the tested families: a token performs a depth-first walk of a BFS
// spanning tree, starting one source's BFS every two rounds; wave
// announcements queue per node and drain at the link bandwidth.
//
// Run resets nw's scratch arena on entry; the returned Result aliases
// pooled per-network storage valid until the next Run on the same Network.
func Run(nw *congest.Network, g *graph.Graph) (*Result, error) {
	n := g.N
	if n == 0 {
		return &Result{}, nil
	}
	tree, err := broadcast.BuildBFS(nw, 0)
	if err != nil {
		return nil, err
	}
	sc := nw.Scratch()
	sc.Reset()
	rs := congest.ScratchState(sc, stateKey{}, func() *runState { return new(runState) })
	rs.ensure(n)

	// Token schedule: the depth-first walk of the spanning tree visits
	// every node; node v's BFS starts when the token first reaches it.
	// The walk is precomputed (it is fully determined by the tree, which
	// every node helped build); startRound[v] = 2 * (first-visit index).
	stack := sc.Int32s(n)
	top := 0
	stack[top] = int32(tree.Root)
	idx := int32(0)
	for top >= 0 {
		v := stack[top]
		top--
		rs.startRound[v] = 2 * idx
		idx++
		ch := tree.Children[v]
		for k := len(ch) - 1; k >= 0; k-- { // push in reverse: ascending visit order
			top++
			stack[top] = int32(ch[k])
		}
	}
	lastStart := 2 * (int(idx) - 1)

	// The forward-edge CSR: out-neighbors per node, sorted and
	// deduplicated so that the forward-edge check on receipt is a binary
	// search instead of an adjacency scan per message.
	cnt := sc.Int32s(n)
	for v := 0; v < n; v++ {
		g.OutNeighbors(v, func(u int, _ int64) { cnt[v]++ })
	}
	rs.outOff[0] = 0
	for v := 0; v < n; v++ {
		rs.outOff[v+1] = rs.outOff[v] + cnt[v]
	}
	if cap(rs.outIds) < int(rs.outOff[n]) {
		rs.outIds = make([]int32, rs.outOff[n])
	}
	rs.outIds = rs.outIds[:rs.outOff[n]]
	copy(cnt, rs.outOff[:n])
	for v := 0; v < n; v++ {
		g.OutNeighbors(v, func(u int, _ int64) {
			rs.outIds[cnt[v]] = int32(u)
			cnt[v]++
		})
	}
	// Sort and dedup each row, compacting in place; outOff[v] is rewritten
	// to the compacted row start only after row v has been read.
	w := int32(0)
	for v := 0; v < n; v++ {
		row := rs.outIds[rs.outOff[v]:cnt[v]]
		slices.Sort(row)
		start := w
		for k, u := range row {
			if k == 0 || u != row[k-1] {
				rs.outIds[w] = u
				w++
			}
		}
		rs.outOff[v] = start
	}
	rs.outOff[n] = w

	rs.dist.Fill(graph.Inf)
	for s := 0; s < n; s++ {
		rs.dist.Set(s, s, 0)
	}

	roundsBefore := nw.Stats.Rounds
	rs.proto = waveProto{rs: rs, lastStart: lastStart}
	// O(n) with slack: starts take 2n rounds, waves another <= 2n + queues.
	budget := 8*n + 2*tree.Height + 64
	if _, err := nw.Run(&rs.proto, budget); err != nil {
		return nil, fmt.Errorf("unweighted: %w", err)
	}
	rs.res = Result{Dist: rs.res.Dist, Rounds: nw.Stats.Rounds - roundsBefore}
	return &rs.res, nil
}

func (rs *runState) ensure(n int) {
	if rs.dist == nil || rs.dist.Rows() < n {
		rs.dist = mat.New(n, n)
		rs.res.Dist = rs.dist.RowViews()
		rs.startRound = make([]int32, n)
		rs.outOff = make([]int32, n+1)
		rs.queue = make([][]ann, n)
		rs.head = make([]int32, n)
	}
	for v := 0; v < n; v++ {
		rs.queue[v] = rs.queue[v][:0]
	}
	clear(rs.head[:n])
}

// forward reports whether u->v is a forward edge (binary search in the
// sorted forward-edge row of u).
func (rs *runState) forward(u, v int) bool {
	_, ok := slices.BinarySearch(rs.outIds[rs.outOff[u]:rs.outOff[u+1]], int32(v))
	return ok
}

// waveProto is the pipelined-BFS wave protocol as a reusable object.
type waveProto struct {
	rs        *runState
	lastStart int
}

// Step implements congest.Proto.
func (p *waveProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	rs := p.rs
	for _, m := range in {
		if m.Kind != kindWave {
			continue
		}
		src, d := int(m.A), m.B+1
		// The receiver relaxes along the edge it heard the label on
		// only if the sender is a forward in-neighbor.
		if !rs.forward(m.From, v) {
			continue
		}
		if d < rs.dist.At(src, v) {
			rs.dist.Set(src, v, d)
			rs.queue[v] = append(rs.queue[v], ann{src: int32(src), dist: d})
		}
	}
	if round == int(rs.startRound[v]) {
		rs.queue[v] = append(rs.queue[v], ann{src: int32(v), dist: 0})
	}
	if int(rs.head[v]) < len(rs.queue[v]) {
		a := rs.queue[v][rs.head[v]]
		if int(rs.head[v])+1 == len(rs.queue[v]) {
			rs.queue[v] = rs.queue[v][:0]
			rs.head[v] = 0
		} else {
			rs.head[v]++
		}
		for _, u := range rs.outIds[rs.outOff[v]:rs.outOff[v+1]] {
			send(congest.Message{To: int(u), Kind: kindWave, A: int64(a.src), B: a.dist})
		}
	}
	return round > p.lastStart && int(rs.head[v]) >= len(rs.queue[v])
}
