// Package unweighted implements the classic O(n)-round unweighted APSP
// algorithm in the CONGEST model (Holzer & Wattenhofer, PODC 2012 —
// pipelined BFS from every source, started one after another by a token
// walking a spanning tree). The paper's Table 1 cites the Omega(n) lower
// bound of [6] that holds even for unweighted APSP; this package provides
// the matching unweighted upper bound as context for the weighted
// algorithms, and doubles as a stress test of the simulator's pipelining.
//
// The implementation is robust rather than schedule-fragile: BFS waves
// carry explicit (source, dist) labels and every node forwards queued
// announcements at the per-link bandwidth, so delayed messages still relax
// correctly; the token staggering keeps the load low enough that the total
// round count stays O(n) on the tested families (asserted empirically).
package unweighted

import (
	"fmt"
	"slices"

	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
)

// Result is the unweighted APSP output.
type Result struct {
	// Dist[src][v] is the minimum number of edges on a src->v path
	// (graph.Inf if unreachable). For directed graphs edges are followed
	// forward; communication still uses the underlying undirected graph.
	Dist   [][]int64
	Rounds int
}

const (
	kindToken uint8 = 60
	kindWave  uint8 = 61
)

// Run computes hop-count APSP for all sources. It consumes O(n) rounds on
// the tested families: a token performs a depth-first walk of a BFS
// spanning tree, starting one source's BFS every two rounds; wave
// announcements queue per node and drain at the link bandwidth.
func Run(nw *congest.Network, g *graph.Graph) (*Result, error) {
	n := g.N
	if n == 0 {
		return &Result{}, nil
	}
	tree, err := broadcast.BuildBFS(nw, 0)
	if err != nil {
		return nil, err
	}
	// Token schedule: the depth-first walk of the spanning tree visits
	// every node; node v's BFS starts when the token first reaches it.
	// The walk is precomputed (it is fully determined by the tree, which
	// every node helped build); startRound[v] = 2 * (first-visit index).
	order := dfsOrder(tree)
	startRound := make([]int, n)
	for idx, v := range order {
		startRound[v] = 2 * idx
	}
	lastStart := 2 * (len(order) - 1)

	// out[v] lists the neighbors to announce to (forward edges), sorted and
	// deduplicated so that the forward-edge check on receipt is a binary
	// search instead of an adjacency scan per message.
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		g.OutNeighbors(v, func(u int, _ int64) {
			out[v] = append(out[v], u)
		})
		slices.Sort(out[v])
		out[v] = slices.Compact(out[v])
	}

	dist := make([][]int64, n)
	for s := range dist {
		dist[s] = make([]int64, n)
		for v := range dist[s] {
			dist[s][v] = graph.Inf
		}
		dist[s][s] = 0
	}

	// queue[v]: pending (src, dist) announcements; each round v sends the
	// head to all forward neighbors, one announcement per link per round.
	type ann struct {
		src  int32
		dist int64
	}
	queue := make([][]ann, n)
	roundsBefore := nw.Stats.Rounds
	p := congest.ProtoFunc(func(v, round int, in []congest.Message, send func(congest.Message)) bool {
		for _, m := range in {
			if m.Kind != kindWave {
				continue
			}
			src, d := int(m.A), m.B+1
			// The receiver relaxes along the edge it heard the label on
			// only if the sender is a forward in-neighbor.
			if _, fwd := slices.BinarySearch(out[m.From], v); !fwd {
				continue
			}
			if d < dist[src][v] {
				dist[src][v] = d
				queue[v] = append(queue[v], ann{src: int32(src), dist: d})
			}
		}
		if round == startRound[v] {
			queue[v] = append(queue[v], ann{src: int32(v), dist: 0})
		}
		if len(queue[v]) > 0 {
			a := queue[v][0]
			queue[v] = queue[v][1:]
			for _, u := range out[v] {
				send(congest.Message{To: u, Kind: kindWave, A: int64(a.src), B: a.dist})
			}
		}
		return round > lastStart && len(queue[v]) == 0
	})
	// O(n) with slack: starts take 2n rounds, waves another <= 2n + queues.
	budget := 8*n + 2*tree.Height + 64
	if _, err := nw.Run(p, budget); err != nil {
		return nil, fmt.Errorf("unweighted: %w", err)
	}
	return &Result{Dist: dist, Rounds: nw.Stats.Rounds - roundsBefore}, nil
}

// dfsOrder returns the first-visit order of a depth-first walk of the tree
// (children in ascending id order), starting at the root.
func dfsOrder(t *broadcast.Tree) []int {
	var order []int
	var walk func(v int)
	walk = func(v int) {
		order = append(order, v)
		for _, c := range t.Children[v] {
			walk(c)
		}
	}
	walk(t.Root)
	return order
}
