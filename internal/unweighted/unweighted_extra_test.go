package unweighted

import (
	"testing"

	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
)

func TestParallelEdgesOneHop(t *testing.T) {
	g := graph.New(2, true)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(0, 1, 9) // parallel edge must not break the wave
	res := runOn(t, g)
	if res.Dist[0][1] != 1 {
		t.Errorf("hops(0,1) = %d, want 1", res.Dist[0][1])
	}
}

func TestDenseGraphDiameterOne(t *testing.T) {
	n := 12
	g := graph.New(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	res := runOn(t, g)
	for s := 0; s < n; s++ {
		for v := 0; v < n; v++ {
			want := int64(1)
			if s == v {
				want = 0
			}
			if res.Dist[s][v] != want {
				t.Fatalf("hops(%d,%d) = %d, want %d", s, v, res.Dist[s][v], want)
			}
		}
	}
}

func TestZeroWeightEdgesIgnored(t *testing.T) {
	// Hop counts must ignore weights entirely, including zeros.
	g := graph.ZeroWeightMix(graph.GenConfig{N: 16, Seed: 4, MaxWeight: 9}, 48)
	res := runOn(t, g)
	want := hopOracle(g)
	for s := 0; s < g.N; s++ {
		for v := 0; v < g.N; v++ {
			if res.Dist[s][v] != want[s][v] {
				t.Fatalf("hops(%d,%d) mismatch", s, v)
			}
		}
	}
}

func TestBandwidthViolationNeverHappens(t *testing.T) {
	// The queued forwarding must respect B = 1 on every family; the
	// simulator errors on violations so success is the assertion.
	families := []*graph.Graph{
		graph.Star(graph.GenConfig{N: 30, Seed: 5, MaxWeight: 1}),
		graph.Grid(5, 6, graph.GenConfig{Seed: 6, MaxWeight: 1}),
		graph.Layered(5, 4, graph.GenConfig{Directed: true, Seed: 7, MaxWeight: 1}),
	}
	for i, g := range families {
		nw, err := congest.NewNetwork(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(nw, g); err != nil {
			t.Errorf("family %d: %v", i, err)
		}
	}
}
