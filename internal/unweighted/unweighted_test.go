package unweighted

import (
	"testing"

	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
)

// hopOracle computes hop-count distances sequentially.
func hopOracle(g *graph.Graph) [][]int64 {
	unit := graph.New(g.N, g.Directed)
	for _, e := range g.Edges() {
		unit.MustAddEdge(e.U, e.V, 1)
	}
	return graph.FloydWarshall(unit)
}

func runOn(t *testing.T, g *graph.Graph) *Result {
	t.Helper()
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, g)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMatchesOracleOnFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"random-undir", graph.RandomConnected(graph.GenConfig{N: 24, Seed: 1, MaxWeight: 9}, 70)},
		{"random-dir", graph.RandomConnected(graph.GenConfig{N: 20, Directed: true, Seed: 2, MaxWeight: 9}, 60)},
		{"ring", graph.Ring(graph.GenConfig{N: 18, Seed: 3, MaxWeight: 9})},
		{"grid", graph.Grid(4, 5, graph.GenConfig{Seed: 4, MaxWeight: 9})},
		{"star", graph.Star(graph.GenConfig{N: 15, Seed: 5, MaxWeight: 9})},
		{"layered-dir", graph.Layered(4, 3, graph.GenConfig{Directed: true, Seed: 6, MaxWeight: 9})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := runOn(t, tc.g)
			want := hopOracle(tc.g)
			for s := 0; s < tc.g.N; s++ {
				for v := 0; v < tc.g.N; v++ {
					if res.Dist[s][v] != want[s][v] {
						t.Fatalf("hops(%d,%d) = %d, want %d", s, v, res.Dist[s][v], want[s][v])
					}
				}
			}
		})
	}
}

func TestLinearRounds(t *testing.T) {
	// The whole point: all-sources BFS in O(n) rounds, not O(n*D).
	for _, n := range []int{24, 48, 96} {
		g := graph.RandomConnected(graph.GenConfig{N: n, Seed: int64(n), MaxWeight: 1}, 3*n)
		res := runOn(t, g)
		if res.Rounds > 8*n+64 {
			t.Errorf("n=%d: %d rounds, want O(n)", n, res.Rounds)
		}
	}
}

func TestRingWorstCaseStillLinear(t *testing.T) {
	// A ring has diameter n/2; sequential BFS would cost ~n^2/2 rounds.
	n := 40
	g := graph.Ring(graph.GenConfig{N: n, Seed: 1, MaxWeight: 1})
	res := runOn(t, g)
	if res.Rounds > 8*n+64 {
		t.Errorf("ring n=%d: %d rounds, want O(n)", n, res.Rounds)
	}
	want := hopOracle(g)
	for s := 0; s < n; s++ {
		for v := 0; v < n; v++ {
			if res.Dist[s][v] != want[s][v] {
				t.Fatalf("hops(%d,%d) wrong", s, v)
			}
		}
	}
}

func TestDirectedUnreachable(t *testing.T) {
	g := graph.New(3, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	res := runOn(t, g)
	if res.Dist[2][0] != graph.Inf {
		t.Errorf("hops(2,0) = %d, want Inf", res.Dist[2][0])
	}
	if res.Dist[0][2] != 2 {
		t.Errorf("hops(0,2) = %d, want 2", res.Dist[0][2])
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if res := runOn(t, graph.New(1, false)); res.Dist[0][0] != 0 {
		t.Error("single node wrong")
	}
	nw, _ := congest.NewNetwork(graph.New(0, false), 1)
	if _, err := Run(nw, graph.New(0, false)); err != nil {
		t.Errorf("empty graph: %v", err)
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 30, Directed: true, Seed: 9, MaxWeight: 1}, 90)
	a, b := runOn(t, g), runOn(t, g)
	if a.Rounds != b.Rounds {
		t.Errorf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
}
