package csssp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"congestapsp/internal/bford"
	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
)

func newNet(t *testing.T, g *graph.Graph) *congest.Network {
	t.Helper()
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func allSources(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func buildAll(t *testing.T, g *graph.Graph, h int, mode bford.Mode) (*Collection, *congest.Network) {
	t.Helper()
	nw := newNet(t, g)
	c, err := Build(nw, g, allSources(g.N), h, mode)
	if err != nil {
		t.Fatal(err)
	}
	return c, nw
}

func TestBuildRejectsBadH(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 5, Seed: 1, MaxWeight: 3})
	nw := newNet(t, g)
	if _, err := Build(nw, g, allSources(5), 0, bford.Out); err == nil {
		t.Error("h=0 accepted")
	}
}

func TestContainmentPropertyOut(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for _, dir := range []bool{false, true} {
			g := graph.RandomConnected(graph.GenConfig{N: 24, Directed: dir, Seed: seed, MaxWeight: 10}, 70)
			c, _ := buildAll(t, g, 3, bford.Out)
			if err := c.CheckContainment(); err != nil {
				t.Errorf("seed=%d dir=%v: %v", seed, dir, err)
			}
		}
	}
}

func TestContainmentPropertyIn(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 20, Directed: true, Seed: 5, MaxWeight: 10}, 60)
	c, _ := buildAll(t, g, 4, bford.In)
	if err := c.CheckContainment(); err != nil {
		t.Error(err)
	}
}

func TestTreeHeightBounded(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 30, Seed: 2, MaxWeight: 8}, 80)
	h := 4
	c, _ := buildAll(t, g, h, bford.Out)
	for i := range c.Sources {
		for v := 0; v < g.N; v++ {
			if c.Depth[i][v] > h {
				t.Fatalf("tree %d node %d depth %d > h %d", i, v, c.Depth[i][v], h)
			}
			if c.Depth[i][v] >= 0 && c.Dist[i][v] >= graph.Inf {
				t.Fatalf("tree %d node %d in tree but dist Inf", i, v)
			}
		}
	}
}

func TestTreePathsRealizeDistances(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 25, Directed: true, Seed: 9, MaxWeight: 12}, 75)
	h := 5
	c, _ := buildAll(t, g, h, bford.Out)
	for i, src := range c.Sources {
		for v := 0; v < g.N; v++ {
			if !c.InTree(i, v) || v == src {
				continue
			}
			path := c.PathToRoot(i, v)
			if path[len(path)-1] != src {
				t.Fatalf("tree %d: path from %d does not end at source %d", i, v, src)
			}
			if len(path)-1 != c.Depth[i][v] {
				t.Fatalf("tree %d node %d: path hops %d != depth %d", i, v, len(path)-1, c.Depth[i][v])
			}
			// Path weight must equal the recorded distance (walk the tree
			// path, summing min parallel-edge weights out of each parent).
			var sum int64
			for j := len(path) - 1; j > 0; j-- {
				u, w := path[j], path[j-1]
				best := graph.Inf
				g.OutNeighbors(u, func(x int, wt int64) {
					if x == w && wt < best {
						best = wt
					}
				})
				sum += best
			}
			if sum != c.Dist[i][v] {
				t.Fatalf("tree %d node %d: path weight %d != dist %d", i, v, sum, c.Dist[i][v])
			}
		}
	}
}

func TestConsistencyOnFamilies(t *testing.T) {
	families := []*graph.Graph{
		graph.RandomConnected(graph.GenConfig{N: 24, Seed: 1, MaxWeight: 9}, 60),
		graph.Grid(4, 6, graph.GenConfig{Seed: 2, MaxWeight: 9}),
		graph.Ring(graph.GenConfig{N: 18, Seed: 3, MaxWeight: 9}),
		graph.Layered(5, 4, graph.GenConfig{Seed: 4, MaxWeight: 9}),
	}
	for fi, g := range families {
		c, _ := buildAll(t, g, 3, bford.Out)
		checked, err := c.CheckConsistency()
		if err != nil {
			t.Errorf("family %d: %v (after %d pairs)", fi, err, checked)
		}
		if checked == 0 {
			t.Errorf("family %d: consistency check inspected no pairs", fi)
		}
	}
}

func TestFullLengthLeavesAndPathVertices(t *testing.T) {
	// Path graph 0-1-2-3-4, h=2: tree of source 0 has leaf 2 at depth 2.
	g := graph.New(5, false)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	c, _ := buildAll(t, g, 2, bford.Out)
	leaves := c.FullLengthLeaves(0)
	if len(leaves) != 1 || leaves[0] != 2 {
		t.Fatalf("full-length leaves of tree 0 = %v, want [2]", leaves)
	}
	pv := c.PathVertices(0, 2)
	if len(pv) != 2 || pv[0] != 2 || pv[1] != 1 {
		t.Fatalf("path vertices = %v, want [2 1] (root excluded)", pv)
	}
	if got := c.PathVertices(0, 1); got != nil {
		t.Errorf("PathVertices of non-full-length leaf = %v, want nil", got)
	}
}

func TestRemoveSubtrees(t *testing.T) {
	// Path 0-1-2-3-4: removing node 2 from tree of source 0 must remove 2,
	// 3 (and beyond within the h-horizon) but keep 0, 1.
	g := graph.New(5, false)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	c, nw := buildAll(t, g, 4, bford.Out)
	inZ := make([]bool, 5)
	inZ[2] = true
	if err := c.RemoveSubtrees(nw, inZ, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		v  int
		in bool
	}{{0, true}, {1, true}, {2, false}, {3, false}, {4, false}} {
		if got := c.InTree(0, want.v); got != want.in {
			t.Errorf("after removal: InTree(0,%d) = %v, want %v", want.v, got, want.in)
		}
	}
	// In the tree rooted at 3, node 2's subtree is {2, 1, 0}.
	if c.InTree(3, 1) || c.InTree(3, 0) {
		t.Error("descendants of removed node survive in tree 3")
	}
	if !c.InTree(3, 4) {
		t.Error("node 4 wrongly removed from tree 3")
	}
}

func TestRemoveSubtreesRoundCost(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 20, Seed: 6, MaxWeight: 5}, 50)
	h := 3
	c, nw := buildAll(t, g, h, bford.Out)
	nw.ResetStats()
	inZ := make([]bool, g.N)
	inZ[1], inZ[5] = true, true
	if err := c.RemoveSubtrees(nw, inZ, false); err != nil {
		t.Fatal(err)
	}
	want := len(c.Sources) * (h + 1) // Lemma 3.7: <= h rounds per source
	if nw.Stats.Rounds != want {
		t.Errorf("removal rounds = %d, want %d", nw.Stats.Rounds, want)
	}
}

func TestChildrenConsistentWithParents(t *testing.T) {
	g := graph.Grid(4, 5, graph.GenConfig{Seed: 8, MaxWeight: 6})
	c, _ := buildAll(t, g, 3, bford.Out)
	for i := range c.Sources {
		ch := c.Children(i)
		count := 0
		for v, kids := range ch {
			for _, k := range kids {
				if c.Parent[i][k] != v {
					t.Fatalf("tree %d: child %d of %d has parent %d", i, k, v, c.Parent[i][k])
				}
				count++
			}
		}
		// Every non-root in-tree node appears exactly once as a child.
		inTree := 0
		for v := 0; v < g.N; v++ {
			if c.InTree(i, v) && v != c.Sources[i] {
				inTree++
			}
		}
		if count != inTree {
			t.Errorf("tree %d: %d child links, want %d", i, count, inTree)
		}
	}
}

func TestBuildRoundCost(t *testing.T) {
	// Lemma A.4: O(|S| * h) rounds; our construction runs 2h+1 rounds per
	// source.
	g := graph.Ring(graph.GenConfig{N: 16, Seed: 4, MaxWeight: 5})
	nw := newNet(t, g)
	h := 3
	srcs := []int{0, 5, 9}
	if _, err := Build(nw, g, srcs, h, bford.Out); err != nil {
		t.Fatal(err)
	}
	want := len(srcs) * (4*h + 3) // (2h+1)-round BF + (2h+2)-round confirmation wave
	if nw.Stats.Rounds != want {
		t.Errorf("build rounds = %d, want %d", nw.Stats.Rounds, want)
	}
}

// Property: on random graphs, every in-tree entry of an Out collection has
// a distance equal to the h-hop oracle whenever the oracle's h-hop distance
// equals the true distance.
func TestQuickCSSSPContainment(t *testing.T) {
	f := func(seed int64, nRaw, hRaw uint8, directed bool) bool {
		n := 6 + int(nRaw%18)
		h := 1 + int(hRaw%6)
		g := graph.RandomConnected(graph.GenConfig{N: n, Directed: directed, Seed: seed, MaxWeight: 15}, 3*n)
		nw, err := congest.NewNetwork(g, 1)
		if err != nil {
			return false
		}
		c, err := Build(nw, g, allSources(n), h, bford.Out)
		if err != nil {
			return false
		}
		return c.CheckContainment() == nil
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(77))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
