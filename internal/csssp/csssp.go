// Package csssp implements h-hop Consistent SSSP collections (CSSSP,
// Definition 2.1 / A.3 of the paper, introduced in [1] = Agarwal &
// Ramachandran, IPDPS 2019) and the subtree-removal primitive
// (Algorithm 6, Remove-Subtrees).
//
// Construction follows [1]: compute a 2h-hop SSSP for each source with
// deterministic (dist, hops, parent-id) tie-breaking, then retain the first
// h hops of each tree (Lemma A.4: O(h) rounds per source). The resulting
// collection satisfies the CSSSP containment property exactly: tree T_x
// contains every vertex v that has a path of at most h hops from x with
// weight delta(x, v), and the tree path to such v realizes that distance.
// The cross-tree path-consistency property is verified empirically by
// CheckConsistency (see DESIGN.md for discussion).
package csssp

import (
	"fmt"

	"congestapsp/internal/bford"
	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
	"congestapsp/internal/mat"
)

// Collection is an h-hop CSSSP collection: one height-<=h tree per source.
// For Mode == bford.Out, tree T_i holds shortest paths FROM Sources[i]
// (parents point toward the root/source). For Mode == bford.In, T_i holds
// shortest paths TO Sources[i] (parents are next hops toward the sink).
type Collection struct {
	G       *graph.Graph
	H       int
	Mode    bford.Mode
	Sources []int

	// Dist[i][v] is the h-hop CSSSP distance between Sources[i] and v
	// (graph.Inf when v is not in T_i).
	Dist [][]int64
	// Label[i][v] is the raw 2h-hop Bellman-Ford distance label between
	// Sources[i] and v: the minimum weight over paths of at most 2h hops.
	// It upper-bounds the true distance, equals it whenever some shortest
	// path has at most 2h hops, and is kept even for nodes outside the
	// truncated tree (Step 7 of Algorithm 1 seeds its extension runs with
	// these values).
	Label [][]int64
	// LabelHops[i][v] is the hop count of the path realizing Label[i][v]
	// (fewest hops among minimum-weight <=2h-hop paths, bford's Hops
	// tie-breaking; -1 when the label is Inf). It is the level at which
	// v's label in tree i's 2h-hop system first reached its final value —
	// the convergence-level metadata the core session's update-damage test
	// needs to judge hop-bounded systems soundly (core/hops.go). No
	// protocol consumes it.
	LabelHops [][]int
	// Depth[i][v] is v's depth in T_i (hop distance to the root), or -1
	// when v is not in T_i.
	Depth [][]int
	// Parent[i][v] is v's parent in T_i (toward the root), -1 for the root
	// and for absent nodes.
	Parent [][]int
	// Removed[i][v] marks nodes pruned by RemoveSubtrees.
	Removed [][]bool

	hLeaves [][]int32 // depth-H nodes per tree (static), see HLeaves

	// As-built child CSR per tree: chIds[i][chOff[i][v]:chOff[i][v+1]] is
	// the ascending list of v's children in tree i as constructed, ignoring
	// removals (tree shapes never change after Build; only the Removed bits
	// do). Traversals filter the dynamic Removed state, so the collection's
	// thousands of flood/upcast/downcast protocol runs walk this structure
	// instead of re-materializing child lists. See ChildIDs.
	chOff [][]int32
	chIds [][]int32
}

// Build constructs the h-CSSSP collection for the given sources by running
// a 2h-hop Bellman-Ford per source and truncating each tree to height h
// (the construction of [1]; O(|S|*h) rounds total, Lemma A.4).
//
// The per-source SSSPs are independent protocol executions, so when
// nw.Parallel is set they dispatch across the work-stealing worker pool
// (congest.ShardRuns): each worker owns a clone of nw, pulls source
// indices dynamically, and fills only the per-source slots of the indices
// it ran; the merged statistics — and the collection itself — are
// bit-identical to the sequential schedule regardless of the
// interleaving.
func Build(nw *congest.Network, g *graph.Graph, sources []int, h int, mode bford.Mode) (*Collection, error) {
	if h < 1 {
		return nil, fmt.Errorf("csssp: hop bound must be >= 1, got %d", h)
	}
	ns := len(sources)
	n := g.N
	c := &Collection{
		G:       g,
		H:       h,
		Mode:    mode,
		Sources: append([]int(nil), sources...),
	}
	// Flat backing arenas: one allocation per field instead of one per
	// tree. Rows are capacity-capped views written disjointly by the
	// sharded sub-runs (sub-run i owns exactly the i-th row of each).
	c.Dist = mat.New(ns, n).RowViews()
	c.Label = mat.New(ns, n).RowViews()
	c.LabelHops = mat.NewInt(ns, n).RowViews()
	c.Depth = mat.NewInt(ns, n).RowViews()
	c.Parent = mat.NewInt(ns, n).RowViews()
	c.Removed = make([][]bool, ns)
	removedFlat := make([]bool, ns*n)
	c.chOff = make([][]int32, ns)
	c.chIds = make([][]int32, ns)
	for i := 0; i < ns; i++ {
		c.Removed[i] = removedFlat[i*n : (i+1)*n : (i+1)*n]
	}
	err := nw.ShardRuns(ns, func(w *congest.Network, i int) error {
		src := sources[i]
		res, err := bford.Run(w, g, src, 2*h, mode)
		if err != nil {
			return fmt.Errorf("csssp: source %d: %w", src, err)
		}
		copy(c.Label[i], res.Dist)
		copy(c.LabelHops[i], res.Hops)
		for v := 0; v < n; v++ {
			if res.Confirmed[v] && res.Hops[v] >= 0 && res.Hops[v] <= h {
				c.Dist[i][v] = res.Dist[v]
				c.Depth[i][v] = res.Hops[v]
				c.Parent[i][v] = res.Parent[v]
			} else {
				c.Dist[i][v] = graph.Inf
				c.Depth[i][v] = -1
				c.Parent[i][v] = -1
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.rebuildDerived()
	return c, nil
}

// rebuildDerived materializes the as-built child CSR per tree (two counting
// passes per tree; ascending child order because v ascends) and the static
// depth-H leaf lists, each carved from one flat arena. Consumers (the
// blocker construction) read both from sharded workers, so they are built
// eagerly — the lazy HLeaves build is not safe under concurrent first
// touch. Refresh re-runs this whole pass when any tree changed: the flat
// arenas share offsets across trees, so a per-tree patch cannot be done in
// place.
func (c *Collection) rebuildDerived() {
	ns, n, h := len(c.Sources), c.G.N, c.H
	chOffFlat := make([]int32, ns*(n+1))
	for i := 0; i < ns; i++ {
		c.chOff[i] = chOffFlat[i*(n+1) : (i+1)*(n+1) : (i+1)*(n+1)]
	}
	chTotal, leafTotal := 0, 0
	for i := 0; i < ns; i++ {
		off := c.chOff[i]
		for v := 0; v < n; v++ {
			if p := c.Parent[i][v]; p >= 0 {
				off[p+1]++
			}
			if c.Depth[i][v] == h {
				leafTotal++
			}
		}
		for v := 0; v < n; v++ {
			off[v+1] += off[v]
		}
		chTotal += int(off[n])
	}
	chIdsFlat := make([]int32, chTotal)
	hlFlat := make([]int32, leafTotal)
	c.hLeaves = make([][]int32, ns)
	fill := make([]int32, n)
	chBase, hlBase := 0, 0
	for i := 0; i < ns; i++ {
		off := c.chOff[i]
		ids := chIdsFlat[chBase : chBase+int(off[n]) : chBase+int(off[n])]
		chBase += int(off[n])
		copy(fill, off[:n])
		hl := hlFlat[hlBase:hlBase:leafTotal]
		for v := 0; v < n; v++ {
			if p := c.Parent[i][v]; p >= 0 {
				ids[fill[p]] = int32(v)
				fill[p]++
			}
			if c.Depth[i][v] == h {
				hl = append(hl, int32(v))
			}
		}
		hlBase += len(hl)
		c.chIds[i] = ids
		c.hLeaves[i] = hl
	}
}

// Refresh re-runs the per-source SSSP for the tree indices in dirty (each
// an index into Sources, not a vertex id) and overwrites those rows of
// Label/Dist/Depth/Parent in place, consuming the same per-tree round
// schedule as Build. It reports whether any stored row actually changed;
// when one did, the derived structures (child CSR, depth-H leaf lists) are
// rebuilt so later traversals see the new tree shapes. Removal marks are
// not touched — callers refresh between ResetRemovals boundaries.
//
// The refreshed rows are bit-identical to what a fresh Build on the
// current graph would store for those sources: the per-source SSSP is a
// deterministic fixed point of (graph, source, hop bound), independent of
// which other sources run beside it.
func (c *Collection) Refresh(nw *congest.Network, dirty []int) (bool, error) {
	if len(dirty) == 0 {
		return false, nil
	}
	n := c.G.N
	changed := make([]bool, len(dirty))
	err := nw.ShardRuns(len(dirty), func(w *congest.Network, k int) error {
		i := dirty[k]
		src := c.Sources[i]
		res, err := bford.Run(w, c.G, src, 2*c.H, c.Mode)
		if err != nil {
			return fmt.Errorf("csssp: refresh source %d: %w", src, err)
		}
		chg := false
		// LabelHops is damage-test metadata, not protocol input: refresh it
		// unconditionally but keep it out of chg — a convergence level that
		// moved while every consumed array stayed fixed changes nothing any
		// later stage reads.
		copy(c.LabelHops[i], res.Hops)
		for v := 0; v < n; v++ {
			if c.Label[i][v] != res.Dist[v] {
				c.Label[i][v] = res.Dist[v]
				chg = true
			}
			d, dep, par := graph.Inf, -1, -1
			if res.Confirmed[v] && res.Hops[v] >= 0 && res.Hops[v] <= c.H {
				d, dep, par = res.Dist[v], res.Hops[v], res.Parent[v]
			}
			if c.Dist[i][v] != d || c.Depth[i][v] != dep || c.Parent[i][v] != par {
				c.Dist[i][v], c.Depth[i][v], c.Parent[i][v] = d, dep, par
				chg = true
			}
		}
		changed[k] = chg
		return nil
	})
	if err != nil {
		return false, err
	}
	for _, chg := range changed {
		if chg {
			c.rebuildDerived()
			return true, nil
		}
	}
	return false, nil
}

// NumTrees returns the number of trees (sources) in the collection.
func (c *Collection) NumTrees() int { return len(c.Sources) }

// InTree reports whether v currently belongs to tree i (present and not
// removed).
func (c *Collection) InTree(i, v int) bool {
	return c.Depth[i][v] >= 0 && !c.Removed[i][v]
}

// ChildIDs returns the as-built children of v in tree i, ascending,
// ignoring removals (the tree shape is immutable after Build). Traversals
// that must respect the current pruning state filter Removed[i] per child;
// the returned slice aliases the collection's CSR arena and must not be
// modified.
func (c *Collection) ChildIDs(i, v int) []int32 {
	off := c.chOff[i]
	return c.chIds[i][off[v]:off[v+1]]
}

// Children materializes the child lists of tree i, respecting removals. It
// allocates per call; protocol hot paths use ChildIDs plus a Removed check
// instead.
func (c *Collection) Children(i int) [][]int {
	n := c.G.N
	ch := make([][]int, n)
	for v := 0; v < n; v++ {
		if !c.InTree(i, v) {
			continue
		}
		if p := c.Parent[i][v]; p >= 0 {
			ch[p] = append(ch[p], v)
		}
	}
	return ch
}

// PathToRoot returns the tree path from v to the root of tree i, inclusive
// of both endpoints (v first). It returns nil when v is not in the tree.
func (c *Collection) PathToRoot(i, v int) []int {
	if !c.InTree(i, v) {
		return nil
	}
	var path []int
	for u := v; u != -1; u = c.Parent[i][u] {
		path = append(path, u)
		if len(path) > c.G.N {
			panic("csssp: parent cycle")
		}
	}
	return path
}

// HLeaves returns the ids of the nodes at depth exactly H in tree i as
// built, ignoring removals (depths never change after Build, so the list
// is computed once and cached). Scans over "every full-length leaf of
// every tree" — the blocker construction runs thousands of them — iterate
// these lists and test only the dynamic Removed bit, instead of scanning
// all n nodes per tree. The returned slice must not be modified.
func (c *Collection) HLeaves(i int) []int32 {
	if c.hLeaves == nil {
		c.hLeaves = make([][]int32, len(c.Sources))
	}
	if c.hLeaves[i] == nil {
		out := []int32{}
		for v := 0; v < c.G.N; v++ {
			if c.Depth[i][v] == c.H {
				out = append(out, int32(v))
			}
		}
		c.hLeaves[i] = out
	}
	return c.hLeaves[i]
}

// FullLengthLeaves returns the nodes at depth exactly H in tree i (not
// removed): the leaves of the root-to-leaf paths of length H that a blocker
// set must cover (Definition 2.2).
func (c *Collection) FullLengthLeaves(i int) []int {
	var out []int
	for _, v := range c.HLeaves(i) {
		if !c.Removed[i][v] {
			out = append(out, int(v))
		}
	}
	return out
}

// PathVertices returns the hyperedge associated with the full-length path
// of tree i ending at leaf v: the H vertices at depths 1..H (the root is
// excluded so that each hyperedge has exactly H vertices, Section 3.1).
func (c *Collection) PathVertices(i, leaf int) []int {
	path := c.PathToRoot(i, leaf)
	if path == nil || len(path) != c.H+1 {
		return nil
	}
	return path[:c.H] // drop the root (last element)
}

// RemoveSubtrees implements Algorithm 6 (Remove-Subtrees): for each source
// in sequence, every node z with inZ[z] floods a removal notice down its
// subtree in T_i; all reached nodes leave the tree. Cost: at most H+1
// rounds per source (Lemma 3.7).
//
// excludeRoots controls what happens when z is the root of a tree. The
// blocker algorithm must skip roots (hyperedges exclude the root, so a
// blocker node covers none of its own tree's paths and that tree must stay
// coverable); the bottleneck elimination of Algorithm 9 removes the whole
// tree (messages destined to that root are already handled via z).
//
// The per-tree floods are independent (tree i's flood reads and writes only
// Removed[i]), so they dispatch across the work-stealing worker clones when
// nw.Parallel is set; the merged stats are exact commutative sums, so they
// match the sequential schedule bit for bit.
func (c *Collection) RemoveSubtrees(nw *congest.Network, inZ []bool, excludeRoots bool) error {
	return nw.ShardRuns(len(c.Sources), func(w *congest.Network, i int) error {
		// Snapshot the pre-flood (removal-filtered) child lists into the
		// worker's arena: the flood marks removals while it runs, but — like
		// the materialized lists it replaces — must keep flooding over the
		// tree as it stood when the flood started.
		sc := w.Scratch()
		n := c.G.N
		off := sc.Int32s(n + 1)
		for v := 0; v < n; v++ {
			if c.InTree(i, v) {
				if p := c.Parent[i][v]; p >= 0 {
					off[p+1]++
				}
			}
		}
		for v := 0; v < n; v++ {
			off[v+1] += off[v]
		}
		ids := sc.Int32s(int(off[n]))
		fill := sc.Int32s(n)
		copy(fill, off[:n])
		for v := 0; v < n; v++ {
			if c.InTree(i, v) {
				if p := c.Parent[i][v]; p >= 0 {
					ids[fill[p]] = int32(v)
					fill[p]++
				}
			}
		}
		p := congest.ScratchState(sc, removeKey{}, func() *removeProto { return new(removeProto) })
		p.c, p.i, p.root = c, i, c.Sources[i]
		p.inZ, p.excludeRoots = inZ, excludeRoots
		p.off, p.ids = off, ids
		err := w.RunFor(p, c.H+1)
		p.c, p.inZ, p.off, p.ids = nil, nil, nil, nil
		if err != nil {
			return fmt.Errorf("csssp: remove-subtrees tree %d: %w", i, err)
		}
		return nil
	})
}

const kindRemove uint8 = 11

type removeKey struct{}

// removeProto is the Remove-Subtrees flood as a reusable per-network
// protocol (pooled via congest.ScratchState), so the per-commit floods of
// the blocker construction allocate nothing in steady state.
type removeProto struct {
	c            *Collection
	i, root      int
	inZ          []bool
	excludeRoots bool
	off, ids     []int32 // pre-flood child CSR snapshot
}

// Step implements congest.Proto.
func (p *removeProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	c, i := p.c, p.i
	if round == 0 {
		if p.inZ[v] && c.InTree(i, v) && !(p.excludeRoots && v == p.root) {
			c.Removed[i][v] = true
			for _, w := range p.ids[p.off[v]:p.off[v+1]] {
				send(congest.Message{To: int(w), Kind: kindRemove})
			}
		}
		return !p.inZ[v]
	}
	for _, m := range in {
		if m.Kind != kindRemove || c.Removed[i][v] {
			continue
		}
		c.Removed[i][v] = true
		for _, w := range p.ids[p.off[v]:p.off[v+1]] {
			send(congest.Message{To: int(w), Kind: kindRemove})
		}
	}
	return true
}

// UpcastSum runs the Compute-Count convergecast of Algorithm 14
// (generalized): within tree i, each node starts with init[v] and finishes
// with the sum of init over its subtree, itself included; nodes outside the
// tree finish with 0. A node at depth d sends its accumulated sum to its
// parent at round H-d, so the fixed schedule is H+1 rounds per tree
// (Lemma A.18).
func (c *Collection) UpcastSum(nw *congest.Network, i int, init []int64) ([]int64, error) {
	acc := make([]int64, c.G.N)
	if err := c.UpcastSumInto(nw, i, init, acc); err != nil {
		return nil, err
	}
	return acc, nil
}

// UpcastSumInto is UpcastSum writing the per-node sums into acc (length n),
// so callers that loop over trees — the blocker score recomputations run
// one upcast per tree per commit — reuse their own storage instead of
// allocating a fresh vector per tree. init and acc may be arena-backed.
func (c *Collection) UpcastSumInto(nw *congest.Network, i int, init, acc []int64) error {
	n := c.G.N
	if len(acc) != n {
		return fmt.Errorf("csssp: upcast tree %d: acc length %d != n %d", i, len(acc), n)
	}
	for v := 0; v < n; v++ {
		if c.InTree(i, v) {
			acc[v] = init[v]
		} else {
			acc[v] = 0
		}
	}
	p := congest.ScratchState(nw.Scratch(), upcastKey{}, func() *upcastProto { return new(upcastProto) })
	p.c, p.i, p.acc = c, i, acc
	err := nw.RunFor(p, c.H+1)
	p.c, p.acc = nil, nil
	if err != nil {
		return fmt.Errorf("csssp: upcast tree %d: %w", i, err)
	}
	return nil
}

const kindCount uint8 = 12

type upcastKey struct{}

// upcastProto is the Compute-Count convergecast as a reusable per-network
// protocol (pooled via congest.ScratchState).
type upcastProto struct {
	c   *Collection
	i   int
	acc []int64
}

// Step implements congest.Proto.
func (p *upcastProto) Step(v, round int, in []congest.Message, send func(congest.Message)) bool {
	c, i, h := p.c, p.i, p.c.H
	for _, m := range in {
		if m.Kind == kindCount {
			p.acc[v] += m.A
		}
	}
	if c.InTree(i, v) {
		if d := c.Depth[i][v]; d > 0 && round == h-d {
			send(congest.Message{To: c.Parent[i][v], Kind: kindCount, A: p.acc[v]})
		}
	}
	return round >= h
}

// ResetRemovals restores every tree to its as-built state (all removal
// marks cleared). Algorithms that prune a collection (blocker construction,
// bottleneck elimination) run on the same trees the later steps route on;
// callers reset between the two uses.
func (c *Collection) ResetRemovals() {
	for i := range c.Removed {
		for v := range c.Removed[i] {
			c.Removed[i][v] = false
		}
	}
}

// RemoveSubtreesLocal applies the effect of Algorithm 6 without consuming
// network rounds. It exists for baseline algorithms whose papers give a
// cheaper distributed implementation than re-flooding every tree (the
// caller charges the appropriate rounds separately; see blocker.Greedy).
func (c *Collection) RemoveSubtreesLocal(inZ []bool, excludeRoots bool) {
	n := c.G.N
	var stack []int32
	for i := range c.Sources {
		root := c.Sources[i]
		stack = stack[:0]
		for v := 0; v < n; v++ {
			if inZ[v] && c.InTree(i, v) && !(excludeRoots && v == root) {
				stack = append(stack, int32(v))
			}
		}
		for len(stack) > 0 {
			v := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			if c.Removed[i][v] {
				continue
			}
			c.Removed[i][v] = true
			// Children already removed (by this call or earlier) had their
			// subtrees handled when they were removed.
			for _, w := range c.ChildIDs(i, v) {
				if !c.Removed[i][w] {
					stack = append(stack, w)
				}
			}
		}
	}
}

// CheckContainment verifies the CSSSP containment property (Definition
// A.3) against the sequential oracle: for every source x and vertex v, if
// some path from x to v (or v to x, for in-trees) with at most H hops has
// weight delta(x,v), then v must be in T_x at that distance. It returns an
// error describing the first violation.
func (c *Collection) CheckContainment() error {
	g := c.G
	if c.Mode == bford.In {
		g = g.Reverse()
	}
	for i, src := range c.Sources {
		full := graph.Dijkstra(g, src)
		hopb := graph.BellmanFordHops(g, src, c.H)
		for v := 0; v < g.N; v++ {
			if full[v] < graph.Inf && hopb[v] == full[v] {
				if c.Depth[i][v] < 0 {
					return fmt.Errorf("csssp: tree %d (src %d) misses node %d with %d-hop-achievable distance %d", i, src, v, c.H, full[v])
				}
				if c.Dist[i][v] != full[v] {
					return fmt.Errorf("csssp: tree %d (src %d) node %d: dist %d != delta %d", i, src, v, c.Dist[i][v], full[v])
				}
			}
		}
	}
	return nil
}

// CheckConsistency verifies the cross-tree path-consistency property of
// Definition 2.1: for every pair (u, v), the u->v path is identical in
// every tree of the collection in which v appears below u. It reports the
// number of (u, v) pairs inspected and an error on the first mismatch.
func (c *Collection) CheckConsistency() (int, error) {
	n := c.G.N
	checked := 0
	// canonical[u*n+v] is the first-seen u->v tree path, encoded as the
	// parent chain from v up to u.
	canonical := make(map[int][]int)
	for i := range c.Sources {
		for v := 0; v < n; v++ {
			if !c.InTree(i, v) {
				continue
			}
			path := c.PathToRoot(i, v)
			// Every ancestor u at index j defines a u->v subpath path[0..j].
			for j := 1; j < len(path); j++ {
				u := path[j]
				key := u*n + v
				sub := path[:j+1]
				if prev, ok := canonical[key]; ok {
					checked++
					if !equalInts(prev, sub) {
						return checked, fmt.Errorf("csssp: inconsistent %d->%d path between trees", u, v)
					}
				} else {
					canonical[key] = append([]int(nil), sub...)
				}
			}
		}
	}
	return checked, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
