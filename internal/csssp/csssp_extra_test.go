package csssp

import (
	"testing"

	"congestapsp/internal/bford"
	"congestapsp/internal/graph"
)

func TestUpcastSumSubtreeSizes(t *testing.T) {
	// Path 0-1-2-3-4, h=4, tree of source 0: subtree size of node i is 5-i.
	g := graph.New(5, false)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	c, nw := buildAll(t, g, 4, bford.Out)
	ones := make([]int64, 5)
	for i := range ones {
		ones[i] = 1
	}
	got, err := c.UpcastSum(nw, 0, ones)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if got[v] != int64(5-v) {
			t.Errorf("subtree size of %d = %d, want %d", v, got[v], 5-v)
		}
	}
}

func TestUpcastSumRespectsRemovals(t *testing.T) {
	g := graph.New(5, false)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	c, nw := buildAll(t, g, 4, bford.Out)
	inZ := make([]bool, 5)
	inZ[3] = true
	if err := c.RemoveSubtrees(nw, inZ, false); err != nil {
		t.Fatal(err)
	}
	ones := make([]int64, 5)
	for i := range ones {
		ones[i] = 1
	}
	got, err := c.UpcastSum(nw, 0, ones)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 { // nodes 0,1,2 remain
		t.Errorf("root sum after removal = %d, want 3", got[0])
	}
	if got[3] != 0 || got[4] != 0 {
		t.Errorf("removed nodes contribute: %v", got)
	}
}

func TestUpcastSumWeighted(t *testing.T) {
	g := graph.Star(graph.GenConfig{N: 6, Seed: 1, MaxWeight: 3})
	c, nw := buildAll(t, g, 2, bford.Out)
	init := []int64{0, 10, 20, 30, 40, 50}
	got, err := c.UpcastSum(nw, 0, init) // tree of the hub
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 150 {
		t.Errorf("hub total = %d, want 150", got[0])
	}
}

func TestLabelFieldSemantics(t *testing.T) {
	// Label must equal the 2h-hop oracle distance for every node, even
	// nodes outside the truncated tree.
	g := graph.RandomConnected(graph.GenConfig{N: 22, Directed: true, Seed: 5, MaxWeight: 10}, 66)
	h := 3
	c, _ := buildAll(t, g, h, bford.Out)
	for i, src := range c.Sources {
		want := graph.BellmanFordHops(g, src, 2*h)
		for v := 0; v < g.N; v++ {
			if c.Label[i][v] != want[v] {
				t.Fatalf("tree %d: Label[%d] = %d, want %d", i, v, c.Label[i][v], want[v])
			}
			if c.InTree(i, v) && c.Dist[i][v] > c.Label[i][v] {
				t.Fatalf("tree %d node %d: Dist %d > Label %d", i, v, c.Dist[i][v], c.Label[i][v])
			}
		}
	}
}

func TestResetRemovals(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 10, Seed: 2, MaxWeight: 4})
	c, nw := buildAll(t, g, 3, bford.Out)
	inZ := make([]bool, g.N)
	inZ[2], inZ[7] = true, true
	if err := c.RemoveSubtrees(nw, inZ, false); err != nil {
		t.Fatal(err)
	}
	removedSomething := false
	for i := range c.Sources {
		for v := 0; v < g.N; v++ {
			if c.Removed[i][v] {
				removedSomething = true
			}
		}
	}
	if !removedSomething {
		t.Fatal("nothing removed before reset")
	}
	c.ResetRemovals()
	for i := range c.Sources {
		for v := 0; v < g.N; v++ {
			if c.Removed[i][v] {
				t.Fatalf("tree %d node %d still removed after reset", i, v)
			}
		}
	}
}

func TestRemoveSubtreesExcludeRoots(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 8, Seed: 3, MaxWeight: 4})
	c, nw := buildAll(t, g, 3, bford.Out)
	inZ := make([]bool, g.N)
	inZ[0] = true
	if err := c.RemoveSubtrees(nw, inZ, true); err != nil {
		t.Fatal(err)
	}
	// Tree 0 is rooted at node 0: with excludeRoots it must stay intact.
	for v := 0; v < g.N; v++ {
		if c.Depth[0][v] >= 0 && c.Removed[0][v] {
			t.Errorf("tree 0 node %d removed despite excludeRoots", v)
		}
	}
	// In other trees node 0's subtree must be gone.
	if c.InTree(1, 0) {
		t.Error("node 0 survives in tree 1")
	}
}

func TestRemoveSubtreesLocalEquivalentToDistributed(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 18, Seed: 4, MaxWeight: 6}, 54)
	h := 3
	cd, nw := buildAll(t, g, h, bford.Out)
	cl, _ := buildAll(t, g, h, bford.Out)
	inZ := make([]bool, g.N)
	inZ[3], inZ[11] = true, true
	if err := cd.RemoveSubtrees(nw, inZ, true); err != nil {
		t.Fatal(err)
	}
	cl.RemoveSubtreesLocal(inZ, true)
	for i := range cd.Sources {
		for v := 0; v < g.N; v++ {
			if cd.Removed[i][v] != cl.Removed[i][v] {
				t.Fatalf("tree %d node %d: distributed %v != local %v",
					i, v, cd.Removed[i][v], cl.Removed[i][v])
			}
		}
	}
}

func TestInCSSSPPathsPointTowardSink(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 16, Directed: true, Seed: 6, MaxWeight: 8}, 60)
	c, _ := buildAll(t, g, 4, bford.In)
	for i, sink := range c.Sources {
		for v := 0; v < g.N; v++ {
			if !c.InTree(i, v) || v == sink {
				continue
			}
			path := c.PathToRoot(i, v)
			if path[len(path)-1] != sink {
				t.Fatalf("in-tree %d: path from %d ends at %d, not sink %d", i, v, path[len(path)-1], sink)
			}
			// Consecutive path nodes must be connected by a forward edge
			// (v -> parent direction for in-trees).
			for j := 0; j+1 < len(path); j++ {
				ok := false
				g.OutNeighbors(path[j], func(u int, _ int64) {
					if u == path[j+1] {
						ok = true
					}
				})
				if !ok {
					t.Fatalf("in-tree %d: %d->%d is not an edge", i, path[j], path[j+1])
				}
			}
		}
	}
}
