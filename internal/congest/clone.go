package congest

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the source-sharding substrate: cheap Network clones
// that share the immutable CSR topology, additive Stats merging, and the
// ShardRuns work-stealing scheduler that dispatches independent sub-runs
// (one CONGEST protocol execution per source) across a worker pool. See
// DESIGN.md §2.5.

// Clone returns a Network over the same communication topology with fresh,
// zeroed statistics and its own engine and scratch arenas. The input graph,
// underlying undirected graph and CSR adjacency arenas are shared (they are
// immutable for the lifetime of a run), so a clone costs O(n) — the
// per-node stats vector — not O(n + m).
//
// The clone starts with Parallel unset (worker clones run the sequential
// engine; the parallelism lives one level up, across sources) and no
// OnRound hook. Bandwidth is inherited. The scratch arena is NOT shared:
// each clone owns a private one, which is what lets a worker fleet run
// allocation-free without locks.
func (nw *Network) Clone() *Network {
	c := &Network{
		G:         nw.G,
		UG:        nw.UG,
		Bandwidth: nw.Bandwidth,
		nbrOff:    nw.nbrOff,
		nbrs:      nw.nbrs,
	}
	c.Stats.WordsByNode = make([]int64, nw.G.N)
	return c
}

// Add accumulates o into s: every counter is additive, including the
// per-node word vector, so summing per-worker Stats in sub-run order
// reproduces the sequential totals bit for bit (integer addition is exact).
func (s *Stats) Add(o *Stats) {
	s.Rounds += o.Rounds
	s.Messages += o.Messages
	s.Words += o.Words
	if len(s.WordsByNode) < len(o.WordsByNode) {
		grown := make([]int64, len(o.WordsByNode))
		copy(grown, s.WordsByNode)
		s.WordsByNode = grown
	}
	for v, w := range o.WordsByNode {
		s.WordsByNode[v] += w
	}
}

// ShardRuns executes fn(w, i) for every i in [0, count), where each
// invocation is one complete, independent protocol execution (e.g. one
// per-source Bellman-Ford). Sequentially — when Parallel is unset, an
// OnRound hook is installed (traces must observe the serial schedule), or
// count < 2 — every call receives nw itself, exactly as if the caller had
// looped. Otherwise min(GOMAXPROCS, count) workers, each owning a Clone of
// nw, pull sub-run indices from a shared atomic counter (work stealing): a
// worker that drew a cheap sub-run immediately pulls the next index instead
// of idling at a chunk barrier, so skewed workloads — one expensive source
// on a power-law hub, the rest trivial — keep every worker busy until the
// queue drains. fn must write only state owned by index i (a matrix row, a
// slot in a per-source slice).
//
// After the workers join, per-clone Stats are added into nw.Stats. Which
// clone executed which sub-run depends on the interleaving, but every
// counter (rounds, messages, words, the per-node WordsByNode vector) is an
// exact integer sum over per-sub-run contributions, and integer addition is
// commutative and associative — so the merged totals are bit-identical to
// the sequential schedule regardless of how the indices were distributed.
// Each sub-run itself executes on exactly one clone, whose engine is
// deterministic, so per-index results never depend on the interleaving
// either.
//
// On error the scheduler stops handing out new indices (in-flight sub-runs
// finish) and the recorded error with the lowest sub-run index wins. For a
// deterministic fn that is the lowest failing index overall: indices are
// dispatched in increasing order, so the lowest failing index is always
// dispatched before any other failing one, and a dispatched sub-run
// completes and records its error before the scheduler returns. Which
// higher indices also ran is interleaving-dependent, but callers abort on
// error, so the partial stats are never observed as a result.
//
// Scratch discipline: the executing network's scratch arena is Reset before
// every fn invocation (sequentially that is nw's own arena; in parallel each
// worker resets its clone's). fn must therefore not retain arena-backed data
// from one invocation to the next — copy anything that outlives the sub-run
// into caller-owned storage, which every consumer in this repository already
// does (each sub-run writes one matrix row or per-index slot).
//
// The worker clones themselves are cached on nw and reused by every later
// ShardRuns call (Steps 3 and 7 of the pipeline, the q-sink SSSP pairs, the
// per-commit blocker upcasts all share one fleet), so their engines and
// scratch arenas stay warm: a steady-state sharded stage allocates nothing.
func (nw *Network) ShardRuns(count int, fn func(w *Network, i int) error) error {
	workers := 1
	if nw.Parallel && nw.OnRound == nil {
		workers = runtime.GOMAXPROCS(0)
		if workers > count {
			workers = count
		}
	}
	if workers <= 1 {
		sc := nw.Scratch()
		for i := 0; i < count; i++ {
			sc.Reset()
			if err := fn(nw, i); err != nil {
				return err
			}
		}
		return nil
	}

	for len(nw.fleet) < workers {
		nw.fleet = append(nw.fleet, nw.Clone())
	}
	var (
		next   atomic.Int64 // next undispatched sub-run index
		failed atomic.Bool  // stops dispatch once any sub-run errs
		wg     sync.WaitGroup
	)
	errs := make([]error, workers)
	errIdx := make([]int, workers)
	for w := 0; w < workers; w++ {
		cl := nw.fleet[w]
		cl.ResetStats()
		wg.Add(1)
		go func(w int, cl *Network) {
			defer wg.Done()
			sc := cl.Scratch()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				sc.Reset()
				if err := fn(cl, i); err != nil {
					errs[w], errIdx[w] = err, i
					failed.Store(true)
					return
				}
			}
		}(w, cl)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		nw.Stats.Add(&nw.fleet[w].Stats)
	}
	best := -1
	for w := range errs {
		if errs[w] != nil && (best == -1 || errIdx[w] < errIdx[best]) {
			best = w
		}
	}
	if best >= 0 {
		return errs[best]
	}
	return nil
}
