package congest

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the source-sharding substrate: cheap Network clones
// that share the immutable CSR topology, additive Stats merging, and the
// ShardRuns work-stealing scheduler that dispatches independent sub-runs
// (one CONGEST protocol execution per source) across a worker pool. See
// DESIGN.md §2.5.

// Clone returns a Network over the same communication topology with fresh,
// zeroed statistics and its own engine and scratch arenas. The input graph,
// underlying undirected graph and CSR adjacency arenas are shared (they are
// immutable for the lifetime of a run), so a clone costs O(n) — the
// per-node stats vector — not O(n + m).
//
// The clone starts with Parallel unset (worker clones run the sequential
// engine; the parallelism lives one level up, across sources) and no
// OnRound hook. Bandwidth is inherited. The scratch arena is NOT shared:
// each clone owns a private one, which is what lets a worker fleet run
// allocation-free without locks.
func (nw *Network) Clone() *Network {
	c := &Network{
		G:         nw.G,
		UG:        nw.UG,
		Bandwidth: nw.Bandwidth,
		nbrOff:    nw.nbrOff,
		nbrs:      nw.nbrs,
		subrun:    -1,
	}
	c.Stats.WordsByNode = make([]int64, nw.G.N)
	return c
}

// PanicError is a panic recovered inside a ShardRuns sub-run (or a pipeline
// stage), converted to an error so one poisoned source vertex cannot take
// down the whole process. The dispatcher's deterministic lowest-failing-index
// rule applies to PanicErrors exactly as to ordinary errors.
type PanicError struct {
	// SubRun is the failing sub-run index within its ShardRuns call
	// (-1 when the panic escaped a stage outside any sharded dispatch).
	SubRun int
	// Source is the source vertex the sub-run was computing, when the
	// caller tagged it (-1 when unknown).
	Source int
	// Stage is the pipeline stage that was executing ("" when unknown).
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	tag := ""
	if e.Stage != "" {
		tag = " in " + e.Stage
	}
	if e.SubRun >= 0 {
		tag += fmt.Sprintf(" (sub-run %d", e.SubRun)
		if e.Source >= 0 {
			tag += fmt.Sprintf(", source %d", e.Source)
		}
		tag += ")"
	}
	return fmt.Sprintf("congest: recovered panic%s: %v", tag, e.Value)
}

// statsSnapshot is a rewind point for a Network's Stats, taken before a
// sub-run when RetrySequential is armed so a panicking sub-run's partial
// counters can be discarded exactly.
type statsSnapshot struct {
	rounds      int
	messages    int64
	words       int64
	wordsByNode []int64
}

func (snap *statsSnapshot) save(s *Stats) {
	snap.rounds, snap.messages, snap.words = s.Rounds, s.Messages, s.Words
	snap.wordsByNode = append(snap.wordsByNode[:0], s.WordsByNode...)
}

func (snap *statsSnapshot) restore(s *Stats) {
	s.Rounds, s.Messages, s.Words = snap.rounds, snap.messages, snap.words
	copy(s.WordsByNode, snap.wordsByNode)
}

// callSub runs one sub-run on w with panic recovery: it resets w's scratch
// arena, marks the executing sub-run index (so the fault injector and error
// tags can see it), fires any armed per-sub-run fault, and converts a panic
// escaping fn into a *PanicError. The defer is an open-coded recover over
// named returns, so the happy path allocates nothing.
func callSub(w *Network, i int, fn func(w *Network, i int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{SubRun: i, Source: -1, Value: v, Stack: debug.Stack()}
		}
	}()
	w.subrun = i
	w.Scratch().Reset()
	if w.fault != nil {
		if ferr := w.fault.FireSubRun(i); ferr != nil {
			return ferr
		}
	}
	return fn(w, i)
}

// Add accumulates o into s: every counter is additive, including the
// per-node word vector, so summing per-worker Stats in sub-run order
// reproduces the sequential totals bit for bit (integer addition is exact).
func (s *Stats) Add(o *Stats) {
	s.Rounds += o.Rounds
	s.Messages += o.Messages
	s.Words += o.Words
	if len(s.WordsByNode) < len(o.WordsByNode) {
		grown := make([]int64, len(o.WordsByNode))
		copy(grown, s.WordsByNode)
		s.WordsByNode = grown
	}
	for v, w := range o.WordsByNode {
		s.WordsByNode[v] += w
	}
}

// ShardRuns executes fn(w, i) for every i in [0, count), where each
// invocation is one complete, independent protocol execution (e.g. one
// per-source Bellman-Ford). Sequentially — when Parallel is unset, an
// OnRound hook is installed (traces must observe the serial schedule), or
// count < 2 — every call receives nw itself, exactly as if the caller had
// looped. Otherwise min(GOMAXPROCS, count) workers, each owning a Clone of
// nw, pull sub-run indices from a shared atomic counter (work stealing): a
// worker that drew a cheap sub-run immediately pulls the next index instead
// of idling at a chunk barrier, so skewed workloads — one expensive source
// on a power-law hub, the rest trivial — keep every worker busy until the
// queue drains. fn must write only state owned by index i (a matrix row, a
// slot in a per-source slice).
//
// After the workers join, per-clone Stats are added into nw.Stats. Which
// clone executed which sub-run depends on the interleaving, but every
// counter (rounds, messages, words, the per-node WordsByNode vector) is an
// exact integer sum over per-sub-run contributions, and integer addition is
// commutative and associative — so the merged totals are bit-identical to
// the sequential schedule regardless of how the indices were distributed.
// Each sub-run itself executes on exactly one clone, whose engine is
// deterministic, so per-index results never depend on the interleaving
// either.
//
// On error the scheduler stops handing out new indices (in-flight sub-runs
// finish) and the recorded error with the lowest sub-run index wins. For a
// deterministic fn that is the lowest failing index overall: indices are
// dispatched in increasing order, so the lowest failing index is always
// dispatched before any other failing one, and a dispatched sub-run
// completes and records its error before the scheduler returns. Which
// higher indices also ran is interleaving-dependent, but callers abort on
// error, so the partial stats are never observed as a result.
//
// Scratch discipline: the executing network's scratch arena is Reset before
// every fn invocation (sequentially that is nw's own arena; in parallel each
// worker resets its clone's). fn must therefore not retain arena-backed data
// from one invocation to the next — copy anything that outlives the sub-run
// into caller-owned storage, which every consumer in this repository already
// does (each sub-run writes one matrix row or per-index slot).
//
// A panic escaping fn does not kill the process or deadlock the dispatcher:
// every sub-run executes under a recover that converts the panic into a
// *PanicError tagged with the sub-run index (and, once the caller annotates
// it, the source vertex and stage), and that error then competes under the
// same lowest-index rule as ordinary errors. When nw.RetrySequential is set,
// sub-runs that failed ONLY by panic are rewound (their partial stats
// discarded against a pre-sub-run snapshot) and re-executed sequentially, in
// increasing index order, on one fresh clone after the fleet drains; the
// merged stats of a fully-recovered run are bit-identical to an undisturbed
// one. Cancellation and ordinary errors are never retried.
//
// The worker clones themselves are cached on nw and reused by every later
// ShardRuns call (Steps 3 and 7 of the pipeline, the q-sink SSSP pairs, the
// per-commit blocker upcasts all share one fleet), so their engines and
// scratch arenas stay warm: a steady-state sharded stage allocates nothing.
// ArenaFootprint returns the high-water byte footprint of this network's
// scratch arena plus those of its cached worker-clone fleet. Arenas are
// grow-only, so the value is monotone; the serving layer folds it into the
// approximate per-entry byte accounting of the warm-Runner pool.
func (nw *Network) ArenaFootprint() int64 {
	total := nw.scratch.Footprint()
	for _, cl := range nw.fleet {
		total += cl.scratch.Footprint()
	}
	return total
}

// HostWorkers is the cap on concurrent sub-run workers on this host
// (GOMAXPROCS, the same bound ShardRuns applies before clamping to the
// sub-run count). The execution planner gates every sharded decision on
// HostWorkers() > 1, which is what makes it degenerate to all-seq on a
// single-core host.
func HostWorkers() int { return runtime.GOMAXPROCS(0) }

func (nw *Network) ShardRuns(count int, fn func(w *Network, i int) error) error {
	workers := 1
	if nw.Parallel && nw.OnRound == nil {
		workers = runtime.GOMAXPROCS(0)
		if workers > count {
			workers = count
		}
	}
	if workers <= 1 {
		return nw.shardRunsSeq(count, fn)
	}

	for len(nw.fleet) < workers {
		nw.fleet = append(nw.fleet, nw.Clone())
	}
	var (
		next   atomic.Int64 // next undispatched sub-run index
		failed atomic.Bool  // stops dispatch once any sub-run errs
		wg     sync.WaitGroup
	)
	errs := make([]error, workers)
	errIdx := make([]int, workers)
	panicked := make([][]subFailure, workers)
	for w := 0; w < workers; w++ {
		cl := nw.fleet[w]
		cl.ResetStats()
		cl.ctx, cl.fault = nw.ctx, nw.fault
		wg.Add(1)
		go func(w int, cl *Network) {
			defer wg.Done()
			var snap statsSnapshot
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				if nw.RetrySequential {
					snap.save(&cl.Stats)
				}
				err := callSub(cl, i, fn)
				if err == nil {
					continue
				}
				var pe *PanicError
				if nw.RetrySequential && errors.As(err, &pe) {
					// Discard the poisoned sub-run's partial counters and
					// keep this worker pulling; the index is re-run
					// sequentially after the fleet drains.
					snap.restore(&cl.Stats)
					panicked[w] = append(panicked[w], subFailure{i, err})
					continue
				}
				errs[w], errIdx[w] = err, i
				failed.Store(true)
				return
			}
		}(w, cl)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		nw.fleet[w].ctx, nw.fleet[w].fault = nil, nil
		nw.fleet[w].subrun = -1
		nw.Stats.Add(&nw.fleet[w].Stats)
	}
	best := -1
	for w := range errs {
		if errs[w] != nil && (best == -1 || errIdx[w] < errIdx[best]) {
			best = w
		}
	}
	var retry []subFailure
	for _, fs := range panicked {
		retry = append(retry, fs...)
	}
	if best >= 0 {
		// A non-retryable error aborts the run. The deterministic
		// lowest-failing-index rule still applies across BOTH failure
		// populations: a recovered panic at a lower index outranks it.
		err, idx := errs[best], errIdx[best]
		for _, f := range retry {
			if f.index < idx {
				err, idx = f.err, f.index
			}
		}
		return err
	}
	if len(retry) == 0 {
		return nil
	}
	return nw.retrySequential(retry, fn)
}

// subFailure records one panicked sub-run awaiting sequential retry.
type subFailure struct {
	index int
	err   error
}

// shardRunsSeq is the sequential dispatch path: every sub-run executes on nw
// itself, in index order, still under per-sub-run panic recovery (and, when
// RetrySequential is armed, the same rewind-and-retry policy as the parallel
// path, so the two exec modes expose one failure model).
func (nw *Network) shardRunsSeq(count int, fn func(w *Network, i int) error) error {
	var (
		snap  statsSnapshot
		retry []subFailure
	)
	defer func() { nw.subrun = -1 }()
	for i := 0; i < count; i++ {
		if nw.RetrySequential {
			snap.save(&nw.Stats)
		}
		err := callSub(nw, i, fn)
		if err == nil {
			continue
		}
		var pe *PanicError
		if nw.RetrySequential && errors.As(err, &pe) {
			snap.restore(&nw.Stats)
			retry = append(retry, subFailure{i, err})
			continue
		}
		// Sub-runs execute in index order here, so any previously collected
		// panic has a lower index and wins under the deterministic rule.
		if len(retry) > 0 {
			return retry[0].err
		}
		return err
	}
	if len(retry) == 0 {
		return nil
	}
	return nw.retrySequential(retry, fn)
}

// retrySequential re-executes panicked sub-runs in increasing index order on
// one fresh clone (fresh engine, fresh scratch arena — none of the state the
// panic may have poisoned). A sub-run that fails again, by panic or
// otherwise, aborts with the lowest failing index; on success the clone's
// stats merge into nw's, and because every counter is an exact integer sum
// over per-sub-run contributions the recovered totals are bit-identical to
// an undisturbed run.
func (nw *Network) retrySequential(retry []subFailure, fn func(w *Network, i int) error) error {
	sort.Slice(retry, func(a, b int) bool { return retry[a].index < retry[b].index })
	cl := nw.Clone()
	cl.ctx, cl.fault = nw.ctx, nw.fault
	for _, f := range retry {
		if err := callSub(cl, f.index, fn); err != nil {
			return err
		}
	}
	nw.Stats.Add(&cl.Stats)
	return nil
}
