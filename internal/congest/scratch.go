package congest

// This file implements the pooled scratch-arena subsystem (DESIGN.md §7).
// The engine itself reached a zero-allocation steady state in an earlier
// pass (reusable engine struct, double-buffered message arenas); the next
// allocation hot path was the protocol layer above it: every per-source
// Bellman-Ford, upcast, downcast and broadcast re-made its O(n) result and
// label vectors, and a full APSP pipeline executes thousands of such runs
// on one Network. The Scratch arena gives those consumers reusable memory
// with two complementary shapes:
//
//   - Typed grow-only slabs ([]int64, []int32, []int, []bool): flat
//     checkouts that live until the arena is reset. The reset points are
//     few and explicit — ShardRuns resets a worker's arena before every
//     sub-run, and the self-contained protocol entry points (bford.Run /
//     bford.RunLabels, unweighted.Run) reset on entry. Everything below a
//     reset point only takes. Slabs never shrink, so a steady-state rerun
//     of the same protocol performs no allocations.
//
//   - A keyed state registry (ScratchState): per-package pooled structures
//     whose lifetime is "until the next call of the same routine on this
//     Network" — irregular shapes (FIFO queues, item arenas, cached proto
//     structs) that a flat slab cannot express. Each package owns its key
//     and its ensure/rewind discipline, so registry users never interfere
//     with slab users.
//
// A Scratch belongs to exactly one Network and inherits its concurrency
// contract: one protocol execution at a time. Worker clones own private
// arenas (Clone starts with a fresh one), which is what makes the
// source-sharded fleet allocation-free in steady state.

// slab is one typed grow-only arena. take returns views of the backing
// array; grow replaces the backing array (outstanding views keep aliasing
// the old one, which stays valid until its holders are done), and Reset
// rewinds the cursor so the next run reuses the high-water footprint.
type slab[T any] struct {
	buf []T
	off int
}

func (s *slab[T]) take(n int) []T {
	if len(s.buf)-s.off < n {
		grown := 2 * len(s.buf)
		if grown < n {
			grown = n
		}
		s.buf = make([]T, grown)
		s.off = 0
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	return out
}

// Scratch is a per-Network arena of reusable protocol scratch memory. See
// the file comment for the checkout/reset contract. A Scratch is not safe
// for concurrent use; it is owned by its Network's single-execution
// discipline.
type Scratch struct {
	i64   slab[int64]
	i32   slab[int32]
	ints  slab[int]
	bools slab[bool]

	states map[any]any
}

// Reset rewinds every slab cursor. Memory handed out earlier becomes free
// for reuse: callers must not retain slab checkouts across a reset point
// (copy anything that outlives the run). Registry state is unaffected —
// each owner manages its own reuse.
func (s *Scratch) Reset() {
	s.i64.off, s.i32.off, s.ints.off, s.bools.off = 0, 0, 0, 0
}

// Footprint returns the arena's high-water byte footprint: the backing
// bytes of every typed slab. Slabs never shrink, so this is monotone per
// arena — the serving layer uses it (summed over a network and its worker
// fleet via Network.ArenaFootprint) for approximate per-entry byte
// accounting in the warm-Runner pool. Registry state is not counted: its
// shapes are owner-private and small relative to the O(n)-vector slabs.
func (s *Scratch) Footprint() int64 {
	return int64(len(s.i64.buf))*8 + int64(len(s.i32.buf))*4 +
		int64(len(s.ints.buf))*8 + int64(len(s.bools.buf))
}

// Int64s checks out a zeroed []int64 of length n.
func (s *Scratch) Int64s(n int) []int64 {
	out := s.i64.take(n)
	clear(out)
	return out
}

// Int64sFilled checks out a []int64 of length n with every element v
// (distance vectors are typically graph.Inf-filled).
func (s *Scratch) Int64sFilled(n int, v int64) []int64 {
	out := s.i64.take(n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Int32s checks out a zeroed []int32 of length n.
func (s *Scratch) Int32s(n int) []int32 {
	out := s.i32.take(n)
	clear(out)
	return out
}

// Ints checks out a zeroed []int of length n.
func (s *Scratch) Ints(n int) []int {
	out := s.ints.take(n)
	clear(out)
	return out
}

// IntsFilled checks out a []int of length n with every element v (parent
// vectors are typically -1-filled).
func (s *Scratch) IntsFilled(n, v int) []int {
	out := s.ints.take(n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Bools checks out a zeroed []bool of length n.
func (s *Scratch) Bools(n int) []bool {
	out := s.bools.take(n)
	clear(out)
	return out
}

// Grow returns buf with length exactly n and zeroed contents, reallocating
// only when the capacity has never been this large. It is the ensure step
// every registry-state owner applies to its pooled vectors.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		buf = make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// ScratchState returns the keyed pooled state of sc, building it on first
// use. Keys are package-scoped (an unexported zero-size type per owner), so
// distinct packages never collide. The state persists for the lifetime of
// the Network — owners size it with an ensure step per call and reuse it
// across calls; Scratch.Reset does not touch it.
func ScratchState[T any](sc *Scratch, key any, build func() T) T {
	if v, ok := sc.states[key]; ok {
		return v.(T)
	}
	if sc.states == nil {
		sc.states = make(map[any]any)
	}
	v := build()
	sc.states[key] = v
	return v
}
