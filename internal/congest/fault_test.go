package congest

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"congestapsp/internal/graph"
)

// TestShardRunsPanicBecomesError pins panic isolation: a panicking sub-run
// must not kill the process or deadlock the dispatcher, and must surface as
// a *PanicError tagged with its sub-run index — in both exec modes.
func TestShardRunsPanicBecomesError(t *testing.T) {
	g := path3()
	for _, workers := range []int{0, 2, 4} {
		if workers > 0 {
			withWorkers(t, workers)
		}
		nw, err := NewNetwork(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		nw.Parallel = workers > 0
		got := nw.ShardRuns(12, func(w *Network, i int) error {
			if i == 4 {
				panic("poisoned source")
			}
			return floodFor(w, i)
		})
		var pe *PanicError
		if !errors.As(got, &pe) {
			t.Fatalf("workers=%d: got %T (%v), want *PanicError", workers, got, got)
		}
		if pe.SubRun != 4 || pe.Value != "poisoned source" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: bad PanicError tags: %+v", workers, pe)
		}
		// The dispatcher must have drained cleanly: the same network serves
		// the next sharded stage.
		if err := nw.ShardRuns(4, floodFor); err != nil {
			t.Fatalf("workers=%d: network unusable after recovered panic: %v", workers, err)
		}
	}
}

// TestShardRunsPanicAndErrorLowestIndexWins pins the deterministic error
// rule across the two failure populations: a panic in one sub-run and an
// ordinary error in another always report whichever has the lower index.
func TestShardRunsPanicAndErrorLowestIndexWins(t *testing.T) {
	g := path3()
	cases := []struct {
		name       string
		panicAt    int
		errorAt    int
		wantPanic  bool
		wantSubRun int
	}{
		{"error-below-panic", 9, 2, false, 2},
		{"panic-below-error", 1, 7, true, 1},
	}
	for _, tc := range cases {
		for _, workers := range []int{0, 2, 4} {
			if workers > 0 {
				withWorkers(t, workers)
			}
			nw, err := NewNetwork(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			nw.Parallel = workers > 0
			got := nw.ShardRuns(16, func(w *Network, i int) error {
				switch i {
				case tc.panicAt:
					panic(i)
				case tc.errorAt:
					return fmt.Errorf("sub-run %d failed", i)
				}
				return floodFor(w, i)
			})
			var pe *PanicError
			if tc.wantPanic {
				if !errors.As(got, &pe) || pe.SubRun != tc.wantSubRun {
					t.Fatalf("%s workers=%d: got %v, want panic at sub-run %d", tc.name, workers, got, tc.wantSubRun)
				}
			} else {
				want := fmt.Sprintf("sub-run %d failed", tc.wantSubRun)
				if got == nil || got.Error() != want {
					t.Fatalf("%s workers=%d: got %v, want %q", tc.name, workers, got, want)
				}
			}
		}
	}
}

// TestShardRunsRetrySequential pins graceful degradation: with
// RetrySequential armed, sub-runs that panic on their first attempt are
// re-executed sequentially on a fresh clone, the run succeeds, and the
// merged stats are bit-identical to an undisturbed run — in both exec
// modes.
func TestShardRunsRetrySequential(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 24, Seed: 3, MaxWeight: 9}, 72)
	const count = 31
	clean := func(parallel bool) Stats {
		nw, err := NewNetwork(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		nw.Parallel = parallel
		if err := nw.ShardRuns(count, floodFor); err != nil {
			t.Fatal(err)
		}
		return nw.Stats
	}
	for _, workers := range []int{0, 3} {
		parallel := workers > 0
		if parallel {
			withWorkers(t, workers)
		}
		want := clean(parallel)
		nw, err := NewNetwork(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		nw.Parallel = parallel
		nw.RetrySequential = true
		var attempts [count]atomic.Int32
		err = nw.ShardRuns(count, func(w *Network, i int) error {
			if (i == 5 || i == 17) && attempts[i].Add(1) == 1 {
				// Poison the first attempt AFTER accruing partial cost, so
				// the snapshot rewind is actually exercised.
				if ferr := floodFor(w, i); ferr != nil {
					return ferr
				}
				panic("transient fault")
			}
			return floodFor(w, i)
		})
		if err != nil {
			t.Fatalf("workers=%d: retry did not recover: %v", workers, err)
		}
		if a, b := attempts[5].Load(), attempts[17].Load(); a != 2 || b != 2 {
			t.Fatalf("workers=%d: attempts = %d/%d, want 2/2", workers, a, b)
		}
		if !reflect.DeepEqual(nw.Stats, want) {
			t.Fatalf("workers=%d: recovered stats diverge\n  got:  %+v\n  want: %+v", workers, nw.Stats, want)
		}
	}
}

// TestShardRunsRetrySequentialPersistentPanic: a panic that recurs on the
// sequential retry surfaces as *PanicError instead of looping.
func TestShardRunsRetrySequentialPersistentPanic(t *testing.T) {
	withWorkers(t, 2)
	nw, err := NewNetwork(path3(), 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.Parallel = true
	nw.RetrySequential = true
	got := nw.ShardRuns(8, func(w *Network, i int) error {
		if i == 3 {
			panic("permanent fault")
		}
		return floodFor(w, i)
	})
	var pe *PanicError
	if !errors.As(got, &pe) || pe.SubRun != 3 {
		t.Fatalf("got %v, want persistent *PanicError at sub-run 3", got)
	}
}

// TestShardRunsRetrySequentialErrorAborts: ordinary errors are never
// retried — the run fails with the deterministic lowest-index error even
// when a panicked sub-run was provisionally scheduled for retry.
func TestShardRunsRetrySequentialErrorAborts(t *testing.T) {
	for _, workers := range []int{0, 2} {
		if workers > 0 {
			withWorkers(t, workers)
		}
		nw, err := NewNetwork(path3(), 1)
		if err != nil {
			t.Fatal(err)
		}
		nw.Parallel = workers > 0
		nw.RetrySequential = true
		got := nw.ShardRuns(12, func(w *Network, i int) error {
			switch i {
			case 2:
				panic("poison")
			case 6:
				return fmt.Errorf("sub-run %d failed", i)
			}
			return floodFor(w, i)
		})
		var pe *PanicError
		if !errors.As(got, &pe) || pe.SubRun != 2 {
			t.Fatalf("workers=%d: got %v, want the lower-index panic (sub-run 2)", workers, got)
		}
	}
}
