package congest

import (
	"errors"
	"testing"

	"congestapsp/internal/graph"
)

func path3() *graph.Graph {
	g := graph.New(3, false)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	return g
}

func TestNewNetworkRejectsBadBandwidth(t *testing.T) {
	if _, err := NewNetwork(path3(), 0); err == nil {
		t.Error("bandwidth 0 accepted")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := graph.New(4, true)
	g.MustAddEdge(3, 1, 1)
	g.MustAddEdge(1, 0, 1)
	g.MustAddEdge(2, 1, 1)
	nw, err := NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ns := nw.Neighbors(1)
	want := []int{0, 2, 3}
	if len(ns) != 3 {
		t.Fatalf("neighbors(1) = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("neighbors(1) = %v, want %v", ns, want)
		}
	}
	if !nw.IsLink(1, 3) || nw.IsLink(0, 3) {
		t.Error("IsLink wrong")
	}
}

func TestMessageDeliveryNextRound(t *testing.T) {
	nw, _ := NewNetwork(path3(), 1)
	gotAt := -1
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		if v == 0 && round == 0 {
			send(Message{To: 1, Kind: 9, A: 42})
		}
		if v == 1 {
			for _, m := range in {
				if m.Kind == 9 && m.A == 42 && m.From == 0 {
					gotAt = round
				}
			}
		}
		return round >= 2
	})
	if _, err := nw.Run(p, 10); err != nil {
		t.Fatal(err)
	}
	if gotAt != 1 {
		t.Errorf("message delivered at round %d, want 1", gotAt)
	}
}

func TestBandwidthViolationDetected(t *testing.T) {
	nw, _ := NewNetwork(path3(), 2)
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		if v == 0 && round == 0 {
			for i := 0; i < 3; i++ { // 3 words > bandwidth 2
				send(Message{To: 1, Kind: 1, A: int64(i)})
			}
		}
		return true
	})
	_, err := nw.Run(p, 5)
	var bw *ErrBandwidth
	if !errors.As(err, &bw) {
		t.Fatalf("err = %v, want ErrBandwidth", err)
	}
	if bw.From != 0 || bw.To != 1 {
		t.Errorf("violation on link %d->%d, want 0->1", bw.From, bw.To)
	}
}

func TestBandwidthPerLinkNotPerNode(t *testing.T) {
	// Node 1 sends one word to each of its two neighbors: legal at B=1.
	nw, _ := NewNetwork(path3(), 1)
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		if v == 1 && round == 0 {
			send(Message{To: 0, Kind: 1})
			send(Message{To: 2, Kind: 1})
		}
		return true
	})
	if _, err := nw.Run(p, 5); err != nil {
		t.Fatalf("per-link sends flagged: %v", err)
	}
}

func TestNonLinkSendRejected(t *testing.T) {
	nw, _ := NewNetwork(path3(), 1)
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		if v == 0 && round == 0 {
			send(Message{To: 2, Kind: 1}) // 0 and 2 share no link
		}
		return true
	})
	_, err := nw.Run(p, 5)
	var nl *ErrNotALink
	if !errors.As(err, &nl) {
		t.Fatalf("err = %v, want ErrNotALink", err)
	}
}

func TestRunForChargesExactBudget(t *testing.T) {
	nw, _ := NewNetwork(path3(), 1)
	idle := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool { return true })
	if err := nw.RunFor(idle, 17); err != nil {
		t.Fatal(err)
	}
	if nw.Stats.Rounds != 17 {
		t.Errorf("Rounds = %d, want 17", nw.Stats.Rounds)
	}
	if err := nw.RunFor(idle, 5); err != nil {
		t.Fatal(err)
	}
	if nw.Stats.Rounds != 22 {
		t.Errorf("Rounds = %d, want 22 (accumulated)", nw.Stats.Rounds)
	}
}

func TestNonTerminationReported(t *testing.T) {
	nw, _ := NewNetwork(path3(), 1)
	never := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool { return false })
	if _, err := nw.Run(never, 8); err == nil {
		t.Error("non-terminating protocol not reported")
	}
}

func TestStatsAccounting(t *testing.T) {
	nw, _ := NewNetwork(path3(), 4)
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		if v == 1 && round == 0 {
			send(Message{To: 0, Kind: 1, Words: 2})
			send(Message{To: 2, Kind: 1})
		}
		return true
	})
	if _, err := nw.Run(p, 5); err != nil {
		t.Fatal(err)
	}
	if nw.Stats.Messages != 2 {
		t.Errorf("Messages = %d, want 2", nw.Stats.Messages)
	}
	if nw.Stats.Words != 3 {
		t.Errorf("Words = %d, want 3", nw.Stats.Words)
	}
	if nw.Stats.WordsByNode[1] != 3 {
		t.Errorf("WordsByNode[1] = %d, want 3", nw.Stats.WordsByNode[1])
	}
	if nw.Stats.MaxNodeCongestion() != 3 {
		t.Errorf("MaxNodeCongestion = %d, want 3", nw.Stats.MaxNodeCongestion())
	}
	nw.ResetStats()
	if nw.Stats.Rounds != 0 || nw.Stats.Messages != 0 {
		t.Error("ResetStats did not zero stats")
	}
}

// flooder is a deterministic multi-round protocol used to compare parallel
// and sequential execution bit-for-bit.
type flooder struct {
	nw   *Network
	best []int64
}

func (f *flooder) Step(v, round int, in []Message, send func(Message)) bool {
	improved := false
	if round == 0 && v == 0 {
		f.best[v] = 1
		improved = true
	}
	for _, m := range in {
		if f.best[v] == 0 || m.A+int64(v%3) < f.best[v] {
			f.best[v] = m.A + int64(v%3)
			improved = true
		}
	}
	if improved && round < 20 {
		for _, u := range f.nw.Neighbors(v) {
			send(Message{To: u, Kind: 2, A: f.best[v] + 1})
		}
	}
	return round >= 20
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 60, Seed: 9, MaxWeight: 10}, 180)
	run := func(parallel bool) []int64 {
		nw, err := NewNetwork(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		nw.Parallel = parallel
		f := &flooder{nw: nw, best: make([]int64, g.N)}
		if err := nw.RunFor(f, 21); err != nil {
			t.Fatal(err)
		}
		return f.best
	}
	seq := run(false)
	par := run(true)
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("node %d: sequential %d != parallel %d", v, seq[v], par[v])
		}
	}
}

func TestRunForDropsFinalRoundSends(t *testing.T) {
	// Sends made in the final round of a fixed schedule are dropped by the
	// schedule: they must not be delivered and must not count in Stats.
	nw, _ := NewNetwork(path3(), 1)
	var sent, got int
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		got += len(in)
		if v == 0 {
			send(Message{To: 1, Kind: 1})
			sent++
		}
		return false
	})
	if err := nw.RunFor(p, 3); err != nil {
		t.Fatal(err)
	}
	if sent != 3 {
		t.Fatalf("node 0 stepped %d times, want 3", sent)
	}
	// Sends at rounds 0 and 1 are delivered (into rounds 1 and 2); the
	// round-2 send is dropped.
	if got != 2 {
		t.Errorf("delivered %d messages, want 2", got)
	}
	if nw.Stats.Messages != 2 || nw.Stats.Words != 2 {
		t.Errorf("Stats = %d msgs / %d words, want 2/2 (final-round send dropped)",
			nw.Stats.Messages, nw.Stats.Words)
	}
	if nw.Stats.WordsByNode[0] != 2 {
		t.Errorf("WordsByNode[0] = %d, want 2", nw.Stats.WordsByNode[0])
	}
	if nw.Stats.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", nw.Stats.Rounds)
	}
}

func TestRunForFinalRoundSendStillValidated(t *testing.T) {
	// Dropped or not, a send along a non-link is a protocol bug and must
	// still be reported.
	nw, _ := NewNetwork(path3(), 1)
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		if v == 0 && round == 1 {
			send(Message{To: 2, Kind: 1}) // 0-2 is not a link; round 1 is the final RunFor(2) round
		}
		return false
	})
	err := nw.RunFor(p, 2)
	var nl *ErrNotALink
	if !errors.As(err, &nl) {
		t.Fatalf("err = %v, want ErrNotALink", err)
	}
}

func TestDoneNodeWokenByMessage(t *testing.T) {
	// A node that terminated with an empty inbox may be skipped by the
	// active-set scheduler, but an incoming message must always wake it.
	nw, _ := NewNetwork(path3(), 1)
	wokeAt := -1
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		switch v {
		case 0:
			// Quiet until round 5, then poke node 1 (done long before).
			if round == 5 {
				send(Message{To: 1, Kind: 2})
			}
			return round >= 5
		case 1:
			for _, m := range in {
				if m.Kind == 2 {
					wokeAt = round
				}
			}
			return true // done from round 0; must still be woken
		default:
			return true
		}
	})
	if _, err := nw.Run(p, 20); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 6 {
		t.Errorf("node 1 woke at round %d, want 6", wokeAt)
	}
}

func TestLinkIndexAndDegree(t *testing.T) {
	g := graph.New(5, true)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(2, 4, 1)
	g.MustAddEdge(3, 2, 1)
	g.MustAddEdge(3, 2, 7) // parallel edge: collapsed in UG
	nw, err := NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := nw.Degree(2); d != 3 {
		t.Errorf("Degree(2) = %d, want 3", d)
	}
	want := map[int]int{0: 0, 3: 1, 4: 2}
	for u, idx := range want {
		if li := nw.LinkIndex(2, u); li != idx {
			t.Errorf("LinkIndex(2, %d) = %d, want %d", u, li, idx)
		}
	}
	if li := nw.LinkIndex(2, 1); li != -1 {
		t.Errorf("LinkIndex(2, 1) = %d, want -1", li)
	}
	if li := nw.LinkIndex(0, 4); li != -1 {
		t.Errorf("LinkIndex(0, 4) = %d, want -1", li)
	}
}

func TestParallelStatsIdentical(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 80, Seed: 3, MaxWeight: 9}, 240)
	run := func(parallel bool) (Stats, []int64) {
		nw, err := NewNetwork(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		nw.Parallel = parallel
		f := &flooder{nw: nw, best: make([]int64, g.N)}
		if err := nw.RunFor(f, 21); err != nil {
			t.Fatal(err)
		}
		return nw.Stats, f.best
	}
	seq, seqBest := run(false)
	par, parBest := run(true)
	if seq.Rounds != par.Rounds || seq.Messages != par.Messages || seq.Words != par.Words {
		t.Fatalf("stats differ: seq %+v par %+v", seq, par)
	}
	for v := range seq.WordsByNode {
		if seq.WordsByNode[v] != par.WordsByNode[v] {
			t.Fatalf("WordsByNode[%d]: seq %d par %d", v, seq.WordsByNode[v], par.WordsByNode[v])
		}
	}
	for v := range seqBest {
		if seqBest[v] != parBest[v] {
			t.Fatalf("state[%d]: seq %d par %d", v, seqBest[v], parBest[v])
		}
	}
}

func TestInboxSenderOrderDeterministic(t *testing.T) {
	// Inboxes must be ordered by (sender id, send order) under both
	// execution modes.
	g := graph.New(5, false)
	for _, u := range []int{0, 1, 2, 4} {
		g.MustAddEdge(u, 3, 1)
	}
	for _, parallel := range []bool{false, true} {
		nw, _ := NewNetwork(g, 2)
		nw.Parallel = parallel
		var order []int64
		p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
			if round == 0 && v != 3 {
				send(Message{To: 3, Kind: 1, A: int64(10 * v)})
				send(Message{To: 3, Kind: 1, A: int64(10*v + 1)})
			}
			if v == 3 {
				for _, m := range in {
					order = append(order, m.A)
				}
			}
			return round >= 1
		})
		if _, err := nw.Run(p, 5); err != nil {
			t.Fatal(err)
		}
		want := []int64{0, 1, 10, 11, 20, 21, 40, 41}
		if len(order) != len(want) {
			t.Fatalf("parallel=%v: inbox %v, want %v", parallel, order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("parallel=%v: inbox %v, want %v", parallel, order, want)
			}
		}
	}
}

func TestChargeRounds(t *testing.T) {
	nw, _ := NewNetwork(path3(), 1)
	nw.ChargeRounds(100)
	if nw.Stats.Rounds != 100 {
		t.Errorf("Rounds = %d, want 100", nw.Stats.Rounds)
	}
}

func TestOnRoundHook(t *testing.T) {
	nw, _ := NewNetwork(path3(), 1)
	var rounds []int
	var delivered []int
	nw.OnRound = func(r, d int) {
		rounds = append(rounds, r)
		delivered = append(delivered, d)
	}
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		if v == 0 && round == 0 {
			send(Message{To: 1, Kind: 3})
		}
		return round >= 1
	})
	if _, err := nw.Run(p, 5); err != nil {
		t.Fatal(err)
	}
	if len(rounds) < 2 {
		t.Fatalf("hook called %d times, want >= 2", len(rounds))
	}
	if rounds[0] != 0 || rounds[1] != 1 {
		t.Errorf("cumulative round indices = %v", rounds[:2])
	}
	if delivered[0] != 1 {
		t.Errorf("delivered into round 1: got %d at hook[0]... %v", delivered[0], delivered)
	}
}
