package congest

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"congestapsp/internal/graph"
)

// withWorkers pins GOMAXPROCS to n for the duration of a test so the
// work-stealing dispatcher genuinely runs n workers even on small CI hosts.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// floodFor runs a tiny flood protocol on w whose cost is a deterministic
// function of the sub-run index: source i%n floods its id for depth+1
// rounds. It stands in for the per-source SSSPs of the pipeline.
func floodFor(w *Network, i int) error {
	n := w.N()
	src := i % n
	depth := i%3 + 1
	p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
		if round < depth && (v == src || len(in) > 0) {
			for _, nb := range w.Neighbors(v) {
				send(Message{To: nb, Kind: 77, A: int64(i)})
			}
		}
		return round >= depth
	})
	return w.RunFor(p, depth+1)
}

// TestShardRunsWorkStealingStatsIdentical pins the scheduler's merge
// contract: for skewed per-index costs and several worker counts, the
// merged Stats after a work-stealing dispatch are bit-identical to the
// sequential schedule (exact integer sums commute, and each sub-run runs
// on exactly one deterministic engine).
func TestShardRunsWorkStealingStatsIdentical(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 40, Seed: 5, MaxWeight: 9}, 120)
	const count = 61
	run := func(workers int) Stats {
		if workers > 0 {
			withWorkers(t, workers)
		}
		nw, err := NewNetwork(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		nw.Parallel = workers > 0
		if err := nw.ShardRuns(count, floodFor); err != nil {
			t.Fatal(err)
		}
		return nw.Stats
	}
	seq := run(0)
	for _, workers := range []int{2, 3, 4, 7} {
		par := run(workers)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: stats diverge\n  seq: %+v\n  par: %+v", workers, seq, par)
		}
	}
}

// TestShardRunsStealsDynamically proves indices are pulled, not chunked:
// the sub-run at index 0 blocks until every other index has completed.
// Under the old static block partition with 2 workers, worker 0 owned
// indices 0..4 and the test would deadlock; with work stealing the second
// worker drains indices 1..9 while the first is parked on index 0.
func TestShardRunsStealsDynamically(t *testing.T) {
	withWorkers(t, 2)
	g := path3()
	nw, err := NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.Parallel = true
	const count = 10
	var others atomic.Int64
	allOthersDone := make(chan struct{})
	err = nw.ShardRuns(count, func(w *Network, i int) error {
		if i == 0 {
			<-allOthersDone // parks this worker; the other one must steal the rest
			return nil
		}
		if others.Add(1) == count-1 {
			close(allOthersDone)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardRunsLowestErrorIndexWins pins the deterministic error choice:
// with failures injected at two indices, the lower one is always reported,
// sequentially and under work stealing at several worker counts.
func TestShardRunsLowestErrorIndexWins(t *testing.T) {
	g := path3()
	boom := func(i int) error { return fmt.Errorf("sub-run %d failed", i) }
	for _, workers := range []int{0, 2, 4} {
		if workers > 0 {
			withWorkers(t, workers)
		}
		nw, err := NewNetwork(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		nw.Parallel = workers > 0
		got := nw.ShardRuns(16, func(w *Network, i int) error {
			if i == 5 || i == 11 {
				return boom(i)
			}
			return floodFor(w, i)
		})
		if got == nil || got.Error() != "sub-run 5 failed" {
			t.Fatalf("workers=%d: got error %v, want sub-run 5's", workers, got)
		}
	}
}

// TestShardRunsFleetReused pins the warm-fleet contract: two sharded
// stages on one network hand the same clones to the workers both times.
func TestShardRunsFleetReused(t *testing.T) {
	withWorkers(t, 3)
	g := path3()
	nw, err := NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.Parallel = true
	seen := func() map[*Network]bool {
		var mu sync.Mutex
		m := make(map[*Network]bool)
		if err := nw.ShardRuns(9, func(w *Network, i int) error {
			mu.Lock()
			m[w] = true
			mu.Unlock()
			return floodFor(w, i)
		}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	seen() // builds the fleet
	fleet := make(map[*Network]bool)
	for _, cl := range nw.fleet {
		fleet[cl] = true
	}
	if len(fleet) == 0 {
		t.Fatal("no fleet cached after a parallel stage")
	}
	for w := range seen() {
		if !fleet[w] {
			t.Fatal("second stage used a clone outside the cached fleet")
		}
	}
	if got := len(nw.fleet); got != 3 {
		t.Fatalf("fleet grew to %d clones, want 3", got)
	}
}

// TestParallelToggleWarmEngine is the regression test for the growing-
// shards bug: a warm engine that ran sequentially (one shard) and then
// grows its worker pool (Parallel toggled on between runs, as a session
// does) must keep delivering messages. The growth path reallocates the
// shard array, and the pre-grown shards' send closures used to stay bound
// to the old struct addresses — sends vanished into a ghost struct and a
// BFS flood reached nobody.
func TestParallelToggleWarmEngine(t *testing.T) {
	withWorkers(t, 4)
	g := graph.RandomConnected(graph.GenConfig{N: 32, Seed: 2, MaxWeight: 9}, 64)
	flood := func(nw *Network) (reached int) {
		n := nw.N()
		seen := make([]bool, n)
		seen[0] = true
		p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
			if round == 0 {
				if v != 0 {
					return true
				}
			} else {
				if seen[v] || len(in) == 0 {
					return true
				}
				seen[v] = true
			}
			for _, nb := range nw.Neighbors(v) {
				send(Message{To: nb, Kind: 5})
			}
			return v != 0 || round > 0
		})
		if _, err := nw.Run(p, n+2); err != nil {
			t.Fatal(err)
		}
		for _, s := range seen {
			if s {
				reached++
			}
		}
		return reached
	}
	nw, err := NewNetwork(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := flood(nw); got != g.N {
		t.Fatalf("sequential flood reached %d of %d", got, g.N)
	}
	// Same warm network, worker pool grown: every node must still hear it.
	nw.Parallel = true
	nw.MinShardNodes = 1
	if got := flood(nw); got != g.N {
		t.Fatalf("flood after growing the warm engine's worker pool reached %d of %d", got, g.N)
	}
}

// TestSetBandwidthReachesFleet: a warm session reconfiguring bandwidth
// must reach the cached worker clones, or sharded stages would validate
// against a stale budget.
func TestSetBandwidthReachesFleet(t *testing.T) {
	withWorkers(t, 2)
	g := path3()
	nw, err := NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.Parallel = true
	if err := nw.ShardRuns(4, floodFor); err != nil {
		t.Fatal(err) // builds the fleet
	}
	if err := nw.SetBandwidth(3); err != nil {
		t.Fatal(err)
	}
	// Each sub-run sends 3 words on one link in one round: legal only if
	// the clone fleet observed the new budget.
	err = nw.ShardRuns(4, func(w *Network, i int) error {
		p := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
			if v == 0 && round == 0 {
				for k := 0; k < 3; k++ {
					send(Message{To: 1, Kind: 9, A: int64(k)})
				}
			}
			return true
		})
		return w.RunFor(p, 2)
	})
	if err != nil {
		t.Fatalf("3 words at bandwidth 3 rejected: %v", err)
	}
	var bwErr *ErrBandwidth
	if err := nw.SetBandwidth(0); err == nil {
		t.Error("SetBandwidth(0) accepted")
	} else if errors.As(err, &bwErr) {
		t.Error("SetBandwidth(0) returned ErrBandwidth (want plain validation error)")
	}
}
