// Package congest implements a round-synchronous simulator for the CONGEST
// model of distributed computing (Peleg 2000), as specified in Section 1.1
// of Agarwal & Ramachandran, "Faster Deterministic All Pairs Shortest Paths
// in Congest Model" (SPAA 2020):
//
//   - n processors (nodes) connected by the links of the input graph; for a
//     directed input graph the communication network is the underlying
//     undirected graph UG.
//   - Computation proceeds in synchronous rounds. In each round a node may
//     send a constant number of words along each incident link, and it
//     receives in round r+1 the messages sent to it in round r.
//   - Local computation is free; complexity is measured in rounds.
//
// Protocols are per-node state machines driven by the engine. The engine
// enforces CONGEST legality: messages may only travel along links of UG and
// the number of words per link direction per round must not exceed the
// configured bandwidth. Violations are reported as errors rather than being
// silently absorbed, so tests can assert that an algorithm never overdrives
// an edge.
//
// The data plane is built for scale (see DESIGN.md): the adjacency is a
// CSR-style flat arena with binary-searched link lookup (no maps), message
// delivery moves double-buffered flat message arenas through a two-pass
// counting sort keyed on receiver (zero allocations per message in steady
// state), rounds step only the active nodes (non-terminated or with a
// non-empty inbox), and both the step and delivery phases shard across a
// worker pool when Parallel is set, with per-shard statistics merged at
// round end so results are bit-identical to sequential execution.
package congest

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"congestapsp/internal/graph"
)

// Message is one CONGEST message. Payload is a small fixed tuple of int64
// slots plus a protocol-defined Kind tag; this models the "constant number
// of node ids, edge weights and distance values per edge per round" that the
// paper assumes, and makes the word accounting concrete.
type Message struct {
	From, To int
	Kind     uint8
	A, B, C  int64
	// Words is the bandwidth cost of the message. Zero means "count the
	// populated payload implicitly as one word per slot in use plus one for
	// the kind/header"; protocols that know better may set it explicitly.
	Words int
}

func (m Message) cost() int {
	if m.Words > 0 {
		return m.Words
	}
	return 1
}

// defaultMinShardNodes is the default in-round sharding threshold: stepping
// a node costs tens to hundreds of nanoseconds (more when the round also
// delivers a message per node, as the pipelined broadcasts do) while
// dispatching a round to the worker pool costs a few microseconds, so
// sharding starts paying off around 512 active nodes per round.
const defaultMinShardNodes = 512

// EffectiveMinShardNodes reports the in-round sharding threshold this
// network applies: the configured MinShardNodes or the engine default. It
// is the planner hook core's per-stage cost model uses to predict whether a
// single-protocol stage (Steps 4 and 8) would ever enter the sharded path.
func (nw *Network) EffectiveMinShardNodes() int {
	if nw.MinShardNodes > 0 {
		return nw.MinShardNodes
	}
	return defaultMinShardNodes
}

// Proto is a distributed protocol expressed as a per-node step function.
//
// Step is invoked once per node per round, in increasing round order. in
// holds the messages delivered to v this round (sent in the previous round),
// in a deterministic order (sorted by sender id, then by send order at the
// sender); the slice aliases an engine arena and must not be retained past
// the call. send queues a message for delivery next round; the From field is
// filled in by the engine. Step returns true when node v has terminated; the
// protocol as a whole terminates when every node has returned true and no
// messages remain in flight.
//
// The engine schedules actively: a node that returned true and has an empty
// inbox may be skipped in subsequent rounds until a message arrives for it
// (it is always woken by an incoming message, and skipped nodes never miss
// one). A node that must act spontaneously at a future round — without
// being triggered by a message — must keep returning false until that round
// has passed. Every protocol in this repository already follows that
// discipline; it is the natural reading of "returns true when terminated".
//
// Step for node v must only read and write state belonging to v (protocols
// keep per-node state in slices indexed by node id); the engine may execute
// the Steps of distinct nodes concurrently within a round.
type Proto interface {
	Step(v int, round int, in []Message, send func(Message)) bool
}

// ProtoFunc adapts a function to the Proto interface.
type ProtoFunc func(v int, round int, in []Message, send func(Message)) bool

// Step implements Proto.
func (f ProtoFunc) Step(v int, round int, in []Message, send func(Message)) bool {
	return f(v, round, in, send)
}

// Stats accumulates the cost measures of one or more protocol executions on
// a network.
type Stats struct {
	Rounds   int   // total synchronous rounds consumed
	Messages int64 // total messages delivered
	Words    int64 // total words delivered
	// WordsByNode[v] counts words sent by v; the maximum over v is the
	// "congestion at a node" measure used in Section 4 of the paper.
	WordsByNode []int64
}

// MaxNodeCongestion returns max_v WordsByNode[v].
func (s *Stats) MaxNodeCongestion() int64 {
	var m int64
	for _, w := range s.WordsByNode {
		if w > m {
			m = w
		}
	}
	return m
}

// Network is a CONGEST communication network over the underlying undirected
// graph of an input graph.
type Network struct {
	G  *graph.Graph // the input graph (directed or undirected)
	UG *graph.Graph // communication topology (underlying undirected graph)

	// Bandwidth is the number of words each node may send along each
	// incident link per round in each direction. The paper assumes a
	// constant number of ids/weights/distances per edge per round.
	Bandwidth int

	// Parallel selects worker-pool execution. Two independent mechanisms
	// key off it: ShardRuns partitions whole sub-runs (one per source)
	// across cloned networks, and the engine shards the step and delivery
	// phases of a single round — but only when the round's active set is at
	// least MinShardNodes, since spawning workers for a small round costs
	// more than it saves. Results are bit-identical to sequential execution
	// either way.
	Parallel bool

	// MinShardNodes is the minimum active-set size at which a Parallel
	// round is actually sharded across workers (0 = the package default,
	// defaultMinShardNodes). Smaller rounds run on one worker; per-round
	// goroutine dispatch costs a few microseconds, which dominates the
	// sub-microsecond step loops of small simulations. Tests set 1 to force
	// the sharded path.
	MinShardNodes int

	// OnRound, when set, is invoked after every simulated round with a
	// monotonically increasing round sequence number and the number of
	// messages delivered into that round's inboxes. The sequence number
	// counts simulated rounds (it can differ slightly from Stats.Rounds,
	// which follows the paper's charged schedules). It powers the -trace
	// output of cmd/apsp; the hook must not call back into the network.
	OnRound func(round int, delivered int)

	roundSeq int // monotonic simulated-round counter for OnRound

	Stats Stats

	// CSR adjacency of UG: nbrs[nbrOff[v]:nbrOff[v+1]] is the sorted,
	// deduplicated neighbor set of v. Link lookup is a binary search in
	// that range, so validation and bandwidth accounting are map-free.
	nbrOff []int32
	nbrs   []int

	eng     engine  // reusable per-run engine state (see run)
	scratch Scratch // pooled protocol scratch (see scratch.go / DESIGN.md §7)

	// RetrySequential opts ShardRuns into graceful degradation: when a
	// sub-run panics (not a protocol error, not cancellation), its partial
	// statistics are rewound, the remaining sub-runs keep running, and the
	// panicked indices are re-executed sequentially on a fresh clone after
	// the fleet drains. A successful retry pass produces merged stats
	// bit-identical to an undisturbed run. The policy costs one O(n) stats
	// snapshot per sub-run while armed, so it stays off on the benchmark
	// hot path.
	RetrySequential bool

	// fleet caches the worker clones handed out by ShardRuns, so repeated
	// source-sharded stages (Steps 1/3/7, the q-sink SSSPs, the per-commit
	// blocker upcasts) reuse one clone fleet — and its warm engines and
	// scratch arenas — instead of re-deriving per-stage state.
	fleet []*Network

	// ctx, when armed via SetContext, is observed by the engine at round
	// granularity and by ShardRuns at sub-run granularity; the run returns
	// ctx.Err() (context.Canceled or context.DeadlineExceeded) unwrapped.
	// Disarmed (nil) the hot path pays one nil-check per round.
	ctx context.Context

	// fault, when armed via SetFaultInjector, is fired at the top of every
	// engine round and at every ShardRuns sub-run start (see
	// internal/faultinject). Disarmed it costs one nil-check per round.
	fault FaultInjector

	// subrun tags the sub-run index this network is currently executing
	// under ShardRuns (-1 outside ShardRuns); it is reported to the fault
	// injector and stamped into PanicError.
	subrun int
}

// FaultInjector is the engine-side fault-injection hook (implemented by
// internal/faultinject.Injector). Every method may sleep, panic, or return
// a forced error; a nil error means "no fault fired, keep going". The
// injector is armed explicitly via SetFaultInjector, so a disarmed network
// pays exactly one nil-check per hook site.
type FaultInjector interface {
	// FireRound runs at the top of every engine round. subrun is the
	// ShardRuns sub-run index the executing network is serving (-1 outside
	// ShardRuns); round is the 0-based round of the current protocol run.
	// FireRound may be called concurrently from worker clones.
	FireRound(subrun, round int) error
	// FireSubRun runs before each ShardRuns sub-run dispatch (inside the
	// panic-recovery scope, so an injected panic is isolated like any
	// worker panic).
	FireSubRun(subrun int) error
	// SetStage tells the injector which pipeline stage is executing; it is
	// called between stages, never concurrently with Fire*.
	SetStage(stage string)
}

// SetContext arms (or, with nil, disarms) run cancellation: while armed,
// the engine round loop and the ShardRuns dispatcher observe ctx.Done()
// and abort with ctx.Err(). A context that can never be canceled
// (ctx.Done() == nil, e.g. context.Background()) disarms the check
// entirely so the steady-state round loop pays only a nil comparison.
func (nw *Network) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	nw.ctx = ctx
}

// SetFaultInjector arms (nil: disarms) the fault-injection hook on nw.
// ShardRuns propagates the hook to its worker clones per call.
func (nw *Network) SetFaultInjector(fi FaultInjector) { nw.fault = fi }

// NotifyStage forwards the executing pipeline stage name to the armed
// fault injector (no-op when disarmed). Callers invoke it between stages,
// never while a protocol is running.
func (nw *Network) NotifyStage(stage string) {
	if nw.fault != nil {
		nw.fault.SetStage(stage)
	}
}

// CtxErr reports the armed context's cancellation state (nil when no
// cancelable context is armed) — the same check the engine's round loop
// performs, exposed so the pipeline executor can observe cancellation at
// stage boundaries too.
func (nw *Network) CtxErr() error {
	if nw.ctx == nil {
		return nil
	}
	return nw.ctx.Err()
}

// NewNetwork builds a network for input graph g with the given per-link
// bandwidth (words per direction per round). Bandwidth must be >= 1.
func NewNetwork(g *graph.Graph, bandwidth int) (*Network, error) {
	if bandwidth < 1 {
		return nil, fmt.Errorf("congest: bandwidth must be >= 1, got %d", bandwidth)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ug := g.UnderlyingUndirected()
	n := g.N
	nw := &Network{
		G:         g,
		UG:        ug,
		Bandwidth: bandwidth,
		subrun:    -1,
	}
	nw.Stats.WordsByNode = make([]int64, n)
	nw.nbrOff, nw.nbrs = buildCSR(ug)
	return nw, nil
}

// buildCSR builds the CSR adjacency of ug: fill with an upper bound per
// node (incident edge count), then sort and dedup each range in place,
// compacting as we go.
func buildCSR(ug *graph.Graph) ([]int32, []int) {
	n := ug.N
	nbrOff := make([]int32, n+1)
	offs := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offs[v+1] = offs[v] + int32(ug.OutDegree(v))
	}
	arena := make([]int, offs[n])
	fill := make([]int32, n)
	copy(fill, offs[:n])
	for v := 0; v < n; v++ {
		ug.OutNeighbors(v, func(u int, _ int64) {
			arena[fill[v]] = u
			fill[v]++
		})
	}
	w := int32(0)
	for v := 0; v < n; v++ {
		rng := arena[offs[v]:fill[v]]
		slices.Sort(rng)
		for i, u := range rng {
			if i == 0 || u != rng[i-1] {
				arena[w] = u
				w++
			}
		}
		nbrOff[v+1] = w
	}
	return nbrOff, arena[:w:w]
}

// SyncTopology re-derives the communication topology from the (mutated)
// input graph: the underlying undirected graph and the CSR adjacency arena
// are rebuilt and re-pointed on nw AND on every cached worker clone (clones
// share the arenas by reference, so leaving them stale would split the
// fleet across two topologies). Weight-only mutations never need this —
// the CSR is topology-only and UG weights are never read after
// construction — but edge insertion/removal does. The engine's per-link
// arenas re-size lazily on the next Run.
func (nw *Network) SyncTopology() error {
	if err := nw.G.Validate(); err != nil {
		return err
	}
	nw.UG = nw.G.UnderlyingUndirected()
	nw.nbrOff, nw.nbrs = buildCSR(nw.UG)
	for _, cl := range nw.fleet {
		cl.UG = nw.UG
		cl.nbrOff, cl.nbrs = nw.nbrOff, nw.nbrs
	}
	return nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.G.N }

// Neighbors returns v's neighbors in the communication graph, sorted by id.
// The returned slice aliases the adjacency arena and must not be modified.
func (nw *Network) Neighbors(v int) []int {
	return nw.nbrs[nw.nbrOff[v]:nw.nbrOff[v+1]]
}

// Degree returns the number of communication links incident to v.
func (nw *Network) Degree(v int) int {
	return int(nw.nbrOff[v+1] - nw.nbrOff[v])
}

// LinkIndex returns the dense per-node index of the link {v,u} at v — the
// position of u in Neighbors(v) — or -1 when no such link exists. Protocols
// use it to keep per-link state in flat slices parallel to Neighbors(v).
func (nw *Network) LinkIndex(v, u int) int {
	if i, ok := slices.BinarySearch(nw.nbrs[nw.nbrOff[v]:nw.nbrOff[v+1]], u); ok {
		return i
	}
	return -1
}

// IsLink reports whether {u,v} is a communication link.
func (nw *Network) IsLink(u, v int) bool {
	return nw.LinkIndex(u, v) >= 0
}

// Scratch returns the network's pooled scratch arena. It is owned by the
// network's single-execution discipline: never share it across goroutines
// (worker clones carry their own).
func (nw *Network) Scratch() *Scratch { return &nw.scratch }

// ResetStats zeroes the accumulated statistics (and the OnRound trace
// sequence number) in place, so a warm network can start a fresh logical
// run — the reset point of a session's Run-after-Run reuse.
func (nw *Network) ResetStats() {
	s := &nw.Stats
	s.Rounds, s.Messages, s.Words = 0, 0, 0
	if len(s.WordsByNode) != nw.G.N {
		s.WordsByNode = make([]int64, nw.G.N)
	}
	clear(s.WordsByNode)
	nw.roundSeq = 0
}

// SetBandwidth reconfigures the per-link word budget on nw and on its
// cached worker-clone fleet (clones inherit Bandwidth when created, so a
// warm session that changes bandwidth between runs must reach them too).
func (nw *Network) SetBandwidth(b int) error {
	if b < 1 {
		return fmt.Errorf("congest: bandwidth must be >= 1, got %d", b)
	}
	nw.Bandwidth = b
	for _, cl := range nw.fleet {
		cl.Bandwidth = b
	}
	return nil
}

// ChargeRounds adds k rounds to the running total without simulating them.
// It exists for protocol steps whose round cost the paper charges as part of
// a composed schedule (see DESIGN.md); use sparingly and document each call
// site.
func (nw *Network) ChargeRounds(k int) { nw.Stats.Rounds += k }

// ErrBandwidth is returned (wrapped) when a protocol exceeds the per-link
// bandwidth in some round.
type ErrBandwidth struct {
	Round    int
	From, To int
	Words    int
	Limit    int
}

// Error describes which link exceeded its per-round word budget.
func (e *ErrBandwidth) Error() string {
	return fmt.Sprintf("congest: bandwidth violation at round %d on link %d->%d: %d words > limit %d",
		e.Round, e.From, e.To, e.Words, e.Limit)
}

// ErrNotALink is returned when a protocol sends along a non-existent link.
type ErrNotALink struct {
	Round    int
	From, To int
}

// Error describes the nonexistent link a node tried to send on.
func (e *ErrNotALink) Error() string {
	return fmt.Sprintf("congest: node %d sent to %d at round %d but they share no link", e.From, e.To, e.Round)
}

// shard is one worker's slice of the engine state. Senders are partitioned
// across shards in contiguous id ranges, so everything written here during
// a round is owned by exactly one goroutine.
type shard struct {
	lo, hi int // range of indices into the active list this round

	// out is this shard's half of the double-buffered message arenas: node
	// v's sends land in out[outStart[i]:outEnd[i]] for v = active[i]. The
	// arena is reset (not freed) every round, so steady-state rounds do not
	// allocate per message.
	out  []Message
	from int // node currently stepping (stamped into Message.From)
	send func(Message)

	// Counting-sort state: cnt[r] is, during pass 1, the number of messages
	// this shard sends to receiver r (valid when cstamp[r] is current), and
	// after the merge, the next arena slot this shard writes for r.
	cnt     []int32
	cstamp  []uint64
	touched []int32 // receivers this shard counted this round

	// Per-shard Stats accumulators, merged into Network.Stats at round end.
	msgs  int64
	words int64
	vio   error
}

func (s *shard) doSend(m Message) {
	m.From = s.from
	s.out = append(s.out, m)
}

// engine is the reusable scratch of run: allocated once per (n, workers)
// configuration and reused across rounds and across Run calls, so the
// steady-state round loop performs no allocations.
type engine struct {
	n       int
	workers int

	done   []bool
	active []int32 // sorted ids stepped this round
	next   []int32 // active list under construction for next round

	// Inbox views into inArena: node v's inbox this round is
	// inArena[inStart[v]:inEnd[v]], valid iff inStamp[v] == stamp.
	inArena []Message
	inStart []int32
	inEnd   []int32
	inStamp []uint64
	stamp   uint64

	// outStart/outEnd[i] delimit active[i]'s sends within its shard's out
	// arena.
	outStart []int32
	outEnd   []int32

	used    []int32 // per-link words used this round, indexed like nbrs
	shards  []shard
	touched []int32 // deduplicated receivers this round, in shard order

	capped cappedProto // reusable RunFor wrapper (avoids one alloc per run)
}

func (e *engine) ensure(n, links, workers int) {
	if e.n != n || len(e.used) != links {
		e.n = n
		e.done = make([]bool, n)
		e.active = make([]int32, 0, n)
		e.next = make([]int32, 0, n)
		e.inStart = make([]int32, n)
		e.inEnd = make([]int32, n)
		e.inStamp = make([]uint64, n)
		e.outStart = make([]int32, n)
		e.outEnd = make([]int32, n)
		e.used = make([]int32, links)
		e.touched = make([]int32, 0, n)
		e.shards = nil
		e.stamp = 0
	}
	if len(e.shards) < workers {
		e.shards = append(e.shards, make([]shard, workers-len(e.shards))...)
		// Rebind EVERY shard's send closure, not just the new ones: append
		// may have moved the backing array, and a send bound to a shard's
		// old address would append into a ghost struct — sends from a warm
		// engine whose worker count just grew (a session toggling Parallel
		// between runs) would silently vanish.
		for w := range e.shards {
			sh := &e.shards[w]
			if sh.cnt == nil {
				sh.cnt = make([]int32, n)
				sh.cstamp = make([]uint64, n)
			}
			sh.send = sh.doSend
		}
	}
	e.workers = workers
}

// Run executes p until global termination or until maxRounds rounds have
// elapsed, whichever is first. It returns the number of rounds executed.
// Statistics accumulate into nw.Stats across calls, so a sequence of Run
// calls models the paper's "Step k takes ... rounds" composition.
//
// A Network supports one execution at a time: Run and RunFor reuse per-run
// scratch state owned by the network, so they must not be called
// concurrently on the same Network or reentrantly from an OnRound hook or a
// protocol Step. Build one Network per goroutine for concurrent experiments.
func (nw *Network) Run(p Proto, maxRounds int) (int, error) {
	return nw.run(p, maxRounds, -1)
}

// run is the engine proper. Sends made in round dropRound are validated but
// neither delivered nor counted (RunFor's final-round drop); -1 disables
// dropping. A Network supports one run at a time.
func (nw *Network) run(p Proto, maxRounds, dropRound int) (int, error) {
	n := nw.G.N
	workers := 1
	if nw.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
		if workers < 1 {
			workers = 1
		}
	}
	e := &nw.eng
	e.ensure(n, len(nw.nbrs), workers)
	e.stamp++ // invalidate inbox views from any previous run
	for v := range e.done {
		e.done[v] = false
	}
	e.active = e.active[:0]
	for v := 0; v < n; v++ {
		e.active = append(e.active, int32(v))
	}

	minShard := nw.MinShardNodes
	if minShard == 0 {
		minShard = defaultMinShardNodes
	}

	rounds := 0
	for round := 0; round < maxRounds; round++ {
		// Global termination: no node is live and no message is in flight.
		if len(e.active) == 0 {
			return rounds, nil
		}
		// Interruption hooks, both disarmed to a nil-check in steady state:
		// an armed context is observed at round granularity (a canceled run
		// returns within one round of ctx.Done()), and an armed fault
		// injector may sleep, panic, or force an error here.
		if nw.ctx != nil {
			if err := nw.ctx.Err(); err != nil {
				return rounds, err
			}
		}
		if nw.fault != nil {
			if err := nw.fault.FireRound(nw.subrun, round); err != nil {
				return rounds, err
			}
		}
		nA := len(e.active)
		W := workers
		if nA < minShard {
			W = 1 // too small to amortize worker dispatch this round
		} else if W > nA {
			W = nA
		}
		chunk := (nA + W - 1) / W
		for w := 0; w < W; w++ {
			sh := &e.shards[w]
			sh.lo = w * chunk
			sh.hi = min((w+1)*chunk, nA)
		}

		// Step phase: each active node steps once; sends accumulate in its
		// shard's out arena.
		if W == 1 {
			nw.stepShard(p, &e.shards[0], round)
		} else {
			var wg sync.WaitGroup
			for w := 0; w < W; w++ {
				wg.Add(1)
				go func(sh *shard, r int) {
					defer wg.Done()
					nw.stepShard(p, sh, r)
				}(&e.shards[w], round)
			}
			wg.Wait()
		}
		rounds++
		nw.Stats.Rounds++

		// Delivery phase, pass 1: validate links and bandwidth, count
		// messages per receiver, accumulate per-shard stats.
		e.stamp++
		deliver := round != dropRound
		if W == 1 {
			nw.countShard(&e.shards[0], round, deliver)
		} else {
			var wg sync.WaitGroup
			for w := 0; w < W; w++ {
				wg.Add(1)
				go func(sh *shard, r int, d bool) {
					defer wg.Done()
					nw.countShard(sh, r, d)
				}(&e.shards[w], round, deliver)
			}
			wg.Wait()
		}

		// Merge: stats, first violation in global sender order, receiver
		// arena layout (contiguous per-receiver segments; within a segment,
		// shard order == sender-id order because shards are contiguous
		// ranges of the sorted active list).
		var violation error
		e.touched = e.touched[:0]
		total := int32(0)
		for w := 0; w < W; w++ {
			sh := &e.shards[w]
			nw.Stats.Messages += sh.msgs
			nw.Stats.Words += sh.words
			if violation == nil {
				violation = sh.vio
			}
			for _, r := range sh.touched {
				if e.inStamp[r] != e.stamp {
					e.inStamp[r] = e.stamp
					e.touched = append(e.touched, r)
				}
			}
		}
		for _, r := range e.touched {
			e.inStart[r] = total
			for w := 0; w < W; w++ {
				sh := &e.shards[w]
				if sh.cstamp[r] == e.stamp {
					c := sh.cnt[r]
					sh.cnt[r] = total // becomes the shard's write cursor
					total += c
				}
			}
			e.inEnd[r] = total
		}

		// Pass 2: place every message into its receiver's arena segment.
		// Slots are disjoint across shards, so placement parallelizes with
		// a bit-identical result.
		if total > 0 {
			if cap(e.inArena) < int(total) {
				e.inArena = make([]Message, total, total+total/2)
			} else {
				e.inArena = e.inArena[:total]
			}
			if W == 1 {
				placeShard(e, &e.shards[0])
			} else {
				var wg sync.WaitGroup
				for w := 0; w < W; w++ {
					wg.Add(1)
					go func(sh *shard) {
						defer wg.Done()
						placeShard(e, sh)
					}(&e.shards[w])
				}
				wg.Wait()
			}
		}
		if violation != nil {
			return rounds, violation
		}
		if nw.OnRound != nil {
			nw.OnRound(nw.roundSeq, int(total))
		}
		nw.roundSeq++

		// Active set for the next round: live (not-done) nodes plus every
		// message receiver, sorted and deduplicated. Nodes that terminated
		// with an empty inbox are skipped until a message wakes them.
		e.next = e.next[:0]
		for _, v := range e.active {
			if !e.done[v] {
				e.next = append(e.next, v)
			}
		}
		live := len(e.next)
		if len(e.touched) > 0 {
			e.next = append(e.next, e.touched...)
			slices.Sort(e.next[live:])
			e.active = mergeDedup(e.next, live, e.active[:0])
		} else {
			e.active, e.next = e.next, e.active
		}
	}
	if len(e.active) == 0 {
		return rounds, nil
	}
	return rounds, fmt.Errorf("congest: protocol did not terminate within %d rounds", maxRounds)
}

// mergeDedup merges the two sorted runs buf[:mid] and buf[mid:] into out
// (which must be empty with adequate capacity), dropping duplicates.
func mergeDedup(buf []int32, mid int, out []int32) []int32 {
	i, j := 0, mid
	last := int32(-1)
	for i < mid || j < len(buf) {
		var v int32
		if j >= len(buf) || (i < mid && buf[i] <= buf[j]) {
			v = buf[i]
			i++
		} else {
			v = buf[j]
			j++
		}
		if v != last {
			out = append(out, v)
			last = v
		}
	}
	return out
}

// stepShard steps the shard's range of the active list.
func (nw *Network) stepShard(p Proto, sh *shard, round int) {
	e := &nw.eng
	sh.out = sh.out[:0]
	for i := sh.lo; i < sh.hi; i++ {
		v := int(e.active[i])
		var in []Message
		if e.inStamp[v] == e.stamp {
			in = e.inArena[e.inStart[v]:e.inEnd[v]]
		}
		sh.from = v
		e.outStart[i] = int32(len(sh.out))
		e.done[v] = p.Step(v, round, in, sh.send)
		e.outEnd[i] = int32(len(sh.out))
	}
}

// countShard is delivery pass 1 for one shard: for every message sent by
// the shard's senders (in id order), validate the link, account bandwidth,
// and count the message toward its receiver. Messages on non-links are
// marked dropped (To = -1) and reported as the first violation in scan
// order. With deliver == false (RunFor's final round) the schedule is over:
// sends are still validated, but not counted or delivered.
func (nw *Network) countShard(sh *shard, round int, deliver bool) {
	e := &nw.eng
	sh.msgs, sh.words, sh.vio = 0, 0, nil
	sh.touched = sh.touched[:0]
	bw := int32(nw.Bandwidth)
	for i := sh.lo; i < sh.hi; i++ {
		seg := sh.out[e.outStart[i]:e.outEnd[i]]
		if len(seg) == 0 {
			continue
		}
		v := int(e.active[i])
		off := nw.nbrOff[v]
		for j := off; j < nw.nbrOff[v+1]; j++ {
			e.used[j] = 0
		}
		for k := range seg {
			m := &seg[k]
			li := nw.LinkIndex(v, m.To)
			if li < 0 {
				if sh.vio == nil {
					sh.vio = &ErrNotALink{Round: round, From: v, To: m.To}
				}
				m.To = -1 // dropped; skipped by placement
				continue
			}
			c := int32(m.cost())
			slot := off + int32(li)
			e.used[slot] += c
			if e.used[slot] > bw && sh.vio == nil {
				sh.vio = &ErrBandwidth{Round: round, From: v, To: m.To, Words: int(e.used[slot]), Limit: nw.Bandwidth}
			}
			if !deliver {
				continue
			}
			sh.msgs++
			sh.words += int64(c)
			nw.Stats.WordsByNode[v] += int64(c) // senders are shard-partitioned
			to := int32(m.To)
			if sh.cstamp[to] != e.stamp {
				sh.cstamp[to] = e.stamp
				sh.cnt[to] = 0
				sh.touched = append(sh.touched, to)
			}
			sh.cnt[to]++
		}
	}
}

// placeShard is delivery pass 2 for one shard: copy the shard's messages
// into the receiver-keyed inbox arena. sh.cnt[r] was rewritten by the merge
// into this shard's first slot for receiver r; senders are visited in id
// order, preserving the deterministic (sender id, send order) inbox order.
func placeShard(e *engine, sh *shard) {
	for i := sh.lo; i < sh.hi; i++ {
		seg := sh.out[e.outStart[i]:e.outEnd[i]]
		for k := range seg {
			if seg[k].To < 0 {
				continue
			}
			to := int32(seg[k].To)
			slot := sh.cnt[to]
			sh.cnt[to] = slot + 1
			e.inArena[slot] = seg[k]
		}
	}
}

// RunFor executes p for exactly k rounds (protocols with fixed round
// budgets). Early global termination still stops the run, and messages sent
// in the final round are dropped by the schedule — they are validated but
// neither delivered nor counted in Stats — but exactly k rounds are charged
// either way, matching the fixed schedules in the paper.
func (nw *Network) RunFor(p Proto, k int) error {
	before := nw.Stats.Rounds
	c := &nw.eng.capped
	c.p, c.budget = p, k
	_, err := nw.run(c, k+1, k-1)
	c.p = nil // drop the protocol reference once the run is over
	if err != nil {
		return err
	}
	nw.Stats.Rounds = before + k
	return nil
}

type cappedProto struct {
	p      Proto
	budget int
}

func (c *cappedProto) Step(v int, round int, in []Message, send func(Message)) bool {
	if round >= c.budget {
		return true
	}
	done := c.p.Step(v, round, in, send)
	return done || round == c.budget-1
}
