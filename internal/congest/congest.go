// Package congest implements a round-synchronous simulator for the CONGEST
// model of distributed computing (Peleg 2000), as specified in Section 1.1
// of Agarwal & Ramachandran, "Faster Deterministic All Pairs Shortest Paths
// in Congest Model" (SPAA 2020):
//
//   - n processors (nodes) connected by the links of the input graph; for a
//     directed input graph the communication network is the underlying
//     undirected graph UG.
//   - Computation proceeds in synchronous rounds. In each round a node may
//     send a constant number of words along each incident link, and it
//     receives in round r+1 the messages sent to it in round r.
//   - Local computation is free; complexity is measured in rounds.
//
// Protocols are per-node state machines driven by the engine. The engine
// enforces CONGEST legality: messages may only travel along links of UG and
// the number of words per link direction per round must not exceed the
// configured bandwidth. Violations are reported as errors rather than being
// silently absorbed, so tests can assert that an algorithm never overdrives
// an edge.
package congest

import (
	"fmt"
	"runtime"
	"sync"

	"congestapsp/internal/graph"
)

// Message is one CONGEST message. Payload is a small fixed tuple of int64
// slots plus a protocol-defined Kind tag; this models the "constant number
// of node ids, edge weights and distance values per edge per round" that the
// paper assumes, and makes the word accounting concrete.
type Message struct {
	From, To int
	Kind     uint8
	A, B, C  int64
	// Words is the bandwidth cost of the message. Zero means "count the
	// populated payload implicitly as one word per slot in use plus one for
	// the kind/header"; protocols that know better may set it explicitly.
	Words int
}

func (m Message) cost() int {
	if m.Words > 0 {
		return m.Words
	}
	return 1
}

// Proto is a distributed protocol expressed as a per-node step function.
//
// Step is invoked exactly once per node per round, in increasing round
// order. in holds the messages delivered to v this round (sent in the
// previous round), in a deterministic order (sorted by sender id, then by
// send order at the sender). send queues a message for delivery next round;
// the From field is filled in by the engine. Step returns true when node v
// has terminated; the protocol as a whole terminates when every node has
// returned true and no messages remain in flight.
//
// Step for node v must only read and write state belonging to v (protocols
// keep per-node state in slices indexed by node id); the engine may execute
// the Steps of distinct nodes concurrently within a round.
type Proto interface {
	Step(v int, round int, in []Message, send func(Message)) bool
}

// ProtoFunc adapts a function to the Proto interface.
type ProtoFunc func(v int, round int, in []Message, send func(Message)) bool

// Step implements Proto.
func (f ProtoFunc) Step(v int, round int, in []Message, send func(Message)) bool {
	return f(v, round, in, send)
}

// Stats accumulates the cost measures of one or more protocol executions on
// a network.
type Stats struct {
	Rounds   int   // total synchronous rounds consumed
	Messages int64 // total messages delivered
	Words    int64 // total words delivered
	// WordsByNode[v] counts words sent by v; the maximum over v is the
	// "congestion at a node" measure used in Section 4 of the paper.
	WordsByNode []int64
}

// MaxNodeCongestion returns max_v WordsByNode[v].
func (s *Stats) MaxNodeCongestion() int64 {
	var m int64
	for _, w := range s.WordsByNode {
		if w > m {
			m = w
		}
	}
	return m
}

// Network is a CONGEST communication network over the underlying undirected
// graph of an input graph.
type Network struct {
	G  *graph.Graph // the input graph (directed or undirected)
	UG *graph.Graph // communication topology (underlying undirected graph)

	// Bandwidth is the number of words each node may send along each
	// incident link per round in each direction. The paper assumes a
	// constant number of ids/weights/distances per edge per round.
	Bandwidth int

	// Parallel selects concurrent execution of node steps within a round
	// using a worker pool (the natural goroutine mapping of synchronous
	// rounds). Results are bit-identical to sequential execution.
	Parallel bool

	// OnRound, when set, is invoked after every simulated round with a
	// monotonically increasing round sequence number and the number of
	// messages delivered into that round's inboxes. The sequence number
	// counts simulated rounds (it can differ slightly from Stats.Rounds,
	// which follows the paper's charged schedules). It powers the -trace
	// output of cmd/apsp; the hook must not call back into the network.
	OnRound func(round int, delivered int)

	roundSeq int // monotonic simulated-round counter for OnRound

	Stats Stats

	// neighbor[v] is the sorted set of v's neighbors in UG; linkIdx[v] maps
	// neighbor id -> dense link index used by the per-round bandwidth
	// accounting.
	neighbor [][]int
	linkIdx  []map[int]int
}

// NewNetwork builds a network for input graph g with the given per-link
// bandwidth (words per direction per round). Bandwidth must be >= 1.
func NewNetwork(g *graph.Graph, bandwidth int) (*Network, error) {
	if bandwidth < 1 {
		return nil, fmt.Errorf("congest: bandwidth must be >= 1, got %d", bandwidth)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ug := g.UnderlyingUndirected()
	nw := &Network{
		G:         g,
		UG:        ug,
		Bandwidth: bandwidth,
		neighbor:  make([][]int, g.N),
		linkIdx:   make([]map[int]int, g.N),
	}
	nw.Stats.WordsByNode = make([]int64, g.N)
	for v := 0; v < g.N; v++ {
		seen := map[int]bool{}
		ug.OutNeighbors(v, func(u int, _ int64) {
			if !seen[u] {
				seen[u] = true
				nw.neighbor[v] = append(nw.neighbor[v], u)
			}
		})
		ns := nw.neighbor[v]
		for i := 1; i < len(ns); i++ {
			for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
				ns[j], ns[j-1] = ns[j-1], ns[j]
			}
		}
		nw.linkIdx[v] = make(map[int]int, len(ns))
		for i, u := range ns {
			nw.linkIdx[v][u] = i
		}
	}
	return nw, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.G.N }

// Neighbors returns v's neighbors in the communication graph, sorted by id.
// The returned slice must not be modified.
func (nw *Network) Neighbors(v int) []int { return nw.neighbor[v] }

// IsLink reports whether {u,v} is a communication link.
func (nw *Network) IsLink(u, v int) bool {
	_, ok := nw.linkIdx[u][v]
	return ok
}

// ResetStats zeroes the accumulated statistics.
func (nw *Network) ResetStats() {
	nw.Stats = Stats{WordsByNode: make([]int64, nw.G.N)}
}

// ChargeRounds adds k rounds to the running total without simulating them.
// It exists for protocol steps whose round cost the paper charges as part of
// a composed schedule (see DESIGN.md); use sparingly and document each call
// site.
func (nw *Network) ChargeRounds(k int) { nw.Stats.Rounds += k }

// ErrBandwidth is returned (wrapped) when a protocol exceeds the per-link
// bandwidth in some round.
type ErrBandwidth struct {
	Round    int
	From, To int
	Words    int
	Limit    int
}

func (e *ErrBandwidth) Error() string {
	return fmt.Sprintf("congest: bandwidth violation at round %d on link %d->%d: %d words > limit %d",
		e.Round, e.From, e.To, e.Words, e.Limit)
}

// ErrNotALink is returned when a protocol sends along a non-existent link.
type ErrNotALink struct {
	Round    int
	From, To int
}

func (e *ErrNotALink) Error() string {
	return fmt.Sprintf("congest: node %d sent to %d at round %d but they share no link", e.From, e.To, e.Round)
}

// Run executes p until global termination or until maxRounds rounds have
// elapsed, whichever is first. It returns the number of rounds executed.
// Statistics accumulate into nw.Stats across calls, so a sequence of Run
// calls models the paper's "Step k takes ... rounds" composition.
func (nw *Network) Run(p Proto, maxRounds int) (int, error) {
	n := nw.G.N
	inbox := make([][]Message, n)
	outbox := make([][]Message, n)
	done := make([]bool, n)
	used := make([][]int, n) // per-link words used this round, reset lazily
	for v := 0; v < n; v++ {
		used[v] = make([]int, len(nw.neighbor[v]))
	}

	var violation error
	var vioMu sync.Mutex

	workers := 1
	if nw.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
	}

	rounds := 0
	for round := 0; round < maxRounds; round++ {
		// Termination check: all nodes done after the previous round and no
		// messages awaiting delivery.
		if round > 0 {
			allDone := true
			for v := 0; v < n && allDone; v++ {
				if !done[v] || len(inbox[v]) > 0 {
					allDone = false
				}
			}
			if allDone {
				return rounds, nil
			}
		}
		// Step phase: every node steps once; sends accumulate in its outbox.
		step := func(v int) {
			out := outbox[v][:0]
			sendFn := func(m Message) {
				m.From = v
				out = append(out, m)
			}
			done[v] = p.Step(v, round, inbox[v], sendFn)
			outbox[v] = out
		}
		if workers == 1 {
			for v := 0; v < n; v++ {
				step(v)
			}
		} else {
			var wg sync.WaitGroup
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo, hi := w*chunk, (w+1)*chunk
				if hi > n {
					hi = n
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for v := lo; v < hi; v++ {
						step(v)
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		rounds++
		nw.Stats.Rounds++

		// Delivery phase: validate links and bandwidth, move outboxes into
		// next-round inboxes. Iterating senders in node-id order makes
		// inbox contents deterministic.
		for v := 0; v < n; v++ {
			inbox[v] = inbox[v][:0]
		}
		for v := 0; v < n; v++ {
			if len(outbox[v]) == 0 {
				continue
			}
			for i := range used[v] {
				used[v][i] = 0
			}
			for _, m := range outbox[v] {
				li, ok := nw.linkIdx[v][m.To]
				if !ok {
					vioMu.Lock()
					if violation == nil {
						violation = &ErrNotALink{Round: round, From: v, To: m.To}
					}
					vioMu.Unlock()
					continue
				}
				used[v][li] += m.cost()
				if used[v][li] > nw.Bandwidth && violation == nil {
					violation = &ErrBandwidth{Round: round, From: v, To: m.To, Words: used[v][li], Limit: nw.Bandwidth}
				}
				inbox[m.To] = append(inbox[m.To], m)
				nw.Stats.Messages++
				nw.Stats.Words += int64(m.cost())
				nw.Stats.WordsByNode[v] += int64(m.cost())
			}
			outbox[v] = outbox[v][:0]
		}
		if violation != nil {
			return rounds, violation
		}
		if nw.OnRound != nil {
			delivered := 0
			for v := 0; v < n; v++ {
				delivered += len(inbox[v])
			}
			nw.OnRound(nw.roundSeq, delivered)
		}
		nw.roundSeq++
	}
	// Final check: terminated exactly at the budget boundary?
	allDone := true
	for v := 0; v < n && allDone; v++ {
		if !done[v] || len(inbox[v]) > 0 {
			allDone = false
		}
	}
	if allDone {
		return rounds, nil
	}
	return rounds, fmt.Errorf("congest: protocol did not terminate within %d rounds", maxRounds)
}

// RunFor executes p for exactly k rounds (protocols with fixed round
// budgets). Early global termination still stops the run, and messages sent
// in the final round are dropped (the schedule is over), but exactly k
// rounds are charged either way, matching the fixed schedules in the paper.
func (nw *Network) RunFor(p Proto, k int) error {
	before := nw.Stats.Rounds
	_, err := nw.Run(&cappedProto{p: p, budget: k}, k+1)
	if err != nil {
		return err
	}
	nw.Stats.Rounds = before + k
	return nil
}

type cappedProto struct {
	p      Proto
	budget int
}

func (c *cappedProto) Step(v int, round int, in []Message, send func(Message)) bool {
	if round >= c.budget {
		return true
	}
	done := c.p.Step(v, round, in, send)
	return done || round == c.budget-1
}
