package congest

import (
	"fmt"
	"testing"

	"congestapsp/internal/graph"
)

func benchNet(b *testing.B, n, m int, parallel bool) *Network {
	b.Helper()
	g := graph.RandomConnected(graph.GenConfig{N: n, Directed: true, Seed: int64(n), MaxWeight: 50}, m)
	nw, err := NewNetwork(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	nw.Parallel = parallel
	return nw
}

// BenchmarkEngineRoundIdle measures the per-round overhead of the engine
// with every node live but silent: the step loop plus the (empty) delivery
// phase. The steady-state loop must not allocate.
func BenchmarkEngineRoundIdle(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nw := benchNet(b, n, 4*n, false)
			idle := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
				return false
			})
			if _, err := nw.Run(idle, 8); err == nil { // warm the engine scratch
				b.Fatal("idle protocol unexpectedly terminated")
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := nw.Run(idle, b.N); err == nil {
				b.Fatal("idle protocol unexpectedly terminated")
			}
		})
	}
}

// BenchmarkEngineDelivery measures a round in which every node sends one
// word to each neighbor: the counting-sort delivery path. Steady-state cost
// must be 0 allocs/op per delivered message.
func BenchmarkEngineDelivery(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		parallel bool
	}{{"seq", false}, {"par", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			nw := benchNet(b, 256, 1024, cfg.parallel)
			nw.MinShardNodes = 1 // measure the sharded path below the adaptive threshold
			chatter := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
				for _, u := range nw.Neighbors(v) {
					send(Message{To: u, Kind: 1, A: int64(round)})
				}
				return false
			})
			if _, err := nw.Run(chatter, 8); err == nil { // warm arenas to steady state
				b.Fatal("chatter protocol unexpectedly terminated")
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := nw.Run(chatter, b.N); err == nil {
				b.Fatal("chatter protocol unexpectedly terminated")
			}
			b.StopTimer()
			delivered := nw.Stats.Messages
			b.ReportMetric(float64(delivered)/float64(b.N), "msgs/round")
		})
	}
}

// BenchmarkEngineActiveSet measures a workload where almost every node is
// quiescent: two nodes ping-pong while n-2 terminated nodes sit idle. The
// active-set scheduler must make the round cost independent of n.
func BenchmarkEngineActiveSet(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nw := benchNet(b, n, 4*n, false)
			a := nw.Neighbors(0)[0]
			pong := ProtoFunc(func(v, round int, in []Message, send func(Message)) bool {
				if round == 0 && v == 0 {
					send(Message{To: a, Kind: 1})
				}
				for _, m := range in {
					send(Message{To: m.From, Kind: 1})
				}
				return true
			})
			if _, err := nw.Run(pong, 8); err == nil {
				b.Fatal("ping-pong unexpectedly terminated")
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := nw.Run(pong, b.N); err == nil {
				b.Fatal("ping-pong unexpectedly terminated")
			}
		})
	}
}

// BenchmarkLinkIndex measures the CSR link lookup that replaced the
// per-node neighbor maps.
func BenchmarkLinkIndex(b *testing.B) {
	nw := benchNet(b, 1024, 8192, false)
	b.ReportAllocs()
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		v := i & 1023
		ns := nw.Neighbors(v)
		acc += nw.LinkIndex(v, ns[i%len(ns)])
	}
	if acc < 0 {
		b.Fatal("unexpected negative index")
	}
}
