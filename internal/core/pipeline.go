package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/metrics"
	"time"

	"congestapsp/internal/bford"
	"congestapsp/internal/blocker"
	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
	"congestapsp/internal/mat"
	"congestapsp/internal/qsink"
)

// This file is the staged pipeline executor: Algorithm 1 expressed as a
// declarative list of named stages instead of one monolithic Run body.
// Each stage is a method on *pipeline (the state threaded between steps);
// the executor wraps every stage uniformly with wall-clock, simulated-round
// and heap-allocation instrumentation, so the ad-hoc mark() timing code of
// the old monolith is gone and per-stage cost lands in Result.Stages (and
// from there in apsp.Stats and EXPERIMENTS.json).

// StageTiming is the host-and-model cost record of one executed pipeline
// stage. Rounds is deterministic (it follows the paper's charged
// schedules); WallMS and Allocs are host-side observations.
type StageTiming struct {
	Name   string  // stage name as it appears in EXPERIMENTS.json rows
	Rounds int     // simulated CONGEST rounds charged by the stage
	WallMS float64 // host wall-clock spent in the stage
	Allocs uint64  // heap allocations performed during the stage
	// Exec is the execution-mode decision trace: "seq" or "sharded" — per
	// stage under the planner, uniform under the legacy Parallel bool.
	Exec string
}

// stage is one declarative entry of the executor: a named unit of
// Algorithm 1 with an optional skip predicate and an optional slot in the
// legacy per-step round decomposition (StepRounds). Stages run in order;
// the executor owns all instrumentation and error wrapping.
type stage struct {
	name  string
	steps func(*StepRounds) *int // nil for local (round-free) stages
	skip  func(*pipeline) bool
	run   func(*pipeline) error
}

// pipelineStages is Algorithm 1 as data: Steps 1-7 of the paper plus the
// implementation's last-edge resolution pass. Step 5 is purely local
// computation — it charges no rounds, so it has no StepRounds slot, but as
// a stage it is now timed like everything else.
var pipelineStages = []stage{
	{name: "step1-csssp", steps: func(s *StepRounds) *int { return &s.Step1CSSSP }, run: (*pipeline).stageCSSSP},
	{name: "step2-blocker", steps: func(s *StepRounds) *int { return &s.Step2Blocker }, run: (*pipeline).stageBlocker},
	{name: "step3-insssp", steps: func(s *StepRounds) *int { return &s.Step3InSSSP }, run: (*pipeline).stageInSSSP},
	{name: "step4-bcast", steps: func(s *StepRounds) *int { return &s.Step4Bcast }, run: (*pipeline).stageBroadcast},
	{name: "step5-closure", run: (*pipeline).stageClosure},
	{name: "step6-qsink", steps: func(s *StepRounds) *int { return &s.Step6QSink }, run: (*pipeline).stageQSink},
	{name: "step7-extend", steps: func(s *StepRounds) *int { return &s.Step7Extend }, run: (*pipeline).stageExtend},
	{
		name:  "step8-lastedge",
		steps: func(s *StepRounds) *int { return &s.Step8LastEdge },
		skip:  func(p *pipeline) bool { return p.opt.SkipLastEdges },
		run:   (*pipeline).stageLastEdges,
	},
}

// pipeline is the state threaded through the staged executor: the inputs
// (graph, network, resolved options) and every intermediate artifact a
// later stage reads.
type pipeline struct {
	g   *graph.Graph
	nw  *congest.Network
	opt Options
	n   int
	h   int

	sources      []int             // 0..n-1 (Step 1 builds one tree per node)
	coll         *csssp.Collection // Step 1: h-hop CSSSP collection
	Q            []int             // Step 2: blocker set
	deltaH       *mat.Matrix       // Step 3: |Q| x n, deltaH.At(ci, x) = delta_h(x, Q[ci])
	deltaHops    [][]int           // Step 3: hop counts realizing deltaH rows (convergence levels; damage-test metadata, no protocol input)
	allPairsQ    []broadcast.Item  // Step 4: gathered (ci, cj, delta_h(cj, ci)) triples
	delta        *mat.Matrix       // Step 5: n x |Q|, the exact delta(x, c) known at x
	qres         *qsink.Result     // Step 6: q-sink delivery output
	step7Sources []int             // Step 7: validated, deduplicated source list
	distM        mat.Int64M        // Step 7: one row per requested source (flat or tiled)
	lastM        mat.IntM          // Step 8: last-hop table (nil when skipped/restored)

	// plan, when non-nil, is the planner's per-stage seq-vs-sharded decision
	// vector; it overrides opt.Parallel stage by stage. budget > 0 selects
	// the tiled spillable matrix backend for the result matrices.
	plan   *ExecPlan
	budget int64

	// inc, when non-nil, is the damage-scoped plan of an incremental run
	// (the first Run after Session.ApplyUpdates with a valid snapshot):
	// stage bodies re-execute only the label systems the plan marks dirty,
	// restore the rest from the snapshot, and charge the recorded rounds
	// for skipped work so the round accounting matches a cold run exactly.
	// qcap, when non-nil, is the session's q-sink capture target.
	inc  *incPlan
	qcap *qsink.Snapshot

	st     Stats
	stages []StageTiming
	out    *Result
}

// execute runs every non-skipped stage in order, recording per-stage wall
// clock, charged rounds and heap allocations, and filling the legacy
// StepRounds decomposition from the same round deltas the old monolith
// tracked by hand. Allocation counts come from runtime/metrics (no
// stop-the-world, unlike runtime.ReadMemStats — a warm session serves
// repeated runs, so the executor must not pause the world 16 times per
// call for a bookkeeping column).
func (p *pipeline) execute() error {
	sample := [1]metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	allocs := func() uint64 {
		metrics.Read(sample[:])
		return sample[0].Value.Uint64()
	}
	for idx, st := range pipelineStages {
		if st.skip != nil && st.skip(p) {
			continue
		}
		// Execution-mode decision: the planner's per-stage vector when a
		// plan is armed, the legacy global Parallel bool otherwise. The
		// engine consults nw.Parallel at both dispatch levels (ShardRuns and
		// in-round sharding), so flipping it at the stage boundary is the
		// entire hook — seq and sharded are bit-identical in every
		// distributed column, which is what makes this safe.
		sharded := p.opt.Parallel
		if p.plan != nil {
			sharded = p.plan.Sharded[idx]
		}
		p.nw.Parallel = sharded
		exec := execSeq
		if sharded {
			exec = execSharded
		}
		// Stage boundary: the second cancellation observation point (the
		// first is the engine's round loop). Both are one nil-check when no
		// cancelable context is armed.
		p.nw.NotifyStage(st.name)
		if err := p.nw.CtxErr(); err != nil {
			return p.interrupted(st.name, err)
		}
		allocs0 := allocs()
		rounds0 := p.nw.Stats.Rounds
		start := time.Now()
		err := runStage(st, p)
		wall := time.Since(start)
		rounds := p.nw.Stats.Rounds - rounds0
		if err != nil {
			// Record the interrupted stage's partial cost before bailing, so
			// InterruptError (and any caller inspecting p.stages) sees the
			// work actually performed.
			p.stages = append(p.stages, StageTiming{
				Name:   st.name,
				Rounds: rounds,
				WallMS: float64(wall.Microseconds()) / 1000,
				Allocs: allocs() - allocs0,
				Exec:   exec,
			})
			if isContextErr(err) {
				return p.interrupted(st.name, err)
			}
			var pe *congest.PanicError
			if errors.As(err, &pe) && pe.Stage == "" {
				pe.Stage = st.name
			}
			return fmt.Errorf("core: %s: %w", st.name, err)
		}
		if st.steps != nil {
			*st.steps(&p.st.Steps) = rounds
		}
		p.stages = append(p.stages, StageTiming{
			Name:   st.name,
			Rounds: rounds,
			WallMS: float64(wall.Microseconds()) / 1000,
			Allocs: allocs() - allocs0,
			Exec:   exec,
		})
	}
	return nil
}

// interrupted wraps a context error in an InterruptError carrying the
// progress made so far.
func (p *pipeline) interrupted(stage string, cause error) error {
	return &InterruptError{
		Stage:           stage,
		CompletedRounds: p.nw.Stats.Rounds,
		Stages:          p.stages,
		Cause:           cause,
	}
}

// runStage executes one stage body under panic isolation: a panic escaping
// the stage outside any ShardRuns dispatch (which recovers its own
// sub-runs) becomes a *congest.PanicError instead of killing the process.
// The single deferred recover over a named return is open-coded by the
// compiler, so the happy path allocates nothing.
func runStage(st stage, p *pipeline) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &congest.PanicError{SubRun: -1, Source: -1, Value: v, Stack: debug.Stack()}
		}
	}()
	return st.run(p)
}

// run validates the options, executes the stages and assembles the Result.
func (p *pipeline) run() (*Result, error) {
	// Partial-APSP validation happens before any stage runs so an invalid
	// source list fails fast, and so the Sources-implies-SkipLastEdges rule
	// is settled before the step8 skip predicate is consulted.
	if p.opt.Sources != nil {
		validated, err := validateSources(p.opt.Sources, p.n)
		if err != nil {
			return nil, err
		}
		p.step7Sources = validated
		p.opt.SkipLastEdges = true
	}
	p.out = &Result{}
	if err := p.execute(); err != nil {
		return nil, err
	}
	p.st.Rounds = p.nw.Stats.Rounds
	p.st.Messages = p.nw.Stats.Messages
	p.st.Words = p.nw.Stats.Words
	p.st.MaxNodeCongestion = p.nw.Stats.MaxNodeCongestion()
	p.out.Stats = p.st
	p.out.Stages = p.stages
	return p.out, nil
}

// stageCSSSP is Step 1: the h-hop CSSSP collection for V (out-trees). On
// an incremental run it refreshes only the trees whose 2h-hop label system
// a graph update could have tightened (the damage test of update.go),
// keeps the rest of the snapshot collection, and charges the recorded
// rounds for the reused trees — each tree costs exactly 4h+3 rounds, so
// the total matches a cold run. A refreshed tree that actually changed
// flips the cascade flag: every later stage then runs its cold body on the
// (partially reused) fresh inputs.
func (p *pipeline) stageCSSSP() error {
	p.sources = make([]int, p.n)
	for i := range p.sources {
		p.sources[i] = i
	}
	if p.step7Sources == nil {
		p.step7Sources = p.sources // full APSP: Step 7 extends every source
	}
	if ip := p.inc; ip != nil {
		p.coll = ip.snap.coll
		k := len(ip.dirty1)
		if k > 0 {
			changed, err := p.coll.Refresh(p.nw, ip.dirty1)
			if err != nil {
				return err
			}
			if changed {
				ip.cascade = true
			}
		}
		p.nw.ChargeRounds(ip.snap.rounds("step1-csssp") - k*(4*p.h+3))
		return nil
	}
	coll, err := csssp.Build(p.nw, p.g, p.sources, p.h, bford.Out)
	if err != nil {
		return err
	}
	p.coll = coll
	return nil
}

// stageBlocker is Step 2: the blocker set Q for the collection. The
// variant picks the construction; an explicit BlockerParams.Mode (e.g. the
// pairwise-independent randomized Algorithm 2) wins over the Det43 default
// so ablations can drive the full pipeline with any blocker.
func (p *pipeline) stageBlocker() error {
	if ip := p.inc; ip != nil && !ip.cascade {
		// The collection is bit-identical to the snapshot run's, so the
		// blocker construction would reproduce Q, its stats, and its round
		// schedule exactly; restore all three and charge the rounds.
		p.Q = ip.snap.Q
		p.st.QSize = ip.snap.stats.QSize
		p.st.Blocker = ip.snap.stats.Blocker
		p.nw.ChargeRounds(ip.snap.rounds("step2-blocker"))
		return nil
	}
	bp := p.opt.BlockerParams
	switch p.opt.Variant {
	case Det32:
		bp.Mode = blocker.Greedy
	case Rand43:
		bp.Mode = blocker.RandomSample
		bp.Seed = p.opt.Seed
	default:
		if bp.Mode != blocker.Deterministic {
			bp.Seed = p.opt.Seed
		}
	}
	bres, err := blocker.Compute(p.nw, p.coll, bp)
	if err != nil {
		return err
	}
	p.coll.ResetRemovals() // the blocker construction pruned the trees
	p.Q = bres.Q
	p.st.QSize = len(p.Q)
	p.st.Blocker = bres.Stats
	return nil
}

// stageInSSSP is Step 3: one h-hop in-SSSP per blocker node, so node x
// learns deltaH row ci at column x = delta_h(x, Q[ci]). (Label distances:
// min weight over <= h hops.) The |Q| runs are independent, so they
// dispatch across the worker-clone fleet; each run owns one matrix row.
func (p *pipeline) stageInSSSP() error {
	if ip := p.inc; ip != nil && !ip.cascade {
		// Re-run only the damaged in-systems, in place over the snapshot
		// matrix; each costs exactly h+1 rounds, reused rows charge the
		// recorded rest. A row that actually moved cascades stages 4-8.
		p.deltaH = ip.snap.deltaH
		p.deltaHops = ip.snap.deltaHops
		k := len(ip.dirty3)
		if k > 0 {
			changed := make([]bool, k)
			err := p.nw.ShardRuns(k, func(w *congest.Network, j int) error {
				ci := ip.dirty3[j]
				res, err := bford.RunLabels(w, p.g, p.Q[ci], p.h, bford.In)
				if err != nil {
					return err
				}
				// Convergence levels refresh unconditionally (damage metadata
				// only): hops that moved under identical distances change
				// nothing any later stage reads, so they don't cascade.
				copy(p.deltaHops[ci], res.Hops)
				row := p.deltaH.Row(ci)
				for v := range row {
					if row[v] != res.Dist[v] {
						row[v] = res.Dist[v]
						changed[j] = true
					}
				}
				return nil
			})
			if err != nil {
				return p.tagSource(err, func(i int) int { return p.Q[ip.dirty3[i]] })
			}
			for _, chg := range changed {
				if chg {
					ip.cascade = true
					break
				}
			}
		}
		p.nw.ChargeRounds(ip.snap.rounds("step3-insssp") - k*(p.h+1))
		return nil
	}
	q := len(p.Q)
	p.deltaH = mat.New(q, p.n)
	p.deltaHops = mat.NewInt(q, p.n).RowViews()
	err := p.nw.ShardRuns(q, func(w *congest.Network, ci int) error {
		res, err := bford.RunLabels(w, p.g, p.Q[ci], p.h, bford.In)
		if err != nil {
			return err
		}
		copy(p.deltaH.Row(ci), res.Dist)
		copy(p.deltaHops[ci], res.Hops)
		return nil
	})
	return p.tagSource(err, func(i int) int { return p.Q[i] })
}

// tagSource annotates a recovered sub-run panic with the source vertex its
// sub-run index maps to (sub-run i of Step 3 serves blocker Q[i]; of Step 7,
// step7Sources[i]), completing the PanicError's (sub-run, source, stage) tag.
func (p *pipeline) tagSource(err error, src func(i int) int) error {
	if err == nil {
		return nil
	}
	var pe *congest.PanicError
	if errors.As(err, &pe) && pe.Source < 0 && pe.SubRun >= 0 {
		pe.Source = src(pe.SubRun)
	}
	return err
}

// stageBroadcast is Step 4: every blocker c broadcasts delta_h(c, c') for
// all c' in Q (|Q|^2 values; O(n + |Q|^2) rounds, Lemma A.2/A.1).
func (p *pipeline) stageBroadcast() error {
	if ip := p.inc; ip != nil && !ip.cascade {
		// deltaH is unchanged, so the item counts — and with them the
		// broadcast schedule — are what the snapshot run recorded. Stage 5
		// reuses the snapshot delta matrix, so the gathered items are not
		// needed at all.
		p.nw.ChargeRounds(ip.snap.rounds("step4-bcast"))
		return nil
	}
	tree, err := broadcast.BuildBFS(p.nw, 0)
	if err != nil {
		return err
	}
	itemCnt := make([]int32, p.n)
	for _, c := range p.Q {
		for cj := range p.Q {
			if p.deltaH.At(cj, c) < graph.Inf {
				itemCnt[c]++
			}
		}
	}
	items := broadcast.CarveItems(itemCnt)
	for ci, c := range p.Q {
		for cj := range p.Q {
			if d := p.deltaH.At(cj, c); d < graph.Inf {
				items[c] = append(items[c], broadcast.Item{A: int64(ci), B: int64(cj), C: d})
			}
		}
	}
	all, err := broadcast.AllToAll(p.nw, tree, items)
	if err != nil {
		return err
	}
	p.allPairsQ = all
	return nil
}

// stageClosure is Step 5 (local): min-plus closure over the Q x Q matrix,
// then delta(x, c) = min(delta_h(x, c), min_c1 delta_h(x, c1) + dQ(c1, c)).
func (p *pipeline) stageClosure() error {
	if ip := p.inc; ip != nil && !ip.cascade {
		// Local stage, pure function of deltaH (unchanged): reuse the
		// snapshot's delta matrix wholesale.
		p.delta = ip.snap.delta
		return nil
	}
	q := len(p.Q)
	dQ := mat.NewFilled(q, q, graph.Inf)
	for i := 0; i < q; i++ {
		dQ.Set(i, i, 0)
	}
	for _, it := range p.allPairsQ {
		ci, cj, d := int(it.A), int(it.B), it.C
		if d < dQ.At(ci, cj) {
			dQ.Set(ci, cj, d)
		}
	}
	for k := 0; k < q; k++ {
		rowK := dQ.Row(k)
		for i := 0; i < q; i++ {
			dik := dQ.At(i, k)
			if dik >= graph.Inf {
				continue
			}
			rowI := dQ.Row(i)
			for j := 0; j < q; j++ {
				if nd := dik + rowK[j]; nd < rowI[j] {
					rowI[j] = nd
				}
			}
		}
	}
	// delta row x at column ci: the Step-5 value known at x.
	p.delta = mat.New(p.n, q)
	for x := 0; x < p.n; x++ {
		row := p.delta.Row(x)
		for ci := 0; ci < q; ci++ {
			best := p.deltaH.At(ci, x)
			for c1 := 0; c1 < q; c1++ {
				if dH := p.deltaH.At(c1, x); dH < graph.Inf {
					if dq := dQ.At(c1, ci); dq < graph.Inf {
						if nd := dH + dq; nd < best {
							best = nd
						}
					}
				}
			}
			row[ci] = best
		}
	}
	p.allPairsQ = nil // consumed; the items alias broadcast pooled storage
	return nil
}

// stageQSink is Step 6: reversed q-sink delivery. On an incremental run
// the stage is skipped outright when no q-sink-internal label system was
// damaged (its inputs — delta, Q, topology — are unchanged, so the whole
// delivery would replay identically); otherwise it re-runs cold, and any
// blocker value that actually moved marks the affected sources for Step-7
// re-extension.
func (p *pipeline) stageQSink() error {
	ip := p.inc
	if ip != nil && !ip.cascade && !ip.qsinkDirty {
		p.qres = ip.snap.qres
		p.st.QSink = ip.snap.stats.QSink
		p.nw.ChargeRounds(ip.snap.rounds("step6-qsink"))
		return nil
	}
	qp := qsink.Params{Scheduler: qsink.RoundRobin, Blocker: blocker.Params{Mode: blocker.Deterministic}}
	switch p.opt.Variant {
	case Det32, BroadcastStep6:
		qp.Scheduler = qsink.BroadcastAll
	case Rand43:
		qp.Blocker = blocker.Params{Mode: blocker.RandomSample, Seed: p.opt.Seed + 1}
	}
	qp.Capture = p.qcap
	qres, err := qsink.Run(p.nw, p.g, p.Q, p.delta, qp)
	if err != nil {
		return err
	}
	if ip != nil && !ip.cascade {
		// Compare against the snapshot delivery: a source whose blocker
		// values moved needs its Step-7 extension re-run even if its own
		// h-hop labels were never damaged.
		old := ip.snap.qres.AtBlocker
		for ci := range qres.AtBlocker {
			newRow, oldRow := qres.AtBlocker[ci], old[ci]
			for x := range newRow {
				if !ip.dirty7[x] && newRow[x] != oldRow[x] {
					ip.dirty7[x] = true
				}
			}
		}
	}
	p.qres = qres
	p.st.QSink = qres.Stats
	return nil
}

// stageExtend is Step 7: per source x, an extended h-hop Bellman-Ford
// seeded with the Step-1 labels everywhere and the exact delta(x, c) at
// blockers. The per-source extensions are independent, so they dispatch
// across the worker-clone fleet like Step 3; each source owns one row of
// the flat distance matrix. One flat row is allocated per requested source
// (not n x n: partial runs with few sources must not pay the full matrix).
// On an incremental run only the sources the plan marks dirty re-extend;
// clean rows are copied out of the snapshot (Result matrices stay
// caller-owned, so the snapshot arrays are never handed out directly).
func (p *pipeline) stageExtend() error {
	if ip := p.inc; ip != nil && !ip.cascade {
		return p.stageExtendIncremental(ip)
	}
	p.distM = p.newDistM(len(p.step7Sources))
	err := p.nw.ShardRuns(len(p.step7Sources), func(w *congest.Network, k int) error {
		x := p.step7Sources[k] // Step 1 built one tree per node, indexed by id
		// The seed vector comes from the worker's scratch arena (reset per
		// sub-run by ShardRuns); RunLabelsWithInit is the non-resetting
		// bford entry point, so the checkout stays live through the run.
		init := w.Scratch().Int64s(p.n)
		copy(init, p.coll.Label[x])
		for ci := range p.Q {
			if v := p.qres.AtBlocker[ci][x]; v < init[p.Q[ci]] {
				init[p.Q[ci]] = v
			}
		}
		res, err := bford.RunLabelsWithInit(w, p.g, init, p.h, bford.Out)
		if err != nil {
			return err
		}
		p.distM.SetRow(k, res.Dist)
		return nil
	})
	if err != nil {
		return p.tagSource(err, func(i int) int { return p.step7Sources[i] })
	}
	p.publishDist()
	return nil
}

// publishDist assembles the Result's distance surface. Flat backend: the
// public [][]int64 contract — rows are zero-copy views of the flat matrix,
// nil for sources Step 7 did not run. Tiled backend: the matrix itself is
// the surface (budgeted runs are always full APSP, so row index = source).
func (p *pipeline) publishDist() {
	if fm, ok := p.distM.(*mat.Matrix); ok {
		dist := make([][]int64, p.n)
		for k, x := range p.step7Sources {
			dist[x] = fm.Row(k)
		}
		p.out.Dist = dist
		return
	}
	p.out.DistM = p.distM
}

// newDistM allocates Step 7's result matrix in the run's selected backend;
// a budgeted run splits the budget evenly with the last-hop table when
// stage 8 will run.
func (p *pipeline) newDistM(rows int) mat.Int64M {
	if p.budget > 0 {
		b := p.budget
		if !p.opt.SkipLastEdges {
			b /= 2
		}
		return mat.NewTiledInt64(rows, p.n, 0, mat.TileConfig{Budget: b, Dir: p.opt.SpillDir})
	}
	return mat.New(rows, p.n)
}

// newLastM allocates the stage-8 last-hop table in the selected backend.
func (p *pipeline) newLastM() mat.IntM {
	if p.budget > 0 {
		return mat.NewTiledInt(p.n, p.n, -1, mat.TileConfig{Budget: p.budget / 2, Dir: p.opt.SpillDir})
	}
	return mat.NewIntFilled(p.n, p.n, -1)
}

// releaseTiled frees any spill files a failed budgeted run left behind
// (successful runs hand ownership to the caller via Result.Release).
func (p *pipeline) releaseTiled() {
	if p.budget == 0 {
		return
	}
	if p.distM != nil {
		p.distM.Release()
	}
	if p.lastM != nil {
		p.lastM.Release()
	}
}

// stageExtendIncremental re-extends only the dirty sources. An eligible
// (snapshot-armed) run is always full APSP, so row index == source id and
// len(step7Sources) == n; each re-run costs exactly h+1 rounds, and the
// reused rows charge the recorded remainder.
func (p *pipeline) stageExtendIncremental(ip *incPlan) error {
	n := p.n
	// Incremental runs are never budgeted (tiled runs skip snapshot
	// capture), so the matrix is always flat here.
	p.distM = mat.New(n, n)
	var dirty []int
	for x := 0; x < n; x++ {
		if ip.dirty7[x] {
			dirty = append(dirty, x)
		} else {
			p.distM.SetRow(x, ip.snap.distFlat[x*n:(x+1)*n])
		}
	}
	err := p.nw.ShardRuns(len(dirty), func(w *congest.Network, k int) error {
		x := dirty[k]
		init := w.Scratch().Int64s(n)
		copy(init, p.coll.Label[x])
		for ci := range p.Q {
			if v := p.qres.AtBlocker[ci][x]; v < init[p.Q[ci]] {
				init[p.Q[ci]] = v
			}
		}
		res, err := bford.RunLabelsWithInit(w, p.g, init, p.h, bford.Out)
		if err != nil {
			return err
		}
		p.distM.SetRow(x, res.Dist)
		return nil
	})
	if err != nil {
		return p.tagSource(err, func(i int) int { return dirty[i] })
	}
	p.nw.ChargeRounds(ip.snap.rounds("step7-extend") - len(dirty)*(p.h+1))
	p.publishDist()
	return nil
}

// stageLastEdges is the final neighbor exchange (an implementation
// addition; see the package comment): every node already knows its column
// of the distance matrix, and one pipelined exchange of that column with
// each neighbor lets each t pick, per source x, the smallest-id
// in-neighbor u with delta(x, u) + w(u, t) = delta(x, t).
// On an incremental run with every distance row proven unchanged (no source
// re-extended — required even when re-runs come back equal, because stage 8
// reads the matrix wholesale) the exchange would replay identically; the
// snapshot copy is restored into fresh caller-owned rows and the recorded
// rounds are charged.
func (p *pipeline) stageLastEdges() error {
	if ip := p.inc; ip != nil && !ip.cascade && ip.n7() == 0 && ip.snap.haveLast {
		n := p.n
		flat := make([]int, n*n)
		copy(flat, ip.snap.lastFlat)
		lh := make([][]int, n)
		for x := 0; x < n; x++ {
			lh[x] = flat[x*n : (x+1)*n]
		}
		p.out.LastHop = lh
		p.nw.ChargeRounds(ip.snap.rounds("step8-lastedge"))
		return nil
	}
	p.lastM = p.newLastM()
	if err := resolveLastEdges(p.nw, p.g, p.distM, p.lastM); err != nil {
		return err
	}
	if fm, ok := p.lastM.(*mat.Int); ok {
		p.out.LastHop = fm.RowViews()
	} else {
		p.out.LastHopM = p.lastM
	}
	return nil
}
