package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"congestapsp/internal/graph"
)

// Deterministic hop-bound counterexample: chain gives v a cheap 2h-hop
// label, shortcut x->u->v->t is the only <=2h-hop path to t. Decreasing
// the shortcut weight changes t's label while arcDamages judges the tree
// clean (D[u]+wmin > D[v]).
func TestProbeHopBoundCounterexample(t *testing.T) {
	// H=3 => label budget 2h=6.
	// s=0, chain 0->1->2->3->4->5->6 (v=6), u=7, t=8.
	g := graph.New(9, true)
	for i := 0; i < 6; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	g.MustAddEdge(0, 7, 2)  // s->u
	g.MustAddEdge(7, 6, 50) // u->v (updated)
	g.MustAddEdge(6, 8, 1)  // v->t
	opt := Options{Variant: Det43, H: 3}
	s, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(opt); err != nil {
		t.Fatal(err)
	}
	st, err := s.ApplyUpdates([]EdgeUpdate{{Op: SetWeight, U: 7, V: 6, W: 5}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stats: %+v dirty1=%v", st, s.snap.dirty1)
	warm, err := s.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(cloneGraph(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Dist, cold.Dist) {
		t.Errorf("Dist mismatch:\nwarm %v\ncold %v", warm.Dist, cold.Dist)
	}
	if !reflect.DeepEqual(warm.LastHop, cold.LastHop) {
		t.Errorf("LastHop mismatch")
	}
	if warm.Stats.Rounds != cold.Stats.Rounds || warm.Stats.QSize != cold.Stats.QSize {
		t.Errorf("rounds/|Q|: warm %d/%d cold %d/%d", warm.Stats.Rounds, warm.Stats.QSize, cold.Stats.Rounds, cold.Stats.QSize)
	}
}

// Randomized adversarial stress: sparse graphs with heavy/light weights
// (shortcut-vs-chain structure) and random single weight updates.
func TestProbeAdversarialStress(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 12 + rng.Intn(10)
			directed := rng.Intn(2) == 0
			g := graph.New(n, directed)
			// spanning chain, light weights
			for i := 0; i < n-1; i++ {
				g.MustAddEdge(i, i+1, int64(1+rng.Intn(2)))
			}
			// a few heavy shortcuts
			for k := 0; k < 4+rng.Intn(5); k++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				w := int64(1 + rng.Intn(60))
				g.MustAddEdge(u, v, w)
			}
			opt := Options{Variant: Det43, H: 2 + rng.Intn(2)}
			s, err := NewSession(g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(opt); err != nil {
				t.Fatal(err)
			}
			for b := 0; b < 3; b++ {
				edges := g.Edges()
				e := edges[rng.Intn(len(edges))]
				var nw int64
				if rng.Intn(2) == 0 {
					nw = int64(rng.Intn(5)) // sharp decrease
				} else {
					nw = e.W + int64(1+rng.Intn(50)) // increase
				}
				if _, err := s.ApplyUpdates([]EdgeUpdate{{Op: SetWeight, U: e.U, V: e.V, W: nw}}); err != nil {
					t.Fatal(err)
				}
				warm, err := s.Run(opt)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := Run(cloneGraph(g), opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(warm.Dist, cold.Dist) {
					t.Fatalf("batch %d: Dist mismatch (edge %d->%d w %d->%d)", b, e.U, e.V, e.W, nw)
				}
				if !reflect.DeepEqual(warm.LastHop, cold.LastHop) {
					t.Fatalf("batch %d: LastHop mismatch (edge %d->%d w %d->%d)", b, e.U, e.V, e.W, nw)
				}
				if warm.Stats.Rounds != cold.Stats.Rounds || warm.Stats.QSize != cold.Stats.QSize {
					t.Fatalf("batch %d: rounds/|Q| warm %d/%d cold %d/%d (edge %d->%d w %d->%d)",
						b, warm.Stats.Rounds, warm.Stats.QSize, cold.Stats.Rounds, cold.Stats.QSize, e.U, e.V, e.W, nw)
				}
			}
		})
	}
}
