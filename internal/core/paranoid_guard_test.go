//go:build matcheck

package core

import (
	"testing"

	"congestapsp/internal/graph"
)

// TestSessionDigestGuardMatcheck pins the paranoid tier of the mutation
// guard: a raw write through the Edges() slice bypasses the graph's version
// counter (the O(1) guard cannot see it), but the matcheck digest re-verify
// catches it at the next run. CI runs the race suite with this tag.
func TestSessionDigestGuardMatcheck(t *testing.T) {
	g := graph.New(3, false)
	for _, e := range [][3]int64{{0, 1, 2}, {1, 2, 3}} {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	g.Edges()[0].W = 9 // raw slice write: version counter unchanged
	if _, err := s.Run(Options{}); err == nil {
		t.Fatal("raw edge-slice mutation not caught by the matcheck digest guard")
	}
	// Restoring the value restores the digest, so the session recovers —
	// the digest is content-based, unlike the monotonic version counter.
	g.Edges()[0].W = 2
	if _, err := s.Run(Options{}); err != nil {
		t.Fatalf("restored graph rejected: %v", err)
	}
}
