package core

import (
	"runtime"
	"testing"

	"congestapsp/internal/graph"
)

// compareBackends demands a budgeted (tiled) result be bit-identical to a
// flat reference: distances, last hops, and every distributed column.
func compareBackends(t *testing.T, ref, tl *Result, n int) {
	t.Helper()
	if tl.Dist != nil || tl.DistM == nil {
		t.Fatal("budgeted run did not select the tiled backend")
	}
	if tl.Stats.Rounds != ref.Stats.Rounds || tl.Stats.Messages != ref.Stats.Messages ||
		tl.Stats.Words != ref.Stats.Words {
		t.Fatalf("distributed columns diverged: tiled %d/%d/%d, flat %d/%d/%d",
			tl.Stats.Rounds, tl.Stats.Messages, tl.Stats.Words,
			ref.Stats.Rounds, ref.Stats.Messages, ref.Stats.Words)
	}
	for x := 0; x < n; x++ {
		for v := 0; v < n; v++ {
			if got, want := tl.DistAt(x, v), ref.Dist[x][v]; got != want {
				t.Fatalf("dist(%d,%d) = %d, want %d", x, v, got, want)
			}
		}
	}
	if ref.LastHop != nil {
		if tl.LastHopM == nil {
			t.Fatal("flat reference resolved last hops, tiled run did not")
		}
		for x := 0; x < n; x++ {
			for v := 0; v < n; v++ {
				if got, want := tl.LastHopAt(x, v), ref.LastHop[x][v]; got != want {
					t.Fatalf("lastHop(%d,%d) = %d, want %d", x, v, got, want)
				}
			}
		}
	}
}

// TestTiledBackendMatchesFlat runs every profile with a memory budget small
// enough to force tiling (and real LRU rotation) and checks bit-identity
// against the flat default — cold, warm re-run, and post-ApplyUpdates —
// in both sequential and planner execution modes.
func TestTiledBackendMatchesFlat(t *testing.T) {
	variants := []struct {
		name string
		opt  Options
	}{
		{"det43", Options{Variant: Det43}},
		{"det32", Options{Variant: Det32}},
		{"rand43", Options{Variant: Rand43, Seed: 11}},
		{"bcast6", Options{Variant: BroadcastStep6}},
	}
	for _, mode := range []string{"seq", "planner"} {
		if mode == "planner" {
			old := runtime.GOMAXPROCS(2)
			defer runtime.GOMAXPROCS(old)
		}
		for _, v := range variants {
			t.Run(v.name+"-"+mode, func(t *testing.T) {
				g := graph.RandomConnected(graph.GenConfig{N: 20, Seed: 21, MaxWeight: 9}, 55)
				gRef := cloneGraph(g)
				opt := v.opt
				opt.Planner = mode == "planner"
				n := g.N

				topt := opt
				topt.MemoryBudget = 1500 // flat footprint is 6400 bytes
				topt.SpillDir = t.TempDir()
				s, err := NewSession(g)
				if err != nil {
					t.Fatal(err)
				}
				flat, err := Run(gRef, opt)
				if err != nil {
					t.Fatal(err)
				}

				tl, err := s.Run(topt)
				if err != nil {
					t.Fatal(err)
				}
				compareBackends(t, flat, tl, n)
				if err := tl.Release(); err != nil {
					t.Fatalf("Release: %v", err)
				}

				// Warm re-run on the same session (cold recompute: budgeted
				// runs are never snapshot-eligible).
				tl2, err := s.Run(topt)
				if err != nil {
					t.Fatal(err)
				}
				compareBackends(t, flat, tl2, n)
				tl2.Release()

				// Post-ApplyUpdates: the tiled session falls back to a cold
				// run reflecting the update; reference comes from a fresh
				// flat run over an identically-mutated clone.
				e := g.Edges()[len(g.Edges())/2]
				up := []EdgeUpdate{{Op: SetWeight, U: e.U, V: e.V, W: e.W + 3}}
				if _, err := s.ApplyUpdates(up); err != nil {
					t.Fatal(err)
				}
				sRef, err := NewSession(gRef)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sRef.ApplyUpdates(up); err != nil {
					t.Fatal(err)
				}
				flat3, err := sRef.Run(opt)
				if err != nil {
					t.Fatal(err)
				}
				tl3, err := s.Run(topt)
				if err != nil {
					t.Fatal(err)
				}
				compareBackends(t, flat3, tl3, n)
				tl3.Release()
			})
		}
	}
}

// TestPlannerMatchesSequential pins that planner-driven execution (both the
// all-seq calibration run and the planned run after it) is bit-identical to
// plain sequential execution.
func TestPlannerMatchesSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	for _, tc := range families()[:4] {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Run(tc.g, Options{Variant: Det43})
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSession(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{Variant: Det43, Planner: true, MinShardNodes: 1}
			for pass := 0; pass < 2; pass++ {
				res, err := s.Run(opt)
				if err != nil {
					t.Fatalf("pass %d: %v", pass, err)
				}
				if res.Stats.Rounds != ref.Stats.Rounds || res.Stats.Messages != ref.Stats.Messages {
					t.Fatalf("pass %d: rounds/messages diverged", pass)
				}
				for x := range ref.Dist {
					for v := range ref.Dist[x] {
						if res.Dist[x][v] != ref.Dist[x][v] {
							t.Fatalf("pass %d: dist(%d,%d) diverged", pass, x, v)
						}
						if res.LastHop[x][v] != ref.LastHop[x][v] {
							t.Fatalf("pass %d: lastHop(%d,%d) diverged", pass, x, v)
						}
					}
				}
			}
		})
	}
}

// execTrace extracts the per-stage execution decisions of a run.
func execTrace(res *Result) []string {
	out := make([]string, 0, len(res.Stages))
	for _, st := range res.Stages {
		out = append(out, st.Name+":"+st.Exec)
	}
	return out
}

// plannerPlanAt runs calibration + one planned run at the given GOMAXPROCS
// and returns the planned run's decision trace.
func plannerPlanAt(t *testing.T, g *graph.Graph, procs int) []string {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	s, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Variant: Det43, Planner: true, MinShardNodes: 1}
	cal, err := s.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if procs > 1 {
		// First run of a configuration is the all-seq calibration run.
		for _, st := range cal.Stages {
			if st.Exec != execSeq {
				t.Fatalf("calibration run stage %s executed %s", st.Name, st.Exec)
			}
		}
	}
	planned, err := s.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	return execTrace(planned)
}

// TestPlannerDeterministicPlan pins the planner's determinism contract:
// the same graph and options yield the same per-stage plan at GOMAXPROCS 2
// and 4, and an all-seq plan at GOMAXPROCS 1.
func TestPlannerDeterministicPlan(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 24, Seed: 9, MaxWeight: 9}, 70)
	p1 := plannerPlanAt(t, g, 1)
	for _, d := range p1 {
		if d[len(d)-len(execSeq):] != execSeq {
			t.Fatalf("1-core plan not all-seq: %v", p1)
		}
	}
	p2 := plannerPlanAt(t, g, 2)
	p4 := plannerPlanAt(t, g, 4)
	if len(p2) != len(p4) {
		t.Fatalf("plan lengths differ: %v vs %v", p2, p4)
	}
	for i := range p2 {
		if p2[i] != p4[i] {
			t.Fatalf("plans diverge across GOMAXPROCS: %v vs %v", p2, p4)
		}
	}
	sharded := 0
	for _, d := range p2 {
		if d[len(d)-len(execSharded):] == execSharded {
			sharded++
		}
	}
	// n=24 gives every sub-run stage well over minShardRounds rounds, so a
	// multi-core plan must actually engage the fleet somewhere.
	if sharded == 0 {
		t.Fatalf("multi-core plan never shards: %v", p2)
	}
}
