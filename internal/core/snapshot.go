package core

import (
	"congestapsp/internal/bford"
	"congestapsp/internal/blocker"
	"congestapsp/internal/csssp"
	"congestapsp/internal/mat"
	"congestapsp/internal/qsink"
)

// This file holds the session's result snapshot: after every eligible
// (full-APSP) run the session takes ownership of the pipeline's
// intermediate artifacts and keeps session-owned copies of the outputs, so
// that a run following ApplyUpdates can re-execute only the label systems
// the damage report marked dirty and restore everything else. See
// DESIGN.md §10 for the damage model and the per-stage reuse argument.

// snapKey identifies the resolved run configuration a snapshot is valid
// for. Two option sets with equal keys produce bit-identical pipelines;
// execution-mode knobs (Parallel, MinShardNodes, RetrySequential, OnRound)
// are deliberately absent because they never change results or round
// counts. Partial runs (Options.Sources != nil) are never snapshotted.
type snapKey struct {
	variant  Variant
	h        int
	bw       int
	seed     int64
	blocker  blocker.Params
	skipLast bool
}

// snapshot is the armed post-run state. The collection, matrices, and
// q-sink result are owned by the session once captured (every cold run
// allocates them fresh, so taking ownership steals no caller state);
// the distance and last-hop outputs are COPIES, because Result matrices
// are caller-owned and must survive later runs untouched.
type snapshot struct {
	valid    bool
	fellBack bool // next run must be cold (topology change, threshold, options)
	key      snapKey

	coll      *csssp.Collection
	Q         []int
	deltaH    *mat.Matrix
	deltaHops [][]int // convergence levels of the deltaH rows (damage metadata)
	delta     *mat.Matrix
	qres      *qsink.Result

	distFlat []int64 // n x n row-major copy of the final distances
	lastFlat []int   // n x n row-major copy of LastHop (empty when skipped)
	haveLast bool

	stats  Stats
	stages []StageTiming

	// qsnap points at the session-owned q-sink capture (the arena lives on
	// the Session so it outlives every pipeline object).
	qsnap *qsink.Snapshot

	// Damage state accumulated by ApplyUpdates since capture: per-source
	// dirtiness of the Step-1 out-trees (dirty1, by vertex), the Step-3
	// in-systems (dirty3, by blocker index), the Step-7 extension rows
	// (dirty7, by vertex), and whether any label system internal to the
	// Step-6 q-sink run was hit (qsinkDirty — those systems are not
	// individually re-runnable, so one hit re-runs the whole stage).
	dirty1, dirty7 []bool
	dirty3         []bool
	qsinkDirty     bool
}

// rounds returns the recorded round count of the named stage (0 when the
// stage was skipped in the captured run).
func (sn *snapshot) rounds(name string) int {
	for i := range sn.stages {
		if sn.stages[i].Name == name {
			return sn.stages[i].Rounds
		}
	}
	return 0
}

// wall returns the recorded host wall-clock of the named stage, in ms.
func (sn *snapshot) wall(name string) float64 {
	for i := range sn.stages {
		if sn.stages[i].Name == name {
			return sn.stages[i].WallMS
		}
	}
	return 0
}

// damage folds one weight update (edge index eIdx joining u,v, weight
// wOld -> wNew) into the dirty sets, testing every tracked label system
// against its snapshot rows. Hop-UNBOUNDED systems (the Step-7 final
// distance rows, the q-sink paired full SSSPs) are judged by the O(1)
// relaxation test alone; hop-bounded systems (the Step-1 out-trees, the
// Step-3 in-systems, the q-sink CQ labels) additionally pass through the
// hop-bound gate and, when it opens, the exact host-local wave replay
// (hops.go) — the relaxation test cannot see below-convergence Pareto
// points in a collapsed final row. Updates are always tested against the
// rows captured at snapshot time; accumulating flags across several
// batches stays sound by induction (a system clean under every individual
// update keeps its captured fixed point — the replay proves the whole
// wave, not just the final row — through the entire sequence).
func (s *Session) damage(eIdx, u, v int, wOld, wNew int64) {
	sn := &s.snap
	wmin := minW(wOld, wNew)
	directed := s.g.Directed
	if s.hops == nil {
		s.hops = buildHopTables(s.g)
	}
	// bford collapses parallel edge bundles to one arbitrary instance, so
	// the replay cannot model them; such updates take the gate's verdict.
	noReplay := hasParallelEdge(s.g, u, v)
	boundedDirty := func(D []int64, C []int, mode bford.Mode, root, bound int) bool {
		if arcDamages(D, u, v, wmin, directed, mode) {
			return true
		}
		if !hopGate(C, s.hops.row(mode, root), u, v, directed, mode) {
			return false
		}
		return noReplay || s.wave.wavesDiffer(s.g, eIdx, wOld, root, bound, mode)
	}
	for i := range sn.dirty1 {
		if !sn.dirty1[i] && boundedDirty(sn.coll.Label[i], sn.coll.LabelHops[i],
			sn.coll.Mode, sn.coll.Sources[i], 2*sn.coll.H) {
			sn.dirty1[i] = true
		}
	}
	for ci := range sn.dirty3 {
		if !sn.dirty3[ci] && boundedDirty(sn.deltaH.Row(ci), sn.deltaHops[ci],
			bford.In, sn.Q[ci], sn.key.h) {
			sn.dirty3[ci] = true
		}
	}
	if !sn.qsinkDirty {
		for _, row := range sn.qsnap.Rows {
			dirty := false
			if row.Hops == nil {
				dirty = arcDamages(row.Dist, u, v, wmin, directed, row.Mode)
			} else {
				dirty = boundedDirty(row.Dist, row.Hops, row.Mode, row.Root, row.Bound)
			}
			if dirty {
				sn.qsinkDirty = true
				break
			}
		}
	}
	n := len(sn.dirty7)
	for x := range sn.dirty7 {
		if !sn.dirty7[x] && arcDamages(sn.distFlat[x*n:(x+1)*n], u, v, wmin, directed, bford.Out) {
			sn.dirty7[x] = true
		}
	}
}

// adaptiveFallback estimates, from the captured per-stage round counts,
// the cost of the incremental path implied by the current dirty sets, and
// trips fellBack when the expected saving is too small to justify it
// (re-running most sources through the partial path costs slightly MORE
// than a cold run, because the reused stages still pay comparison and copy
// overhead). Stage-1 damage is weighted by the chance of cascading into a
// full stage 2-8 re-run. The 75% threshold is a heuristic over the
// recorded simulation, not a correctness boundary — both paths produce
// bit-identical results. The cost proxy is deliberately the deterministic
// round counters, never host wall clocks: the fallback verdict is exposed
// in update responses (UpdateStats.FellBack, apspd's fell_back field), so
// it must be a pure function of graph + damage or the serving layer's
// byte-stable transcript contract breaks.
func (sn *snapshot) adaptiveFallback() {
	if !sn.valid || sn.fellBack {
		return
	}
	total := 0.0
	for i := range sn.stages {
		total += float64(sn.stages[i].Rounds)
	}
	if total <= 0 {
		return
	}
	roundsF := func(name string) float64 { return float64(sn.rounds(name)) }
	n, q := len(sn.dirty1), len(sn.dirty3)
	est := 0.0
	if n > 0 {
		f1 := float64(countTrue(sn.dirty1)) / float64(n)
		// A refreshed stage-1 tree that actually changed cascades into a
		// cold stage 2-8; charge the cascade at the damage fraction.
		est += f1 * (roundsF("step1-csssp") + (total - roundsF("step1-csssp")))
	}
	if q > 0 {
		est += float64(countTrue(sn.dirty3)) / float64(q) * roundsF("step3-insssp")
	}
	if sn.qsinkDirty {
		est += roundsF("step6-qsink")
	}
	if n > 0 {
		est += float64(countTrue(sn.dirty7)) / float64(n) * roundsF("step7-extend")
	}
	if countTrue(sn.dirty7) > 0 {
		est += roundsF("step8-lastedge")
	}
	if est >= 0.75*total {
		sn.fellBack = true
	}
}

// incPlan is the damage report handed to the pipeline for one incremental
// run: index lists derived from the snapshot's dirty sets, plus the
// cascade flag stages flip when a refreshed fixed point actually changed
// (forcing every later stage to run its cold body).
type incPlan struct {
	snap       *snapshot
	dirty1     []int  // stage-1 tree indices to refresh
	dirty3     []int  // stage-3 blocker indices to refresh
	dirty7     []bool // per-source stage-7 re-run set (stage 6 may add to it)
	qsinkDirty bool
	cascade    bool
}

// n7 counts the stage-7 sources currently marked for re-run.
func (ip *incPlan) n7() int { return countTrue(ip.dirty7) }

// buildPlan converts the accumulated dirty sets into the per-run plan.
// dirty7 is copied: stage 6 can add sources when a q-sink re-run moved
// blocker values, and that must not contaminate the session state if the
// run later fails.
func (sn *snapshot) buildPlan() *incPlan {
	ip := &incPlan{snap: sn}
	for i, d := range sn.dirty1 {
		if d {
			ip.dirty1 = append(ip.dirty1, i)
		}
	}
	for ci, d := range sn.dirty3 {
		if d {
			ip.dirty3 = append(ip.dirty3, ci)
		}
	}
	ip.dirty7 = append([]bool(nil), sn.dirty7...)
	ip.qsinkDirty = sn.qsinkDirty
	return ip
}

func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// snapKeyOf resolves the options into the snapshot compatibility key.
func snapKeyOf(opt Options, h int) snapKey {
	bw := opt.Bandwidth
	if bw == 0 {
		bw = 1
	}
	return snapKey{
		variant:  opt.Variant,
		h:        h,
		bw:       bw,
		seed:     opt.Seed,
		blocker:  opt.BlockerParams,
		skipLast: opt.SkipLastEdges,
	}
}

// capture takes ownership of the pipeline's artifacts and copies its
// outputs into session-owned storage, re-arming the snapshot for the
// session's current graph. Output copies go into grow-only arenas so a
// warm session's steady-state runs allocate only the handful of slices the
// run itself produced.
func (s *Session) capture(p *pipeline, key snapKey) {
	sn := &s.snap
	n := p.n
	sn.key = key
	sn.fellBack = false
	sn.coll = p.coll
	sn.Q = p.Q
	sn.deltaH = p.deltaH
	sn.deltaHops = p.deltaHops
	sn.delta = p.delta
	sn.qres = p.qres
	if cap(sn.distFlat) < n*n {
		sn.distFlat = make([]int64, n*n)
	}
	sn.distFlat = sn.distFlat[:n*n]
	// Output copies go through the backend-agnostic row accessor; eligible
	// runs are full APSP on the flat backend (budgeted runs never capture),
	// so row index == source id and CopyRow is a straight memmove.
	for x := 0; x < n; x++ {
		p.distM.CopyRow(sn.distFlat[x*n:(x+1)*n], x)
	}
	sn.haveLast = p.out.LastHop != nil
	sn.lastFlat = sn.lastFlat[:0]
	if sn.haveLast {
		if cap(sn.lastFlat) < n*n {
			sn.lastFlat = make([]int, n*n)
		}
		sn.lastFlat = sn.lastFlat[:n*n]
		for x := 0; x < n; x++ {
			copy(sn.lastFlat[x*n:(x+1)*n], p.out.LastHop[x])
		}
	}
	sn.stats = p.st
	sn.stages = p.stages
	sn.dirty1 = resetBools(sn.dirty1, n)
	sn.dirty3 = resetBools(sn.dirty3, len(p.Q))
	sn.dirty7 = resetBools(sn.dirty7, n)
	sn.qsinkDirty = false
	sn.valid = true
}
