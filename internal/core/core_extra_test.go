package core

import (
	"testing"

	"congestapsp/internal/blocker"
	"congestapsp/internal/graph"
)

func TestBlockerOnly(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 18, Seed: 3, MaxWeight: 5})
	for _, mode := range []blocker.Mode{blocker.Deterministic, blocker.Greedy, blocker.RandomSample} {
		q, stats, err := BlockerOnly(g, BlockerOptions{H: 3, Mode: mode, Seed: 7})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(q) == 0 {
			t.Errorf("mode %v: empty blocker on a ring", mode)
		}
		if stats.Rounds <= 0 {
			t.Errorf("mode %v: no rounds", mode)
		}
	}
	// H = 0 selects the default ceil(n^(1/3)).
	if _, _, err := BlockerOnly(g, BlockerOptions{}); err != nil {
		t.Errorf("default h: %v", err)
	}
}

func TestOnRoundForwarded(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 10, Seed: 4, MaxWeight: 5})
	calls := 0
	lastRound := -1
	_, err := Run(g, Options{Variant: Det43, SkipLastEdges: true, OnRound: func(r, d int) {
		calls++
		if r <= lastRound {
			t.Fatalf("round indices not increasing: %d after %d", r, lastRound)
		}
		lastRound = r
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("OnRound never invoked")
	}
}

func TestVariantDefaultsH(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 27, Seed: 5, MaxWeight: 9}, 81)
	r43, err := Run(g, Options{Variant: Det43, SkipLastEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if r43.Stats.H != 3 { // ceil(27^(1/3)) = 3
		t.Errorf("det43 default h = %d, want 3", r43.Stats.H)
	}
	r32, err := Run(g, Options{Variant: Det32, SkipLastEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if r32.Stats.H != 6 { // ceil(sqrt(27)) = 6
		t.Errorf("det32 default h = %d, want 6", r32.Stats.H)
	}
}

func TestCongestionAccountingPopulated(t *testing.T) {
	g := graph.Star(graph.GenConfig{N: 14, Seed: 6, MaxWeight: 5})
	res, err := Run(g, Options{Variant: Det43, SkipLastEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxNodeCongestion <= 0 {
		t.Error("max node congestion not recorded")
	}
	if res.Stats.Words < res.Stats.Messages {
		t.Errorf("words %d < messages %d", res.Stats.Words, res.Stats.Messages)
	}
}

func TestMediumIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("medium integration skipped in -short")
	}
	// A mid-size directed instance end-to-end, all variants, exact.
	g := graph.RandomConnected(graph.GenConfig{N: 60, Directed: true, Seed: 77, MaxWeight: 40}, 240)
	want := graph.FloydWarshall(g)
	for _, v := range []Variant{Det43, Det32, Rand43} {
		res, err := Run(g, Options{Variant: v, Seed: 13, SkipLastEdges: true})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for x := 0; x < g.N; x++ {
			for u := 0; u < g.N; u++ {
				if res.Dist[x][u] != want[x][u] {
					t.Fatalf("%v: dist(%d,%d) = %d, want %d", v, x, u, res.Dist[x][u], want[x][u])
				}
			}
		}
	}
}

func TestBandwidthScalesDown(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 20, Seed: 8, MaxWeight: 9}, 60)
	r1, err := Run(g, Options{Variant: Det43, Bandwidth: 1, SkipLastEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(g, Options{Variant: Det43, Bandwidth: 8, SkipLastEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if r8.Stats.Rounds > r1.Stats.Rounds {
		t.Errorf("bandwidth 8 slower: %d vs %d rounds", r8.Stats.Rounds, r1.Stats.Rounds)
	}
}

func TestBlockerModeOverride(t *testing.T) {
	// Det43 with the pairwise-independent randomized blocker (Algorithm 2
	// as written) must still be exact end-to-end.
	g := graph.RandomConnected(graph.GenConfig{N: 18, Seed: 9, MaxWeight: 9}, 60)
	res, err := Run(g, Options{
		Variant:       Det43,
		Seed:          3,
		SkipLastEdges: true,
		BlockerParams: blocker.Params{Mode: blocker.Randomized},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.FloydWarshall(g)
	for x := 0; x < g.N; x++ {
		for v := 0; v < g.N; v++ {
			if res.Dist[x][v] != want[x][v] {
				t.Fatalf("dist(%d,%d) wrong with randomized blocker", x, v)
			}
		}
	}
}
