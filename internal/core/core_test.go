package core

import (
	"testing"

	"congestapsp/internal/graph"
)

func checkAPSP(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	want := graph.FloydWarshall(g)
	for x := 0; x < g.N; x++ {
		for v := 0; v < g.N; v++ {
			if res.Dist[x][v] != want[x][v] {
				t.Fatalf("dist(%d,%d) = %d, want %d", x, v, res.Dist[x][v], want[x][v])
			}
		}
	}
}

func checkLastHops(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	wmin := make(map[[2]int]int64)
	for _, e := range g.Edges() {
		rec := func(u, v int) {
			k := [2]int{u, v}
			if old, ok := wmin[k]; !ok || e.W < old {
				wmin[k] = e.W
			}
		}
		rec(e.U, e.V)
		if !g.Directed {
			rec(e.V, e.U)
		}
	}
	for x := 0; x < g.N; x++ {
		for v := 0; v < g.N; v++ {
			if x == v {
				continue
			}
			if res.Dist[x][v] >= graph.Inf {
				if res.LastHop[x][v] != -1 {
					t.Fatalf("lastHop(%d,%d) set for unreachable pair", x, v)
				}
				continue
			}
			u := res.LastHop[x][v]
			if u < 0 {
				t.Fatalf("lastHop(%d,%d) missing for reachable pair", x, v)
			}
			w, ok := wmin[[2]int{u, v}]
			if !ok {
				t.Fatalf("lastHop(%d,%d) = %d is not an in-neighbor", x, v, u)
			}
			if res.Dist[x][u]+w != res.Dist[x][v] {
				t.Fatalf("lastHop(%d,%d) = %d does not compose: %d + %d != %d",
					x, v, u, res.Dist[x][u], w, res.Dist[x][v])
			}
		}
	}
}

func families() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"random-undir", graph.RandomConnected(graph.GenConfig{N: 20, Seed: 1, MaxWeight: 9}, 55)},
		{"random-dir", graph.RandomConnected(graph.GenConfig{N: 18, Directed: true, Seed: 2, MaxWeight: 9}, 60)},
		{"ring", graph.Ring(graph.GenConfig{N: 16, Seed: 3, MaxWeight: 9})},
		{"ring-dir", graph.Ring(graph.GenConfig{N: 14, Directed: true, Seed: 4, MaxWeight: 9})},
		{"grid", graph.Grid(4, 5, graph.GenConfig{Seed: 5, MaxWeight: 9})},
		{"layered-dir", graph.Layered(5, 3, graph.GenConfig{Directed: true, Seed: 6, MaxWeight: 9})},
		{"star", graph.Star(graph.GenConfig{N: 15, Seed: 7, MaxWeight: 9})},
		{"zeromix", graph.ZeroWeightMix(graph.GenConfig{N: 17, Seed: 8, MaxWeight: 9}, 50)},
	}
}

func TestDet43ExactEverywhere(t *testing.T) {
	for _, tc := range families() {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.g, Options{Variant: Det43})
			if err != nil {
				t.Fatal(err)
			}
			checkAPSP(t, tc.g, res)
			checkLastHops(t, tc.g, res)
		})
	}
}

func TestDet32ExactEverywhere(t *testing.T) {
	for _, tc := range families() {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.g, Options{Variant: Det32})
			if err != nil {
				t.Fatal(err)
			}
			checkAPSP(t, tc.g, res)
		})
	}
}

func TestRand43Exact(t *testing.T) {
	for _, tc := range families()[:4] {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.g, Options{Variant: Rand43, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			checkAPSP(t, tc.g, res)
		})
	}
}

func TestBroadcastStep6Exact(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 20, Directed: true, Seed: 12, MaxWeight: 9}, 70)
	res, err := Run(g, Options{Variant: BroadcastStep6})
	if err != nil {
		t.Fatal(err)
	}
	checkAPSP(t, g, res)
}

func TestDisconnectedDirectedPairs(t *testing.T) {
	// Directed graph whose UG is connected but with unreachable ordered
	// pairs: 0 -> 1 -> 2 with no way back.
	g := graph.New(3, true)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 2, 5)
	res, err := Run(g, Options{Variant: Det43})
	if err != nil {
		t.Fatal(err)
	}
	checkAPSP(t, g, res)
	if res.Dist[2][0] != graph.Inf {
		t.Errorf("dist(2,0) = %d, want Inf", res.Dist[2][0])
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 18, Directed: true, Seed: 13, MaxWeight: 9}, 60)
	a, err := Run(g, Options{Variant: Det43})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{Variant: Det43})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Rounds != b.Stats.Rounds || a.Stats.Messages != b.Stats.Messages {
		t.Errorf("stats differ across runs: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Stats.QSize != b.Stats.QSize {
		t.Errorf("|Q| differs: %d vs %d", a.Stats.QSize, b.Stats.QSize)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 18, Seed: 14, MaxWeight: 9}, 55)
	seq, err := Run(g, Options{Variant: Det43})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(g, Options{Variant: Det43, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < g.N; x++ {
		for v := 0; v < g.N; v++ {
			if seq.Dist[x][v] != par.Dist[x][v] {
				t.Fatalf("parallel dist(%d,%d) differs", x, v)
			}
		}
	}
	if seq.Stats.Rounds != par.Stats.Rounds {
		t.Errorf("round counts differ: %d vs %d", seq.Stats.Rounds, par.Stats.Rounds)
	}
}

func TestStepRoundsSumToTotal(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 16, Seed: 15, MaxWeight: 9}, 48)
	res, err := Run(g, Options{Variant: Det43})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats.Steps
	sum := s.Step1CSSSP + s.Step2Blocker + s.Step3InSSSP + s.Step4Bcast + s.Step6QSink + s.Step7Extend + s.Step8LastEdge
	if sum != res.Stats.Rounds {
		t.Errorf("step rounds sum %d != total %d", sum, res.Stats.Rounds)
	}
	for name, v := range map[string]int{
		"step1": s.Step1CSSSP, "step2": s.Step2Blocker, "step3": s.Step3InSSSP,
		"step4": s.Step4Bcast, "step6": s.Step6QSink, "step7": s.Step7Extend,
	} {
		if v <= 0 {
			t.Errorf("%s recorded no rounds", name)
		}
	}
}

func TestHOverride(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 12, Seed: 16, MaxWeight: 9})
	for _, h := range []int{1, 2, 5} {
		res, err := Run(g, Options{Variant: Det43, H: h})
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if res.Stats.H != h {
			t.Errorf("recorded h = %d, want %d", res.Stats.H, h)
		}
		checkAPSP(t, g, res)
	}
}

func TestSkipLastEdges(t *testing.T) {
	g := graph.Ring(graph.GenConfig{N: 10, Seed: 17, MaxWeight: 9})
	res, err := Run(g, Options{Variant: Det43, SkipLastEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.LastHop != nil {
		t.Error("LastHop computed despite SkipLastEdges")
	}
	checkAPSP(t, g, res)
}

func TestEmptyGraph(t *testing.T) {
	res, err := Run(graph.New(0, false), Options{Variant: Det43})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dist) != 0 {
		t.Error("nonempty result for empty graph")
	}
}

func TestSingleNode(t *testing.T) {
	res, err := Run(graph.New(1, true), Options{Variant: Det43})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[0][0] != 0 {
		t.Errorf("dist(0,0) = %d", res.Dist[0][0])
	}
}
