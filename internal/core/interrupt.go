package core

import (
	"context"
	"errors"
	"fmt"
)

// InterruptError reports a run stopped by its context — canceled or past
// its deadline — together with how far the pipeline got: the stage that was
// executing (or about to execute), the simulated rounds completed, and the
// per-stage timings of every stage finished before the interruption (plus a
// partial record for the interrupted stage). It unwraps to the context's
// own sentinel, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both work through it.
//
// The session that produced an InterruptError remains reusable: the engine
// returns through its normal error path, arenas are rewound by the next
// begin(), and the clone fleet stays intact — pinned by the fault-matrix
// tests.
type InterruptError struct {
	// Stage is the pipeline stage executing when the context fired.
	Stage string
	// CompletedRounds is the simulated round count at interruption.
	CompletedRounds int
	// Stages is the per-stage cost of the work finished so far, including
	// a partial StageTiming for the interrupted stage.
	Stages []StageTiming
	// Cause is the error chain ending in context.Canceled or
	// context.DeadlineExceeded.
	Cause error
}

func (e *InterruptError) Error() string {
	what := "canceled"
	if errors.Is(e.Cause, context.DeadlineExceeded) {
		what = "deadline exceeded"
	}
	return fmt.Sprintf("core: run %s in %s after %d rounds", what, e.Stage, e.CompletedRounds)
}

func (e *InterruptError) Unwrap() error { return e.Cause }

// isContextErr reports whether err's chain ends in a context sentinel —
// the executor uses it to decide between InterruptError (interruption) and
// plain stage-error wrapping (failure).
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
