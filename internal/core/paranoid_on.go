//go:build matcheck

package core

// paranoidGraphCheck: this build carries the matcheck tag, so every
// Session.begin() recomputes the full O(m) graph digest and compares it to
// the incrementally-maintained one — catching mutations that bypass both
// ApplyUpdates and the graph's versioned API (raw writes through the
// Edges() slice). CI runs the race suite with this tag.
const paranoidGraphCheck = true
