package core

import (
	"fmt"

	"congestapsp/internal/bford"
	"congestapsp/internal/graph"
)

// This file is the session's first-class update path: ApplyUpdates patches
// the pinned graph in place (the inversion of the old "the graph must not
// be modified" guard), maintains the session's content digest
// incrementally, and — when a result snapshot is armed — computes which of
// the snapshot's tracked label systems an update can possibly invalidate.
// The next Run consumes that damage report to re-run only the damaged
// work; see snapshot.go and DESIGN.md §10.

// UpdateOp selects what an EdgeUpdate does.
type UpdateOp int

const (
	// SetWeight changes the weight of the first existing U-V edge (either
	// orientation for undirected graphs). Weight-only updates keep the
	// communication topology, so they are the cheap, incrementally
	// re-runnable case.
	SetWeight UpdateOp = iota
	// InsertEdge adds a new U->V edge of weight W. Topology changes force
	// the next run to recompute from scratch (FellBack).
	InsertEdge
	// DeleteEdge removes the first existing U-V edge. Topology change;
	// same fallback as InsertEdge.
	DeleteEdge
)

// String names the operation as it appears in update streams and errors.
func (op UpdateOp) String() string {
	switch op {
	case SetWeight:
		return "set-weight"
	case InsertEdge:
		return "insert"
	default:
		return "delete"
	}
}

// EdgeUpdate is one graph mutation. U and V identify the edge by its
// endpoints; W is the new weight (ignored for DeleteEdge).
type EdgeUpdate struct {
	Op   UpdateOp
	U, V int
	W    int64
}

// UpdateStats reports, after a batch of updates, how much of the armed
// result snapshot survives. The session tracks 2n + |Q| per-source label
// systems (the Step-1 out-trees, the Step-3 in-systems, and the Step-7
// extension rows); Recomputed counts the systems the accumulated damage
// forces the next run to re-execute, Reused the rest. FellBack reports
// that the next run will recompute everything: topology changed, no
// snapshot was armed, or the adaptive threshold judged the damage too
// broad for the incremental path to pay off.
type UpdateStats struct {
	Reused     int
	Recomputed int
	FellBack   bool
}

// UpdateError tags a failed update with its zero-based batch index, so
// callers that coalesce many logical batches into one ApplyUpdates call
// (the serve batcher) can split the blame: updates before Index applied,
// Index failed, everything after was never attempted.
type UpdateError struct {
	Index int
	Err   error
}

func (e *UpdateError) Error() string { return fmt.Sprintf("core: update %d: %v", e.Index, e.Err) }
func (e *UpdateError) Unwrap() error { return e.Err }

// ApplyUpdates applies the batch to the session's graph, in order,
// re-arming the session so the next Run reflects the mutated graph. The
// session — not the old checksum guard — is now the sanctioned mutation
// path: weight changes patch the graph in place and keep the warm network
// untouched (link topology and CSR arenas are weight-free), while
// insert/delete rebuild the communication topology and propagate it to the
// cached worker-clone fleet.
//
// On error the batch stops at the failing update; earlier updates remain
// applied and the session stays consistent with the partially-mutated
// graph (the returned UpdateStats describes that state). Updates with
// W == the current weight are accepted and ignored.
//
// The next Run after ApplyUpdates is bit-identical in results (Dist,
// LastHop), round counts, |Q| and h to a cold run on the mutated graph;
// when it can reuse snapshot state it may skip simulating work whose
// outcome is already known, so message/word counters can legitimately
// differ from a cold run's.
func (s *Session) ApplyUpdates(ups []EdgeUpdate) (UpdateStats, error) {
	if s.g.Version() != s.knownVersion {
		return s.updateStats(), fmt.Errorf("core: graph modified outside ApplyUpdates since the session was created or last updated")
	}
	topo := false
	mutated := false
	// finalize re-arms the session for whatever prefix of the batch was
	// applied, so an error mid-batch still leaves a runnable session.
	finalize := func() error {
		var err error
		if topo {
			err = s.nw.SyncTopology()
			s.digest = graphDigest(s.g)
			s.snap.fellBack = true
			s.hops = nil // BFS depth tables are topology-keyed
		}
		if mutated {
			s.pendingUpdates = true
		}
		s.knownVersion = s.g.Version()
		return err
	}
	for i, up := range ups {
		switch up.Op {
		case SetWeight:
			idx := s.g.FindEdge(up.U, up.V)
			if idx < 0 {
				ferr := finalize()
				return s.updateStats(), firstErr(&UpdateError{i, fmt.Errorf("no edge (%d,%d) to set", up.U, up.V)}, ferr)
			}
			old := s.g.Edges()[idx]
			if old.W == up.W {
				continue
			}
			if err := s.g.SetEdgeWeight(idx, up.W); err != nil {
				ferr := finalize()
				return s.updateStats(), firstErr(&UpdateError{i, err}, ferr)
			}
			mutated = true
			s.digest += edgeTerm(idx, old.U, old.V, up.W) - edgeTerm(idx, old.U, old.V, old.W)
			if s.snap.valid && !s.snap.fellBack && !topo {
				s.damage(idx, up.U, up.V, old.W, up.W)
			}
		case InsertEdge:
			if err := s.g.AddEdge(up.U, up.V, up.W); err != nil {
				ferr := finalize()
				return s.updateStats(), firstErr(&UpdateError{i, err}, ferr)
			}
			mutated, topo = true, true
			e := s.g.Edges()[s.g.M()-1]
			s.digest += edgeTerm(s.g.M()-1, e.U, e.V, e.W)
		case DeleteEdge:
			idx := s.g.FindEdge(up.U, up.V)
			if idx < 0 {
				ferr := finalize()
				return s.updateStats(), firstErr(&UpdateError{i, fmt.Errorf("no edge (%d,%d) to delete", up.U, up.V)}, ferr)
			}
			if err := s.g.RemoveEdge(idx); err != nil {
				ferr := finalize()
				return s.updateStats(), firstErr(&UpdateError{i, err}, ferr)
			}
			mutated, topo = true, true
			// Later edge indices shifted; the digest is rebuilt wholesale in
			// finalize (topology changes fall back to a cold run anyway).
		default:
			ferr := finalize()
			return s.updateStats(), firstErr(&UpdateError{i, fmt.Errorf("unknown op %d", int(up.Op))}, ferr)
		}
	}
	if err := finalize(); err != nil {
		return s.updateStats(), err
	}
	s.snap.adaptiveFallback()
	return s.updateStats(), nil
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

func minW(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// updateStats summarizes the snapshot's accumulated damage state.
func (s *Session) updateStats() UpdateStats {
	sn := &s.snap
	if !sn.valid || sn.fellBack {
		return UpdateStats{FellBack: true}
	}
	re := countTrue(sn.dirty1) + countTrue(sn.dirty3) + countTrue(sn.dirty7)
	total := len(sn.dirty1) + len(sn.dirty3) + len(sn.dirty7)
	return UpdateStats{Reused: total - re, Recomputed: re}
}

func countTrue(b []bool) int {
	n := 0
	for _, x := range b {
		if x {
			n++
		}
	}
	return n
}

// arcDamages is the relaxation half of the damage test (DESIGN.md §10):
// given the final distance row D of a label system, a weight update on
// edge (u,v) can change the system's final values only if the edge admits
// a relaxation that ties or improves some label under the smaller of the
// old and new weights — D[src] + min(wOld, wNew) <= D[dst] along a
// relaxation arc. The <= (rather than <) also protects tie-breaking
// (parent choices, confirmation waves, last-hop equalities), which change
// only when an equality appears or disappears across the updated edge.
// The test is sound ON ITS OWN only for hop-UNBOUNDED systems (final
// distance rows, full SSSPs), whose every label is a min over arbitrary
// relaxation chains: no chain through the updated edge can match the
// incumbent. Hop-bounded systems carry below-convergence Pareto points the
// collapsed row hides; they pair this test with the hop-bound gate and
// wave replay of hops.go (see Session.damage). In-mode systems relax along
// reversed arcs, so the test swaps endpoints; undirected edges are tested
// in both directions.
func arcDamages(D []int64, u, v int, wmin int64, directed bool, mode bford.Mode) bool {
	if mode == bford.In {
		u, v = v, u
	}
	if D[u] < graph.Inf && D[u]+wmin <= D[v] {
		return true
	}
	if !directed && D[v] < graph.Inf && D[v]+wmin <= D[u] {
		return true
	}
	return false
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed uint64
// permutation used to build the commutative content digest.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// edgeTerm is the digest contribution of edge (u,v,w) at index i. Each
// term is a mixed function of position AND content, so reorderings,
// endpoint swaps, and weight moves between edges all change the sum.
func edgeTerm(i, u, v int, w int64) uint64 {
	h := splitmix64(uint64(i) + 0x632BE59BD9B4E019)
	h = splitmix64(h + uint64(u))
	h = splitmix64(h + uint64(v))
	return splitmix64(h + uint64(w))
}

// GraphDigest is the exported content digest of a graph: the same
// SplitMix64 sum the session maintains incrementally, computed wholesale.
// Two graphs share a digest exactly when they have the same node count,
// directedness, and edge list (position, endpoints, weights) — the
// identity the serving pool keys warm Runners by.
func GraphDigest(g *graph.Graph) uint64 { return graphDigest(g) }

// graphDigest is the session's content digest: a wrapping sum of per-edge
// terms plus a header term. Unlike the FNV chain it replaces, the sum is
// position-keyed yet commutative in update order, so ApplyUpdates can
// maintain it in O(1) per weight change or append (term delta) instead of
// the O(m) rescan the old warm path paid on every begin(). Deletions — and
// paranoid -tags matcheck builds — recompute it wholesale.
func graphDigest(g *graph.Graph) uint64 {
	var dir uint64
	if g.Directed {
		dir = 1
	}
	sum := splitmix64(uint64(g.N)<<1 | dir)
	for i, e := range g.Edges() {
		sum += edgeTerm(i, e.U, e.V, e.W)
	}
	return sum
}
