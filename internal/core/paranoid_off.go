//go:build !matcheck

package core

// paranoidGraphCheck is off by default: the warm path guards mutation with
// one O(1) version compare per run instead of the O(m) digest scan (the
// scan survives behind `-tags matcheck`; see paranoid_on.go).
const paranoidGraphCheck = false
