package core

import (
	"congestapsp/internal/bford"
	"congestapsp/internal/graph"
)

// This file holds the hop-bound half of the damage test (update.go): the
// per-topology BFS depth tables that gate it, and the host-local label-wave
// replay that decides it exactly. The final distance row of a HOP-BOUNDED
// label system is not a sound damage interface on its own: the per-level
// labels L_k (k below the bound) can hold Pareto points — worse distance
// reached in fewer hops — that the collapsed final row hides, and a weight
// change there alters the wave (and everything the protocol derives from
// it: tree shapes, blocker choices, delivery schedules) while leaving the
// final row fixed. See DESIGN.md §10.2.

// hopTables caches, for the session's current communication topology, the
// unweighted BFS depth from every vertex in both arc orientations. Depths
// are weight-free, so weight-only update batches reuse the tables; the
// session drops them when edges appear or vanish. fwd[s*n+x] is the
// minimum arc count of a forward path s->x (-1 when unreachable); rev is
// the same over reversed arcs and aliases fwd on undirected graphs.
type hopTables struct {
	n   int
	fwd []int32
	rev []int32
}

// row returns the depth row a label system rooted at root relaxes under:
// Out systems grow along forward arcs from the root, In systems along
// reversed arcs (their chains run x -> ... -> root).
func (ht *hopTables) row(mode bford.Mode, root int) []int32 {
	if mode == bford.In {
		return ht.rev[root*ht.n : (root+1)*ht.n]
	}
	return ht.fwd[root*ht.n : (root+1)*ht.n]
}

func buildHopTables(g *graph.Graph) *hopTables {
	n := g.N
	ht := &hopTables{n: n}
	off, dst := adjacencyCSR(g, false)
	ht.fwd = bfsAllSources(n, off, dst)
	if g.Directed {
		off, dst = adjacencyCSR(g, true)
		ht.rev = bfsAllSources(n, off, dst)
	} else {
		ht.rev = ht.fwd
	}
	return ht
}

// adjacencyCSR builds an unweighted CSR over the graph's arcs; reversed
// flips every arc (undirected graphs are symmetric either way).
func adjacencyCSR(g *graph.Graph, reversed bool) (off, dst []int32) {
	n := g.N
	off = make([]int32, n+1)
	edges := g.Edges()
	arcs := len(edges)
	if !g.Directed {
		arcs *= 2
	}
	dst = make([]int32, arcs)
	count := func(u, v int) { off[u+1]++ }
	for _, e := range edges {
		u, v := e.U, e.V
		if reversed {
			u, v = v, u
		}
		count(u, v)
		if !g.Directed {
			count(v, u)
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	fill := make([]int32, n)
	copy(fill, off[:n])
	put := func(u, v int) { dst[fill[u]] = int32(v); fill[u]++ }
	for _, e := range edges {
		u, v := e.U, e.V
		if reversed {
			u, v = v, u
		}
		put(u, v)
		if !g.Directed {
			put(v, u)
		}
	}
	return off, dst
}

// bfsAllSources runs one BFS per source over the CSR and returns the flat
// n x n depth table (-1 for unreachable). O(n * (n + arcs)) host work,
// paid once per topology per session.
func bfsAllSources(n int, off, dst []int32) []int32 {
	depth := make([]int32, n*n)
	for i := range depth {
		depth[i] = -1
	}
	queue := make([]int32, n)
	for s := 0; s < n; s++ {
		row := depth[s*n : (s+1)*n]
		row[s] = 0
		queue[0] = int32(s)
		for head, tail := 0, 1; head < tail; head++ {
			u := queue[head]
			d := row[u] + 1
			for _, v := range dst[off[u]:off[u+1]] {
				if row[v] < 0 {
					row[v] = d
					queue[tail] = v
					tail++
				}
			}
		}
	}
	return depth
}

// hopGate is the cheap prefilter for a hop-bounded system: a candidate
// routed through the updated edge (u,v) can land strictly below the head's
// convergence level only if F[u]+1 < C[v] — F the BFS depth from the
// system's root in relaxation orientation (the earliest level any chain
// reaches u), C the level the head's label first hit its final value
// (bford Hops at capture; -1 for unreachable heads, whose changes the
// relaxation test already catches). Candidates landing at or above C[v]
// compare against the final value and are judged soundly by arcDamages,
// because every level's label lower-bounds at its final value. When the
// gate is open the wave replay (wavesDiffer) decides exactly.
func hopGate(C []int, F []int32, u, v int, directed bool, mode bford.Mode) bool {
	if mode == bford.In {
		u, v = v, u
	}
	if F[u] >= 0 && C[v] > int(F[u])+1 {
		return true
	}
	if !directed && F[v] >= 0 && C[u] > int(F[v])+1 {
		return true
	}
	return false
}

// waveScratch holds the lockstep replay buffers (two waves x (dist, hops,
// parent) x (current, next)), reused across damage tests so a batch of
// updates allocates nothing after the first.
type waveScratch struct {
	dA, dB, ndA, ndB []int64
	hA, hB, nhA, nhB []int32
	pA, pB, npA, npB []int32
}

func (ws *waveScratch) ensure(n int) {
	if cap(ws.dA) < n {
		ws.dA = make([]int64, n)
		ws.dB = make([]int64, n)
		ws.ndA = make([]int64, n)
		ws.ndB = make([]int64, n)
		i32 := func() []int32 { return make([]int32, n) }
		ws.hA, ws.hB, ws.nhA, ws.nhB = i32(), i32(), i32(), i32()
		ws.pA, ws.pB, ws.npA, ws.npB = i32(), i32(), i32(), i32()
	}
	ws.dA = ws.dA[:n]
	ws.dB = ws.dB[:n]
	ws.ndA = ws.ndA[:n]
	ws.ndB = ws.ndB[:n]
	ws.hA = ws.hA[:n]
	ws.hB = ws.hB[:n]
	ws.nhA = ws.nhA[:n]
	ws.nhB = ws.nhB[:n]
	ws.pA = ws.pA[:n]
	ws.pB = ws.pB[:n]
	ws.npA = ws.npA[:n]
	ws.npB = ws.npB[:n]
}

// waveBetter is bford's deterministic label ordering — (dist, hops,
// parent-id) lexicographic with -1 hops meaning unreachable — over the
// replay's int32 fields. Replicating the exact tie-breaking is what makes
// "waves equal" imply "protocol executions identical".
func waveBetter(d1 int64, h1, p1 int32, d2 int64, h2, p2 int32) bool {
	if d1 != d2 {
		return d1 < d2
	}
	if h2 == -1 {
		return h1 != -1
	}
	if h1 == -1 {
		return false
	}
	if h1 != h2 {
		return h1 < h2
	}
	return p1 < p2
}

// wavesDiffer replays the system's synchronous label wave on the host —
// once with the updated edge at its old weight, once at its new weight, in
// lockstep — and reports whether the FINAL (dist, hops, parent) triples
// diverge. The wave recurrence L_k[v] = better(L_{k-1}[v], min over
// relaxation arcs (u,v) of (L_{k-1}[u]+w, hops+1, u)) is exactly what
// bford's protocol computes level by level, so the replay's finals equal
// the protocol's. Comparing finals only (not intermediate levels) is
// deliberate: consumers read a system's final arrays, its round schedule
// is content-independent, and bford's confirmation wave is a function of
// final labels plus arc weights — whose only changed arc is the updated
// edge, where a confirmation-relevant equality under either weight implies
// the relaxation test already fired (callers run this replay only when it
// did not). Intermediate churn that washes out by convergence therefore
// stays clean, which is what keeps no-op-adjacent updates at zero damage.
// O(levels * m) host work per call, gated by hopGate; both waves stop as
// soon as neither is still changing.
func (ws *waveScratch) wavesDiffer(g *graph.Graph, eIdx int, wOld int64, root, bound int, mode bford.Mode) bool {
	n := g.N
	ws.ensure(n)
	for v := 0; v < n; v++ {
		ws.dA[v], ws.hA[v], ws.pA[v] = graph.Inf, -1, -1
	}
	ws.dA[root], ws.hA[root] = 0, 0
	copy(ws.dB, ws.dA)
	copy(ws.hB, ws.hA)
	copy(ws.pB, ws.pA)
	edges := g.Edges()
	for level := 1; level <= bound; level++ {
		copy(ws.ndA, ws.dA)
		copy(ws.nhA, ws.hA)
		copy(ws.npA, ws.pA)
		copy(ws.ndB, ws.dB)
		copy(ws.nhB, ws.hB)
		copy(ws.npB, ws.pB)
		chgA, chgB := false, false
		relax := func(u, v int, wA, wB int64) {
			if ws.dA[u] < graph.Inf {
				if d, h, p := ws.dA[u]+wA, ws.hA[u]+1, int32(u); waveBetter(d, h, p, ws.ndA[v], ws.nhA[v], ws.npA[v]) {
					ws.ndA[v], ws.nhA[v], ws.npA[v] = d, h, p
					chgA = true
				}
			}
			if ws.dB[u] < graph.Inf {
				if d, h, p := ws.dB[u]+wB, ws.hB[u]+1, int32(u); waveBetter(d, h, p, ws.ndB[v], ws.nhB[v], ws.npB[v]) {
					ws.ndB[v], ws.nhB[v], ws.npB[v] = d, h, p
					chgB = true
				}
			}
		}
		for i := range edges {
			e := &edges[i]
			wA, wB := e.W, e.W
			if i == eIdx {
				wA = wOld
			}
			switch {
			case mode == bford.Out && g.Directed:
				relax(e.U, e.V, wA, wB)
			case mode == bford.In && g.Directed:
				relax(e.V, e.U, wA, wB)
			default:
				relax(e.U, e.V, wA, wB)
				relax(e.V, e.U, wA, wB)
			}
		}
		ws.dA, ws.ndA = ws.ndA, ws.dA
		ws.hA, ws.nhA = ws.nhA, ws.hA
		ws.pA, ws.npA = ws.npA, ws.pA
		ws.dB, ws.ndB = ws.ndB, ws.dB
		ws.hB, ws.nhB = ws.nhB, ws.hB
		ws.pB, ws.npB = ws.npB, ws.pB
		if !chgA && !chgB {
			break // both waves at their fixed point
		}
	}
	for v := 0; v < n; v++ {
		if ws.dA[v] != ws.dB[v] || ws.hA[v] != ws.hB[v] || ws.pA[v] != ws.pB[v] {
			return true
		}
	}
	return false
}

// hasParallelEdge reports whether more than one edge instance joins u and
// v (either orientation on undirected graphs). bford's relaxation
// adjacency keeps one arbitrary instance per (tail, head) pair, so the
// wave replay cannot faithfully model a parallel bundle; updates touching
// one skip the replay and take the conservative (dirty) verdict.
func hasParallelEdge(g *graph.Graph, u, v int) bool {
	seen := 0
	for _, e := range g.Edges() {
		if (e.U == u && e.V == v) || (!g.Directed && e.U == v && e.V == u) {
			seen++
			if seen > 1 {
				return true
			}
		}
	}
	return false
}
