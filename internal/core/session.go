package core

import (
	"context"
	"fmt"
	"math"

	"congestapsp/internal/bford"
	"congestapsp/internal/blocker"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
	"congestapsp/internal/qsink"
)

// Session is a warm execution context pinned to one graph: the CONGEST
// network (CSR adjacency, engine arenas, scratch slabs) is built once, and
// every Run or BlockerOnly call on the session reuses it — including the
// cached worker-clone fleet and its private arenas, which ShardRuns grows
// on the first parallel stage and then keeps warm forever. Repeated runs
// therefore skip the network build and the arena cold start entirely; the
// public surface is apsp.Runner.
//
// A Session supports one call at a time (the Network's single-execution
// discipline). The graph may be mutated ONLY through ApplyUpdates, the
// session's first-class update path: it patches the warm network in place
// (rebuilding the CSR topology when edges appear or vanish) and arms the
// next Run to re-compute incrementally. Mutating the graph any other way
// between runs makes the next Run fail loudly: API-level mutations
// (AddEdge and friends on the graph directly) are caught by an O(1)
// version compare, and raw writes through the Edges() slice by the
// paranoid O(m) digest re-verify of `-tags matcheck` builds.
//
// Results are caller-owned: every matrix a Run returns is freshly
// allocated (or freshly copied, on the incremental path), so a Result
// remains valid after later runs on the same session.
type Session struct {
	g  *graph.Graph
	nw *congest.Network
	// knownVersion is the graph's mutation counter as of the last
	// NewSession/ApplyUpdates; begin() compares it in O(1) instead of
	// re-hashing the edge list on every warm run.
	knownVersion uint64
	// digest is the commutative content digest (update.go), maintained
	// incrementally by ApplyUpdates and re-verified wholesale only under
	// -tags matcheck.
	digest uint64
	// pendingUpdates gates the incremental path: set by ApplyUpdates,
	// consumed by the next Run. Plain warm re-runs stay fully cold, so
	// their simulation (messages, words, congestion) is untouched.
	pendingUpdates bool
	snap           snapshot
	qsnap          qsink.Snapshot
	// hops caches the unweighted BFS depth tables the hop-bound damage
	// test needs (hops.go); weight-free, so weight-only batches reuse it
	// and topology changes drop it. wave is the replay scratch.
	hops *hopTables
	wave waveScratch
	// cal seeds the execution planner's cost model (plan.go): the
	// deterministic per-stage counts of the last successful full run.
	cal calibration
}

// NewSession builds the warm network for g. The graph may be empty.
func NewSession(g *graph.Graph) (*Session, error) {
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		return nil, err
	}
	s := &Session{g: g, nw: nw, knownVersion: g.Version(), digest: graphDigest(g)}
	s.snap.qsnap = &s.qsnap
	return s, nil
}

// ArenaFootprint returns the high-water byte footprint of the session's
// warm network arenas (engine scratch plus the worker-clone fleet's). The
// serving pool adds it to the n²-proportional result-matrix bytes for
// approximate per-entry memory accounting.
func (s *Session) ArenaFootprint() int64 { return s.nw.ArenaFootprint() }

// SetFaultInjector arms (or, with nil, disarms) a deterministic fault
// injector on the session's network and worker-clone fleet — a test
// instrument; see internal/faultinject. The hook persists across runs until
// replaced, so one armed session can serve a whole fault matrix.
func (s *Session) SetFaultInjector(fi congest.FaultInjector) { s.nw.SetFaultInjector(fi) }

// begin re-arms the warm network for a fresh logical run: per-run options
// are (re)applied, statistics are zeroed, and the topology guard checks
// that the graph was not mutated since NewSession.
func (s *Session) begin(bandwidth int, parallel bool, minShard int, onRound func(int, int)) error {
	if s.g.Version() != s.knownVersion {
		return fmt.Errorf("core: graph modified outside ApplyUpdates since the session was created (version mismatch; route mutations through Session.ApplyUpdates)")
	}
	if paranoidGraphCheck && graphDigest(s.g) != s.digest {
		return fmt.Errorf("core: graph content diverged from the session digest (matcheck: a mutation bypassed both ApplyUpdates and the graph API)")
	}
	if bandwidth == 0 {
		bandwidth = 1
	}
	if err := s.nw.SetBandwidth(bandwidth); err != nil {
		return err
	}
	s.nw.Parallel = parallel
	s.nw.MinShardNodes = minShard
	s.nw.OnRound = onRound
	s.nw.ResetStats()
	return nil
}

// Run executes the selected APSP variant on the session's graph, reusing
// the warm network. It is the session form of the package-level Run and
// produces bit-identical results (the engine and every protocol draw from
// grow-only pooled state whose content is fully re-initialized per run).
func (s *Session) Run(opt Options) (*Result, error) {
	return s.RunContext(context.Background(), opt)
}

// RunContext is Run under a context: the run observes ctx.Done() at round
// granularity inside the engine and at every pipeline stage boundary, and
// an interrupted run returns an *InterruptError (unwrapping to the context
// sentinel) that reports the stage, completed rounds, and per-stage cost of
// the work finished. The session remains reusable after an interrupted run
// — the next call starts clean and produces bit-identical results, exactly
// as after a successful one. A context that can never be canceled
// (context.Background, context.TODO) arms nothing and costs nothing.
func (s *Session) RunContext(ctx context.Context, opt Options) (*Result, error) {
	n := s.g.N
	if n == 0 {
		return &Result{}, nil
	}
	if err := s.begin(opt.Bandwidth, opt.Parallel, opt.MinShardNodes, opt.OnRound); err != nil {
		return nil, err
	}
	s.nw.RetrySequential = opt.RetrySequential
	s.nw.SetContext(ctx)
	defer s.nw.SetContext(nil)
	h := opt.H
	if h == 0 {
		switch opt.Variant {
		case Det32:
			h = int(math.Ceil(math.Sqrt(float64(n))))
		default:
			h = int(math.Ceil(math.Pow(float64(n), 1.0/3)))
		}
	}
	if h < 1 {
		h = 1
	}
	p := &pipeline{
		g:   s.g,
		nw:  s.nw,
		opt: opt,
		n:   n,
		h:   h,
		st:  Stats{N: n, M: s.g.M(), H: h},
	}
	key := snapKeyOf(opt, h)
	// Memory budget: when the flat result footprint would exceed it the run
	// selects the tiled spillable matrix backend.
	p.budget = tiledBudget(opt, n)
	// Planner: resolve this run's per-stage execution plan from the
	// session's calibration record. On a 1-core host this is a single
	// integer compare resolving to all-seq.
	if opt.Planner {
		p.plan = s.planFor(key, n, opt)
	}
	// Snapshot eligibility: full-APSP, non-budgeted runs only. Partial runs
	// neither arm nor consume snapshots (and leave an armed one untouched
	// and valid); budgeted runs skip capture because the n x n snapshot
	// copies would defeat the very budget that selected tiling.
	eligible := opt.Sources == nil && p.budget == 0
	if s.pendingUpdates {
		// One-shot gate: this run reflects the updates whether it reuses
		// snapshot state or recomputes; either way the next plain re-run
		// is an ordinary cold run on the now-current graph.
		s.pendingUpdates = false
		if eligible && s.snap.valid && !s.snap.fellBack && key == s.snap.key {
			p.inc = s.snap.buildPlan()
		}
	}
	if eligible {
		// The run below overwrites snapshot-owned state (the q-sink
		// capture arena; refreshed collection rows on the incremental
		// path). Invalidate until it completes, so a canceled or panicked
		// run leaves the next Run cold instead of reusing torn state —
		// exactly the session's reuse-after-error contract.
		s.snap.valid = false
		p.qcap = &s.qsnap
	}
	res, err := p.run()
	if err != nil {
		p.releaseTiled()
		return nil, err
	}
	s.recordCalibration(key, p)
	if eligible {
		s.capture(p, key)
	}
	return res, nil
}

// BlockerOnly builds just the h-hop CSSSP collection for all sources and a
// blocker set over it on the warm network; it is the session form of the
// package-level BlockerOnly (and backs apsp.Runner.BlockerSet).
func (s *Session) BlockerOnly(opt BlockerOptions) ([]int, blocker.Stats, error) {
	return s.BlockerOnlyContext(context.Background(), opt)
}

// BlockerOnlyContext is BlockerOnly under a context, observed at round
// granularity; an interrupted construction returns the context's error (the
// blocker path has no staged executor, so there is no InterruptError
// envelope — match with errors.Is against the context sentinels). The
// session remains reusable afterwards.
func (s *Session) BlockerOnlyContext(ctx context.Context, opt BlockerOptions) ([]int, blocker.Stats, error) {
	h := opt.H
	if h < 1 {
		h = int(math.Ceil(math.Pow(float64(s.g.N), 1.0/3)))
	}
	if err := s.begin(1, opt.Parallel, 0, nil); err != nil {
		return nil, blocker.Stats{}, err
	}
	s.nw.RetrySequential = false
	s.nw.SetContext(ctx)
	defer s.nw.SetContext(nil)
	sources := make([]int, s.g.N)
	for i := range sources {
		sources[i] = i
	}
	coll, err := csssp.Build(s.nw, s.g, sources, h, bford.Out)
	if err != nil {
		return nil, blocker.Stats{}, err
	}
	res, err := blocker.Compute(s.nw, coll, blocker.Params{Mode: opt.Mode, Seed: opt.Seed})
	if err != nil {
		return nil, blocker.Stats{}, err
	}
	return res.Q, res.Stats, nil
}
