package core

import "congestapsp/internal/congest"

// This file is the adaptive per-stage execution planner (DESIGN.md §13):
// instead of one global Options.Parallel bool steering all eight pipeline
// stages, a planner-enabled run decides seq vs sharded per stage from a
// deterministic cost model seeded by the stage's captured round and sub-run
// counts. The counts come from the session's calibration record — the
// per-stage rounds of the last successful full run of the same resolved
// configuration (warm sessions and incremental snapshots already carry
// Result.Stages, so a warm session has them after one run). A cold session
// with no record executes an all-sequential calibration run first; its
// captured counts seed every later plan.
//
// The model is deliberately a pure function of deterministic quantities
// (stage rounds, sub-run counts, the engine's in-round sharding threshold)
// plus a single workers>1 gate — never host wall clocks and never the
// worker count beyond that gate. That keeps the plan reproducible: the same
// graph and options produce the same plan at GOMAXPROCS 2 and 4, and a
// 1-core host degenerates to all-seq before any calibration state is even
// consulted (so planner overhead there is one integer compare per run).
// Results are unaffected either way — seq and sharded execution are
// bit-identical in every distributed column, which is what makes a wrong
// plan a performance bug, never a correctness bug.

// Exec decision labels recorded in StageTiming.Exec.
const (
	execSeq     = "seq"
	execSharded = "sharded"
)

// ExecPlan is one run's per-stage seq-vs-sharded decision vector, indexed
// like pipelineStages.
type ExecPlan struct {
	Sharded [8]bool
	// Calibration marks a measuring run: no calibration record existed for
	// this configuration, so every stage runs sequentially and the run's
	// captured counts seed the next plan.
	Calibration bool
}

// calibration is the session's cost-model seed: the deterministic per-stage
// round counts and blocker-set size of the last successful full run of the
// keyed configuration.
type calibration struct {
	valid  bool
	key    snapKey
	qSize  int
	rounds [8]int
}

// stageIndex maps a stage name to its pipelineStages slot (-1 if unknown).
func stageIndex(name string) int {
	for i := range pipelineStages {
		if pipelineStages[i].name == name {
			return i
		}
	}
	return -1
}

// Planner thresholds. A stage that dispatches independent sub-runs shards
// when there are enough sub-runs to spread over a fleet AND the stage's
// recorded rounds say the work amortizes the clone dispatch; a
// single-protocol stage (Steps 4, 8) shards only via the engine's in-round
// path, so it is gated on the active-set threshold that path applies.
const (
	minShardSubRuns = 4
	minShardRounds  = 256
)

// buildExecPlan computes the decision vector. rounds == nil means no
// calibration record exists; workers < 2 short-circuits to all-seq.
func buildExecPlan(workers, n, q, subs7, minShard int, rounds *[8]int) ExecPlan {
	var pl ExecPlan
	if workers < 2 {
		return pl
	}
	if rounds == nil {
		pl.Calibration = true
		return pl
	}
	subRuns := func(i, count int) bool {
		return count >= minShardSubRuns && rounds[i] >= minShardRounds
	}
	inRound := func(i int) bool {
		return n >= minShard && rounds[i] >= minShardRounds
	}
	pl.Sharded[0] = subRuns(0, n) // step1-csssp: one out-tree per vertex
	pl.Sharded[1] = subRuns(1, n) // step2-blocker: per-tree passes
	pl.Sharded[2] = subRuns(2, q) // step3-insssp: one in-SSSP per blocker
	pl.Sharded[3] = inRound(3)    // step4-bcast: single protocol run
	// step5-closure is purely local computation: always seq (index 4).
	pl.Sharded[5] = subRuns(5, q)     // step6-qsink: paired SSSPs per blocker
	pl.Sharded[6] = subRuns(6, subs7) // step7-extend: one extension per source
	pl.Sharded[7] = inRound(7)        // step8-lastedge: single protocol run
	return pl
}

// planFor resolves this run's ExecPlan from the session's calibration
// record (nil rounds when the record is missing or keyed differently).
func (s *Session) planFor(key snapKey, n int, opt Options) *ExecPlan {
	subs7 := n
	if opt.Sources != nil {
		subs7 = len(opt.Sources)
	}
	var rounds *[8]int
	q := 0
	if s.cal.valid && s.cal.key == key {
		rounds = &s.cal.rounds
		q = s.cal.qSize
	}
	pl := buildExecPlan(congest.HostWorkers(), n, q, subs7, s.nw.EffectiveMinShardNodes(), rounds)
	return &pl
}

// recordCalibration stores the run's deterministic counts as the cost-model
// seed. Only full runs calibrate: a partial run's step-7 count reflects its
// source list, not the configuration.
func (s *Session) recordCalibration(key snapKey, p *pipeline) {
	if p.opt.Sources != nil {
		return
	}
	c := calibration{valid: true, key: key, qSize: len(p.Q)}
	for i := range p.stages {
		if idx := stageIndex(p.stages[i].Name); idx >= 0 {
			c.rounds[idx] = p.stages[i].Rounds
		}
	}
	s.cal = c
}
