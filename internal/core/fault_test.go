package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"congestapsp/internal/congest"
	"congestapsp/internal/faultinject"
	"congestapsp/internal/graph"
)

// fingerprint is the deterministic slice of a run compared across the fault
// matrix: the model-level cost counters and the full distance matrix.
// Host-side observations (per-stage wall clock, allocation counts) are
// excluded — they are the only nondeterministic fields of a Result.
type fingerprint struct {
	rounds   int
	messages int64
	words    int64
	qSize    int
	h        int
	dist     [][]int64
}

func fp(res *Result) fingerprint {
	return fingerprint{
		rounds:   res.Stats.Rounds,
		messages: res.Stats.Messages,
		words:    res.Stats.Words,
		qSize:    res.Stats.QSize,
		h:        res.Stats.H,
		dist:     res.Dist,
	}
}

// TestFaultMatrix sweeps injected faults — a forced sub-run error, a
// sub-run panic, a per-round delay under a context deadline, a pre-canceled
// context, and a panic recovered by RetrySequential — across all 4 profiles
// x both exec modes. Every cell asserts the expected typed error with its
// stage tag, and that the SAME session's next clean run is bit-identical
// (rounds/messages/words/|Q|/h and distances) to an uninjected cold run:
// the session-reuse-after-error contract.
func TestFaultMatrix(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	g := graph.RandomConnected(graph.GenConfig{N: 28, Seed: 11, MaxWeight: 9}, 84)
	variants := []Variant{Det43, Det32, Rand43, BroadcastStep6}

	type cell struct {
		name string
		// inject arms the session and runs once, returning the injected
		// run's error for the cell's assertions.
		inject func(t *testing.T, s *Session, opt Options)
	}
	cells := []cell{
		{name: "forced-error", inject: func(t *testing.T, s *Session, opt Options) {
			inj := faultinject.New(1, faultinject.Rule{
				Hook: faultinject.HookSubRun, Stage: "step3-insssp", SubRun: 0, Once: true,
			})
			s.SetFaultInjector(inj)
			_, err := s.Run(opt)
			if err == nil {
				t.Fatal("forced error did not surface")
			}
			var ie *faultinject.InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("got %T (%v), want *faultinject.InjectedError", err, err)
			}
			if ie.Stage != "step3-insssp" || ie.SubRun != 0 {
				t.Fatalf("bad stage tag: %+v", ie)
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("does not unwrap to ErrInjected: %v", err)
			}
			if inj.Fired() != 1 {
				t.Fatalf("rule fired %d times, want 1", inj.Fired())
			}
		}},
		{name: "subrun-panic", inject: func(t *testing.T, s *Session, opt Options) {
			inj := faultinject.New(1, faultinject.Rule{
				Hook: faultinject.HookSubRun, Stage: "step7-extend", SubRun: 0,
				Kind: faultinject.Panic, Once: true,
			})
			s.SetFaultInjector(inj)
			_, err := s.Run(opt)
			var pe *congest.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("got %T (%v), want *congest.PanicError", err, err)
			}
			if pe.Stage != "step7-extend" || pe.SubRun != 0 || pe.Source != 0 {
				t.Fatalf("bad panic tags (want stage step7-extend, sub-run 0, source 0): %+v", pe)
			}
			if _, ok := pe.Value.(*faultinject.InjectedPanic); !ok {
				t.Fatalf("panic value is %T, want *faultinject.InjectedPanic", pe.Value)
			}
		}},
		{name: "delay-deadline", inject: func(t *testing.T, s *Session, opt Options) {
			inj := faultinject.New(1, faultinject.Rule{
				Hook: faultinject.HookRound, Stage: "step1-csssp",
				Round: faultinject.RoundAny, SubRun: -1,
				Kind: faultinject.Delay, Delay: 30 * time.Millisecond,
			})
			s.SetFaultInjector(inj)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := s.RunContext(ctx, opt)
			elapsed := time.Since(start)
			var ie *InterruptError
			if !errors.As(err, &ie) {
				t.Fatalf("got %T (%v), want *InterruptError", err, err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("does not match context.DeadlineExceeded: %v", err)
			}
			if ie.Stage != "step1-csssp" {
				t.Fatalf("interrupted stage = %q, want step1-csssp", ie.Stage)
			}
			// The cancellation-latency pin: the deadline fires during the
			// first 30ms round delay, and every engine must notice at its
			// next round check — within 2 rounds of ctx.Done() per worker.
			// CompletedRounds sums the per-clone partial rounds when stage 1
			// was source-sharded, so the bound scales with the worker count
			// (the workers burn their rounds concurrently, not serially).
			if limit := 2 * runtime.GOMAXPROCS(0); ie.CompletedRounds > limit {
				t.Fatalf("run continued %d rounds past a 10ms deadline with 30ms round delays (limit %d)", ie.CompletedRounds, limit)
			}
			if elapsed > 2*time.Second {
				t.Fatalf("cancellation took %v, want well under 2s", elapsed)
			}
		}},
		{name: "pre-canceled", inject: func(t *testing.T, s *Session, opt Options) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := s.RunContext(ctx, opt)
			var ie *InterruptError
			if !errors.As(err, &ie) {
				t.Fatalf("got %T (%v), want *InterruptError", err, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("does not match context.Canceled: %v", err)
			}
			if ie.Stage != "step1-csssp" || ie.CompletedRounds != 0 {
				t.Fatalf("pre-canceled run reports stage %q after %d rounds, want step1-csssp after 0", ie.Stage, ie.CompletedRounds)
			}
		}},
	}

	for _, v := range variants {
		for _, parallel := range []bool{false, true} {
			opt := Options{Variant: v, Parallel: parallel, Seed: 7}
			cold, err := Run(g, opt)
			if err != nil {
				t.Fatalf("%v parallel=%v: cold run: %v", v, parallel, err)
			}
			want := fp(cold)
			for _, c := range cells {
				t.Run(c.name+"/"+v.String()+"/parallel="+boolName(parallel), func(t *testing.T) {
					s, err := NewSession(g)
					if err != nil {
						t.Fatal(err)
					}
					c.inject(t, s, opt)
					// Disarm and re-run on the SAME session: the recovery
					// contract is that it comes back bit-identical to cold.
					s.SetFaultInjector(nil)
					res, err := s.Run(opt)
					if err != nil {
						t.Fatalf("clean run after injected fault: %v", err)
					}
					if got := fp(res); !reflect.DeepEqual(got, want) {
						t.Fatalf("post-fault run diverges from cold run\n  got:  %+v\n  want: %+v",
							fingerprint{got.rounds, got.messages, got.words, got.qSize, got.h, nil},
							fingerprint{want.rounds, want.messages, want.words, want.qSize, want.h, nil})
					}
				})
			}
			// Graceful-degradation cell: RetrySequential turns the same
			// sub-run panic into a successful run whose results and stats
			// are bit-identical to the undisturbed cold run, first try.
			t.Run("retry-sequential/"+v.String()+"/parallel="+boolName(parallel), func(t *testing.T) {
				s, err := NewSession(g)
				if err != nil {
					t.Fatal(err)
				}
				inj := faultinject.New(1, faultinject.Rule{
					Hook: faultinject.HookSubRun, Stage: "step7-extend", SubRun: 0,
					Kind: faultinject.Panic, Once: true,
				})
				s.SetFaultInjector(inj)
				ropt := opt
				ropt.RetrySequential = true
				res, err := s.Run(ropt)
				if err != nil {
					t.Fatalf("RetrySequential did not recover: %v", err)
				}
				if inj.Fired() != 1 {
					t.Fatalf("rule fired %d times, want 1", inj.Fired())
				}
				if got := fp(res); !reflect.DeepEqual(got, want) {
					t.Fatal("recovered run diverges from cold run")
				}
			})
		}
	}
}

func boolName(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// TestSessionChecksumGuard pins the out-of-band mutation guard: any
// graph-API mutation not routed through ApplyUpdates — including a pure
// weight change, which keeps the edge count constant — is caught by the
// O(1) version compare at the next run, and the rejection is permanent
// until the session is re-synchronized through ApplyUpdates. (Raw writes
// through the Edges() slice bypass the version counter and are caught only
// under -tags matcheck; see TestSessionDigestGuardMatcheck.)
func TestSessionChecksumGuard(t *testing.T) {
	g := graph.New(3, false)
	for _, e := range [][3]int64{{0, 1, 2}, {1, 2, 3}} {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdgeWeight(0, 9); err != nil { // same edge count, different weight
		t.Fatal(err)
	}
	if _, err := s.Run(Options{}); err == nil {
		t.Fatal("out-of-band weight mutation not caught by the session guard")
	}
	// Undoing the value does not un-mutate the graph: the version counter is
	// monotonic, so the session stays rejected until told about the change.
	if err := g.SetEdgeWeight(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Options{}); err == nil {
		t.Fatal("session accepted a graph mutated behind its back")
	}
	// The way out is a fresh session (ApplyUpdates also refuses a graph
	// mutated behind the session's back — it cannot know what changed).
	s2, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(Options{}); err != nil {
		t.Fatalf("fresh session on the mutated graph rejected: %v", err)
	}
}
