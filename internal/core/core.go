// Package core implements the paper's overall APSP algorithm (Algorithm 1)
// on the CONGEST simulator, together with the baseline variants that the
// benchmark harness compares against (Table 1 of the paper):
//
//   - Det43: this paper — h = n^(1/3), deterministic blocker set
//     (Algorithm 2'), pipelined reversed q-sink delivery (Algorithms 8/9).
//     O~(n^(4/3)) rounds (Theorem 1.1).
//   - Det32: the Agarwal-Ramachandran-King-Pontecorvi PODC'18 baseline [2]
//     — h = n^(1/2), greedy blocker set, Step 6 by broadcast. O~(n^(3/2)).
//   - Rand43: the randomized-sampling profile in the style of Huang et
//     al. [13] / Agarwal-Ramachandran [1] — random blocker set, pipelined
//     Step 6. O~(n^(4/3)) w.h.p.
//   - BroadcastStep6: ablation — this paper's pipeline with Step 6 replaced
//     by the trivial broadcast, isolating the contribution of Section 4.
//     O~(n^(5/3)).
//
// The steps of Algorithm 1 map to:
//
//	Step 1  csssp.Build (out-trees for V)          O(n*h)
//	Step 2  blocker.Compute                        O~(n*h) det / O(nh+n|Q|) greedy
//	Step 3  bford.RunLabels in-SSSP per c in Q     O(|Q|*h)
//	Step 4  broadcast.AllToAll of |Q|^2 values     O~(n^(4/3))
//	Step 5  local min-plus closure over Q
//	Step 6  qsink.Run                              O~(n^(4/3)) / O~(n^(5/3))
//	Step 7  bford.RunLabelsWithInit per source     O(n*h)
//	(+)     last-edge resolution by neighbor exchange, O(n)
package core

import (
	"fmt"
	"math"

	"congestapsp/internal/bford"
	"congestapsp/internal/blocker"
	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/csssp"
	"congestapsp/internal/graph"
	"congestapsp/internal/mat"
	"congestapsp/internal/qsink"
)

// Variant selects the algorithm profile.
type Variant int

const (
	// Det43 is the paper's deterministic O~(n^(4/3)) algorithm.
	Det43 Variant = iota
	// Det32 is the deterministic O~(n^(3/2)) baseline of [2].
	Det32
	// Rand43 is the randomized-sampling O~(n^(4/3)) profile ([13, 1]).
	Rand43
	// BroadcastStep6 is Det43 with the trivial O~(n^(5/3)) Step 6.
	BroadcastStep6
)

// String names the variant as it appears in experiment tables.
func (v Variant) String() string {
	switch v {
	case Det43:
		return "det43"
	case Det32:
		return "det32"
	case Rand43:
		return "rand43"
	default:
		return "broadcast-step6"
	}
}

// Options configures a run.
type Options struct {
	Variant Variant
	// H overrides the hop parameter (0 = the variant's default: ceil of
	// n^(1/3) for the n^(4/3) profiles, ceil of sqrt(n) for Det32).
	H int
	// Bandwidth is the CONGEST per-link words-per-round budget (default 1).
	Bandwidth int
	// Parallel enables the simulator's worker-pool execution: independent
	// per-source sub-runs shard across cloned networks, and large rounds
	// shard internally across workers.
	Parallel bool
	// MinShardNodes overrides the engine's in-round sharding threshold
	// (congest.Network.MinShardNodes; 0 = the engine default). Tests set 1
	// to force every round through the sharded path.
	MinShardNodes int
	// Seed drives the randomized variants.
	Seed int64
	// BlockerParams tunes the blocker construction. For the Det43 and
	// BroadcastStep6 variants an explicit Mode is honored (e.g. the
	// pairwise-independent randomized Algorithm 2); Det32 and Rand43 force
	// their own constructions.
	BlockerParams blocker.Params
	// SkipLastEdges disables the final last-edge resolution pass.
	SkipLastEdges bool
	// OnRound is forwarded to the simulator's per-round trace hook.
	OnRound func(round, delivered int)
	// Sources, when non-nil, restricts the output to shortest paths FROM
	// these sources (partial APSP): Step 7's per-source extension runs only
	// for them, saving (n - |Sources|) * h rounds. Steps 1-6 are unchanged
	// (the blocker machinery needs the full collection either way), and
	// Dist rows for non-sources are nil. Out-of-range sources are an error;
	// duplicates are dropped (each source's extension runs — and is charged
	// — once). Implies SkipLastEdges.
	Sources []int
}

// StepRounds decomposes the total round count by Algorithm 1 step.
type StepRounds struct {
	Step1CSSSP    int
	Step2Blocker  int
	Step3InSSSP   int
	Step4Bcast    int
	Step6QSink    int
	Step7Extend   int
	Step8LastEdge int
}

// Stats aggregates everything the benchmark harness reports.
type Stats struct {
	N, M, H           int
	QSize             int
	Rounds            int
	Messages          int64
	Words             int64
	MaxNodeCongestion int64
	Steps             StepRounds
	Blocker           blocker.Stats
	QSink             qsink.Stats
}

// Result is the APSP output: exact distances (and last edges) for every
// ordered pair, as known distributedly at the target nodes. The row slices
// are zero-copy views of flat row-major matrices (internal/mat); rows for
// non-sources are nil when Options.Sources restricted the run.
type Result struct {
	// Dist[x][t] = delta(x, t); graph.Inf when t is unreachable from x.
	Dist [][]int64
	// LastHop[x][t] is the predecessor of t on a shortest x->t path (-1
	// for t == x, unreachable pairs, or when SkipLastEdges was set).
	LastHop [][]int
	Stats   Stats
}

// Run executes the selected APSP variant on g.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	n := g.N
	if n == 0 {
		return &Result{}, nil
	}
	if opt.Bandwidth == 0 {
		opt.Bandwidth = 1
	}
	nw, err := congest.NewNetwork(g, opt.Bandwidth)
	if err != nil {
		return nil, err
	}
	nw.Parallel = opt.Parallel
	nw.MinShardNodes = opt.MinShardNodes
	nw.OnRound = opt.OnRound

	h := opt.H
	if h == 0 {
		switch opt.Variant {
		case Det32:
			h = int(math.Ceil(math.Sqrt(float64(n))))
		default:
			h = int(math.Ceil(math.Pow(float64(n), 1.0/3)))
		}
	}
	if h < 1 {
		h = 1
	}

	st := Stats{N: n, M: g.M(), H: h}
	mark := func(dst *int) {
		*dst = nw.Stats.Rounds - sumSteps(&st.Steps)
	}

	// Step 1: h-hop CSSSP collection for V (out-trees).
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	coll, err := csssp.Build(nw, g, sources, h, bford.Out)
	if err != nil {
		return nil, fmt.Errorf("core: step 1: %w", err)
	}
	mark(&st.Steps.Step1CSSSP)

	// Step 2: blocker set Q for the collection. The variant picks the
	// construction; an explicit BlockerParams.Mode (e.g. the
	// pairwise-independent randomized Algorithm 2) wins over the Det43
	// default so ablations can drive the full pipeline with any blocker.
	bp := opt.BlockerParams
	switch opt.Variant {
	case Det32:
		bp.Mode = blocker.Greedy
	case Rand43:
		bp.Mode = blocker.RandomSample
		bp.Seed = opt.Seed
	default:
		if bp.Mode != blocker.Deterministic {
			bp.Seed = opt.Seed
		}
	}
	bres, err := blocker.Compute(nw, coll, bp)
	if err != nil {
		return nil, fmt.Errorf("core: step 2: %w", err)
	}
	coll.ResetRemovals() // the blocker construction pruned the trees
	Q := bres.Q
	st.QSize = len(Q)
	st.Blocker = bres.Stats
	mark(&st.Steps.Step2Blocker)

	// Step 3: h-hop in-SSSP per blocker node: node x learns
	// deltaH row ci at column x = delta_h(x, Q[ci]). (Label distances: min
	// weight over <= h hops.) The |Q| runs are independent, so they
	// source-shard across worker clones; each run owns one matrix row.
	q := len(Q)
	deltaH := mat.New(q, n)
	err = sourceShard(nw, q, func(w *congest.Network, ci int) error {
		res, err := bford.RunLabels(w, g, Q[ci], h, bford.In)
		if err != nil {
			return fmt.Errorf("core: step 3: %w", err)
		}
		copy(deltaH.Row(ci), res.Dist)
		return nil
	})
	if err != nil {
		return nil, err
	}
	mark(&st.Steps.Step3InSSSP)

	// Step 4: every blocker c broadcasts delta_h(c, c') for all c' in Q
	// (|Q|^2 values; O(n + |Q|^2) rounds, Lemma A.2/A.1).
	tree, err := broadcast.BuildBFS(nw, 0)
	if err != nil {
		return nil, err
	}
	itemCnt := make([]int32, n)
	for _, c := range Q {
		for cj := range Q {
			if deltaH.At(cj, c) < graph.Inf {
				itemCnt[c]++
			}
		}
	}
	items := broadcast.CarveItems(itemCnt)
	for ci, c := range Q {
		for cj := range Q {
			if d := deltaH.At(cj, c); d < graph.Inf {
				items[c] = append(items[c], broadcast.Item{A: int64(ci), B: int64(cj), C: d})
			}
		}
	}
	all, err := broadcast.AllToAll(nw, tree, items)
	if err != nil {
		return nil, fmt.Errorf("core: step 4: %w", err)
	}
	mark(&st.Steps.Step4Bcast)

	// Step 5 (local): min-plus closure over the Q x Q matrix, then
	// delta(x, c) = min(delta_h(x, c), min_c1 delta_h(x, c1) + dQ(c1, c)).
	dQ := mat.NewFilled(q, q, graph.Inf)
	for i := 0; i < q; i++ {
		dQ.Set(i, i, 0)
	}
	for _, it := range all {
		ci, cj, d := int(it.A), int(it.B), it.C
		if d < dQ.At(ci, cj) {
			dQ.Set(ci, cj, d)
		}
	}
	for k := 0; k < q; k++ {
		rowK := dQ.Row(k)
		for i := 0; i < q; i++ {
			dik := dQ.At(i, k)
			if dik >= graph.Inf {
				continue
			}
			rowI := dQ.Row(i)
			for j := 0; j < q; j++ {
				if nd := dik + rowK[j]; nd < rowI[j] {
					rowI[j] = nd
				}
			}
		}
	}
	// delta row x at column ci: the Step-5 value known at x.
	delta := mat.New(n, q)
	for x := 0; x < n; x++ {
		row := delta.Row(x)
		for ci := 0; ci < q; ci++ {
			best := deltaH.At(ci, x)
			for c1 := 0; c1 < q; c1++ {
				if dH := deltaH.At(c1, x); dH < graph.Inf {
					if dq := dQ.At(c1, ci); dq < graph.Inf {
						if nd := dH + dq; nd < best {
							best = nd
						}
					}
				}
			}
			row[ci] = best
		}
	}

	// Step 6: reversed q-sink delivery.
	qp := qsink.Params{Scheduler: qsink.RoundRobin, Blocker: blocker.Params{Mode: blocker.Deterministic}}
	switch opt.Variant {
	case Det32, BroadcastStep6:
		qp.Scheduler = qsink.BroadcastAll
	case Rand43:
		qp.Blocker = blocker.Params{Mode: blocker.RandomSample, Seed: opt.Seed + 1}
	}
	qres, err := qsink.Run(nw, g, Q, delta, qp)
	if err != nil {
		return nil, fmt.Errorf("core: step 6: %w", err)
	}
	st.QSink = qres.Stats
	mark(&st.Steps.Step6QSink)

	// Step 7: per source x, extended h-hop Bellman-Ford seeded with the
	// Step-1 labels everywhere and the exact delta(x, c) at blockers. The
	// per-source extensions are independent, so they source-shard across
	// worker clones like Step 3; each source owns one row of the flat
	// distance matrix.
	step7Sources := sources
	if opt.Sources != nil {
		step7Sources, err = validateSources(opt.Sources, n)
		if err != nil {
			return nil, err
		}
		opt.SkipLastEdges = true
	}
	// One flat row per requested source (not n x n: partial runs with few
	// sources must not pay the full matrix).
	distM := mat.New(len(step7Sources), n)
	err = sourceShard(nw, len(step7Sources), func(w *congest.Network, k int) error {
		x := step7Sources[k] // Step 1 built one tree per node, indexed by id
		// The seed vector comes from the worker's scratch arena (reset per
		// sub-run by ShardRuns); RunLabelsWithInit is the non-resetting
		// bford entry point, so the checkout stays live through the run.
		init := w.Scratch().Int64s(n)
		copy(init, coll.Label[x])
		for ci := range Q {
			if v := qres.AtBlocker[ci][x]; v < init[Q[ci]] {
				init[Q[ci]] = v
			}
		}
		res, err := bford.RunLabelsWithInit(w, g, init, h, bford.Out)
		if err != nil {
			return fmt.Errorf("core: step 7: %w", err)
		}
		copy(distM.Row(k), res.Dist)
		return nil
	})
	if err != nil {
		return nil, err
	}
	mark(&st.Steps.Step7Extend)

	// The public surface stays [][]int64: rows are zero-copy views of the
	// flat matrix, nil for sources Step 7 did not run.
	dist := make([][]int64, n)
	for k, x := range step7Sources {
		dist[x] = distM.Row(k)
	}

	out := &Result{Dist: dist}

	// Last-edge resolution (implementation addition; see the package
	// comment): every node already knows its column of the distance
	// matrix; one pipelined exchange of that column with each neighbor
	// (O(n) rounds at bandwidth 1) lets each t pick, per source x, the
	// smallest-id in-neighbor u with delta(x, u) + w(u, t) = delta(x, t).
	if !opt.SkipLastEdges {
		lh, err := resolveLastEdges(nw, g, dist)
		if err != nil {
			return nil, fmt.Errorf("core: last edges: %w", err)
		}
		out.LastHop = lh
		mark(&st.Steps.Step8LastEdge)
	}

	st.Rounds = nw.Stats.Rounds
	st.Messages = nw.Stats.Messages
	st.Words = nw.Stats.Words
	st.MaxNodeCongestion = nw.Stats.MaxNodeCongestion()
	out.Stats = st
	return out, nil
}

// BlockerOptions configures BlockerOnly. The zero value selects the
// paper's deterministic construction with the default hop parameter.
type BlockerOptions struct {
	// H is the hop parameter (0 or negative = ceil(n^(1/3))).
	H int
	// Mode selects the construction algorithm.
	Mode blocker.Mode
	// Seed drives the randomized modes.
	Seed int64
	// Parallel source-shards the collection's per-source SSSPs across a
	// worker pool (the blocker construction itself follows the sequential
	// schedule either way, and the result is bit-identical).
	Parallel bool
}

// BlockerOnly builds just the h-hop CSSSP collection for all sources and a
// blocker set over it; it exists for the public BlockerSet API and the
// blocker experiments.
func BlockerOnly(g *graph.Graph, opt BlockerOptions) ([]int, blocker.Stats, error) {
	h := opt.H
	if h < 1 {
		h = int(math.Ceil(math.Pow(float64(g.N), 1.0/3)))
	}
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		return nil, blocker.Stats{}, err
	}
	nw.Parallel = opt.Parallel
	sources := make([]int, g.N)
	for i := range sources {
		sources[i] = i
	}
	coll, err := csssp.Build(nw, g, sources, h, bford.Out)
	if err != nil {
		return nil, blocker.Stats{}, err
	}
	res, err := blocker.Compute(nw, coll, blocker.Params{Mode: opt.Mode, Seed: opt.Seed})
	if err != nil {
		return nil, blocker.Stats{}, err
	}
	return res.Q, res.Stats, nil
}

// sourceShard names the pipeline's source-sharded runner for Steps 3 and
// 7: each independent per-source sub-run executes on a worker-owned
// Network clone with stats merged in source-id order (the contract lives
// on congest.Network.ShardRuns; fn writes only row/slot i).
func sourceShard(nw *congest.Network, count int, fn func(w *congest.Network, i int) error) error {
	return nw.ShardRuns(count, fn)
}

// validateSources bounds-checks a partial-APSP source list and drops
// duplicates (preserving first-occurrence order), so each requested source
// runs — and is charged for — exactly one Step-7 extension.
func validateSources(sources []int, n int) ([]int, error) {
	seen := make(map[int]bool, len(sources))
	out := make([]int, 0, len(sources))
	for _, x := range sources {
		if x < 0 || x >= n {
			return nil, fmt.Errorf("core: source %d out of range [0, %d)", x, n)
		}
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out, nil
}

func sumSteps(s *StepRounds) int {
	return s.Step1CSSSP + s.Step2Blocker + s.Step3InSSSP + s.Step4Bcast +
		s.Step6QSink + s.Step7Extend + s.Step8LastEdge
}

// resolveLastEdges runs the final neighbor exchange: node u streams its
// distance column delta(., u) to every out-neighbor, one source per round;
// each t combines the received columns with its incident edge weights.
func resolveLastEdges(nw *congest.Network, g *graph.Graph, dist [][]int64) ([][]int, error) {
	n := g.N
	lhM := mat.NewIntFilled(n, n, -1)
	lh := lhM.RowViews()
	// Per-link state is indexed by (node, link index) through one flat
	// offset table, so the whole pass costs a handful of allocations
	// instead of one per node and per link.
	linkOff := make([]int32, n+1)
	for t := 0; t < n; t++ {
		linkOff[t+1] = linkOff[t] + int32(nw.Degree(t))
	}
	L := int(linkOff[n])
	// Minimum weight per ordered neighbor pair (parallel edges collapsed),
	// stored per link position so lookups follow nw.LinkIndex instead of a
	// map: wmin[linkOff[t]+i] is the min weight of u->t for u =
	// nw.Neighbors(t)[i], or graph.Inf when no such directed edge exists.
	wmin := make([]int64, L)
	for i := range wmin {
		wmin[i] = graph.Inf
	}
	for _, e := range g.Edges() {
		rec := func(u, t int, w int64) {
			if i := nw.LinkIndex(t, u); i >= 0 && w < wmin[int(linkOff[t])+i] {
				wmin[int(linkOff[t])+i] = w
			}
		}
		rec(e.U, e.V, e.W)
		if !g.Directed {
			rec(e.V, e.U, e.W)
		}
	}
	// Settle-wave: a node t settles its predecessor for source x either
	// immediately (some in-neighbor u composes with a strictly smaller
	// distance — strict decrease can never cycle) or upon hearing that an
	// equal-distance zero-weight in-neighbor has itself settled, which
	// makes the predecessor graph acyclic even across zero-weight
	// plateaus. Columns are streamed one source per round; settle
	// announcements drain one per round. O(n) rounds total.
	const (
		kindCol    uint8 = 50
		kindSettle uint8 = 51
	)
	// nbrDist[(linkOff[t]+i)*n + x]: delta(x, u) as received at t from its
	// i-th neighbor u.
	nbrDist := make([]int64, L*n)
	for i := range nbrDist {
		nbrDist[i] = graph.Inf
	}
	settledM := make([]bool, n*n) // settled[t*n+x]
	settled := make([][]bool, n)
	queueArena := make([]int32, n*n) // each t announces each source at most once
	queue := make([][]int32, n)      // queue[t]: sources to announce
	head := make([]int32, n)
	for t := 0; t < n; t++ {
		settled[t] = settledM[t*n : (t+1)*n : (t+1)*n]
		queue[t] = queueArena[t*n : t*n : (t+1)*n]
	}
	settle := func(t, x int, pred int) {
		settled[t][x] = true
		if pred >= 0 {
			lh[x][t] = pred
		}
		queue[t] = append(queue[t], int32(x))
	}
	p := congest.ProtoFunc(func(t, round int, in []congest.Message, send func(congest.Message)) bool {
		lastCol := -1
		base := int(linkOff[t])
		// Gather this round's settle announcements first so the min-id
		// composing announcer wins deterministically.
		var annX, annFrom []int
		for _, m := range in {
			switch m.Kind {
			case kindCol:
				nbrDist[(base+nw.LinkIndex(t, m.From))*n+int(m.A)] = m.B
				lastCol = int(m.A)
			case kindSettle:
				annX = append(annX, int(m.A))
				annFrom = append(annFrom, m.From)
			}
		}
		for k, x := range annX {
			u := annFrom[k]
			if settled[t][x] || dist[x][t] >= graph.Inf {
				continue
			}
			li := base + nw.LinkIndex(t, u)
			w := wmin[li]
			du := nbrDist[li*n+x]
			if w >= graph.Inf || du >= graph.Inf || du+w != dist[x][t] {
				continue
			}
			best := u
			for k2 := k + 1; k2 < len(annX); k2++ {
				if annX[k2] != x || annFrom[k2] >= best {
					continue
				}
				l2 := base + nw.LinkIndex(t, annFrom[k2])
				if w2 := wmin[l2]; w2 < graph.Inf {
					if d2 := nbrDist[l2*n+x]; d2 < graph.Inf && d2+w2 == dist[x][t] {
						best = annFrom[k2]
					}
				}
			}
			settle(t, x, best)
		}
		// All neighbor values for source lastCol just arrived: try the
		// strict-decrease settlement.
		if x := lastCol; x >= 0 {
			if t == x {
				settle(t, x, -1)
			} else if dist[x][t] < graph.Inf {
				best := -1
				for i, u := range nw.Neighbors(t) {
					w := wmin[base+i]
					if w >= graph.Inf || w == 0 {
						continue
					}
					du := nbrDist[(base+i)*n+x]
					if du < graph.Inf && du+w == dist[x][t] && (best == -1 || u < best) {
						best = u
					}
				}
				if best >= 0 {
					settle(t, x, best)
				}
			}
		}
		// Stream one column value and drain one settle notice per round
		// (two words per link per round; legal at bandwidth >= 1 because
		// they are distinct messages of one word each only when the
		// bandwidth allows — at bandwidth 1 we alternate).
		budgetWords := nw.Bandwidth
		if round < n && budgetWords > 0 {
			x := round
			if dist[x][t] < graph.Inf {
				for _, nb := range nw.Neighbors(t) {
					send(congest.Message{To: nb, Kind: kindCol, A: int64(x), B: dist[x][t]})
				}
				budgetWords--
			}
		}
		if int(head[t]) < len(queue[t]) && budgetWords > 0 {
			x := queue[t][head[t]]
			head[t]++
			for _, nb := range nw.Neighbors(t) {
				send(congest.Message{To: nb, Kind: kindSettle, A: int64(x)})
			}
		}
		return round >= n && int(head[t]) >= len(queue[t])
	})
	budget := 8*n + 64
	if _, err := nw.Run(p, budget); err != nil {
		return nil, err
	}
	return lh, nil
}
