// Package core implements the paper's overall APSP algorithm (Algorithm 1)
// on the CONGEST simulator, together with the baseline variants that the
// benchmark harness compares against (Table 1 of the paper):
//
//   - Det43: this paper — h = n^(1/3), deterministic blocker set
//     (Algorithm 2'), pipelined reversed q-sink delivery (Algorithms 8/9).
//     O~(n^(4/3)) rounds (Theorem 1.1).
//   - Det32: the Agarwal-Ramachandran-King-Pontecorvi PODC'18 baseline [2]
//     — h = n^(1/2), greedy blocker set, Step 6 by broadcast. O~(n^(3/2)).
//   - Rand43: the randomized-sampling profile in the style of Huang et
//     al. [13] / Agarwal-Ramachandran [1] — random blocker set, pipelined
//     Step 6. O~(n^(4/3)) w.h.p.
//   - BroadcastStep6: ablation — this paper's pipeline with Step 6 replaced
//     by the trivial broadcast, isolating the contribution of Section 4.
//     O~(n^(5/3)).
//
// The steps of Algorithm 1 map to:
//
//	Step 1  csssp.Build (out-trees for V)          O(n*h)
//	Step 2  blocker.Compute                        O~(n*h) det / O(nh+n|Q|) greedy
//	Step 3  bford.RunLabels in-SSSP per c in Q     O(|Q|*h)
//	Step 4  broadcast.AllToAll of |Q|^2 values     O~(n^(4/3))
//	Step 5  local min-plus closure over Q
//	Step 6  qsink.Run                              O~(n^(4/3)) / O~(n^(5/3))
//	Step 7  bford.RunLabelsWithInit per source     O(n*h)
//	(+)     last-edge resolution by neighbor exchange, O(n)
package core

import (
	"fmt"

	"congestapsp/internal/blocker"
	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
	"congestapsp/internal/mat"
	"congestapsp/internal/qsink"
)

// Variant selects the algorithm profile.
type Variant int

const (
	// Det43 is the paper's deterministic O~(n^(4/3)) algorithm.
	Det43 Variant = iota
	// Det32 is the deterministic O~(n^(3/2)) baseline of [2].
	Det32
	// Rand43 is the randomized-sampling O~(n^(4/3)) profile ([13, 1]).
	Rand43
	// BroadcastStep6 is Det43 with the trivial O~(n^(5/3)) Step 6.
	BroadcastStep6
)

// String names the variant as it appears in experiment tables.
func (v Variant) String() string {
	switch v {
	case Det43:
		return "det43"
	case Det32:
		return "det32"
	case Rand43:
		return "rand43"
	default:
		return "broadcast-step6"
	}
}

// Options configures a run.
type Options struct {
	Variant Variant
	// H overrides the hop parameter (0 = the variant's default: ceil of
	// n^(1/3) for the n^(4/3) profiles, ceil of sqrt(n) for Det32).
	H int
	// Bandwidth is the CONGEST per-link words-per-round budget (default 1).
	Bandwidth int
	// Parallel enables the simulator's worker-pool execution: independent
	// per-source sub-runs dispatch across cloned networks via the
	// work-stealing scheduler, and large rounds shard internally across
	// workers.
	Parallel bool
	// MinShardNodes overrides the engine's in-round sharding threshold
	// (congest.Network.MinShardNodes; 0 = the engine default). Tests set 1
	// to force every round through the sharded path.
	MinShardNodes int
	// Planner enables the adaptive per-stage execution planner (plan.go):
	// each pipeline stage picks seq vs sharded from a deterministic cost
	// model seeded by the session's calibration record, instead of the one
	// global Parallel bool (which the planner overrides when set). The first
	// run of a configuration on a cold session is an all-sequential
	// calibration run. On single-core hosts the planner degenerates to
	// all-seq. The decision trace lands in Result.Stages[i].Exec.
	Planner bool
	// MemoryBudget, when > 0, bounds the resident bytes of the run's result
	// matrices: when the flat Dist(+LastHop) footprint exceeds it, the run
	// stores them in the tiled spillable backend (internal/mat, DESIGN.md
	// §13) and the Result exposes them through DistM/LastHopM instead of the
	// dense slices. 0 keeps the zero-cost flat default. Budgeted runs are
	// never snapshot-eligible (the snapshot would defeat the budget), so a
	// following ApplyUpdates run recomputes cold. Partial runs (Sources set)
	// always stay flat — their footprint is already |Sources| rows.
	MemoryBudget int64
	// SpillDir is where tiled matrices place their spill files ("" =
	// os.TempDir()). Only consulted when MemoryBudget engages.
	SpillDir string
	// RetrySequential opts into graceful degradation on worker panics: a
	// ShardRuns sub-run that panics is rewound and re-executed sequentially
	// on a fresh clone after the fleet drains, and a fully-recovered run's
	// results and stats are bit-identical to an undisturbed one.
	// Cancellation and ordinary errors are never retried.
	RetrySequential bool
	// Seed drives the randomized variants.
	Seed int64
	// BlockerParams tunes the blocker construction. For the Det43 and
	// BroadcastStep6 variants an explicit Mode is honored (e.g. the
	// pairwise-independent randomized Algorithm 2); Det32 and Rand43 force
	// their own constructions.
	BlockerParams blocker.Params
	// SkipLastEdges disables the final last-edge resolution pass.
	SkipLastEdges bool
	// OnRound is forwarded to the simulator's per-round trace hook.
	OnRound func(round, delivered int)
	// Sources, when non-nil, restricts the output to shortest paths FROM
	// these sources (partial APSP): Step 7's per-source extension runs only
	// for them, saving (n - |Sources|) * h rounds. Steps 1-6 are unchanged
	// (the blocker machinery needs the full collection either way), and
	// Dist rows for non-sources are nil. Out-of-range sources are an error;
	// duplicates are dropped (each source's extension runs — and is charged
	// — once). Implies SkipLastEdges.
	Sources []int
}

// StepRounds decomposes the total round count by Algorithm 1 step.
type StepRounds struct {
	Step1CSSSP    int
	Step2Blocker  int
	Step3InSSSP   int
	Step4Bcast    int
	Step6QSink    int
	Step7Extend   int
	Step8LastEdge int
}

// Stats aggregates everything the benchmark harness reports.
type Stats struct {
	N, M, H           int
	QSize             int
	Rounds            int
	Messages          int64
	Words             int64
	MaxNodeCongestion int64
	Steps             StepRounds
	Blocker           blocker.Stats
	QSink             qsink.Stats
}

// Result is the APSP output: exact distances (and last edges) for every
// ordered pair, as known distributedly at the target nodes. The row slices
// are zero-copy views of flat row-major matrices (internal/mat); rows for
// non-sources are nil when Options.Sources restricted the run. A Result is
// caller-owned — it stays valid after later runs on the same Session.
type Result struct {
	// Dist[x][t] = delta(x, t); graph.Inf when t is unreachable from x.
	// Nil on a budgeted (tiled) run — read through DistM or DistAt instead.
	Dist [][]int64
	// LastHop[x][t] is the predecessor of t on a shortest x->t path (-1
	// for t == x, unreachable pairs, or when SkipLastEdges was set). Nil on
	// a budgeted run that resolved last edges — read through LastHopM.
	LastHop [][]int
	// DistM / LastHopM are set only on budgeted (tiled) runs, which are
	// always full APSP: row index = source id. They hold spill files until
	// Release is called.
	DistM    mat.Int64M
	LastHopM mat.IntM
	Stats    Stats
	// Stages is the per-stage cost breakdown recorded by the staged
	// pipeline executor, in execution order (skipped stages are absent).
	Stages []StageTiming
}

// DistAt returns delta(x, t) regardless of backend: the dense surface when
// present, the tiled matrix otherwise.
func (r *Result) DistAt(x, t int) int64 {
	if r.Dist != nil {
		return r.Dist[x][t]
	}
	return r.DistM.At(x, t)
}

// LastHopAt returns the x->t predecessor regardless of backend (-1 when
// last edges were skipped).
func (r *Result) LastHopAt(x, t int) int {
	if r.LastHop != nil {
		return r.LastHop[x][t]
	}
	if r.LastHopM != nil {
		return r.LastHopM.At(x, t)
	}
	return -1
}

// Release frees the spill files a budgeted run's matrices hold; it is a
// no-op for flat results. The Result's matrices must not be used after.
func (r *Result) Release() error {
	var err error
	if r.DistM != nil {
		err = r.DistM.Release()
	}
	if r.LastHopM != nil {
		if e := r.LastHopM.Release(); err == nil {
			err = e
		}
	}
	return err
}

// tiledBudget resolves whether a run must honor a memory budget with tiled
// matrices: returns the budget when the flat result footprint exceeds it,
// 0 otherwise (flat storage). Partial runs always stay flat.
func tiledBudget(opt Options, n int) int64 {
	if opt.MemoryBudget <= 0 || opt.Sources != nil {
		return 0
	}
	foot := int64(n) * int64(n) * 8
	if !opt.SkipLastEdges {
		foot *= 2
	}
	if foot <= opt.MemoryBudget {
		return 0
	}
	return opt.MemoryBudget
}

// Run executes the selected APSP variant on g with a one-shot session.
// Callers that run the same graph repeatedly should hold a Session (or the
// public apsp.Runner) instead: it reuses the network, engine arenas and
// worker-clone fleet across runs.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	s, err := NewSession(g)
	if err != nil {
		return nil, err
	}
	return s.Run(opt)
}

// BlockerOptions configures BlockerOnly. The zero value selects the
// paper's deterministic construction with the default hop parameter.
type BlockerOptions struct {
	// H is the hop parameter (0 or negative = ceil(n^(1/3))).
	H int
	// Mode selects the construction algorithm.
	Mode blocker.Mode
	// Seed drives the randomized modes.
	Seed int64
	// Parallel source-shards the collection's per-source SSSPs across a
	// worker pool (the blocker construction itself follows the sequential
	// schedule either way, and the result is bit-identical).
	Parallel bool
}

// BlockerOnly builds just the h-hop CSSSP collection for all sources and a
// blocker set over it with a one-shot session; it exists for the public
// BlockerSet API and the blocker experiments.
func BlockerOnly(g *graph.Graph, opt BlockerOptions) ([]int, blocker.Stats, error) {
	s, err := NewSession(g)
	if err != nil {
		return nil, blocker.Stats{}, err
	}
	return s.BlockerOnly(opt)
}

// validateSources bounds-checks a partial-APSP source list and drops
// duplicates (preserving first-occurrence order), so each requested source
// runs — and is charged for — exactly one Step-7 extension.
func validateSources(sources []int, n int) ([]int, error) {
	seen := make(map[int]bool, len(sources))
	out := make([]int, 0, len(sources))
	for _, x := range sources {
		if x < 0 || x >= n {
			return nil, fmt.Errorf("core: source %d out of range [0, %d)", x, n)
		}
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out, nil
}

// resolveLastEdges runs the final neighbor exchange: node u streams its
// distance column delta(., u) to every out-neighbor, one source per round;
// each t combines the received columns with its incident edge weights.
// Distances are read and predecessors written through the backend-agnostic
// matrix surfaces: when both are flat (the default) the accessors collapse
// to direct dense indexing; a tiled run pays the per-access lock. Stage 8
// only runs full APSP (Sources implies SkipLastEdges), so distM rows are
// source-indexed.
func resolveLastEdges(nw *congest.Network, g *graph.Graph, distM mat.Int64M, lhM mat.IntM) error {
	n := g.N
	distAt := distM.At
	if dense := distM.Dense(); dense != nil {
		distAt = func(x, t int) int64 { return dense[x][t] }
	}
	setLH := lhM.Set
	if lh := lhM.Dense(); lh != nil {
		setLH = func(x, t, v int) { lh[x][t] = v }
	}
	// Per-link state is indexed by (node, link index) through one flat
	// offset table, so the whole pass costs a handful of allocations
	// instead of one per node and per link.
	linkOff := make([]int32, n+1)
	for t := 0; t < n; t++ {
		linkOff[t+1] = linkOff[t] + int32(nw.Degree(t))
	}
	L := int(linkOff[n])
	// Minimum weight per ordered neighbor pair (parallel edges collapsed),
	// stored per link position so lookups follow nw.LinkIndex instead of a
	// map: wmin[linkOff[t]+i] is the min weight of u->t for u =
	// nw.Neighbors(t)[i], or graph.Inf when no such directed edge exists.
	wmin := make([]int64, L)
	for i := range wmin {
		wmin[i] = graph.Inf
	}
	for _, e := range g.Edges() {
		rec := func(u, t int, w int64) {
			if i := nw.LinkIndex(t, u); i >= 0 && w < wmin[int(linkOff[t])+i] {
				wmin[int(linkOff[t])+i] = w
			}
		}
		rec(e.U, e.V, e.W)
		if !g.Directed {
			rec(e.V, e.U, e.W)
		}
	}
	// Settle-wave: a node t settles its predecessor for source x either
	// immediately (some in-neighbor u composes with a strictly smaller
	// distance — strict decrease can never cycle) or upon hearing that an
	// equal-distance zero-weight in-neighbor has itself settled, which
	// makes the predecessor graph acyclic even across zero-weight
	// plateaus. Columns are streamed one source per round; settle
	// announcements drain one per round. O(n) rounds total.
	const (
		kindCol    uint8 = 50
		kindSettle uint8 = 51
	)
	// nbrDist[(linkOff[t]+i)*n + x]: delta(x, u) as received at t from its
	// i-th neighbor u.
	nbrDist := make([]int64, L*n)
	for i := range nbrDist {
		nbrDist[i] = graph.Inf
	}
	settledM := make([]bool, n*n) // settled[t*n+x]
	settled := make([][]bool, n)
	queueArena := make([]int32, n*n) // each t announces each source at most once
	queue := make([][]int32, n)      // queue[t]: sources to announce
	head := make([]int32, n)
	for t := 0; t < n; t++ {
		settled[t] = settledM[t*n : (t+1)*n : (t+1)*n]
		queue[t] = queueArena[t*n : t*n : (t+1)*n]
	}
	settle := func(t, x int, pred int) {
		settled[t][x] = true
		if pred >= 0 {
			setLH(x, t, pred)
		}
		queue[t] = append(queue[t], int32(x))
	}
	p := congest.ProtoFunc(func(t, round int, in []congest.Message, send func(congest.Message)) bool {
		lastCol := -1
		base := int(linkOff[t])
		// Gather this round's settle announcements first so the min-id
		// composing announcer wins deterministically.
		var annX, annFrom []int
		for _, m := range in {
			switch m.Kind {
			case kindCol:
				nbrDist[(base+nw.LinkIndex(t, m.From))*n+int(m.A)] = m.B
				lastCol = int(m.A)
			case kindSettle:
				annX = append(annX, int(m.A))
				annFrom = append(annFrom, m.From)
			}
		}
		for k, x := range annX {
			u := annFrom[k]
			if settled[t][x] {
				continue
			}
			dxt := distAt(x, t)
			if dxt >= graph.Inf {
				continue
			}
			li := base + nw.LinkIndex(t, u)
			w := wmin[li]
			du := nbrDist[li*n+x]
			if w >= graph.Inf || du >= graph.Inf || du+w != dxt {
				continue
			}
			best := u
			for k2 := k + 1; k2 < len(annX); k2++ {
				if annX[k2] != x || annFrom[k2] >= best {
					continue
				}
				l2 := base + nw.LinkIndex(t, annFrom[k2])
				if w2 := wmin[l2]; w2 < graph.Inf {
					if d2 := nbrDist[l2*n+x]; d2 < graph.Inf && d2+w2 == dxt {
						best = annFrom[k2]
					}
				}
			}
			settle(t, x, best)
		}
		// All neighbor values for source lastCol just arrived: try the
		// strict-decrease settlement.
		if x := lastCol; x >= 0 {
			if t == x {
				settle(t, x, -1)
			} else if dxt := distAt(x, t); dxt < graph.Inf {
				best := -1
				for i, u := range nw.Neighbors(t) {
					w := wmin[base+i]
					if w >= graph.Inf || w == 0 {
						continue
					}
					du := nbrDist[(base+i)*n+x]
					if du < graph.Inf && du+w == dxt && (best == -1 || u < best) {
						best = u
					}
				}
				if best >= 0 {
					settle(t, x, best)
				}
			}
		}
		// Stream one column value and drain one settle notice per round
		// (two words per link per round; legal at bandwidth >= 1 because
		// they are distinct messages of one word each only when the
		// bandwidth allows — at bandwidth 1 we alternate).
		budgetWords := nw.Bandwidth
		if round < n && budgetWords > 0 {
			x := round
			if dxt := distAt(x, t); dxt < graph.Inf {
				for _, nb := range nw.Neighbors(t) {
					send(congest.Message{To: nb, Kind: kindCol, A: int64(x), B: dxt})
				}
				budgetWords--
			}
		}
		if int(head[t]) < len(queue[t]) && budgetWords > 0 {
			x := queue[t][head[t]]
			head[t]++
			for _, nb := range nw.Neighbors(t) {
				send(congest.Message{To: nb, Kind: kindSettle, A: int64(x)})
			}
		}
		return round >= n && int(head[t]) >= len(queue[t])
	})
	budget := 8*n + 64
	if _, err := nw.Run(p, budget); err != nil {
		return err
	}
	return nil
}
