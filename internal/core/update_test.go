package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"congestapsp/internal/congest"
	"congestapsp/internal/faultinject"
	"congestapsp/internal/graph"
)

func cloneGraph(g *graph.Graph) *graph.Graph {
	c := graph.New(g.N, g.Directed)
	for _, e := range g.Edges() {
		c.MustAddEdge(e.U, e.V, e.W)
	}
	return c
}

// TestIncrementalOracle is the bit-identity oracle for the update path:
// after every ApplyUpdates batch — weight increase, decrease to zero,
// insert, delete, multi-update — the warm run must match a COLD run on an
// independent copy of the mutated graph in distances, last hops, round
// count, |Q| and h, across all four profiles and both execution modes.
// (Message/word counters are exempt for the incremental run itself — skipped
// stages do not simulate — but the next plain warm run must be fully
// bit-identical to cold, counters included.)
func TestIncrementalOracle(t *testing.T) {
	variants := []struct {
		name string
		v    Variant
	}{{"det43", Det43}, {"det32", Det32}, {"rand43", Rand43}, {"bcast6", BroadcastStep6}}
	gens := []struct {
		name string
		gen  func() *graph.Graph
	}{
		{"undir", func() *graph.Graph {
			return graph.RandomConnected(graph.GenConfig{N: 22, Seed: 31, MaxWeight: 9}, 66)
		}},
		{"dir", func() *graph.Graph {
			return graph.RandomConnected(graph.GenConfig{N: 20, Directed: true, Seed: 32, MaxWeight: 9}, 70)
		}},
	}
	for _, vt := range variants {
		for _, par := range []bool{false, true} {
			for _, gc := range gens {
				t.Run(fmt.Sprintf("%s/par=%v/%s", vt.name, par, gc.name), func(t *testing.T) {
					g := gc.gen()
					opt := Options{Variant: vt.v, Parallel: par}
					s, err := NewSession(g)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := s.Run(opt); err != nil {
						t.Fatal(err)
					}
					edges := g.Edges()
					e1, e2 := edges[len(edges)/3], edges[len(edges)/2]
					batches := [][]EdgeUpdate{
						{{Op: SetWeight, U: e1.U, V: e1.V, W: e1.W + 7}},
						{{Op: SetWeight, U: e2.U, V: e2.V, W: 0}},
						{{Op: InsertEdge, U: 0, V: g.N - 1, W: 1}},
						{{Op: DeleteEdge, U: 0, V: g.N - 1}},
						{{Op: SetWeight, U: e1.U, V: e1.V, W: 2}, {Op: SetWeight, U: e2.U, V: e2.V, W: 5}},
					}
					for bi, batch := range batches {
						if _, err := s.ApplyUpdates(batch); err != nil {
							t.Fatalf("batch %d: %v", bi, err)
						}
						warm, err := s.Run(opt)
						if err != nil {
							t.Fatalf("batch %d warm run: %v", bi, err)
						}
						cold, err := Run(cloneGraph(g), opt)
						if err != nil {
							t.Fatalf("batch %d cold run: %v", bi, err)
						}
						if !reflect.DeepEqual(warm.Dist, cold.Dist) {
							t.Fatalf("batch %d: warm distances differ from cold", bi)
						}
						if !reflect.DeepEqual(warm.LastHop, cold.LastHop) {
							t.Fatalf("batch %d: warm last hops differ from cold", bi)
						}
						if warm.Stats.Rounds != cold.Stats.Rounds {
							t.Fatalf("batch %d: warm rounds %d != cold rounds %d", bi, warm.Stats.Rounds, cold.Stats.Rounds)
						}
						if warm.Stats.QSize != cold.Stats.QSize || warm.Stats.H != cold.Stats.H {
							t.Fatalf("batch %d: warm |Q|=%d h=%d, cold |Q|=%d h=%d",
								bi, warm.Stats.QSize, warm.Stats.H, cold.Stats.QSize, cold.Stats.H)
						}
						checkAPSP(t, g, warm)
						// A plain warm re-run has no pending updates: it must be
						// fully bit-identical to cold, simulation counters included.
						warm2, err := s.Run(opt)
						if err != nil {
							t.Fatalf("batch %d warm re-run: %v", bi, err)
						}
						if !reflect.DeepEqual(fp(warm2), fp(cold)) {
							t.Fatalf("batch %d: plain warm re-run not bit-identical to cold", bi)
						}
					}
				})
			}
		}
	}
}

// TestIncrementalOracleSmokeN64 is the CI-sized cell of the oracle: one
// det43 configuration at n=64 — large enough for multi-system damage and
// a non-trivial blocker set, small enough for the race detector. CI runs
// this under -race as the update-oracle smoke.
func TestIncrementalOracleSmokeN64(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 64, Seed: 64, MaxWeight: 20}, 256)
	opt := Options{Variant: Det43, Parallel: true}
	s, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(opt); err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	e1, e2 := edges[len(edges)/4], edges[len(edges)/2]
	batches := [][]EdgeUpdate{
		{{Op: SetWeight, U: e1.U, V: e1.V, W: e1.W + 5}},
		{{Op: SetWeight, U: e2.U, V: e2.V, W: 1}},
		{{Op: InsertEdge, U: 0, V: g.N - 1, W: 2}, {Op: SetWeight, U: e1.U, V: e1.V, W: e1.W}},
		{{Op: DeleteEdge, U: 0, V: g.N - 1}},
	}
	for bi, batch := range batches {
		if _, err := s.ApplyUpdates(batch); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		warm, err := s.Run(opt)
		if err != nil {
			t.Fatalf("batch %d warm run: %v", bi, err)
		}
		cold, err := Run(cloneGraph(g), opt)
		if err != nil {
			t.Fatalf("batch %d cold run: %v", bi, err)
		}
		if !reflect.DeepEqual(warm.Dist, cold.Dist) || !reflect.DeepEqual(warm.LastHop, cold.LastHop) {
			t.Fatalf("batch %d: warm results differ from cold", bi)
		}
		if warm.Stats.Rounds != cold.Stats.Rounds || warm.Stats.QSize != cold.Stats.QSize || warm.Stats.H != cold.Stats.H {
			t.Fatalf("batch %d: warm rounds/|Q|/h (%d/%d/%d) != cold (%d/%d/%d)", bi,
				warm.Stats.Rounds, warm.Stats.QSize, warm.Stats.H,
				cold.Stats.Rounds, cold.Stats.QSize, cold.Stats.H)
		}
	}
}

// TestIncrementalZeroDamage pins the best case: an update the damage test
// proves irrelevant (a heavy non-shortest edge gets heavier) reuses every
// tracked system — and the warm run still agrees with cold on results and
// rounds.
func TestIncrementalZeroDamage(t *testing.T) {
	g := graph.New(3, false)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 5)
	s, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Variant: Det43}
	if _, err := s.Run(opt); err != nil {
		t.Fatal(err)
	}
	st, err := s.ApplyUpdates([]EdgeUpdate{{Op: SetWeight, U: 0, V: 2, W: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack {
		t.Fatal("zero-damage update fell back")
	}
	if st.Recomputed != 0 {
		t.Fatalf("zero-damage update marked %d systems dirty", st.Recomputed)
	}
	// Reused covers all 2n + |Q| tracked systems.
	if want := 2*g.N + len(s.snap.dirty3); st.Reused != want {
		t.Fatalf("reused %d, want %d", st.Reused, want)
	}
	warm, err := s.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(cloneGraph(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Dist, cold.Dist) || warm.Stats.Rounds != cold.Stats.Rounds {
		t.Fatal("zero-damage warm run differs from cold")
	}
}

// TestApplyUpdatesErrors pins the failure modes: unknown edges, invalid
// weights, unknown ops, and out-of-band mutation. An error mid-batch leaves
// the earlier prefix applied and the session consistent with it.
func TestApplyUpdatesErrors(t *testing.T) {
	g := graph.RandomConnected(graph.GenConfig{N: 12, Seed: 9, MaxWeight: 9}, 30)
	s, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Variant: Det43}
	if _, err := s.Run(opt); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyUpdates([]EdgeUpdate{{Op: SetWeight, U: 0, V: 0, W: 1}}); err == nil {
		t.Fatal("set-weight on a missing edge accepted")
	}
	if _, err := s.ApplyUpdates([]EdgeUpdate{{Op: DeleteEdge, U: 0, V: 0}}); err == nil {
		t.Fatal("delete of a missing edge accepted")
	}
	if _, err := s.ApplyUpdates([]EdgeUpdate{{Op: UpdateOp(99), U: 0, V: 1, W: 1}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	e := g.Edges()[0]
	// Mid-batch failure: the first update applies, the second rejects.
	if _, err := s.ApplyUpdates([]EdgeUpdate{
		{Op: SetWeight, U: e.U, V: e.V, W: e.W + 1},
		{Op: SetWeight, U: e.U, V: e.V, W: -4},
	}); err == nil {
		t.Fatal("negative weight accepted")
	}
	warm, err := s.Run(opt)
	if err != nil {
		t.Fatalf("session unusable after failed batch: %v", err)
	}
	cold, err := Run(cloneGraph(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Dist, cold.Dist) {
		t.Fatal("session inconsistent with the partially-applied batch")
	}
	// Out-of-band mutation: ApplyUpdates refuses a graph it no longer knows.
	if err := g.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyUpdates([]EdgeUpdate{{Op: SetWeight, U: e.U, V: e.V, W: 1}}); err == nil {
		t.Fatal("out-of-band mutation not caught by ApplyUpdates")
	}
}

// TestIncrementalFaultInjection is the update-path cell of the fault
// matrix: a panic injected into the middle of an incremental run surfaces
// as a tagged *congest.PanicError, and the session honors the
// reuse-after-error contract — the next clean run is fully bit-identical
// (counters included) to a cold run on the mutated graph.
func TestIncrementalFaultInjection(t *testing.T) {
	for _, par := range []bool{false, true} {
		t.Run(fmt.Sprintf("par=%v", par), func(t *testing.T) {
			base := graph.RandomConnected(graph.GenConfig{N: 28, Seed: 11, MaxWeight: 9}, 84)
			opt := Options{Variant: Det43, Parallel: par}
			// Deterministically find an update with narrow damage: the run
			// must stay on the incremental path (no adaptive fallback) AND
			// leave Step-1 refresh work for the injector to sabotage.
			var (
				g *graph.Graph
				s *Session
			)
			for _, e := range base.Edges() {
				if e.W < 2 {
					continue
				}
				cand := cloneGraph(base)
				sc, err := NewSession(cand)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sc.Run(opt); err != nil {
					t.Fatal(err)
				}
				st, err := sc.ApplyUpdates([]EdgeUpdate{{Op: SetWeight, U: e.U, V: e.V, W: e.W - 1}})
				if err != nil {
					t.Fatal(err)
				}
				if !st.FellBack && countTrue(sc.snap.dirty1) > 0 {
					g, s = cand, sc
					break
				}
			}
			if s == nil {
				t.Fatal("no edge produced a narrow-damage incremental update")
			}
			inj := faultinject.New(1, faultinject.Rule{
				Hook: faultinject.HookSubRun, Stage: "step1-csssp", SubRun: 0,
				Kind: faultinject.Panic, Once: true,
			})
			s.SetFaultInjector(inj)
			_, err := s.Run(opt)
			var pe *congest.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("got %T (%v), want *congest.PanicError", err, err)
			}
			if pe.Stage != "step1-csssp" {
				t.Fatalf("panic tagged %q, want step1-csssp", pe.Stage)
			}
			if inj.Fired() != 1 {
				t.Fatalf("rule fired %d times, want 1 (incremental refresh did not run)", inj.Fired())
			}
			s.SetFaultInjector(nil)
			warm, err := s.Run(opt)
			if err != nil {
				t.Fatalf("session unusable after injected panic: %v", err)
			}
			cold, err := Run(cloneGraph(g), opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fp(warm), fp(cold)) {
				t.Fatal("post-panic run not bit-identical to cold on the mutated graph")
			}
		})
	}
}

// TestIncrementalHopBoundCounterexample pins the hop-bound soundness hole
// the wave replay closes (hops.go): a chain gives v a cheap 2h-hop label
// while shortcut s->u->v->t is the only <=2h-hop route to t, so decreasing
// the shortcut weight changes t's label even though the relaxation test
// judges the tree clean (D[u]+wmin > D[v] — the change lands on a
// below-convergence Pareto point the collapsed label row hides). The warm
// run after the update must match cold in results AND round accounting.
func TestIncrementalHopBoundCounterexample(t *testing.T) {
	// H=3 => label budget 2h=6. s=0, chain 0->1->...->6 (v=6), u=7, t=8.
	g := graph.New(9, true)
	for i := 0; i < 6; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	g.MustAddEdge(0, 7, 2)  // s->u
	g.MustAddEdge(7, 6, 50) // u->v (the updated edge)
	g.MustAddEdge(6, 8, 1)  // v->t
	opt := Options{Variant: Det43, H: 3}
	s, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(opt); err != nil {
		t.Fatal(err)
	}
	st, err := s.ApplyUpdates([]EdgeUpdate{{Op: SetWeight, U: 7, V: 6, W: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack {
		t.Logf("fell back (adaptive threshold): %+v", st)
	}
	warm, err := s.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(cloneGraph(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Dist, cold.Dist) {
		t.Errorf("Dist mismatch:\nwarm %v\ncold %v", warm.Dist, cold.Dist)
	}
	if !reflect.DeepEqual(warm.LastHop, cold.LastHop) {
		t.Errorf("LastHop mismatch")
	}
	if warm.Stats.Rounds != cold.Stats.Rounds || warm.Stats.QSize != cold.Stats.QSize {
		t.Errorf("rounds/|Q|: warm %d/%d cold %d/%d",
			warm.Stats.Rounds, warm.Stats.QSize, cold.Stats.Rounds, cold.Stats.QSize)
	}
}

// TestIncrementalAdversarialStress drives the damage model with the graph
// family most hostile to it: a light spanning chain (long-hop cheap paths,
// late convergence levels) plus heavy shortcuts (short-hop expensive
// paths), exactly the shape that manufactures below-convergence Pareto
// points. Random sharp decreases and increases, three batches per seed;
// warm must match cold in Dist, LastHop, rounds and |Q| every time.
func TestIncrementalAdversarialStress(t *testing.T) {
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 12 + rng.Intn(10)
			directed := rng.Intn(2) == 0
			g := graph.New(n, directed)
			for i := 0; i < n-1; i++ {
				g.MustAddEdge(i, i+1, int64(1+rng.Intn(2)))
			}
			for k := 0; k < 4+rng.Intn(5); k++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				g.MustAddEdge(u, v, int64(1+rng.Intn(60)))
			}
			opt := Options{Variant: Det43, H: 2 + rng.Intn(2)}
			s, err := NewSession(g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(opt); err != nil {
				t.Fatal(err)
			}
			for b := 0; b < 3; b++ {
				edges := g.Edges()
				e := edges[rng.Intn(len(edges))]
				var nw int64
				if rng.Intn(2) == 0 {
					nw = int64(rng.Intn(5)) // sharp decrease
				} else {
					nw = e.W + int64(1+rng.Intn(50)) // increase
				}
				if _, err := s.ApplyUpdates([]EdgeUpdate{{Op: SetWeight, U: e.U, V: e.V, W: nw}}); err != nil {
					t.Fatal(err)
				}
				warm, err := s.Run(opt)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := Run(cloneGraph(g), opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(warm.Dist, cold.Dist) {
					t.Fatalf("batch %d: Dist mismatch (edge %d->%d w %d->%d)", b, e.U, e.V, e.W, nw)
				}
				if !reflect.DeepEqual(warm.LastHop, cold.LastHop) {
					t.Fatalf("batch %d: LastHop mismatch (edge %d->%d w %d->%d)", b, e.U, e.V, e.W, nw)
				}
				if warm.Stats.Rounds != cold.Stats.Rounds || warm.Stats.QSize != cold.Stats.QSize {
					t.Fatalf("batch %d: rounds/|Q| warm %d/%d cold %d/%d (edge %d->%d w %d->%d)",
						b, warm.Stats.Rounds, warm.Stats.QSize, cold.Stats.Rounds, cold.Stats.QSize, e.U, e.V, e.W, nw)
				}
			}
		})
	}
}
