package bench

import (
	"context"
	"testing"

	"congestapsp/internal/bford"
	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
	"congestapsp/internal/qsink"
	"congestapsp/internal/unweighted"
	"congestapsp/pkg/apsp"
)

// Steady-state allocation budgets (DESIGN.md §7). The pooled scratch
// subsystem promises that repeated protocol runs on a warm Network reuse
// their footprint; these tests pin that promise with testing.AllocsPerRun
// so an accidental make() in a protocol hot path fails loudly instead of
// showing up as a 100x allocs/op regression two benches later.
//
// AllocsPerRun performs one warm-up call before measuring, which is
// exactly the pooling contract: the first run on a fresh Network grows the
// arenas, every later run reuses them.

// TestBfordWarmNetworkAllocs: a warm-network h-hop SSSP re-run is
// allocation-free — result vectors, per-arc labels and both protocol
// objects are pooled, and the relaxation CSR is cached per (graph, mode).
func TestBfordWarmNetworkAllocs(t *testing.T) {
	g := benchGraph(64)
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := hopParam(64)
	for name, run := range map[string]func() error{
		"Run": func() error {
			_, err := bford.Run(nw, g, 3, h, bford.Out)
			return err
		},
		"RunLabels-in": func() error {
			_, err := bford.RunLabels(nw, g, 5, h, bford.In)
			return err
		},
	} {
		if err := run(); err != nil {
			t.Fatal(err)
		}
		if got := testing.AllocsPerRun(5, func() {
			if err := run(); err != nil {
				t.Fatal(err)
			}
		}); got > 0 {
			t.Errorf("%s: %v allocs per warm re-run, want 0", name, got)
		}
	}
}

// TestUnweightedWarmNetworkAllocs: the pipelined-BFS APSP re-run on a warm
// Network stays within a tiny constant budget (the forward-neighbor
// callback closures; every vector, queue and the distance matrix are
// pooled).
func TestUnweightedWarmNetworkAllocs(t *testing.T) {
	g := benchGraph(48)
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := unweighted.Run(nw, g); err != nil {
			t.Fatal(err)
		}
	}
	run()
	const budget = 8
	if got := testing.AllocsPerRun(3, run); got > budget {
		t.Errorf("unweighted.Run: %v allocs per warm re-run, budget %d", got, budget)
	}
}

// TestQSinkWarmNetworkAllocs: a warm-network q-sink re-run allocates O(1)
// with respect to the message volume. It cannot be literally zero — each
// run hands the caller a freshly built CSSSP collection and a result
// matrix — but the former O(n*|Q|) queue/spine churn is pooled, so the
// budget is a small constant independent of how many values the pipeline
// moves.
func TestQSinkWarmNetworkAllocs(t *testing.T) {
	n := 48
	g := benchGraph(n)
	var Q []int
	for v := 0; v < n; v += 3 {
		Q = append(Q, v)
	}
	delta := graph.BlockerDelta(g, Q)
	nw, err := congest.NewNetwork(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := qsink.Run(nw, g, Q, delta, qsink.Params{Scheduler: qsink.RoundRobin}); err != nil {
			t.Fatal(err)
		}
	}
	run()
	const budget = 256
	if got := testing.AllocsPerRun(3, run); got > budget {
		t.Errorf("qsink.Run: %v allocs per warm re-run, budget %d", got, budget)
	}
}

// TestRunnerWarmRunAllocs pins the warm-session budget of apsp.Runner: a
// second Run on the same Runner skips the network build and every arena
// cold start, so it must stay within a small ceiling dominated by the
// caller-owned result matrices (the cold n=128 run pays ~6.7k allocs; the
// warm re-run measures ~1k). A regression here means per-run state leaked
// out of the pooled subsystem.
func TestRunnerWarmRunAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("full n=128 pipeline runs")
	}
	g := apsp.RandomGraph(apsp.GenOptions{N: 128, Directed: true, Seed: 128, MaxWeight: 50}, 4*128)
	r, err := apsp.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	opt := apsp.Options{SkipLastHops: true}
	if _, err := r.Run(opt); err != nil {
		t.Fatal(err)
	}
	const ceiling = 2500
	if got := testing.AllocsPerRun(2, func() {
		if _, err := r.Run(opt); err != nil {
			t.Fatal(err)
		}
	}); got > ceiling {
		t.Errorf("warm Runner.Run n=128: %v allocs/op, ceiling %d", got, ceiling)
	}
}

// TestRunnerWarmRunContextAllocs pins the cancellation plumbing's promise
// of zero steady-state cost: a warm RunContext with an armed (cancelable)
// context must fit the SAME ceiling as the context-free warm run — the
// per-round ctx.Err() observation, the stage-boundary checks, and the
// panic-isolation defers may not allocate. The context itself is created
// outside the measured region, as a server would hold its request context.
func TestRunnerWarmRunContextAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("full n=128 pipeline runs")
	}
	g := apsp.RandomGraph(apsp.GenOptions{N: 128, Directed: true, Seed: 128, MaxWeight: 50}, 4*128)
	r, err := apsp.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := apsp.Options{SkipLastHops: true}
	if _, err := r.RunContext(ctx, opt); err != nil {
		t.Fatal(err)
	}
	const ceiling = 2500
	if got := testing.AllocsPerRun(2, func() {
		if _, err := r.RunContext(ctx, opt); err != nil {
			t.Fatal(err)
		}
	}); got > ceiling {
		t.Errorf("warm Runner.RunContext n=128: %v allocs/op, ceiling %d (ctx plumbing must be allocation-free)", got, ceiling)
	}
}

// TestPipelineAllocsCeiling guards the end-to-end allocs/op of the full
// APSP pipeline at n=128 (the BenchmarkAPSPPipeline configuration CI
// smokes). The pre-arena pipeline spent ~499k allocs here; the pooled
// steady state is ~7k, and the ceiling leaves room for noise while still
// failing loudly if a protocol layer regresses to per-run allocation.
func TestPipelineAllocsCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("full n=128 pipeline run")
	}
	g := apsp.RandomGraph(apsp.GenOptions{N: 128, Directed: true, Seed: 128, MaxWeight: 50}, 4*128)
	run := func() {
		if _, err := apsp.Run(g, apsp.Options{SkipLastHops: true}); err != nil {
			t.Fatal(err)
		}
	}
	const ceiling = 50000
	if got := testing.AllocsPerRun(1, run); got > ceiling {
		t.Errorf("apsp.Run n=128: %v allocs/op, ceiling %d", got, ceiling)
	}
}
