module congestapsp

go 1.24
