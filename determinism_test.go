package bench

import (
	"fmt"
	"testing"

	"congestapsp/internal/bford"
	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/graph"
)

// TestParallelDeterminism is the engine's bit-identical-execution property
// test: for random graphs (directed and undirected, several densities),
// running Bellman-Ford and the broadcast primitives with Parallel on and
// off must produce identical congest.Stats, identical final distance
// vectors, and identical gathered item streams. This pins the contract the
// sharded delivery path promises: per-shard accumulators merged at round
// end are indistinguishable from sequential execution.
func TestParallelDeterminism(t *testing.T) {
	type scenario struct {
		n        int
		extra    int // edges beyond the connecting spine
		directed bool
		seed     int64
	}
	var cases []scenario
	for _, n := range []int{24, 61, 128} {
		for _, density := range []int{1, 4, 10} {
			for _, directed := range []bool{false, true} {
				cases = append(cases, scenario{n: n, extra: density * n, directed: directed, seed: int64(7*n + density)})
			}
		}
	}
	for _, sc := range cases {
		sc := sc
		name := fmt.Sprintf("n=%d/m=%d/directed=%v", sc.n, sc.extra, sc.directed)
		t.Run(name, func(t *testing.T) {
			g := graph.RandomConnected(graph.GenConfig{
				N: sc.n, Directed: sc.directed, Seed: sc.seed, MaxWeight: 40,
			}, sc.extra)
			h := sc.n/4 + 2

			type outcome struct {
				stats congest.Stats
				dist  []int64
				hops  []int
				items []broadcast.Item
			}
			run := func(parallel bool) outcome {
				nw, err := congest.NewNetwork(g, 2)
				if err != nil {
					t.Fatal(err)
				}
				nw.Parallel = parallel
				res, err := bford.Run(nw, g, int(sc.seed)%sc.n, h, bford.Out)
				if err != nil {
					t.Fatal(err)
				}
				tree, err := broadcast.BuildBFS(nw, 0)
				if err != nil {
					t.Fatal(err)
				}
				perNode := make([][]broadcast.Item, sc.n)
				for v := 0; v < sc.n; v++ {
					perNode[v] = []broadcast.Item{{A: int64(v), B: res.Dist[v], C: int64(res.Hops[v])}}
				}
				all, err := broadcast.AllToAll(nw, tree, perNode)
				if err != nil {
					t.Fatal(err)
				}
				return outcome{stats: nw.Stats, dist: res.Dist, hops: res.Hops, items: all}
			}

			seq := run(false)
			par := run(true)

			if seq.stats.Rounds != par.stats.Rounds ||
				seq.stats.Messages != par.stats.Messages ||
				seq.stats.Words != par.stats.Words {
				t.Fatalf("stats diverge:\n  seq: rounds=%d msgs=%d words=%d\n  par: rounds=%d msgs=%d words=%d",
					seq.stats.Rounds, seq.stats.Messages, seq.stats.Words,
					par.stats.Rounds, par.stats.Messages, par.stats.Words)
			}
			for v := range seq.stats.WordsByNode {
				if seq.stats.WordsByNode[v] != par.stats.WordsByNode[v] {
					t.Fatalf("WordsByNode[%d]: seq %d, par %d", v, seq.stats.WordsByNode[v], par.stats.WordsByNode[v])
				}
			}
			for v := 0; v < sc.n; v++ {
				if seq.dist[v] != par.dist[v] || seq.hops[v] != par.hops[v] {
					t.Fatalf("node %d: seq (dist=%d hops=%d), par (dist=%d hops=%d)",
						v, seq.dist[v], seq.hops[v], par.dist[v], par.hops[v])
				}
			}
			if len(seq.items) != len(par.items) {
				t.Fatalf("gathered %d items sequentially, %d in parallel", len(seq.items), len(par.items))
			}
			for i := range seq.items {
				if seq.items[i] != par.items[i] {
					t.Fatalf("item %d: seq %+v, par %+v", i, seq.items[i], par.items[i])
				}
			}
		})
	}
}
