package bench

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"congestapsp/internal/bford"
	"congestapsp/internal/broadcast"
	"congestapsp/internal/congest"
	"congestapsp/internal/core"
	"congestapsp/internal/graph"
	"congestapsp/internal/qsink"
)

// TestParallelDeterminism is the engine's bit-identical-execution property
// test: for random graphs (directed and undirected, several densities),
// running Bellman-Ford and the broadcast primitives with Parallel on and
// off must produce identical congest.Stats, identical final distance
// vectors, and identical gathered item streams. This pins the contract the
// sharded delivery path promises: per-shard accumulators merged at round
// end are indistinguishable from sequential execution.
func TestParallelDeterminism(t *testing.T) {
	type scenario struct {
		n        int
		extra    int // edges beyond the connecting spine
		directed bool
		seed     int64
	}
	var cases []scenario
	for _, n := range []int{24, 61, 128} {
		for _, density := range []int{1, 4, 10} {
			for _, directed := range []bool{false, true} {
				cases = append(cases, scenario{n: n, extra: density * n, directed: directed, seed: int64(7*n + density)})
			}
		}
	}
	for _, sc := range cases {
		sc := sc
		name := fmt.Sprintf("n=%d/m=%d/directed=%v", sc.n, sc.extra, sc.directed)
		t.Run(name, func(t *testing.T) {
			g := graph.RandomConnected(graph.GenConfig{
				N: sc.n, Directed: sc.directed, Seed: sc.seed, MaxWeight: 40,
			}, sc.extra)
			h := sc.n/4 + 2

			type outcome struct {
				stats congest.Stats
				dist  []int64
				hops  []int
				items []broadcast.Item
			}
			run := func(parallel bool) outcome {
				nw, err := congest.NewNetwork(g, 2)
				if err != nil {
					t.Fatal(err)
				}
				nw.Parallel = parallel
				nw.MinShardNodes = 1 // force in-round sharding below the adaptive threshold
				res, err := bford.Run(nw, g, int(sc.seed)%sc.n, h, bford.Out)
				if err != nil {
					t.Fatal(err)
				}
				tree, err := broadcast.BuildBFS(nw, 0)
				if err != nil {
					t.Fatal(err)
				}
				perNode := make([][]broadcast.Item, sc.n)
				for v := 0; v < sc.n; v++ {
					perNode[v] = []broadcast.Item{{A: int64(v), B: res.Dist[v], C: int64(res.Hops[v])}}
				}
				all, err := broadcast.AllToAll(nw, tree, perNode)
				if err != nil {
					t.Fatal(err)
				}
				return outcome{stats: nw.Stats, dist: res.Dist, hops: res.Hops, items: all}
			}

			seq := run(false)
			par := run(true)

			if seq.stats.Rounds != par.stats.Rounds ||
				seq.stats.Messages != par.stats.Messages ||
				seq.stats.Words != par.stats.Words {
				t.Fatalf("stats diverge:\n  seq: rounds=%d msgs=%d words=%d\n  par: rounds=%d msgs=%d words=%d",
					seq.stats.Rounds, seq.stats.Messages, seq.stats.Words,
					par.stats.Rounds, par.stats.Messages, par.stats.Words)
			}
			for v := range seq.stats.WordsByNode {
				if seq.stats.WordsByNode[v] != par.stats.WordsByNode[v] {
					t.Fatalf("WordsByNode[%d]: seq %d, par %d", v, seq.stats.WordsByNode[v], par.stats.WordsByNode[v])
				}
			}
			for v := 0; v < sc.n; v++ {
				if seq.dist[v] != par.dist[v] || seq.hops[v] != par.hops[v] {
					t.Fatalf("node %d: seq (dist=%d hops=%d), par (dist=%d hops=%d)",
						v, seq.dist[v], seq.hops[v], par.dist[v], par.hops[v])
				}
			}
			if len(seq.items) != len(par.items) {
				t.Fatalf("gathered %d items sequentially, %d in parallel", len(seq.items), len(par.items))
			}
			for i := range seq.items {
				if seq.items[i] != par.items[i] {
					t.Fatalf("item %d: seq %+v, par %+v", i, seq.items[i], par.items[i])
				}
			}
		})
	}
}

// forceWorkers raises GOMAXPROCS to at least 4 for the duration of a test
// (returning the restore func), so the source-sharded path — which falls
// back to sequential execution at GOMAXPROCS 1 — is genuinely exercised
// even on single-core CI shards; -race then certifies the worker-clone
// ownership discipline regardless of the host.
func forceWorkers(t *testing.T) func() {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev >= 4 {
		return func() {}
	}
	runtime.GOMAXPROCS(4)
	return func() { runtime.GOMAXPROCS(prev) }
}

// TestPipelineShardedDeterminism is the full-pipeline property test for the
// source-sharded execution layer: for every Algorithm profile and several
// random graph families, core.Run with Parallel on (per-source sub-runs of
// Steps 1/3/7 and the q-sink SSSPs sharded across worker clones, plus the
// engine's in-round sharding) must be bit-identical to the sequential
// schedule in Dist, LastHop, and every Stats field — rounds, messages,
// words, per-step decomposition, blocker stats, q-sink stats, and the
// max-node-congestion derived from the merged per-node word vectors. The
// matrix also carries a planner cell: a warm session's calibration run and
// the cost-model-planned run it seeds must land on the same bits. CI runs
// this under -race, which also certifies the worker-clone ownership
// discipline (matrix rows, per-source slots, the shared bford relaxation
// cache).
func TestPipelineShardedDeterminism(t *testing.T) {
	defer forceWorkers(t)()
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"random-undir", graph.RandomConnected(graph.GenConfig{N: 30, Seed: 3, MaxWeight: 30}, 90)},
		{"random-dir", graph.RandomConnected(graph.GenConfig{N: 28, Directed: true, Seed: 4, MaxWeight: 30}, 110)},
		{"star", graph.Star(graph.GenConfig{N: 26, Seed: 5, MaxWeight: 15})},
		{"zeromix", graph.ZeroWeightMix(graph.GenConfig{N: 24, Seed: 6, MaxWeight: 9}, 70)},
	}
	variants := []core.Variant{core.Det43, core.Det32, core.Rand43, core.BroadcastStep6}
	for _, gc := range graphs {
		for _, v := range variants {
			t.Run(fmt.Sprintf("%s/%v", gc.name, v), func(t *testing.T) {
				run := func(parallel bool, minShard int) *core.Result {
					res, err := core.Run(gc.g, core.Options{Variant: v, Seed: 11, Parallel: parallel, MinShardNodes: minShard})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				seq := run(false, 0)
				// Source-sharded only (small graphs stay below the in-round
				// threshold), then with in-round sharding forced for every
				// round, so -race also covers every protocol family under
				// the engine's intra-round worker pool.
				// Planner cell: the session-held calibration run and the
				// planned run it seeds, both of which must land on the very
				// same bits as the fixed schedules above (the planner only
				// re-routes host execution, never the simulated protocol).
				s, err := core.NewSession(gc.g)
				if err != nil {
					t.Fatal(err)
				}
				popt := core.Options{Variant: v, Seed: 11, Planner: true, MinShardNodes: 1}
				planned := make([]*core.Result, 2)
				for pass := range planned {
					if planned[pass], err = s.Run(popt); err != nil {
						t.Fatalf("planner pass %d: %v", pass, err)
					}
				}
				for _, par := range []*core.Result{run(true, 0), run(true, 1), planned[0], planned[1]} {
					if !reflect.DeepEqual(seq.Stats, par.Stats) {
						t.Fatalf("stats diverge:\n  seq: %+v\n  par: %+v", seq.Stats, par.Stats)
					}
					if !reflect.DeepEqual(seq.Dist, par.Dist) {
						t.Fatal("distance matrices diverge")
					}
					if !reflect.DeepEqual(seq.LastHop, par.LastHop) {
						t.Fatal("last-hop matrices diverge")
					}
				}
			})
		}
	}
}

// TestWorkStealingDeterminism is the scheduler-determinism property the
// work-stealing dispatcher promises: across permuted worker counts (every
// GOMAXPROCS in {2, 3, 4, 7} gives a different steal interleaving on a
// skewed power-law workload), the merged Stats, the distance matrix and
// the per-stage round decomposition must be bit-identical to the
// sequential schedule — integer stat sums commute, and each sub-run
// executes on exactly one deterministic engine. CI runs this under -race,
// which also certifies the atomic dispatch counter and the clone
// ownership discipline under genuine contention.
func TestWorkStealingDeterminism(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 48, Seed: 9, MaxWeight: 25}, 3)
	run := func() *core.Result {
		res, err := core.Run(g, core.Options{Variant: core.Det43, Parallel: runtime.GOMAXPROCS(0) > 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	seq := run()
	for _, workers := range []int{2, 3, 4, 7} {
		runtime.GOMAXPROCS(workers)
		par := run()
		if !reflect.DeepEqual(seq.Stats, par.Stats) {
			t.Fatalf("workers=%d: stats diverge:\n  seq: %+v\n  par: %+v", workers, seq.Stats, par.Stats)
		}
		if !reflect.DeepEqual(seq.Dist, par.Dist) {
			t.Fatalf("workers=%d: distance matrices diverge", workers)
		}
		if len(seq.Stages) != len(par.Stages) {
			t.Fatalf("workers=%d: stage count diverges", workers)
		}
		for i := range seq.Stages {
			if seq.Stages[i].Name != par.Stages[i].Name || seq.Stages[i].Rounds != par.Stages[i].Rounds {
				t.Fatalf("workers=%d: stage %q rounds %d, seq %q %d", workers,
					par.Stages[i].Name, par.Stages[i].Rounds, seq.Stages[i].Name, seq.Stages[i].Rounds)
			}
		}
	}
}

// TestPartialAPSPShardedDeterminism extends the property to partial runs:
// restricted (deduplicated) source sets must produce identical rows and
// stats under sharded and sequential execution, and non-source rows stay
// nil.
func TestPartialAPSPShardedDeterminism(t *testing.T) {
	defer forceWorkers(t)()
	g := graph.RandomConnected(graph.GenConfig{N: 30, Directed: true, Seed: 9, MaxWeight: 25}, 100)
	sources := []int{17, 3, 17, 8, 3} // duplicates must be dropped, not double-charged
	run := func(parallel bool) *core.Result {
		res, err := core.Run(g, core.Options{Variant: core.Det43, Sources: sources, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(false)
	par := run(true)
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Fatalf("stats diverge:\n  seq: %+v\n  par: %+v", seq.Stats, par.Stats)
	}
	if !reflect.DeepEqual(seq.Dist, par.Dist) {
		t.Fatal("distance rows diverge")
	}
	for x := 0; x < g.N; x++ {
		want := x == 17 || x == 3 || x == 8
		if got := seq.Dist[x] != nil; got != want {
			t.Fatalf("row %d presence = %v, want %v", x, got, want)
		}
	}
	// A deduplicated run must charge exactly what a pre-deduplicated one
	// does (the satellite bug: duplicates used to run Step 7 twice).
	clean, err := core.Run(g, core.Options{Variant: core.Det43, Sources: []int{17, 3, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.Rounds != seq.Stats.Rounds || clean.Stats.Words != seq.Stats.Words {
		t.Fatalf("duplicate sources changed the charge: rounds %d vs %d, words %d vs %d",
			seq.Stats.Rounds, clean.Stats.Rounds, seq.Stats.Words, clean.Stats.Words)
	}
}

// TestQSinkInRoundParallelDeterminism pins the engine's in-round sharded
// execution of the q-sink delivery protocols, forced below the adaptive
// MinShardNodes threshold (full pipelines at small n no longer shard
// individual rounds, so without forcing, this protocol family would lose
// its -race coverage — it is the one whose global undelivered-message
// counter had to become atomic).
func TestQSinkInRoundParallelDeterminism(t *testing.T) {
	defer forceWorkers(t)()
	g := graph.RandomConnected(graph.GenConfig{N: 36, Seed: 31, MaxWeight: 9}, 120)
	var Q []int
	for v := 0; v < g.N; v += 3 {
		Q = append(Q, v)
	}
	delta := graph.BlockerDelta(g, Q)
	for _, sch := range []qsink.Scheduler{qsink.RoundRobin, qsink.Frames, qsink.BroadcastAll} {
		t.Run(sch.String(), func(t *testing.T) {
			run := func(parallel bool) (*qsink.Result, congest.Stats) {
				nw, err := congest.NewNetwork(g, 1)
				if err != nil {
					t.Fatal(err)
				}
				nw.Parallel = parallel
				nw.MinShardNodes = 1
				res, err := qsink.Run(nw, g, Q, delta, qsink.Params{Scheduler: sch})
				if err != nil {
					t.Fatal(err)
				}
				return res, nw.Stats
			}
			seqRes, seqStats := run(false)
			parRes, parStats := run(true)
			if !reflect.DeepEqual(seqStats, parStats) {
				t.Fatalf("network stats diverge:\n  seq: %+v\n  par: %+v", seqStats, parStats)
			}
			if !reflect.DeepEqual(seqRes.Stats, parRes.Stats) {
				t.Fatalf("qsink stats diverge:\n  seq: %+v\n  par: %+v", seqRes.Stats, parRes.Stats)
			}
			if !reflect.DeepEqual(seqRes.AtBlocker, parRes.AtBlocker) {
				t.Fatal("AtBlocker matrices diverge")
			}
		})
	}
}
