#!/usr/bin/env bash
# bench.sh — run the perf-trajectory benchmarks and emit machine-readable
# JSON consumed by CI dashboards and PR descriptions:
#
#   BENCH_engine.json  engine-critical microbenchmarks (ns/op, allocs/op)
#   BENCH_apsp.json    full-pipeline apsp.Run wall-clock + allocs at
#                      n in {128, 256, 512}, sequential vs source-sharded,
#                      plus the warm apsp.Runner re-run rows
#                      (BenchmarkAPSPPipelineWarm, seq/sharded/planner —
#                      the warm-up run doubles as planner calibration) for
#                      the cold-vs-warm session comparison, and the
#                      budgeted rows (BenchmarkAPSPPipelineTiled) whose
#                      peak_rss_kb column records what the tiled spillable
#                      backend caps
#   BENCH_stages.json  per-stage seq-vs-sharded-vs-planner wall of one
#                      det43 n=256 sweep per GOMAXPROCS in {1, 2, 4}
#                      (sections above the host's core count are skipped,
#                      so a 1-core host records only its own section)
#   BENCH_update.json  incremental-update throughput (BenchmarkAPSPUpdate):
#                      single-edge weight toggles against a warm Runner,
#                      with updates/sec and the speedup versus the cold
#                      BenchmarkAPSPPipeline/seq row at the same n
#   BENCH_serve.json   serving-layer latency percentiles (cmd/apspload
#                      -selfhost) per traffic mix, including a journaled
#                      postupdate row (-data-dir, fsync=interval) whose
#                      delta against the in-memory postupdate row is the
#                      durability overhead README quotes
#   EXPERIMENTS.json   the scenario-corpus sweep (cmd/experiment): every
#                      registered family x all 4 algorithm profiles x
#                      seq/sharded at n in {64, 128}, oracle-checked, with
#                      the staged executor's per-stage breakdown per row
#
# Run from the repo root:
#
#   scripts/bench.sh [benchtime]
#
# benchtime defaults to 2s per engine benchmark; the full-pipeline suite
# always runs one iteration per configuration (a single n=512 run takes
# tens of seconds of simulated work). The host's core count and effective
# GOMAXPROCS are recorded in the JSON: the sharded/sequential ratio is only
# meaningful when GOMAXPROCS > 1.
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${1:-2s}"
CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
# The Go runtime defaults GOMAXPROCS to the core count; an explicit env
# override is what the benchmark processes will actually run with.
MAXPROCS="${GOMAXPROCS:-$CORES}"

# report_deltas old_json new_json: per-benchmark allocs_per_op deltas of a
# regeneration versus the previously committed snapshot, so a bench refresh
# shows at a glance what moved (scripts/check_allocs.sh gates the same
# quantity in CI).
report_deltas() {
  command -v jq >/dev/null 2>&1 || return 0 # delta report is informational
  [ -s "$1" ] || return 0
  jq -r --slurpfile old "$1" '
    ($old[0].results | map({(.name): .allocs_per_op}) | add) as $prev |
    .results[] | select(.allocs_per_op != null) |
    "\(.name) allocs/op: \($prev[.name] // "n/a") -> \(.allocs_per_op)"
  ' "$2" | sed 's/^/  delta /'
}

emit_json() { # emit_json suite benchtime raw_file out_file
  awk -v suite="$1" -v benchtime="$2" -v cores="$CORES" -v maxprocs="$MAXPROCS" '
    /^Benchmark/ {
      name = $1
      sub(/-[0-9]+$/, "", name) # strip -GOMAXPROCS suffix
      ns = ""; allocs = ""; rss = ""
      for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")       ns = $(i - 1)
        if ($(i) == "allocs/op")   allocs = $(i - 1)
        if ($(i) == "peak-rss-kb") rss = $(i - 1)
      }
      if (ns != "") {
        if (count++) printf ",\n"
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        if (rss != "")    printf ", \"peak_rss_kb\": %s", rss
        printf "}"
      }
    }
    BEGIN {
      printf "{\n  \"suite\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"cores\": %s,\n  \"gomaxprocs\": %s,\n  \"results\": [\n", suite, benchtime, cores, maxprocs
    }
    END { printf "\n  ]\n}\n" }
  ' "$3" > "$4"
  echo "wrote $4"
}

RAW="$(mktemp)"
OLD="$(mktemp)"
trap 'rm -f "$RAW" "$OLD"' EXIT

go test -run '^$' \
  -bench 'BenchmarkSimulatorRound|BenchmarkDistributedBellmanFord' \
  -benchtime="$BENCHTIME" -benchmem . | tee "$RAW"

go test -run '^$' -bench 'BenchmarkEngine' -benchtime="$BENCHTIME" \
  ./internal/congest/ | tee -a "$RAW"

cp BENCH_engine.json "$OLD" 2>/dev/null || : > "$OLD"
emit_json engine "$BENCHTIME" "$RAW" BENCH_engine.json
report_deltas "$OLD" BENCH_engine.json

: > "$RAW"
go test -run '^$' -bench 'BenchmarkAPSPPipeline' -benchtime=1x -benchmem -timeout 60m . | tee "$RAW"

cp BENCH_apsp.json "$OLD" 2>/dev/null || : > "$OLD"
emit_json apsp 1x "$RAW" BENCH_apsp.json
report_deltas "$OLD" BENCH_apsp.json

# Per-stage wall at several worker counts (BENCH_stages.json): one det43
# sweep of random-n256-s1 per GOMAXPROCS in {1, 2, 4}, seq vs sharded vs
# planner, with the staged executor's per-stage wall and exec decision on
# every row. Sections above the host's core count are skipped — the
# sharded/planner walls only mean something when the workers exist — so the
# artifact honestly records what this host could measure.
{
  printf '{\n  "suite": "stages",\n  "cores": %s,\n  "sections": [\n' "$CORES"
  FIRST=1
  for P in 1 2 4; do
    if [ "$P" -gt 1 ] && [ "$P" -gt "$CORES" ]; then
      continue
    fi
    GOMAXPROCS=$P go run ./cmd/experiment -scenarios random-n256-s1 \
      -algorithms det43 -exec seq,sharded,planner -json "$RAW.stage" -q >/dev/null
    [ "$FIRST" -eq 1 ] || printf ',\n'
    FIRST=0
    printf '    {"gomaxprocs": %s, "sweep":\n' "$P"
    sed 's/^/    /' "$RAW.stage"
    printf '    }'
  done
  printf '\n  ]\n}\n'
} > BENCH_stages.json
rm -f "$RAW.stage"
echo "wrote BENCH_stages.json"

: > "$RAW"
go test -run '^$' -bench 'BenchmarkAPSPUpdate' -benchtime=3x -benchmem -timeout 30m . | tee "$RAW"

# The update suite needs a custom emitter: each row is joined against the
# cold BenchmarkAPSPPipeline/seq row at the same n (from the BENCH_apsp.json
# regenerated above) to derive updates/sec and the incremental-vs-cold
# speedup — the quantities the dynamic-graphs story is sold on.
cp BENCH_update.json "$OLD" 2>/dev/null || : > "$OLD"
awk -v cores="$CORES" -v maxprocs="$MAXPROCS" '
  NR == FNR {
    if ($0 ~ /BenchmarkAPSPPipeline\/seq\/n=/) {
      n = $0; sub(/.*\/n=/, "", n); sub(/".*/, "", n)
      ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
      cold[n] = ns
    }
    next
  }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($(i) == "ns/op")     ns = $(i - 1)
      if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    n = name; sub(/.*\/n=/, "", n)
    if (count++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf ", \"updates_per_sec\": %.1f", 1e9 / ns
    if (n in cold) printf ", \"cold_ns_per_op\": %s, \"speedup_vs_cold\": %.1f", cold[n], cold[n] / ns
    printf "}"
  }
  BEGIN {
    printf "{\n  \"suite\": \"update\",\n  \"benchtime\": \"3x\",\n  \"cores\": %s,\n  \"gomaxprocs\": %s,\n  \"results\": [\n", cores, maxprocs
  }
  END { printf "\n  ]\n}\n" }
' BENCH_apsp.json "$RAW" > BENCH_update.json
echo "wrote BENCH_update.json"
report_deltas "$OLD" BENCH_update.json

# Serving-layer latency percentiles (BENCH_serve.json): the deterministic
# load generator drives an in-process daemon (cmd/apspload -selfhost) for
# each traffic mix at n in {128, 256}. Request counts are scaled to the
# cost of a miss in each mix: cached queries are ~free after the first
# run, a warmmiss request is a full warm APSP run, postupdate alternates
# incremental re-runs with cache hits.
: > "$RAW"
for n in 128 256; do
  case "$n" in
    128) REQ_CACHED=200; REQ_WARMMISS=6; REQ_POSTUPDATE=40 ;;
    *)   REQ_CACHED=100; REQ_WARMMISS=4; REQ_POSTUPDATE=20 ;;
  esac
  for mix in cached warmmiss postupdate; do
    case "$mix" in
      cached)     REQ=$REQ_CACHED ;;
      warmmiss)   REQ=$REQ_WARMMISS ;;
      postupdate) REQ=$REQ_POSTUPDATE ;;
    esac
    go run ./cmd/apspload -selfhost -scenario "random-n${n}-s1" \
      -mix "$mix" -requests "$REQ" -concurrency 2 -seed 1 -json | tee -a "$RAW"
  done
  # The same postupdate mix through a durable daemon (write-ahead journal,
  # fsync=interval): the delta against the in-memory postupdate row above
  # is the journaling overhead per acknowledged update batch. The row is
  # labeled by its "durability" field.
  DDIR="$(mktemp -d)"
  go run ./cmd/apspload -selfhost -data-dir "$DDIR" -fsync interval \
    -scenario "random-n${n}-s1" -mix postupdate -requests "$REQ_POSTUPDATE" \
    -concurrency 2 -seed 1 -json | tee -a "$RAW"
  rm -rf "$DDIR"
done
awk -v cores="$CORES" -v maxprocs="$MAXPROCS" '
  /^\{/ {
    if (count++) printf ",\n"
    printf "    %s", $0
  }
  BEGIN {
    printf "{\n  \"suite\": \"serve\",\n  \"cores\": %s,\n  \"gomaxprocs\": %s,\n  \"results\": [\n", cores, maxprocs
  }
  END { printf "\n  ]\n}\n" }
' "$RAW" > BENCH_serve.json
echo "wrote BENCH_serve.json"

go run ./cmd/experiment \
  -scenarios random,ring,grid,layered,star,zeromix,powerlaw,geometric,expander,ktree \
  -sizes 64,128 -check -json EXPERIMENTS.json -q

# Per-stage wall breakdown of the regenerated sweep: where the host time
# goes inside the paper's pipeline, for each family's largest sequential
# det43 cell (the staged executor records this per row; see DESIGN.md
# §2.5/§6.3).
if command -v jq >/dev/null 2>&1; then
  echo "per-stage wall breakdown (det43, seq, largest n per family):"
  jq -r '
    [.rows[] | select(.algorithm == "deterministic-n43" and .exec == "seq")]
    | group_by(.family)[] | max_by(.n)
    | "  \(.scenario): " + ([.stages[] | "\(.name | sub("^step[0-9]-"; ""))=\(.wall_ms)ms"] | join(" "))
  ' EXPERIMENTS.json
fi
