#!/usr/bin/env bash
# bench.sh — run the engine-critical benchmarks and emit BENCH_engine.json,
# the machine-readable perf trajectory consumed by CI dashboards and PR
# descriptions. Run from the repo root:
#
#   scripts/bench.sh [benchtime]
#
# benchtime defaults to 2s per benchmark.
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${1:-2s}"
OUT="BENCH_engine.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'BenchmarkSimulatorRound|BenchmarkDistributedBellmanFord' \
  -benchtime="$BENCHTIME" -benchmem . | tee "$RAW"

go test -run '^$' -bench 'BenchmarkEngine' -benchtime="$BENCHTIME" \
  ./internal/congest/ | tee -a "$RAW"

awk -v benchtime="$BENCHTIME" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip -GOMAXPROCS suffix
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($(i) == "ns/op")     ns = $(i - 1)
      if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns != "") {
      if (count++) printf ",\n"
      printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
      if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
      printf "}"
    }
  }
  BEGIN {
    printf "{\n  \"suite\": \"engine\",\n  \"benchtime\": \"%s\",\n  \"results\": [\n", benchtime
  }
  END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
