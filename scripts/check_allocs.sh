#!/usr/bin/env bash
# check_allocs.sh — allocation-regression gate for the pooled-scratch
# steady state (DESIGN.md §7).
#
# Runs the full-pipeline benchmark at the CI-sized configuration, parses
# allocs/op, and fails when any matched benchmark regressed more than
# THRESHOLD_PCT versus the committed baseline JSON. Wall-clock is NOT
# gated here (shared CI runners are too noisy); allocation counts are
# deterministic, so a tight threshold is safe.
#
# Usage (from the repo root):
#
#   scripts/check_allocs.sh [bench_regex] [baseline_json] [threshold_pct]
#
# Defaults: 'BenchmarkAPSPPipeline/(seq|sharded)/n=128', BENCH_apsp.json, 10.
set -euo pipefail
cd "$(dirname "$0")/.."

REGEX="${1:-BenchmarkAPSPPipeline/(seq|sharded)/n=128}"
BASELINE="${2:-BENCH_apsp.json}"
THRESHOLD="${3:-10}"

if [ ! -f "$BASELINE" ]; then
  echo "check_allocs: baseline $BASELINE not found" >&2
  exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
go test -run '^$' -bench "$REGEX" -benchtime=1x -benchmem -timeout 30m . | tee "$RAW"

fail=0
while read -r name allocs; do
  base="$(jq -r --arg n "$name" '.results[] | select(.name == $n) | .allocs_per_op' "$BASELINE")"
  if [ -z "$base" ] || [ "$base" = "null" ]; then
    echo "check_allocs: $name: no baseline entry in $BASELINE (skipped)"
    continue
  fi
  # Integer math: new*100 must stay within base*(100+threshold).
  if [ $((allocs * 100)) -gt $((base * (100 + THRESHOLD))) ]; then
    echo "check_allocs: FAIL $name: ${allocs} allocs/op vs baseline ${base} (> +${THRESHOLD}%)"
    fail=1
  else
    echo "check_allocs: ok   $name: ${allocs} allocs/op vs baseline ${base}"
  fi
done < <(awk '/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") print name, $(i - 1)
}' "$RAW")

exit "$fail"
