#!/usr/bin/env bash
# bench_smoke.sh — CI guard on the parallel execution path: runs the warm
# full-pipeline benchmark at n=256 in all three execution modes (seq,
# source-sharded, planner) and
#
#   1. writes a speedup table to BENCH_smoke.txt (uploaded as a CI
#      artifact, so every run leaves a multi-core record — the committed
#      BENCH_apsp.json comes from a 1-core container),
#   2. on hosts with >= 2 cores, asserts sharded wall <= 1.05x seq wall:
#      the work-stealing fleet must never lose more than noise to the
#      sequential schedule on the size CI pays for, and
#   3. on the same hosts, asserts planner wall <= 1.10x the best of
#      {seq, sharded}: the cost model must pick a competitive plan.
#
# On a 1-core host the assertions are skipped (sharded execution there is
# honest overhead by design; the planner degenerates to all-seq) and the
# table is still written.
#
# Usage: scripts/bench_smoke.sh [iterations]   (default 3x)
set -euo pipefail

cd "$(dirname "$0")/.."
ITERS="${1:-3x}"
CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkAPSPPipelineWarm/(seq|sharded|planner)/n=256$' \
  -benchtime="$ITERS" -timeout 30m . | tee "$RAW"

awk -v cores="$CORES" '
  /^BenchmarkAPSPPipelineWarm\// {
    name = $1
    sub(/^BenchmarkAPSPPipelineWarm\//, "", name)
    sub(/\/n=256.*/, "", name)
    for (i = 2; i <= NF; i++) if ($(i) == "ns/op") ns[name] = $(i - 1)
  }
  END {
    if (!("seq" in ns) || !("sharded" in ns) || !("planner" in ns)) {
      print "bench_smoke: missing benchmark rows" > "/dev/stderr"
      exit 1
    }
    best = ns["seq"] < ns["sharded"] ? ns["seq"] : ns["sharded"]
    printf "bench-smoke speedup table (warm det43 pipeline, n=256, %d cores)\n", cores
    printf "  %-8s %12s %18s %18s\n", "mode", "wall_ms", "speedup_vs_seq", "vs_best_fixed"
    cnt = split("seq sharded planner", modes, " ")
    for (m = 1; m <= cnt; m++) {
      mode = modes[m]
      printf "  %-8s %12.1f %17.2fx %17.2fx\n", mode, ns[mode] / 1e6, ns["seq"] / ns[mode], best / ns[mode]
    }
    if (cores < 2) {
      print "  (single-core host: seq-vs-sharded and planner assertions skipped)"
      exit 0
    }
    if (ns["sharded"] > 1.05 * ns["seq"]) {
      printf "FAIL: sharded wall %.1fms > 1.05x seq %.1fms on a %d-core host\n", \
        ns["sharded"] / 1e6, ns["seq"] / 1e6, cores > "/dev/stderr"
      exit 1
    }
    if (ns["planner"] > 1.10 * best) {
      printf "FAIL: planner wall %.1fms > 1.10x best fixed mode %.1fms\n", \
        ns["planner"] / 1e6, best / 1e6 > "/dev/stderr"
      exit 1
    }
  }
' "$RAW" | tee BENCH_smoke.txt
# awk writes the table to stdout and its verdict via exit status; the tee
# above preserves both, and pipefail makes an assertion failure fail the
# script (and the CI step).
