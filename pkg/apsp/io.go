package apsp

import (
	"fmt"
	"io"

	"congestapsp/internal/graphio"
)

// GraphFormat identifies an on-disk graph serialization format.
type GraphFormat = graphio.Format

// Supported graph formats. See internal/graphio for the format details.
const (
	// FormatDIMACS is the DIMACS shortest-path ".gr" text format
	// ("p sp n m" header, 1-indexed "a u v w" arcs).
	FormatDIMACS = graphio.FormatDIMACS
	// FormatTSV is a whitespace edge list ("u v w" per line, 0-indexed)
	// with an optional "# congestapsp ..." metadata header.
	FormatTSV = graphio.FormatTSV
	// FormatGob is a compact binary snapshot for fast reload.
	FormatGob = graphio.FormatGob
)

// DetectGraphFormat maps a file name to its GraphFormat by extension
// (.gr/.dimacs, .tsv/.txt/.el/.edges, .gob/.snap).
func DetectGraphFormat(path string) (GraphFormat, error) {
	return graphio.DetectFormat(path)
}

// LoadGraph reads a graph from path, inferring the format from the file
// extension (.gr/.dimacs, .tsv/.txt/.el/.edges, .gob/.snap). Files written
// by SaveGraph round-trip exactly: vertex count, directedness, edge order
// and weights are all preserved.
func LoadGraph(path string) (*Graph, error) {
	g, err := graphio.Load(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// SaveGraph writes g to path, inferring the format from the file extension.
func SaveGraph(path string, g *Graph) error {
	if g == nil {
		return fmt.Errorf("apsp: SaveGraph: nil graph")
	}
	return graphio.Save(path, g.g)
}

// ReadGraph parses a graph from r in the given format.
func ReadGraph(r io.Reader, f GraphFormat) (*Graph, error) {
	g, err := graphio.Read(r, f)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// GraphFileMeta reports how a graph file described itself; see
// ReadGraphWithMeta.
type GraphFileMeta = graphio.Meta

// ReadGraphWithMeta is ReadGraph plus provenance: Meta.SelfDescribed
// reports whether the stream declared its own directedness (DIMACS and
// gob always do, TSV only with the metadata header), letting callers
// decide whether a headerless default may be reinterpreted.
func ReadGraphWithMeta(r io.Reader, f GraphFormat) (*Graph, GraphFileMeta, error) {
	g, meta, err := graphio.ReadWithMeta(r, f)
	if err != nil {
		return nil, meta, err
	}
	return &Graph{g: g}, meta, nil
}

// WriteGraph serializes g to w in the given format.
func WriteGraph(w io.Writer, g *Graph, f GraphFormat) error {
	if g == nil {
		return fmt.Errorf("apsp: WriteGraph: nil graph")
	}
	return graphio.Write(w, g.g, f)
}
