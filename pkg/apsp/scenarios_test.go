package apsp

import (
	"bytes"
	"reflect"
	"testing"
)

func TestScenarioNameRoundTrip(t *testing.T) {
	for _, family := range Families() {
		for _, seed := range []int64{7, 0, -3} {
			sc := Scenario{Family: family, N: 96, Seed: seed}
			got, err := ParseScenario(sc.Name())
			if err != nil {
				t.Fatalf("%s: %v", sc.Name(), err)
			}
			if got != sc {
				t.Fatalf("parse(%q) = %+v, want %+v", sc.Name(), got, sc)
			}
		}
	}
}

func TestParseScenarioRejects(t *testing.T) {
	for _, name := range []string{
		"",
		"powerlaw",
		"powerlaw-n64",
		"powerlaw-64-7",
		"nosuchfamily-n64-s7",
		"powerlaw-n64-s7-extra",
		"powerlaw-nx-s7",
		"powerlaw-n1-s7", // n < 2
	} {
		if _, err := ParseScenario(name); err == nil {
			t.Fatalf("ParseScenario(%q) accepted", name)
		}
	}
}

func TestScenarioCorpusCoversNewFamilies(t *testing.T) {
	fams := Families()
	for _, want := range []string{"powerlaw", "geometric", "expander", "ktree"} {
		found := false
		for _, f := range fams {
			if f == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("family %q missing from registry %v", want, fams)
		}
		if FamilyDescription(want) == "" {
			t.Fatalf("family %q has no description", want)
		}
	}
}

// TestScenarioBuildDeterministic: the same scenario name always builds the
// same graph — the property that makes EXPERIMENTS.json rows regenerable.
func TestScenarioBuildDeterministic(t *testing.T) {
	for _, family := range Families() {
		sc := Scenario{Family: family, N: 48, Seed: 3}
		a, err := sc.Build()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		b, err := sc.Build()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		var ab, bb bytes.Buffer
		if err := WriteGraph(&ab, a, FormatTSV); err != nil {
			t.Fatal(err)
		}
		if err := WriteGraph(&bb, b, FormatTSV); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Fatalf("%s: two builds serialize differently", sc.Name())
		}
	}
}

// TestGraphIORoundTripPublic: the pkg/apsp Load/Save surface preserves a
// scenario graph exactly in every format.
func TestGraphIORoundTripPublic(t *testing.T) {
	sc := Scenario{Family: "powerlaw", N: 40, Seed: 2}
	g, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"g.gr", "g.tsv", "g.gob"} {
		path := dir + "/" + name
		if err := SaveGraph(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadGraph(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N() != g.N() || got.M() != g.M() || got.Directed() != g.Directed() {
			t.Fatalf("%s: shape differs after round-trip", name)
		}
		type edge struct {
			u, v int
			w    int64
		}
		var a, b []edge
		g.Edges(func(u, v int, w int64) { a = append(a, edge{u, v, w}) })
		got.Edges(func(u, v int, w int64) { b = append(b, edge{u, v, w}) })
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: edges differ after round-trip", name)
		}
	}
}

// TestScenarioRunsExact: a small scenario from each new family runs the
// full pipeline and matches partial-APSP expectations end to end.
func TestScenarioRunsExact(t *testing.T) {
	for _, family := range []string{"powerlaw", "geometric", "expander", "ktree"} {
		sc := Scenario{Family: family, N: 20, Seed: 1}
		g, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		// Spot-check symmetry (scenario graphs are undirected) and the
		// triangle inequality through vertex 0.
		for x := 0; x < g.N(); x++ {
			for y := 0; y < g.N(); y++ {
				if res.Dist[x][y] != res.Dist[y][x] {
					t.Fatalf("%s: asymmetric distance (%d,%d)", sc.Name(), x, y)
				}
				if res.Dist[x][y] > res.Dist[x][0]+res.Dist[0][y] {
					t.Fatalf("%s: triangle violation (%d,%d)", sc.Name(), x, y)
				}
			}
		}
	}
}
