package apsp

import (
	"context"
	"errors"
	"fmt"

	"congestapsp/internal/congest"
	"congestapsp/internal/core"
)

// ErrCanceled is the sentinel under every error returned by a run whose
// context was canceled: errors.Is(err, apsp.ErrCanceled) identifies it. The
// concrete error is an *InterruptError carrying the interrupted stage and
// the progress made.
var ErrCanceled = errors.New("apsp: run canceled")

// ErrDeadlineExceeded is the sentinel under every error returned by a run
// whose context deadline passed; the concrete error is an *InterruptError.
var ErrDeadlineExceeded = errors.New("apsp: run deadline exceeded")

// InterruptError reports a run stopped by its context, with how far it got.
// It matches both the apsp sentinel for its cause (ErrCanceled or
// ErrDeadlineExceeded) and the underlying context sentinel
// (context.Canceled or context.DeadlineExceeded), so callers can branch
// with errors.Is at either level:
//
//	res, err := r.RunContext(ctx, opt)
//	var ie *apsp.InterruptError
//	switch {
//	case errors.Is(err, apsp.ErrDeadlineExceeded) && errors.As(err, &ie):
//	    log.Printf("budget blown in %s after %d rounds", ie.Stage, ie.CompletedRounds)
//	case errors.Is(err, apsp.ErrCanceled):
//	    return // caller went away
//	}
//
// The Runner that returned an InterruptError remains reusable, and its next
// run is bit-identical to a cold one.
type InterruptError struct {
	// Stage is the pipeline stage executing (or about to execute) when the
	// context fired, e.g. "step6-qsink".
	Stage string
	// CompletedRounds is the simulated CONGEST round count at interruption.
	CompletedRounds int
	// Stages is the per-stage cost of the work finished before the
	// interruption, including a partial record for the interrupted stage.
	Stages []StageTiming
	// Cause is the original error chain (ending in a context sentinel).
	Cause error
}

func (e *InterruptError) Error() string {
	what := "canceled"
	if errors.Is(e.Cause, context.DeadlineExceeded) {
		what = "deadline exceeded"
	}
	return fmt.Sprintf("apsp: run %s in %s after %d rounds", what, e.Stage, e.CompletedRounds)
}

// Unwrap exposes both sentinel levels to errors.Is.
func (e *InterruptError) Unwrap() []error {
	if errors.Is(e.Cause, context.DeadlineExceeded) {
		return []error{ErrDeadlineExceeded, e.Cause}
	}
	return []error{ErrCanceled, e.Cause}
}

// PanicError reports a panic recovered inside the execution stack — a
// ShardRuns worker or a pipeline stage — converted to an error instead of
// crashing the process, and tagged with where it happened. The Runner
// remains reusable afterwards; with Options.RetrySequential set, runs
// recover from worker panics automatically and no PanicError surfaces
// unless the sequential retry fails too.
type PanicError struct {
	// Stage is the pipeline stage that was executing.
	Stage string
	// SubRun is the failing sub-run index within its sharded dispatch (-1
	// when the panic escaped a stage outside any dispatch).
	SubRun int
	// Source is the source vertex the sub-run was computing (-1 if unknown).
	Source int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	tag := ""
	if e.Stage != "" {
		tag = " in " + e.Stage
	}
	if e.SubRun >= 0 {
		tag += fmt.Sprintf(" (sub-run %d", e.SubRun)
		if e.Source >= 0 {
			tag += fmt.Sprintf(", source %d", e.Source)
		}
		tag += ")"
	}
	return fmt.Sprintf("apsp: recovered panic%s: %v", tag, e.Value)
}

// UpdateError reports which update of an ApplyUpdates batch failed, by its
// zero-based index: updates before Index were applied (the Runner stays
// consistent with that prefix), Index failed with Err, and everything
// after was never attempted. Batching layers that coalesce several logical
// batches into one call (the serve batcher) use Index to split the blame
// across their callers.
type UpdateError struct {
	Index int
	Err   error
}

func (e *UpdateError) Error() string { return fmt.Sprintf("apsp: update %d: %v", e.Index, e.Err) }
func (e *UpdateError) Unwrap() error { return e.Err }

// translateErr maps internal error shapes onto the public taxonomy:
// core.InterruptError becomes *InterruptError (with both sentinels),
// congest.PanicError becomes *PanicError, raw context errors (possible on
// the blocker path, which has no staged executor) gain the apsp sentinel,
// and everything else passes through unchanged.
func translateErr(err error) error {
	if err == nil {
		return nil
	}
	var ie *core.InterruptError
	if errors.As(err, &ie) {
		return &InterruptError{
			Stage:           ie.Stage,
			CompletedRounds: ie.CompletedRounds,
			Stages:          ie.Stages,
			Cause:           ie.Cause,
		}
	}
	var ue *core.UpdateError
	if errors.As(err, &ue) {
		return &UpdateError{Index: ue.Index, Err: ue.Err}
	}
	var pe *congest.PanicError
	if errors.As(err, &pe) {
		return &PanicError{
			Stage:  pe.Stage,
			SubRun: pe.SubRun,
			Source: pe.Source,
			Value:  pe.Value,
			Stack:  pe.Stack,
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &InterruptError{Stage: "blocker", Cause: err}
	}
	return err
}
