package apsp

import "testing"

// FuzzParseScenario pins the scenario-name round trip: any name
// ParseScenario accepts must reproduce itself bit-for-bit through Name()
// (names are the stable identifiers of EXPERIMENTS.json rows, so an
// accepted-but-non-canonical spelling would silently alias two rows), and
// re-parsing the canonical name must yield the same scenario.
func FuzzParseScenario(f *testing.F) {
	f.Add("random-n64-s1")
	f.Add("powerlaw-n512-s7")
	f.Add("grid-n100-s-3")
	f.Add("ktree-n16-s0")
	f.Add("random-n007-s1")  // leading zeros: must be rejected
	f.Add("random-n64-s-0")  // non-canonical zero: must be rejected
	f.Add("unknown-n64-s1")  // unregistered family: must be rejected
	f.Add("random-n1-s1")    // below the n >= 2 floor
	f.Add("random-n64-s1-x") // trailing garbage
	f.Fuzz(func(t *testing.T, name string) {
		sc, err := ParseScenario(name)
		if err != nil {
			return
		}
		if got := sc.Name(); got != name {
			t.Fatalf("accepted name is not canonical: %q parsed to %+v, Name() = %q", name, sc, got)
		}
		back, err := ParseScenario(sc.Name())
		if err != nil {
			t.Fatalf("canonical name %q does not re-parse: %v", sc.Name(), err)
		}
		if back != sc {
			t.Fatalf("re-parse changed the scenario: %+v vs %+v", back, sc)
		}
		if sc.N < 2 {
			t.Fatalf("accepted scenario below the size floor: %+v", sc)
		}
	})
}
