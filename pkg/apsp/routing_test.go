package apsp

import (
	"testing"

	"congestapsp/internal/graph"
)

func TestRoutingTablesExact(t *testing.T) {
	g := RandomGraph(GenOptions{N: 16, Directed: true, Seed: 4, MaxWeight: 9}, 50)
	r, err := RunWithRouting(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.FloydWarshall(g.g)
	// weight lookup
	w := map[[2]int]int64{}
	g.Edges(func(u, v int, wt int64) {
		if old, ok := w[[2]int{u, v}]; !ok || wt < old {
			w[[2]int{u, v}] = wt
		}
	})
	for x := 0; x < g.N(); x++ {
		for tt := 0; tt < g.N(); tt++ {
			if r.Dist[x][tt] != want[x][tt] {
				t.Fatalf("dist(%d,%d) wrong", x, tt)
			}
			if x == tt || r.Dist[x][tt] >= Inf {
				continue
			}
			// NextHop must step onto a shortest path.
			nh := r.NextHop[x][tt]
			if nh < 0 {
				t.Fatalf("NextHop(%d,%d) missing", x, tt)
			}
			wt, ok := w[[2]int{x, nh}]
			if !ok {
				t.Fatalf("NextHop(%d,%d)=%d is not an out-neighbor", x, tt, nh)
			}
			if wt+r.Dist[nh][tt] != r.Dist[x][tt] {
				t.Fatalf("NextHop(%d,%d)=%d off the shortest path: %d+%d != %d",
					x, tt, nh, wt, r.Dist[nh][tt], r.Dist[x][tt])
			}
		}
	}
}

func TestRouteWalk(t *testing.T) {
	g := GridGraph(3, 4, GenOptions{Seed: 5, MaxWeight: 7})
	r, err := RunWithRouting(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < g.N(); x++ {
		for tt := 0; tt < g.N(); tt++ {
			route := r.Route(x, tt)
			if x == tt {
				if len(route) != 1 || route[0] != x {
					t.Fatalf("self route = %v", route)
				}
				continue
			}
			if r.Dist[x][tt] >= Inf {
				if route != nil {
					t.Fatalf("route for unreachable pair: %v", route)
				}
				continue
			}
			if route == nil || route[0] != x || route[len(route)-1] != tt {
				t.Fatalf("bad route %v for (%d,%d)", route, x, tt)
			}
		}
	}
}

func TestRouteZeroWeights(t *testing.T) {
	// Zero-weight plateaus are the classic way to break forwarding tables
	// (cycles); the settle-wave must keep them acyclic in both directions.
	g := ZeroWeightGraph(GenOptions{N: 14, Seed: 6, MaxWeight: 6}, 42)
	r, err := RunWithRouting(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < g.N(); x++ {
		for tt := 0; tt < g.N(); tt++ {
			if x != tt && r.Dist[x][tt] < Inf && r.Route(x, tt) == nil {
				t.Fatalf("forwarding cycle or hole at (%d,%d)", x, tt)
			}
		}
	}
}

func TestRunUnweighted(t *testing.T) {
	g := RingGraph(GenOptions{N: 12, Seed: 7, MaxWeight: 99})
	r, err := RunUnweighted(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops[0][6] != 6 {
		t.Errorf("hops(0,6) = %d, want 6 (weights must be ignored)", r.Hops[0][6])
	}
	if r.Rounds <= 0 || r.Rounds > 8*g.N()+64 {
		t.Errorf("rounds = %d, want O(n)", r.Rounds)
	}
}

func TestRunFromSourcesExact(t *testing.T) {
	g := RandomGraph(GenOptions{N: 20, Directed: true, Seed: 12, MaxWeight: 9}, 70)
	sources := []int{2, 9, 17}
	res, err := RunFromSources(g, sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.FloydWarshall(g.g)
	if len(res.Dist) != len(sources) {
		t.Fatalf("%d rows, want %d", len(res.Dist), len(sources))
	}
	for i, x := range sources {
		for v := 0; v < g.N(); v++ {
			if res.Dist[i][v] != want[x][v] {
				t.Fatalf("dist(%d,%d) = %d, want %d", x, v, res.Dist[i][v], want[x][v])
			}
		}
	}
}

func TestRunFromSourcesCheaperStep7(t *testing.T) {
	g := RandomGraph(GenOptions{N: 24, Seed: 13, MaxWeight: 9}, 72)
	full, err := Run(g, Options{SkipLastHops: true})
	if err != nil {
		t.Fatal(err)
	}
	part, err := RunFromSources(g, []int{0, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if part.Stats.Steps.Step7Extend >= full.Stats.Steps.Step7Extend {
		t.Errorf("partial step7 %d not cheaper than full %d",
			part.Stats.Steps.Step7Extend, full.Stats.Steps.Step7Extend)
	}
}

func TestRunFromSourcesValidation(t *testing.T) {
	g := RingGraph(GenOptions{N: 8, Seed: 14, MaxWeight: 5})
	if _, err := RunFromSources(g, []int{99}, Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
}
