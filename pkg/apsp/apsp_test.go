package apsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"congestapsp/internal/graph"
)

func oracle(g *Graph) [][]int64 { return graph.FloydWarshall(g.g) }

func TestQuickstartShape(t *testing.T) {
	g := NewGraph(4, false)
	for _, e := range [][3]int64{{0, 1, 3}, {1, 2, 1}, {2, 3, 2}} {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[0][3] != 6 {
		t.Errorf("dist(0,3) = %d, want 6", res.Dist[0][3])
	}
	if res.Stats.Rounds <= 0 {
		t.Error("no rounds recorded")
	}
	p := res.Path(0, 3)
	want := []int{0, 1, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestAllAlgorithmsExact(t *testing.T) {
	g := RandomGraph(GenOptions{N: 18, Directed: true, Seed: 3, MaxWeight: 9}, 60)
	want := oracle(g)
	for _, alg := range []Algorithm{Deterministic43, Deterministic32, Randomized43, BroadcastStep6} {
		res, err := Run(g, Options{Algorithm: alg, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for x := 0; x < g.N(); x++ {
			for v := 0; v < g.N(); v++ {
				if res.Dist[x][v] != want[x][v] {
					t.Fatalf("%v: dist(%d,%d) = %d, want %d", alg, x, v, res.Dist[x][v], want[x][v])
				}
			}
		}
	}
}

func TestPathReconstructionEverywhere(t *testing.T) {
	g := GridGraph(4, 5, GenOptions{Seed: 7, MaxWeight: 6})
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Collect edge weights for validation.
	w := map[[2]int]int64{}
	g.Edges(func(u, v int, wt int64) {
		if old, ok := w[[2]int{u, v}]; !ok || wt < old {
			w[[2]int{u, v}] = wt
		}
		if !g.Directed() {
			if old, ok := w[[2]int{v, u}]; !ok || wt < old {
				w[[2]int{v, u}] = wt
			}
		}
	})
	for x := 0; x < g.N(); x++ {
		for t2 := 0; t2 < g.N(); t2++ {
			if x == t2 || res.Dist[x][t2] >= Inf {
				continue
			}
			p := res.Path(x, t2)
			if p == nil || p[0] != x || p[len(p)-1] != t2 {
				t.Fatalf("bad path %v for (%d,%d)", p, x, t2)
			}
			var sum int64
			for i := 0; i+1 < len(p); i++ {
				wt, ok := w[[2]int{p[i], p[i+1]}]
				if !ok {
					t.Fatalf("path (%d,%d) uses non-edge (%d,%d)", x, t2, p[i], p[i+1])
				}
				sum += wt
			}
			if sum != res.Dist[x][t2] {
				t.Fatalf("path weight %d != dist %d for (%d,%d)", sum, res.Dist[x][t2], x, t2)
			}
		}
	}
}

func TestPathNilCases(t *testing.T) {
	g := NewGraph(3, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Path(2, 0); p != nil {
		t.Errorf("path for unreachable pair: %v", p)
	}
	res2, err := Run(g, Options{SkipLastHops: true})
	if err != nil {
		t.Fatal(err)
	}
	if p := res2.Path(0, 2); p != nil {
		t.Errorf("path without last hops: %v", p)
	}
}

func TestGeneratorsProduceRunnableGraphs(t *testing.T) {
	graphs := []*Graph{
		RandomGraph(GenOptions{N: 14, Seed: 1, MaxWeight: 5}, 40),
		RingGraph(GenOptions{N: 12, Seed: 2, MaxWeight: 5}),
		GridGraph(3, 4, GenOptions{Seed: 3, MaxWeight: 5}),
		LayeredGraph(4, 3, GenOptions{Seed: 4, MaxWeight: 5}),
		StarGraph(GenOptions{N: 11, Seed: 5, MaxWeight: 5}),
		ZeroWeightGraph(GenOptions{N: 13, Seed: 6, MaxWeight: 5}, 35),
	}
	for i, g := range graphs {
		res, err := Run(g, Options{})
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		want := oracle(g)
		for x := 0; x < g.N(); x++ {
			for v := 0; v < g.N(); v++ {
				if res.Dist[x][v] != want[x][v] {
					t.Fatalf("graph %d: dist(%d,%d) mismatch", i, x, v)
				}
			}
		}
	}
}

func TestBlockerSetAPI(t *testing.T) {
	g := RingGraph(GenOptions{N: 16, Seed: 8, MaxWeight: 5})
	for _, mode := range []BlockerMode{BlockerDeterministic, BlockerRandomized, BlockerGreedy, BlockerSampled} {
		q, stats, err := BlockerSet(g, BlockerOptions{HopParam: 3, Mode: mode, Seed: 9, Parallel: true})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if stats.Size != len(q) {
			t.Errorf("mode %d: stats.Size %d != len(q) %d", mode, stats.Size, len(q))
		}
		if len(q) == 0 {
			t.Errorf("mode %d: empty blocker set on a ring", mode)
		}
		if stats.Rounds <= 0 {
			t.Errorf("mode %d: no rounds recorded", mode)
		}
	}
}

func TestStatsExposure(t *testing.T) {
	g := RandomGraph(GenOptions{N: 20, Seed: 10, MaxWeight: 9}, 60)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.N != 20 || s.M != 60 {
		t.Errorf("N,M = %d,%d", s.N, s.M)
	}
	if s.H <= 0 || s.BlockerSetSize < 0 || s.Messages <= 0 {
		t.Errorf("implausible stats: %+v", s)
	}
	if s.Steps.Step1CSSSP <= 0 || s.Steps.Step7Extend <= 0 {
		t.Errorf("step breakdown missing: %+v", s.Steps)
	}
}

func TestBandwidthOption(t *testing.T) {
	g := RandomGraph(GenOptions{N: 16, Seed: 11, MaxWeight: 9}, 48)
	r1, err := Run(g, Options{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(g, Options{Bandwidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Stats.Rounds > r1.Stats.Rounds {
		t.Errorf("more bandwidth used more rounds: %d vs %d", r4.Stats.Rounds, r1.Stats.Rounds)
	}
	want := oracle(g)
	for x := 0; x < g.N(); x++ {
		for v := 0; v < g.N(); v++ {
			if r4.Dist[x][v] != want[x][v] {
				t.Fatal("bandwidth-4 run inexact")
			}
		}
	}
}

// Property: on random small graphs, the public API matches Floyd-Warshall
// for the default profile.
func TestQuickPublicAPIExact(t *testing.T) {
	f := func(seed int64, nRaw uint8, directed bool) bool {
		n := 6 + int(nRaw%10)
		g := RandomGraph(GenOptions{N: n, Directed: directed, Seed: seed, MaxWeight: 12}, 3*n)
		res, err := Run(g, Options{})
		if err != nil {
			return false
		}
		want := oracle(g)
		for x := 0; x < n; x++ {
			for v := 0; v < n; v++ {
				if res.Dist[x][v] != want[x][v] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
